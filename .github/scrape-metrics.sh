#!/bin/sh
# Snapshot a running simqd's /metrics into METRICS_<label>_<when>.txt.
# Used by the nightly workflow around every simload phase, so each
# night's artifact carries the full counter state before and after each
# serving benchmark (WAL volume, plan-cache traffic, kernel dispatch,
# index traversal totals, ...) next to the latency report.
#
# Usage: scrape-metrics.sh <port> <label> <before|after>
# Polls /healthz first so a "before" scrape does not race server startup.
set -eu
port=$1
label=$2
when=$3
for _ in $(seq 1 150); do
    if curl -sf "http://127.0.0.1:${port}/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
curl -s "http://127.0.0.1:${port}/metrics" -o "METRICS_${label}_${when}.txt"
