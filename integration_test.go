package repro

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/seq"
	"repro/internal/stock"
	"repro/internal/tsdb"
)

// TestPipelineStoreLoadQuery drives the full storage path: build a
// relation, serialise it, load it back, query it through the engine.
func TestPipelineStoreLoadQuery(t *testing.T) {
	a := seq.MustAlphabet("abcdef")
	rng := rand.New(rand.NewSource(1))
	orig := NewRelation("dict")
	for i := 0; i < 500; i++ {
		orig.Insert(a.Random(rng, 4+rng.Intn(8)), map[string]string{"even": map[bool]string{true: "y", false: "n"}[i%2 == 0]})
	}
	var buf bytes.Buffer
	if err := orig.Store(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRelation("dict", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("round trip lost tuples: %d vs %d", loaded.Len(), orig.Len())
	}

	cat := NewCatalog()
	cat.Add(loaded)
	eng := NewQueryEngine(cat)
	if err := eng.RegisterRuleSet(MustRuleSet("edits", UnitEdits("abcdef").Rules())); err != nil {
		t.Fatal(err)
	}
	target, _ := loaded.Tuple(42)
	res, err := eng.Execute(`SELECT seq, dist FROM dict WHERE seq SIMILAR TO "` + target.Seq + `" WITHIN 1 USING edits`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0] == target.Seq && row[1] == "0" {
			found = true
		}
	}
	if !found {
		t.Errorf("target %q missing from its own range query: %v", target.Seq, res.Rows)
	}

	// Index path and forced scan path agree on the loaded data.
	scan, err := eng.Execute(`SELECT seq FROM dict WHERE seq SIMILAR TO "` + target.Seq + `" WITHIN 1 USING edits OR seq = "zzzzzzzzzz"`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scan.Plan, "Scan") {
		t.Fatalf("expected scan plan, got %s", scan.Plan)
	}
	if len(scan.Rows) != len(res.Rows) {
		t.Errorf("scan %d rows, index %d rows", len(scan.Rows), len(res.Rows))
	}
}

// TestLemma1PropertyTimeSeries is the superset guarantee as a property
// test: for random walks, random transformations and random thresholds,
// the index answer set equals the exhaustive scan's.
func TestLemma1PropertyTimeSeries(t *testing.T) {
	const n = 64
	db, err := NewTimeSeriesDB(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stock.Walks(5, 200, n) {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Build(); err != nil {
		t.Fatal(err)
	}
	mavg5, _ := MovingAvg(n, 5)
	mavg20, _ := MovingAvg(n, 20)
	transforms := []*SpectralTransform{nil, IdentityT(n), mavg5, mavg20, ReverseT(n)}
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64, epsRaw uint8, trIdx uint8) bool {
		q := stock.Walk(rand.New(rand.NewSource(seed)), n)
		eps := float64(epsRaw%12) + 0.5
		tr := transforms[int(trIdx)%len(transforms)]
		idx, _, err := db.RangeIndex(q, tr, eps)
		if err != nil {
			return false
		}
		scan, _, err := db.RangeScan(q, tr, eps)
		if err != nil {
			return false
		}
		if len(idx) != len(scan) {
			return false
		}
		seen := map[int]float64{}
		for _, m := range idx {
			seen[m.ID] = m.Dist
		}
		for _, m := range scan {
			if d, ok := seen[m.ID]; !ok || d != m.Dist {
				return false
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCrossEvaluatorAgreement: the three distance evaluators (DP,
// general search, framework core) agree wherever they are all defined.
func TestCrossEvaluatorAgreement(t *testing.T) {
	rs := UnitEdits("abc")
	calc, err := NewEditCalculator(rs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewTransformEngine(rs)
	if err != nil {
		t.Fatal(err)
	}
	dom, err := SequenceDomain(rs)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(dom)
	if err != nil {
		t.Fatal(err)
	}
	a := seq.MustAlphabet("abc")
	rng := rand.New(rand.NewSource(9))
	const budget = 3.0
	for trial := 0; trial < 30; trial++ {
		x := a.Random(rng, rng.Intn(5))
		y := a.Random(rng, rng.Intn(5))
		dp := calc.Distance(x, y)
		d1, ok1, err := eng.Distance(x, y, budget)
		if err != nil {
			t.Fatal(err)
		}
		d2, ok2, err := ev.Distance(x, y, budget)
		if err != nil {
			t.Fatal(err)
		}
		if ok1 != ok2 || (ok1 && d1 != d2) {
			t.Fatalf("(%q,%q): engine %g,%v vs core %g,%v", x, y, d1, ok1, d2, ok2)
		}
		if wantOK := dp <= budget; wantOK != ok1 || (ok1 && dp != d1) {
			t.Fatalf("(%q,%q): dp %g vs engine %g,%v", x, y, dp, d1, ok1)
		}
	}
}

// TestTimeWarpEndToEnd exercises Appendix A through the public surface:
// warping in the time domain matches the spectral prediction.
func TestTimeWarpEndToEnd(t *testing.T) {
	s := stock.Walk(rand.New(rand.NewSource(11)), 16)
	warped := tsdb.WarpSeries(s, 2)
	if len(warped) != 32 {
		t.Fatalf("warp length = %d", len(warped))
	}
	for i, v := range s {
		if warped[2*i] != v || warped[2*i+1] != v {
			t.Fatalf("warp misplaced value at %d", i)
		}
	}
	if _, err := tsdb.WarpCoefficients(16, 2, 8); err != nil {
		t.Fatal(err)
	}
}
