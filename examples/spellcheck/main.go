// Spellcheck: the sequence domain at scale — a 20k-word synthetic
// dictionary indexed four ways, racing range-query strategies and
// correcting words against a regular pattern.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
	"repro/internal/index"
	"repro/internal/seq"
)

func main() {
	// Build a dictionary with planted near-duplicates.
	a := seq.MustAlphabet("abcdefghij")
	rng := rand.New(rand.NewSource(42))
	var words []string
	for i := 0; i < 20000; i++ {
		if i > 0 && rng.Intn(4) == 0 {
			words = append(words, a.RandomEdits(rng, words[rng.Intn(i)], 1))
		} else {
			words = append(words, a.Random(rng, 4+rng.Intn(9)))
		}
	}

	entries := make([]index.Entry, len(words))
	bk := index.NewBKTree()
	tr := index.NewTrie()
	qg := index.NewQGramIndex(2)
	for i, w := range words {
		entries[i] = index.Entry{ID: i, S: w}
		bk.Insert(i, w)
		tr.Insert(i, w)
		qg.Insert(i, w)
	}

	query := a.RandomEdits(rng, words[123], 1)
	fmt.Printf("query %q, radius 1, dictionary %d words\n\n", query, len(words))

	type strat struct {
		name string
		run  func() ([]index.Match, index.Stats)
	}
	for _, s := range []strat{
		{"scan  ", func() ([]index.Match, index.Stats) {
			return index.Scan(entries, query, 1, index.UnitVerifier)
		}},
		{"qgram ", func() ([]index.Match, index.Stats) {
			return qg.Range(query, 1, index.UnitVerifier)
		}},
		{"bktree", func() ([]index.Match, index.Stats) { return bk.RangeStats(query, 1) }},
		{"trie  ", func() ([]index.Match, index.Stats) { return tr.RangeStats(query, 1) }},
	} {
		start := time.Now()
		matches, st := s.run()
		fmt.Printf("%s %3d matches, %6d verifications, %v\n",
			s.name, len(matches), st.Verifications, time.Since(start))
	}

	// Suggestions: the 5 nearest dictionary words.
	fmt.Printf("\nsuggestions for %q:\n", query)
	for _, m := range bk.NearestK(query, 5) {
		fmt.Printf("  %-12s dist=%.0f\n", m.S, m.Dist)
	}

	// Pattern-constrained correction: the nearest word shaped like
	// [ab]+c?d (the predicate x ≈ t(e)).
	calc, err := repro.NewEditCalculator(repro.UnitEdits("abcdefghij"))
	if err != nil {
		log.Fatal(err)
	}
	p, err := repro.CompilePattern("[ab]+c?d")
	if err != nil {
		log.Fatal(err)
	}
	member, d, ok := repro.NearestMember(calc, query, p, 20)
	if !ok {
		log.Fatal("no member reachable")
	}
	fmt.Printf("\nnearest member of [ab]+c?d to %q: %q at distance %.0f\n", query, member, d)
}
