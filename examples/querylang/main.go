// Querylang: the query language L end to end — range queries, pattern
// predicates, attribute filters, kNN, similarity joins and EXPLAIN.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	cat := repro.NewCatalog()
	words := repro.NewRelation("words")
	for _, w := range []struct{ s, lang string }{
		{"color", "en"}, {"colour", "uk"}, {"colon", "en"}, {"cool", "en"},
		{"dolor", "la"}, {"velour", "fr"}, {"clamor", "en"}, {"valor", "en"},
		{"dollar", "en"}, {"collar", "en"},
	} {
		words.Insert(w.s, map[string]string{"lang": w.lang})
	}
	cat.Add(words)

	eng := repro.NewQueryEngine(cat)
	if err := eng.RegisterRuleSet(repro.MustRuleSet("edits",
		repro.UnitEdits("abcdefghijklmnopqrstuvwxyz").Rules())); err != nil {
		log.Fatal(err)
	}
	cheap := append([]repro.Rule{
		repro.Subst('o', 'u', 0.1), repro.Subst('u', 'o', 0.1),
		repro.Insert('u', 0.2), repro.Delete('u', 0.2),
	}, repro.UnitEdits("abcdefghijklmnopqrstuvwxyz").Rules()...)
	if err := eng.RegisterRuleSet(repro.MustRuleSet("vowels", cheap)); err != nil {
		log.Fatal(err)
	}

	for _, stmt := range []string{
		`EXPLAIN SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING edits`,
		`SELECT seq, dist FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING edits`,
		`SELECT seq, dist FROM words WHERE seq SIMILAR TO "color" WITHIN 0.5 USING vowels`,
		`SELECT seq, lang FROM words WHERE seq SIMILAR TO "color" WITHIN 2 USING edits AND lang = "en"`,
		`SELECT seq, dist FROM words WHERE seq SIMILAR TO PATTERN "c.l+(a|o)r" WITHIN 1 USING edits`,
		`SELECT seq, dist FROM words WHERE seq NEAREST 3 TO "colour" USING edits`,
		`SELECT a.seq, b.seq, dist FROM words a, words b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING edits AND a.id != b.id LIMIT 6`,
	} {
		fmt.Printf("simq> %s\n", stmt)
		res, err := eng.Execute(stmt)
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range res.Rows {
			fmt.Printf("  %v\n", row)
		}
		fmt.Printf("  (%d rows; plan:\n    %s)\n\n", len(res.Rows),
			strings.ReplaceAll(res.Plan, "\n", "\n    "))
	}
}
