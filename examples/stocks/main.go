// Stocks: the time-series instantiation — normal forms, moving
// averages, reversal, and index-accelerated similarity search with the
// transformation applied to the index on the fly.
//
// Replays the companion paper's motivating examples on its synthetic
// random-walk family (the 1990s FTP stock data is long gone).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/stock"
	"repro/internal/tsdb"
)

func main() {
	// Example 1.1: two series that look different until smoothed.
	s1, s2 := stock.ExampleS1(), stock.ExampleS2()
	raw, _ := tsdb.Euclid(s1, s2)
	m1, _ := repro.MovingAverage(s1, 3)
	m2, _ := repro.MovingAverage(s2, 3)
	smooth, _ := tsdb.Euclid(m1, m2)
	fmt.Printf("Example 1.1: D(s1,s2) = %.2f raw, %.2f after 3-day moving average\n", raw, smooth)

	// A database of 1067 synthetic walks, length 128 (the companion's
	// join population), k-index on 2 coefficients.
	const n = 128
	db, err := repro.NewTimeSeriesDB(2)
	if err != nil {
		log.Fatal(err)
	}
	series := stock.Walks(7, 1067, n)
	for _, s := range series {
		if _, err := db.Add(s); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Build(); err != nil {
		log.Fatal(err)
	}

	// Range query: series whose 20-day-smoothed normal forms are close
	// to the query's normal form.
	mavg, err := repro.MovingAvg(n, 20)
	if err != nil {
		log.Fatal(err)
	}
	q := stock.Walk(rand.New(rand.NewSource(99)), n)
	matches, st, err := db.RangeIndex(q, mavg, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrange query (Tmavg20, eps=2.0): %d matches, %d node accesses, %d verified\n",
		len(matches), st.NodeAccesses, st.Candidates)
	for i, m := range matches {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  series %4d at distance %.3f\n", m.ID, m.Dist)
	}

	// The same answer from the sequential scan (Lemma 1: no false
	// dismissals — the sets are identical).
	scan, _, err := db.RangeScan(q, mavg, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential scan agrees: %d matches\n", len(scan))

	// Example 2.2: hedging — pairs that move in OPPOSITE directions.
	// Join the relation with its reversal: Trev(r) ⋈ r.
	rev := repro.ReverseT(n)
	pairs, _, err := db.SelfJoin(tsdb.JoinIndexT, rev, 3.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nopposite-movement join (Trev, eps=3.0): %d ordered pairs\n", len(pairs))
	for i, p := range pairs {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  series %4d ~ reversed %4d at %.3f\n", p.J, p.I, p.Dist)
	}

	// The framework view (Equation 10): a catalog with costs; a series
	// and its reversed sibling are similar at cost 1 (one reversal).
	norm, _, _, err := repro.NormalForm(series[0])
	if err != nil {
		log.Fatal(err)
	}
	opposite := tsdb.Reverse(norm)
	dom, err := repro.TimeSeriesDomain(n, []repro.TSTransformation{
		{T: repro.ReverseT(n), Cost: 1},
		{T: mavg, Cost: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	ev, err := repro.NewEvaluator(dom)
	if err != nil {
		log.Fatal(err)
	}
	d, ok, err := ev.Distance(norm, opposite, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nframework distance(series, reversed series) = %.2f (ok=%v): one reversal\n", d, ok)
}
