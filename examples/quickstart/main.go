// Quickstart: define transformation rules, compute similarity
// distances, and run a similarity query — the framework in twenty
// lines.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	// 1. The transformation rule language T: unit edits plus a cheap
	//    o<->u substitution ("colour" should be nearly "color").
	rules := append([]repro.Rule{
		repro.Subst('o', 'u', 0.1),
		repro.Subst('u', 'o', 0.1),
	}, repro.UnitEdits("abcdefghijklmnopqrstuvwxyz").Rules()...)
	rs := repro.MustRuleSet("spelling", rules)

	// 2. Distances: object A is similar to B if A can be rewritten into
	//    B at bounded cost.
	calc, err := repro.NewEditCalculator(rs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("d(colour -> color)  = %.2f\n", calc.Distance("colour", "color"))
	fmt.Printf("d(color  -> dollar) = %.2f\n", calc.Distance("color", "dollar"))

	// 3. The pattern language P: distance to a *set* of objects.
	p, err := repro.CompilePattern("col(o|u)+r")
	if err != nil {
		log.Fatal(err)
	}
	member, d, _ := repro.NearestMember(calc, "colon", p, 5)
	fmt.Printf("nearest member of col(o|u)+r to colon: %q at %.2f\n", member, d)

	// 4. The query language L over a relation.
	cat := repro.NewCatalog()
	words := repro.NewRelation("words")
	for _, w := range []string{"color", "colour", "colon", "dolor", "cool", "dollar"} {
		words.Insert(w, nil)
	}
	cat.Add(words)
	eng := repro.NewQueryEngine(cat)
	if err := eng.RegisterRuleSet(rs); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Execute(`SELECT seq, dist FROM words WHERE seq SIMILAR TO "color" WITHIN 0.5 USING spelling`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwords within 0.5 of \"color\", plan:\n  %s\n", strings.ReplaceAll(res.Plan, "\n", "\n  "))
	for _, row := range res.Rows {
		fmt.Printf("  %-8s dist=%s\n", row[0], row[1])
	}
}
