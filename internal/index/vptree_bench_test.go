package index

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/metric"
)

// benchVPData builds a clustered dataset (16 Gaussian clusters, the
// datagen -kind vectors shape) so the VP-tree has real pruning
// structure to exploit — uniform data would understate the tree at
// every dimension.
func benchVPData(dim, n int) []metric.Vector {
	rng := rand.New(rand.NewSource(int64(dim)*1000 + int64(n)))
	centroids := make([]metric.Vector, 16)
	for k := range centroids {
		c := make(metric.Vector, dim)
		for j := range c {
			c[j] = float32(rng.Float64()*2 - 1)
		}
		centroids[k] = c
	}
	vecs := make([]metric.Vector, n)
	for i := range vecs {
		c := centroids[rng.Intn(len(centroids))]
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64()*0.1)
		}
		vecs[i] = v
	}
	return vecs
}

// BenchmarkVPTreeVsScan ranges the same clustered 4096-vector dataset
// through the VP-tree and through the scan path (one DistBatch over
// the whole column, the batch pipeline's brute force) at a radius that
// selects roughly one cluster. One op is 16 queries. The dimension
// sweep exhibits the crossover the cost model has to respect: metric
// trees prune well in low dimensions and lose their advantage as
// distance concentration sets in.
func BenchmarkVPTreeVsScan(b *testing.B) {
	l2, ok := metric.Lookup("l2")
	if !ok {
		b.Fatal("l2 metric not registered")
	}
	batcher := l2.(metric.Batcher)
	for _, dim := range []int{8, 64, 384} {
		vecs := benchVPData(dim, 4096)
		tree := NewVPTree(l2)
		for i, v := range vecs {
			tree.Insert(i, v)
		}
		queries := vecs[:16]
		// ~0.25·sqrt(dim): scales with the within-cluster distance
		// spread (noise std 0.1 per component), so each query selects
		// roughly its own cluster at every dimension.
		radius := 0.25 * float64(intSqrt(dim))
		b.Run(fmt.Sprintf("dim=%d/vptree", dim), func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					hits += len(tree.Range(q, radius))
				}
			}
			benchSink = hits
		})
		b.Run(fmt.Sprintf("dim=%d/scan", dim), func(b *testing.B) {
			out := make([]float64, len(vecs))
			hits := 0
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					batcher.DistBatch(q, vecs, out)
					for _, d := range out {
						if d <= radius {
							hits++
						}
					}
				}
			}
			benchSink = hits
		})
	}
}

// intSqrt is floor(sqrt(n)) for small positive n.
func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

var benchSink int
