package index

import (
	"sort"

	"repro/internal/editdp"
)

// BKTree is a Burkhard–Keller tree over the unit-cost edit distance.
// Soundness requires a metric (symmetry + triangle inequality), which
// Levenshtein distance satisfies; the query planner therefore only
// offers BK-trees for unit-cost rule sets. Not safe for concurrent
// mutation; reads may proceed concurrently once building is done.
type BKTree struct {
	root *bkNode
	size int
}

type bkNode struct {
	entry    Entry
	children map[int]*bkNode // edit distance -> subtree
	keys     []int           // child distances, ascending (maintained on insert)
}

// NewBKTree returns an empty tree.
func NewBKTree() *BKTree { return &BKTree{} }

// Len returns the number of indexed entries.
func (t *BKTree) Len() int { return t.size }

// Insert adds an entry. Duplicate strings are fine; they stack along
// zero-distance edges.
func (t *BKTree) Insert(id int, s string) {
	t.size++
	n := &bkNode{entry: Entry{ID: id, S: s}}
	if t.root == nil {
		t.root = n
		return
	}
	cur := t.root
	for {
		d := editdp.Levenshtein(s, cur.entry.S)
		child, ok := cur.children[d]
		if !ok {
			if cur.children == nil {
				cur.children = make(map[int]*bkNode)
			}
			cur.children[d] = n
			i := sort.SearchInts(cur.keys, d)
			cur.keys = append(cur.keys, 0)
			copy(cur.keys[i+1:], cur.keys[i:])
			cur.keys[i] = d
			return
		}
		cur = child
	}
}

// Range returns every entry within unit edit distance k of the query.
func (t *BKTree) Range(query string, k int) []Match {
	m, _ := t.RangeStats(query, k)
	return m
}

// NearestK returns the k entries closest to the query in unit edit
// distance, nearest first (ties broken by ascending id).
func (t *BKTree) NearestK(query string, k int) []Match {
	m, _ := t.NearestKStats(query, k)
	return m
}

// NearestKStats is NearestK with work counters: Verifications counts
// distance computations, Candidates the nodes visited. The tree is
// walked best-first, shrinking the pruning radius to the current
// kth-best distance.
func (t *BKTree) NearestKStats(query string, k int) ([]Match, Stats) {
	var st Stats
	if t.root == nil || k <= 0 {
		return nil, st
	}
	// best holds up to k matches sorted ascending by (distance, id).
	var best []Match
	var walk func(n *bkNode)
	walk = func(n *bkNode) {
		st.Candidates++
		st.Verifications++
		d := editdp.Levenshtein(query, n.entry.S)
		if len(best) < k || float64(d) <= best[len(best)-1].Dist {
			best = PushBestK(best, Match{ID: n.entry.ID, S: n.entry.S, Dist: float64(d)}, k)
		}
		for _, dist := range n.keys {
			if len(best) < k {
				walk(n.children[dist])
				continue
			}
			// Triangle inequality: the subtree can only contain entries
			// at distance >= |d - dist| from the query.
			r := int(best[len(best)-1].Dist)
			if dist >= d-r && dist <= d+r {
				walk(n.children[dist])
			}
		}
	}
	walk(t.root)
	return best, st
}

// RangeStats is Range with work counters: Verifications counts distance
// computations (the tree's only cost), Candidates the nodes visited.
func (t *BKTree) RangeStats(query string, k int) ([]Match, Stats) {
	var out []Match
	it := t.RangeIter(query, k)
	for m, ok := it.Next(); ok; m, ok = it.Next() {
		out = append(out, m)
	}
	return out, it.Stats()
}

// RangeIter returns an incremental range query: matches stream out in
// deterministic tree order (children visited by ascending edge
// distance) and traversal stops as soon as the caller stops pulling.
func (t *BKTree) RangeIter(query string, k int) Iterator {
	it := &bkIter{query: query, k: k}
	if t.root != nil && k >= 0 {
		it.stack = []*bkNode{t.root}
	}
	return it
}

type bkIter struct {
	query string
	k     int
	stack []*bkNode
	st    Stats
}

func (it *bkIter) Stats() Stats { return it.st }

func (it *bkIter) Next() (Match, bool) {
	for len(it.stack) > 0 {
		n := it.stack[len(it.stack)-1]
		it.stack = it.stack[:len(it.stack)-1]
		it.st.Candidates++
		it.st.Verifications++
		d := editdp.Levenshtein(it.query, n.entry.S)
		// Triangle inequality: answers in child c require |d - c| <= k.
		// Push descending so children pop in ascending distance order.
		for i := len(n.keys) - 1; i >= 0; i-- {
			dist := n.keys[i]
			if dist >= d-it.k && dist <= d+it.k {
				it.stack = append(it.stack, n.children[dist])
			}
		}
		if d <= it.k {
			return Match{ID: n.entry.ID, S: n.entry.S, Dist: float64(d)}, true
		}
	}
	return Match{}, false
}
