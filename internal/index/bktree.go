package index

import "repro/internal/editdp"

// BKTree is a Burkhard–Keller tree over the unit-cost edit distance.
// Soundness requires a metric (symmetry + triangle inequality), which
// Levenshtein distance satisfies; the query planner therefore only
// offers BK-trees for unit-cost rule sets. Not safe for concurrent
// mutation; reads may proceed concurrently once building is done.
type BKTree struct {
	root *bkNode
	size int
}

type bkNode struct {
	entry    Entry
	children map[int]*bkNode // edit distance -> subtree
}

// NewBKTree returns an empty tree.
func NewBKTree() *BKTree { return &BKTree{} }

// Len returns the number of indexed entries.
func (t *BKTree) Len() int { return t.size }

// Insert adds an entry. Duplicate strings are fine; they stack along
// zero-distance edges.
func (t *BKTree) Insert(id int, s string) {
	t.size++
	n := &bkNode{entry: Entry{ID: id, S: s}}
	if t.root == nil {
		t.root = n
		return
	}
	cur := t.root
	for {
		d := editdp.Levenshtein(s, cur.entry.S)
		child, ok := cur.children[d]
		if !ok {
			if cur.children == nil {
				cur.children = make(map[int]*bkNode)
			}
			cur.children[d] = n
			return
		}
		cur = child
	}
}

// Range returns every entry within unit edit distance k of the query.
func (t *BKTree) Range(query string, k int) []Match {
	m, _ := t.RangeStats(query, k)
	return m
}

// NearestK returns the k entries closest to the query in unit edit
// distance, nearest first (ties broken by insertion order encountered).
// It walks the tree best-first, shrinking the pruning radius to the
// current kth-best distance.
func (t *BKTree) NearestK(query string, k int) []Match {
	if t.root == nil || k <= 0 {
		return nil
	}
	// best holds up to k matches sorted ascending by distance.
	var best []Match
	insert := func(m Match) {
		i := len(best)
		for i > 0 && best[i-1].Dist > m.Dist {
			i--
		}
		best = append(best, Match{})
		copy(best[i+1:], best[i:])
		best[i] = m
		if len(best) > k {
			best = best[:k]
		}
	}
	var walk func(n *bkNode)
	walk = func(n *bkNode) {
		d := editdp.Levenshtein(query, n.entry.S)
		if len(best) < k || float64(d) <= best[len(best)-1].Dist {
			insert(Match{ID: n.entry.ID, S: n.entry.S, Dist: float64(d)})
		}
		for dist, child := range n.children {
			if len(best) < k {
				walk(child)
				continue
			}
			// Triangle inequality: the subtree can only contain entries
			// at distance >= |d - dist| from the query.
			r := int(best[len(best)-1].Dist)
			if dist >= d-r && dist <= d+r {
				walk(child)
			}
		}
	}
	walk(t.root)
	return best
}

// RangeStats is Range with work counters: Verifications counts distance
// computations (the tree's only cost), Candidates the nodes visited.
func (t *BKTree) RangeStats(query string, k int) ([]Match, Stats) {
	var out []Match
	var st Stats
	if t.root == nil || k < 0 {
		return nil, st
	}
	stack := []*bkNode{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.Candidates++
		st.Verifications++
		d := editdp.Levenshtein(query, n.entry.S)
		if d <= k {
			out = append(out, Match{ID: n.entry.ID, S: n.entry.S, Dist: float64(d)})
		}
		// Triangle inequality: answers in child c require |d - c| <= k.
		for dist, child := range n.children {
			if dist >= d-k && dist <= d+k {
				stack = append(stack, child)
			}
		}
	}
	return out, st
}
