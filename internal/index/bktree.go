package index

import (
	"sort"
	"sync/atomic"

	"repro/internal/editdp"
)

// BKTree is a Burkhard–Keller tree over the unit-cost edit distance.
// Soundness requires a metric (symmetry + triangle inequality), which
// Levenshtein distance satisfies; the query planner therefore only
// offers BK-trees for unit-cost rule sets.
//
// Concurrency contract (the storage engine's online maintenance relies
// on it): at most one writer may Insert at a time — callers serialize
// mutation, the relation layer under its commit lock — while any number
// of readers traverse concurrently. Every node's child list is an
// immutable slice behind an atomic pointer, replaced wholesale on
// insert, so a reader sees either the old list or the new one, never a
// half-built edge. A reader racing an insert may or may not see the new
// entry; the MVCC visibility filter above the index decides, so the
// index itself only ever needs to be a superset of any snapshot.
// Deletion is not an index operation: rows are tombstoned in the
// relation arena and filtered on read; compaction rebuilds a fresh
// tree.
type BKTree struct {
	root atomic.Pointer[bkNode]
	size atomic.Int64
}

type bkNode struct {
	entry Entry
	edges atomic.Pointer[[]bkEdge] // ascending by dist; copy-on-write
}

type bkEdge struct {
	dist int
	node *bkNode
}

// loadEdges returns the node's current child list (nil when leaf).
func (n *bkNode) loadEdges() []bkEdge {
	if p := n.edges.Load(); p != nil {
		return *p
	}
	return nil
}

// child returns the subtree along the edge labelled d, if any.
func (n *bkNode) child(d int) *bkNode {
	es := n.loadEdges()
	i := sort.Search(len(es), func(i int) bool { return es[i].dist >= d })
	if i < len(es) && es[i].dist == d {
		return es[i].node
	}
	return nil
}

// addEdge publishes a new child list containing the edge d -> c.
// Single-writer only.
func (n *bkNode) addEdge(d int, c *bkNode) {
	old := n.loadEdges()
	i := sort.Search(len(old), func(i int) bool { return old[i].dist >= d })
	es := make([]bkEdge, 0, len(old)+1)
	es = append(es, old[:i]...)
	es = append(es, bkEdge{dist: d, node: c})
	es = append(es, old[i:]...)
	n.edges.Store(&es)
}

// NewBKTree returns an empty tree.
func NewBKTree() *BKTree { return &BKTree{} }

// Len returns the number of indexed entries.
func (t *BKTree) Len() int { return int(t.size.Load()) }

// Insert adds an entry. Duplicate strings are fine; they stack along
// zero-distance edges. Single-writer only; see the type comment.
func (t *BKTree) Insert(id int, s string) {
	n := &bkNode{entry: Entry{ID: id, S: s}}
	if t.root.Load() == nil {
		t.root.Store(n)
		t.size.Add(1)
		return
	}
	// One PEQ build serves every node on the insertion path.
	dp := editdp.NewQueryDP(s)
	cur := t.root.Load()
	depth := 0
	for {
		depth++
		d := dp.Distance(cur.entry.S)
		child := cur.child(d)
		if child == nil {
			cur.addEdge(d, n)
			t.size.Add(1)
			bkInsertDepth.Observe(float64(depth))
			return
		}
		cur = child
	}
}

// Range returns every entry within unit edit distance k of the query.
func (t *BKTree) Range(query string, k int) []Match {
	m, _ := t.RangeStats(query, k)
	return m
}

// NearestK returns the k entries closest to the query in unit edit
// distance, nearest first (ties broken by ascending id).
func (t *BKTree) NearestK(query string, k int) []Match {
	m, _ := t.NearestKStats(query, k)
	return m
}

// NearestKStats is NearestK with work counters: Verifications counts
// distance computations, Candidates the nodes visited. The tree is
// walked best-first, shrinking the pruning radius to the current
// kth-best distance.
func (t *BKTree) NearestKStats(query string, k int) ([]Match, Stats) {
	return t.NearestKFilterStats(query, k, nil)
}

// NearestKFilterStats is NearestKStats restricted to entries the accept
// function admits (nil accepts everything). The filter is applied
// before an entry can enter the best list or shrink the pruning radius,
// which is how MVCC snapshots exclude tombstoned rows without losing
// true answers.
func (t *BKTree) NearestKFilterStats(query string, k int, accept func(id int) bool) ([]Match, Stats) {
	return t.NearestKFilterStatsInto(nil, query, k, accept)
}

// NearestKFilterStatsInto is NearestKFilterStats writing the best list
// into dst's backing array (the nearest-k answer is inherently a batch,
// so reusing the caller's buffer makes the NN access path allocation-
// free across queries). dst may be nil.
func (t *BKTree) NearestKFilterStatsInto(dst []Match, query string, k int, accept func(id int) bool) ([]Match, Stats) {
	var st Stats
	root := t.root.Load()
	if root == nil || k <= 0 {
		return dst[:0], st
	}
	// best holds up to k matches sorted ascending by (distance, id).
	best := dst[:0]
	dp := editdp.NewQueryDP(query)
	var walk func(n *bkNode)
	walk = func(n *bkNode) {
		st.Candidates++
		st.Nodes++
		edges := n.loadEdges()
		var d int
		if len(best) == k {
			// Frontier full: distances beyond maxEdge+r can neither enter
			// the best list (needs d <= r) nor admit any child (needs
			// e.dist >= d-r), so the verification is budget-bounded — and
			// when length skew alone exceeds the budget, skipped outright.
			r := int(best[len(best)-1].Dist)
			budget := r
			if len(edges) > 0 {
				budget = edges[len(edges)-1].dist + r
			}
			if ld := len(query) - len(n.entry.S); ld > budget || -ld > budget {
				st.Pruned++
				return
			}
			st.Verifications++
			var ok bool
			if d, ok = dp.Within(n.entry.S, budget); !ok {
				st.Abandoned++
				st.Pruned++
				return
			}
		} else {
			// Frontier not yet full: every node enters the list and every
			// child is visited, so the exact distance is required.
			st.Verifications++
			d = dp.Distance(n.entry.S)
		}
		if accept == nil || accept(n.entry.ID) {
			if len(best) < k || float64(d) <= best[len(best)-1].Dist {
				best = PushBestK(best, Match{ID: n.entry.ID, S: n.entry.S, Dist: float64(d)}, k)
			}
		}
		for _, e := range edges {
			if len(best) < k {
				walk(e.node)
				continue
			}
			// Triangle inequality: the subtree can only contain entries
			// at distance >= |d - dist| from the query.
			r := int(best[len(best)-1].Dist)
			if e.dist >= d-r && e.dist <= d+r {
				walk(e.node)
			} else {
				st.Pruned++
			}
		}
	}
	walk(root)
	return best, st
}

// RangeStats is Range with work counters: Verifications counts distance
// computations (the tree's only cost), Candidates the nodes visited.
func (t *BKTree) RangeStats(query string, k int) ([]Match, Stats) {
	var out []Match
	it := t.RangeIter(query, k)
	for m, ok := it.Next(); ok; m, ok = it.Next() {
		out = append(out, m)
	}
	return out, it.Stats()
}

// RangeIter returns an incremental range query: matches stream out in
// deterministic tree order (children visited by ascending edge
// distance) and traversal stops as soon as the caller stops pulling.
func (t *BKTree) RangeIter(query string, k int) Iterator {
	it := &bkIter{query: query, k: k}
	if root := t.root.Load(); root != nil && k >= 0 {
		it.stack = []*bkNode{root}
		it.dp = editdp.NewQueryDP(query)
	}
	return it
}

type bkIter struct {
	query string
	k     int
	stack []*bkNode
	st    Stats
	dp    *editdp.QueryDP
}

func (it *bkIter) Stats() Stats { return it.st }

func (it *bkIter) Next() (Match, bool) {
	for len(it.stack) > 0 {
		n := it.stack[len(it.stack)-1]
		it.stack = it.stack[:len(it.stack)-1]
		it.st.Candidates++
		it.st.Nodes++
		edges := n.loadEdges()
		// Distances beyond maxEdge+k can neither match (needs d <= k) nor
		// admit any child (needs e.dist >= d-k), so the verification is
		// budget-bounded — and when length skew alone exceeds the budget,
		// skipped outright. On leaves the budget collapses to k itself.
		budget := it.k
		if len(edges) > 0 {
			budget = edges[len(edges)-1].dist + it.k
		}
		if ld := len(it.query) - len(n.entry.S); ld > budget || -ld > budget {
			it.st.Pruned++
			continue
		}
		it.st.Verifications++
		d, ok := it.dp.Within(n.entry.S, budget)
		if !ok {
			it.st.Abandoned++
			it.st.Pruned++
			continue
		}
		// Triangle inequality: answers in child c require |d - c| <= k.
		// Push descending so children pop in ascending distance order.
		for i := len(edges) - 1; i >= 0; i-- {
			if edges[i].dist >= d-it.k && edges[i].dist <= d+it.k {
				it.stack = append(it.stack, edges[i].node)
			} else {
				it.st.Pruned++
			}
		}
		if d <= it.k {
			return Match{ID: n.entry.ID, S: n.entry.S, Dist: float64(d)}, true
		}
	}
	return Match{}, false
}
