package index

import (
	"math"
	"sync/atomic"

	"repro/internal/metric"
)

// VPTree is a vantage-point tree over an arbitrary triangular metric —
// the continuous-domain sibling of the BK-tree. Every node is a
// vantage point with a radius threshold mu splitting its subtree into
// an inner ball (d <= mu) and an outer shell (d > mu); the triangle
// inequality turns one distance computation per visited node into a
// bound on whole subtrees:
//
//	pruning invariant: a query at distance d from the vantage with
//	search radius tau can only find answers in the inner child when
//	d - tau <= mu, and in the outer child when d + tau >= mu.
//
// Both bounds are inclusive so ties at the boundary visit both sides —
// never losing an equal-distance answer, which keeps the (dist, id)
// result order exactly identical to a brute-force scan's.
//
// The tree is insertion-driven (no bulk median selection): a node's mu
// is fixed by its first child — mu = d(first child, vantage), placing
// that child in the inner ball — and later inserts descend by d <= mu.
// Random insertion order yields acceptably balanced trees without
// rebuild pauses, the same trade the BK-tree makes.
//
// Concurrency contract (identical to BKTree, relied on by the relation
// layer's online maintenance): at most one writer may Insert at a time
// while any number of readers traverse concurrently. Child pointers
// publish atomically and mu is written before its child pointer, so a
// reader that observes a child also observes the mu that routed it.
// Deletion is not an index operation — rows are tombstoned in the
// relation arena and filtered on read; compaction rebuilds the tree.
type VPTree struct {
	m    metric.Distance
	root atomic.Pointer[vpNode]
	size atomic.Int64
}

type vpNode struct {
	id  int
	vec metric.Vector
	mu  float64 // fixed when the first child is attached
	// inner is always attached first; outer may only be non-nil when
	// inner is.
	inner, outer atomic.Pointer[vpNode]
}

// NewVPTree returns an empty tree over the metric. The metric should
// be triangular (metric.Triangular); the planner enforces that, and a
// non-triangular metric would make Range/NearestK silently lossy.
func NewVPTree(m metric.Distance) *VPTree { return &VPTree{m: m} }

// Metric returns the distance the tree is built over.
func (t *VPTree) Metric() metric.Distance { return t.m }

// Len returns the number of indexed entries.
func (t *VPTree) Len() int { return int(t.size.Load()) }

// Insert adds an entry. Duplicate vectors are fine (they land in inner
// balls along zero distances). Single-writer only; see the type
// comment.
func (t *VPTree) Insert(id int, v metric.Vector) {
	n := &vpNode{id: id, vec: v}
	if t.root.Load() == nil {
		t.root.Store(n)
		t.size.Add(1)
		return
	}
	cur := t.root.Load()
	depth := 0
	for {
		depth++
		d := t.m.Dist(v, cur.vec)
		inner := cur.inner.Load()
		if inner == nil {
			// First child fixes the threshold and fills the inner ball.
			// mu is a plain write, but the atomic child store below is a
			// release: any reader that loads the child observes mu.
			cur.mu = d
			cur.inner.Store(n)
			t.size.Add(1)
			vpInsertDepth.Observe(float64(depth))
			return
		}
		if d <= cur.mu {
			cur = inner
			continue
		}
		outer := cur.outer.Load()
		if outer == nil {
			cur.outer.Store(n)
			t.size.Add(1)
			vpInsertDepth.Observe(float64(depth))
			return
		}
		cur = outer
	}
}

// Range returns every entry within distance r of the query.
func (t *VPTree) Range(q metric.Vector, r float64) []Match {
	m, _ := t.RangeStats(q, r)
	return m
}

// RangeStats is Range with work counters: Verifications counts
// distance computations (one per visited node), Candidates the nodes
// visited.
func (t *VPTree) RangeStats(q metric.Vector, r float64) ([]Match, Stats) {
	var out []Match
	it := t.RangeIter(q, r)
	for m, ok := it.Next(); ok; m, ok = it.Next() {
		out = append(out, m)
	}
	return out, it.Stats()
}

// RangeIter returns an incremental range query: matches stream out in
// deterministic traversal order (inner child before outer child) and
// traversal stops as soon as the caller stops pulling.
func (t *VPTree) RangeIter(q metric.Vector, r float64) Iterator {
	it := &vpIter{t: t, q: q, r: r}
	if root := t.root.Load(); root != nil && r >= 0 {
		it.stack = []*vpNode{root}
	}
	return it
}

type vpIter struct {
	t     *VPTree
	q     metric.Vector
	r     float64
	stack []*vpNode
	st    Stats
}

func (it *vpIter) Stats() Stats { return it.st }

func (it *vpIter) Next() (Match, bool) {
	for len(it.stack) > 0 {
		n := it.stack[len(it.stack)-1]
		it.stack = it.stack[:len(it.stack)-1]
		it.st.Candidates++
		it.st.Verifications++
		it.st.Nodes++
		d := it.t.m.Dist(it.q, n.vec)
		// Load children before consulting mu: observing a child is what
		// guarantees mu is visible (release/acquire on the child pointer).
		inner := n.inner.Load()
		outer := n.outer.Load()
		// Push outer first so inner pops first (deterministic inner-
		// before-outer emission order). Inclusive bounds: boundary ties
		// visit both sides.
		if outer != nil {
			if d+it.r >= n.mu {
				it.stack = append(it.stack, outer)
			} else {
				it.st.Pruned++
			}
		}
		if inner != nil {
			if d-it.r <= n.mu {
				it.stack = append(it.stack, inner)
			} else {
				it.st.Pruned++
			}
		}
		if d <= it.r {
			return Match{ID: n.id, Dist: d}, true
		}
	}
	return Match{}, false
}

// NearestK returns the k entries closest to the query, nearest first
// (ties broken by ascending id, the engine's total result order).
func (t *VPTree) NearestK(q metric.Vector, k int) []Match {
	m, _ := t.NearestKFilterStatsInto(nil, q, k, nil)
	return m
}

// NearestKFilterStats is NearestK with work counters, restricted to
// entries the accept function admits (nil accepts everything) — the
// hook MVCC snapshots use to exclude tombstoned and post-snapshot rows
// without losing true answers.
func (t *VPTree) NearestKFilterStats(q metric.Vector, k int, accept func(id int) bool) ([]Match, Stats) {
	return t.NearestKFilterStatsInto(nil, q, k, accept)
}

// NearestKFilterStatsInto is NearestKFilterStats writing the best list
// into dst's backing array (dst may be nil), mirroring the BK-tree's
// buffer-reusing form. The walk is depth-first, near side first, with
// the pruning radius shrinking to the current kth-best distance; the
// rejected entries are never materialised.
func (t *VPTree) NearestKFilterStatsInto(dst []Match, q metric.Vector, k int, accept func(id int) bool) ([]Match, Stats) {
	var st Stats
	best := dst[:0]
	root := t.root.Load()
	if root == nil || k <= 0 {
		return best, st
	}
	var walk func(n *vpNode)
	walk = func(n *vpNode) {
		st.Candidates++
		st.Verifications++
		st.Nodes++
		d := t.m.Dist(q, n.vec)
		if accept == nil || accept(n.id) {
			if len(best) < k || d <= best[len(best)-1].Dist {
				best = PushBestK(best, Match{ID: n.id, Dist: d}, k)
			}
		}
		inner := n.inner.Load()
		outer := n.outer.Load()
		if inner == nil {
			return
		}
		tau := func() float64 {
			if len(best) < k {
				return math.Inf(1)
			}
			return best[len(best)-1].Dist
		}
		// Near side first: descending into the child more likely to hold
		// the query's neighbours shrinks tau before the far side is
		// considered, so the far side is pruned more often. Inclusive
		// bounds keep boundary ties reachable (see the type comment).
		if d <= n.mu {
			if d-tau() <= n.mu {
				walk(inner)
			} else {
				st.Pruned++
			}
			if outer != nil {
				if d+tau() >= n.mu {
					walk(outer)
				} else {
					st.Pruned++
				}
			}
			return
		}
		if outer != nil {
			if d+tau() >= n.mu {
				walk(outer)
			} else {
				st.Pruned++
			}
		}
		if d-tau() <= n.mu {
			walk(inner)
		} else {
			st.Pruned++
		}
	}
	walk(root)
	return best, st
}
