// Package index provides the similarity indexes and candidate filters
// that accelerate range queries and joins in the sequence domain.
//
// Four strategies with identical answer semantics are offered, so the
// query planner (internal/query) can pick one and the F5/F6 experiments
// can race them:
//
//   - Scan: verify every entry (baseline).
//   - LengthIndex: bucket by length; only |len(s)-len(q)| <= k buckets
//     can contain answers at radius k.
//   - QGramIndex: inverted q-gram index with the count filter
//     (overlap >= |q| - g + 1 - k·g), then verification.
//   - BKTree: Burkhard–Keller metric tree; sound for metrics, i.e. for
//     symmetric rule sets with the triangle inequality — the unit edit
//     distance in particular.
//   - Trie: shared-prefix tree walked with the banded edit DP row.
//
// The transformation distance of an arbitrary rule set is a quasi-metric
// (directional), so the planner admits BKTree and Trie only for the
// unit-cost edit distance; the filters and scan work for any edit-like
// set via a Verifier.
//
// The continuous domain mirrors the discrete one: VPTree is the
// vantage-point tree over any pluggable metric.Distance that carries
// the triangle-inequality capability (L2, but not cosine), answering
// NEAREST and WITHIN over float-vector columns behind the same
// Iterator/Stats contracts. VectorIndex is its planner-facing
// interface.
package index

import (
	"repro/internal/editdp"
	"repro/internal/metric"
)

// Entry is one indexed sequence.
type Entry struct {
	ID int
	S  string
}

// Match is one query answer: an entry within the query radius.
type Match struct {
	ID   int
	S    string
	Dist float64
}

// Iterator is a pull-based stream of range-query matches. Abandoning an
// iterator early (e.g. a LIMIT above it) stops the underlying index
// traversal, so work is proportional to the matches actually consumed.
type Iterator interface {
	// Next returns the next match; ok is false when the stream is done.
	Next() (m Match, ok bool)
	// Stats reports the work performed so far.
	Stats() Stats
}

// Index is the planner-facing interface over the metric range indexes:
// any implementation answers unit-edit-distance range queries and
// exposes an incremental iterator with deterministic emission order, so
// the query planner can select BK-tree or trie purely on cost.
type Index interface {
	Len() int
	Range(query string, k int) []Match
	RangeStats(query string, k int) ([]Match, Stats)
	RangeIter(query string, k int) Iterator
}

var (
	_ Index = (*BKTree)(nil)
	_ Index = (*Trie)(nil)
)

// VectorIndex is the planner-facing interface over continuous-domain
// metric indexes: range queries by a float radius over an embedding
// column, with the same deterministic-order Iterator contract as Index.
// Matches carry an empty S — vector entries are fetched by ID from the
// relation arena above the index.
type VectorIndex interface {
	Len() int
	Range(q metric.Vector, r float64) []Match
	RangeStats(q metric.Vector, r float64) ([]Match, Stats)
	RangeIter(q metric.Vector, r float64) Iterator
}

var _ VectorIndex = (*VPTree)(nil)

// PushBestK inserts m into best — kept sorted ascending by (Dist, ID)
// — and truncates to at most k entries. The shared best-list of every
// nearest-k strategy, so tie-breaking stays identical across them.
func PushBestK(best []Match, m Match, k int) []Match {
	i := len(best)
	for i > 0 && (best[i-1].Dist > m.Dist || best[i-1].Dist == m.Dist && best[i-1].ID > m.ID) {
		i--
	}
	best = append(best, Match{})
	copy(best[i+1:], best[i:])
	best[i] = m
	if len(best) > k {
		best = best[:k]
	}
	return best
}

// Verifier decides whether a candidate is a true answer. The unit
// verifier wraps editdp.LevenshteinWithin; weighted verifiers wrap
// Calculator.Within.
type Verifier func(query, candidate string, radius float64) (float64, bool)

// UnitVerifier verifies with the unit-cost banded edit distance.
func UnitVerifier(query, candidate string, radius float64) (float64, bool) {
	d, ok := editdp.LevenshteinWithin(query, candidate, int(radius))
	return float64(d), ok
}

// CalcVerifier adapts a weighted Calculator to a Verifier. Distances are
// measured from the data entry to the query (entries are transformed to
// match the query, per the framework's reduction semantics).
func CalcVerifier(c *editdp.Calculator) Verifier {
	return func(query, candidate string, radius float64) (float64, bool) {
		return c.Within(candidate, query, radius)
	}
}

// Stats counts the work a strategy did for one query; the experiments
// report these next to wall-clock times, and EXPLAIN ANALYZE surfaces
// them per operator.
type Stats struct {
	Candidates    int // entries reaching verification
	Verifications int // verifier invocations
	Nodes         int // tree-index nodes visited during traversal
	Pruned        int // subtrees skipped by a pruning bound
	Abandoned     int // verifications cut short by the early-abandon bound
}

// Add folds another Stats into s.
func (s *Stats) Add(o Stats) {
	s.Candidates += o.Candidates
	s.Verifications += o.Verifications
	s.Nodes += o.Nodes
	s.Pruned += o.Pruned
	s.Abandoned += o.Abandoned
}

// Scan verifies every entry against the query; the correctness baseline
// all other strategies are compared to.
func Scan(entries []Entry, query string, radius float64, v Verifier) ([]Match, Stats) {
	var out []Match
	st := Stats{Candidates: len(entries), Verifications: len(entries)}
	for _, e := range entries {
		if d, ok := v(query, e.S, radius); ok {
			out = append(out, Match{ID: e.ID, S: e.S, Dist: d})
		}
	}
	return out, st
}
