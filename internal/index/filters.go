package index

import "repro/internal/seq"

// LengthIndex buckets entries by length: at radius k with unit-weight
// length changes, answers satisfy |len(s) - len(query)| <= k. Works with
// any Verifier whose distance charges at least 1 per net length change
// (unit edits do). Not safe for concurrent mutation.
type LengthIndex struct {
	buckets map[int][]Entry
	size    int
}

// NewLengthIndex returns an empty index.
func NewLengthIndex() *LengthIndex {
	return &LengthIndex{buckets: make(map[int][]Entry)}
}

// Len returns the number of indexed entries.
func (ix *LengthIndex) Len() int { return ix.size }

// Insert adds an entry.
func (ix *LengthIndex) Insert(id int, s string) {
	ix.size++
	ix.buckets[len(s)] = append(ix.buckets[len(s)], Entry{ID: id, S: s})
}

// Range returns entries within radius of the query per the verifier,
// visiting only the plausible length buckets.
func (ix *LengthIndex) Range(query string, radius float64, v Verifier) ([]Match, Stats) {
	var out []Match
	var st Stats
	k := int(radius)
	for l := len(query) - k; l <= len(query)+k; l++ {
		for _, e := range ix.buckets[l] {
			st.Candidates++
			st.Verifications++
			if d, ok := v(query, e.S, radius); ok {
				out = append(out, Match{ID: e.ID, S: e.S, Dist: d})
			}
		}
	}
	return out, st
}

// QGramIndex is an inverted index from q-grams to entries implementing
// the count filter: if ed(x,y) <= k then the q-gram profiles of x and y
// share at least |x| - q + 1 - k·q grams. Entries failing that bound are
// pruned without verification. Not safe for concurrent mutation.
type QGramIndex struct {
	q        int
	postings map[string]map[int]int // gram -> entry id -> multiplicity
	entries  map[int]Entry
	short    []Entry // entries shorter than q never appear in postings
}

// NewQGramIndex returns an empty index with gram size q (q >= 1).
func NewQGramIndex(q int) *QGramIndex {
	if q < 1 {
		q = 2
	}
	return &QGramIndex{
		q:        q,
		postings: make(map[string]map[int]int),
		entries:  make(map[int]Entry),
	}
}

// Q returns the gram size.
func (ix *QGramIndex) Q() int { return ix.q }

// Len returns the number of indexed entries.
func (ix *QGramIndex) Len() int { return len(ix.entries) + len(ix.short) }

// Insert adds an entry.
func (ix *QGramIndex) Insert(id int, s string) {
	if len(s) < ix.q {
		ix.short = append(ix.short, Entry{ID: id, S: s})
		return
	}
	ix.entries[id] = Entry{ID: id, S: s}
	for g, n := range seq.QGrams(s, ix.q) {
		m, ok := ix.postings[g]
		if !ok {
			m = make(map[int]int)
			ix.postings[g] = m
		}
		m[id] = n
	}
}

// Range returns entries within radius of the query per the verifier.
// The count filter uses the unit-edit bound, so radius is interpreted
// in unit edits for pruning; verification uses the supplied verifier,
// keeping the result exact for any verifier at least as strict.
func (ix *QGramIndex) Range(query string, radius float64, v Verifier) ([]Match, Stats) {
	var out []Match
	var st Stats
	k := int(radius)
	threshold := len(query) - ix.q + 1 - k*ix.q

	verify := func(e Entry) {
		st.Verifications++
		if d, ok := v(query, e.S, radius); ok {
			out = append(out, Match{ID: e.ID, S: e.S, Dist: d})
		}
	}

	// Short entries have no grams; the filter says nothing about them.
	for _, e := range ix.short {
		if seq.AbsDiff(len(e.S), len(query)) <= k {
			st.Candidates++
			verify(e)
		}
	}

	if threshold <= 0 {
		// Filter vacuous: verify everything in the length window.
		for _, e := range ix.entries {
			if seq.AbsDiff(len(e.S), len(query)) <= k {
				st.Candidates++
				verify(e)
			}
		}
		return out, st
	}

	overlap := make(map[int]int)
	for g, nq := range seq.QGrams(query, ix.q) {
		for id, ne := range ix.postings[g] {
			if ne < nq {
				overlap[id] += ne
			} else {
				overlap[id] += nq
			}
		}
	}
	for id, ov := range overlap {
		if ov < threshold {
			continue
		}
		e := ix.entries[id]
		if seq.AbsDiff(len(e.S), len(query)) > k {
			continue
		}
		st.Candidates++
		verify(e)
	}
	return out, st
}
