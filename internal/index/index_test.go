package index

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/editdp"
	"repro/internal/rewrite"
	"repro/internal/seq"
)

// dictionary builds a deterministic random dictionary with planted
// near-duplicates so range queries have non-trivial answers.
func dictionary(seed int64, n int) []Entry {
	a := seq.MustAlphabet("abcdef")
	rng := rand.New(rand.NewSource(seed))
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		var s string
		if i > 0 && rng.Intn(4) == 0 {
			s = a.RandomEdits(rng, entries[rng.Intn(i)].S, 1+rng.Intn(2))
		} else {
			s = a.Random(rng, 3+rng.Intn(10))
		}
		entries = append(entries, Entry{ID: i, S: s})
	}
	return entries
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
}

func assertSameMatches(t *testing.T, name string, got, want []Match) {
	t.Helper()
	sortMatches(got)
	sortMatches(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("%s: match %d = %+v, want %+v", name, i, got[i], want[i])
		}
	}
}

// TestAllStrategiesAgree is the core soundness test: every index
// strategy must return exactly the scan answer.
func TestAllStrategiesAgree(t *testing.T) {
	entries := dictionary(1, 800)
	bk := NewBKTree()
	tr := NewTrie()
	li := NewLengthIndex()
	qg := NewQGramIndex(2)
	for _, e := range entries {
		bk.Insert(e.ID, e.S)
		tr.Insert(e.ID, e.S)
		li.Insert(e.ID, e.S)
		qg.Insert(e.ID, e.S)
	}
	a := seq.MustAlphabet("abcdef")
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		var query string
		if trial%2 == 0 {
			query = entries[rng.Intn(len(entries))].S
		} else {
			query = a.Random(rng, 3+rng.Intn(10))
		}
		for k := 0; k <= 3; k++ {
			want, _ := Scan(entries, query, float64(k), UnitVerifier)
			got := bk.Range(query, k)
			assertSameMatches(t, "bktree", got, want)
			got = tr.Range(query, k)
			assertSameMatches(t, "trie", got, want)
			got, _ = li.Range(query, float64(k), UnitVerifier)
			assertSameMatches(t, "length", got, want)
			got, _ = qg.Range(query, float64(k), UnitVerifier)
			assertSameMatches(t, "qgram", got, want)
		}
	}
}

func TestBKTreeEmpty(t *testing.T) {
	bk := NewBKTree()
	if got := bk.Range("abc", 2); got != nil {
		t.Errorf("empty tree Range = %v", got)
	}
	if bk.Len() != 0 {
		t.Errorf("Len = %d", bk.Len())
	}
}

func TestBKTreeDuplicates(t *testing.T) {
	bk := NewBKTree()
	bk.Insert(1, "abc")
	bk.Insert(2, "abc")
	bk.Insert(3, "abd")
	got := bk.Range("abc", 0)
	if len(got) != 2 {
		t.Fatalf("duplicates: %d matches, want 2", len(got))
	}
	if bk.Len() != 3 {
		t.Errorf("Len = %d, want 3", bk.Len())
	}
}

func TestBKTreePrunes(t *testing.T) {
	entries := dictionary(3, 2000)
	bk := NewBKTree()
	for _, e := range entries {
		bk.Insert(e.ID, e.S)
	}
	_, st := bk.RangeStats(entries[7].S, 1)
	if st.Verifications >= len(entries) {
		t.Errorf("BK-tree did not prune: %d verifications for %d entries", st.Verifications, len(entries))
	}
}

func TestTrieContains(t *testing.T) {
	tr := NewTrie()
	tr.Insert(1, "abc")
	tr.Insert(2, "ab")
	if !tr.Contains("abc") || !tr.Contains("ab") {
		t.Error("Contains misses inserted strings")
	}
	if tr.Contains("a") || tr.Contains("abcd") || tr.Contains("zzz") {
		t.Error("Contains false positives")
	}
}

func TestTrieEmptyString(t *testing.T) {
	tr := NewTrie()
	tr.Insert(1, "")
	got := tr.Range("", 0)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("empty-string entry: %v", got)
	}
	got = tr.Range("a", 1)
	if len(got) != 1 {
		t.Fatalf("empty string within 1 of \"a\": %v", got)
	}
}

func TestTrieNegativeRadius(t *testing.T) {
	tr := NewTrie()
	tr.Insert(1, "abc")
	if got := tr.Range("abc", -1); got != nil {
		t.Errorf("negative radius: %v", got)
	}
	bk := NewBKTree()
	bk.Insert(1, "abc")
	if got := bk.Range("abc", -1); got != nil {
		t.Errorf("negative radius: %v", got)
	}
}

func TestQGramShortStrings(t *testing.T) {
	qg := NewQGramIndex(3)
	qg.Insert(1, "ab") // shorter than q
	qg.Insert(2, "abcde")
	got, _ := qg.Range("ab", 0, UnitVerifier)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("short string lost: %v", got)
	}
}

func TestQGramPrunes(t *testing.T) {
	entries := dictionary(5, 3000)
	qg := NewQGramIndex(2)
	for _, e := range entries {
		qg.Insert(e.ID, e.S)
	}
	query := entries[11].S
	if len(query) < 7 {
		for _, e := range entries {
			if len(e.S) >= 9 {
				query = e.S
				break
			}
		}
	}
	_, st := qg.Range(query, 1, UnitVerifier)
	if st.Verifications >= len(entries)/2 {
		t.Errorf("q-gram filter did not prune: %d verifications for %d entries", st.Verifications, len(entries))
	}
}

func TestLengthIndexPrunes(t *testing.T) {
	li := NewLengthIndex()
	li.Insert(1, "a")
	li.Insert(2, "abcdefgh")
	_, st := li.Range("ab", 1, UnitVerifier)
	if st.Verifications != 1 {
		t.Errorf("length filter verified %d entries, want 1", st.Verifications)
	}
}

func TestCalcVerifierDirection(t *testing.T) {
	// Deletion-only rules: entry "ab" reduces to query "a", but entry
	// "a" cannot grow into query "ab".
	rs := rewrite.MustRuleSet("del", []rewrite.Rule{rewrite.Delete('b', 1)})
	c, err := editdp.New(rs)
	if err != nil {
		t.Fatal(err)
	}
	v := CalcVerifier(c)
	if _, ok := v("a", "ab", 1); !ok {
		t.Error("entry ab should reduce to query a within 1")
	}
	if _, ok := v("ab", "a", 5); ok {
		t.Error("entry a cannot grow into query ab under deletions only")
	}
}

func TestScanWithWeightedVerifier(t *testing.T) {
	rs := rewrite.MustRuleSet("w", []rewrite.Rule{
		rewrite.Subst('a', 'b', 0.25), rewrite.Subst('b', 'a', 0.25),
	})
	c, err := editdp.New(rs)
	if err != nil {
		t.Fatal(err)
	}
	entries := []Entry{{1, "aa"}, {2, "ab"}, {3, "bb"}, {4, "aaa"}}
	got, _ := Scan(entries, "aa", 0.5, CalcVerifier(c))
	sortMatches(got)
	if len(got) != 3 {
		t.Fatalf("weighted scan: %d matches, want 3 (aa@0, ab@.25, bb@.5): %v", len(got), got)
	}
	if got[0].Dist != 0 || got[1].Dist != 0.25 || got[2].Dist != 0.5 {
		t.Errorf("distances = %v", got)
	}
}
