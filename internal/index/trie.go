package index

import (
	"sort"
	"sync/atomic"

	"repro/internal/editdp"
)

// Trie is a shared-prefix tree searched with the classic edit-distance
// row propagation: the DP row for a node is computed once and shared by
// every word below it, so range search at small radii touches only a
// thin band of the dictionary. Unit costs only (the same metric caveat
// as BKTree).
//
// Concurrency contract: same as BKTree — a single serialized writer may
// Insert while any number of readers traverse. Child lists and terminal
// entry lists are immutable slices behind atomic pointers, swapped
// wholesale on insert. Deletes are handled above the index by MVCC
// tombstones; compaction rebuilds a fresh trie.
type Trie struct {
	root *trieNode
	size atomic.Int64
}

type trieNode struct {
	edges atomic.Pointer[[]trieEdge] // ascending by byte; copy-on-write
	// terminal entries ending at this node (same string, many ids).
	terminal atomic.Pointer[[]Entry]
}

type trieEdge struct {
	c    byte
	node *trieNode
}

func (n *trieNode) loadEdges() []trieEdge {
	if p := n.edges.Load(); p != nil {
		return *p
	}
	return nil
}

func (n *trieNode) loadTerminal() []Entry {
	if p := n.terminal.Load(); p != nil {
		return *p
	}
	return nil
}

// child returns the subtree along the byte c, if any.
func (n *trieNode) child(c byte) *trieNode {
	es := n.loadEdges()
	i := sort.Search(len(es), func(i int) bool { return es[i].c >= c })
	if i < len(es) && es[i].c == c {
		return es[i].node
	}
	return nil
}

// addEdge publishes a new child list containing c -> t. Single-writer.
func (n *trieNode) addEdge(c byte, t *trieNode) {
	old := n.loadEdges()
	i := sort.Search(len(old), func(i int) bool { return old[i].c >= c })
	es := make([]trieEdge, 0, len(old)+1)
	es = append(es, old[:i]...)
	es = append(es, trieEdge{c: c, node: t})
	es = append(es, old[i:]...)
	n.edges.Store(&es)
}

// NewTrie returns an empty trie.
func NewTrie() *Trie { return &Trie{root: &trieNode{}} }

// Len returns the number of indexed entries.
func (t *Trie) Len() int { return int(t.size.Load()) }

// Insert adds an entry. Single-writer only; see the type comment.
func (t *Trie) Insert(id int, s string) {
	cur := t.root
	for i := 0; i < len(s); i++ {
		c := s[i]
		next := cur.child(c)
		if next == nil {
			next = &trieNode{}
			cur.addEdge(c, next)
		}
		cur = next
	}
	old := cur.loadTerminal()
	term := make([]Entry, 0, len(old)+1)
	term = append(term, old...)
	term = append(term, Entry{ID: id, S: s})
	cur.terminal.Store(&term)
	t.size.Add(1)
	trieInsertDepth.Observe(float64(len(s)))
}

// Contains reports whether some entry equals s.
func (t *Trie) Contains(s string) bool {
	cur := t.root
	for i := 0; i < len(s); i++ {
		next := cur.child(s[i])
		if next == nil {
			return false
		}
		cur = next
	}
	return len(cur.loadTerminal()) > 0
}

// Range returns every entry within unit edit distance k of the query.
func (t *Trie) Range(query string, k int) []Match {
	m, _ := t.RangeStats(query, k)
	return m
}

// RangeStats is Range with work counters: Candidates counts trie nodes
// visited, Verifications counts DP row computations.
func (t *Trie) RangeStats(query string, k int) ([]Match, Stats) {
	var out []Match
	it := t.RangeIter(query, k)
	for m, ok := it.Next(); ok; m, ok = it.Next() {
		out = append(out, m)
	}
	return out, it.Stats()
}

// RangeIter returns an incremental range query: matches stream out in
// deterministic lexicographic prefix order and the traversal stops as
// soon as the caller stops pulling.
func (t *Trie) RangeIter(query string, k int) Iterator {
	it := &trieIter{query: query, k: k}
	if k >= 0 {
		if dp := editdp.NewQueryDP(query); dp.SingleWord() {
			// Bit-parallel row propagation: one 17-byte MyersState per
			// frame instead of an O(|query|) integer row per edge.
			it.dp = dp
			it.stack = []trieFrame{{node: t.root, ms: dp.Start()}}
		} else {
			// Scalar fallback: query longer than one word (or the kernel
			// is disabled), keep the classic row frames.
			m := len(query)
			row := make([]int, m+1)
			for j := range row {
				row[j] = j
			}
			it.stack = []trieFrame{{node: t.root, row: row}}
		}
	}
	return it
}

type trieFrame struct {
	node  *trieNode
	row   []int             // scalar DP row (dp == nil)
	ms    editdp.MyersState // bit-parallel column (dp != nil)
	depth int               // trie depth of node, for RowMin
}

type trieIter struct {
	query   string
	k       int
	stack   []trieFrame
	pending []Match
	st      Stats
	dp      *editdp.QueryDP // non-nil: bit-parallel traversal
}

func (it *trieIter) Stats() Stats { return it.st }

func (it *trieIter) Next() (Match, bool) {
	for {
		if len(it.pending) > 0 {
			m := it.pending[0]
			it.pending = it.pending[1:]
			return m, true
		}
		if len(it.stack) == 0 {
			return Match{}, false
		}
		f := it.stack[len(it.stack)-1]
		it.stack = it.stack[:len(it.stack)-1]
		it.st.Candidates++
		it.st.Nodes++
		if it.dp != nil {
			it.nextBitParallel(f)
			continue
		}
		m := len(it.query)
		if f.row[m] <= it.k {
			for _, e := range f.node.loadTerminal() {
				it.pending = append(it.pending, Match{ID: e.ID, S: e.S, Dist: float64(f.row[m])})
			}
		}
		if minInt(f.row) > it.k {
			it.st.Pruned++
			continue
		}
		// Push children in descending byte order so they pop ascending.
		edges := f.node.loadEdges()
		for i := len(edges) - 1; i >= 0; i-- {
			it.st.Verifications++
			cur := nextRow(it.query, f.row, edges[i].c)
			it.stack = append(it.stack, trieFrame{node: edges[i].node, row: cur})
		}
	}
}

// nextBitParallel expands one frame of the Myers traversal: identical
// visit order, match set and distances to the scalar row walk.
func (it *trieIter) nextBitParallel(f trieFrame) {
	if f.ms.Score <= it.k {
		for _, e := range f.node.loadTerminal() {
			it.pending = append(it.pending, Match{ID: e.ID, S: e.S, Dist: float64(f.ms.Score)})
		}
	}
	// Prune when even the cheapest row cell exceeds k; when the score is
	// already within k the minimum cannot exceed it, so skip the fold.
	if f.ms.Score > it.k && it.dp.RowMin(f.ms, f.depth) > it.k {
		it.st.Pruned++
		return
	}
	edges := f.node.loadEdges()
	for i := len(edges) - 1; i >= 0; i-- {
		it.st.Verifications++
		it.stack = append(it.stack, trieFrame{
			node:  edges[i].node,
			ms:    it.dp.Step(f.ms, edges[i].c),
			depth: f.depth + 1,
		})
	}
}

// nextRow advances the edit-distance DP by one trie edge labelled c.
func nextRow(query string, prevRow []int, c byte) []int {
	m := len(query)
	cur := make([]int, m+1)
	cur[0] = prevRow[0] + 1
	for j := 1; j <= m; j++ {
		cost := 1
		if query[j-1] == c {
			cost = 0
		}
		best := prevRow[j-1] + cost
		if v := prevRow[j] + 1; v < best {
			best = v
		}
		if v := cur[j-1] + 1; v < best {
			best = v
		}
		cur[j] = best
	}
	return cur
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
