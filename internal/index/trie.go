package index

import "sort"

// Trie is a shared-prefix tree searched with the classic edit-distance
// row propagation: the DP row for a node is computed once and shared by
// every word below it, so range search at small radii touches only a
// thin band of the dictionary. Unit costs only (the same metric caveat
// as BKTree). Not safe for concurrent mutation.
type Trie struct {
	root *trieNode
	size int
}

type trieNode struct {
	children map[byte]*trieNode
	keys     []byte // child bytes, ascending (maintained on insert)
	// terminal entries ending at this node (same string, many ids).
	terminal []Entry
}

// NewTrie returns an empty trie.
func NewTrie() *Trie { return &Trie{root: &trieNode{}} }

// Len returns the number of indexed entries.
func (t *Trie) Len() int { return t.size }

// Insert adds an entry.
func (t *Trie) Insert(id int, s string) {
	t.size++
	cur := t.root
	for i := 0; i < len(s); i++ {
		c := s[i]
		if cur.children == nil {
			cur.children = make(map[byte]*trieNode)
		}
		next, ok := cur.children[c]
		if !ok {
			next = &trieNode{}
			cur.children[c] = next
			i := sort.Search(len(cur.keys), func(i int) bool { return cur.keys[i] >= c })
			cur.keys = append(cur.keys, 0)
			copy(cur.keys[i+1:], cur.keys[i:])
			cur.keys[i] = c
		}
		cur = next
	}
	cur.terminal = append(cur.terminal, Entry{ID: id, S: s})
}

// Contains reports whether some entry equals s.
func (t *Trie) Contains(s string) bool {
	cur := t.root
	for i := 0; i < len(s); i++ {
		next, ok := cur.children[s[i]]
		if !ok {
			return false
		}
		cur = next
	}
	return len(cur.terminal) > 0
}

// Range returns every entry within unit edit distance k of the query.
func (t *Trie) Range(query string, k int) []Match {
	m, _ := t.RangeStats(query, k)
	return m
}

// RangeStats is Range with work counters: Candidates counts trie nodes
// visited, Verifications counts DP row computations.
func (t *Trie) RangeStats(query string, k int) ([]Match, Stats) {
	var out []Match
	it := t.RangeIter(query, k)
	for m, ok := it.Next(); ok; m, ok = it.Next() {
		out = append(out, m)
	}
	return out, it.Stats()
}

// RangeIter returns an incremental range query: matches stream out in
// deterministic lexicographic prefix order and the traversal stops as
// soon as the caller stops pulling.
func (t *Trie) RangeIter(query string, k int) Iterator {
	it := &trieIter{query: query, k: k}
	if k >= 0 {
		m := len(query)
		row := make([]int, m+1)
		for j := range row {
			row[j] = j
		}
		it.stack = []trieFrame{{node: t.root, row: row}}
	}
	return it
}

type trieFrame struct {
	node *trieNode
	row  []int
}

type trieIter struct {
	query   string
	k       int
	stack   []trieFrame
	pending []Match
	st      Stats
}

func (it *trieIter) Stats() Stats { return it.st }

func (it *trieIter) Next() (Match, bool) {
	for {
		if len(it.pending) > 0 {
			m := it.pending[0]
			it.pending = it.pending[1:]
			return m, true
		}
		if len(it.stack) == 0 {
			return Match{}, false
		}
		f := it.stack[len(it.stack)-1]
		it.stack = it.stack[:len(it.stack)-1]
		it.st.Candidates++
		m := len(it.query)
		if f.row[m] <= it.k {
			for _, e := range f.node.terminal {
				it.pending = append(it.pending, Match{ID: e.ID, S: e.S, Dist: float64(f.row[m])})
			}
		}
		if minInt(f.row) > it.k {
			continue
		}
		// Push children in descending byte order so they pop ascending.
		for i := len(f.node.keys) - 1; i >= 0; i-- {
			c := f.node.keys[i]
			it.st.Verifications++
			cur := nextRow(it.query, f.row, c)
			it.stack = append(it.stack, trieFrame{node: f.node.children[c], row: cur})
		}
	}
}

// nextRow advances the edit-distance DP by one trie edge labelled c.
func nextRow(query string, prevRow []int, c byte) []int {
	m := len(query)
	cur := make([]int, m+1)
	cur[0] = prevRow[0] + 1
	for j := 1; j <= m; j++ {
		cost := 1
		if query[j-1] == c {
			cost = 0
		}
		best := prevRow[j-1] + cost
		if v := prevRow[j] + 1; v < best {
			best = v
		}
		if v := cur[j-1] + 1; v < best {
			best = v
		}
		cur[j] = best
	}
	return cur
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
