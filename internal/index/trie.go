package index

// Trie is a shared-prefix tree searched with the classic edit-distance
// row propagation: the DP row for a node is computed once and shared by
// every word below it, so range search at small radii touches only a
// thin band of the dictionary. Unit costs only (the same metric caveat
// as BKTree). Not safe for concurrent mutation.
type Trie struct {
	root *trieNode
	size int
}

type trieNode struct {
	children map[byte]*trieNode
	// terminal entries ending at this node (same string, many ids).
	terminal []Entry
}

// NewTrie returns an empty trie.
func NewTrie() *Trie { return &Trie{root: &trieNode{}} }

// Len returns the number of indexed entries.
func (t *Trie) Len() int { return t.size }

// Insert adds an entry.
func (t *Trie) Insert(id int, s string) {
	t.size++
	cur := t.root
	for i := 0; i < len(s); i++ {
		c := s[i]
		if cur.children == nil {
			cur.children = make(map[byte]*trieNode)
		}
		next, ok := cur.children[c]
		if !ok {
			next = &trieNode{}
			cur.children[c] = next
		}
		cur = next
	}
	cur.terminal = append(cur.terminal, Entry{ID: id, S: s})
}

// Contains reports whether some entry equals s.
func (t *Trie) Contains(s string) bool {
	cur := t.root
	for i := 0; i < len(s); i++ {
		next, ok := cur.children[s[i]]
		if !ok {
			return false
		}
		cur = next
	}
	return len(cur.terminal) > 0
}

// Range returns every entry within unit edit distance k of the query.
func (t *Trie) Range(query string, k int) []Match {
	m, _ := t.RangeStats(query, k)
	return m
}

// RangeStats is Range with work counters: Candidates counts trie nodes
// visited, Verifications counts DP row computations.
func (t *Trie) RangeStats(query string, k int) ([]Match, Stats) {
	var out []Match
	var st Stats
	if k < 0 {
		return nil, st
	}
	m := len(query)
	row := make([]int, m+1)
	for j := range row {
		row[j] = j
	}
	st.Candidates++
	if min(row) <= k && row[m] <= k {
		for _, e := range t.root.terminal {
			out = append(out, Match{ID: e.ID, S: e.S, Dist: float64(row[m])})
		}
	}
	var walk func(n *trieNode, prevRow []int)
	walk = func(n *trieNode, prevRow []int) {
		for c, child := range n.children {
			st.Candidates++
			st.Verifications++
			cur := make([]int, m+1)
			cur[0] = prevRow[0] + 1
			for j := 1; j <= m; j++ {
				cost := 1
				if query[j-1] == c {
					cost = 0
				}
				best := prevRow[j-1] + cost
				if v := prevRow[j] + 1; v < best {
					best = v
				}
				if v := cur[j-1] + 1; v < best {
					best = v
				}
				cur[j] = best
			}
			if cur[m] <= k {
				for _, e := range child.terminal {
					out = append(out, Match{ID: e.ID, S: e.S, Dist: float64(cur[m])})
				}
			}
			if min(cur) <= k {
				walk(child, cur)
			}
		}
	}
	walk(t.root, row)
	return out, st
}

func min(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
