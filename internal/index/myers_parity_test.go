package index

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/editdp"
)

// buildCorpus returns a word list with heavy prefix sharing, duplicate
// strings, a few very long (>64 byte) entries and non-ASCII bytes — the
// shapes that exercise every kernel branch.
func buildCorpus(rng *rand.Rand, n int) []string {
	stems := []string{"color", "colour", "colon", "cool", "kernel", "k\xffrnel", ""}
	words := make([]string, 0, n)
	for i := 0; i < n; i++ {
		w := stems[rng.Intn(len(stems))]
		for j := rng.Intn(5); j > 0; j-- {
			w += string(rune('a' + rng.Intn(4)))
		}
		if rng.Intn(20) == 0 {
			w = strings.Repeat(w+"x", 9) // push past 64 bytes
		}
		words = append(words, w)
	}
	return words
}

func bruteRange(words []string, query string, k int) []Match {
	var out []Match
	for id, w := range words {
		if d := editdp.Levenshtein(query, w); d <= k {
			out = append(out, Match{ID: id, S: w, Dist: float64(d)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func bruteNearestK(words []string, query string, k int) []Match {
	var best []Match
	for id, w := range words {
		d := editdp.Levenshtein(query, w)
		best = PushBestK(best, Match{ID: id, S: w, Dist: float64(d)}, k)
	}
	return best
}

func sortedByID(ms []Match) []Match {
	out := append([]Match(nil), ms...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TestIndexMyersParity pins that BK-tree and trie traversals return
// exactly the brute-force match sets — with the bit-parallel kernel on
// AND off, so the length-rejection and budget-bounded paths cannot
// drop or reorder a single (dist, id) pair.
func TestIndexMyersParity(t *testing.T) {
	defer editdp.SetBitParallel(true)
	rng := rand.New(rand.NewSource(42))
	words := buildCorpus(rng, 400)

	queries := []string{"color", "colouring", "k\xffrnel", "", "zzzz",
		strings.Repeat("colorx", 15), // >64 bytes: block kernel / scalar trie
	}
	for _, kernel := range []bool{true, false} {
		editdp.SetBitParallel(kernel)
		bk := NewBKTree()
		tr := NewTrie()
		for id, w := range words {
			bk.Insert(id, w)
			tr.Insert(id, w)
		}
		for _, q := range queries {
			for k := 0; k <= 4; k++ {
				want := bruteRange(words, q, k)
				bkGot, _ := bk.RangeStats(q, k)
				if got := sortedByID(bkGot); !reflect.DeepEqual(got, want) {
					t.Errorf("kernel=%v BKTree.Range(%q, %d) = %v, want %v", kernel, q, k, got, want)
				}
				trGot, _ := tr.RangeStats(q, k)
				if got := sortedByID(trGot); !reflect.DeepEqual(got, want) {
					t.Errorf("kernel=%v Trie.Range(%q, %d) = %v, want %v", kernel, q, k, got, want)
				}
			}
			for _, k := range []int{1, 3, 10} {
				want := bruteNearestK(words, q, k)
				if got := bk.NearestK(q, k); !reflect.DeepEqual(got, want) {
					t.Errorf("kernel=%v BKTree.NearestK(%q, %d) = %v, want %v", kernel, q, k, got, want)
				}
			}
		}
	}
}

// TestBKTreeLengthRejectionPrunes pins that the length-difference fast
// path skips DP work on nodes the triangle inequality admits: the leaf
// "ijklmnop" sits at edge distance 8 from the root, inside the [d-k,
// d+k] = [7, 9] admission band for the doubled query, but its length
// skew of 8 exceeds the leaf budget k=1 — so it is visited, never
// verified, and the match set is unchanged.
func TestBKTreeLengthRejectionPrunes(t *testing.T) {
	bk := NewBKTree()
	bk.Insert(0, "abcdefgh")
	bk.Insert(1, "ijklmnop")
	query := strings.Repeat("abcdefgh", 2)
	got, st := bk.RangeStats(query, 1)
	if len(got) != 0 {
		t.Errorf("RangeStats(%q, 1) = %v, want no matches", query, got)
	}
	if st.Candidates != 2 {
		t.Errorf("Candidates = %d, want 2 (leaf admitted by triangle band)", st.Candidates)
	}
	if st.Verifications != 1 {
		t.Errorf("Verifications = %d, want 1 (leaf skipped by length rejection)", st.Verifications)
	}
}
