package index

// Batch iteration over the metric indexes. The vectorized execution
// engine (internal/query) pulls matches a block at a time instead of
// one per call: NextBatch fills a caller-owned slice, so the per-match
// interface dispatch of Iterator.Next is paid once per block and the
// caller's match buffer is reused across blocks.

// BatchIterator is an Iterator that can also fill a block of matches
// per call. Both range iterators (BK-tree and trie) implement it.
type BatchIterator interface {
	Iterator
	// NextBatch fills dst from the front and returns how many matches it
	// produced; fewer than len(dst) — including 0 — means the stream is
	// done. Traversal state is shared with Next, so the two can be mixed.
	NextBatch(dst []Match) int
}

var (
	_ BatchIterator = (*bkIter)(nil)
	_ BatchIterator = (*trieIter)(nil)
)

// NextBatch fills dst with the next matches of the BK-tree traversal.
func (it *bkIter) NextBatch(dst []Match) int {
	n := 0
	for n < len(dst) {
		m, ok := it.Next()
		if !ok {
			break
		}
		dst[n] = m
		n++
	}
	return n
}

// NextBatch fills dst with the next matches of the trie traversal.
func (it *trieIter) NextBatch(dst []Match) int {
	n := 0
	for n < len(dst) {
		m, ok := it.Next()
		if !ok {
			break
		}
		dst[n] = m
		n++
	}
	return n
}
