package index

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// randWords returns n deterministic pseudo-random words over a-f.
func randWords(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		b := make([]byte, 3+rng.Intn(6))
		for j := range b {
			b[j] = byte('a' + rng.Intn(6))
		}
		out[i] = string(b)
	}
	return out
}

// TestOnlineInsertMatchesRebuild checks that a tree grown one insert at
// a time answers exactly like one built from scratch over the same
// entries, for both index structures.
func TestOnlineInsertMatchesRebuild(t *testing.T) {
	words := randWords(7, 500)
	bk, tr := NewBKTree(), NewTrie()
	for i, w := range words {
		bk.Insert(i, w)
		tr.Insert(i, w)
	}
	freshBK, freshTr := NewBKTree(), NewTrie()
	for i, w := range words {
		freshBK.Insert(i, w)
		freshTr.Insert(i, w)
	}
	for _, q := range []string{"abc", "fedcba", "aaaa", words[42]} {
		for k := 0; k <= 2; k++ {
			want := sortedMatches(freshBK.Range(q, k))
			for name, got := range map[string][]Match{
				"bktree": bk.Range(q, k),
				"trie":   tr.Range(q, k),
				"trie2":  freshTr.Range(q, k),
			} {
				got = sortedMatches(got)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("%s Range(%q,%d) = %v, want %v", name, q, k, got, want)
				}
			}
		}
	}
}

func sortedMatches(ms []Match) []Match {
	out := append([]Match(nil), ms...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TestConcurrentReadersDuringInsert drives many readers through both
// indexes while a single writer inserts — the storage engine's online
// maintenance pattern. Run under -race this pins the copy-on-write
// publication discipline; functionally each reader must see at least
// the entries present before it started.
func TestConcurrentReadersDuringInsert(t *testing.T) {
	words := randWords(11, 2000)
	bk, tr := NewBKTree(), NewTrie()
	const preload = 500
	for i := 0; i < preload; i++ {
		bk.Insert(i, words[i])
		tr.Insert(i, words[i])
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := words[(r*31+i)%preload]
				got := map[int]bool{}
				for _, m := range bk.Range(q, 1) {
					got[m.ID] = true
				}
				if !got[(r*31+i)%preload] {
					t.Errorf("bktree lost preloaded entry %q", q)
					return
				}
				got = map[int]bool{}
				for _, m := range tr.Range(q, 1) {
					got[m.ID] = true
				}
				if !got[(r*31+i)%preload] {
					t.Errorf("trie lost preloaded entry %q", q)
					return
				}
				if nk := bk.NearestK(q, 3); len(nk) == 0 || nk[0].Dist != 0 {
					t.Errorf("bktree NearestK(%q) = %v", q, nk)
					return
				}
			}
		}(r)
	}
	for i := preload; i < len(words); i++ {
		bk.Insert(i, words[i])
		tr.Insert(i, words[i])
	}
	close(stop)
	wg.Wait()

	if bk.Len() != len(words) || tr.Len() != len(words) {
		t.Fatalf("Len = %d/%d, want %d", bk.Len(), tr.Len(), len(words))
	}
}

// TestNearestKFilter checks that the visibility filter excludes entries
// without losing true answers.
func TestNearestKFilter(t *testing.T) {
	bk := NewBKTree()
	words := []string{"aaa", "aab", "abb", "bbb", "ccc"}
	for i, w := range words {
		bk.Insert(i, w)
	}
	dead := map[int]bool{0: true, 1: true} // tombstone aaa, aab
	got, _ := bk.NearestKFilterStats("aaa", 2, func(id int) bool { return !dead[id] })
	if len(got) != 2 || got[0].S != "abb" || got[1].S != "bbb" {
		t.Fatalf("filtered NearestK = %v, want abb,bbb", got)
	}
}
