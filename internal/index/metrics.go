package index

import "repro/internal/obs"

// depthBuckets bounds the insert-depth histograms. The unit is tree
// levels, not seconds, so the registry's default latency layout does
// not apply; the bounds double (roughly) because a healthy tree's depth
// grows logarithmically in its size.
var depthBuckets = []float64{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96}

// Insert-depth histograms, one series per index kind. Depth is the
// number of existing nodes an insert walked before attaching — the
// live balance signal for the insertion-driven trees (a degenerate
// insertion order shows up here long before query latency degrades).
var (
	bkInsertDepth = obs.Default.Histogram(
		`simq_index_insert_depth{index="bktree"}`,
		"Nodes walked before an index insert attached.", depthBuckets)
	trieInsertDepth = obs.Default.Histogram(
		`simq_index_insert_depth{index="trie"}`,
		"Nodes walked before an index insert attached.", depthBuckets)
	vpInsertDepth = obs.Default.Histogram(
		`simq_index_insert_depth{index="vptree"}`,
		"Nodes walked before an index insert attached.", depthBuckets)
)
