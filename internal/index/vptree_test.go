package index

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/metric"
)

func randVecs(rng *rand.Rand, n, dim int) []metric.Vector {
	out := make([]metric.Vector, n)
	for i := range out {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		out[i] = v
	}
	return out
}

// bruteNearestK and bruteRange are the independent oracle every VP-tree
// answer is pinned against, sharing only metric.Distance with the tree.
func vecBruteNearestK(m metric.Distance, vecs []metric.Vector, q metric.Vector, k int, accept func(id int) bool) []Match {
	var best []Match
	for id, v := range vecs {
		if accept != nil && !accept(id) {
			continue
		}
		best = PushBestK(best, Match{ID: id, Dist: m.Dist(q, v)}, k)
	}
	return best
}

func vecBruteRange(m metric.Distance, vecs []metric.Vector, q metric.Vector, r float64) []Match {
	var out []Match
	for id, v := range vecs {
		if d := m.Dist(q, v); d <= r {
			out = append(out, Match{ID: id, Dist: d})
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessMatchID(out[i], out[j]) })
	return out
}

func lessMatchID(a, b Match) bool { return a.ID < b.ID }

func sortByID(ms []Match) []Match {
	out := append([]Match(nil), ms...)
	sort.Slice(out, func(i, j int) bool { return lessMatchID(out[i], out[j]) })
	return out
}

// TestVPTreeVecNearestOracle pins VP-tree NEAREST byte-identical to the
// brute-force oracle across dimensions, k sweeps and interleaved
// inserts (queries run while the tree is still growing).
func TestVPTreeVecNearestOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{2, 8, 64} {
		vecs := randVecs(rng, 400, dim)
		tr := NewVPTree(metric.L2{})
		for i, v := range vecs {
			tr.Insert(i, v)
			// Interleaved: every 97 inserts, query against the prefix.
			if i%97 != 96 {
				continue
			}
			q := randVecs(rng, 1, dim)[0]
			got := tr.NearestK(q, 5)
			want := vecBruteNearestK(metric.L2{}, vecs[:i+1], q, 5, nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("dim %d prefix %d: NearestK diverged\n got %v\nwant %v", dim, i+1, got, want)
			}
		}
		if tr.Len() != len(vecs) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(vecs))
		}
		for _, k := range []int{1, 3, 10, 400, 1000} {
			for trial := 0; trial < 10; trial++ {
				q := randVecs(rng, 1, dim)[0]
				got := tr.NearestK(q, k)
				want := vecBruteNearestK(metric.L2{}, vecs, q, k, nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("dim %d k %d: NearestK diverged\n got %v\nwant %v", dim, k, got, want)
				}
			}
		}
		// Filtered form: only even ids visible (the MVCC accept hook).
		even := func(id int) bool { return id%2 == 0 }
		q := randVecs(rng, 1, dim)[0]
		got, st := tr.NearestKFilterStats(q, 7, even)
		want := vecBruteNearestK(metric.L2{}, vecs, q, 7, even)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("dim %d filtered: diverged\n got %v\nwant %v", dim, got, want)
		}
		if st.Verifications == 0 || st.Candidates == 0 {
			t.Fatalf("stats not counted: %+v", st)
		}
	}
}

// TestVPTreeVecRangeOracle pins WITHIN answers (as canonical id-sorted
// sets) against brute force across radius sweeps, including radius 0
// and a radius covering everything.
func TestVPTreeVecRangeOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dim := range []int{2, 8, 64} {
		vecs := randVecs(rng, 300, dim)
		tr := NewVPTree(metric.L2{})
		for i, v := range vecs {
			tr.Insert(i, v)
		}
		for _, r := range []float64{0, 0.5, 1, 2, 4, 1e9} {
			for trial := 0; trial < 5; trial++ {
				q := randVecs(rng, 1, dim)[0]
				got := sortByID(tr.Range(q, r))
				want := vecBruteRange(metric.L2{}, vecs, q, r)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("dim %d r %v: Range diverged (%d vs %d matches)", dim, r, len(got), len(want))
				}
			}
		}
		// Exact-boundary radius: querying a stored vector at the distance
		// of another stored vector must include the boundary point
		// (inclusive pruning bounds).
		q := vecs[0]
		d := metric.L2{}.Dist(q, vecs[1])
		got := sortByID(tr.Range(q, d))
		found := false
		for _, m := range got {
			if m.ID == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("dim %d: boundary match at exact radius %v lost", dim, d)
		}
	}
}

// TestVPTreeVecIterDeterminism pins the streaming iterator: same
// matches as RangeStats, deterministic order across runs, early
// abandonment legal.
func TestVPTreeVecIterDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vecs := randVecs(rng, 200, 8)
	tr := NewVPTree(metric.L2{})
	for i, v := range vecs {
		tr.Insert(i, v)
	}
	q := randVecs(rng, 1, 8)[0]
	full, fullStats := tr.RangeStats(q, 3)
	var run1 []Match
	it := tr.RangeIter(q, 3)
	for m, ok := it.Next(); ok; m, ok = it.Next() {
		run1 = append(run1, m)
	}
	if !reflect.DeepEqual(run1, full) {
		t.Fatalf("iterator emission diverged from RangeStats")
	}
	if it.Stats() != fullStats {
		t.Fatalf("iterator stats %+v != %+v", it.Stats(), fullStats)
	}
	var run2 []Match
	it2 := tr.RangeIter(q, 3)
	for m, ok := it2.Next(); ok; m, ok = it2.Next() {
		run2 = append(run2, m)
	}
	if !reflect.DeepEqual(run1, run2) {
		t.Fatalf("iterator order not deterministic across runs")
	}
	// Pull only one match: traversal must stop early (no crash, stats
	// bounded by the full walk).
	it3 := tr.RangeIter(q, 3)
	if _, ok := it3.Next(); len(full) > 0 && !ok {
		t.Fatal("expected at least one match")
	}
	if it3.Stats().Candidates > fullStats.Candidates {
		t.Fatalf("early-abandoned iterator did more work than full walk")
	}
	// Negative radius: empty stream.
	it4 := tr.RangeIter(q, -1)
	if _, ok := it4.Next(); ok {
		t.Fatal("negative radius must yield no matches")
	}
}

// TestVPTreeVecConcurrentReaders exercises the single-writer /
// lock-free-reader contract under -race: readers must always see a
// subset-consistent tree (every answer correct for some insert prefix).
func TestVPTreeVecConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	vecs := randVecs(rng, 500, 8)
	queries := randVecs(rng, 8, 8)
	tr := NewVPTree(metric.L2{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(q metric.Vector) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := tr.NearestK(q, 3)
				for i := 1; i < len(got); i++ {
					if got[i-1].Dist > got[i].Dist {
						t.Errorf("unsorted best list during concurrent insert")
						return
					}
				}
				_ = tr.Range(q, 1.5)
			}
		}(queries[g%len(queries)])
	}
	for i, v := range vecs {
		tr.Insert(i, v)
	}
	close(stop)
	wg.Wait()
	// Quiesced: answers must now equal brute force exactly.
	for _, q := range queries {
		got := tr.NearestK(q, 4)
		want := vecBruteNearestK(metric.L2{}, vecs, q, 4, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("post-quiesce NearestK diverged\n got %v\nwant %v", got, want)
		}
	}
}

// TestVPTreeVecEdgeCases covers the empty tree, k<=0, duplicate
// vectors and single-element trees.
func TestVPTreeVecEdgeCases(t *testing.T) {
	tr := NewVPTree(metric.L2{})
	if got := tr.NearestK(metric.Vector{1}, 3); len(got) != 0 {
		t.Fatalf("empty tree NearestK = %v", got)
	}
	if got := tr.Range(metric.Vector{1}, 10); len(got) != 0 {
		t.Fatalf("empty tree Range = %v", got)
	}
	tr.Insert(0, metric.Vector{1, 0})
	tr.Insert(1, metric.Vector{1, 0}) // duplicate vector, distinct id
	tr.Insert(2, metric.Vector{1, 0})
	got := tr.NearestK(metric.Vector{1, 0}, 5)
	if len(got) != 3 || got[0].ID != 0 || got[1].ID != 1 || got[2].ID != 2 {
		t.Fatalf("duplicate handling: %v", got)
	}
	for _, m := range got {
		if m.Dist != 0 {
			t.Fatalf("duplicate distance %v, want 0", m.Dist)
		}
	}
	if got := tr.NearestK(metric.Vector{1, 0}, 0); len(got) != 0 {
		t.Fatalf("k=0 must return nothing, got %v", got)
	}
	if tr.Metric().Name() != "l2" {
		t.Fatalf("Metric() = %q", tr.Metric().Name())
	}
}
