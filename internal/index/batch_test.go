package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func randSeqs(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		b := make([]byte, 3+rng.Intn(6))
		for j := range b {
			b[j] = byte('a' + rng.Intn(6))
		}
		out[i] = string(b)
	}
	return out
}

// TestBatchIteratorMatchesNext: NextBatch must reproduce the Next
// stream exactly — same matches, same deterministic order, same work
// counters — for both metric indexes, at every block size, including
// mixed Next/NextBatch pulls.
func TestBatchIteratorMatchesNext(t *testing.T) {
	seqs := randSeqs(11, 300)
	bk, tr := NewBKTree(), NewTrie()
	for i, s := range seqs {
		bk.Insert(i, s)
		tr.Insert(i, s)
	}
	for _, idx := range []Index{bk, tr} {
		for _, k := range []int{0, 1, 2} {
			name := fmt.Sprintf("%T/k=%d", idx, k)
			var want []Match
			it := idx.RangeIter("abcd", k)
			for m, ok := it.Next(); ok; m, ok = it.Next() {
				want = append(want, m)
			}
			wantStats := it.Stats()
			for _, size := range []int{1, 7, 64} {
				bit, ok := idx.RangeIter("abcd", k).(BatchIterator)
				if !ok {
					t.Fatalf("%s: iterator does not implement BatchIterator", name)
				}
				var got []Match
				dst := make([]Match, size)
				for {
					n := bit.NextBatch(dst)
					if n == 0 {
						break
					}
					got = append(got, dst[:n]...)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s size=%d: batch stream diverges (%d vs %d matches)", name, size, len(got), len(want))
				}
				if bit.Stats() != wantStats {
					t.Fatalf("%s size=%d: stats diverge: %+v vs %+v", name, size, bit.Stats(), wantStats)
				}
			}
			// Mixed pulls share traversal state.
			mixed, _ := idx.RangeIter("abcd", k).(BatchIterator)
			var got []Match
			if m, ok := mixed.Next(); ok {
				got = append(got, m)
			}
			dst := make([]Match, 5)
			for {
				n := mixed.NextBatch(dst)
				if n == 0 {
					break
				}
				got = append(got, dst[:n]...)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: mixed Next/NextBatch stream diverges", name)
			}
		}
	}
}

// TestNearestKIntoReusesBuffer: the Into form must equal the
// allocating form and actually write into the caller's backing array.
func TestNearestKIntoReusesBuffer(t *testing.T) {
	seqs := randSeqs(5, 200)
	bk := NewBKTree()
	for i, s := range seqs {
		bk.Insert(i, s)
	}
	want, wantStats := bk.NearestKFilterStats("abcd", 7, nil)
	buf := make([]Match, 0, 16)
	got, gotStats := bk.NearestKFilterStatsInto(buf, "abcd", 7, nil)
	if !reflect.DeepEqual(got, want) || gotStats != wantStats {
		t.Fatalf("Into form diverges: %v/%+v vs %v/%+v", got, gotStats, want, wantStats)
	}
	if cap(got) > 0 && cap(buf) > 0 && &got[:1][0] != &buf[:1][0] {
		t.Fatal("Into form did not reuse the caller's buffer")
	}
	// Filtered variant agrees too.
	accept := func(id int) bool { return id%2 == 0 }
	want, _ = bk.NearestKFilterStats("abcd", 5, accept)
	got, _ = bk.NearestKFilterStatsInto(got[:0], "abcd", 5, accept)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("filtered Into form diverges: %v vs %v", got, want)
	}
}
