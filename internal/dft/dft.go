// Package dft implements the discrete Fourier transform substrate used
// by the time-series instantiation of the framework: a radix-2
// iterative FFT with a naive O(n²) DFT fallback for non-power-of-two
// lengths, the inverse transform, circular convolution, and the energy
// and distance identities (Parseval) that make frequency-domain
// indexing sound.
//
// The normalisation follows the companion implementation paper (and
// [AFS93]): both the forward and inverse transforms carry 1/√n, so the
// transform is unitary and Euclidean distances are preserved exactly.
package dft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Transform returns the DFT of x with unitary normalisation:
//
//	X_f = (1/√n) Σ_t x_t e^{-j2πtf/n}.
//
// The input is not modified.
func Transform(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n == 0 {
		return out
	}
	if n&(n-1) == 0 {
		fft(out, false)
	} else {
		out = naive(x, false)
	}
	scale := complex(1/math.Sqrt(float64(n)), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// Inverse returns the inverse DFT with the matching normalisation:
//
//	x_t = (1/√n) Σ_f X_f e^{+j2πtf/n}.
func Inverse(X []complex128) []complex128 {
	n := len(X)
	out := make([]complex128, n)
	copy(out, X)
	if n == 0 {
		return out
	}
	if n&(n-1) == 0 {
		fft(out, true)
	} else {
		out = naive(X, true)
	}
	scale := complex(1/math.Sqrt(float64(n)), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// TransformReal converts a real series and transforms it.
func TransformReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return Transform(c)
}

// fft runs an in-place iterative radix-2 Cooley–Tukey transform
// (without normalisation). inverse flips the twiddle sign.
func fft(a []complex128, inverse bool) {
	n := len(a)
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// naive is the O(n²) fallback for non-power-of-two lengths.
func naive(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for f := 0; f < n; f++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := sign * 2 * math.Pi * float64(t) * float64(f) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[f] = sum
	}
	return out
}

// Energy returns Σ|x_t|² (Equation 3 of the companion paper).
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// EnergyReal is Energy for real series.
func EnergyReal(x []float64) float64 {
	var e float64
	for _, v := range x {
		e += v * v
	}
	return e
}

// Dist returns the Euclidean distance between two complex vectors. By
// Parseval's relation it is identical in the time and frequency domains.
func Dist(x, y []complex128) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("dft: length mismatch %d vs %d", len(x), len(y))
	}
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += real(d)*real(d) + imag(d)*imag(d)
	}
	return math.Sqrt(s), nil
}

// DistReal returns the Euclidean distance between two real series.
func DistReal(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("dft: length mismatch %d vs %d", len(x), len(y))
	}
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// Convolve returns the circular convolution of x and y
// (Equation 4 of the companion paper), computed directly in O(n²).
func Convolve(x, y []complex128) ([]complex128, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("dft: length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		var sum complex128
		for k := 0; k < n; k++ {
			j := i - k
			if j < 0 {
				j += n
			}
			sum += x[k] * y[j]
		}
		out[i] = sum
	}
	return out, nil
}

// ConvolveFFT returns the circular convolution via the
// convolution-multiplication property conv(x,y) ⇔ √n · X*Y (the √n
// restores the unitary normalisation).
func ConvolveFFT(x, y []complex128) ([]complex128, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("dft: length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	X := Transform(x)
	Y := Transform(y)
	Z := make([]complex128, n)
	scale := complex(math.Sqrt(float64(n)), 0)
	for i := range Z {
		Z[i] = X[i] * Y[i] * scale
	}
	return Inverse(Z), nil
}

// Mul returns the element-wise product of two equal-length vectors.
func Mul(x, y []complex128) ([]complex128, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("dft: length mismatch %d vs %d", len(x), len(y))
	}
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = x[i] * y[i]
	}
	return out, nil
}
