package dft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func randComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func almostEqual(x, y []complex128) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if cmplx.Abs(x[i]-y[i]) > 1e-8 {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 4, 8, 64, 128, 1024, 3, 5, 12, 100} {
		x := randComplex(rng, n)
		got := Inverse(Transform(x))
		if !almostEqual(got, x) {
			t.Errorf("n=%d: inverse(transform(x)) != x", n)
		}
	}
}

func TestKnownTransform(t *testing.T) {
	// DFT of an impulse [1,0,0,0] is constant 1/√4 = 0.5.
	X := TransformReal([]float64{1, 0, 0, 0})
	for f, v := range X {
		if cmplx.Abs(v-complex(0.5, 0)) > eps {
			t.Errorf("X[%d] = %v, want 0.5", f, v)
		}
	}
	// DFT of a constant [c,c,c,c] concentrates all energy at f=0:
	// X_0 = c·n/√n = c·√n.
	X = TransformReal([]float64{3, 3, 3, 3})
	if cmplx.Abs(X[0]-complex(6, 0)) > eps {
		t.Errorf("X[0] = %v, want 6", X[0])
	}
	for f := 1; f < 4; f++ {
		if cmplx.Abs(X[f]) > eps {
			t.Errorf("X[%d] = %v, want 0", f, X[f])
		}
	}
}

func TestFFTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		x := randComplex(rng, n)
		fast := Transform(x)
		slow := naive(x, false)
		scale := complex(1/math.Sqrt(float64(n)), 0)
		for i := range slow {
			slow[i] *= scale
		}
		if !almostEqual(fast, slow) {
			t.Errorf("n=%d: FFT disagrees with naive DFT", n)
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := []int{4, 8, 16, 128}[r.Intn(4)]
		x := randComplex(rng, n)
		return math.Abs(Energy(x)-Energy(Transform(x))) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDistancePreserved(t *testing.T) {
	// Equation 8: D(x,y) == D(X,Y).
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 64
		x := randComplex(rng, n)
		y := randComplex(rng, n)
		dt, err := Dist(x, y)
		if err != nil {
			t.Fatal(err)
		}
		df, err := Dist(Transform(x), Transform(y))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dt-df) > 1e-8 {
			t.Fatalf("time dist %g != freq dist %g", dt, df)
		}
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 32
	x := randComplex(rng, n)
	y := randComplex(rng, n)
	a, b := complex(2.5, -1), complex(-0.5, 3)
	// a·x + b·y transform == a·X + b·Y.
	mix := make([]complex128, n)
	for i := range mix {
		mix[i] = a*x[i] + b*y[i]
	}
	left := Transform(mix)
	X, Y := Transform(x), Transform(y)
	right := make([]complex128, n)
	for i := range right {
		right[i] = a*X[i] + b*Y[i]
	}
	if !almostEqual(left, right) {
		t.Error("linearity violated")
	}
}

func TestConvolutionMultiplication(t *testing.T) {
	// Equation 6: conv(x,y) in time == X*Y (element-wise) in frequency,
	// with the unitary √n factor.
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{4, 8, 16, 15} { // include non-power-of-two
		x := randComplex(rng, n)
		y := randComplex(rng, n)
		direct, err := Convolve(x, y)
		if err != nil {
			t.Fatal(err)
		}
		viafft, err := ConvolveFFT(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(direct, viafft) {
			t.Errorf("n=%d: FFT convolution disagrees with direct", n)
		}
	}
}

func TestConvolveCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 16
	x := randComplex(rng, n)
	y := randComplex(rng, n)
	xy, _ := Convolve(x, y)
	yx, _ := Convolve(y, x)
	if !almostEqual(xy, yx) {
		t.Error("circular convolution not commutative")
	}
}

func TestLengthMismatches(t *testing.T) {
	a := make([]complex128, 4)
	b := make([]complex128, 5)
	if _, err := Dist(a, b); err == nil {
		t.Error("Dist accepted length mismatch")
	}
	if _, err := Convolve(a, b); err == nil {
		t.Error("Convolve accepted length mismatch")
	}
	if _, err := ConvolveFFT(a, b); err == nil {
		t.Error("ConvolveFFT accepted length mismatch")
	}
	if _, err := Mul(a, b); err == nil {
		t.Error("Mul accepted length mismatch")
	}
	if _, err := DistReal([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("DistReal accepted length mismatch")
	}
}

func TestEnergyReal(t *testing.T) {
	if got := EnergyReal([]float64{3, 4}); got != 25 {
		t.Errorf("EnergyReal = %g, want 25", got)
	}
}

func TestDistReal(t *testing.T) {
	d, err := DistReal([]float64{0, 0}, []float64{3, 4})
	if err != nil || d != 5 {
		t.Errorf("DistReal = %g, %v; want 5", d, err)
	}
}

func TestEnergyConcentration(t *testing.T) {
	// Random-walk series concentrate energy in the first coefficients —
	// the property that makes the k-index effective. After removing the
	// mean, the first few non-DC coefficients should hold most energy.
	rng := rand.New(rand.NewSource(8))
	n := 128
	walk := make([]float64, n)
	walk[0] = rng.Float64()*79 + 20
	for i := 1; i < n; i++ {
		walk[i] = walk[i-1] + rng.Float64()*8 - 4
	}
	mean := 0.0
	for _, v := range walk {
		mean += v
	}
	mean /= float64(n)
	for i := range walk {
		walk[i] -= mean
	}
	X := TransformReal(walk)
	total := Energy(X)
	// |X_f|² is symmetric: take f=1..4 and their mirrors.
	var head float64
	for _, f := range []int{1, 2, 3, 4, n - 4, n - 3, n - 2, n - 1} {
		head += real(X[f])*real(X[f]) + imag(X[f])*imag(X[f])
	}
	if head < 0.5*total {
		t.Errorf("first coefficients hold only %.1f%% of energy", 100*head/total)
	}
}

func TestMul(t *testing.T) {
	x := []complex128{1, 2i}
	y := []complex128{3, 4}
	got, err := Mul(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 8i {
		t.Errorf("Mul = %v", got)
	}
}
