package rewrite

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// RuleSet is an immutable, validated collection of rewrite rules with the
// classification predicates used by the distance engines to pick an
// evaluation strategy (and to refuse ill-posed inputs).
type RuleSet struct {
	name  string
	rules []Rule

	// Cached classification, computed once at construction.
	editLike       bool
	symmetric      bool
	lengthBounded  bool // no rule increases length
	minPosCost     float64
	maxLengthDelta int
	hasZeroCost    bool
	zeroGrowth     bool // some zero-cost rule increases length (undecidable regime)
}

// NewRuleSet validates the rules and builds a rule set. Duplicate
// LHS/RHS pairs are collapsed keeping the cheapest cost.
func NewRuleSet(name string, rules []Rule) (*RuleSet, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("rewrite: rule set %q has no rules", name)
	}
	best := make(map[string]Rule, len(rules))
	order := make([]string, 0, len(rules))
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("rewrite: rule set %q: %w", name, err)
		}
		k := ruleKey(r)
		if prev, ok := best[k]; ok {
			if r.Cost < prev.Cost {
				best[k] = r
			}
			continue
		}
		best[k] = r
		order = append(order, k)
	}
	rs := &RuleSet{name: name}
	for _, k := range order {
		rs.rules = append(rs.rules, best[k])
	}
	rs.classify()
	return rs, nil
}

// MustRuleSet is NewRuleSet that panics on error; for tests and fixed
// literals.
func MustRuleSet(name string, rules []Rule) *RuleSet {
	rs, err := NewRuleSet(name, rules)
	if err != nil {
		panic(err)
	}
	return rs
}

func (rs *RuleSet) classify() {
	rs.editLike = true
	rs.lengthBounded = true
	rs.minPosCost = math.Inf(1)
	inv := make(map[string]float64, len(rs.rules))
	for _, r := range rs.rules {
		inv[ruleKey(r)] = r.Cost
	}
	rs.symmetric = true
	for _, r := range rs.rules {
		if !r.IsEditLike() {
			rs.editLike = false
		}
		if d := r.LengthDelta(); d > 0 {
			rs.lengthBounded = false
			if d > rs.maxLengthDelta {
				rs.maxLengthDelta = d
			}
		}
		if r.Cost > 0 {
			if r.Cost < rs.minPosCost {
				rs.minPosCost = r.Cost
			}
		} else {
			rs.hasZeroCost = true
			if r.LengthDelta() > 0 {
				rs.zeroGrowth = true
			}
		}
		if c, ok := inv[ruleKey(r.Inverse())]; !ok || c != r.Cost {
			rs.symmetric = false
		}
	}
}

// Name returns the rule set's name.
func (rs *RuleSet) Name() string { return rs.name }

// Rules returns the rules. The caller must not modify the returned slice.
func (rs *RuleSet) Rules() []Rule { return rs.rules }

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// EditLike reports whether every rule is a single-symbol insertion,
// deletion or substitution, so that weighted edit-distance dynamic
// programming (internal/editdp) computes the exact transformation
// distance in polynomial time.
func (rs *RuleSet) EditLike() bool { return rs.editLike }

// Symmetric reports whether for every rule α→β:c the set also contains
// β→α:c. Symmetric positive sets induce a metric, which licenses
// metric indexes such as the BK-tree.
func (rs *RuleSet) Symmetric() bool { return rs.symmetric }

// NonLengthIncreasing reports whether no rule increases the subject's
// length. Together with HasZeroCost it locates the decidability
// boundary: zero-cost rules that can grow strings make even
// cost-bounded similarity undecidable in general.
func (rs *RuleSet) NonLengthIncreasing() bool { return rs.lengthBounded }

// HasZeroCost reports whether some rule costs zero.
func (rs *RuleSet) HasZeroCost() bool { return rs.hasZeroCost }

// ZeroCostGrowth reports whether some zero-cost rule increases length —
// the regime in which the bounded-distance problem embeds the word
// problem for semi-Thue systems and the engine refuses to search.
func (rs *RuleSet) ZeroCostGrowth() bool { return rs.zeroGrowth }

// MinPositiveCost returns the smallest strictly positive rule cost, or
// +Inf if every rule is free. It bounds the search depth of the
// cost-bounded engine: within budget c at most c/MinPositiveCost
// positive-cost steps can fire.
func (rs *RuleSet) MinPositiveCost() float64 { return rs.minPosCost }

// MaxLengthDelta returns the largest length increase any single rule can
// cause (0 for non-length-increasing sets).
func (rs *RuleSet) MaxLengthDelta() int { return rs.maxLengthDelta }

// Applications returns every application of every rule to s.
func (rs *RuleSet) Applications(s string) []Application {
	var apps []Application
	for _, r := range rs.rules {
		apps = append(apps, r.Applications(s)...)
	}
	return apps
}

// Inverse returns the rule set with every rule inverted, named
// name+"⁻¹". The transformation distance is directional; searching with
// the inverse set from the target is equivalent to searching with the
// original set from the source.
func (rs *RuleSet) Inverse() *RuleSet {
	inv := make([]Rule, len(rs.rules))
	for i, r := range rs.rules {
		inv[i] = r.Inverse()
	}
	out, err := NewRuleSet(rs.name+"⁻¹", inv)
	if err != nil {
		// Inverting valid rules cannot fail: lengths swap, costs persist.
		panic(err)
	}
	return out
}

// EditCosts extracts per-operation cost tables from an edit-like rule
// set for the dynamic-programming engine. Missing operations get +Inf
// (the DP then never uses them). It returns an error if the set is not
// edit-like.
func (rs *RuleSet) EditCosts() (*EditCosts, error) {
	if !rs.editLike {
		return nil, fmt.Errorf("rewrite: rule set %q is not edit-like", rs.name)
	}
	ec := newEditCosts()
	for _, r := range rs.rules {
		switch {
		case r.IsInsert():
			ec.setIns(r.RHS[0], r.Cost)
		case r.IsDelete():
			ec.setDel(r.LHS[0], r.Cost)
		case r.IsSubst():
			ec.setSub(r.LHS[0], r.RHS[0], r.Cost)
		}
	}
	return ec, nil
}

// String lists the rules, one per line, prefixed by the name and the
// classification flags. Useful in error messages and the CLI.
func (rs *RuleSet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ruleset %s (editlike=%v symmetric=%v nonincreasing=%v)\n",
		rs.name, rs.editLike, rs.symmetric, rs.lengthBounded)
	for _, r := range rs.rules {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}

// UnitEdits returns the classical unit-cost edit rule set (all single
// insertions, deletions and substitutions at cost 1) over the given
// alphabet symbols. The induced distance is Levenshtein distance.
func UnitEdits(alphabet string) *RuleSet {
	seen := make(map[byte]bool)
	var syms []byte
	for i := 0; i < len(alphabet); i++ {
		if !seen[alphabet[i]] {
			seen[alphabet[i]] = true
			syms = append(syms, alphabet[i])
		}
	}
	var rules []Rule
	for _, c := range syms {
		rules = append(rules, Insert(c, 1), Delete(c, 1))
		for _, d := range syms {
			if c != d {
				rules = append(rules, Subst(c, d, 1))
			}
		}
	}
	return MustRuleSet("unit-edits", rules)
}

// EditCosts holds per-operation cost tables for edit-like rule sets.
// Absent operations cost +Inf.
type EditCosts struct {
	ins [256]float64
	del [256]float64
	sub [256][256]float64
}

func newEditCosts() *EditCosts {
	ec := &EditCosts{}
	inf := math.Inf(1)
	for i := 0; i < 256; i++ {
		ec.ins[i] = inf
		ec.del[i] = inf
		for j := 0; j < 256; j++ {
			if i != j {
				ec.sub[i][j] = inf
			}
		}
	}
	return ec
}

func (ec *EditCosts) setIns(c byte, cost float64) {
	if cost < ec.ins[c] {
		ec.ins[c] = cost
	}
}

func (ec *EditCosts) setDel(c byte, cost float64) {
	if cost < ec.del[c] {
		ec.del[c] = cost
	}
}

func (ec *EditCosts) setSub(c, d byte, cost float64) {
	if cost < ec.sub[c][d] {
		ec.sub[c][d] = cost
	}
}

// Ins returns the cost of inserting c (+Inf if no rule allows it).
func (ec *EditCosts) Ins(c byte) float64 { return ec.ins[c] }

// Del returns the cost of deleting c (+Inf if no rule allows it).
func (ec *EditCosts) Del(c byte) float64 { return ec.del[c] }

// Sub returns the cost of substituting c by d (0 if c == d, +Inf if no
// rule allows it).
func (ec *EditCosts) Sub(c, d byte) float64 { return ec.sub[c][d] }

// MinIns returns the cheapest insertion cost over all symbols, used by
// admissible search heuristics.
func (ec *EditCosts) MinIns() float64 {
	m := math.Inf(1)
	for i := 0; i < 256; i++ {
		if ec.ins[i] < m {
			m = ec.ins[i]
		}
	}
	return m
}

// MinDel returns the cheapest deletion cost over all symbols.
func (ec *EditCosts) MinDel() float64 {
	m := math.Inf(1)
	for i := 0; i < 256; i++ {
		if ec.del[i] < m {
			m = ec.del[i]
		}
	}
	return m
}

// SortRules orders rules deterministically (by LHS, then RHS, then cost)
// for stable output in the CLI and golden tests.
func SortRules(rules []Rule) {
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].LHS != rules[j].LHS {
			return rules[i].LHS < rules[j].LHS
		}
		if rules[i].RHS != rules[j].RHS {
			return rules[i].RHS < rules[j].RHS
		}
		return rules[i].Cost < rules[j].Cost
	})
}
