// Package rewrite implements the transformation rule language T of the
// PODS'95 similarity-query framework for the sequence domain.
//
// A transformation rule rewrites an occurrence of a left-hand-side string
// into a right-hand-side string at a non-negative cost:
//
//	ab -> ba : 1      (transpose adjacent a,b)
//	a  ->    : 1      (delete an a)
//	   -> a  : 1      (insert an a)
//	a  -> b  : 0.5    (substitute a by b)
//
// Object A is similar to object B under a rule set if B can be reduced to
// A by a sequence of rule applications; the similarity (transformation)
// distance is the minimum total cost of such a sequence. The package
// classifies rule sets into the regimes the paper's complexity analysis
// distinguishes: edit-like sets (polynomial dynamic programming,
// internal/editdp), positive-cost sets (decidable cost-bounded search,
// internal/transform) and zero-cost length-increasing sets (the
// undecidable regime, which the engine refuses).
package rewrite

import (
	"fmt"
	"strings"
)

// Rule is a single rewrite rule LHS -> RHS with a non-negative cost.
// Either side may be empty: an empty LHS is an insertion, an empty RHS a
// deletion. A rule with both sides empty is invalid.
type Rule struct {
	LHS  string
	RHS  string
	Cost float64
}

// Validate reports whether the rule is well formed.
func (r Rule) Validate() error {
	if r.LHS == "" && r.RHS == "" {
		return fmt.Errorf("rewrite: rule %v has empty LHS and RHS", r)
	}
	if r.Cost < 0 {
		return fmt.Errorf("rewrite: rule %v has negative cost", r)
	}
	return nil
}

// String renders the rule in the textual rule syntax.
func (r Rule) String() string {
	lhs := r.LHS
	if lhs == "" {
		lhs = "ε"
	}
	rhs := r.RHS
	if rhs == "" {
		rhs = "ε"
	}
	return fmt.Sprintf("%s -> %s : %g", lhs, rhs, r.Cost)
}

// Inverse returns the rule with LHS and RHS swapped, at the same cost.
func (r Rule) Inverse() Rule { return Rule{LHS: r.RHS, RHS: r.LHS, Cost: r.Cost} }

// LengthDelta returns len(RHS) - len(LHS): how much one application
// changes the length of the subject string.
func (r Rule) LengthDelta() int { return len(r.RHS) - len(r.LHS) }

// IsInsert reports whether the rule inserts a single symbol (ε -> c).
func (r Rule) IsInsert() bool { return r.LHS == "" && len(r.RHS) == 1 }

// IsDelete reports whether the rule deletes a single symbol (c -> ε).
func (r Rule) IsDelete() bool { return len(r.LHS) == 1 && r.RHS == "" }

// IsSubst reports whether the rule substitutes one symbol for another
// (c -> d with c != d).
func (r Rule) IsSubst() bool {
	return len(r.LHS) == 1 && len(r.RHS) == 1 && r.LHS != r.RHS
}

// IsEditLike reports whether the rule is a single-symbol insertion,
// deletion or substitution — the class for which weighted edit distance
// dynamic programming applies.
func (r Rule) IsEditLike() bool { return r.IsInsert() || r.IsDelete() || r.IsSubst() }

// Application records one way a rule can fire on a subject string.
type Application struct {
	Rule   Rule
	Pos    int    // byte offset of the match
	Result string // the rewritten string
}

// Applications returns every application of r to s, in position order.
// An insertion rule applies at every gap position 0..len(s); other rules
// apply at every occurrence of the LHS.
func (r Rule) Applications(s string) []Application {
	var apps []Application
	if r.LHS == "" {
		for i := 0; i <= len(s); i++ {
			apps = append(apps, Application{Rule: r, Pos: i, Result: s[:i] + r.RHS + s[i:]})
		}
		return apps
	}
	for i := 0; i+len(r.LHS) <= len(s); i++ {
		if s[i:i+len(r.LHS)] == r.LHS {
			apps = append(apps, Application{Rule: r, Pos: i, Result: s[:i] + r.RHS + s[i+len(r.LHS):]})
		}
	}
	return apps
}

// CountApplications returns the number of positions where r fires on s
// without materialising the rewritten strings.
func (r Rule) CountApplications(s string) int {
	if r.LHS == "" {
		return len(s) + 1
	}
	n := 0
	for i := 0; i+len(r.LHS) <= len(s); i++ {
		if s[i:i+len(r.LHS)] == r.LHS {
			n++
		}
	}
	return n
}

// Edit rule constructors. Costs must be non-negative.

// Insert returns the insertion rule ε -> c.
func Insert(c byte, cost float64) Rule { return Rule{LHS: "", RHS: string(c), Cost: cost} }

// Delete returns the deletion rule c -> ε.
func Delete(c byte, cost float64) Rule { return Rule{LHS: string(c), RHS: "", Cost: cost} }

// Subst returns the substitution rule c -> d.
func Subst(c, d byte, cost float64) Rule { return Rule{LHS: string(c), RHS: string(d), Cost: cost} }

// Swap returns the adjacent-transposition rule cd -> dc.
func Swap(c, d byte, cost float64) Rule {
	return Rule{LHS: string([]byte{c, d}), RHS: string([]byte{d, c}), Cost: cost}
}

func ruleKey(r Rule) string {
	var b strings.Builder
	b.Grow(len(r.LHS) + len(r.RHS) + 1)
	b.WriteString(r.LHS)
	b.WriteByte(0)
	b.WriteString(r.RHS)
	return b.String()
}
