package rewrite

import (
	"math"
	"strings"
	"testing"
)

func TestRuleValidate(t *testing.T) {
	for _, tc := range []struct {
		r  Rule
		ok bool
	}{
		{Rule{LHS: "a", RHS: "b", Cost: 1}, true},
		{Rule{LHS: "", RHS: "b", Cost: 0}, true},
		{Rule{LHS: "a", RHS: "", Cost: 2}, true},
		{Rule{LHS: "", RHS: "", Cost: 1}, false},
		{Rule{LHS: "a", RHS: "b", Cost: -1}, false},
	} {
		err := tc.r.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%v) err=%v, want ok=%v", tc.r, err, tc.ok)
		}
	}
}

func TestRulePredicates(t *testing.T) {
	for _, tc := range []struct {
		r                       Rule
		ins, del, sub, editLike bool
	}{
		{Insert('a', 1), true, false, false, true},
		{Delete('a', 1), false, true, false, true},
		{Subst('a', 'b', 1), false, false, true, true},
		{Rule{LHS: "a", RHS: "a", Cost: 0}, false, false, false, false},
		{Swap('a', 'b', 1), false, false, false, false},
		{Rule{LHS: "ab", RHS: "c", Cost: 1}, false, false, false, false},
	} {
		if got := tc.r.IsInsert(); got != tc.ins {
			t.Errorf("%v IsInsert = %v", tc.r, got)
		}
		if got := tc.r.IsDelete(); got != tc.del {
			t.Errorf("%v IsDelete = %v", tc.r, got)
		}
		if got := tc.r.IsSubst(); got != tc.sub {
			t.Errorf("%v IsSubst = %v", tc.r, got)
		}
		if got := tc.r.IsEditLike(); got != tc.editLike {
			t.Errorf("%v IsEditLike = %v", tc.r, got)
		}
	}
}

func TestRuleApplications(t *testing.T) {
	r := Swap('a', 'b', 1)
	apps := r.Applications("abab")
	if len(apps) != 2 {
		t.Fatalf("Applications = %d, want 2", len(apps))
	}
	if apps[0].Pos != 0 || apps[0].Result != "baab" {
		t.Errorf("apps[0] = %+v", apps[0])
	}
	if apps[1].Pos != 2 || apps[1].Result != "abba" {
		t.Errorf("apps[1] = %+v", apps[1])
	}
}

func TestInsertApplications(t *testing.T) {
	r := Insert('x', 1)
	apps := r.Applications("ab")
	want := []string{"xab", "axb", "abx"}
	if len(apps) != len(want) {
		t.Fatalf("Applications = %d, want %d", len(apps), len(want))
	}
	for i, w := range want {
		if apps[i].Result != w {
			t.Errorf("apps[%d].Result = %q, want %q", i, apps[i].Result, w)
		}
	}
}

func TestCountApplications(t *testing.T) {
	for _, tc := range []struct {
		r    Rule
		s    string
		want int
	}{
		{Insert('x', 1), "ab", 3},
		{Delete('a', 1), "aba", 2},
		{Rule{LHS: "aa", RHS: "b", Cost: 1}, "aaa", 2},
		{Rule{LHS: "z", RHS: "b", Cost: 1}, "aaa", 0},
	} {
		if got := tc.r.CountApplications(tc.s); got != tc.want {
			t.Errorf("CountApplications(%v, %q) = %d, want %d", tc.r, tc.s, got, tc.want)
		}
		if got := len(tc.r.Applications(tc.s)); got != tc.want {
			t.Errorf("len(Applications(%v, %q)) = %d, want %d", tc.r, tc.s, got, tc.want)
		}
	}
}

func TestRuleInverse(t *testing.T) {
	r := Rule{LHS: "ab", RHS: "c", Cost: 2.5}
	inv := r.Inverse()
	if inv.LHS != "c" || inv.RHS != "ab" || inv.Cost != 2.5 {
		t.Errorf("Inverse = %+v", inv)
	}
	if got := inv.Inverse(); got != r {
		t.Errorf("double Inverse = %+v, want %+v", got, r)
	}
}

func TestRuleSetClassification(t *testing.T) {
	edit := MustRuleSet("e", []Rule{Insert('a', 1), Delete('a', 1), Subst('a', 'b', 1)})
	if !edit.EditLike() {
		t.Error("edit set not EditLike")
	}
	if edit.Symmetric() {
		t.Error("asymmetric edit set reported Symmetric (no b->a rule)")
	}
	if edit.NonLengthIncreasing() {
		t.Error("set with insertion reported NonLengthIncreasing")
	}
	if edit.HasZeroCost() {
		t.Error("HasZeroCost = true")
	}
	if got := edit.MinPositiveCost(); got != 1 {
		t.Errorf("MinPositiveCost = %g", got)
	}

	sym := MustRuleSet("s", []Rule{Subst('a', 'b', 2), Subst('b', 'a', 2)})
	if !sym.Symmetric() {
		t.Error("symmetric set not Symmetric")
	}
	if !sym.NonLengthIncreasing() {
		t.Error("substitution-only set not NonLengthIncreasing")
	}

	grow := MustRuleSet("g", []Rule{{LHS: "a", RHS: "aa", Cost: 0}})
	if !grow.ZeroCostGrowth() {
		t.Error("zero-cost growing rule not flagged")
	}
	if got := grow.MinPositiveCost(); !math.IsInf(got, 1) {
		t.Errorf("MinPositiveCost all-zero = %g, want +Inf", got)
	}
}

func TestRuleSetDedup(t *testing.T) {
	rs := MustRuleSet("d", []Rule{Subst('a', 'b', 3), Subst('a', 'b', 1), Subst('a', 'b', 2)})
	if rs.Len() != 1 {
		t.Fatalf("Len = %d, want 1", rs.Len())
	}
	if got := rs.Rules()[0].Cost; got != 1 {
		t.Errorf("kept cost %g, want cheapest 1", got)
	}
}

func TestRuleSetEmpty(t *testing.T) {
	if _, err := NewRuleSet("x", nil); err == nil {
		t.Fatal("empty rule set accepted")
	}
}

func TestRuleSetInverse(t *testing.T) {
	rs := MustRuleSet("r", []Rule{{LHS: "ab", RHS: "c", Cost: 1}, Insert('z', 2)})
	inv := rs.Inverse()
	if inv.Len() != 2 {
		t.Fatalf("inverse Len = %d", inv.Len())
	}
	if r := inv.Rules()[0]; r.LHS != "c" || r.RHS != "ab" {
		t.Errorf("inverse rule 0 = %+v", r)
	}
	if r := inv.Rules()[1]; !r.IsDelete() {
		t.Errorf("inverse of insert not delete: %+v", r)
	}
}

func TestUnitEdits(t *testing.T) {
	rs := UnitEdits("ab")
	// 2 inserts + 2 deletes + 2 substitutions.
	if rs.Len() != 6 {
		t.Fatalf("UnitEdits(ab) Len = %d, want 6", rs.Len())
	}
	if !rs.EditLike() {
		t.Error("UnitEdits not EditLike")
	}
	if !rs.Symmetric() {
		t.Error("UnitEdits not Symmetric")
	}
	// Duplicate alphabet symbols must not duplicate rules.
	if got := UnitEdits("aabb").Len(); got != 6 {
		t.Errorf("UnitEdits(aabb) Len = %d, want 6", got)
	}
}

func TestEditCosts(t *testing.T) {
	rs := MustRuleSet("w", []Rule{Insert('a', 2), Delete('b', 3), Subst('a', 'b', 0.5)})
	ec, err := rs.EditCosts()
	if err != nil {
		t.Fatalf("EditCosts: %v", err)
	}
	if got := ec.Ins('a'); got != 2 {
		t.Errorf("Ins(a) = %g", got)
	}
	if got := ec.Ins('b'); !math.IsInf(got, 1) {
		t.Errorf("Ins(b) = %g, want +Inf", got)
	}
	if got := ec.Del('b'); got != 3 {
		t.Errorf("Del(b) = %g", got)
	}
	if got := ec.Sub('a', 'b'); got != 0.5 {
		t.Errorf("Sub(a,b) = %g", got)
	}
	if got := ec.Sub('a', 'a'); got != 0 {
		t.Errorf("Sub(a,a) = %g, want 0 (identity)", got)
	}
	if got := ec.MinIns(); got != 2 {
		t.Errorf("MinIns = %g", got)
	}
	if got := ec.MinDel(); got != 3 {
		t.Errorf("MinDel = %g", got)
	}
}

func TestEditCostsRejectsNonEditLike(t *testing.T) {
	rs := MustRuleSet("x", []Rule{Swap('a', 'b', 1)})
	if _, err := rs.EditCosts(); err == nil {
		t.Fatal("EditCosts accepted a swap rule")
	}
}

func TestParseRule(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Rule
	}{
		{"ab -> ba : 1", Swap('a', 'b', 1)},
		{"a -> ε : 2", Delete('a', 2)},
		{"eps -> z : 0.25", Insert('z', 0.25)},
		{"abc -> x : 1.5", Rule{LHS: "abc", RHS: "x", Cost: 1.5}},
	} {
		got, err := ParseRule(tc.in)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseRule(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	for _, in := range []string{
		"a b : 1",     // no arrow
		"a -> b",      // no cost
		"a -> b : x",  // bad cost
		"ε -> ε : 1",  // both empty
		"a -> b : -1", // negative cost
	} {
		if _, err := ParseRule(in); err == nil {
			t.Errorf("ParseRule(%q) succeeded, want error", in)
		}
	}
}

func TestParseRuleSet(t *testing.T) {
	src := `
# a comment
ruleset demo
ab -> ba : 1
a -> ε : 2   # trailing comment
swap x y : 3
edits cd : 1
`
	rs, err := ParseRuleSet("fallback", strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseRuleSet: %v", err)
	}
	if rs.Name() != "demo" {
		t.Errorf("Name = %q, want demo", rs.Name())
	}
	// 1 (ab->ba) + 1 (delete) + 2 (swap both ways) + 6 (unit edits on cd).
	if rs.Len() != 10 {
		t.Errorf("Len = %d, want 10\n%s", rs.Len(), rs)
	}
}

func TestParseRoundTrip(t *testing.T) {
	orig := MustRuleSet("rt", []Rule{
		Swap('a', 'b', 1), Insert('c', 0.5), Delete('d', 2),
		{LHS: "abc", RHS: "z", Cost: 3},
	})
	parsed, err := ParseRuleSet("x", strings.NewReader(FormatRuleSet(orig)))
	if err != nil {
		t.Fatalf("round trip parse: %v", err)
	}
	if parsed.Name() != "rt" {
		t.Errorf("round trip name = %q", parsed.Name())
	}
	if parsed.Len() != orig.Len() {
		t.Fatalf("round trip Len = %d, want %d", parsed.Len(), orig.Len())
	}
	for i, r := range orig.Rules() {
		if parsed.Rules()[i] != r {
			t.Errorf("rule %d = %+v, want %+v", i, parsed.Rules()[i], r)
		}
	}
}

func TestSortRules(t *testing.T) {
	rules := []Rule{Subst('b', 'a', 1), Insert('a', 1), Subst('a', 'b', 1)}
	SortRules(rules)
	if !rules[0].IsInsert() {
		t.Errorf("sorted[0] = %+v, want insert (empty LHS first)", rules[0])
	}
	if rules[1].LHS != "a" || rules[2].LHS != "b" {
		t.Errorf("sorted order wrong: %+v", rules)
	}
}

func TestRuleString(t *testing.T) {
	if got := Insert('a', 1).String(); got != "ε -> a : 1" {
		t.Errorf("String = %q", got)
	}
	if got := Delete('a', 0.5).String(); got != "a -> ε : 0.5" {
		t.Errorf("String = %q", got)
	}
}
