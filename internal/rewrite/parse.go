package rewrite

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseRuleSet reads a rule set in the textual rule language:
//
//	# comment
//	ruleset edits
//	ab -> ba : 1
//	a  -> b  : 0.5
//	a  -> ε  : 1      # deletion; "eps", "ε" and "" all denote epsilon
//	ε  -> a  : 1      # insertion
//	swap a b : 1      # sugar: ab -> ba and ba -> ab
//	edits abc : 1     # sugar: unit edits over alphabet "abc" at cost 1
//
// The optional "ruleset NAME" header names the set; otherwise name is
// used. Blank lines and #-comments are ignored.
func ParseRuleSet(name string, r io.Reader) (*RuleSet, error) {
	var rules []Rule
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "ruleset":
			if len(fields) != 2 {
				return nil, fmt.Errorf("rewrite: line %d: ruleset takes one name", lineNo)
			}
			name = fields[1]
			continue
		case "swap":
			cost, err := parseSugar(fields, 4, lineNo)
			if err != nil {
				return nil, err
			}
			if len(fields[1]) != 1 || len(fields[2]) != 1 {
				return nil, fmt.Errorf("rewrite: line %d: swap takes two single symbols", lineNo)
			}
			c, d := fields[1][0], fields[2][0]
			rules = append(rules, Swap(c, d, cost), Swap(d, c, cost))
			continue
		case "edits":
			cost, err := parseSugar(fields, 3, lineNo)
			if err != nil {
				return nil, err
			}
			for _, r := range UnitEdits(fields[1]).Rules() {
				r.Cost = cost
				rules = append(rules, r)
			}
			continue
		}
		rule, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("rewrite: line %d: %w", lineNo, err)
		}
		rules = append(rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rewrite: reading rules: %w", err)
	}
	return NewRuleSet(name, rules)
}

// parseSugar validates a sugar line "kw arg... : cost" with want fields
// before the colon-cost suffix and returns the cost.
func parseSugar(fields []string, want int, lineNo int) (float64, error) {
	// Accept both "swap a b : 1" (5 fields) and "swap a b :1"-style
	// joined forms by re-splitting on ':'.
	joined := strings.Join(fields, " ")
	parts := strings.SplitN(joined, ":", 2)
	if len(parts) != 2 {
		return 0, fmt.Errorf("rewrite: line %d: missing ': cost'", lineNo)
	}
	head := strings.Fields(parts[0])
	if len(head) != want-1 {
		return 0, fmt.Errorf("rewrite: line %d: want %d tokens before cost, got %d", lineNo, want-1, len(head))
	}
	cost, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return 0, fmt.Errorf("rewrite: line %d: bad cost: %w", lineNo, err)
	}
	return cost, nil
}

// ParseRule parses a single "LHS -> RHS : cost" line. "ε" and "eps"
// denote the empty string on either side.
func ParseRule(s string) (Rule, error) {
	arrow := strings.Index(s, "->")
	if arrow < 0 {
		return Rule{}, fmt.Errorf("missing '->' in rule %q", s)
	}
	rest := s[arrow+2:]
	colon := strings.LastIndex(rest, ":")
	if colon < 0 {
		return Rule{}, fmt.Errorf("missing ': cost' in rule %q", s)
	}
	lhs := decodeSide(s[:arrow])
	rhs := decodeSide(rest[:colon])
	cost, err := strconv.ParseFloat(strings.TrimSpace(rest[colon+1:]), 64)
	if err != nil {
		return Rule{}, fmt.Errorf("bad cost in rule %q: %w", s, err)
	}
	r := Rule{LHS: lhs, RHS: rhs, Cost: cost}
	if err := r.Validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}

func decodeSide(s string) string {
	s = strings.TrimSpace(s)
	if s == "ε" || s == "eps" || s == `""` {
		return ""
	}
	return s
}

// FormatRuleSet writes the rule set in the textual rule language, such
// that ParseRuleSet reads it back equivalently.
func FormatRuleSet(rs *RuleSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ruleset %s\n", rs.Name())
	for _, r := range rs.Rules() {
		lhs := r.LHS
		if lhs == "" {
			lhs = "ε"
		}
		rhs := r.RHS
		if rhs == "" {
			rhs = "ε"
		}
		fmt.Fprintf(&b, "%s -> %s : %g\n", lhs, rhs, r.Cost)
	}
	return b.String()
}
