package metric

import "math"

// Cosine is cosine distance: 1 - <a,b> / (|a| |b|), with the shorter
// vector zero-padded (the padding contributes nothing to the dot
// product but the longer tail still counts toward its own norm).
//
// Cosine distance does NOT satisfy the triangle inequality, so it
// deliberately does not carry the Triangular capability: the planner
// never offers a VP-tree for it and every cosine predicate runs the
// scan + batch-kernel path. Zero-norm conventions: two zero vectors
// are identical (distance 0); a zero vector against a non-zero one has
// undefined angle and is assigned the maximal distance 1.
type Cosine struct{}

func init() { _ = Register(Cosine{}) }

// Name returns "cosine".
func (Cosine) Name() string { return "cosine" }

// cosCore is the one core every Cosine entry point funnels through: a
// 2-way blocked float32 loop accumulating dot product and both squared
// norms in float64 with fixed reduction order (x0+x1 per sum). Shared
// by Dist and DistBatch so every execution path produces bitwise-
// identical distances.
func cosCore(a, b Vector) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var dot0, dot1, na0, na1, nb0, nb1 float64
	i := 0
	for ; i+2 <= n; i += 2 {
		x0, y0 := float64(a[i]), float64(b[i])
		x1, y1 := float64(a[i+1]), float64(b[i+1])
		dot0 += x0 * y0
		dot1 += x1 * y1
		na0 += x0 * x0
		na1 += x1 * x1
		nb0 += y0 * y0
		nb1 += y1 * y1
	}
	for ; i < n; i++ {
		x, y := float64(a[i]), float64(b[i])
		dot0 += x * y
		na0 += x * x
		nb0 += y * y
	}
	for j := n; j < len(a); j++ {
		x := float64(a[j])
		na0 += x * x
	}
	for j := n; j < len(b); j++ {
		y := float64(b[j])
		nb0 += y * y
	}
	dot, na, nb := dot0+dot1, na0+na1, nb0+nb1
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return 1
	}
	d := 1 - dot/math.Sqrt(na*nb)
	// Floating-point rounding can push a perfect match a hair below
	// zero; clamp so the distance is a valid dissimilarity.
	if d < 0 {
		return 0
	}
	return d
}

// Dist returns the cosine distance between a and b.
func (Cosine) Dist(a, b Vector) float64 { return cosCore(a, b) }

// DistBatch fills out[i] with Dist(q, cands[i]) for a whole candidate
// column, bitwise-identical to per-pair calls (same core); nil
// candidates yield +Inf. Cosine has no early-abandon form — the
// running sum is not monotone in the distance — so the batch kernel is
// its entire fast path.
func (Cosine) DistBatch(q Vector, cands []Vector, out []float64) {
	for i, c := range cands {
		if c == nil {
			out[i] = inf
			continue
		}
		out[i] = cosCore(q, c)
	}
}

var _ Batcher = Cosine{}
