package metric

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func randVec(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// naiveL2 is an independent scalar reference (different accumulation
// order is fine: the tests below compare semantics, the parity tests
// compare the shared-core paths against each other bit for bit).
func naiveL2(a, b Vector) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		var x, y float64
		if i < len(a) {
			x = float64(a[i])
		}
		if i < len(b) {
			y = float64(b[i])
		}
		s += (x - y) * (x - y)
	}
	return math.Sqrt(s)
}

func TestL2Semantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{1, 2, 3, 4, 5, 7, 8, 16, 63, 64, 65, 384} {
		for trial := 0; trial < 20; trial++ {
			a, b := randVec(rng, dim), randVec(rng, dim)
			got := L2{}.Dist(a, b)
			want := naiveL2(a, b)
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("dim %d: L2=%v want %v", dim, got, want)
			}
			if d := (L2{}).Dist(a, a); d != 0 {
				t.Fatalf("L2(a,a) = %v, want 0", d)
			}
			if d1, d2 := (L2{}).Dist(a, b), (L2{}).Dist(b, a); d1 != d2 {
				t.Fatalf("L2 asymmetric: %v vs %v", d1, d2)
			}
		}
	}
}

func TestL2MixedDims(t *testing.T) {
	a := Vector{3, 4}
	b := Vector{3, 4, 5, 12} // tail {5,12} against origin: 13
	got := L2{}.Dist(a, b)
	if got != 13 {
		t.Fatalf("zero-padded L2 = %v, want 13", got)
	}
	if d := (L2{}).Dist(b, a); d != got {
		t.Fatalf("mixed-dim symmetry broken: %v vs %v", d, got)
	}
}

// TestL2WithinKernelParity pins the determinism contract: Within must
// return a distance bitwise-identical to Dist whenever the candidate
// is within, and DistBatch must be bitwise-identical to per-pair Dist.
func TestL2WithinKernelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dim := range []int{2, 8, 64, 384} {
		q := randVec(rng, dim)
		cands := make([]Vector, 200)
		for i := range cands {
			cands[i] = randVec(rng, dim)
		}
		cands[17] = nil // row without a vector
		out := make([]float64, len(cands))
		L2{}.DistBatch(q, cands, out)
		for i, c := range cands {
			if c == nil {
				if !math.IsInf(out[i], 1) {
					t.Fatalf("nil candidate dist = %v, want +Inf", out[i])
				}
				continue
			}
			d := L2{}.Dist(q, c)
			if out[i] != d {
				t.Fatalf("dim %d cand %d: DistBatch %v != Dist %v", dim, i, out[i], d)
			}
			for _, r := range []float64{d * 0.5, d, d * 1.5, 0} {
				wd, ok := L2{}.Within(q, c, r)
				if ok != (d <= r) {
					t.Fatalf("Within verdict %v, want %v (d=%v r=%v)", ok, d <= r, d, r)
				}
				if ok && wd != d {
					t.Fatalf("Within dist %v != Dist %v", wd, d)
				}
			}
		}
	}
}

func TestL2Triangle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a, b, c := randVec(rng, 8), randVec(rng, 8), randVec(rng, 8)
		ab, bc, ac := L2{}.Dist(a, b), L2{}.Dist(b, c), L2{}.Dist(a, c)
		if ac > ab+bc+1e-9 {
			t.Fatalf("triangle inequality violated: %v > %v + %v", ac, ab, bc)
		}
	}
	if !IsTriangular(L2{}) {
		t.Fatal("L2 must carry the Triangular capability")
	}
	if IsTriangular(Cosine{}) {
		t.Fatal("Cosine must not carry the Triangular capability")
	}
}

func TestCosineSemantics(t *testing.T) {
	cases := []struct {
		a, b Vector
		want float64
	}{
		{Vector{1, 0}, Vector{1, 0}, 0},
		{Vector{1, 0}, Vector{2, 0}, 0},
		{Vector{1, 0}, Vector{0, 1}, 1},
		{Vector{1, 0}, Vector{-1, 0}, 2},
		{Vector{0, 0}, Vector{0, 0}, 0},
		{Vector{0, 0}, Vector{1, 2}, 1},
	}
	for _, c := range cases {
		got := Cosine{}.Dist(c.a, c.b)
		if math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("cosine(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		a, b := randVec(rng, 16), randVec(rng, 16)
		d1, d2 := Cosine{}.Dist(a, b), Cosine{}.Dist(b, a)
		if d1 != d2 {
			t.Fatalf("cosine asymmetric: %v vs %v", d1, d2)
		}
		if d1 < 0 || d1 > 2 {
			t.Fatalf("cosine out of range: %v", d1)
		}
	}
}

func TestCosineBatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := randVec(rng, 64)
	cands := make([]Vector, 100)
	for i := range cands {
		cands[i] = randVec(rng, 64)
	}
	cands[3] = nil
	out := make([]float64, len(cands))
	Cosine{}.DistBatch(q, cands, out)
	for i, c := range cands {
		if c == nil {
			if !math.IsInf(out[i], 1) {
				t.Fatalf("nil candidate dist = %v, want +Inf", out[i])
			}
			continue
		}
		if d := (Cosine{}).Dist(q, c); out[i] != d {
			t.Fatalf("cand %d: DistBatch %v != Dist %v", i, out[i], d)
		}
	}
	// The generic helpers must hit the same paths.
	var out2 [100]float64
	DistBatch(Cosine{}, q, cands, out2[:])
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("generic DistBatch diverged at %d", i)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		v := randVec(rng, 1+rng.Intn(40))
		got, err := Parse(Format(v))
		if err != nil {
			t.Fatalf("Parse(Format(v)): %v", err)
		}
		if len(got) != len(v) {
			t.Fatalf("round-trip length %d != %d", len(got), len(v))
		}
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("round-trip drift at %d: %v != %v", i, got[i], v[i])
			}
		}
	}
	if s := Format(Vector{0.1, -2, 3.5}); s != "[0.1,-2,3.5]" {
		t.Fatalf("canonical format = %q", s)
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{"", "[]", "[ ]", "1,2", "[1;2]", "[1,NaN]", "[1,+Inf]", "[1,", "[1,2", "[1,,2]"} {
		if v, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) = %v, want error", bad, v)
		}
	}
	// Whitespace inside a literal is tolerated.
	v, err := Parse(" [ 1 , 2.5 ] ")
	if err != nil || len(v) != 2 || v[0] != 1 || v[1] != 2.5 {
		t.Fatalf("Parse with spaces = %v, %v", v, err)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"l2", "cosine"} {
		if _, ok := Lookup(name); !ok {
			t.Fatalf("built-in metric %q not registered", name)
		}
	}
	names := Names()
	if len(names) < 2 || strings.Join(names[:2], ",") > strings.Join(names[1:], ",") && false {
		t.Fatalf("Names not sorted: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	if err := Register(nil); err == nil {
		t.Fatal("Register(nil) must error")
	}
	before := Version()
	if err := Register(L2{}); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if Version() == before {
		t.Fatal("Register must bump the registry version")
	}
}

func TestValid(t *testing.T) {
	if !Valid(Vector{1, -2, 0}) || !Valid(nil) {
		t.Fatal("finite vectors must be valid")
	}
	if Valid(Vector{1, float32(math.NaN())}) || Valid(Vector{float32(math.Inf(1))}) {
		t.Fatal("non-finite vectors must be invalid")
	}
}
