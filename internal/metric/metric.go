// Package metric defines the pluggable distance layer for continuous
// (float-vector) similarity: the Distance interface, its optional
// capability interfaces, and a process-wide registry the query planner
// resolves USING clauses against.
//
// The paper's framework is metric-agnostic — similarity is "reducible
// within cost budget" over an arbitrary domain — but six PRs of this
// reproduction hard-wired every kernel and index to string edit
// distance. This package is the seam that opens the engine to other
// domains: a Distance measures dissimilarity between float32 vectors,
// and the capability interfaces tell the planner what each metric
// licenses:
//
//   - Triangular marks metrics satisfying the triangle inequality,
//     which licenses metric-tree indexes (the VP-tree, exactly as
//     unit-cost edit distance licenses the BK-tree).
//   - Abandoner exposes an early-abandoning Within, the vector twin of
//     the banded edit DP's budget cutoff.
//   - Batcher exposes a block evaluator feeding the vectorized
//     execution pipeline, the vector twin of editdp.QueryDP.
//
// Determinism contract: for one metric, Dist, Within (when within) and
// DistBatch MUST produce bitwise-identical float64 results for the
// same operand pair. Every execution path — row pipeline, batch
// pipeline, VP-tree traversal, brute-force oracle, any shard count —
// funnels through the same blocked accumulation core, so query results
// are byte-identical across plans (the property the vector parity
// oracle pins). Implementations added through Register must preserve
// this or the parity guarantees of the query layer break.
package metric

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Distance is a dissimilarity measure over float32 vectors. d(a, b)
// must be symmetric, non-negative, finite for finite inputs, and zero
// for identical vectors. Vectors of different dimensionality are
// compared as if the shorter were zero-padded, so a Distance is total
// over all vector pairs.
type Distance interface {
	// Name is the registry key the query language's USING clause
	// resolves (e.g. "l2", "cosine").
	Name() string
	// Dist returns the distance between a and b.
	Dist(a, b Vector) float64
}

// Triangular marks a Distance that satisfies the triangle inequality
// d(a, c) <= d(a, b) + d(b, c). Only triangular metrics may back a
// metric-tree index (VP-tree): the tree's pruning bound is unsound
// without it, which is why cosine distance — not triangular — always
// runs the scan + batch-kernel path.
type Triangular interface {
	Distance
	// Triangle is a marker method; implementations guarantee the
	// triangle inequality holds exactly (not just approximately).
	Triangle()
}

// Abandoner is a Distance with an early-abandoning threshold test:
// Within(a, b, r) returns (d, true) with d bitwise-equal to
// Dist(a, b) when d <= r, and (_, false) — possibly without finishing
// the computation — when the distance exceeds r.
type Abandoner interface {
	Distance
	Within(a, b Vector, r float64) (float64, bool)
}

// Batcher is a Distance with a block evaluator for the vectorized
// execution pipeline: DistBatch fills out[i] with Dist(q, cands[i])
// (bitwise-identical to per-pair Dist calls) for a whole column of
// candidates. A nil candidate yields +Inf — rows without a vector can
// never be within any radius.
type Batcher interface {
	Distance
	DistBatch(q Vector, cands []Vector, out []float64)
}

// Within tests d(a, b) <= r under any metric, using the metric's
// early-abandoning path when it has one. The distance returned on
// success is bitwise-identical to Dist(a, b).
func Within(m Distance, a, b Vector, r float64) (float64, bool) {
	if ab, ok := m.(Abandoner); ok {
		return ab.Within(a, b, r)
	}
	d := m.Dist(a, b)
	return d, d <= r
}

// DistBatch evaluates Dist(q, cands[i]) into out under any metric,
// using the metric's block evaluator when it has one. out must have
// len(cands) capacity; nil candidates yield +Inf.
func DistBatch(m Distance, q Vector, cands []Vector, out []float64) {
	if b, ok := m.(Batcher); ok {
		b.DistBatch(q, cands, out)
		return
	}
	for i, c := range cands {
		if c == nil {
			out[i] = inf
			continue
		}
		out[i] = m.Dist(q, c)
	}
}

// IsTriangular reports whether the metric carries the triangle-
// inequality capability (and therefore licenses the VP-tree).
func IsTriangular(m Distance) bool {
	_, ok := m.(Triangular)
	return ok
}

// ------------------------------------------------------------ registry

var (
	regMu      sync.RWMutex
	registry   = map[string]Distance{}
	regVersion atomic.Uint64
)

// Register adds a metric to the process-wide registry under its Name,
// replacing any previous metric of that name, and bumps the registry
// version (part of every plan-cache epoch, so cached plans costed
// against the old registry are invalidated). The built-in metrics
// ("l2", "cosine") register themselves at init.
func Register(m Distance) error {
	if m == nil || m.Name() == "" {
		return fmt.Errorf("metric: Register requires a named metric")
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[m.Name()] = m
	regVersion.Add(1)
	return nil
}

// Lookup resolves a registered metric by name.
func Lookup(name string) (Distance, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := registry[name]
	return m, ok
}

// Names returns the registered metric names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Version is the registry mutation counter. The query engine folds it
// into its plan-cache epoch: registering a metric starts a fresh key
// space exactly like registering a rule set does.
func Version() uint64 { return regVersion.Load() }
