package metric

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Vector is a dense float32 embedding — the continuous column type of
// the relation layer. float32 is the storage and kernel element type
// (half the memory traffic of float64, the dominant cost of every
// vector kernel); accumulation inside the kernels runs in float64 with
// a fixed reduction order so results are deterministic across every
// execution path.
type Vector []float32

var inf = math.Inf(1)

// Clone returns a copy of v (nil stays nil).
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Format renders v in the query language's canonical vector-literal
// syntax: '[' + comma-separated shortest-round-trip float32 values +
// ']', no spaces. Parse(Format(v)) reproduces v bit for bit, which is
// what lets the WAL, the relation text codec and the wire protocol all
// carry vectors as text without drift.
func Format(v Vector) string {
	var b strings.Builder
	b.Grow(2 + 10*len(v))
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
	}
	b.WriteByte(']')
	return b.String()
}

// Parse reads the canonical vector-literal syntax (whitespace around
// components is tolerated). Components must be finite — NaN and the
// infinities are rejected, so every stored vector has well-defined
// distances — and the vector must be non-empty.
func Parse(s string) (Vector, error) {
	t := strings.TrimSpace(s)
	if len(t) < 2 || t[0] != '[' || t[len(t)-1] != ']' {
		return nil, fmt.Errorf("metric: vector literal must be bracketed: %q", s)
	}
	body := strings.TrimSpace(t[1 : len(t)-1])
	if body == "" {
		return nil, fmt.Errorf("metric: empty vector literal")
	}
	parts := strings.Split(body, ",")
	out := make(Vector, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 32)
		if err != nil {
			return nil, fmt.Errorf("metric: bad vector component %q: %v", strings.TrimSpace(p), err)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("metric: vector components must be finite, got %q", strings.TrimSpace(p))
		}
		out = append(out, float32(f))
	}
	return out, nil
}

// Valid reports whether every component of v is finite. Ingest paths
// reject invalid vectors up front so no NaN ever reaches a kernel.
func Valid(v Vector) bool {
	for _, x := range v {
		f := float64(x)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}
