package metric

import "math"

// L2 is Euclidean distance: sqrt(sum (a_i - b_i)^2), with the shorter
// vector zero-padded. It is a true metric (triangle inequality holds),
// so it licenses the VP-tree index.
type L2 struct{}

func init() { _ = Register(L2{}) }

// Name returns "l2".
func (L2) Name() string { return "l2" }

// Triangle marks L2 as satisfying the triangle inequality.
func (L2) Triangle() {}

// l2Block is the early-abandon check interval of l2sq: partial sums
// are compared against the squared budget once per block. Power of two
// and a multiple of the 4-way unroll so abandoning never perturbs the
// accumulation order.
const l2Block = 64

// l2sq is the one squared-distance core every L2 entry point funnels
// through: a 4-way blocked float32 loop with float64 accumulators and
// the fixed reduction order (s0+s1)+(s2+s3). cut < 0 disables early
// abandon; cut >= 0 abandons (returning sum > cut) once a partial sum
// exceeds it — sound because every term is non-negative, and
// result-preserving because the checks never change what is added in
// which order. The shared core is what makes Dist, Within and
// DistBatch bitwise-identical across the row, batch, VP-tree and
// oracle paths.
func l2sq(a, b Vector, cut float64) (float64, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		if cut >= 0 && (i+4)%l2Block == 0 {
			if (s0+s1)+(s2+s3) > cut {
				return (s0 + s1) + (s2 + s3), false
			}
		}
	}
	for ; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		s0 += d * d
	}
	// Dimension mismatch: the longer tail is measured against the
	// origin, a-tail first then b-tail (at most one is non-empty), in
	// the same deterministic order on every path.
	for j := n; j < len(a); j++ {
		d := float64(a[j])
		s0 += d * d
	}
	for j := n; j < len(b); j++ {
		d := float64(b[j])
		s0 += d * d
	}
	sum := (s0 + s1) + (s2 + s3)
	if cut >= 0 && sum > cut {
		return sum, false
	}
	return sum, true
}

// Dist returns the Euclidean distance between a and b.
func (L2) Dist(a, b Vector) float64 {
	s, _ := l2sq(a, b, -1)
	return math.Sqrt(s)
}

// Within is the early-abandoning threshold test: partial squared sums
// are checked against r^2 once per block, so most non-matching
// candidates abandon after a fraction of their components. When the
// distance is within r the returned value is bitwise-identical to
// Dist (same core, same accumulation order).
func (L2) Within(a, b Vector, r float64) (float64, bool) {
	if r < 0 {
		return 0, false
	}
	// The abandon cut lives in squared space; give it a few ulps of
	// slack so sqrt rounding at the boundary (d bitwise equal to r)
	// can never abandon a candidate the distance-space verdict below
	// would accept. Abandoning is only ever an optimisation — every
	// borderline candidate is computed fully.
	cut := r * r
	cut += cut * 5e-16
	s, ok := l2sq(a, b, cut)
	if !ok {
		return math.Sqrt(s), false
	}
	d := math.Sqrt(s)
	// sqrt is monotone but rounds: re-check in distance space so the
	// verdict agrees exactly with Dist(a,b) <= r.
	return d, d <= r
}

// DistBatch fills out[i] with Dist(q, cands[i]) for a whole candidate
// column — the block kernel the vectorized filter and nearest-k
// operators feed on. Each distance runs the same core as Dist, so the
// column is bitwise-identical to per-pair calls; nil candidates (rows
// without a vector) yield +Inf.
func (L2) DistBatch(q Vector, cands []Vector, out []float64) {
	for i, c := range cands {
		if c == nil {
			out[i] = inf
			continue
		}
		s, _ := l2sq(q, c, -1)
		out[i] = math.Sqrt(s)
	}
}

var (
	_ Triangular = L2{}
	_ Abandoner  = L2{}
	_ Batcher    = L2{}
)
