// Package relation provides the database substrate of the framework:
// named relations of sequences. Following the paper we treat relations
// as (essentially) unary — sets of sequences — but tuples may carry
// auxiliary string attributes (source, date, ...) that queries can
// filter on with equality predicates.
//
// Relations are mutable with MVCC snapshot isolation. Each relation
// keeps an append-only arena of row versions plus a tombstone epoch per
// row; all other per-relation state (statistics, index references, the
// arena slice header itself) lives in an immutable head published
// through an atomic pointer. A Snapshot captures one head: readers pay
// a single atomic load, never take a lock, and never block writers.
// Writers serialize on the relation's mutex, build a successor head and
// publish it — a committed mutation is one pointer swap, so a reader
// sees either all of a commit or none of it.
//
// Visibility: a row is visible to a snapshot at epoch e iff it sits
// inside the snapshot's arena prefix (inserts after the snapshot lie
// beyond its slice length) and its tombstone epoch is > e (deletes at
// or before e hide it). Updates are delete+insert in one commit.
//
// The BK-tree, trie and VP-tree indexes are maintained online: inserts
// extend the shared index (safe for concurrent readers; see package
// index), deletes rely on the visibility filter, and compaction
// rebuilds both the arena and the indexes once enough tombstones
// accumulate.
//
// Beyond the string sequence, tuples may carry a dense float-vector
// embedding (the "vec" column, a metric.Vector). Vectors ride the same
// MVCC arena, WAL records and text codec as sequences; continuous
// metrics (L2, cosine) query them through the same planner that serves
// edit distances, with VP-trees as the continuous analogue of the
// BK-tree.
package relation

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/metric"
)

// Tuple is one row of a relation.
type Tuple struct {
	ID    int
	Seq   string
	Vec   metric.Vector // optional embedding; nil when the row has none
	Attrs map[string]string
}

// Attr returns the named attribute ("" when absent). The built-in
// columns "id", "seq" and "vec" are also addressable; a vector renders
// in its canonical literal syntax.
func (t Tuple) Attr(name string) string {
	switch name {
	case "id":
		return strconv.Itoa(t.ID)
	case "seq":
		return t.Seq
	case "vec":
		if t.Vec == nil {
			return ""
		}
		return metric.Format(t.Vec)
	default:
		return t.Attrs[name]
	}
}

// aliveEpoch marks a row version that has not been deleted.
const aliveEpoch = ^uint64(0)

// Row is one immutable tuple version in the arena plus its tombstone
// epoch. The tuple fields never change after publication; died is the
// only mutable word and is written exactly once (alive -> epoch).
type Row struct {
	Tuple
	died atomic.Uint64
}

// head is a relation's published state. A head is immutable once
// published; every mutation (and every lazy index build) installs a
// successor. Copying the struct is cheap: the arena is a slice header
// and the alphabet histogram is 2KB.
type head struct {
	epoch    uint64 // commit counter; snapshots are keyed by it
	rows     []*Row // arena, ascending ID; shared tail-extended across heads
	nextID   int
	live     int      // visible rows at this epoch
	dead     int      // tombstoned rows still in the arena
	seqBytes int      // total sequence bytes across live rows
	maxLen   int      // upper bound on live sequence length (exact after compaction)
	vecRows  int      // visible rows carrying a vector
	vecDim   int      // upper bound on live vector dimension (exact after compaction)
	byteRows [256]int // live rows containing each byte (alphabet histogram)

	bk     *index.BKTree
	trie   *index.Trie
	length *index.LengthIndex
	qgram  *index.QGramIndex
	// vps maps metric name to the online-maintained VP-tree over that
	// metric. Like bk/trie the trees are shared tail-extended across
	// heads; the map itself is immutable once published (lazy builds
	// install a copied map into a successor head).
	vps map[string]*index.VPTree
}

// indexRow inserts a freshly-installed row into every online index.
// Caller holds the relation mutex (single-writer contract of the
// trees).
func (h *head) indexRow(t Tuple) {
	if h.bk != nil {
		h.bk.Insert(t.ID, t.Seq)
	}
	if h.trie != nil {
		h.trie.Insert(t.ID, t.Seq)
	}
	if t.Vec != nil {
		for _, vp := range h.vps {
			vp.Insert(t.ID, t.Vec)
		}
	}
}

// find returns the arena row with the given id, tombstoned or not.
func (h *head) find(id int) *Row {
	rows := h.rows
	i := sort.Search(len(rows), func(i int) bool { return rows[i].ID >= id })
	if i < len(rows) && rows[i].ID == id {
		return rows[i]
	}
	return nil
}

// addStats folds one live row into the head's statistics.
func (h *head) addStats(t Tuple) {
	seq := t.Seq
	h.live++
	h.seqBytes += len(seq)
	if len(seq) > h.maxLen {
		h.maxLen = len(seq)
	}
	if t.Vec != nil {
		h.vecRows++
		if len(t.Vec) > h.vecDim {
			h.vecDim = len(t.Vec)
		}
	}
	var seen [256]bool
	for i := 0; i < len(seq); i++ {
		if !seen[seq[i]] {
			seen[seq[i]] = true
			h.byteRows[seq[i]]++
		}
	}
}

// dropStats removes one live row from the statistics. maxLen and
// vecDim are left as upper bounds; compaction restores them exactly.
func (h *head) dropStats(t Tuple) {
	seq := t.Seq
	h.live--
	h.dead++
	h.seqBytes -= len(seq)
	if t.Vec != nil {
		h.vecRows--
	}
	var seen [256]bool
	for i := 0; i < len(seq); i++ {
		if !seen[seq[i]] {
			seen[seq[i]] = true
			h.byteRows[seq[i]]--
		}
	}
}

// Table is the mutable relation API shared by Relation (a single MVCC
// arena) and ShardedRelation (a hash-partitioned set of arenas). The
// query engine and the storage layer address catalog entries through
// this interface so the same plans, DML statements and WAL records work
// against either physical layout.
//
// InsertAt and UpdateAt are storage-layer primitives: they install rows
// under caller-assigned ids (segmented-WAL replay and reserved-id
// commits need them) and expect globally fresh ids.
//
// The Row-variant methods (InsertRowAt, UpdateRow, UpdateRowAt) are the
// full-width forms carrying the vector column; the string-only methods
// are wrappers kept for the sequence-only call sites.
type Table interface {
	Name() string
	Len() int
	Stats() Stats
	Version() uint64
	Tuple(id int) (Tuple, bool)
	Tuples() []Tuple
	Insert(seq string, attrs map[string]string) int
	InsertBatch(rows []InsertRow) []int
	InsertAt(id int, seq string, attrs map[string]string) bool
	InsertRowAt(id int, row InsertRow) bool
	Delete(id int) bool
	Update(id int, seq string, attrs map[string]string) (int, bool)
	UpdateRow(id int, row InsertRow) (int, bool)
	UpdateAt(id, newID int, seq string, attrs map[string]string) bool
	UpdateRowAt(id, newID int, row InsertRow) bool
}

var (
	_ Table = (*Relation)(nil)
	_ Table = (*ShardedRelation)(nil)
)

// Relation is a named collection of tuples with MVCC snapshots and
// online-maintained indexes.
type Relation struct {
	name    string
	mu      sync.Mutex // serializes mutations, compaction and index builds
	head    atomic.Pointer[head]
	version atomic.Uint64 // bumped on every mutation; feeds Catalog.StatsVersion
}

// Stats summarises a relation for the cost-based query planner.
type Stats struct {
	Count     int     // number of tuples
	AvgSeqLen float64 // mean sequence length
	MaxSeqLen int     // longest sequence
	Alphabet  int     // distinct bytes across all sequences (branching estimate)
	VecCount  int     // tuples carrying a vector
	VecDim    int     // largest vector dimension (upper bound between compactions)
}

// Compaction policy: rebuild the arena and indexes once at least
// compactMinDead rows are tombstoned AND tombstones make up more than
// compactDeadFrac of the arena. The floor keeps small churn cheap; the
// fraction bounds wasted index traversal on large relations.
const (
	compactMinDead  = 64
	compactDeadFrac = 0.25
)

// New returns an empty relation.
func New(name string) *Relation {
	r := &Relation{name: name}
	r.head.Store(&head{})
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Len returns the number of visible tuples.
func (r *Relation) Len() int { return r.head.Load().live }

// Version is a mutation counter: it changes whenever the relation's
// contents (and therefore its statistics) change. Plan caches read it
// on every query, so it is a lock-free atomic — the serving hot path
// must never take a relation's exclusive mutex.
func (r *Relation) Version() uint64 { return r.version.Load() }

// publish installs a successor head and bumps the mutation counter.
// Caller holds mu.
func (r *Relation) publish(h *head) {
	r.head.Store(h)
	r.version.Add(1)
}

// Insert appends a sequence-only tuple and returns its id. Built
// indexes are maintained online; the new entry becomes visible to
// snapshots taken after the commit.
func (r *Relation) Insert(seq string, attrs map[string]string) int {
	return r.InsertOne(InsertRow{Seq: seq, Attrs: attrs})
}

// InsertOne appends one full-width tuple (sequence, optional vector,
// attributes) in its own commit and returns its id.
func (r *Relation) InsertOne(in InsertRow) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.head.Load()
	nh := *h
	id := nh.nextID
	row := &Row{Tuple: Tuple{ID: id, Seq: in.Seq, Vec: in.Vec, Attrs: in.Attrs}}
	row.died.Store(aliveEpoch)
	nh.rows = append(nh.rows, row)
	nh.nextID++
	nh.epoch++
	nh.addStats(row.Tuple)
	nh.indexRow(row.Tuple)
	nh.length, nh.qgram = nil, nil
	r.publish(&nh)
	return id
}

// InsertRow is one input row of InsertBatch: the full tuple width
// minus the id.
type InsertRow struct {
	Seq   string
	Vec   metric.Vector
	Attrs map[string]string
}

// InsertBatch appends several tuples in ONE commit: a single successor
// head carries every row, so the batch becomes visible atomically and
// the per-commit costs (head copy, histogram copy, publish, version
// bump) are paid once instead of per row. Returns the assigned ids.
func (r *Relation) InsertBatch(rows []InsertRow) []int {
	if len(rows) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.head.Load()
	nh := *h
	ids := make([]int, len(rows))
	for i, in := range rows {
		id := nh.nextID
		row := &Row{Tuple: Tuple{ID: id, Seq: in.Seq, Vec: in.Vec, Attrs: in.Attrs}}
		row.died.Store(aliveEpoch)
		nh.rows = append(nh.rows, row)
		nh.nextID++
		nh.addStats(row.Tuple)
		nh.indexRow(row.Tuple)
		ids[i] = id
	}
	nh.epoch++
	nh.length, nh.qgram = nil, nil
	r.publish(&nh)
	return ids
}

// InsertAt appends a tuple under a caller-assigned id; false when the
// arena already holds the id. Sharded relations route rows here with
// globally-assigned ids, and segmented-WAL replay re-installs rows
// under their logged ids. Ids normally arrive in ascending order (the
// id allocator is monotonic); an out-of-order id falls back to a
// copy-and-sort of the arena so find()'s binary search stays valid.
func (r *Relation) InsertAt(id int, seq string, attrs map[string]string) bool {
	return r.InsertRowAt(id, InsertRow{Seq: seq, Attrs: attrs})
}

// InsertRowAt is InsertAt carrying the full tuple width.
func (r *Relation) InsertRowAt(id int, in InsertRow) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.insertAtLocked(id, in)
}

func (r *Relation) insertAtLocked(id int, in InsertRow) bool {
	h := r.head.Load()
	if h.find(id) != nil {
		return false
	}
	nh := *h
	row := &Row{Tuple: Tuple{ID: id, Seq: in.Seq, Vec: in.Vec, Attrs: in.Attrs}}
	row.died.Store(aliveEpoch)
	if n := len(nh.rows); n > 0 && nh.rows[n-1].ID > id {
		// Out-of-order id: older heads share the arena backing array, so
		// re-sorting must copy rather than mutate in place.
		rows := make([]*Row, 0, n+1)
		rows = append(rows, nh.rows...)
		rows = append(rows, row)
		sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
		nh.rows = rows
	} else {
		nh.rows = append(nh.rows, row)
	}
	if id >= nh.nextID {
		nh.nextID = id + 1
	}
	nh.epoch++
	nh.addStats(row.Tuple)
	nh.indexRow(row.Tuple)
	nh.length, nh.qgram = nil, nil
	r.publish(&nh)
	return true
}

// InsertBatchAt is InsertAt over several rows in ONE commit: ids[i]
// names rows[i]. Rows whose id is already taken — in the arena or
// earlier in the same batch — are skipped, matching InsertAt's
// single-row contract; the installed ids are returned in batch order.
// Like InsertBatch the whole batch becomes visible atomically.
func (r *Relation) InsertBatchAt(ids []int, rows []InsertRow) []int {
	if len(rows) == 0 || len(ids) != len(rows) {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.head.Load()
	nh := *h
	sorted := true
	last := -1
	if n := len(nh.rows); n > 0 {
		last = nh.rows[n-1].ID
	}
	installed := make([]int, 0, len(rows))
	var inBatch map[int]bool
	for i, in := range rows {
		id := ids[i]
		if inBatch[id] || h.find(id) != nil {
			continue
		}
		if inBatch == nil {
			inBatch = make(map[int]bool, len(rows))
		}
		inBatch[id] = true
		installed = append(installed, id)
		if id <= last {
			sorted = false
		}
		last = id
		row := &Row{Tuple: Tuple{ID: id, Seq: in.Seq, Vec: in.Vec, Attrs: in.Attrs}}
		row.died.Store(aliveEpoch)
		nh.rows = append(nh.rows, row)
		if id >= nh.nextID {
			nh.nextID = id + 1
		}
		nh.addStats(row.Tuple)
		nh.indexRow(row.Tuple)
	}
	if len(installed) == 0 {
		return nil
	}
	if !sorted {
		rows := make([]*Row, 0, len(nh.rows))
		rows = append(rows, nh.rows...)
		sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
		nh.rows = rows
	}
	nh.epoch++
	nh.length, nh.qgram = nil, nil
	r.publish(&nh)
	return installed
}

// Delete tombstones the row with the given id; false when no visible
// row has it. The index entries stay behind (filtered by visibility)
// until compaction rebuilds the structures.
func (r *Relation) Delete(id int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.head.Load()
	row := h.find(id)
	if row == nil || row.died.Load() != aliveEpoch {
		return false
	}
	nh := *h
	nh.epoch++
	// Store the tombstone before publishing the head: a snapshot of the
	// new head must already see the row dead.
	row.died.Store(nh.epoch)
	nh.dropStats(row.Tuple)
	nh.length, nh.qgram = nil, nil
	r.publish(&nh)
	r.maybeCompact()
	return true
}

// Update replaces the row with the given id in one commit: the old
// version is tombstoned and a fresh version (new id) inserted, so
// every snapshot sees either the old row or the new one, never both.
// Returns the new id; false when no visible row has the old id.
func (r *Relation) Update(id int, seq string, attrs map[string]string) (int, bool) {
	return r.UpdateRow(id, InsertRow{Seq: seq, Attrs: attrs})
}

// UpdateRow is Update carrying the full tuple width.
func (r *Relation) UpdateRow(id int, in InsertRow) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.head.Load()
	row := h.find(id)
	if row == nil || row.died.Load() != aliveEpoch {
		return 0, false
	}
	nh := *h
	nh.epoch++
	row.died.Store(nh.epoch)
	nh.dropStats(row.Tuple)
	newID := nh.nextID
	nrow := &Row{Tuple: Tuple{ID: newID, Seq: in.Seq, Vec: in.Vec, Attrs: in.Attrs}}
	nrow.died.Store(aliveEpoch)
	nh.rows = append(nh.rows, nrow)
	nh.nextID++
	nh.addStats(nrow.Tuple)
	nh.indexRow(nrow.Tuple)
	nh.length, nh.qgram = nil, nil
	r.publish(&nh)
	r.maybeCompact()
	return newID, true
}

// UpdateAt is Update with a caller-assigned replacement id: the old
// version is tombstoned and the new version installed under newID in
// one commit. Sharded relations allocate newID globally; segmented-WAL
// replay re-applies updates under their logged ids.
func (r *Relation) UpdateAt(id, newID int, seq string, attrs map[string]string) bool {
	return r.UpdateRowAt(id, newID, InsertRow{Seq: seq, Attrs: attrs})
}

// UpdateRowAt is UpdateAt carrying the full tuple width.
func (r *Relation) UpdateRowAt(id, newID int, in InsertRow) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.head.Load()
	row := h.find(id)
	if row == nil || row.died.Load() != aliveEpoch || h.find(newID) != nil {
		return false
	}
	nh := *h
	nh.epoch++
	row.died.Store(nh.epoch)
	nh.dropStats(row.Tuple)
	nrow := &Row{Tuple: Tuple{ID: newID, Seq: in.Seq, Vec: in.Vec, Attrs: in.Attrs}}
	nrow.died.Store(aliveEpoch)
	if n := len(nh.rows); n > 0 && nh.rows[n-1].ID > newID {
		rows := make([]*Row, 0, n+1)
		rows = append(rows, nh.rows...)
		rows = append(rows, nrow)
		sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
		nh.rows = rows
	} else {
		nh.rows = append(nh.rows, nrow)
	}
	if newID >= nh.nextID {
		nh.nextID = newID + 1
	}
	nh.addStats(nrow.Tuple)
	nh.indexRow(nrow.Tuple)
	nh.length, nh.qgram = nil, nil
	r.publish(&nh)
	r.maybeCompact()
	return true
}

// maybeCompact runs compaction when the tombstone policy triggers.
// Caller holds mu.
func (r *Relation) maybeCompact() {
	h := r.head.Load()
	if h.dead < compactMinDead || float64(h.dead) < compactDeadFrac*float64(h.live+h.dead) {
		return
	}
	r.compactLocked()
}

// Compact forces a tombstone compaction: dead rows leave the arena and
// any built indexes are rebuilt from the survivors. Snapshots taken
// earlier keep the pre-compaction head (arena and indexes), so their
// results are unaffected.
func (r *Relation) Compact() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.compactLocked()
}

func (r *Relation) compactLocked() {
	start := time.Now()
	defer func() {
		mCompactions.Inc()
		mCompactSeconds.Observe(time.Since(start).Seconds())
	}()
	h := r.head.Load()
	nh := head{epoch: h.epoch, nextID: h.nextID}
	nh.rows = make([]*Row, 0, h.live)
	for _, row := range h.rows {
		// Every tombstone epoch is <= the current epoch, so any dead row
		// is invisible to all future snapshots and can be dropped; old
		// snapshots hold the old head.
		if row.died.Load() == aliveEpoch {
			nh.rows = append(nh.rows, row)
			nh.addStats(row.Tuple)
		}
	}
	if h.bk != nil {
		nh.bk = index.NewBKTree()
		for _, row := range nh.rows {
			nh.bk.Insert(row.ID, row.Seq)
		}
	}
	if h.trie != nil {
		nh.trie = index.NewTrie()
		for _, row := range nh.rows {
			nh.trie.Insert(row.ID, row.Seq)
		}
	}
	if len(h.vps) > 0 {
		nh.vps = make(map[string]*index.VPTree, len(h.vps))
		for name, old := range h.vps {
			nh.vps[name] = buildVPTree(old.Metric(), nh.rows)
		}
	}
	// Publish without a version bump when nothing was dropped? Keep the
	// bump: compaction changes MaxSeqLen back to exact, which is a
	// statistics change the planner may care about.
	r.publish(&nh)
}

// Tombstones returns the number of dead rows still in the arena (for
// metrics and compaction tests).
func (r *Relation) Tombstones() int { return r.head.Load().dead }

// Snapshot returns a consistent read view of the relation. Snapshots
// are cheap (one atomic load), never expire, and need no release — the
// garbage collector reclaims superseded heads once the last snapshot
// referencing them is gone.
func (r *Relation) Snapshot() *Snapshot {
	return &Snapshot{h: r.head.Load()}
}

// Tuples returns the visible tuples in id order. O(n) materialisation —
// convenience for loading, storing and tests; query execution iterates
// snapshots instead.
func (r *Relation) Tuples() []Tuple { return r.Snapshot().Tuples() }

// Shard materialises the i-th of n contiguous arena partitions (i in
// [0,n)). Concatenating the shards in order reproduces Tuples exactly.
func (r *Relation) Shard(i, n int) []Tuple {
	var out []Tuple
	c := r.Snapshot().Shard(i, n)
	for t, ok := c.Next(); ok; t, ok = c.Next() {
		out = append(out, t)
	}
	return out
}

// Stats returns planner statistics; maintained incrementally, so this
// is lock-free and O(alphabet).
func (r *Relation) Stats() Stats { return r.Snapshot().Stats() }

// Tuple returns the visible tuple with the given id.
func (r *Relation) Tuple(id int) (Tuple, bool) { return r.Snapshot().Tuple(id) }

// Entries adapts the visible tuples for the index package.
func (r *Relation) Entries() []index.Entry {
	ts := r.Tuples()
	out := make([]index.Entry, len(ts))
	for i, t := range ts {
		out[i] = index.Entry{ID: t.ID, S: t.Seq}
	}
	return out
}

// ensureIndex installs a lazily-built index into a successor head.
// build receives the full arena (tombstoned rows included — visibility
// is filtered at read time) and must return the new head field values.
func (r *Relation) ensureBKTree() *index.BKTree {
	if h := r.head.Load(); h.bk != nil {
		return h.bk
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.head.Load()
	if h.bk != nil {
		return h.bk
	}
	bk := buildBKTree(h.rows)
	nh := *h
	nh.bk = bk
	// Publish without a version bump: building an index changes no
	// statistics and must not invalidate cached plans.
	r.head.Store(&nh)
	return bk
}

func (r *Relation) ensureTrie() *index.Trie {
	if h := r.head.Load(); h.trie != nil {
		return h.trie
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.head.Load()
	if h.trie != nil {
		return h.trie
	}
	tr := buildTrie(h.rows)
	nh := *h
	nh.trie = tr
	r.head.Store(&nh)
	return tr
}

func buildBKTree(rows []*Row) *index.BKTree {
	bk := index.NewBKTree()
	for _, row := range rows {
		bk.Insert(row.ID, row.Seq)
	}
	return bk
}

func buildVPTree(m metric.Distance, rows []*Row) *index.VPTree {
	vp := index.NewVPTree(m)
	for _, row := range rows {
		if row.Vec != nil {
			vp.Insert(row.ID, row.Vec)
		}
	}
	return vp
}

// ensureVPTree installs a lazily-built VP-tree over the given metric
// into a successor head; once built the tree is maintained online by
// the insert paths and rebuilt by compaction. Like ensureBKTree the
// publish carries no version bump — building an index changes no
// statistics and must not invalidate cached plans.
func (r *Relation) ensureVPTree(m metric.Distance) *index.VPTree {
	if h := r.head.Load(); h.vps[m.Name()] != nil {
		return h.vps[m.Name()]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.head.Load()
	if vp := h.vps[m.Name()]; vp != nil {
		return vp
	}
	vp := buildVPTree(m, h.rows)
	nh := *h
	nvps := make(map[string]*index.VPTree, len(h.vps)+1)
	for k, v := range h.vps {
		nvps[k] = v
	}
	nvps[m.Name()] = vp
	nh.vps = nvps
	r.head.Store(&nh)
	return vp
}

// VPTree returns the relation's VP-tree over the given metric, building
// it on first use; once built it is maintained online like the BK-tree.
// The metric should carry the triangle-inequality capability — the
// planner only routes triangular metrics here.
func (r *Relation) VPTree(m metric.Distance) *index.VPTree { return r.ensureVPTree(m) }

func buildTrie(rows []*Row) *index.Trie {
	tr := index.NewTrie()
	for _, row := range rows {
		tr.Insert(row.ID, row.Seq)
	}
	return tr
}

// BKTree returns the relation's BK-tree, building it on first use; once
// built it is maintained online by Insert/Update and rebuilt by
// compaction.
func (r *Relation) BKTree() *index.BKTree { return r.ensureBKTree() }

// Trie returns the relation's trie index, building it on first use;
// maintained online like the BK-tree.
func (r *Relation) Trie() *index.Trie { return r.ensureTrie() }

// LengthIndex returns a length index over the currently visible tuples,
// building it on first use; mutations drop it (rebuilt lazily).
func (r *Relation) LengthIndex() *index.LengthIndex {
	if h := r.head.Load(); h.length != nil {
		return h.length
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.head.Load()
	if h.length != nil {
		return h.length
	}
	li := index.NewLengthIndex()
	for _, row := range h.rows {
		if row.died.Load() > h.epoch {
			li.Insert(row.ID, row.Seq)
		}
	}
	nh := *h
	nh.length = li
	r.head.Store(&nh)
	return li
}

// QGramIndex returns a 2-gram index over the currently visible tuples,
// building it on first use; mutations drop it (rebuilt lazily).
func (r *Relation) QGramIndex() *index.QGramIndex {
	if h := r.head.Load(); h.qgram != nil {
		return h.qgram
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.head.Load()
	if h.qgram != nil {
		return h.qgram
	}
	qg := index.NewQGramIndex(2)
	for _, row := range h.rows {
		if row.died.Load() > h.epoch {
			qg.Insert(row.ID, row.Seq)
		}
	}
	nh := *h
	nh.qgram = qg
	r.head.Store(&nh)
	return qg
}

// ------------------------------------------------------------ snapshot

// Snapshot is a consistent, immutable read view of a relation: the head
// at one commit epoch. All reads through a snapshot see exactly the
// rows committed at its epoch, no matter how many commits land
// concurrently.
type Snapshot struct {
	h *head
}

// Epoch returns the commit epoch the snapshot reads at.
func (s *Snapshot) Epoch() uint64 { return s.h.epoch }

// Len returns the number of visible tuples.
func (s *Snapshot) Len() int { return s.h.live }

// visible reports whether the arena row is visible at this snapshot.
func (s *Snapshot) visible(row *Row) bool { return row.died.Load() > s.h.epoch }

// Tuple returns the visible tuple with the given id. Ids of rows
// inserted after the snapshot, tombstoned before it, or compacted away
// all miss.
func (s *Snapshot) Tuple(id int) (Tuple, bool) {
	row := s.h.find(id)
	if row == nil || !s.visible(row) {
		return Tuple{}, false
	}
	return row.Tuple, true
}

// Tuples materialises the visible tuples in id order.
func (s *Snapshot) Tuples() []Tuple {
	out := make([]Tuple, 0, s.h.live)
	for _, row := range s.h.rows {
		if s.visible(row) {
			out = append(out, row.Tuple)
		}
	}
	return out
}

// Stats returns the planner statistics at this snapshot.
func (s *Snapshot) Stats() Stats {
	h := s.h
	st := Stats{Count: h.live, MaxSeqLen: h.maxLen, VecCount: h.vecRows, VecDim: h.vecDim}
	if h.live > 0 {
		st.AvgSeqLen = float64(h.seqBytes) / float64(h.live)
	}
	for _, n := range h.byteRows {
		if n > 0 {
			st.Alphabet++
		}
	}
	return st
}

// Shard returns a cursor over the i-th of n contiguous arena partitions
// (i in [0,n)). Partition bounds are arena positions, so concatenating
// the shards in order reproduces the full visible scan order — the
// invariant deterministic parallel scans rely on.
func (s *Snapshot) Shard(i, n int) *Cursor {
	if n <= 0 || i < 0 || i >= n {
		return &Cursor{}
	}
	lo := i * len(s.h.rows) / n
	hi := (i + 1) * len(s.h.rows) / n
	// dead == 0 means no arena row carries a tombstone at this head, and
	// tombstones written by later commits get epochs above ours — so the
	// whole cursor range is visible and NextBlock can skip the per-row
	// epoch check for the entire run.
	return &Cursor{rows: s.h.rows[lo:hi], epoch: s.h.epoch, allLive: s.h.dead == 0}
}

// BKTree returns a BK-tree whose entries form a superset of the rows
// visible at this snapshot; callers must filter matches through
// Tuple/visibility. Usually this is the relation's shared online-
// maintained tree; when no tree was built at snapshot time a private
// one is built over the snapshot's own arena (correct even if the
// relation compacted since).
func (s *Snapshot) BKTree() *index.BKTree {
	if s.h.bk != nil {
		return s.h.bk
	}
	return buildBKTree(s.h.rows)
}

// Trie is the trie analogue of BKTree.
func (s *Snapshot) Trie() *index.Trie {
	if s.h.trie != nil {
		return s.h.trie
	}
	return buildTrie(s.h.rows)
}

// VPTree returns a VP-tree over the given metric whose entries form a
// superset of the rows visible at this snapshot; callers filter matches
// through Visible, exactly as with BKTree. When the relation has no
// shared tree for the metric a private one is built over the snapshot's
// own arena.
func (s *Snapshot) VPTree(m metric.Distance) *index.VPTree {
	if vp := s.h.vps[m.Name()]; vp != nil {
		return vp
	}
	return buildVPTree(m, s.h.rows)
}

// Visible reports whether the given id is visible at this snapshot —
// the filter index-backed access paths apply to their matches.
func (s *Snapshot) Visible(id int) bool {
	row := s.h.find(id)
	return row != nil && s.visible(row)
}

// Cursor iterates the visible tuples of one snapshot shard.
type Cursor struct {
	rows    []*Row
	epoch   uint64
	allLive bool // no tombstones in the arena at this epoch: skip checks
	pos     int
}

// Next returns the next visible tuple; ok is false at the end.
func (c *Cursor) Next() (Tuple, bool) {
	for c.pos < len(c.rows) {
		row := c.rows[c.pos]
		c.pos++
		if row.died.Load() > c.epoch {
			return row.Tuple, true
		}
	}
	return Tuple{}, false
}

// Block is a column-oriented batch of visible tuples — the unit the
// vectorized execution engine pulls. The four slices are parallel: row
// i is (IDs[i], Seqs[i], Vecs[i], Attrs[i]); Vecs[i] is nil for rows
// without an embedding.
type Block struct {
	IDs   []int
	Seqs  []string
	Vecs  []metric.Vector
	Attrs []map[string]string
}

// Reset empties the block, keeping capacity.
func (b *Block) Reset() {
	b.IDs, b.Seqs, b.Vecs, b.Attrs = b.IDs[:0], b.Seqs[:0], b.Vecs[:0], b.Attrs[:0]
}

// Append adds one tuple to the block.
func (b *Block) Append(id int, seq string, vec metric.Vector, attrs map[string]string) {
	b.IDs = append(b.IDs, id)
	b.Seqs = append(b.Seqs, seq)
	b.Vecs = append(b.Vecs, vec)
	b.Attrs = append(b.Attrs, attrs)
}

// Len returns the number of rows in the block.
func (b *Block) Len() int { return len(b.IDs) }

// NextBlock fills the block with up to max visible tuples and returns
// how many it produced (0 at the end of the shard). The batch engine's
// leaf: one call amortizes the per-row cursor overhead across the whole
// block, and when the snapshot carries no tombstones at all (the common
// append-only regime) the visibility check is skipped for the entire
// arena run instead of being paid per row.
func (c *Cursor) NextBlock(b *Block, max int) int {
	b.Reset()
	if max <= 0 {
		return 0
	}
	if c.allLive {
		end := c.pos + max
		if end > len(c.rows) {
			end = len(c.rows)
		}
		for _, row := range c.rows[c.pos:end] {
			b.Append(row.ID, row.Seq, row.Vec, row.Attrs)
		}
		n := end - c.pos
		c.pos = end
		return n
	}
	n := 0
	for c.pos < len(c.rows) && n < max {
		row := c.rows[c.pos]
		c.pos++
		if row.died.Load() > c.epoch {
			b.Append(row.ID, row.Seq, row.Vec, row.Attrs)
			n++
		}
	}
	return n
}

// ------------------------------------------------------------- storage

// Store writes the relation in the text codec: one tuple per line,
// "seq TAB vec=[...] TAB k=v TAB k=v...". IDs are positional and not
// stored. The vec token — always first when present — carries the
// canonical vector literal, whose shortest-round-trip formatting makes
// Store/Load bit-exact for the embedding column; "vec" is therefore a
// reserved column name that cannot appear as a plain attribute.
func (r *Relation) Store(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range r.Tuples() {
		if strings.ContainsAny(t.Seq, "\t\n") {
			return fmt.Errorf("relation: sequence %q contains tab/newline; not representable", t.Seq)
		}
		if _, err := bw.WriteString(t.Seq); err != nil {
			return err
		}
		if t.Vec != nil {
			if _, err := fmt.Fprintf(bw, "\tvec=%s", metric.Format(t.Vec)); err != nil {
				return err
			}
		}
		keys := make([]string, 0, len(t.Attrs))
		for k := range t.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if k == "vec" {
				return fmt.Errorf("relation: attribute name %q is reserved for the vector column", k)
			}
			if _, err := fmt.Fprintf(bw, "\t%s=%s", k, t.Attrs[k]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpState captures the relation's durable state for a checkpoint:
// the visible tuples in ascending id order and the id-allocator
// position. Tombstoned rows are elided — a rebuild from the dump is
// equivalent to a fully-compacted copy of the relation, which is
// observably identical (snapshots filter tombstones anyway) and
// strictly smaller on disk. One atomic head load; never blocks writers.
func (r *Relation) DumpState() (rows []Tuple, nextID int) {
	h := r.head.Load()
	rows = make([]Tuple, 0, h.live)
	for _, row := range h.rows {
		if row.died.Load() > h.epoch {
			rows = append(rows, row.Tuple)
		}
	}
	return rows, h.nextID
}

// Rebuild constructs a relation directly from checkpointed state: one
// arena allocation, statistics folded in a single pass, no per-row
// head publishes and no index builds (indexes rebuild lazily on first
// use, exactly as after a compaction). Rows must be unique by id;
// out-of-order input is sorted. nextID is clamped up so it is always
// past every rebuilt row.
func Rebuild(name string, rows []Tuple, nextID int) *Relation {
	r := New(name)
	if !sort.SliceIsSorted(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID }) {
		rows = append([]Tuple(nil), rows...)
		sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	}
	h := head{epoch: 1, nextID: nextID}
	h.rows = make([]*Row, len(rows))
	for i, t := range rows {
		row := &Row{Tuple: t}
		row.died.Store(aliveEpoch)
		h.rows[i] = row
		h.addStats(t)
		if t.ID >= h.nextID {
			h.nextID = t.ID + 1
		}
	}
	r.head.Store(&h)
	return r
}

// Load reads a relation in the Store codec. Lines starting with '#' and
// blank lines are skipped.
func Load(name string, rd io.Reader) (*Relation, error) {
	r := New(name)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "\t")
		var attrs map[string]string
		var vec metric.Vector
		for _, p := range parts[1:] {
			eq := strings.IndexByte(p, '=')
			if eq < 0 {
				return nil, fmt.Errorf("relation %s: line %d: bad attribute %q", name, line, p)
			}
			if p[:eq] == "vec" {
				v, err := metric.Parse(p[eq+1:])
				if err != nil {
					return nil, fmt.Errorf("relation %s: line %d: %v", name, line, err)
				}
				vec = v
				continue
			}
			if attrs == nil {
				attrs = make(map[string]string)
			}
			attrs[p[:eq]] = p[eq+1:]
		}
		r.InsertOne(InsertRow{Seq: parts[0], Vec: vec, Attrs: attrs})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("relation %s: %w", name, err)
	}
	return r, nil
}

// ------------------------------------------------------------- catalog

// Catalog is a named set of tables — the database the query engine
// runs against. Entries are plain Relations or ShardedRelations; both
// are addressed through the Table interface.
type Catalog struct {
	mu      sync.RWMutex
	version atomic.Uint64 // bumped on Add/replace
	rels    map[string]Table

	// Shard-signature cache: the signature only changes when the
	// catalog's membership does (version bump), and the serving hot
	// path reads it on every query, so it is computed once per catalog
	// version instead of per request.
	sigMu      sync.Mutex
	sigVersion uint64
	sig        string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{rels: make(map[string]Table)} }

// Add registers a table, replacing any previous one with the name.
func (c *Catalog) Add(t Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version.Add(1)
	c.rels[t.Name()] = t
}

// StatsVersion summarises the mutation state of the catalog and every
// registered relation. Any Add and any committed mutation of a
// registered relation changes the value, so cached query plans keyed on
// it are invalidated the moment the statistics they were costed against
// go stale. The combination is order-independent (relation versions are
// summed) because map iteration order is not deterministic. It runs on
// every query, so it takes only the catalog's shared lock plus atomic
// loads — no per-relation mutexes.
func (c *Catalog) StatsVersion() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v := c.version.Load() << 32
	for _, r := range c.rels {
		v += r.Version()
	}
	return v
}

// Lookup returns the named table — plain or sharded.
func (c *Catalog) Lookup(name string) (Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.rels[name]
	return t, ok
}

// Get returns the named table when it is a plain (unsharded) Relation;
// callers that can serve any physical layout use Lookup instead.
func (c *Catalog) Get(name string) (*Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.rels[name].(*Relation)
	return r, ok
}

// ShardSignature summarises the shard topology of the catalog as
// "name=shards" pairs, sorted by name (plain relations count as one
// shard). Plan-cache keys and prepared-query decision keys embed it, so
// replacing a table with a differently-sharded layout — which changes
// every physical plan over it — can never be served a stale plan, even
// if the statistics version were to collide.
func (c *Catalog) ShardSignature() string {
	c.sigMu.Lock()
	defer c.sigMu.Unlock()
	// Version 0 means no Add ever ran: the empty signature the zero
	// value carries is already correct.
	if c.sigVersion == c.version.Load() {
		return c.sig
	}
	c.mu.RLock()
	// Re-read under the catalog lock: Add bumps the version while
	// holding it, so this (version, membership) pair is consistent.
	v := c.version.Load()
	names := make([]string, 0, len(c.rels))
	for n := range c.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(';')
		}
		shards := 1
		if sh, ok := c.rels[n].(*ShardedRelation); ok {
			shards = sh.NumShards()
		}
		fmt.Fprintf(&b, "%s=%d", n, shards)
	}
	c.mu.RUnlock()
	c.sigVersion, c.sig = v, b.String()
	return c.sig
}

// Names returns the registered relation names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
