// Package relation provides the database substrate of the framework:
// named relations of sequences. Following the paper we treat relations
// as (essentially) unary — sets of sequences — but tuples may carry
// auxiliary string attributes (source, date, ...) that queries can
// filter on with equality predicates.
//
// A Relation owns lazily-built similarity indexes so that one loaded
// data set can serve many query strategies; building is guarded by a
// mutex, reads of a built index are lock-free.
package relation

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/index"
)

// Tuple is one row of a relation.
type Tuple struct {
	ID    int
	Seq   string
	Attrs map[string]string
}

// Attr returns the named attribute ("" when absent). The built-in
// columns "id" and "seq" are also addressable.
func (t Tuple) Attr(name string) string {
	switch name {
	case "id":
		return strconv.Itoa(t.ID)
	case "seq":
		return t.Seq
	default:
		return t.Attrs[name]
	}
}

// Relation is a named collection of tuples with lazily-built indexes.
type Relation struct {
	name   string
	tuples []Tuple

	mu      sync.Mutex
	version atomic.Uint64 // bumped on every mutation; feeds Catalog.StatsVersion
	bk      *index.BKTree
	trie    *index.Trie
	length  *index.LengthIndex
	qgram   *index.QGramIndex
	stats   *Stats
}

// Stats summarises a relation for the cost-based query planner.
type Stats struct {
	Count     int     // number of tuples
	AvgSeqLen float64 // mean sequence length
	MaxSeqLen int     // longest sequence
	Alphabet  int     // distinct bytes across all sequences (branching estimate)
}

// New returns an empty relation.
func New(name string) *Relation { return &Relation{name: name} }

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Insert appends a tuple and returns its id. Indexes built earlier are
// invalidated (dropped) — loading precedes querying in this system.
func (r *Relation) Insert(seq string, attrs map[string]string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := len(r.tuples)
	r.tuples = append(r.tuples, Tuple{ID: id, Seq: seq, Attrs: attrs})
	r.bk, r.trie, r.length, r.qgram, r.stats = nil, nil, nil, nil, nil
	r.version.Add(1)
	return id
}

// Version is a mutation counter: it changes whenever the relation's
// contents (and therefore its statistics) change. Plan caches read it
// on every query, so it is a lock-free atomic — the serving hot path
// must never take a relation's exclusive mutex.
func (r *Relation) Version() uint64 { return r.version.Load() }

// Tuples returns the tuples. Callers must not modify the slice.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Shard returns the i-th of n contiguous tuple partitions (i in
// [0,n)). Concatenating the shards in order reproduces Tuples exactly,
// which is what makes parallel scans deterministic.
func (r *Relation) Shard(i, n int) []Tuple {
	if n <= 0 || i < 0 || i >= n {
		return nil
	}
	lo := i * len(r.tuples) / n
	hi := (i + 1) * len(r.tuples) / n
	return r.tuples[lo:hi]
}

// Stats returns planner statistics, computing them on first use.
func (r *Relation) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stats == nil {
		st := Stats{Count: len(r.tuples)}
		var total int
		var seen [256]bool
		for _, t := range r.tuples {
			total += len(t.Seq)
			if len(t.Seq) > st.MaxSeqLen {
				st.MaxSeqLen = len(t.Seq)
			}
			for i := 0; i < len(t.Seq); i++ {
				seen[t.Seq[i]] = true
			}
		}
		if st.Count > 0 {
			st.AvgSeqLen = float64(total) / float64(st.Count)
		}
		for _, s := range seen {
			if s {
				st.Alphabet++
			}
		}
		r.stats = &st
	}
	return *r.stats
}

// Tuple returns the tuple with the given id.
func (r *Relation) Tuple(id int) (Tuple, bool) {
	if id < 0 || id >= len(r.tuples) {
		return Tuple{}, false
	}
	return r.tuples[id], true
}

// Entries adapts the tuples for the index package.
func (r *Relation) Entries() []index.Entry {
	out := make([]index.Entry, len(r.tuples))
	for i, t := range r.tuples {
		out[i] = index.Entry{ID: t.ID, S: t.Seq}
	}
	return out
}

// BKTree returns the relation's BK-tree, building it on first use.
func (r *Relation) BKTree() *index.BKTree {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bk == nil {
		bk := index.NewBKTree()
		for _, t := range r.tuples {
			bk.Insert(t.ID, t.Seq)
		}
		r.bk = bk
	}
	return r.bk
}

// Trie returns the relation's trie index, building it on first use.
func (r *Relation) Trie() *index.Trie {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.trie == nil {
		tr := index.NewTrie()
		for _, t := range r.tuples {
			tr.Insert(t.ID, t.Seq)
		}
		r.trie = tr
	}
	return r.trie
}

// LengthIndex returns the relation's length index, building it on first
// use.
func (r *Relation) LengthIndex() *index.LengthIndex {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.length == nil {
		li := index.NewLengthIndex()
		for _, t := range r.tuples {
			li.Insert(t.ID, t.Seq)
		}
		r.length = li
	}
	return r.length
}

// QGramIndex returns the relation's 2-gram index, building it on first
// use.
func (r *Relation) QGramIndex() *index.QGramIndex {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.qgram == nil {
		qg := index.NewQGramIndex(2)
		for _, t := range r.tuples {
			qg.Insert(t.ID, t.Seq)
		}
		r.qgram = qg
	}
	return r.qgram
}

// Store writes the relation in the text codec: one tuple per line,
// "seq TAB k=v TAB k=v...". IDs are positional and not stored.
func (r *Relation) Store(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range r.tuples {
		if strings.ContainsAny(t.Seq, "\t\n") {
			return fmt.Errorf("relation: sequence %q contains tab/newline; not representable", t.Seq)
		}
		if _, err := bw.WriteString(t.Seq); err != nil {
			return err
		}
		keys := make([]string, 0, len(t.Attrs))
		for k := range t.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := fmt.Fprintf(bw, "\t%s=%s", k, t.Attrs[k]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a relation in the Store codec. Lines starting with '#' and
// blank lines are skipped.
func Load(name string, rd io.Reader) (*Relation, error) {
	r := New(name)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "\t")
		var attrs map[string]string
		for _, p := range parts[1:] {
			eq := strings.IndexByte(p, '=')
			if eq < 0 {
				return nil, fmt.Errorf("relation %s: line %d: bad attribute %q", name, line, p)
			}
			if attrs == nil {
				attrs = make(map[string]string)
			}
			attrs[p[:eq]] = p[eq+1:]
		}
		r.Insert(parts[0], attrs)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("relation %s: %w", name, err)
	}
	return r, nil
}

// Catalog is a named set of relations — the database the query engine
// runs against.
type Catalog struct {
	mu      sync.RWMutex
	version atomic.Uint64 // bumped on Add/replace
	rels    map[string]*Relation
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{rels: make(map[string]*Relation)} }

// Add registers a relation, replacing any previous one with the name.
func (c *Catalog) Add(r *Relation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version.Add(1)
	c.rels[r.Name()] = r
}

// StatsVersion summarises the mutation state of the catalog and every
// registered relation. Any Add and any Insert into a registered
// relation changes the value, so cached query plans keyed on it are
// invalidated the moment the statistics they were costed against go
// stale. The combination is order-independent (relation versions are
// summed) because map iteration order is not deterministic. It runs on
// every query, so it takes only the catalog's shared lock plus atomic
// loads — no per-relation mutexes.
func (c *Catalog) StatsVersion() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v := c.version.Load() << 32
	for _, r := range c.rels {
		v += r.Version()
	}
	return v
}

// Get returns the named relation.
func (c *Catalog) Get(name string) (*Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.rels[name]
	return r, ok
}

// Names returns the registered relation names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
