package relation

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestDeleteAndUpdateVisibility(t *testing.T) {
	r := New("m")
	a := r.Insert("aaa", nil)
	b := r.Insert("bbb", map[string]string{"k": "1"})

	if !r.Delete(a) {
		t.Fatal("Delete(a) = false")
	}
	if r.Delete(a) {
		t.Fatal("double Delete(a) = true")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if _, ok := r.Tuple(a); ok {
		t.Error("deleted tuple still visible")
	}

	nb, ok := r.Update(b, "ccc", map[string]string{"k": "2"})
	if !ok || nb == b {
		t.Fatalf("Update = %d,%v", nb, ok)
	}
	if _, ok := r.Tuple(b); ok {
		t.Error("old version visible after update")
	}
	tp, ok := r.Tuple(nb)
	if !ok || tp.Seq != "ccc" || tp.Attrs["k"] != "2" {
		t.Errorf("updated tuple = %+v, %v", tp, ok)
	}
	if _, ok := r.Update(b, "x", nil); ok {
		t.Error("Update of dead id succeeded")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := New("iso")
	for i := 0; i < 10; i++ {
		r.Insert(fmt.Sprintf("row%02d", i), nil)
	}
	snap := r.Snapshot()
	before := snap.Tuples()

	// Mutate heavily after the snapshot.
	r.Delete(0)
	r.Update(1, "changed", nil)
	for i := 0; i < 5; i++ {
		r.Insert("new", nil)
	}
	r.Compact()

	if got := snap.Tuples(); !reflect.DeepEqual(got, before) {
		t.Fatalf("snapshot drifted:\n got %v\nwant %v", got, before)
	}
	if snap.Len() != 10 {
		t.Errorf("snapshot Len = %d, want 10", snap.Len())
	}
	if _, ok := snap.Tuple(0); !ok {
		t.Error("snapshot lost row deleted after it")
	}
	if cur, _ := r.Tuple(1); cur.Seq == "row01" {
		t.Error("current view did not see the update")
	}
	// Index access through the old snapshot still answers pre-mutation.
	got := snap.BKTree().Range("row00", 0)
	vis := 0
	for _, m := range got {
		if snap.Visible(m.ID) {
			vis++
		}
	}
	if vis != 1 {
		t.Errorf("snapshot index sees %d visible matches for row00, want 1", vis)
	}
}

func TestShardsConcatenateToTuples(t *testing.T) {
	r := New("sh")
	for i := 0; i < 97; i++ {
		r.Insert(fmt.Sprintf("s%03d", i), nil)
	}
	// Punch holes so shards must skip tombstones.
	for i := 0; i < 97; i += 7 {
		r.Delete(i)
	}
	want := r.Tuples()
	for _, n := range []int{1, 2, 3, 8} {
		var got []Tuple
		for i := 0; i < n; i++ {
			got = append(got, r.Shard(i, n)...)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards(%d) concat != Tuples", n)
		}
	}
}

func TestCompactionPolicyAndCorrectness(t *testing.T) {
	r := New("c")
	const n = 400
	for i := 0; i < n; i++ {
		r.Insert(fmt.Sprintf("w%04d", i), nil)
	}
	r.BKTree() // build so compaction has to rebuild it
	for i := 0; i < n/2; i++ {
		r.Delete(i)
	}
	// The policy must have fired along the way, so the arena can never
	// carry more than the trigger threshold of tombstones.
	if got := r.Tombstones(); got >= 100 {
		t.Fatalf("Tombstones = %d after heavy delete; compaction policy never fired", got)
	}
	r.Compact()
	if got := r.Tombstones(); got != 0 {
		t.Fatalf("Tombstones = %d after forced compaction, want 0", got)
	}
	if r.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", r.Len(), n/2)
	}
	// Rebuilt index contains exactly the survivors.
	if r.BKTree().Len() != n/2 {
		t.Fatalf("compacted BK-tree Len = %d, want %d", r.BKTree().Len(), n/2)
	}
	st := r.Stats()
	if st.Count != n/2 || st.MaxSeqLen != 5 {
		t.Errorf("Stats after compaction = %+v", st)
	}
}

func TestIncrementalStatsMatchRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := New("st")
	var ids []int
	for op := 0; op < 2000; op++ {
		switch {
		case len(ids) == 0 || rng.Intn(10) < 6:
			b := make([]byte, 1+rng.Intn(12))
			for j := range b {
				b[j] = byte('a' + rng.Intn(9))
			}
			ids = append(ids, r.Insert(string(b), nil))
		case rng.Intn(2) == 0:
			i := rng.Intn(len(ids))
			if r.Delete(ids[i]) {
				ids = append(ids[:i], ids[i+1:]...)
			}
		default:
			i := rng.Intn(len(ids))
			if nid, ok := r.Update(ids[i], "zz", nil); ok {
				ids[i] = nid
			}
		}
	}
	st := r.Stats()
	// Recompute from visible tuples.
	var want Stats
	var total int
	var seen [256]bool
	ts := r.Tuples()
	want.Count = len(ts)
	for _, tp := range ts {
		total += len(tp.Seq)
		for i := 0; i < len(tp.Seq); i++ {
			seen[tp.Seq[i]] = true
		}
	}
	if want.Count > 0 {
		want.AvgSeqLen = float64(total) / float64(want.Count)
	}
	for _, s := range seen {
		if s {
			want.Alphabet++
		}
	}
	if st.Count != want.Count || st.AvgSeqLen != want.AvgSeqLen || st.Alphabet != want.Alphabet {
		t.Fatalf("incremental stats %+v != recomputed %+v", st, want)
	}
	if st.MaxSeqLen < want.MaxSeqLen {
		t.Fatalf("MaxSeqLen %d underestimates true %d", st.MaxSeqLen, want.MaxSeqLen)
	}
}

func TestInsertBatchAtomicVisibility(t *testing.T) {
	r := New("ib")
	r.Insert("pre", nil)
	r.BKTree()
	before := r.Snapshot()
	rows := make([]InsertRow, 50)
	for i := range rows {
		rows[i] = InsertRow{Seq: fmt.Sprintf("b%03d", i)}
	}
	ids := r.InsertBatch(rows)
	if len(ids) != 50 || ids[0] != 1 || ids[49] != 50 {
		t.Fatalf("batch ids = %v", ids)
	}
	// One commit: epoch moved by exactly 1 and the whole batch is
	// visible to a post-commit snapshot, none of it to a pre-commit one.
	after := r.Snapshot()
	if after.Epoch() != before.Epoch()+1 {
		t.Fatalf("epoch %d -> %d, want one commit", before.Epoch(), after.Epoch())
	}
	if before.Len() != 1 || after.Len() != 51 {
		t.Fatalf("Len before/after = %d/%d", before.Len(), after.Len())
	}
	if len(r.BKTree().Range("b007", 0)) != 1 {
		t.Error("online index missed a batched row")
	}
	if r.InsertBatch(nil) != nil {
		t.Error("empty batch committed something")
	}
}

// TestReadersNeverBlockWriters runs concurrent snapshot readers against
// a committing writer; under -race this pins the lock-free read path,
// and each reader checks its snapshot stays frozen while commits land.
func TestReadersNeverBlockWriters(t *testing.T) {
	r := New("rw")
	for i := 0; i < 200; i++ {
		r.Insert(fmt.Sprintf("base%04d", i), nil)
	}
	r.BKTree()
	r.Trie()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				want := snap.Len()
				got := 0
				c := snap.Shard(0, 1)
				for _, ok := c.Next(); ok; _, ok = c.Next() {
					got++
				}
				if got != want {
					t.Errorf("snapshot scan saw %d rows, Len says %d", got, want)
					return
				}
				for _, m := range snap.BKTree().Range("base0001", 1) {
					if _, ok := snap.Tuple(m.ID); ok != snap.Visible(m.ID) {
						t.Error("Tuple and Visible disagree")
						return
					}
				}
			}
		}(w)
	}
	ids := make([]int, 0, 200)
	for i := 0; i < 200; i++ {
		ids = append(ids, i)
	}
	for i := 0; i < 600; i++ {
		switch i % 3 {
		case 0:
			ids = append(ids, r.Insert(fmt.Sprintf("live%04d", i), nil))
		case 1:
			r.Delete(ids[i%len(ids)])
		case 2:
			if nid, ok := r.Update(ids[(i*7)%len(ids)], "upd", nil); ok {
				ids = append(ids, nid)
			}
		}
	}
	close(stop)
	wg.Wait()
}
