// Horizontal sharding. A ShardedRelation hash-partitions its rows
// across N plain Relations ("shards"), each with its own MVCC arena,
// online-maintained BK-tree/trie indexes and — when the storage layer
// runs segmented — its own WAL segment. Tuple ids stay global: the
// sharded relation owns the id allocator and installs rows into shards
// with InsertAt/InsertBatchAt, so a sharded relation assigns exactly
// the ids its unsharded twin would (the property the oracle tests pin).
//
// Readers never see a half-applied cross-shard commit: every mutation,
// after updating the affected shards, publishes a fresh ShardView — a
// vector of per-shard snapshots captured together under the writer
// mutex — through one atomic pointer swap. A reader loads the vector
// once and reads all shards at that consistent cut; concurrent commits
// build the next vector without disturbing it. This is the cross-shard
// analogue of Relation's single-head MVCC publish.
package relation

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/metric"
)

// ShardOf is the hash partitioner for sequence-only rows: the shard
// index in [0,n) that owns a sequence. Equivalent to RouteOf(seq, nil,
// n), kept as the short form for the (vast majority of) call sites
// without a vector column.
func ShardOf(seq string, n int) int {
	return RouteOf(seq, nil, n)
}

// RouteOf is the full-width hash partitioner: FNV-1a over the sequence
// bytes followed by the little-endian float32 bit patterns of the
// vector, reduced mod n — fast, allocation-free, and stable across
// processes (replay and re-open must route every row to the shard that
// logged it). Hashing bit patterns rather than values means a row
// routes identically after any text round-trip, because the vector
// codec is bit-exact. Rows with a nil vector hash exactly as they did
// before the vector column existed, so pre-existing WALs replay to the
// same shards.
func RouteOf(seq string, vec metric.Vector, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(seq))
	if len(vec) > 0 {
		var buf [4]byte
		for _, x := range vec {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(x))
			h.Write(buf[:])
		}
	}
	return int(h.Sum64() % uint64(n))
}

// ShardedRelation is a Table whose rows are hash-partitioned across N
// shard Relations. All mutations serialize on its mutex and finish by
// publishing a consistent ShardView; reads go through the view and
// never block writers.
type ShardedRelation struct {
	name   string
	mu     sync.Mutex // serializes mutations and view publishes
	shards []*Relation
	nextID int // global id allocator (shared with ReserveIDs)

	view    atomic.Pointer[ShardView]
	version atomic.Uint64
}

// NewSharded returns an empty sharded relation with n shards (n < 1
// clamps to 1 — a degenerate but valid single-shard layout).
func NewSharded(name string, n int) *ShardedRelation {
	if n < 1 {
		n = 1
	}
	s := &ShardedRelation{name: name, shards: make([]*Relation, n)}
	for i := range s.shards {
		s.shards[i] = New(fmt.Sprintf("%s/%d", name, i))
	}
	s.view.Store(s.captureView())
	return s
}

// Name returns the sharded relation's name.
func (s *ShardedRelation) Name() string { return s.name }

// NumShards returns the shard count.
func (s *ShardedRelation) NumShards() int { return len(s.shards) }

// Version is the mutation counter; see Relation.Version.
func (s *ShardedRelation) Version() uint64 { return s.version.Load() }

// captureView snapshots every shard. Callers that need a consistent
// cut hold mu; the constructor runs before the value escapes.
func (s *ShardedRelation) captureView() *ShardView {
	snaps := make([]*Snapshot, len(s.shards))
	for i, r := range s.shards {
		snaps[i] = r.Snapshot()
	}
	return &ShardView{snaps: snaps}
}

// publishLocked installs a fresh view and bumps the version. Caller
// holds mu and has finished mutating the shards.
func (s *ShardedRelation) publishLocked() {
	s.view.Store(s.captureView())
	s.version.Add(1)
}

// View returns the current consistent read view. Like Snapshot it is
// one atomic load, never expires, and needs no release.
func (s *ShardedRelation) View() *ShardView { return s.view.Load() }

// Len returns the number of visible tuples across all shards.
func (s *ShardedRelation) Len() int { return s.View().Len() }

// Stats returns merged planner statistics; see ShardView.Stats.
func (s *ShardedRelation) Stats() Stats { return s.View().Stats() }

// Tuple returns the visible tuple with the given id.
func (s *ShardedRelation) Tuple(id int) (Tuple, bool) { return s.View().Tuple(id) }

// Tuples materialises the visible tuples in global id order.
func (s *ShardedRelation) Tuples() []Tuple { return s.View().Tuples() }

// ShardStat describes one shard for metrics endpoints.
type ShardStat struct {
	Rows       int `json:"rows"`
	Tombstones int `json:"tombstones"`
	SeqBytes   int `json:"seq_bytes"`
}

// ShardStats snapshots per-shard row counts at the current view.
func (s *ShardedRelation) ShardStats() []ShardStat {
	v := s.View()
	out := make([]ShardStat, len(v.snaps))
	for i, sn := range v.snaps {
		out[i] = ShardStat{Rows: sn.h.live, Tombstones: sn.h.dead, SeqBytes: sn.h.seqBytes}
	}
	return out
}

// Insert routes the row to its hash shard under a fresh global id.
func (s *ShardedRelation) Insert(seq string, attrs map[string]string) int {
	return s.InsertBatch([]InsertRow{{Seq: seq, Attrs: attrs}})[0]
}

// InsertBatch appends rows in ONE cross-shard commit: ids are assigned
// in row order, rows are routed by sequence hash, each touched shard
// applies its run as one batch, and a single view publish makes the
// whole batch visible atomically.
func (s *ShardedRelation) InsertBatch(rows []InsertRow) []int {
	if len(rows) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int, len(rows))
	perIDs := make([][]int, len(s.shards))
	perRows := make([][]InsertRow, len(s.shards))
	for i, in := range rows {
		id := s.nextID
		s.nextID++
		ids[i] = id
		sh := RouteOf(in.Seq, in.Vec, len(s.shards))
		perIDs[sh] = append(perIDs[sh], id)
		perRows[sh] = append(perRows[sh], in)
	}
	for sh, rs := range perRows {
		if len(rs) > 0 {
			s.shards[sh].InsertBatchAt(perIDs[sh], cloneSeqs(rs))
		}
	}
	s.publishLocked()
	return ids
}

// cloneSeqs copies the sequence bytes of one shard's insert run into
// fresh, consecutively-allocated strings. Hash routing scatters a
// batch's rows across shards, so without the copy a shard's arena
// points at every N-th string of the original load — and a scan's
// verification DP then strides through the whole batch's string heap
// instead of reading one shard's worth sequentially. The copy at
// ingest restores per-shard locality (~15% on scan-bound queries) for
// one extra allocation per row, paid off the query path.
func cloneSeqs(rows []InsertRow) []InsertRow {
	out := make([]InsertRow, len(rows))
	for i, r := range rows {
		out[i] = InsertRow{Seq: strings.Clone(r.Seq), Vec: r.Vec.Clone(), Attrs: r.Attrs}
	}
	return out
}

// InsertBatchAt installs rows under caller-assigned ids in ONE
// cross-shard commit (the explicit-id analogue of InsertBatch; the
// segmented storage layer applies reserved-id ingest batches with it).
// Rows whose id is already taken are skipped; the installed ids are
// returned in batch order.
func (s *ShardedRelation) InsertBatchAt(ids []int, rows []InsertRow) []int {
	if len(rows) == 0 || len(ids) != len(rows) {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	perIDs := make([][]int, len(s.shards))
	perRows := make([][]InsertRow, len(s.shards))
	seen := make(map[int]bool, len(rows))
	installed := make([]int, 0, len(rows))
	for i, in := range rows {
		id := ids[i]
		// Ids must be fresh across the whole relation and the batch
		// itself, mirroring InsertAt's single-row contract.
		if seen[id] || s.shardOfIDLocked(id) >= 0 {
			continue
		}
		seen[id] = true
		installed = append(installed, id)
		sh := RouteOf(in.Seq, in.Vec, len(s.shards))
		perIDs[sh] = append(perIDs[sh], id)
		perRows[sh] = append(perRows[sh], in)
		if id >= s.nextID {
			s.nextID = id + 1
		}
	}
	if len(installed) == 0 {
		return nil
	}
	for sh, rs := range perRows {
		if len(rs) > 0 {
			s.shards[sh].InsertBatchAt(perIDs[sh], cloneSeqs(rs))
		}
	}
	s.publishLocked()
	return installed
}

// InsertAt installs a row under a caller-assigned id (segmented-WAL
// replay and reserved-id commits); false when the id is already taken.
func (s *ShardedRelation) InsertAt(id int, seq string, attrs map[string]string) bool {
	return s.InsertRowAt(id, InsertRow{Seq: seq, Attrs: attrs})
}

// InsertRowAt is InsertAt carrying the full tuple width.
func (s *ShardedRelation) InsertRowAt(id int, in InsertRow) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The id must be fresh across ALL shards — the row owning it may live
	// on a different shard than the one this row hashes to.
	if s.shardOfIDLocked(id) >= 0 {
		return false
	}
	ok := s.shards[RouteOf(in.Seq, in.Vec, len(s.shards))].InsertRowAt(id, in)
	if ok {
		if id >= s.nextID {
			s.nextID = id + 1
		}
		s.publishLocked()
	}
	return ok
}

// ReserveIDs allocates n fresh global ids without installing rows. The
// segmented storage layer reserves ids first so WAL records can carry
// them; a crash between reservation and apply leaves a harmless id gap.
func (s *ShardedRelation) ReserveIDs(n int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = s.nextID
		s.nextID++
	}
	return ids
}

// shardOfIDLocked returns the index of the shard whose arena holds id
// (tombstoned or not), or -1. Caller holds mu.
func (s *ShardedRelation) shardOfIDLocked(id int) int {
	for i, r := range s.shards {
		if r.head.Load().find(id) != nil {
			return i
		}
	}
	return -1
}

// ShardOfID returns the shard index owning the given id, or -1 when no
// arena holds it. The storage layer routes delete/update WAL records
// with it so a row's tombstone lands in the segment that logged its
// insert.
func (s *ShardedRelation) ShardOfID(id int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardOfIDLocked(id)
}

// Delete tombstones the row with the given id; false when no visible
// row has it.
func (s *ShardedRelation) Delete(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shardOfIDLocked(id)
	if sh < 0 || !s.shards[sh].Delete(id) {
		return false
	}
	s.publishLocked()
	return true
}

// Update replaces the row with the given id in one cross-shard commit:
// the old version is tombstoned in its owning shard and the new version
// (fresh global id) installed in the shard its sequence hashes to —
// possibly a different one. Readers see the old row or the new one,
// never both and never neither, because only the view publish at the
// end makes either side visible.
func (s *ShardedRelation) Update(id int, seq string, attrs map[string]string) (int, bool) {
	return s.UpdateRow(id, InsertRow{Seq: seq, Attrs: attrs})
}

// UpdateRow is Update carrying the full tuple width.
func (s *ShardedRelation) UpdateRow(id int, in InsertRow) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	newID := s.nextID
	if !s.updateLocked(id, newID, in) {
		return 0, false
	}
	s.nextID++
	s.publishLocked()
	return newID, true
}

// UpdateAt is Update under a caller-assigned replacement id.
func (s *ShardedRelation) UpdateAt(id, newID int, seq string, attrs map[string]string) bool {
	return s.UpdateRowAt(id, newID, InsertRow{Seq: seq, Attrs: attrs})
}

// UpdateRowAt is UpdateAt carrying the full tuple width.
func (s *ShardedRelation) UpdateRowAt(id, newID int, in InsertRow) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.updateLocked(id, newID, in) {
		return false
	}
	if newID >= s.nextID {
		s.nextID = newID + 1
	}
	s.publishLocked()
	return true
}

func (s *ShardedRelation) updateLocked(id, newID int, in InsertRow) bool {
	from := s.shardOfIDLocked(id)
	if from < 0 {
		return false
	}
	// newID must be fresh across ALL shards, checked before any shard
	// mutates: a collision discovered after the delete half would leave
	// the row tombstoned with no replacement while reporting failure.
	if s.shardOfIDLocked(newID) >= 0 {
		return false
	}
	to := RouteOf(in.Seq, in.Vec, len(s.shards))
	if from == to {
		return s.shards[from].UpdateRowAt(id, newID, in)
	}
	if !s.shards[from].Delete(id) {
		return false
	}
	return s.shards[to].InsertRowAt(newID, in)
}

// DumpState captures the sharded relation's durable state for a
// checkpoint: the visible tuples in global id order plus the global
// id-allocator position. Like Relation.DumpState, tombstoned rows are
// elided. The per-shard placement is NOT recorded — every row's shard
// satisfies RouteOf (the placement invariant every mutation maintains),
// so RebuildSharded re-derives it, and the dump format stays identical
// for sharded and plain relations.
func (s *ShardedRelation) DumpState() (rows []Tuple, nextID int) {
	s.mu.Lock()
	v := s.view.Load()
	nextID = s.nextID
	s.mu.Unlock()
	return v.Tuples(), nextID
}

// RebuildSharded constructs an n-shard relation from checkpointed
// state, routing every row to its hash shard and building each shard's
// arena in one pass (see Rebuild). nextID is clamped past every row.
func RebuildSharded(name string, n int, rows []Tuple, nextID int) *ShardedRelation {
	if n < 1 {
		n = 1
	}
	perShard := make([][]Tuple, n)
	for _, t := range rows {
		sh := RouteOf(t.Seq, t.Vec, n)
		perShard[sh] = append(perShard[sh], t)
		if t.ID >= nextID {
			nextID = t.ID + 1
		}
	}
	s := &ShardedRelation{name: name, shards: make([]*Relation, n), nextID: nextID}
	for i := range s.shards {
		s.shards[i] = Rebuild(fmt.Sprintf("%s/%d", name, i), perShard[i], 0)
	}
	s.view.Store(s.captureView())
	return s
}

// Compact forces tombstone compaction on every shard (for tests and
// operational tooling; each shard also self-compacts by policy).
func (s *ShardedRelation) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.shards {
		r.Compact()
	}
	s.publishLocked()
}

// Tombstones returns the dead rows still in the arenas.
func (s *ShardedRelation) Tombstones() int {
	v := s.View()
	n := 0
	for _, sn := range v.snaps {
		n += sn.h.dead
	}
	return n
}

// EnsureBKTrees builds (once) the BK-tree of every shard and republishes
// the view so its snapshots carry the shared trees. Like
// Relation.ensureBKTree this changes no statistics and bumps no
// version — cached plans stay valid.
func (s *ShardedRelation) EnsureBKTrees() {
	s.mu.Lock()
	defer s.mu.Unlock()
	built := false
	for _, r := range s.shards {
		if r.head.Load().bk == nil {
			r.ensureBKTree()
			built = true
		}
	}
	if built {
		s.view.Store(s.captureView())
	}
}

// EnsureTries is the trie analogue of EnsureBKTrees.
func (s *ShardedRelation) EnsureTries() {
	s.mu.Lock()
	defer s.mu.Unlock()
	built := false
	for _, r := range s.shards {
		if r.head.Load().trie == nil {
			r.ensureTrie()
			built = true
		}
	}
	if built {
		s.view.Store(s.captureView())
	}
}

// EnsureVPTrees is the VP-tree analogue of EnsureBKTrees: every shard
// gets an online-maintained VP-tree over the given metric.
func (s *ShardedRelation) EnsureVPTrees(m metric.Distance) {
	s.mu.Lock()
	defer s.mu.Unlock()
	built := false
	for _, r := range s.shards {
		if r.head.Load().vps[m.Name()] == nil {
			r.ensureVPTree(m)
			built = true
		}
	}
	if built {
		s.view.Store(s.captureView())
	}
}

// ------------------------------------------------------------ view

// ShardView is a consistent cross-shard read view: one snapshot per
// shard, captured together at a commit boundary. All reads through a
// view see exactly the rows of one cross-shard commit, no matter how
// many commits land concurrently.
type ShardView struct {
	snaps []*Snapshot
}

// NumShards returns the number of shard snapshots in the view.
func (v *ShardView) NumShards() int { return len(v.snaps) }

// Snap returns the i-th shard's snapshot.
func (v *ShardView) Snap(i int) *Snapshot { return v.snaps[i] }

// Len returns the number of visible tuples across the view.
func (v *ShardView) Len() int {
	n := 0
	for _, s := range v.snaps {
		n += s.Len()
	}
	return n
}

// Tuple returns the visible tuple with the given id, searching every
// shard (ids are global; exactly one shard can hold a given id).
func (v *ShardView) Tuple(id int) (Tuple, bool) {
	for _, s := range v.snaps {
		if t, ok := s.Tuple(id); ok {
			return t, true
		}
	}
	return Tuple{}, false
}

// Tuples materialises the visible tuples in global id order — the same
// order an unsharded relation's scan produces, which is what makes
// sharded scan results mergeable back into the serial order.
func (v *ShardView) Tuples() []Tuple {
	// K-way merge over the shard cursors; each shard's arena is already
	// ascending in (global) id.
	cursors := make([]*Cursor, len(v.snaps))
	heads := make([]Tuple, len(v.snaps))
	ok := make([]bool, len(v.snaps))
	total := 0
	for i, s := range v.snaps {
		cursors[i] = s.Shard(0, 1)
		heads[i], ok[i] = cursors[i].Next()
		total += s.Len()
	}
	out := make([]Tuple, 0, total)
	for {
		best := -1
		for i := range heads {
			if ok[i] && (best < 0 || heads[i].ID < heads[best].ID) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, heads[best])
		heads[best], ok[best] = cursors[best].Next()
	}
}

// Stats merges the per-shard statistics into relation-level planner
// statistics. Exact for Count, AvgSeqLen and Alphabet (the byte
// histograms add); MaxSeqLen inherits each shard's upper-bound
// semantics.
func (v *ShardView) Stats() Stats {
	var live, seqBytes, maxLen, vecRows, vecDim int
	var byteRows [256]int
	for _, s := range v.snaps {
		h := s.h
		live += h.live
		seqBytes += h.seqBytes
		if h.maxLen > maxLen {
			maxLen = h.maxLen
		}
		vecRows += h.vecRows
		if h.vecDim > vecDim {
			vecDim = h.vecDim
		}
		for b, n := range h.byteRows {
			byteRows[b] += n
		}
	}
	st := Stats{Count: live, MaxSeqLen: maxLen, VecCount: vecRows, VecDim: vecDim}
	if live > 0 {
		st.AvgSeqLen = float64(seqBytes) / float64(live)
	}
	for _, n := range byteRows {
		if n > 0 {
			st.Alphabet++
		}
	}
	return st
}
