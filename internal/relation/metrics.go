package relation

import "repro/internal/obs"

// Relation-layer metrics on the process-wide obs registry. Row and
// tombstone populations are per-relation and live on GaugeFuncs
// registered by the serving layer over its catalog; the counters here
// aggregate events that any relation can trigger.
var (
	mCompactions = obs.Default.Counter("simq_compactions_total",
		"Tombstone compactions run across all relations.")
	mCompactSeconds = obs.Default.Histogram("simq_compaction_seconds",
		"Wall time of one relation compaction (arena + index rebuild).", obs.DefBuckets)
)
