package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestInsertAndTuple(t *testing.T) {
	r := New("words")
	id0 := r.Insert("hello", nil)
	id1 := r.Insert("world", map[string]string{"lang": "en"})
	if id0 != 0 || id1 != 1 {
		t.Fatalf("ids = %d,%d", id0, id1)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	tp, ok := r.Tuple(1)
	if !ok || tp.Seq != "world" || tp.Attrs["lang"] != "en" {
		t.Errorf("Tuple(1) = %+v, %v", tp, ok)
	}
	if _, ok := r.Tuple(5); ok {
		t.Error("Tuple(5) ok on 2-tuple relation")
	}
	if _, ok := r.Tuple(-1); ok {
		t.Error("Tuple(-1) ok")
	}
}

func TestTupleAttr(t *testing.T) {
	tp := Tuple{ID: 7, Seq: "abc", Attrs: map[string]string{"x": "1"}}
	if tp.Attr("id") != "7" || tp.Attr("seq") != "abc" || tp.Attr("x") != "1" || tp.Attr("nope") != "" {
		t.Errorf("Attr wrong: %q %q %q %q", tp.Attr("id"), tp.Attr("seq"), tp.Attr("x"), tp.Attr("nope"))
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	r := New("rt")
	r.Insert("abc", nil)
	r.Insert("def", map[string]string{"b": "2", "a": "1"})
	var buf bytes.Buffer
	if err := r.Store(&buf); err != nil {
		t.Fatalf("Store: %v", err)
	}
	got, err := Load("rt", &buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d", got.Len())
	}
	tp, _ := got.Tuple(1)
	if tp.Seq != "def" || tp.Attrs["a"] != "1" || tp.Attrs["b"] != "2" {
		t.Errorf("round trip tuple = %+v", tp)
	}
}

func TestStoreRejectsTabs(t *testing.T) {
	r := New("bad")
	r.Insert("a\tb", nil)
	if err := r.Store(&bytes.Buffer{}); err == nil {
		t.Fatal("Store accepted a tab in a sequence")
	}
}

func TestLoadSkipsCommentsAndBlank(t *testing.T) {
	src := "# header\n\nabc\n# mid\ndef\tk=v\n"
	r, err := Load("x", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestLoadBadAttr(t *testing.T) {
	if _, err := Load("x", strings.NewReader("abc\tnoequals\n")); err == nil {
		t.Fatal("Load accepted a malformed attribute")
	}
}

func TestIndexesAgree(t *testing.T) {
	r := New("ix")
	for _, s := range []string{"cat", "cart", "bat", "hat", "chart", "act"} {
		r.Insert(s, nil)
	}
	bk := r.BKTree().Range("cat", 1)
	tr := r.Trie().Range("cat", 1)
	if len(bk) != len(tr) {
		t.Fatalf("bk=%d trie=%d matches", len(bk), len(tr))
	}
	if len(bk) != 4 { // cat, cart, bat, hat
		t.Errorf("Range(cat,1) = %d matches, want 4: %v", len(bk), bk)
	}
	// Index caching: same pointer on second call.
	if r.BKTree() != r.BKTree() {
		t.Error("BKTree rebuilt on second call")
	}
}

func TestInsertMaintainsIndexes(t *testing.T) {
	r := New("inv")
	r.Insert("aaa", nil)
	bk1 := r.BKTree()
	tr1 := r.Trie()
	r.Insert("bbb", nil)
	if bk2 := r.BKTree(); bk2 != bk1 {
		t.Error("insert rebuilt the BK-tree instead of maintaining it online")
	}
	if len(r.BKTree().Range("bbb", 0)) != 1 {
		t.Error("online-maintained BK-tree misses new tuple")
	}
	if tr2 := r.Trie(); tr2 != tr1 {
		t.Error("insert rebuilt the trie instead of maintaining it online")
	}
	if len(r.Trie().Range("bbb", 0)) != 1 {
		t.Error("online-maintained trie misses new tuple")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	c.Add(New("b"))
	c.Add(New("a"))
	if _, ok := c.Get("a"); !ok {
		t.Error("Get(a) missed")
	}
	if _, ok := c.Get("zzz"); ok {
		t.Error("Get(zzz) hit")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	// Replacement.
	r := New("a")
	r.Insert("x", nil)
	c.Add(r)
	got, _ := c.Get("a")
	if got.Len() != 1 {
		t.Error("Add did not replace")
	}
}

func TestEntries(t *testing.T) {
	r := New("e")
	r.Insert("x", nil)
	r.Insert("y", nil)
	es := r.Entries()
	if len(es) != 2 || es[0].S != "x" || es[1].ID != 1 {
		t.Errorf("Entries = %v", es)
	}
}
