package relation

import (
	"fmt"
	"reflect"
	"testing"
)

// drainBlocks pulls every block of a shard cursor at the given block
// size and flattens the result.
func drainBlocks(c *Cursor, size int) []Tuple {
	var out []Tuple
	var blk Block
	for {
		n := c.NextBlock(&blk, size)
		if n == 0 {
			return out
		}
		for i := 0; i < n; i++ {
			out = append(out, Tuple{ID: blk.IDs[i], Seq: blk.Seqs[i], Attrs: blk.Attrs[i]})
		}
	}
}

// TestCursorNextBlockMatchesNext: block iteration must reproduce the
// row cursor's visible-tuple stream exactly, at every block size, both
// on the all-live fast path and with tombstones in the arena.
func TestCursorNextBlockMatchesNext(t *testing.T) {
	r := New("t")
	for i := 0; i < 100; i++ {
		r.Insert(fmt.Sprintf("seq%03d", i), map[string]string{"tag": fmt.Sprint(i % 3)})
	}
	check := func(label string) {
		t.Helper()
		want := r.Tuples()
		for _, size := range []int{1, 3, 7, 64, 1000} {
			got := drainBlocks(r.Snapshot().Shard(0, 1), size)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: block size %d diverges from Tuples (%d vs %d rows)", label, size, len(got), len(want))
			}
		}
		// Shard concatenation must reproduce the serial order too.
		snap := r.Snapshot()
		var cat []Tuple
		for i := 0; i < 4; i++ {
			cat = append(cat, drainBlocks(snap.Shard(i, 4), 8)...)
		}
		if !reflect.DeepEqual(cat, want) {
			t.Fatalf("%s: concatenated shard blocks diverge from Tuples", label)
		}
	}
	check("all-live")

	// Tombstone a third of the rows: the per-row visibility path.
	for i := 0; i < 100; i += 3 {
		r.Delete(i)
	}
	if r.Tombstones() == 0 {
		t.Skip("compaction removed every tombstone; per-row path not reachable")
	}
	check("with tombstones")
}

// TestCursorNextBlockSnapshotIsolation: a block cursor over an old
// snapshot must not see rows inserted or deleted after the snapshot,
// even while blocks are being pulled.
func TestCursorNextBlockSnapshotIsolation(t *testing.T) {
	r := New("t")
	for i := 0; i < 10; i++ {
		r.Insert(fmt.Sprintf("s%d", i), nil)
	}
	snap := r.Snapshot()
	cur := snap.Shard(0, 1)
	var blk Block
	if n := cur.NextBlock(&blk, 4); n != 4 {
		t.Fatalf("first block = %d rows", n)
	}
	r.Insert("late", nil)
	r.Delete(7)
	rest := drainBlocks(cur, 4)
	if len(rest) != 6 {
		t.Fatalf("remaining rows = %d, want 6 (snapshot isolation broken)", len(rest))
	}
	for _, tup := range rest {
		if tup.Seq == "late" {
			t.Fatal("block cursor saw a post-snapshot insert")
		}
	}
	found := false
	for _, tup := range rest {
		if tup.ID == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("block cursor lost a row deleted after the snapshot")
	}
}
