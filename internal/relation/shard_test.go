package relation

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardOfBounds: the partitioner stays in range and is
// deterministic.
func TestShardOfBounds(t *testing.T) {
	seqs := []string{"", "a", "abc", "zzzz", "colour", "\x00\xff"}
	for _, s := range seqs {
		for _, n := range []int{1, 2, 4, 7, 16} {
			got := ShardOf(s, n)
			if got < 0 || got >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", s, n, got)
			}
			if again := ShardOf(s, n); again != got {
				t.Fatalf("ShardOf(%q, %d) not deterministic: %d then %d", s, n, got, again)
			}
		}
		if ShardOf(s, 1) != 0 {
			t.Fatalf("ShardOf(%q, 1) != 0", s)
		}
	}
}

// TestShardOfSpread: on a few thousand distinct sequences every shard
// of a 8-way split receives a meaningful fraction (hash quality floor).
func TestShardOfSpread(t *testing.T) {
	const n = 8
	counts := make([]int, n)
	for i := 0; i < 4000; i++ {
		counts[ShardOf(fmt.Sprintf("seq-%d", i), n)]++
	}
	for sh, c := range counts {
		if c < 4000/n/2 {
			t.Fatalf("shard %d got %d of 4000 rows; partitioner badly skewed: %v", sh, c, counts)
		}
	}
}

// TestShardedIDParity: a sharded relation assigns exactly the ids its
// unsharded twin does across interleaved inserts, deletes and updates,
// and materialises identical tuples in identical order.
func TestShardedIDParity(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		plain := New("w")
		sharded := NewSharded("w", shards)
		rng := rand.New(rand.NewSource(int64(shards)))
		var live []int
		for step := 0; step < 500; step++ {
			switch op := rng.Intn(10); {
			case op < 6 || len(live) == 0:
				seq := randSeq(rng)
				a := plain.Insert(seq, map[string]string{"n": fmt.Sprint(step)})
				b := sharded.Insert(seq, map[string]string{"n": fmt.Sprint(step)})
				if a != b {
					t.Fatalf("shards=%d step %d: insert ids diverge: %d vs %d", shards, step, a, b)
				}
				live = append(live, a)
			case op < 8:
				id := live[rng.Intn(len(live))]
				a := plain.Delete(id)
				b := sharded.Delete(id)
				if a != b {
					t.Fatalf("shards=%d step %d: delete(%d) diverges: %v vs %v", shards, step, id, a, b)
				}
				live = removeID(live, id)
			default:
				id := live[rng.Intn(len(live))]
				seq := randSeq(rng)
				a, aok := plain.Update(id, seq, nil)
				b, bok := sharded.Update(id, seq, nil)
				if a != b || aok != bok {
					t.Fatalf("shards=%d step %d: update(%d) diverges: (%d,%v) vs (%d,%v)",
						shards, step, id, a, aok, b, bok)
				}
				live = removeID(live, id)
				if aok {
					live = append(live, a)
				}
			}
			if plain.Len() != sharded.Len() {
				t.Fatalf("shards=%d step %d: Len diverges: %d vs %d", shards, step, plain.Len(), sharded.Len())
			}
		}
		if !reflect.DeepEqual(plain.Tuples(), sharded.Tuples()) {
			t.Fatalf("shards=%d: final tuples diverge", shards)
		}
		st, sst := plain.Stats(), sharded.Stats()
		if st.Count != sst.Count || st.Alphabet != sst.Alphabet || st.AvgSeqLen != sst.AvgSeqLen {
			t.Fatalf("shards=%d: stats diverge: %+v vs %+v", shards, st, sst)
		}
	}
}

func removeID(ids []int, id int) []int {
	out := ids[:0]
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

func randSeq(rng *rand.Rand) string {
	b := make([]byte, 3+rng.Intn(6))
	for i := range b {
		b[i] = byte('a' + rng.Intn(10))
	}
	return string(b)
}

// TestShardViewAtomicity: readers loading a ShardView never observe a
// cross-shard batch half-applied: every batch of batchSize rows sharing
// a marker attribute appears in full or not at all.
func TestShardViewAtomicity(t *testing.T) {
	const (
		shards    = 4
		batches   = 200
		batchSize = 8 // spread across shards with near certainty
	)
	sh := NewSharded("w", shards)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < batches; b++ {
			rows := make([]InsertRow, batchSize)
			for i := range rows {
				rows[i] = InsertRow{Seq: fmt.Sprintf("b%dr%d", b, i), Attrs: map[string]string{"batch": fmt.Sprint(b)}}
			}
			sh.InsertBatch(rows)
		}
		stop.Store(true)
	}()
	readers := 4
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				v := sh.View()
				counts := map[string]int{}
				for _, tup := range v.Tuples() {
					counts[tup.Attrs["batch"]]++
				}
				for batch, n := range counts {
					if n != batchSize {
						errs <- fmt.Errorf("batch %s visible with %d of %d rows", batch, n, batchSize)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if sh.Len() != batches*batchSize {
		t.Fatalf("final Len = %d, want %d", sh.Len(), batches*batchSize)
	}
}

// TestShardedCrossShardUpdate: updating a row whose new sequence hashes
// to a different shard moves it, preserves the new id, and leaves no
// duplicate behind.
func TestShardedCrossShardUpdate(t *testing.T) {
	sh := NewSharded("w", 4)
	id := sh.Insert("alpha", map[string]string{"k": "v"})
	// Find a replacement sequence living on a different shard.
	repl := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("beta%d", i)
		if ShardOf(cand, 4) != ShardOf("alpha", 4) {
			repl = cand
			break
		}
	}
	if repl == "" {
		t.Fatal("no cross-shard replacement found")
	}
	newID, ok := sh.Update(id, repl, map[string]string{"k": "v2"})
	if !ok || newID == id {
		t.Fatalf("Update = (%d, %v)", newID, ok)
	}
	if _, ok := sh.Tuple(id); ok {
		t.Fatal("old row still visible after cross-shard update")
	}
	tup, ok := sh.Tuple(newID)
	if !ok || tup.Seq != repl || tup.Attrs["k"] != "v2" {
		t.Fatalf("new row = %+v, %v", tup, ok)
	}
	if sh.Len() != 1 {
		t.Fatalf("Len = %d after update, want 1", sh.Len())
	}
}

// TestShardedReserveAndInsertAt: reserved ids install rows at the
// reserved positions, and id-parity with the allocator is kept.
func TestShardedReserveAndInsertAt(t *testing.T) {
	sh := NewSharded("w", 3)
	sh.Insert("aaa", nil)
	ids := sh.ReserveIDs(2)
	if ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("ReserveIDs = %v, want [1 2]", ids)
	}
	if !sh.InsertAt(ids[1], "ccc", nil) {
		t.Fatal("InsertAt(2) refused")
	}
	if !sh.InsertAt(ids[0], "bbb", nil) {
		t.Fatal("InsertAt(1) refused")
	}
	if sh.InsertAt(ids[0], "dup", nil) {
		t.Fatal("InsertAt accepted a duplicate id")
	}
	if next := sh.Insert("ddd", nil); next != 3 {
		t.Fatalf("allocator continued at %d, want 3", next)
	}
	got := sh.Tuples()
	want := []string{"aaa", "bbb", "ccc", "ddd"}
	for i, tup := range got {
		if tup.ID != i || tup.Seq != want[i] {
			t.Fatalf("tuple %d = %+v, want id=%d seq=%q", i, tup, i, want[i])
		}
	}
}

// TestShardedUpdateAtCollision: an UpdateAt whose replacement id is
// already taken — on any shard — must refuse without touching the old
// row (a half-applied cross-shard update would silently lose the row).
func TestShardedUpdateAtCollision(t *testing.T) {
	sh := NewSharded("w", 4)
	a := sh.Insert("alpha", nil)
	b := sh.Insert("bravo", nil)
	// Replacement sequence guaranteed to hash to a different shard than
	// alpha's, forcing the delete+insert path.
	repl := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("x%d", i)
		if ShardOf(cand, 4) != ShardOf("alpha", 4) {
			repl = cand
			break
		}
	}
	if sh.UpdateAt(a, b, repl, nil) {
		t.Fatal("UpdateAt accepted a taken replacement id")
	}
	if got, ok := sh.Tuple(a); !ok || got.Seq != "alpha" {
		t.Fatalf("old row damaged by refused update: (%+v, %v)", got, ok)
	}
	if sh.Len() != 2 {
		t.Fatalf("Len = %d after refused update, want 2", sh.Len())
	}
}

// TestInsertBatchAtDuplicates: explicit-id batch inserts skip ids that
// are already taken (in the arena or earlier in the batch) and report
// only the installed ids — on both layouts.
func TestInsertBatchAtDuplicates(t *testing.T) {
	plain := New("w")
	plain.Insert("taken", nil) // id 0
	got := plain.InsertBatchAt([]int{0, 5, 5, 7}, []InsertRow{
		{Seq: "a"}, {Seq: "b"}, {Seq: "c"}, {Seq: "d"},
	})
	if !reflect.DeepEqual(got, []int{5, 7}) {
		t.Fatalf("plain InsertBatchAt installed %v, want [5 7]", got)
	}
	if plain.Len() != 3 {
		t.Fatalf("plain Len = %d, want 3", plain.Len())
	}

	sh := NewSharded("w", 3)
	sh.Insert("taken", nil) // id 0
	got = sh.InsertBatchAt([]int{0, 5, 5, 7}, []InsertRow{
		{Seq: "a"}, {Seq: "b"}, {Seq: "c"}, {Seq: "d"},
	})
	if !reflect.DeepEqual(got, []int{5, 7}) {
		t.Fatalf("sharded InsertBatchAt installed %v, want [5 7]", got)
	}
	if sh.Len() != 3 {
		t.Fatalf("sharded Len = %d, want 3", sh.Len())
	}
	if next := sh.Insert("next", nil); next != 8 {
		t.Fatalf("allocator continued at %d, want 8", next)
	}
}

// TestShardedCompaction: forcing compaction drops tombstones across all
// shards without disturbing the visible contents.
func TestShardedCompaction(t *testing.T) {
	sh := NewSharded("w", 4)
	for i := 0; i < 100; i++ {
		sh.Insert(fmt.Sprintf("row%d", i), nil)
	}
	for i := 0; i < 100; i += 2 {
		if !sh.Delete(i) {
			t.Fatalf("delete(%d) failed", i)
		}
	}
	before := sh.Tuples()
	sh.Compact()
	if sh.Tombstones() != 0 {
		t.Fatalf("tombstones after Compact = %d", sh.Tombstones())
	}
	if !reflect.DeepEqual(before, sh.Tuples()) {
		t.Fatal("compaction changed visible tuples")
	}
}

// TestShardSignature: the catalog signature reflects topology and
// changes when a table is re-registered with a different shard count.
func TestShardSignature(t *testing.T) {
	c := NewCatalog()
	c.Add(New("plain"))
	c.Add(NewSharded("big", 4))
	if got, want := c.ShardSignature(), "big=4;plain=1"; got != want {
		t.Fatalf("ShardSignature = %q, want %q", got, want)
	}
	c.Add(NewSharded("big", 7))
	if got, want := c.ShardSignature(), "big=7;plain=1"; got != want {
		t.Fatalf("ShardSignature after reshard = %q, want %q", got, want)
	}
}

// TestShardStats: per-shard counters add up to the relation totals.
func TestShardStats(t *testing.T) {
	sh := NewSharded("w", 4)
	for i := 0; i < 64; i++ {
		sh.Insert(fmt.Sprintf("val%d", i), nil)
	}
	sh.Delete(0)
	rows, dead := 0, 0
	for _, st := range sh.ShardStats() {
		rows += st.Rows
		dead += st.Tombstones
	}
	if rows != 63 || dead != 1 {
		t.Fatalf("ShardStats sums = (%d rows, %d tombstones), want (63, 1)", rows, dead)
	}
}
