package relation

import "testing"

// FuzzShardRoute fuzzes the hash partitioner plus the sharded
// relation's routing invariants: ShardOf stays in range and
// deterministic for arbitrary byte sequences and shard counts, a
// sharded insert lands on exactly the shard ShardOf names, and the
// row remains reachable by id afterwards (the -shards DML paths —
// INSERT/DELETE/UPDATE routed by hash — stand on these invariants).
func FuzzShardRoute(f *testing.F) {
	// Seed corpus: the sequence shapes the -shards DML paths see —
	// datagen words, simload ingest rows, attr-bearing updates, empty
	// and non-ASCII sequences — across the tested shard counts.
	for _, seed := range []struct {
		seq string
		n   int
	}{
		{"", 1}, {"color", 2}, {"colour", 4}, {"wabcj", 7},
		{"abcdefgh", 4}, {"jihgfedc", 7}, {"b0r0", 2},
		{"seq with spaces", 4}, {"\x00\xff\xfe", 7}, {"über", 4},
		{"tmp", 1}, {"fresh", 16},
	} {
		f.Add(seed.seq, seed.n)
	}
	f.Fuzz(func(t *testing.T, seq string, n int) {
		// Normalise the fuzzed shard count into the supported range the
		// way NewSharded does (clamp), capped so a fuzzed huge n cannot
		// allocate unbounded shards.
		if n < 1 {
			n = 1
		}
		if n > 64 {
			n = n%64 + 1
		}
		sh := ShardOf(seq, n)
		if sh < 0 || sh >= n {
			t.Fatalf("ShardOf(%q, %d) = %d out of range", seq, n, sh)
		}
		if again := ShardOf(seq, n); again != sh {
			t.Fatalf("ShardOf(%q, %d) unstable: %d then %d", seq, n, sh, again)
		}
		if n == 1 && sh != 0 {
			t.Fatalf("ShardOf(%q, 1) = %d, want 0", seq, sh)
		}

		rel := NewSharded("f", n)
		id := rel.Insert(seq, nil)
		stats := rel.ShardStats()
		for i, st := range stats {
			want := 0
			if i == sh {
				want = 1
			}
			if st.Rows != want {
				t.Fatalf("row %q landed on shard %d (rows=%v), ShardOf says %d", seq, i, stats, sh)
			}
		}
		if got, ok := rel.Tuple(id); !ok || got.Seq != seq {
			t.Fatalf("inserted row unreachable by id: (%+v, %v)", got, ok)
		}
		if rel.ShardOfID(id) != sh {
			t.Fatalf("ShardOfID(%d) = %d, want %d", id, rel.ShardOfID(id), sh)
		}
		// Updating to the same sequence keeps the row on its shard; the
		// old id must vanish and the new one resolve.
		nid, ok := rel.Update(id, seq+"x", nil)
		if !ok {
			t.Fatalf("update of fresh row %d refused", id)
		}
		if _, stillThere := rel.Tuple(id); stillThere {
			t.Fatalf("old id %d visible after update", id)
		}
		if rel.ShardOfID(nid) != ShardOf(seq+"x", n) {
			t.Fatalf("updated row on shard %d, want %d", rel.ShardOfID(nid), ShardOf(seq+"x", n))
		}
		if !rel.Delete(nid) || rel.Len() != 0 {
			t.Fatalf("delete(%d) failed or left rows (len=%d)", nid, rel.Len())
		}
	})
}
