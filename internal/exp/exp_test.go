package exp

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// The experiment suite runs in quick mode under test: every runner must
// complete, produce rows, and satisfy its structural claims.

func runQuick(t *testing.T, r Runner) *Table {
	t.Helper()
	old := Quick
	Quick = true
	defer func() { Quick = old }()
	tab, err := r()
	if err != nil {
		t.Fatalf("runner failed: %v", err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row width %d, header %d", len(row), len(tab.Header))
		}
	}
	return tab
}

func col(tab *Table, name string) int {
	for i, h := range tab.Header {
		if h == name {
			return i
		}
	}
	return -1
}

func TestF1(t *testing.T) {
	tab := runQuick(t, F1)
	c := col(tab, "all_equal")
	for _, row := range tab.Rows {
		if row[c] != "true" {
			t.Errorf("F1 equivalence violated: %v", row)
		}
	}
}

func TestF2MonotoneEffort(t *testing.T) {
	tab := runQuick(t, F2)
	c := col(tab, "expanded")
	prev := -1
	for _, row := range tab.Rows {
		n, err := strconv.Atoi(row[c])
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Errorf("expanded shrank: %v", tab.Rows)
		}
		prev = n
	}
	// Growth should be super-linear: last/first ratio large.
	first, _ := strconv.Atoi(tab.Rows[0][c])
	last, _ := strconv.Atoi(tab.Rows[len(tab.Rows)-1][c])
	if first > 0 && last < first*4 {
		t.Errorf("expected super-linear growth, got %d -> %d", first, last)
	}
}

func TestF3(t *testing.T) {
	runQuick(t, F3)
}

func TestF4Equal(t *testing.T) {
	tab := runQuick(t, F4)
	c := col(tab, "equal")
	for _, row := range tab.Rows {
		if row[c] != "true" {
			t.Errorf("F4 equivalence violated: %v", row)
		}
	}
}

func TestF5StrategiesAgree(t *testing.T) {
	// F5 itself errors out if any strategy disagrees with the scan.
	runQuick(t, F5)
}

func TestF6JoinsAgree(t *testing.T) {
	runQuick(t, F6)
}

func TestF7(t *testing.T) {
	tab := runQuick(t, F7)
	// Case-fold closures double with each extra 'a'.
	sizes := []string{"2", "4", "16", "256"}
	for i, want := range sizes {
		if tab.Rows[i][2] != want {
			t.Errorf("closure row %d = %v, want %s", i, tab.Rows[i], want)
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	if !strings.Contains(last[3], "rejected") {
		t.Errorf("guard row = %v", last)
	}
}

func TestC8(t *testing.T) {
	tab := runQuick(t, C8)
	// Node accesses must be identical with and without the identity
	// transformation.
	cn, cnt := col(tab, "nodes"), col(tab, "nodes+T")
	for _, row := range tab.Rows {
		if row[cn] != row[cnt] {
			t.Errorf("node accesses differ: %v", row)
		}
	}
}

func TestC9(t *testing.T) {
	tab := runQuick(t, C9)
	cn, cnt := col(tab, "nodes"), col(tab, "nodes+T")
	for _, row := range tab.Rows {
		if row[cn] != row[cnt] {
			t.Errorf("node accesses differ: %v", row)
		}
	}
}

// retryTiming evaluates a wall-clock claim up to three times before
// failing: single-shot timing comparisons are flaky on loaded CI boxes,
// while a claim that holds in any quiet run is established.
func retryTiming(t *testing.T, claim func() (bool, string)) {
	t.Helper()
	var detail string
	for attempt := 0; attempt < 3; attempt++ {
		var ok bool
		if ok, detail = claim(); ok {
			return
		}
	}
	t.Error(detail)
}

func TestC10IndexWins(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock speedup assertion is unreliable under the race detector")
	}
	// As in Fig. 10, the curves may touch at the shortest length where
	// query preparation dominates; the index must win at the largest.
	retryTiming(t, func() (bool, string) {
		tab := runQuick(t, C10)
		c := col(tab, "speedup")
		row := tab.Rows[len(tab.Rows)-1]
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[c], "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v >= 1, fmt.Sprintf("scan beat the index at the largest length: %v", row)
	})
}

func TestC11IndexWins(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock speedup assertion is unreliable under the race detector")
	}
	// At the smallest population both strategies are dominated by the
	// query-DFT cost (the companion's Fig. 11 curves also converge at
	// the left edge); the shape claim is that the index's margin grows
	// with the data size and it wins clearly at scale.
	retryTiming(t, func() (bool, string) {
		tab := runQuick(t, C11)
		c := col(tab, "speedup")
		ok := true
		var prev float64
		for i, row := range tab.Rows {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[c], "x"), 64)
			if err != nil {
				t.Fatal(err)
			}
			if i == len(tab.Rows)-1 && v < 1 {
				ok = false
			}
			if i > 0 && v < prev*0.5 {
				ok = false
			}
			prev = v
		}
		return ok, fmt.Sprintf("index did not win (or speedup collapsed) with size: %v", tab.Rows)
	})
}

func TestC12(t *testing.T) {
	tab := runQuick(t, C12)
	// Answers grow with eps (deterministic, no retry needed).
	c := col(tab, "answers")
	prev := -1
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[c])
		if n < prev {
			t.Errorf("answers shrank with growing eps: %v", tab.Rows)
		}
		prev = n
	}
	if raceEnabled {
		return // the index_wins column is a wall-clock comparison
	}
	// Small answer sets: index wins.
	retryTiming(t, func() (bool, string) {
		tab := runQuick(t, C12)
		return tab.Rows[0][col(tab, "index_wins")] == "true",
			fmt.Sprintf("index lost at the smallest threshold: %v", tab.Rows[0])
	})
}

func TestCT1(t *testing.T) {
	tab := runQuick(t, CT1)
	// d's answer set = 2 × b's; a == b.
	get := func(i int) int {
		n, _ := strconv.Atoi(tab.Rows[i][2])
		return n
	}
	a, b, d := get(0), get(1), get(3)
	if a != b {
		t.Errorf("a=%d b=%d answer sets differ", a, b)
	}
	if d != 2*b {
		t.Errorf("d=%d, want 2*b=%d", d, 2*b)
	}
}

func TestRegistryRunsAll(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	old := Quick
	Quick = true
	defer func() { Quick = old }()
	for _, e := range Registry() {
		if _, err := e.Run(); err != nil {
			t.Errorf("%s: %v", e.ID, err)
		}
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  "n",
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== X: demo ==") || !strings.Contains(out, "333") || !strings.Contains(out, "note: n") {
		t.Errorf("Fprint output:\n%s", out)
	}
}
