package exp

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/stock"
	"repro/internal/tsdb"
)

// buildTSDB loads count random-walk series of the given length and
// builds the k-index.
func buildTSDB(seed int64, count, length, k int) (*tsdb.DB, error) {
	db, err := tsdb.New(k)
	if err != nil {
		return nil, err
	}
	for _, s := range stock.Walks(seed, count, length) {
		if _, err := db.Add(s); err != nil {
			return nil, err
		}
	}
	if err := db.Build(); err != nil {
		return nil, err
	}
	return db, nil
}

// companionEps picks a range-query threshold on normal-form distances
// that yields small, non-trivial answer sets for random walks.
const companionEps = 0.5

// C8 — companion Figure 8: query time vs sequence length; index with
// identity transformation vs index without transformation.
func C8() (*Table, error) {
	t := &Table{
		ID:     "C8",
		Title:  "(Fig. 8) time per query vs sequence length: index +T vs index",
		Header: []string{"seq_len", "index_us", "index+T_us", "delta_us", "nodes", "nodes+T"},
	}
	lengths := []int{64, 128, 256, 512, 1024}
	if Quick {
		lengths = []int{64, 128, 256}
	}
	count := 1000
	if Quick {
		count = 600
	}
	for _, n := range lengths {
		db, err := buildTSDB(81, count, n, 2)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(82))
		queries := queryWalks(rng, 10, n)
		ident := tsdb.Identity(n)
		var nodesPlain, nodesT int
		for _, q := range queries {
			_, st, err := db.RangeIndex(q, nil, companionEps)
			if err != nil {
				return nil, err
			}
			nodesPlain += st.NodeAccesses
			_, st, err = db.RangeIndex(q, ident, companionEps)
			if err != nil {
				return nil, err
			}
			nodesT += st.NodeAccesses
		}
		dPlain := timeOp(func() {
			for _, q := range queries {
				if _, _, err := db.RangeIndex(q, nil, companionEps); err != nil {
					panic(err)
				}
			}
		}) / time.Duration(len(queries))
		dT := timeOp(func() {
			for _, q := range queries {
				if _, _, err := db.RangeIndex(q, ident, companionEps); err != nil {
					panic(err)
				}
			}
		}) / time.Duration(len(queries))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), us(dPlain), us(dT), us(dT - dPlain),
			fmt.Sprint(nodesPlain / len(queries)), fmt.Sprint(nodesT / len(queries)),
		})
	}
	t.Notes = "expected shape: the two curves differ by a small constant (transform CPU); node accesses identical"
	return t, nil
}

// C9 — companion Figure 9: query time vs number of sequences.
func C9() (*Table, error) {
	t := &Table{
		ID:     "C9",
		Title:  "(Fig. 9) time per query vs number of sequences: index +T vs index",
		Header: []string{"sequences", "index_us", "index+T_us", "delta_us", "nodes", "nodes+T"},
	}
	counts := []int{500, 2000, 6000, 12000}
	if Quick {
		counts = []int{500, 2000}
	}
	const n = 128
	for _, count := range counts {
		db, err := buildTSDB(83, count, n, 2)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(84))
		queries := queryWalks(rng, 10, n)
		ident := tsdb.Identity(n)
		var nodesPlain, nodesT int
		for _, q := range queries {
			_, st, err := db.RangeIndex(q, nil, companionEps)
			if err != nil {
				return nil, err
			}
			nodesPlain += st.NodeAccesses
			_, st, err = db.RangeIndex(q, ident, companionEps)
			if err != nil {
				return nil, err
			}
			nodesT += st.NodeAccesses
		}
		dPlain := timeOp(func() {
			for _, q := range queries {
				if _, _, err := db.RangeIndex(q, nil, companionEps); err != nil {
					panic(err)
				}
			}
		}) / time.Duration(len(queries))
		dT := timeOp(func() {
			for _, q := range queries {
				if _, _, err := db.RangeIndex(q, ident, companionEps); err != nil {
					panic(err)
				}
			}
		}) / time.Duration(len(queries))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(count), us(dPlain), us(dT), us(dT - dPlain),
			fmt.Sprint(nodesPlain / len(queries)), fmt.Sprint(nodesT / len(queries)),
		})
	}
	t.Notes = "expected shape: constant gap between the curves at every size"
	return t, nil
}

// C10 — companion Figure 10: index+transform vs sequential scan, vs
// sequence length.
func C10() (*Table, error) {
	t := &Table{
		ID:     "C10",
		Title:  "(Fig. 10) time per query vs sequence length: index+T vs sequential scan+T",
		Header: []string{"seq_len", "index+T_us", "scan+T_us", "speedup"},
	}
	lengths := []int{64, 128, 256, 512, 1024}
	if Quick {
		lengths = []int{64, 128, 256}
	}
	count := 1000
	if Quick {
		count = 600
	}
	for _, n := range lengths {
		db, err := buildTSDB(85, count, n, 2)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(86))
		queries := queryWalks(rng, 10, n)
		mavg, err := tsdb.MovingAvg(n, 20)
		if err != nil {
			return nil, err
		}
		dIdx := timeOp(func() {
			for _, q := range queries {
				if _, _, err := db.RangeIndex(q, mavg, companionEps); err != nil {
					panic(err)
				}
			}
		}) / time.Duration(len(queries))
		dScan := timeOp(func() {
			for _, q := range queries {
				if _, _, err := db.RangeScan(q, mavg, companionEps); err != nil {
					panic(err)
				}
			}
		}) / time.Duration(len(queries))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), us(dIdx), us(dScan),
			fmt.Sprintf("%.1fx", float64(dScan)/float64(dIdx)),
		})
	}
	t.Notes = "expected shape: index wins; margin grows with sequence length"
	return t, nil
}

// C11 — companion Figure 11: index+transform vs sequential scan, vs
// number of sequences.
func C11() (*Table, error) {
	t := &Table{
		ID:     "C11",
		Title:  "(Fig. 11) time per query vs number of sequences: index+T vs sequential scan+T",
		Header: []string{"sequences", "index+T_us", "scan+T_us", "speedup"},
	}
	counts := []int{500, 2000, 6000, 12000}
	if Quick {
		counts = []int{500, 2000}
	}
	const n = 128
	mavg, err := tsdb.MovingAvg(n, 20)
	if err != nil {
		return nil, err
	}
	for _, count := range counts {
		db, err := buildTSDB(87, count, n, 2)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(88))
		queries := queryWalks(rng, 10, n)
		dIdx := timeOp(func() {
			for _, q := range queries {
				if _, _, err := db.RangeIndex(q, mavg, companionEps); err != nil {
					panic(err)
				}
			}
		}) / time.Duration(len(queries))
		dScan := timeOp(func() {
			for _, q := range queries {
				if _, _, err := db.RangeScan(q, mavg, companionEps); err != nil {
					panic(err)
				}
			}
		}) / time.Duration(len(queries))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(count), us(dIdx), us(dScan),
			fmt.Sprintf("%.1fx", float64(dScan)/float64(dIdx)),
		})
	}
	t.Notes = "expected shape: index wins; margin grows with the number of sequences"
	return t, nil
}

// C12 — companion Figure 12: query time vs answer-set size (threshold
// sweep on the 1067×128 relation); index wins until the answer set
// reaches about a third of the relation.
func C12() (*Table, error) {
	count := 1067
	if Quick {
		count = 400
	}
	const n = 128
	db, err := buildTSDB(89, count, n, 2)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(90))
	// Query close to the data distribution so thresholds sweep the
	// whole relation.
	q := stock.Walk(rng, n)
	t := &Table{
		ID:     "C12",
		Title:  fmt.Sprintf("(Fig. 12) time per query vs answer-set size (%d series)", count),
		Header: []string{"eps", "answers", "frac_of_rel", "index_us", "scan_us", "index_wins"},
	}
	epss := []float64{1, 4, 8, 12, 14, 15.85}
	if Quick {
		epss = []float64{1, 8, 14}
	}
	for _, eps := range epss {
		matches, _, err := db.RangeIndex(q, nil, eps)
		if err != nil {
			return nil, err
		}
		dIdx := timeOp(func() {
			if _, _, err := db.RangeIndex(q, nil, eps); err != nil {
				panic(err)
			}
		})
		dScan := timeOp(func() {
			if _, _, err := db.RangeScan(q, nil, eps); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(eps), fmt.Sprint(len(matches)),
			fmt.Sprintf("%.2f", float64(len(matches))/float64(count)),
			us(dIdx), us(dScan), fmt.Sprint(dIdx < dScan),
		})
	}
	t.Notes = "expected shape: index wins for small answer sets, scan catches up as the answer set approaches ~1/3 of the relation"
	return t, nil
}

// CT1 — companion Table 1: the spatial self-join with the four methods.
func CT1() (*Table, error) {
	count := 1067
	if Quick {
		count = 200
	}
	const n = 128
	db, err := buildTSDB(91, count, n, 2)
	if err != nil {
		return nil, err
	}
	mavg, err := tsdb.MovingAvg(n, 20)
	if err != nil {
		return nil, err
	}
	// Threshold tuned to give a small, non-empty answer set on the
	// smoothed normal forms (the companion found 12 pairs in 1067).
	const eps = 1.4
	t := &Table{
		ID:     "CT1",
		Title:  fmt.Sprintf("(Table 1) spatial self-join, %d series x len %d, Tmavg20, eps=%g", count, n, eps),
		Header: []string{"method", "time_ms", "answer_set"},
	}
	type row struct {
		m tsdb.JoinMethod
		t *tsdb.Transform
	}
	for _, r := range []row{
		{tsdb.JoinScanFull, mavg},
		{tsdb.JoinScanAbort, mavg},
		{tsdb.JoinIndex, nil},
		{tsdb.JoinIndexT, mavg},
	} {
		start := time.Now()
		pairs, _, err := db.SelfJoin(r.m, r.t, eps)
		if err != nil {
			return nil, err
		}
		dur := time.Since(start)
		t.Rows = append(t.Rows, []string{
			r.m.String(),
			fmt.Sprintf("%.1f", float64(dur.Microseconds())/1e3),
			fmt.Sprint(len(pairs)),
		})
	}
	t.Notes = "expected shape: a slowest, then b, index methods fastest; d's answer set is twice b's (ordered pairs), c differs (no transform)"
	return t, nil
}

// queryWalks draws query series from the same random-walk family as
// the data.
func queryWalks(rng *rand.Rand, count, length int) [][]float64 {
	out := make([][]float64, count)
	for i := range out {
		out[i] = stock.Walk(rng, length)
	}
	return out
}
