//go:build !race

package exp

// raceEnabled lets timing-sensitive tests skip their wall-clock
// assertions under the race detector, whose instrumentation slows the
// measured strategies by different factors.
const raceEnabled = false
