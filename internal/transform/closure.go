package transform

import (
	"fmt"
	"sort"

	"repro/internal/rewrite"
)

// ZeroClosure returns every string reachable from s at zero total cost
// under the rule set, including s itself, in sorted order. The closure
// is finite exactly when no zero-cost rule increases length (otherwise
// ErrUndecidable); limit caps the closure size defensively and yields
// ErrSearchLimit when exceeded.
//
// The closure realises the paper's decidable zero-cost regime: with
// non-length-increasing free rules, similarity at cost c reduces to
// similarity between (finite) zero-cost equivalence classes.
func ZeroClosure(rs *rewrite.RuleSet, s string, limit int) ([]string, error) {
	if rs.ZeroCostGrowth() {
		return nil, fmt.Errorf("%w (rule set %q)", ErrUndecidable, rs.Name())
	}
	if limit <= 0 {
		limit = DefaultMaxStates
	}
	var free []rewrite.Rule
	for _, r := range rs.Rules() {
		if r.Cost == 0 {
			free = append(free, r)
		}
	}
	seen := map[string]bool{s: true}
	frontier := []string{s}
	for len(frontier) > 0 {
		next := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, r := range free {
			for _, app := range r.Applications(next) {
				if seen[app.Result] {
					continue
				}
				if len(seen) >= limit {
					return nil, fmt.Errorf("%w (zero-closure limit %d)", ErrSearchLimit, limit)
				}
				seen[app.Result] = true
				frontier = append(frontier, app.Result)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, nil
}

// ZeroEquivalent reports whether x and y are mutually reachable at zero
// cost, i.e. they lie in the same zero-cost equivalence class in both
// directions. For symmetric rule sets one direction suffices.
func ZeroEquivalent(rs *rewrite.RuleSet, x, y string, limit int) (bool, error) {
	fwd, err := ZeroClosure(rs, x, limit)
	if err != nil {
		return false, err
	}
	if !containsSorted(fwd, y) {
		return false, nil
	}
	if rs.Symmetric() {
		return true, nil
	}
	back, err := ZeroClosure(rs, y, limit)
	if err != nil {
		return false, err
	}
	return containsSorted(back, x), nil
}

func containsSorted(xs []string, v string) bool {
	i := sort.SearchStrings(xs, v)
	return i < len(xs) && xs[i] == v
}
