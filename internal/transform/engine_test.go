package transform

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/rewrite"
)

func mustEngine(t *testing.T, rs *rewrite.RuleSet, opts ...Option) *Engine {
	t.Helper()
	e, err := NewEngine(rs, opts...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func TestDistanceIdentity(t *testing.T) {
	e := mustEngine(t, rewrite.UnitEdits("ab"))
	d, ok, err := e.Distance("abab", "abab", 0)
	if err != nil || !ok || d != 0 {
		t.Fatalf("Distance(x,x,0) = %g,%v,%v; want 0,true,nil", d, ok, err)
	}
}

func TestDistanceUnitEdits(t *testing.T) {
	e := mustEngine(t, rewrite.UnitEdits("abc"))
	for _, tc := range []struct {
		from, to string
		want     float64
	}{
		{"a", "b", 1},       // substitute
		{"ab", "b", 1},      // delete
		{"b", "ab", 1},      // insert
		{"abc", "cba", 2},   // two substitutions
		{"aaa", "bbb", 3},   // three substitutions
		{"", "abc", 3},      // three inserts
		{"abc", "", 3},      // three deletes
		{"abca", "acba", 2}, // swap simulated by 2 substitutions
	} {
		d, ok, err := e.Distance(tc.from, tc.to, 10)
		if err != nil {
			t.Fatalf("Distance(%q,%q): %v", tc.from, tc.to, err)
		}
		if !ok || d != tc.want {
			t.Errorf("Distance(%q,%q) = %g,%v; want %g,true", tc.from, tc.to, d, ok, tc.want)
		}
	}
}

func TestDistanceBudgetCutoff(t *testing.T) {
	e := mustEngine(t, rewrite.UnitEdits("ab"))
	// distance("aaa","bbb") = 3 > budget 2.
	_, ok, err := e.Distance("aaa", "bbb", 2)
	if err != nil {
		t.Fatalf("Distance: %v", err)
	}
	if ok {
		t.Error("distance 3 reported within budget 2")
	}
	if within, _ := e.Within("aaa", "bbb", 3); !within {
		t.Error("distance 3 not within budget 3")
	}
}

func TestDistanceNegativeBudget(t *testing.T) {
	e := mustEngine(t, rewrite.UnitEdits("ab"))
	_, ok, err := e.Distance("a", "a", -1)
	if err != nil || ok {
		t.Fatalf("negative budget: ok=%v err=%v, want false,nil", ok, err)
	}
}

func TestSwapRuleDistance(t *testing.T) {
	// Only adjacent transposition: "ab"->"ba" and back.
	rs := rewrite.MustRuleSet("swap", []rewrite.Rule{
		rewrite.Swap('a', 'b', 1), rewrite.Swap('b', 'a', 1),
	})
	e := mustEngine(t, rs)
	// "aabb" -> "abab" -> ... bubble sort distance = #inversions.
	d, ok, err := e.Distance("aabb", "bbaa", 10)
	if err != nil || !ok {
		t.Fatalf("Distance: ok=%v err=%v", ok, err)
	}
	if d != 4 {
		t.Errorf("swap distance = %g, want 4 (inversions)", d)
	}
	// Different multiset of symbols: unreachable at any budget.
	_, ok, err = e.Distance("aa", "ab", 100)
	if err != nil {
		t.Fatalf("Distance: %v", err)
	}
	if ok {
		t.Error("swap rules reached a different symbol multiset")
	}
}

func TestCheaperMultiSymbolRule(t *testing.T) {
	// A multi-symbol rule can undercut the edit path: abc -> z in one
	// 0.5-cost application vs 3 unit substitutions+deletes.
	rules := append([]rewrite.Rule{{LHS: "abc", RHS: "z", Cost: 0.5}},
		rewrite.UnitEdits("abcz").Rules()...)
	rs := rewrite.MustRuleSet("mix", rules)
	e := mustEngine(t, rs)
	d, ok, err := e.Distance("abc", "z", 5)
	if err != nil || !ok {
		t.Fatalf("Distance: ok=%v err=%v", ok, err)
	}
	if d != 0.5 {
		t.Errorf("distance = %g, want 0.5 via the macro rule", d)
	}
}

func TestZeroCostRules(t *testing.T) {
	// Free case folding a->A plus unit edits on {a,A,b}: distance
	// ignores case of 'a'.
	rules := append([]rewrite.Rule{
		{LHS: "a", RHS: "A", Cost: 0},
		{LHS: "A", RHS: "a", Cost: 0},
	}, rewrite.UnitEdits("aAb").Rules()...)
	rs := rewrite.MustRuleSet("fold", rules)
	e := mustEngine(t, rs)
	d, ok, err := e.Distance("aba", "AbA", 5)
	if err != nil || !ok {
		t.Fatalf("Distance: ok=%v err=%v", ok, err)
	}
	if d != 0 {
		t.Errorf("case-fold distance = %g, want 0", d)
	}
}

func TestUndecidableRejected(t *testing.T) {
	rs := rewrite.MustRuleSet("grow", []rewrite.Rule{{LHS: "a", RHS: "aa", Cost: 0}})
	if _, err := NewEngine(rs); !errors.Is(err, ErrUndecidable) {
		t.Fatalf("NewEngine err = %v, want ErrUndecidable", err)
	}
}

func TestSearchLimit(t *testing.T) {
	e := mustEngine(t, rewrite.UnitEdits("abcdefgh"), WithMaxStates(10))
	_, _, err := e.Distance("aaaaaaaa", "hhhhhhhh", 8)
	if !errors.Is(err, ErrSearchLimit) {
		t.Fatalf("err = %v, want ErrSearchLimit", err)
	}
}

func TestPath(t *testing.T) {
	e := mustEngine(t, rewrite.UnitEdits("abc"))
	steps, dist, ok, err := e.Path("abc", "cba", 10)
	if err != nil || !ok {
		t.Fatalf("Path: ok=%v err=%v", ok, err)
	}
	if dist != 2 {
		t.Errorf("Path dist = %g, want 2", dist)
	}
	if len(steps) != 2 {
		t.Fatalf("Path steps = %d, want 2", len(steps))
	}
	// Replay the steps to verify the witness.
	cur := "abc"
	total := 0.0
	for _, st := range steps {
		if st.Before != cur {
			t.Fatalf("step Before = %q, cursor %q", st.Before, cur)
		}
		cur = st.App.Result
		total += st.App.Rule.Cost
	}
	if cur != "cba" || total != dist {
		t.Errorf("replay ended at %q cost %g; want %q cost %g", cur, total, "cba", dist)
	}
}

func TestPathNotFound(t *testing.T) {
	e := mustEngine(t, rewrite.UnitEdits("ab"))
	steps, _, ok, err := e.Path("aaaa", "bbbb", 2)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if ok || steps != nil {
		t.Error("Path found a witness beyond the budget")
	}
}

func TestHeuristicAgreesWithDijkstra(t *testing.T) {
	// A* with the admissible heuristic must return exactly the same
	// distances as plain Dijkstra.
	rules := append([]rewrite.Rule{rewrite.Swap('a', 'b', 0.5), rewrite.Swap('b', 'a', 0.5)},
		rewrite.UnitEdits("ab").Rules()...)
	rs := rewrite.MustRuleSet("mixed", rules)
	astar := mustEngine(t, rs)
	dijkstra := mustEngine(t, rs, WithoutHeuristic())
	rng := rand.New(rand.NewSource(42))
	alpha := []byte("ab")
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(2)]
		}
		return string(b)
	}
	for trial := 0; trial < 60; trial++ {
		x, y := randStr(rng.Intn(6)), randStr(rng.Intn(6))
		d1, ok1, err1 := astar.Distance(x, y, 4)
		d2, ok2, err2 := dijkstra.Distance(x, y, 4)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v %v", err1, err2)
		}
		if ok1 != ok2 || (ok1 && d1 != d2) {
			t.Fatalf("A* disagrees with Dijkstra on (%q,%q): %g,%v vs %g,%v", x, y, d1, ok1, d2, ok2)
		}
	}
}

func TestHeuristicPrunesMore(t *testing.T) {
	rs := rewrite.UnitEdits("ab")
	astar := mustEngine(t, rs)
	dijkstra := mustEngine(t, rs, WithoutHeuristic())
	_, _, s1, err := astar.DistanceStats("aaaa", "aaabbb", 4)
	if err != nil {
		t.Fatal(err)
	}
	_, _, s2, err := dijkstra.DistanceStats("aaaa", "aaabbb", 4)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Expanded > s2.Expanded {
		t.Errorf("A* expanded %d > Dijkstra %d", s1.Expanded, s2.Expanded)
	}
}

func TestUnreachableLengthHeuristic(t *testing.T) {
	// Substitution-only rules cannot change length; A* should prove
	// unreachability instantly for different lengths.
	rs := rewrite.MustRuleSet("sub", []rewrite.Rule{rewrite.Subst('a', 'b', 1), rewrite.Subst('b', 'a', 1)})
	e := mustEngine(t, rs)
	_, ok, st, err := e.DistanceStats("aaa", "aa", 100)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("length-changing goal reported reachable")
	}
	if st.Expanded > 0 {
		t.Errorf("expanded %d states for a length-impossible goal, want 0", st.Expanded)
	}
}

func TestStatsGrowWithBudget(t *testing.T) {
	e := mustEngine(t, rewrite.UnitEdits("ab"), WithoutHeuristic())
	var prev int
	for _, budget := range []float64{1, 2, 3} {
		_, _, st, err := e.DistanceStats("aaaaa", "zzzzz", budget)
		if err != nil {
			t.Fatal(err)
		}
		if st.Expanded < prev {
			t.Errorf("expanded shrank: budget %g -> %d (prev %d)", budget, st.Expanded, prev)
		}
		prev = st.Expanded
	}
}

func TestZeroClosure(t *testing.T) {
	rs := rewrite.MustRuleSet("fold", []rewrite.Rule{
		{LHS: "a", RHS: "A", Cost: 0},
		{LHS: "A", RHS: "a", Cost: 0},
		rewrite.Subst('a', 'b', 1),
	})
	got, err := ZeroClosure(rs, "aa", 0)
	if err != nil {
		t.Fatalf("ZeroClosure: %v", err)
	}
	want := []string{"AA", "Aa", "aA", "aa"}
	if len(got) != len(want) {
		t.Fatalf("ZeroClosure = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ZeroClosure = %v, want %v", got, want)
		}
	}
}

func TestZeroClosureUndecidable(t *testing.T) {
	rs := rewrite.MustRuleSet("grow", []rewrite.Rule{{LHS: "a", RHS: "aa", Cost: 0}})
	if _, err := ZeroClosure(rs, "a", 0); !errors.Is(err, ErrUndecidable) {
		t.Fatalf("err = %v, want ErrUndecidable", err)
	}
}

func TestZeroClosureLimit(t *testing.T) {
	// Free substitutions over a 4-letter alphabet: closure of a length-8
	// string has 4^8 = 65536 members; cap below that.
	var rules []rewrite.Rule
	alpha := "abcd"
	for i := 0; i < len(alpha); i++ {
		for j := 0; j < len(alpha); j++ {
			if i != j {
				rules = append(rules, rewrite.Subst(alpha[i], alpha[j], 0))
			}
		}
	}
	rs := rewrite.MustRuleSet("free-sub", rules)
	if _, err := ZeroClosure(rs, "aaaaaaaa", 1000); !errors.Is(err, ErrSearchLimit) {
		t.Fatalf("err = %v, want ErrSearchLimit", err)
	}
	got, err := ZeroClosure(rs, "aa", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Errorf("closure size = %d, want 16", len(got))
	}
}

func TestZeroEquivalent(t *testing.T) {
	rs := rewrite.MustRuleSet("fold", []rewrite.Rule{
		{LHS: "a", RHS: "A", Cost: 0},
		{LHS: "A", RHS: "a", Cost: 0},
	})
	eq, err := ZeroEquivalent(rs, "aA", "Aa", 0)
	if err != nil || !eq {
		t.Fatalf("ZeroEquivalent = %v, %v; want true", eq, err)
	}
	eq, err = ZeroEquivalent(rs, "aA", "AaA", 0)
	if err != nil || eq {
		t.Fatalf("different lengths equivalent: %v, %v", eq, err)
	}
}

func TestZeroEquivalentAsymmetric(t *testing.T) {
	// a->b free but not b->a: "a"~"b" one way only.
	rs := rewrite.MustRuleSet("oneway", []rewrite.Rule{{LHS: "a", RHS: "b", Cost: 0}})
	eq, err := ZeroEquivalent(rs, "a", "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("one-way zero reachability reported as equivalence")
	}
}

func TestDirectionality(t *testing.T) {
	// Deletion only: "ab" reduces to "a" but not vice versa.
	rs := rewrite.MustRuleSet("del", []rewrite.Rule{rewrite.Delete('b', 1)})
	e := mustEngine(t, rs)
	if ok, _ := e.Within("ab", "a", 1); !ok {
		t.Error("ab -> a not within 1")
	}
	if ok, _ := e.Within("a", "ab", 5); ok {
		t.Error("a -> ab reported reachable with deletion-only rules")
	}
	// The inverse rule set reverses reachability.
	inv := mustEngine(t, rs.Inverse())
	if ok, _ := inv.Within("a", "ab", 1); !ok {
		t.Error("inverse rules did not reverse reachability")
	}
}

func TestInfiniteMinPositiveCostAllZero(t *testing.T) {
	rs := rewrite.MustRuleSet("allzero", []rewrite.Rule{
		{LHS: "a", RHS: "b", Cost: 0}, {LHS: "b", RHS: "a", Cost: 0},
	})
	e := mustEngine(t, rs)
	d, ok, err := e.Distance("aaa", "bbb", 0)
	if err != nil || !ok || d != 0 {
		t.Fatalf("all-zero distance = %g,%v,%v; want 0,true,nil", d, ok, err)
	}
	if math.IsInf(rs.MinPositiveCost(), 1) != true {
		t.Error("MinPositiveCost not +Inf")
	}
}
