// Package transform implements the general transformation-distance
// engine of the PODS'95 similarity-query framework.
//
// The transformation distance from A to B under a rule set T is the
// minimum total cost of a sequence of rule applications rewriting A into
// B. The engine computes cost-bounded distances by uniform-cost (Dijkstra)
// search over the implicit rewrite graph, optionally sharpened to A* with
// an admissible length-based heuristic when the target is known.
//
// The paper's complexity analysis shapes the API:
//
//   - With a cost budget and strictly positive rule costs the search is
//     decidable (the budget bounds the number of steps) but can be
//     exponential; that regime is this package.
//   - Zero-cost rules that never increase length keep the zero-cost
//     closure of any string finite; the engine folds such rules into the
//     search and exposes the closure directly (ZeroClosure).
//   - Zero-cost rules that can increase length embed the word problem for
//     semi-Thue systems; NewEngine refuses them with ErrUndecidable.
//   - Edit-like rule sets admit polynomial dynamic programming; callers
//     should prefer internal/editdp there (the query planner does).
package transform

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/rewrite"
)

// ErrUndecidable is returned when a rule set contains zero-cost rules
// that can increase length, making even cost-bounded similarity
// undecidable in general.
var ErrUndecidable = errors.New("transform: rule set has zero-cost length-increasing rules; bounded similarity is undecidable")

// ErrSearchLimit is returned when the search exceeds the configured
// state limit before resolving the query.
var ErrSearchLimit = errors.New("transform: search exceeded state limit")

// DefaultMaxStates bounds the number of distinct strings the search may
// settle before giving up with ErrSearchLimit.
const DefaultMaxStates = 1 << 20

// Engine computes cost-bounded transformation distances for one rule set.
// An Engine is safe for concurrent use; each query allocates its own
// search state.
type Engine struct {
	rules     *rewrite.RuleSet
	maxStates int
	useAStar  bool

	// minCostPerLen is the cheapest cost per unit of length change over
	// all length-changing rules (+Inf if no rule changes length). It
	// yields the admissible A* heuristic h(s) = |len(s)-len(goal)| * minCostPerLen.
	minCostPerLen float64
	// minRuleCost is the cheapest rule cost overall; if positive, any
	// state != goal is at least that far away.
	minRuleCost float64
}

// Option configures an Engine.
type Option func(*Engine)

// WithMaxStates overrides the default search state limit.
func WithMaxStates(n int) Option {
	return func(e *Engine) { e.maxStates = n }
}

// WithoutHeuristic disables the A* heuristic so the search is plain
// uniform-cost Dijkstra. Used by the ablation benchmarks.
func WithoutHeuristic() Option {
	return func(e *Engine) { e.useAStar = false }
}

// NewEngine validates the rule set against the decidability boundary and
// builds an engine.
func NewEngine(rs *rewrite.RuleSet, opts ...Option) (*Engine, error) {
	if rs.ZeroCostGrowth() {
		return nil, fmt.Errorf("%w (rule set %q)", ErrUndecidable, rs.Name())
	}
	e := &Engine{rules: rs, maxStates: DefaultMaxStates, useAStar: true}
	e.minCostPerLen = math.Inf(1)
	e.minRuleCost = math.Inf(1)
	for _, r := range rs.Rules() {
		if d := r.LengthDelta(); d != 0 {
			perLen := r.Cost / math.Abs(float64(d))
			if perLen < e.minCostPerLen {
				e.minCostPerLen = perLen
			}
		}
		if r.Cost < e.minRuleCost {
			e.minRuleCost = r.Cost
		}
	}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() *rewrite.RuleSet { return e.rules }

// Stats reports search effort for one query; the complexity experiments
// (F2) plot these against the budget.
type Stats struct {
	Expanded  int // states settled (popped with final distance)
	Generated int // successor states generated (including duplicates)
	MaxQueue  int // peak size of the priority queue
}

// Distance returns the transformation distance from `from` to `to` if it
// is at most budget. ok is false when the distance exceeds the budget
// (dist is then meaningless). The search is exact: it never
// underestimates or overestimates the distance.
func (e *Engine) Distance(from, to string, budget float64) (dist float64, ok bool, err error) {
	dist, ok, _, err = e.search(from, to, budget, nil)
	return dist, ok, err
}

// DistanceStats is Distance but also reports search effort.
func (e *Engine) DistanceStats(from, to string, budget float64) (dist float64, ok bool, st Stats, err error) {
	return e.search(from, to, budget, nil)
}

// Within reports whether the transformation distance from `from` to `to`
// is at most budget.
func (e *Engine) Within(from, to string, budget float64) (bool, error) {
	_, ok, err := e.Distance(from, to, budget)
	return ok, err
}

// Step is one rewrite in a witnessing transformation sequence.
type Step struct {
	App    rewrite.Application
	Before string
}

// Path returns a cheapest witnessing sequence of rule applications from
// `from` to `to` within budget, or ok=false if none exists.
func (e *Engine) Path(from, to string, budget float64) (steps []Step, dist float64, ok bool, err error) {
	parents := make(map[string]Step)
	dist, ok, _, err = e.search(from, to, budget, parents)
	if err != nil || !ok {
		return nil, 0, ok, err
	}
	// Walk back from `to`.
	var rev []Step
	for cur := to; cur != from; {
		st, found := parents[cur]
		if !found {
			return nil, 0, false, fmt.Errorf("transform: broken parent chain at %q", cur)
		}
		rev = append(rev, st)
		cur = st.Before
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, dist, true, nil
}

// search runs budgeted Dijkstra/A* from `from` toward `to`. If parents
// is non-nil it records the search tree for Path.
func (e *Engine) search(from, to string, budget float64, parents map[string]Step) (float64, bool, Stats, error) {
	var st Stats
	if budget < 0 {
		return 0, false, st, nil
	}
	if from == to {
		return 0, true, st, nil
	}
	h := e.heuristic(to)
	if h0 := h(from); h0 > budget {
		return 0, false, st, nil
	}
	dists := map[string]float64{from: 0}
	done := make(map[string]bool)
	pq := &nodeHeap{{s: from, g: 0, f: h(from)}}
	for pq.Len() > 0 {
		if pq.Len() > st.MaxQueue {
			st.MaxQueue = pq.Len()
		}
		n := heap.Pop(pq).(node)
		if done[n.s] {
			continue
		}
		done[n.s] = true
		st.Expanded++
		if n.s == to {
			return n.g, true, st, nil
		}
		if st.Expanded > e.maxStates {
			return 0, false, st, fmt.Errorf("%w (limit %d, budget %g)", ErrSearchLimit, e.maxStates, budget)
		}
		for _, r := range e.rules.Rules() {
			for _, app := range r.Applications(n.s) {
				g := n.g + r.Cost
				if g > budget {
					continue
				}
				f := g + h(app.Result)
				if f > budget {
					continue
				}
				if prev, seen := dists[app.Result]; seen && prev <= g {
					continue
				}
				dists[app.Result] = g
				st.Generated++
				if parents != nil {
					parents[app.Result] = Step{App: app, Before: n.s}
				}
				heap.Push(pq, node{s: app.Result, g: g, f: f})
			}
		}
	}
	return 0, false, st, nil
}

// heuristic returns an admissible lower bound on the remaining cost from
// a state to the goal, or the zero function when A* is disabled.
func (e *Engine) heuristic(goal string) func(string) float64 {
	if !e.useAStar {
		return func(string) float64 { return 0 }
	}
	goalLen := len(goal)
	return func(s string) float64 {
		if s == goal {
			return 0
		}
		h := e.minRuleCost // at least one rule must fire
		if d := len(s) - goalLen; d != 0 {
			if math.IsInf(e.minCostPerLen, 1) {
				return math.Inf(1) // no rule changes length: unreachable
			}
			if lb := math.Abs(float64(d)) * e.minCostPerLen; lb > h {
				h = lb
			}
		}
		return h
	}
}

type node struct {
	s string
	g float64 // cost so far
	f float64 // g + heuristic
}

type nodeHeap []node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
