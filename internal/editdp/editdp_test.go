package editdp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rewrite"
	"repro/internal/transform"
)

func mustCalc(t *testing.T, rs *rewrite.RuleSet) *Calculator {
	t.Helper()
	c, err := New(rs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestDistanceUnit(t *testing.T) {
	c := mustCalc(t, rewrite.UnitEdits("abcdefgh"))
	for _, tc := range []struct {
		x, y string
		want float64
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "a", 1},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "acb", 2},
		{"kitten-ish", "sitting-sh", 0}, // symbols outside rules: see below
	} {
		if tc.x == "kitten-ish" {
			continue // handled in TestUnreachableSymbols
		}
		if got := c.Distance(tc.x, tc.y); got != tc.want {
			t.Errorf("Distance(%q,%q) = %g, want %g", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestKittenSitting(t *testing.T) {
	c := mustCalc(t, rewrite.UnitEdits("abcdefghijklmnopqrstuvwxyz"))
	if got := c.Distance("kitten", "sitting"); got != 3 {
		t.Errorf("Distance(kitten,sitting) = %g, want 3", got)
	}
	if got := Levenshtein("kitten", "sitting"); got != 3 {
		t.Errorf("Levenshtein(kitten,sitting) = %d, want 3", got)
	}
}

func TestUnreachableSymbols(t *testing.T) {
	// No rule mentions 'z': transforming to or from it is impossible.
	c := mustCalc(t, rewrite.UnitEdits("ab"))
	if got := c.Distance("z", "a"); !math.IsInf(got, 1) {
		t.Errorf("Distance(z,a) = %g, want +Inf", got)
	}
	if got := c.Distance("a", "z"); !math.IsInf(got, 1) {
		t.Errorf("Distance(a,z) = %g, want +Inf", got)
	}
	// Matching symbols cost nothing even outside the rules.
	if got := c.Distance("za", "zb"); got != 1 {
		t.Errorf("Distance(za,zb) = %g, want 1", got)
	}
}

func TestSubstitutionClosure(t *testing.T) {
	// a->c : 1, c->b : 1, a->b : 5. Closed sub(a,b) must be 2.
	rs := rewrite.MustRuleSet("chain", []rewrite.Rule{
		rewrite.Subst('a', 'c', 1),
		rewrite.Subst('c', 'b', 1),
		rewrite.Subst('a', 'b', 5),
	})
	c := mustCalc(t, rs)
	if got := c.SubCost('a', 'b'); got != 2 {
		t.Errorf("closed SubCost(a,b) = %g, want 2", got)
	}
	if got := c.Distance("a", "b"); got != 2 {
		t.Errorf("Distance(a,b) = %g, want 2 via chain", got)
	}
}

func TestInsertionClosure(t *testing.T) {
	// Only 'c' can be inserted (cost 1) but c->b costs 1: effective
	// insertion of b is 2.
	rs := rewrite.MustRuleSet("insclose", []rewrite.Rule{
		rewrite.Insert('c', 1),
		rewrite.Subst('c', 'b', 1),
	})
	c := mustCalc(t, rs)
	if got := c.InsCost('b'); got != 2 {
		t.Errorf("closed InsCost(b) = %g, want 2", got)
	}
	if got := c.Distance("", "b"); got != 2 {
		t.Errorf("Distance(\"\",\"b\") = %g, want 2", got)
	}
}

func TestDeletionClosure(t *testing.T) {
	// Only 'c' can be deleted; b->c costs 1: effective deletion of b is 2.
	rs := rewrite.MustRuleSet("delclose", []rewrite.Rule{
		rewrite.Delete('c', 1),
		rewrite.Subst('b', 'c', 1),
	})
	c := mustCalc(t, rs)
	if got := c.DelCost('b'); got != 2 {
		t.Errorf("closed DelCost(b) = %g, want 2", got)
	}
	if got := c.Distance("b", ""); got != 2 {
		t.Errorf("Distance(\"b\",\"\") = %g, want 2", got)
	}
}

func TestNewRejectsNonEditLike(t *testing.T) {
	rs := rewrite.MustRuleSet("swap", []rewrite.Rule{rewrite.Swap('a', 'b', 1)})
	if _, err := New(rs); err == nil {
		t.Fatal("New accepted a non-edit-like rule set")
	}
}

// TestAgreesWithGeneralEngine is the F1 equivalence claim: on edit-like
// rule sets the DP computes exactly the general transformation distance.
func TestAgreesWithGeneralEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Deliberately skewed, asymmetric, triangle-violating costs.
	rs := rewrite.MustRuleSet("weird", []rewrite.Rule{
		rewrite.Insert('a', 1.5), rewrite.Insert('b', 0.7),
		rewrite.Delete('a', 0.9), rewrite.Delete('b', 1.1),
		rewrite.Subst('a', 'b', 3), // worse than a->c->b would be if c existed
		rewrite.Subst('b', 'a', 0.4),
	})
	c := mustCalc(t, rs)
	eng, err := transform.NewEngine(rs)
	if err != nil {
		t.Fatal(err)
	}
	alpha := []byte("ab")
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(2)]
		}
		return string(b)
	}
	const budget = 4.0
	for trial := 0; trial < 80; trial++ {
		x, y := randStr(rng.Intn(5)), randStr(rng.Intn(5))
		want, okWant, err := eng.Distance(x, y, budget)
		if err != nil {
			t.Fatal(err)
		}
		got := c.Distance(x, y)
		if okWant {
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("DP(%q,%q) = %g, engine = %g", x, y, got, want)
			}
		} else if got <= budget {
			t.Fatalf("DP(%q,%q) = %g <= budget, engine found nothing", x, y, got)
		}
	}
}

func TestWithinMatchesDistance(t *testing.T) {
	c := mustCalc(t, rewrite.UnitEdits("abc"))
	rng := rand.New(rand.NewSource(5))
	alpha := []byte("abc")
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(3)]
		}
		return string(b)
	}
	for trial := 0; trial < 300; trial++ {
		x, y := randStr(rng.Intn(12)), randStr(rng.Intn(12))
		full := c.Distance(x, y)
		for _, k := range []float64{0, 1, 2, 3, 5, 20} {
			got, ok := c.Within(x, y, k)
			if wantOK := full <= k; ok != wantOK {
				t.Fatalf("Within(%q,%q,%g) ok=%v, full=%g", x, y, k, ok, full)
			} else if ok && got != full {
				t.Fatalf("Within(%q,%q,%g) = %g, full=%g", x, y, k, got, full)
			}
		}
	}
}

func TestWithinFreeInsertions(t *testing.T) {
	// Zero-cost insertions leave the band unbounded; Within must still
	// terminate and agree with Distance.
	rs := rewrite.MustRuleSet("freeins", []rewrite.Rule{
		rewrite.Insert('a', 0), rewrite.Delete('a', 1), rewrite.Subst('a', 'b', 1), rewrite.Insert('b', 0),
	})
	c := mustCalc(t, rs)
	d, ok := c.Within("", "aaab", 0.5)
	if !ok || d != 0 {
		t.Errorf("free insertion Within = %g,%v; want 0,true", d, ok)
	}
}

func TestLevenshteinBasics(t *testing.T) {
	for _, tc := range []struct {
		x, y string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"saturday", "sunday", 3},
	} {
		if got := Levenshtein(tc.x, tc.y); got != tc.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tc.x, tc.y, got, tc.want)
		}
		if got := Levenshtein(tc.y, tc.x); got != tc.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d (symmetry)", tc.y, tc.x, got, tc.want)
		}
	}
}

func TestLevenshteinMatchesDP(t *testing.T) {
	c := mustCalc(t, rewrite.UnitEdits("abcd"))
	rng := rand.New(rand.NewSource(21))
	alpha := []byte("abcd")
	f := func(n1, n2 uint8) bool {
		x := make([]byte, n1%16)
		y := make([]byte, n2%16)
		for i := range x {
			x[i] = alpha[rng.Intn(4)]
		}
		for i := range y {
			y[i] = alpha[rng.Intn(4)]
		}
		return float64(Levenshtein(string(x), string(y))) == c.Distance(string(x), string(y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alpha := []byte("abcd")
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(4)]
		}
		return string(b)
	}
	for trial := 0; trial < 500; trial++ {
		x, y := randStr(rng.Intn(20)), randStr(rng.Intn(20))
		full := Levenshtein(x, y)
		for k := 0; k <= 6; k++ {
			got, ok := LevenshteinWithin(x, y, k)
			if wantOK := full <= k; ok != wantOK {
				t.Fatalf("LevenshteinWithin(%q,%q,%d) ok=%v, full=%d", x, y, k, ok, full)
			} else if ok && got != full {
				t.Fatalf("LevenshteinWithin(%q,%q,%d) = %d, full=%d", x, y, k, got, full)
			}
		}
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	alpha := []byte("ab")
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(2)]
		}
		return string(b)
	}
	f := func(n1, n2, n3 uint8) bool {
		x, y, z := randStr(int(n1%12)), randStr(int(n2%12)), randStr(int(n3%12))
		return Levenshtein(x, z) <= Levenshtein(x, y)+Levenshtein(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAlignment(t *testing.T) {
	c := mustCalc(t, rewrite.UnitEdits("abcdefghijklmnopqrstuvwxyz"))
	ops, cost := c.Alignment("kitten", "sitting")
	if cost != 3 {
		t.Fatalf("Alignment cost = %g, want 3", cost)
	}
	// Replay: apply ops to "kitten" and check the sum of costs.
	total := 0.0
	matches, subs, dels, inss := 0, 0, 0, 0
	for _, op := range ops {
		total += op.Cost
		switch op.Kind {
		case OpMatch:
			matches++
		case OpSub:
			subs++
		case OpDel:
			dels++
		case OpIns:
			inss++
		}
	}
	if total != cost {
		t.Errorf("op costs sum to %g, want %g", total, cost)
	}
	if subs != 2 || inss != 1 || dels != 0 {
		t.Errorf("kitten->sitting ops: %d sub %d ins %d del, want 2/1/0", subs, inss, dels)
	}
	if matches != 4 {
		t.Errorf("matches = %d, want 4", matches)
	}
}

func TestAlignmentReconstructsTarget(t *testing.T) {
	c := mustCalc(t, rewrite.UnitEdits("abc"))
	rng := rand.New(rand.NewSource(61))
	alpha := []byte("abc")
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(3)]
		}
		return string(b)
	}
	for trial := 0; trial < 100; trial++ {
		x, y := randStr(rng.Intn(10)), randStr(rng.Intn(10))
		ops, cost := c.Alignment(x, y)
		if cost != c.Distance(x, y) {
			t.Fatalf("Alignment cost %g != Distance %g for (%q,%q)", cost, c.Distance(x, y), x, y)
		}
		// Rebuild y from the script.
		var out []byte
		for _, op := range ops {
			switch op.Kind {
			case OpMatch, OpSub:
				out = append(out, op.To)
			case OpIns:
				out = append(out, op.To)
			}
		}
		if string(out) != y {
			t.Fatalf("script rebuilds %q, want %q (x=%q ops=%v)", out, y, x, ops)
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpMatch.String() != "match" || OpSub.String() != "sub" || OpDel.String() != "del" || OpIns.String() != "ins" {
		t.Error("OpKind strings wrong")
	}
}
