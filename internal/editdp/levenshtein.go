package editdp

// Levenshtein returns the classical unit-cost edit distance between x
// and y: the transformation distance under rewrite.UnitEdits over any
// alphabet covering both strings. It is the fast integer path used by
// the metric indexes.
func Levenshtein(x, y string) int {
	// Strip common affixes; they never participate in an optimal script.
	for len(x) > 0 && len(y) > 0 && x[0] == y[0] {
		x, y = x[1:], y[1:]
	}
	for len(x) > 0 && len(y) > 0 && x[len(x)-1] == y[len(y)-1] {
		x, y = x[:len(x)-1], y[:len(y)-1]
	}
	if len(x) == 0 {
		return len(y)
	}
	if len(y) == 0 {
		return len(x)
	}
	if len(y) > len(x) {
		x, y = y, x
	}
	m := len(y)
	row := make([]int, m+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(x); i++ {
		prevDiag := row[0]
		row[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if x[i-1] == y[j-1] {
				cost = 0
			}
			best := prevDiag + cost
			if v := row[j] + 1; v < best {
				best = v
			}
			if v := row[j-1] + 1; v < best {
				best = v
			}
			prevDiag, row[j] = row[j], best
		}
	}
	return row[m]
}

// LevenshteinWithin returns the unit-cost edit distance between x and y
// if it is at most k, and ok=false otherwise. It runs the Ukkonen banded
// dynamic program in O(k·min(|x|,|y|)) time, which is what makes
// BK-tree and trie range searches cheap at small radii.
func LevenshteinWithin(x, y string, k int) (int, bool) {
	if k < 0 {
		return 0, false
	}
	// Length skew alone is a lower bound on the distance; reject before
	// any DP (or even affix-stripping) work. Affix stripping preserves
	// the length difference, so this subsumes the post-strip check.
	if d := len(x) - len(y); d > k || -d > k {
		return 0, false
	}
	for len(x) > 0 && len(y) > 0 && x[0] == y[0] {
		x, y = x[1:], y[1:]
	}
	for len(x) > 0 && len(y) > 0 && x[len(x)-1] == y[len(y)-1] {
		x, y = x[:len(x)-1], y[:len(y)-1]
	}
	if len(y) > len(x) {
		x, y = y, x
	}
	n, m := len(x), len(y)
	if m == 0 {
		return n, n <= k
	}
	const inf = int(^uint(0) >> 2)
	row := make([]int, m+1)
	for j := range row {
		if j <= k {
			row[j] = j
		} else {
			row[j] = inf
		}
	}
	for i := 1; i <= n; i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > m {
			hi = m
		}
		prevDiag := row[lo-1]
		if lo == 1 {
			if i <= k {
				row[0] = i
			} else {
				row[0] = inf
			}
		}
		rowMin := inf
		if lo > 1 {
			row[lo-1] = inf
		}
		for j := lo; j <= hi; j++ {
			cost := 1
			if x[i-1] == y[j-1] {
				cost = 0
			}
			best := prevDiag + cost
			if v := row[j] + 1; v < best {
				best = v
			}
			if v := row[j-1] + 1; v < best {
				best = v
			}
			prevDiag, row[j] = row[j], best
			if best < rowMin {
				rowMin = best
			}
		}
		for j := hi + 1; j <= m; j++ {
			row[j] = inf
		}
		if rowMin > k {
			return 0, false
		}
	}
	if row[m] <= k {
		return row[m], true
	}
	return 0, false
}
