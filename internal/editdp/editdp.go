// Package editdp implements the polynomial special case of the PODS'95
// transformation distance: when every rule is a single-symbol insertion,
// deletion or substitution, the minimum-cost rewrite sequence factorises
// per aligned position and weighted edit-distance dynamic programming
// computes the exact distance in O(|x|·|y|) time.
//
// One subtlety makes the DP agree with the general engine
// (internal/transform) on *arbitrary* edit-like rule sets: the rewrite
// system may chain operations at one position (a→c then c→b can be
// cheaper than a→b; insert c then c→b can be cheaper than inserting b).
// The Calculator therefore first closes the cost tables — all-pairs
// shortest substitution paths, then insertions and deletions relaxed
// through those paths — and runs the DP on the closed tables. With that
// closure the per-position factorisation is exact, which the property
// tests cross-check against the search engine.
package editdp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rewrite"
)

// Calculator computes weighted edit distances for one edit-like rule
// set. It is safe for concurrent use.
type Calculator struct {
	rules *rewrite.RuleSet
	ins   [256]float64
	del   [256]float64
	sub   map[[2]byte]float64 // closed substitution costs for mentioned symbols
	syms  []byte              // symbols mentioned by any rule, sorted
	// minIns/minDel are the cheapest closed insertion/deletion costs,
	// used by the banded Within and by admissible filters.
	minIns float64
	minDel float64
	// unit records that the closed tables coincide with the classical
	// unit edit distance over the mentioned symbols; covered is the
	// 256-bit membership bitmap of those symbols. Together they license
	// dispatching a conjunct to the bit-parallel Myers kernel.
	unit    bool
	covered [4]uint64
}

// New builds a Calculator from an edit-like rule set, closing the cost
// tables. It returns an error if the rule set is not edit-like.
func New(rs *rewrite.RuleSet) (*Calculator, error) {
	ec, err := rs.EditCosts()
	if err != nil {
		return nil, fmt.Errorf("editdp: %w", err)
	}

	// Collect the symbols mentioned by any rule.
	mentioned := map[byte]bool{}
	for _, r := range rs.Rules() {
		for i := 0; i < len(r.LHS); i++ {
			mentioned[r.LHS[i]] = true
		}
		for i := 0; i < len(r.RHS); i++ {
			mentioned[r.RHS[i]] = true
		}
	}
	syms := make([]byte, 0, len(mentioned))
	for c := range mentioned {
		syms = append(syms, c)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })

	c := &Calculator{rules: rs, sub: make(map[[2]byte]float64), syms: syms}

	// Closed substitution costs: Floyd–Warshall over mentioned symbols.
	dist := make(map[[2]byte]float64, len(syms)*len(syms))
	get := func(a, b byte) float64 {
		if a == b {
			return 0
		}
		if d, ok := dist[[2]byte{a, b}]; ok {
			return d
		}
		return math.Inf(1)
	}
	for _, a := range syms {
		for _, b := range syms {
			if a != b {
				if d := ec.Sub(a, b); !math.IsInf(d, 1) {
					dist[[2]byte{a, b}] = d
				}
			}
		}
	}
	for _, k := range syms {
		for _, i := range syms {
			ik := get(i, k)
			if math.IsInf(ik, 1) {
				continue
			}
			for _, j := range syms {
				if via := ik + get(k, j); via < get(i, j) {
					dist[[2]byte{i, j}] = via
				}
			}
		}
	}
	for k, v := range dist {
		c.sub[k] = v
	}

	// Closed insertions: ins(c) = min over d of ins(d) + sub*(d, c).
	// Closed deletions:  del(c) = min over d of sub*(c, d) + del(d).
	for i := 0; i < 256; i++ {
		c.ins[i] = ec.Ins(byte(i))
		c.del[i] = ec.Del(byte(i))
	}
	for _, target := range syms {
		for _, d := range syms {
			if v := ec.Ins(d) + get(d, target); v < c.ins[target] {
				c.ins[target] = v
			}
		}
	}
	for _, source := range syms {
		for _, d := range syms {
			if v := get(source, d) + ec.Del(d); v < c.del[source] {
				c.del[source] = v
			}
		}
	}

	c.minIns, c.minDel = math.Inf(1), math.Inf(1)
	for i := 0; i < 256; i++ {
		if c.ins[i] < c.minIns {
			c.minIns = c.ins[i]
		}
		if c.del[i] < c.minDel {
			c.minDel = c.del[i]
		}
	}

	// Detect the classical unit-distance special case on the CLOSED
	// tables: every mentioned symbol inserts and deletes for exactly 1
	// and every mentioned pair substitutes for exactly 1. Rule sets that
	// look unit-cost rule by rule can still fail this (e.g. insert/delete
	// only, where a↔b costs 2 via delete+insert), so the check is what
	// keeps the Myers dispatch bit-identical to the weighted DP.
	c.unit = len(syms) > 0
	for _, a := range syms {
		if c.ins[a] != 1 || c.del[a] != 1 {
			c.unit = false
			break
		}
		for _, b := range syms {
			if a != b && c.SubCost(a, b) != 1 {
				c.unit = false
				break
			}
		}
		if !c.unit {
			break
		}
	}
	for _, a := range syms {
		c.covered[a>>6] |= 1 << (a & 63)
	}
	return c, nil
}

// Unit reports whether the closed cost tables realise the classical
// unit edit distance over the mentioned symbols: distances between
// strings the alphabet Covers equal editdp.Levenshtein exactly, so the
// engine may serve them from the bit-parallel kernel.
func (c *Calculator) Unit() bool { return c.unit }

// Covers reports whether every byte of s is a mentioned symbol — the
// per-string guard for the unit-distance fast path (bytes outside the
// alphabet carry +Inf costs and must go through the weighted DP).
func (c *Calculator) Covers(s string) bool {
	for i := 0; i < len(s); i++ {
		if c.covered[s[i]>>6]&(1<<(s[i]&63)) == 0 {
			return false
		}
	}
	return true
}

// Rules returns the underlying rule set.
func (c *Calculator) Rules() *rewrite.RuleSet { return c.rules }

// MentionedSymbols returns the sorted symbols that occur in any rule.
// Only these can carry finite insertion, deletion or substitution costs;
// internal/patdist iterates over them instead of the whole byte range.
// Callers must not modify the returned slice.
func (c *Calculator) MentionedSymbols() []byte { return c.syms }

// MinInsCost returns the cheapest closed insertion cost over all
// symbols (+Inf if nothing can be inserted).
func (c *Calculator) MinInsCost() float64 { return c.minIns }

// MinDelCost returns the cheapest closed deletion cost over all symbols
// (+Inf if nothing can be deleted).
func (c *Calculator) MinDelCost() float64 { return c.minDel }

// InsCost returns the closed cost of inserting sym (+Inf if impossible).
func (c *Calculator) InsCost(sym byte) float64 { return c.ins[sym] }

// DelCost returns the closed cost of deleting sym (+Inf if impossible).
func (c *Calculator) DelCost(sym byte) float64 { return c.del[sym] }

// SubCost returns the closed cost of rewriting symbol a into b (0 when
// a == b, +Inf if impossible).
func (c *Calculator) SubCost(a, b byte) float64 {
	if a == b {
		return 0
	}
	if d, ok := c.sub[[2]byte{a, b}]; ok {
		return d
	}
	return math.Inf(1)
}

// Distance returns the exact transformation distance from x to y
// (rewriting x into y), or +Inf if y is unreachable from x under the
// rule set. Runs the full O(|x|·|y|) dynamic program with two rows.
func (c *Calculator) Distance(x, y string) float64 {
	n, m := len(x), len(y)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + c.ins[y[j-1]]
	}
	for i := 1; i <= n; i++ {
		cur[0] = prev[0] + c.del[x[i-1]]
		for j := 1; j <= m; j++ {
			best := prev[j-1] + c.SubCost(x[i-1], y[j-1])
			if v := prev[j] + c.del[x[i-1]]; v < best {
				best = v
			}
			if v := cur[j-1] + c.ins[y[j-1]]; v < best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// Within returns the distance from x to y if it is at most budget; ok is
// false otherwise. It prunes with a cost band (cells whose length skew
// alone exceeds the budget are never computed) and abandons the DP as
// soon as an entire row exceeds the budget, giving O(band·|x|) time for
// small budgets — the thresholded regime the query engine uses.
func (c *Calculator) Within(x, y string, budget float64) (float64, bool) {
	if budget < 0 {
		return 0, false
	}
	n, m := len(x), len(y)

	// Quick length-skew rejection. Needing net insertions costs at
	// least minIns each; net deletions at least minDel each.
	if m > n && c.minIns > 0 && float64(m-n)*c.minIns > budget {
		return 0, false
	}
	if n > m && c.minDel > 0 && float64(n-m)*c.minDel > budget {
		return 0, false
	}

	// Band half-widths: how far j may stray from i while staying under
	// budget. Free insertions/deletions make a side unbounded.
	right := m // j - i <= right
	if c.minIns > 0 {
		right = int(budget / c.minIns)
	}
	left := n // i - j <= left
	if c.minDel > 0 {
		left = int(budget / c.minDel)
	}

	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for j := 1; j <= m && j <= right; j++ {
		prev[j] = prev[j-1] + c.ins[y[j-1]]
	}
	for i := 1; i <= n; i++ {
		lo := i - left
		if lo < 0 {
			lo = 0
		}
		hi := i + right
		if hi > m {
			hi = m
		}
		for j := range cur {
			cur[j] = inf
		}
		if lo == 0 {
			cur[0] = prev[0] + c.del[x[i-1]]
		}
		rowMin := cur[0]
		if lo > 0 {
			rowMin = inf
		}
		for j := lo; j <= hi; j++ {
			if j == 0 {
				continue
			}
			best := inf
			if v := prev[j-1] + c.SubCost(x[i-1], y[j-1]); v < best {
				best = v
			}
			if v := prev[j] + c.del[x[i-1]]; v < best {
				best = v
			}
			if v := cur[j-1] + c.ins[y[j-1]]; v < best {
				best = v
			}
			cur[j] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if rowMin > budget {
			return 0, false
		}
		prev, cur = cur, prev
	}
	if prev[m] <= budget {
		return prev[m], true
	}
	return 0, false
}
