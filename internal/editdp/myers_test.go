package editdp

import (
	"math/rand"
	"strings"
	"testing"
)

// refLevenshtein is an independent textbook DP (full matrix, no affix
// stripping, no banding) so the parity tests do not compare the Myers
// kernel against optimizations that share code with it.
func refLevenshtein(x, y string) int {
	n, m := len(x), len(y)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if x[i-1] == y[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if v := prev[j] + 1; v < best {
				best = v
			}
			if v := cur[j-1] + 1; v < best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

func TestMyersDistanceTable(t *testing.T) {
	long := strings.Repeat("abcdefgh", 12)  // 96 chars: block variant
	longSub := long[:40] + "X" + long[41:]  // one substitution
	longIns := long[:50] + "zz" + long[50:] // two insertions
	nonASCII := "na\xffve\x00caf\xe9"       // high and zero bytes
	cases := []struct{ x, y string }{
		{"", ""},
		{"", "abc"},
		{"abc", ""},
		{"abc", "abc"},
		{"kitten", "sitting"},
		{"flaw", "lawn"},
		{"a", "b"},
		{"ab", "ba"},
		{"abcdefgh", "abcdxfgh"},
		{nonASCII, "naive caf"},
		{long, long},
		{long, longSub},
		{long, longIns},
		{long, "short"},
		{strings.Repeat("x", 64), strings.Repeat("x", 63) + "y"},
		{strings.Repeat("x", 65), strings.Repeat("y", 65)},
	}
	for _, c := range cases {
		want := refLevenshtein(c.x, c.y)
		if got := MyersDistance(c.x, c.y); got != want {
			t.Errorf("MyersDistance(%q, %q) = %d, want %d", c.x, c.y, got, want)
		}
		if got := NewQueryDP(c.x).Distance(c.y); got != want {
			t.Errorf("QueryDP(%q).Distance(%q) = %d, want %d", c.x, c.y, got, want)
		}
		for _, k := range []int{0, 1, 2, want - 1, want, want + 1, len(c.x) + len(c.y)} {
			wd, wok := 0, false
			if k >= 0 && want <= k {
				wd, wok = want, true
			}
			if gd, gok := MyersWithin(c.x, c.y, k); gd != wd || gok != wok {
				t.Errorf("MyersWithin(%q, %q, %d) = (%d, %v), want (%d, %v)", c.x, c.y, k, gd, gok, wd, wok)
			}
			if gd, gok := NewQueryDP(c.x).Within(c.y, k); gd != wd || gok != wok {
				t.Errorf("QueryDP(%q).Within(%q, %d) = (%d, %v), want (%d, %v)", c.x, c.y, k, gd, gok, wd, wok)
			}
			if gd, gok := LevenshteinWithin(c.x, c.y, k); gd != wd || gok != wok {
				t.Errorf("LevenshteinWithin(%q, %q, %d) = (%d, %v), want (%d, %v)", c.x, c.y, k, gd, gok, wd, wok)
			}
		}
	}
}

// TestQueryDPScalarFallback pins that the kernel toggle changes only
// the implementation, never a result.
func TestQueryDPScalarFallback(t *testing.T) {
	defer SetBitParallel(true)
	words := []string{"", "color", "colour", "colonel", strings.Repeat("colour", 20), "c\xf8l\xf8r"}
	for _, q := range words {
		SetBitParallel(true)
		on := NewQueryDP(q)
		if !BitParallelEnabled() {
			t.Fatal("BitParallelEnabled() = false after SetBitParallel(true)")
		}
		SetBitParallel(false)
		off := NewQueryDP(q)
		if BitParallelEnabled() {
			t.Fatal("BitParallelEnabled() = true after SetBitParallel(false)")
		}
		if off.SingleWord() {
			t.Errorf("QueryDP(%q).SingleWord() = true with kernel disabled", q)
		}
		for _, w := range words {
			if a, b := on.Distance(w), off.Distance(w); a != b {
				t.Errorf("QueryDP(%q).Distance(%q): kernel %d vs scalar %d", q, w, a, b)
			}
			for k := 0; k <= 8; k++ {
				ad, aok := on.Within(w, k)
				bd, bok := off.Within(w, k)
				if ad != bd || aok != bok {
					t.Errorf("QueryDP(%q).Within(%q, %d): kernel (%d,%v) vs scalar (%d,%v)", q, w, k, ad, aok, bd, bok)
				}
			}
		}
	}
}

// TestMyersStateStepping drives the incremental single-word stepper the
// trie uses and checks Score and RowMin against the textbook DP row.
func TestMyersStateStepping(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alpha := "abcd\xff"
	for trial := 0; trial < 200; trial++ {
		qlen := 1 + rng.Intn(64)
		q := randString(rng, alpha, qlen)
		text := randString(rng, alpha, rng.Intn(30))
		dp := NewQueryDP(q)
		if !dp.SingleWord() {
			t.Fatalf("QueryDP(%q).SingleWord() = false", q)
		}
		// Textbook row: row[j] = D[j][depth] for pattern prefix... we track
		// the column over the pattern: row[j] = dist(q[:j], text[:depth]).
		row := make([]int, len(q)+1)
		for j := range row {
			row[j] = j
		}
		st := dp.Start()
		checkState(t, dp, st, row, 0, q, "")
		for i := 0; i < len(text); i++ {
			st = dp.Step(st, text[i])
			prevDiag := row[0]
			row[0] = i + 1
			for j := 1; j <= len(q); j++ {
				cost := 1
				if q[j-1] == text[i] {
					cost = 0
				}
				best := prevDiag + cost
				if v := row[j] + 1; v < best {
					best = v
				}
				if v := row[j-1] + 1; v < best {
					best = v
				}
				prevDiag, row[j] = row[j], best
			}
			checkState(t, dp, st, row, i+1, q, text[:i+1])
		}
	}
}

func checkState(t *testing.T, dp *QueryDP, st MyersState, row []int, depth int, q, text string) {
	t.Helper()
	if st.Score != row[len(row)-1] {
		t.Fatalf("Step(%q over %q): Score = %d, want %d", q, text, st.Score, row[len(row)-1])
	}
	min := row[0]
	for _, v := range row {
		if v < min {
			min = v
		}
	}
	if got := dp.RowMin(st, depth); got != min {
		t.Fatalf("RowMin(%q over %q) = %d, want %d (row %v)", q, text, got, min, row)
	}
}

func randString(rng *rand.Rand, alpha string, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

// FuzzMyersParity pins the bit-parallel kernels to the scalar DP on
// arbitrary byte strings — including >64-byte block inputs and
// non-ASCII bytes — across MyersDistance, MyersWithin, QueryDP and the
// banded LevenshteinWithin.
func FuzzMyersParity(f *testing.F) {
	f.Add("", "", 0)
	f.Add("kitten", "sitting", 2)
	f.Add("abcdefgh", "abcdxfgh", 1)
	f.Add("na\xffve", "naive", 3)
	f.Add(strings.Repeat("abcdefgh", 12), strings.Repeat("abcdefgi", 12), 15)
	f.Add(strings.Repeat("\xfe\x00", 40), strings.Repeat("\xfe", 90), 70)
	f.Add(strings.Repeat("x", 64), strings.Repeat("x", 65), 1)
	f.Fuzz(func(t *testing.T, x, y string, k int) {
		if len(x) > 512 || len(y) > 512 {
			return
		}
		if k < -1 {
			k = -k
		}
		if k > 1024 {
			k %= 1024
		}
		want := refLevenshtein(x, y)
		if got := Levenshtein(x, y); got != want {
			t.Fatalf("Levenshtein(%q, %q) = %d, want %d", x, y, got, want)
		}
		if got := MyersDistance(x, y); got != want {
			t.Fatalf("MyersDistance(%q, %q) = %d, want %d", x, y, got, want)
		}
		dp := NewQueryDP(x)
		if got := dp.Distance(y); got != want {
			t.Fatalf("QueryDP(%q).Distance(%q) = %d, want %d", x, y, got, want)
		}
		wd, wok := 0, false
		if k >= 0 && want <= k {
			wd, wok = want, true
		}
		if gd, gok := MyersWithin(x, y, k); gd != wd || gok != wok {
			t.Fatalf("MyersWithin(%q, %q, %d) = (%d, %v), want (%d, %v)", x, y, k, gd, gok, wd, wok)
		}
		if gd, gok := dp.Within(y, k); gd != wd || gok != wok {
			t.Fatalf("QueryDP(%q).Within(%q, %d) = (%d, %v), want (%d, %v)", x, y, k, gd, gok, wd, wok)
		}
		if gd, gok := LevenshteinWithin(x, y, k); gd != wd || gok != wok {
			t.Fatalf("LevenshteinWithin(%q, %q, %d) = (%d, %v), want (%d, %v)", x, y, k, gd, gok, wd, wok)
		}
	})
}
