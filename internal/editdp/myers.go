package editdp

// Bit-parallel (Myers) unit-cost edit distance. The classical DP fills
// |x|·|y| cells one comparison at a time; Myers' 1999 reformulation
// encodes a whole DP column as two bit vectors of vertical deltas
// (+1/-1) and advances the column with ~15 word operations per text
// character, so patterns up to 64 bytes cost O(|text|) word ops and
// longer patterns cost O(|text|·⌈|pattern|/64⌉) (Hyyrö's block chain).
//
// Two layers are exposed:
//
//   - MyersDistance / MyersWithin: one-shot kernels, drop-in
//     replacements for Levenshtein / LevenshteinWithin with
//     bit-identical results (the parity fuzzer pins this).
//   - QueryDP: a query-scoped kernel that builds the pattern-equality
//     bitmask table (PEQ) ONCE and amortizes it across every candidate
//     a BK-tree walk, trie traversal or vectorized filter block
//     verifies — the millions-of-comparisons regime where PEQ
//     construction would otherwise dominate.
//
// SetBitParallel(false) reverts every QueryDP to the scalar DP (the
// explicit Myers* functions stay bit-parallel); the serving benchmarks
// use the knob to quantify the kernel win end to end.

import (
	"sync"
	"sync/atomic"
)

// bitParallelOff is set when the bit-parallel kernels are disabled;
// the zero value (enabled) is the default.
var bitParallelOff atomic.Bool

// SetBitParallel toggles the bit-parallel kernels behind QueryDP.
// Disabled, every QueryDP delegates to the scalar Levenshtein DP —
// results are identical either way (the parity fuzzer pins this), so
// the knob exists to benchmark the kernels against each other. Flip it
// at startup: QueryDP instances capture the setting at construction.
func SetBitParallel(enabled bool) { bitParallelOff.Store(!enabled) }

// BitParallelEnabled reports whether QueryDP runs the Myers kernels.
func BitParallelEnabled() bool { return !bitParallelOff.Load() }

// MyersDistance returns the unit-cost edit distance between x and y,
// bit-identical to Levenshtein(x, y).
func MyersDistance(x, y string) int {
	// Strip common affixes; they never participate in an optimal script.
	for len(x) > 0 && len(y) > 0 && x[0] == y[0] {
		x, y = x[1:], y[1:]
	}
	for len(x) > 0 && len(y) > 0 && x[len(x)-1] == y[len(y)-1] {
		x, y = x[:len(x)-1], y[:len(y)-1]
	}
	if len(x) == 0 {
		return len(y)
	}
	if len(y) == 0 {
		return len(x)
	}
	if len(y) > len(x) {
		x, y = y, x
	}
	// y is the (shorter) pattern: fewer blocks, likelier single-word.
	if len(y) <= wordBits {
		var peq [256]uint64
		for i := 0; i < len(y); i++ {
			peq[y[i]] |= 1 << uint(i)
		}
		return myersDistance1(&peq, len(y), x)
	}
	return newQueryDP(y, false).Distance(x)
}

// MyersWithin returns the unit-cost edit distance between x and y if it
// is at most k, and ok=false otherwise — bit-identical to
// LevenshteinWithin(x, y, k).
func MyersWithin(x, y string, k int) (int, bool) {
	if k < 0 {
		return 0, false
	}
	if d := len(x) - len(y); d > k || -d > k {
		// Length skew alone exceeds the budget: fail before any DP work.
		return 0, false
	}
	for len(x) > 0 && len(y) > 0 && x[0] == y[0] {
		x, y = x[1:], y[1:]
	}
	for len(x) > 0 && len(y) > 0 && x[len(x)-1] == y[len(y)-1] {
		x, y = x[:len(x)-1], y[:len(y)-1]
	}
	if len(y) > len(x) {
		x, y = y, x
	}
	if len(y) == 0 {
		return len(x), len(x) <= k
	}
	if len(y) <= wordBits {
		var peq [256]uint64
		for i := 0; i < len(y); i++ {
			peq[y[i]] |= 1 << uint(i)
		}
		return myersWithin1(&peq, len(y), x, k)
	}
	return newQueryDP(y, false).Within(x, k)
}

const wordBits = 64

// QueryDP is a query-scoped bit-parallel distance kernel: the PEQ
// bitmask table of the fixed pattern (the query string) is computed
// once at construction — O(|pattern|) plus one 2KB table — and every
// Distance/Within call against a candidate costs only the Myers column
// recurrence. It is the unit-cost sibling of TargetDP: one per query,
// amortized across all candidates that query verifies.
//
// A QueryDP is NOT safe for concurrent use (the block variant owns
// scratch columns); each query pipeline builds its own.
type QueryDP struct {
	pattern string
	m       int
	nb      int    // ⌈m/64⌉ blocks; 0 when the pattern is empty
	scalar  bool   // kernel disabled at construction: run the scalar DP
	hmask   uint64 // bit (m-1) mod 64 of the last block: the score row
	peq     [256]uint64
	peqB    []uint64 // block PEQ, peqB[c*nb+b]; nil when nb <= 1
	pv, mv  []uint64 // scratch columns for the block variant
}

// NewQueryDP builds the PEQ table for the pattern. The bit-parallel
// toggle is captured here: with SetBitParallel(false) the returned
// kernel delegates to the scalar DP (identical results).
func NewQueryDP(pattern string) *QueryDP {
	return newQueryDP(pattern, bitParallelOff.Load())
}

func newQueryDP(pattern string, scalar bool) *QueryDP {
	m := len(pattern)
	q := &QueryDP{pattern: pattern, m: m, scalar: scalar}
	if scalar || m == 0 {
		return q
	}
	q.nb = (m + wordBits - 1) / wordBits
	q.hmask = 1 << (uint(m-1) % wordBits)
	if q.nb == 1 {
		for i := 0; i < m; i++ {
			q.peq[pattern[i]] |= 1 << uint(i)
		}
		return q
	}
	q.peqB = make([]uint64, 256*q.nb)
	for i := 0; i < m; i++ {
		q.peqB[int(pattern[i])*q.nb+i/wordBits] |= 1 << (uint(i) % wordBits)
	}
	q.pv = make([]uint64, q.nb)
	q.mv = make([]uint64, q.nb)
	return q
}

// Pattern returns the fixed pattern string.
func (q *QueryDP) Pattern() string { return q.pattern }

// Distance returns the unit-cost edit distance from the pattern to
// text, bit-identical to Levenshtein(pattern, text).
func (q *QueryDP) Distance(text string) int {
	switch {
	case q.scalar:
		return Levenshtein(q.pattern, text)
	case q.m == 0:
		return len(text)
	case len(text) == 0:
		return q.m
	case q.nb == 1:
		return myersDistance1(&q.peq, q.m, text)
	}
	return q.distanceBlocks(text, -1)
}

// Within returns the distance if it is at most k, ok=false otherwise —
// bit-identical to LevenshteinWithin(pattern, text, k). The kernel
// abandons the text as soon as the running last-row score cannot sink
// back under k (|D[m][j+1]-D[m][j]| <= 1 bounds the recovery rate).
func (q *QueryDP) Within(text string, k int) (int, bool) {
	if k < 0 {
		return 0, false
	}
	if d := len(text) - q.m; d > k || -d > k {
		return 0, false
	}
	if q.scalar {
		return LevenshteinWithin(q.pattern, text, k)
	}
	if q.m == 0 || len(text) == 0 {
		d := q.m + len(text) // one side is empty
		return d, d <= k     // length check above already passed
	}
	if q.nb == 1 {
		return myersWithin1(&q.peq, q.m, text, k)
	}
	d := q.distanceBlocks(text, k)
	if d < 0 || d > k {
		return 0, false
	}
	return d, true
}

// myersDistance1 runs the single-word Myers recurrence: the DP column
// is two bit vectors of vertical deltas (pv: +1, mv: -1) and score
// tracks the last row D[m][j] via the horizontal delta at bit m-1.
func myersDistance1(peq *[256]uint64, m int, text string) int {
	pv, mv := ^uint64(0), uint64(0)
	score := m
	hmask := uint64(1) << uint(m-1)
	for i := 0; i < len(text); i++ {
		eq := peq[text[i]]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&hmask != 0 {
			score++
		} else if mh&hmask != 0 {
			score--
		}
		// The |1 carries the global-alignment boundary D[0][j] = j.
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
	}
	return score
}

// myersWithin1 is myersDistance1 with the budget cutoff: once even a
// -1-per-column recovery cannot bring the score back under k, the text
// is abandoned.
func myersWithin1(peq *[256]uint64, m int, text string, k int) (int, bool) {
	pv, mv := ^uint64(0), uint64(0)
	score := m
	hmask := uint64(1) << uint(m-1)
	n := len(text)
	for i := 0; i < n; i++ {
		eq := peq[text[i]]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&hmask != 0 {
			score++
			if score-(n-i-1) > k {
				return 0, false
			}
		} else if mh&hmask != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
	}
	if score > k {
		return 0, false
	}
	return score, true
}

// distanceBlocks runs Hyyrö's block chain for patterns longer than one
// word: per text character the horizontal delta at each 64-row block
// boundary carries into the next block. k >= 0 enables the budget
// cutoff (return -1 when the distance provably exceeds k); k < 0
// computes the exact distance.
func (q *QueryDP) distanceBlocks(text string, k int) int {
	nb := q.nb
	pv, mv := q.pv, q.mv
	for b := 0; b < nb; b++ {
		pv[b] = ^uint64(0)
		mv[b] = 0
	}
	score := q.m
	last := nb - 1
	n := len(text)
	const top = uint64(1) << (wordBits - 1)
	for i := 0; i < n; i++ {
		peq := q.peqB[int(text[i])*nb:]
		hin := 1 // global-alignment boundary: D[0][j] = j
		for b := 0; b < nb; b++ {
			eq := peq[b]
			pvb, mvb := pv[b], mv[b]
			xv := eq | mvb
			if hin < 0 {
				eq |= 1
			}
			xh := (((eq & pvb) + pvb) ^ pvb) | eq
			ph := mvb | ^(xh | pvb)
			mh := pvb & xh
			hout := 0
			if b == last {
				// Bits above m-1 are padding; the score row is hmask.
				if ph&q.hmask != 0 {
					hout = 1
				} else if mh&q.hmask != 0 {
					hout = -1
				}
			} else {
				if ph&top != 0 {
					hout = 1
				} else if mh&top != 0 {
					hout = -1
				}
			}
			ph <<= 1
			mh <<= 1
			if hin > 0 {
				ph |= 1
			} else if hin < 0 {
				mh |= 1
			}
			pv[b] = mh | ^(xv | ph)
			mv[b] = ph & xv
			hin = hout
		}
		score += hin
		if k >= 0 && score-(n-i-1) > k {
			return -1
		}
	}
	return score
}

// ---------------------------------------------------------------------
// Incremental single-word stepping (trie traversal).

// MyersState is one DP column of the single-word kernel: the vertical
// delta vectors and the last-row score. Trie traversals keep one state
// per node frame — 17 bytes instead of an O(|query|) integer row.
type MyersState struct {
	PV, MV uint64
	Score  int
}

// SingleWord reports whether the kernel supports incremental stepping:
// a non-empty pattern of at most 64 bytes with bit-parallelism enabled.
func (q *QueryDP) SingleWord() bool { return !q.scalar && q.m >= 1 && q.nb == 1 }

// Start returns the column for the empty text (D[i][0] = i).
// Valid only when SingleWord().
func (q *QueryDP) Start() MyersState {
	return MyersState{PV: ^uint64(0), MV: 0, Score: q.m}
}

// Step advances the column by one text byte. Valid only when
// SingleWord().
func (q *QueryDP) Step(st MyersState, c byte) MyersState {
	eq := q.peq[c]
	pv, mv := st.PV, st.MV
	xv := eq | mv
	xh := (((eq & pv) + pv) ^ pv) | eq
	ph := mv | ^(xh | pv)
	mh := pv & xh
	score := st.Score
	if ph&q.hmask != 0 {
		score++
	} else if mh&q.hmask != 0 {
		score--
	}
	ph = ph<<1 | 1
	mh <<= 1
	return MyersState{PV: mh | ^(xv | ph), MV: ph & xv, Score: score}
}

// RowMin returns the minimum cell of the column — the lower bound on
// every distance in the subtree below a trie node, i.e. the pruning
// key. depth is the number of Steps taken (D[0][depth] = depth); the
// cells are recovered as prefix sums of the ±1 delta bits, folded a
// byte at a time through a precomputed min-prefix-sum table.
func (q *QueryDP) RowMin(st MyersState, depth int) int {
	rowMinInit.Do(buildRowMinTables)
	min := 0 // the j = 0 cell contributes prefix sum 0
	run := 0
	pv, mv := st.PV, st.MV
	for i := 0; i < q.m; i += 8 {
		idx := int(pv&0xff)<<8 | int(mv&0xff)
		if v := run + int(rowMinPfx[idx]); v < min {
			min = v
		}
		run += int(rowMinSum[idx])
		pv >>= 8
		mv >>= 8
	}
	// Padding bits above m-1 carry no MV deltas (their PEQ bits are
	// zero), so including them can only append non-negative deltas —
	// the minimum is unaffected.
	return depth + min
}

var (
	rowMinInit sync.Once
	// Indexed by pvByte<<8 | mvByte: the minimum prefix sum of the
	// byte's ±1 deltas (<= 0) and the byte's total delta.
	rowMinPfx [1 << 16]int8
	rowMinSum [1 << 16]int8
)

func buildRowMinTables() {
	for p := 0; p < 256; p++ {
		for m := 0; m < 256; m++ {
			sum, min := 0, 0
			for b := 0; b < 8; b++ {
				sum += (p >> b & 1) - (m >> b & 1)
				if sum < min {
					min = sum
				}
			}
			rowMinPfx[p<<8|m] = int8(min)
			rowMinSum[p<<8|m] = int8(sum)
		}
	}
}
