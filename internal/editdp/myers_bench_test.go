package editdp

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchWords returns 256 random words of exactly n bytes over an
// 8-symbol alphabet; random words defeat affix stripping, so the
// scalar and bit-parallel kernels run their full inner loops.
func benchWords(n int) (string, []string) {
	rng := rand.New(rand.NewSource(int64(n)))
	const alpha = "abcdefgh"
	gen := func() string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	query := gen()
	words := make([]string, 256)
	for i := range words {
		words[i] = gen()
	}
	return query, words
}

var sinkInt int

// BenchmarkMyersKernels sweeps word lengths 8/16/32/64/256 (the last
// exercising the block variant) over scalar Levenshtein, the one-shot
// MyersDistance and the query-scoped QueryDP — the EXPERIMENTS.md
// scalar-vs-bit-parallel table comes from this sweep.
func BenchmarkMyersKernels(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64, 256} {
		query, words := benchWords(n)
		b.Run(fmt.Sprintf("scalar/len%d", n), func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				for _, w := range words {
					s += Levenshtein(query, w)
				}
			}
			sinkInt = s
		})
		b.Run(fmt.Sprintf("myers/len%d", n), func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				for _, w := range words {
					s += MyersDistance(query, w)
				}
			}
			sinkInt = s
		})
		b.Run(fmt.Sprintf("querydp/len%d", n), func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				dp := NewQueryDP(query)
				for _, w := range words {
					s += dp.Distance(w)
				}
			}
			sinkInt = s
		})
	}
}

// BenchmarkMyersWithin compares the budgeted kernels at a tight radius
// (k=2): the scalar banded DP vs the bit-parallel early-abandon path —
// the regime of every WITHIN range query.
func BenchmarkMyersWithin(b *testing.B) {
	for _, n := range []int{32, 64, 256} {
		query, words := benchWords(n)
		b.Run(fmt.Sprintf("scalar/len%d", n), func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				for _, w := range words {
					if d, ok := LevenshteinWithin(query, w, 2); ok {
						s += d
					}
				}
			}
			sinkInt = s
		})
		b.Run(fmt.Sprintf("querydp/len%d", n), func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				dp := NewQueryDP(query)
				for _, w := range words {
					if d, ok := dp.Within(w, 2); ok {
						s += d
					}
				}
			}
			sinkInt = s
		})
	}
}
