package editdp

import "fmt"

// OpKind identifies the operation of one alignment step.
type OpKind int

// Alignment operation kinds.
const (
	OpMatch OpKind = iota // symbols equal, no cost
	OpSub                 // rewrite X-symbol into Y-symbol
	OpDel                 // delete X-symbol
	OpIns                 // insert Y-symbol
)

// String returns the kind's mnemonic.
func (k OpKind) String() string {
	switch k {
	case OpMatch:
		return "match"
	case OpSub:
		return "sub"
	case OpDel:
		return "del"
	case OpIns:
		return "ins"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one step of an optimal edit script, positions referring to the
// original strings.
type Op struct {
	Kind OpKind
	I    int  // position in x (for match/sub/del)
	J    int  // position in y (for match/sub/ins)
	From byte // x symbol involved (match/sub/del)
	To   byte // y symbol involved (match/sub/ins)
	Cost float64
}

// String renders the op for explanations and the CLI.
func (o Op) String() string {
	switch o.Kind {
	case OpMatch:
		return fmt.Sprintf("match %q @%d,%d", o.From, o.I, o.J)
	case OpSub:
		return fmt.Sprintf("sub %q->%q @%d,%d cost %g", o.From, o.To, o.I, o.J, o.Cost)
	case OpDel:
		return fmt.Sprintf("del %q @%d cost %g", o.From, o.I, o.Cost)
	case OpIns:
		return fmt.Sprintf("ins %q @%d cost %g", o.To, o.J, o.Cost)
	default:
		return "?"
	}
}

// Alignment returns an optimal edit script transforming x into y and its
// total (closed) cost. The script witnesses the distance: summing the op
// costs reproduces Distance(x, y) exactly.
func (c *Calculator) Alignment(x, y string) ([]Op, float64) {
	n, m := len(x), len(y)
	// Full matrix for traceback.
	d := make([][]float64, n+1)
	for i := range d {
		d[i] = make([]float64, m+1)
	}
	for j := 1; j <= m; j++ {
		d[0][j] = d[0][j-1] + c.ins[y[j-1]]
	}
	for i := 1; i <= n; i++ {
		d[i][0] = d[i-1][0] + c.del[x[i-1]]
		for j := 1; j <= m; j++ {
			best := d[i-1][j-1] + c.SubCost(x[i-1], y[j-1])
			if v := d[i-1][j] + c.del[x[i-1]]; v < best {
				best = v
			}
			if v := d[i][j-1] + c.ins[y[j-1]]; v < best {
				best = v
			}
			d[i][j] = best
		}
	}
	// Traceback.
	var rev []Op
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && d[i][j] == d[i-1][j-1]+c.SubCost(x[i-1], y[j-1]):
			kind := OpSub
			cost := c.SubCost(x[i-1], y[j-1])
			if x[i-1] == y[j-1] {
				kind = OpMatch
				cost = 0
			}
			rev = append(rev, Op{Kind: kind, I: i - 1, J: j - 1, From: x[i-1], To: y[j-1], Cost: cost})
			i, j = i-1, j-1
		case i > 0 && d[i][j] == d[i-1][j]+c.del[x[i-1]]:
			rev = append(rev, Op{Kind: OpDel, I: i - 1, J: j, From: x[i-1], Cost: c.del[x[i-1]]})
			i--
		default:
			rev = append(rev, Op{Kind: OpIns, I: i, J: j - 1, To: y[j-1], Cost: c.ins[y[j-1]]})
			j--
		}
	}
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev, d[n][m]
}
