package editdp

import "math"

// TargetDP is the vectorized distance kernel behind the query engine's
// batch filter: a banded weighted-edit-distance evaluator specialised
// to ONE fixed target string, verified against many candidates. Two
// per-candidate costs of Calculator.Within are hoisted to construction
// time:
//
//   - the closed substitution costs along the target become a dense
//     per-position [256] table (subY), so the DP inner loop does pure
//     array arithmetic instead of a hash-map lookup per cell;
//   - the DP row buffers are owned by the kernel and reused across
//     candidates, so a scan verifies millions of rows with zero
//     allocations.
//
// The DP loop structure, comparison order and arithmetic are identical
// to Calculator.Within/Distance, so results are bit-identical — the
// batch/row parity oracle depends on that.
//
// A TargetDP is NOT safe for concurrent use (it owns scratch rows);
// each operator of a query pipeline builds its own.
type TargetDP struct {
	c    *Calculator
	y    string
	insY []float64      // insY[j] = closed insertion cost of y[j]
	subY [][256]float64 // subY[j][a] = closed substitution cost a -> y[j]
	prev []float64
	cur  []float64
}

// NewTargetDP builds the dense target tables; cost is O(256·|y|) map
// lookups, paid once per (operator, target) instead of once per DP
// cell.
func (c *Calculator) NewTargetDP(y string) *TargetDP {
	m := len(y)
	t := &TargetDP{
		c:    c,
		y:    y,
		insY: make([]float64, m),
		subY: make([][256]float64, m),
		prev: make([]float64, m+1),
		cur:  make([]float64, m+1),
	}
	for j := 0; j < m; j++ {
		t.insY[j] = c.ins[y[j]]
		for a := 0; a < 256; a++ {
			t.subY[j][a] = c.SubCost(byte(a), y[j])
		}
	}
	return t
}

// Target returns the fixed target string.
func (t *TargetDP) Target() string { return t.y }

// Within is Calculator.Within(x, target, budget) with the hoisted
// tables and reused rows; identical results, zero allocations.
func (t *TargetDP) Within(x string, budget float64) (float64, bool) {
	if budget < 0 {
		return 0, false
	}
	c := t.c
	n, m := len(x), len(t.y)

	if m > n && c.minIns > 0 && float64(m-n)*c.minIns > budget {
		return 0, false
	}
	if n > m && c.minDel > 0 && float64(n-m)*c.minDel > budget {
		return 0, false
	}

	right := m
	if c.minIns > 0 {
		right = int(budget / c.minIns)
	}
	left := n
	if c.minDel > 0 {
		left = int(budget / c.minDel)
	}

	inf := math.Inf(1)
	prev, cur := t.prev, t.cur
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for j := 1; j <= m && j <= right; j++ {
		prev[j] = prev[j-1] + t.insY[j-1]
	}
	for i := 1; i <= n; i++ {
		lo := i - left
		if lo < 0 {
			lo = 0
		}
		hi := i + right
		if hi > m {
			hi = m
		}
		for j := range cur {
			cur[j] = inf
		}
		delX := c.del[x[i-1]]
		if lo == 0 {
			cur[0] = prev[0] + delX
		}
		rowMin := cur[0]
		if lo > 0 {
			rowMin = inf
		}
		for j := lo; j <= hi; j++ {
			if j == 0 {
				continue
			}
			best := inf
			if v := prev[j-1] + t.subY[j-1][x[i-1]]; v < best {
				best = v
			}
			if v := prev[j] + delX; v < best {
				best = v
			}
			if v := cur[j-1] + t.insY[j-1]; v < best {
				best = v
			}
			cur[j] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if rowMin > budget {
			return 0, false
		}
		prev, cur = cur, prev
	}
	// prev/cur swap in place; remember the final assignment for reuse.
	t.prev, t.cur = prev, cur
	if prev[m] <= budget {
		return prev[m], true
	}
	return 0, false
}

// Distance is Calculator.Distance(x, target) with the hoisted tables
// and reused rows.
func (t *TargetDP) Distance(x string) float64 {
	c := t.c
	n, m := len(x), len(t.y)
	prev, cur := t.prev, t.cur
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + t.insY[j-1]
	}
	for i := 1; i <= n; i++ {
		delX := c.del[x[i-1]]
		cur[0] = prev[0] + delX
		for j := 1; j <= m; j++ {
			best := prev[j-1] + t.subY[j-1][x[i-1]]
			if v := prev[j] + delX; v < best {
				best = v
			}
			if v := cur[j-1] + t.insY[j-1]; v < best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	t.prev, t.cur = prev, cur
	return prev[m]
}
