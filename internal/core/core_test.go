package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/rewrite"
	"repro/internal/stock"
	"repro/internal/transform"
	"repro/internal/tsdb"
)

func seqEval(t *testing.T, rs *rewrite.RuleSet) *Evaluator {
	t.Helper()
	dom, err := SequenceDomain(rs)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(dom)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestNewEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(nil); err == nil {
		t.Error("nil domain accepted")
	}
	if _, err := NewEvaluator(&Domain{}); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestSequenceIdentity(t *testing.T) {
	ev := seqEval(t, rewrite.UnitEdits("ab"))
	d, ok, err := ev.Distance("ab", "ab", 0)
	if err != nil || !ok || d != 0 {
		t.Fatalf("Distance(x,x) = %g,%v,%v", d, ok, err)
	}
}

// TestTwoSidedMatchesOneSidedSymmetric: for symmetric rule sets the
// two-sided distance equals the one-sided transformation distance.
func TestTwoSidedMatchesOneSidedSymmetric(t *testing.T) {
	rs := rewrite.UnitEdits("ab")
	ev := seqEval(t, rs)
	eng, err := transform.NewEngine(rs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	alpha := []byte("ab")
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(2)]
		}
		return string(b)
	}
	for trial := 0; trial < 40; trial++ {
		x, y := randStr(rng.Intn(4)), randStr(rng.Intn(4))
		d1, ok1, err := ev.Distance(x, y, 3)
		if err != nil {
			t.Fatal(err)
		}
		d2, ok2, err := eng.Distance(x, y, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ok1 != ok2 || (ok1 && d1 != d2) {
			t.Fatalf("(%q,%q): two-sided %g,%v vs one-sided %g,%v", x, y, d1, ok1, d2, ok2)
		}
	}
}

// TestTwoSidedBeatsOneSided: with deletion-only rules, "ab" and "ba"
// meet at "a" (or "b") for cost 2 even though neither reduces to the
// other.
func TestTwoSidedBeatsOneSided(t *testing.T) {
	rs := rewrite.MustRuleSet("del", []rewrite.Rule{
		rewrite.Delete('a', 1), rewrite.Delete('b', 1),
	})
	ev := seqEval(t, rs)
	d, ok, err := ev.Distance("ab", "ba", 10)
	if err != nil || !ok {
		t.Fatalf("Distance: %v, ok=%v", err, ok)
	}
	if d != 2 {
		t.Errorf("two-sided distance = %g, want 2 (meet at a common substring)", d)
	}
	// One-sided: unreachable.
	eng, err := transform.NewEngine(rs)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := eng.Within("ab", "ba", 10); ok {
		t.Error("one-sided reported reachable")
	}
}

func TestBudgetRespected(t *testing.T) {
	ev := seqEval(t, rewrite.UnitEdits("ab"))
	if _, ok, _ := ev.Distance("aaa", "bbb", 2); ok {
		t.Error("distance 3 within budget 2")
	}
	if _, ok, _ := ev.Distance("aaa", "bbb", 3); !ok {
		t.Error("distance 3 not within budget 3")
	}
	if _, ok, _ := ev.Distance("a", "a", -1); ok {
		t.Error("negative budget accepted")
	}
}

func TestSequenceDomainRejectsUndecidable(t *testing.T) {
	rs := rewrite.MustRuleSet("grow", []rewrite.Rule{{LHS: "a", RHS: "aa", Cost: 0}})
	if _, err := SequenceDomain(rs); err == nil {
		t.Fatal("zero-cost growth accepted")
	}
}

func TestStateLimit(t *testing.T) {
	ev := seqEval(t, rewrite.UnitEdits("abcdefgh"))
	ev.SetMaxStates(5)
	_, _, err := ev.Distance("aaaaaa", "hhhhhh", 6)
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
	ev.SetMaxStates(0) // restore default
	if _, ok, err := ev.Distance("a", "b", 1); err != nil || !ok {
		t.Fatalf("after restore: %v, ok=%v", err, ok)
	}
}

func TestSimilar(t *testing.T) {
	ev := seqEval(t, rewrite.UnitEdits("abc"))
	objs := []Object{"abc", "abd", "xyz", "ab"}
	got, err := ev.Similar("abc", objs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// "abd" has 'd' outside the alphabet: substitution impossible; only
	// exact and one-deletion matches are within 1.
	want := []int{0, 3}
	if len(got) != len(want) || got[0] != 0 || got[1] != 3 {
		t.Errorf("Similar = %v, want %v", got, want)
	}
}

// TestTimeSeriesDomain realises Example 2.2: a reversed, smoothed
// series is similar to its partner once the catalog may apply reverse
// and moving average, and dissimilar without budget.
func TestTimeSeriesDomain(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(2))
	base := stock.Walk(rng, n)
	norm, _, _, err := tsdb.NormalForm(base)
	if err != nil {
		t.Fatal(err)
	}
	opposite := tsdb.Reverse(norm)

	mavg, err := tsdb.MovingAvg(n, 10)
	if err != nil {
		t.Fatal(err)
	}
	catalog := []TSTransformation{
		{T: tsdb.ReverseT(n), Cost: 1},
		{T: mavg, Cost: 1},
	}
	dom, err := TimeSeriesDomain(n, catalog)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(dom)
	if err != nil {
		t.Fatal(err)
	}

	rawDist, err := tsdb.Euclid(norm, opposite)
	if err != nil {
		t.Fatal(err)
	}
	// Applying reverse (cost 1) to one side makes them identical:
	// similarity distance = 1 < raw Euclidean distance.
	d, ok, err := ev.Distance(norm, opposite, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("reverse-related series not similar within budget 2")
	}
	if math.Abs(d-1) > 1e-6 {
		t.Errorf("similarity distance = %g, want 1 (one reverse)", d)
	}
	if d >= rawDist {
		t.Errorf("transformation did not pay off: %g vs raw %g", d, rawDist)
	}
}

func TestTimeSeriesDomainValidation(t *testing.T) {
	if _, err := TimeSeriesDomain(0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	mavg, _ := tsdb.MovingAvg(8, 2)
	if _, err := TimeSeriesDomain(8, []TSTransformation{{T: mavg, Cost: -1}}); err == nil {
		t.Error("negative cost accepted")
	}
	dom, err := TimeSeriesDomain(8, []TSTransformation{{T: mavg, Cost: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := NewEvaluator(dom)
	if _, _, err := ev.Distance([]float64{1, 2}, []float64{1, 2}, 1); err == nil {
		t.Error("wrong-length series accepted")
	}
}

func TestZeroCostCatalogTerminates(t *testing.T) {
	// A free involution (reverse twice = identity): the memoised search
	// must terminate despite the zero-cost cycle.
	const n = 16
	dom, err := TimeSeriesDomain(n, []TSTransformation{{T: tsdb.ReverseT(n), Cost: 0}})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(dom)
	if err != nil {
		t.Fatal(err)
	}
	x := stock.Walk(rand.New(rand.NewSource(3)), n)
	y := tsdb.Reverse(x)
	d, ok, err := ev.Distance(x, y, 1)
	if err != nil || !ok || d > 1e-9 {
		t.Fatalf("free reverse: %g,%v,%v; want ~0,true,nil", d, ok, err)
	}
}
