package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/rewrite"
	"repro/internal/tsdb"
)

// SequenceDomain instantiates the framework for strings under a rewrite
// rule set: the base distance is discrete (0 when equal, +∞ otherwise)
// so the evaluator's two-sided search computes "reduce both objects to
// a common one" — the PODS paper's general reduction semantics. The
// rule set must lie in the decidable regime (no zero-cost growth).
func SequenceDomain(rs *rewrite.RuleSet) (*Domain, error) {
	if rs.ZeroCostGrowth() {
		return nil, fmt.Errorf("core: rule set %q has zero-cost length-increasing rules", rs.Name())
	}
	return &Domain{
		Name: "sequence/" + rs.Name(),
		Key:  func(o Object) string { return o.(string) },
		Base: func(a, b Object) (float64, error) {
			if a.(string) == b.(string) {
				return 0, nil
			}
			return math.Inf(1), nil
		},
		Successors: func(o Object) ([]Move, error) {
			s := o.(string)
			var out []Move
			for _, r := range rs.Rules() {
				for _, app := range r.Applications(s) {
					out = append(out, Move{Name: r.String(), Cost: r.Cost, Result: app.Result})
				}
			}
			return out, nil
		},
	}, nil
}

// TSTransformation is a catalog entry of the time-series domain: a
// named safe spectral transformation with a cost, as in the companion
// paper's Section 2 examples (each operation has a cost; the total is
// bounded by the query budget).
type TSTransformation struct {
	T    *tsdb.Transform
	Cost float64
}

// TimeSeriesDomain instantiates the framework for real series of length
// n: the base distance is Euclidean, transformations are the supplied
// catalog (moving averages, reversal, ...). Objects are []float64 of
// length n.
func TimeSeriesDomain(n int, catalog []TSTransformation) (*Domain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: series length must be positive")
	}
	for _, c := range catalog {
		if c.Cost < 0 {
			return nil, fmt.Errorf("core: transformation %q has negative cost", c.T.Name)
		}
	}
	return &Domain{
		Name: "timeseries",
		Key: func(o Object) string {
			s := o.([]float64)
			var b strings.Builder
			for _, v := range s {
				// Round to 1e-9 so float jitter from FFT round trips
				// does not split states.
				b.WriteString(strconv.FormatFloat(math.Round(v*1e9)/1e9, 'g', -1, 64))
				b.WriteByte(',')
			}
			return b.String()
		},
		Base: func(a, b Object) (float64, error) {
			return tsdb.Euclid(a.([]float64), b.([]float64))
		},
		Successors: func(o Object) ([]Move, error) {
			s := o.([]float64)
			if len(s) != n {
				return nil, fmt.Errorf("core: series length %d, want %d", len(s), n)
			}
			out := make([]Move, 0, len(catalog))
			for _, c := range catalog {
				r, err := c.T.ApplySeries(s)
				if err != nil {
					return nil, err
				}
				out = append(out, Move{Name: c.T.Name, Cost: c.Cost, Result: r})
			}
			return out, nil
		},
	}, nil
}
