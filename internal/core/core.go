// Package core is the domain-independent heart of the PODS'95
// similarity-query framework. A Domain packages the three ingredients
// the paper's model needs:
//
//   - objects (opaque values with a canonical Key),
//   - a base distance D0 between objects, and
//   - cost-weighted one-step transformations (the rule language T).
//
// On top of a Domain, Evaluator computes the framework's similarity
// distance — the companion paper's Equation 10, which the PODS paper
// states in its general form:
//
//	D(x, y) = min( D0(x, y),
//	               min_T cost(T) + D(T(x), y),
//	               min_T cost(T) + D(x, T(y)),
//	               min_{T1,T2} cost(T1) + cost(T2) + D(T1(x), T2(y)) )
//
// i.e. the cheapest way to transform either or both objects until the
// base distance (plus the transformation costs spent) is minimal. The
// evaluator runs budget-bounded uniform-cost search over pairs of
// objects, so it inherits the paper's decidability regime: strictly
// positive costs (or finitely many zero-cost states) plus a budget.
//
// Two domains ship with the repository: the sequence domain over
// rewrite rule sets (internal/rewrite) and the time-series domain over
// safe spectral transformations (internal/tsdb).
package core

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Object is any domain value.
type Object interface{}

// Move is one applicable transformation step: the named transformation,
// its cost, and the resulting object.
type Move struct {
	Name   string
	Cost   float64
	Result Object
}

// Domain packages a pattern-free instantiation of the framework: keys,
// base distance and the transformation language.
type Domain struct {
	// Name identifies the domain in error messages.
	Name string
	// Key returns a canonical identity for memoisation; objects with
	// equal keys are the same object.
	Key func(Object) string
	// Base is the underlying distance D0 (Euclidean, discrete 0/∞, ...).
	Base func(a, b Object) (float64, error)
	// Successors enumerates every one-step transformation of an object.
	Successors func(Object) ([]Move, error)
}

// ErrStateLimit is returned when the pair search exceeds its state cap.
var ErrStateLimit = errors.New("core: similarity search exceeded state limit")

// DefaultMaxStates caps the number of object pairs settled per query.
const DefaultMaxStates = 1 << 18

// Evaluator computes the framework's similarity distance over one
// domain. Safe for concurrent use.
type Evaluator struct {
	dom       *Domain
	maxStates int
}

// NewEvaluator validates the domain and returns an evaluator.
func NewEvaluator(dom *Domain) (*Evaluator, error) {
	if dom == nil || dom.Key == nil || dom.Base == nil || dom.Successors == nil {
		return nil, fmt.Errorf("core: domain requires Key, Base and Successors")
	}
	return &Evaluator{dom: dom, maxStates: DefaultMaxStates}, nil
}

// SetMaxStates overrides the search state cap (n <= 0 restores the
// default).
func (e *Evaluator) SetMaxStates(n int) {
	if n <= 0 {
		n = DefaultMaxStates
	}
	e.maxStates = n
}

// pairState is a node of the two-sided search.
type pairState struct {
	x, y Object
	g    float64 // transformation cost spent so far
}

type pairHeap []pairState

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].g < h[j].g }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(v interface{}) { *h = append(*h, v.(pairState)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Distance returns the similarity distance between x and y if it is at
// most budget (ok=false otherwise). Transformation spending is capped
// by the budget: the result is the minimum over reachable pairs of
// spent cost plus base distance.
func (e *Evaluator) Distance(x, y Object, budget float64) (dist float64, ok bool, err error) {
	if budget < 0 {
		return 0, false, nil
	}
	best := math.Inf(1)
	dists := map[[2]string]float64{}
	key := func(a, b Object) [2]string { return [2]string{e.dom.Key(a), e.dom.Key(b)} }
	pq := &pairHeap{{x: x, y: y, g: 0}}
	dists[key(x, y)] = 0
	settled := 0
	for pq.Len() > 0 {
		st := heap.Pop(pq).(pairState)
		k := key(st.x, st.y)
		if d, seen := dists[k]; seen && st.g > d {
			continue // stale entry
		}
		// Once the cheapest unexplored transformation cost alone
		// reaches the current best total, no improvement is possible.
		if st.g >= best {
			break
		}
		settled++
		if settled > e.maxStates {
			return 0, false, fmt.Errorf("%w (limit %d)", ErrStateLimit, e.maxStates)
		}
		base, err := e.dom.Base(st.x, st.y)
		if err != nil {
			return 0, false, err
		}
		if total := st.g + base; total < best {
			best = total
		}
		expand := func(nx, ny Object, cost float64) {
			g := st.g + cost
			if g > budget || g >= best {
				return
			}
			nk := key(nx, ny)
			if prev, seen := dists[nk]; seen && prev <= g {
				return
			}
			dists[nk] = g
			heap.Push(pq, pairState{x: nx, y: ny, g: g})
		}
		xs, err := e.dom.Successors(st.x)
		if err != nil {
			return 0, false, err
		}
		for _, m := range xs {
			expand(m.Result, st.y, m.Cost)
		}
		ys, err := e.dom.Successors(st.y)
		if err != nil {
			return 0, false, err
		}
		for _, m := range ys {
			expand(st.x, m.Result, m.Cost)
		}
	}
	if best <= budget {
		return best, true, nil
	}
	return 0, false, nil
}

// Within reports whether the similarity distance is at most budget.
func (e *Evaluator) Within(x, y Object, budget float64) (bool, error) {
	_, ok, err := e.Distance(x, y, budget)
	return ok, err
}

// Similar filters a set of objects, returning the indexes of those
// within budget of the query — the framework's range query in its
// domain-independent form.
func (e *Evaluator) Similar(query Object, objects []Object, budget float64) ([]int, error) {
	var out []int
	for i, o := range objects {
		ok, err := e.Within(o, query, budget)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, i)
		}
	}
	return out, nil
}
