package query

// The EXPLAIN ANALYZE oracle: for every plan shape (row, batch, sharded
// row, sharded batch), `EXPLAIN ANALYZE <stmt>` must execute the
// statement and return byte-identical columns and rows to the plain
// statement — tracing is an observer, never a participant — while the
// span tree it renders must carry an estimate on every access path, a
// kernel label on every distance-computing operator, and per-shard
// timings on every scatter-gather. A second oracle pins Result.Stats
// parity between the row and vectorized pipelines: the work counters
// are part of the engine's observable contract, so the batch engine
// must report the same candidate/verification/abandon totals as the
// row engine for the same physical decision.

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/rewrite"
)

// analyzeEngine builds the testEngine word database over a plain or
// sharded relation, with the requested vectorized block size (0 = pure
// row-at-a-time).
func analyzeEngine(t *testing.T, shards, batchSize int) *Engine {
	t.Helper()
	var tab relation.Table
	if shards > 1 {
		tab = relation.NewSharded("words", shards)
	} else {
		tab = relation.New("words")
	}
	for _, w := range []struct {
		s    string
		lang string
	}{
		{"color", "en"}, {"colour", "uk"}, {"colon", "en"}, {"cool", "en"},
		{"dolor", "la"}, {"velour", "fr"}, {"clamor", "en"},
	} {
		tab.Insert(w.s, map[string]string{"lang": w.lang})
	}
	cat := relation.NewCatalog()
	cat.Add(tab)
	e := NewEngine(cat)
	if err := e.RegisterRuleSet(rewrite.UnitEdits("abcdefghijklmnopqrstuvwxyz")); err != nil {
		t.Fatal(err)
	}
	weighted := rewrite.MustRuleSet("cheap_vowels", []rewrite.Rule{
		rewrite.Subst('o', 'u', 0.1), rewrite.Subst('u', 'o', 0.1),
		rewrite.Insert('u', 0.2), rewrite.Delete('u', 0.2),
	})
	if err := e.RegisterRuleSet(weighted); err != nil {
		t.Fatal(err)
	}
	e.SetBatchSize(batchSize)
	return e
}

// analyzeStmts is the statement mix the oracle drives through every
// plan shape: index range, filtered range, weighted scan range,
// nearest-k (metric index), weighted nearest (scan), bare scan + limit.
var analyzeStmts = []struct {
	stmt      string
	hasKernel bool // a distance kernel participates
}{
	{`SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits`, true},
	{`SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 2 USING unit-edits AND lang = "en"`, true},
	{`SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 0.3 USING cheap_vowels`, true},
	{`SELECT seq, dist FROM words WHERE seq NEAREST 3 TO "color" USING unit-edits`, true},
	{`SELECT seq, dist FROM words WHERE seq NEAREST 2 TO "color" USING cheap_vowels`, true},
	{`SELECT * FROM words LIMIT 3`, false},
	// The weighted nested-loop join is the one join shape both pipelines
	// execute identically (no batch operator exists for weighted rule
	// sets), so it is safe for the row-vs-batch stats parity oracle too.
	{`SELECT a.seq, b.seq FROM words a, words b ON dist(a.seq, b.seq) <= 0.3 USING cheap_vowels AND a.id != b.id`, true},
}

// analyzeJoinStmts are the join shapes whose physical algorithm depends
// on the execution mode (index in row plans, partition in batch plans),
// so their work counters legitimately differ between pipelines; the
// ANALYZE oracle still pins result identity and span shape for each.
var analyzeJoinStmts = []struct {
	stmt      string
	hasKernel bool
}{
	{`SELECT a.seq, b.seq FROM words a, words b ON dist(a.seq, b.seq) <= 1 USING unit-edits`, true},
	{`SELECT a.seq, c.seq FROM words a, words b, words c ON dist(a.seq, b.seq) <= 1 USING unit-edits AND dist(b.seq, c.seq) <= 1 USING unit-edits`, true},
}

// flattenSpans returns the span tree in preorder.
func flattenSpans(s *obs.Span) []*obs.Span {
	if s == nil {
		return nil
	}
	out := []*obs.Span{s}
	for _, c := range s.Children {
		out = append(out, flattenSpans(c)...)
	}
	return out
}

// checkAnalyzeOracle runs one statement plainly and under EXPLAIN
// ANALYZE and pins result identity plus trace shape.
func checkAnalyzeOracle(t *testing.T, e *Engine, stmt string, hasKernel bool, shards int) {
	t.Helper()
	plain, err := e.Execute(stmt)
	if err != nil {
		t.Fatalf("%q: %v", stmt, err)
	}
	an, err := e.Execute("EXPLAIN ANALYZE " + stmt)
	if err != nil {
		t.Fatalf("EXPLAIN ANALYZE %q: %v", stmt, err)
	}
	if strings.Join(plain.Columns, "\x1f") != strings.Join(an.Columns, "\x1f") {
		t.Fatalf("%q: columns diverge under ANALYZE: %v vs %v", stmt, plain.Columns, an.Columns)
	}
	if positional(plain) != positional(an) {
		t.Fatalf("%q: rows diverge under ANALYZE:\nplain:\n%s\nanalyze:\n%s", stmt, positional(plain), positional(an))
	}
	if an.Trace == nil {
		t.Fatalf("%q: ANALYZE returned no trace", stmt)
	}
	if an.Plan == "" || !strings.Contains(an.Plan, "rows=") || !strings.Contains(an.Plan, "time=") {
		t.Fatalf("%q: ANALYZE plan lacks actuals:\n%s", stmt, an.Plan)
	}
	if plain.Trace != nil {
		t.Fatalf("%q: untraced execution leaked a trace", stmt)
	}

	all := flattenSpans(an.Trace)
	var sawEst, sawKernel bool
	for _, s := range all {
		if s.Op == "" {
			t.Fatalf("%q: span with empty operator label:\n%s", stmt, an.Plan)
		}
		if s.EstRows >= 0 {
			sawEst = true
		}
		if s.Kernel != "" {
			sawKernel = true
		}
		// Every leaf is an access path and must carry a planner estimate
		// (est-vs-actual is the whole point of ANALYZE).
		if len(s.Children) == 0 && s.EstRows < 0 {
			t.Fatalf("%q: leaf span %s has no estimate:\n%s", stmt, s.Op, an.Plan)
		}
	}
	if !sawEst {
		t.Fatalf("%q: no span carries an estimate:\n%s", stmt, an.Plan)
	}
	if sawKernel != hasKernel {
		t.Fatalf("%q: kernel label presence = %v, want %v:\n%s", stmt, sawKernel, hasKernel, an.Plan)
	}
	if hasKernel && !strings.Contains(an.Plan, "kernel=") {
		t.Fatalf("%q: rendered plan lacks kernel label:\n%s", stmt, an.Plan)
	}

	// The root span's row count is the statement's result cardinality.
	if an.Trace.Rows != int64(len(plain.Rows)) {
		t.Fatalf("%q: root span rows=%d, result has %d:\n%s", stmt, an.Trace.Rows, len(plain.Rows), an.Plan)
	}

	if shards > 1 {
		var gather *obs.Span
		for _, s := range all {
			if len(s.Shards) > 0 {
				gather = s
				break
			}
		}
		if gather == nil {
			t.Fatalf("%q: sharded trace has no shard timings:\n%s", stmt, an.Plan)
		}
		if len(gather.Shards) != shards {
			t.Fatalf("%q: gather has %d shard timings, want %d:\n%s", stmt, len(gather.Shards), shards, an.Plan)
		}
		for i, sh := range gather.Shards {
			if sh.Shard != i {
				t.Fatalf("%q: shard timing %d labeled shard %d", stmt, i, sh.Shard)
			}
		}
		// The fan-out below the gather merges one span per shard instance.
		for _, c := range gather.Children {
			if c.Instances != shards {
				t.Fatalf("%q: merged child %s has %d instances, want %d:\n%s", stmt, c.Op, c.Instances, shards, an.Plan)
			}
		}
	}
}

func TestAnalyzeOracleRow(t *testing.T) {
	e := analyzeEngine(t, 1, 0)
	for _, c := range analyzeStmts {
		checkAnalyzeOracle(t, e, c.stmt, c.hasKernel, 1)
	}
}

func TestAnalyzeOracleBatch(t *testing.T) {
	e := analyzeEngine(t, 1, 4)
	for _, c := range analyzeStmts {
		checkAnalyzeOracle(t, e, c.stmt, c.hasKernel, 1)
	}
}

func TestAnalyzeOracleSharded(t *testing.T) {
	e := analyzeEngine(t, 3, 0)
	for _, c := range analyzeStmts {
		checkAnalyzeOracle(t, e, c.stmt, c.hasKernel, 3)
	}
}

func TestAnalyzeOracleShardedBatch(t *testing.T) {
	e := analyzeEngine(t, 3, 4)
	for _, c := range analyzeStmts {
		checkAnalyzeOracle(t, e, c.stmt, c.hasKernel, 3)
	}
}

// TestAnalyzeJoinOracle drives the mode-dependent join shapes through
// every plan family: the row engine's index-nested-loop, the batch
// engine's partition join, and the sharded broadcast variant of each
// must all satisfy the ANALYZE contract (result identity, estimates on
// leaves, kernel labels, per-shard gather timings).
func TestAnalyzeJoinOracle(t *testing.T) {
	for _, shards := range []int{1, 3} {
		for _, batch := range []int{0, 4} {
			e := analyzeEngine(t, shards, batch)
			for _, c := range analyzeJoinStmts {
				checkAnalyzeOracle(t, e, c.stmt, c.hasKernel, shards)
			}
		}
	}
}

// TestAnalyzeStatsParityRowVsBatch pins Result.Stats consistency across
// the row and vectorized pipelines at the same shard topology: the same
// physical decision must report the same work counters.
func TestAnalyzeStatsParityRowVsBatch(t *testing.T) {
	for _, shards := range []int{1, 3} {
		row := analyzeEngine(t, shards, 0)
		batch := analyzeEngine(t, shards, 4)
		for _, c := range analyzeStmts {
			r, err := row.Execute(c.stmt)
			if err != nil {
				t.Fatalf("shards=%d %q: %v", shards, c.stmt, err)
			}
			b, err := batch.Execute(c.stmt)
			if err != nil {
				t.Fatalf("shards=%d %q: %v", shards, c.stmt, err)
			}
			if r.Stats.Candidates != b.Stats.Candidates ||
				r.Stats.Verifications != b.Stats.Verifications ||
				r.Stats.Abandoned != b.Stats.Abandoned {
				t.Errorf("shards=%d %q: stats diverge:\nrow:   %+v\nbatch: %+v",
					shards, c.stmt, r.Stats, b.Stats)
			}
		}
	}
}

// TestAnalyzeTracingToggle pins the SetTracing contract: traces appear
// only while the flag is on, and a traced plain execution keeps the
// static plan rendering (only ANALYZE swaps in the actuals).
func TestAnalyzeTracingToggle(t *testing.T) {
	e := analyzeEngine(t, 1, 0)
	const stmt = `SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits`

	res, err := e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace collected with tracing off")
	}

	e.SetTracing(true)
	if !e.Tracing() {
		t.Fatal("Tracing() = false after SetTracing(true)")
	}
	res, err = e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace with tracing on")
	}
	if strings.Contains(res.Plan, "rows=") {
		t.Fatalf("plain traced execution rendered actuals into Plan:\n%s", res.Plan)
	}

	e.SetTracing(false)
	res, err = e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace collected after SetTracing(false)")
	}
}

// TestAnalyzeDMLRejected pins the parser guard: EXPLAIN ANALYZE
// executes its statement, so analyzed DML would commit as a side effect
// of asking for a plan — it must be rejected up front.
func TestAnalyzeDMLRejected(t *testing.T) {
	e := analyzeEngine(t, 1, 0)
	for _, stmt := range []string{
		`EXPLAIN ANALYZE INSERT INTO words (seq, lang) VALUES ("x", "en")`,
		`EXPLAIN ANALYZE DELETE FROM words WHERE lang = "en"`,
		`EXPLAIN ANALYZE UPDATE words SET seq = "y" WHERE lang = "en"`,
	} {
		if _, err := e.Execute(stmt); err == nil {
			t.Errorf("%q succeeded, want error", stmt)
		} else if !strings.Contains(err.Error(), "DML") {
			t.Errorf("%q: error %q does not name DML", stmt, err)
		}
	}
}
