package query

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/index"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

// storedEngine builds an engine over a WAL-backed store with one
// relation "w" and unit edits registered.
func storedEngine(t *testing.T, dir string) (*Engine, *storage.Store, *relation.Relation) {
	t.Helper()
	cat := relation.NewCatalog()
	w := relation.New("w")
	cat.Add(w)
	st, err := storage.Open(filepath.Join(dir, "wal.log"), cat)
	if err != nil {
		t.Fatal(err)
	}
	st.SetSync(false)
	e := NewEngine(cat)
	e.SetStore(st)
	if err := e.RegisterRuleSet(rewrite.UnitEdits("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	return e, st, w
}

// sortedRows renders result rows as sorted strings for byte-identical
// comparison across access paths.
func sortedRows(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "|")
	}
	sort.Strings(out)
	return out
}

// TestWALReplayAndIndexIdentity10k is the PR's acceptance test: after
// 10k interleaved INSERT/DELETE/UPDATE ops, (1) index-backed query
// results are byte-identical to the same query answered by a freshly
// built index and by a full verify-scan oracle, (2) results stay
// byte-identical after forced compaction rebuilds the structures, and
// (3) reopening the store replays the WAL to the identical committed
// state.
func TestWALReplayAndIndexIdentity10k(t *testing.T) {
	dir := t.TempDir()
	e, st, w := storedEngine(t, dir)

	rng := rand.New(rand.NewSource(1995))
	randWord := func() string {
		b := make([]byte, 3+rng.Intn(8))
		for j := range b {
			b[j] = byte('a' + rng.Intn(10))
		}
		return string(b)
	}

	// Seed rows, then touch the index so the remaining ops exercise
	// online maintenance rather than a fresh build at the end.
	var ids []int
	for i := 0; i < 200; i++ {
		id, err := st.Insert("w", randWord(), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	exp, err := e.Execute(`EXPLAIN SELECT * FROM w WHERE seq SIMILAR TO "abcde" WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.Plan, "IndexRange") {
		t.Fatalf("range query not index-backed: %s", exp.Plan)
	}

	// 10k interleaved ops: most through the store's write path, a
	// sampled slice through the SQL DML layer so every stack is hit.
	insStmt, err := e.Prepare(`INSERT INTO w (seq) VALUES (?)`)
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 10000; op++ {
		switch {
		case len(ids) < 50 || rng.Intn(10) < 5: // insert
			if op%10 == 0 {
				if _, err := insStmt.Execute(randWord()); err != nil {
					t.Fatal(err)
				}
				// The id is assigned inside the engine; recover it from
				// the relation — we only need some live ids for deletes.
				ts := w.Tuples()
				ids = append(ids, ts[len(ts)-1].ID)
			} else {
				id, err := st.Insert("w", randWord(), map[string]string{"n": fmt.Sprint(op)})
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
		case rng.Intn(2) == 0: // delete
			i := rng.Intn(len(ids))
			if ok, err := st.Delete("w", ids[i]); err != nil {
				t.Fatal(err)
			} else if ok {
				ids = append(ids[:i], ids[i+1:]...)
			}
		default: // update
			i := rng.Intn(len(ids))
			nid, ok, err := st.Update("w", ids[i], randWord(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				ids[i] = nid
			}
		}
	}

	// (1) Index-backed results vs fresh index vs scan oracle.
	targets := []string{"abcde", "jihgf", "aaaa", "bcdfg", randWord()}
	type qres struct{ rows []string }
	results := map[string]qres{}
	for _, target := range targets {
		for _, radius := range []int{0, 1, 2} {
			q := fmt.Sprintf(`SELECT * FROM w WHERE seq SIMILAR TO %q WITHIN %d USING unit-edits`, target, radius)
			res, err := e.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			got := sortedRows(res.Rows)

			fresh := index.NewBKTree()
			for _, tp := range w.Tuples() {
				fresh.Insert(tp.ID, tp.Seq)
			}
			var want []string
			for _, m := range fresh.Range(target, radius) {
				want = append(want, fmt.Sprintf("%d|%s|%d", m.ID, m.S, int(m.Dist)))
			}
			sort.Strings(want)
			if !reflect.DeepEqual(got, append([]string{}, want...)) {
				t.Fatalf("q=%s: index-backed rows diverge from fresh rebuild:\n got %v\nwant %v", q, got, want)
			}

			scan, _ := index.Scan(w.Entries(), target, float64(radius), index.UnitVerifier)
			var wantScan []string
			for _, m := range scan {
				wantScan = append(wantScan, fmt.Sprintf("%d|%s|%d", m.ID, m.S, int(m.Dist)))
			}
			sort.Strings(wantScan)
			if !reflect.DeepEqual(got, append([]string{}, wantScan...)) {
				t.Fatalf("q=%s: index-backed rows diverge from verify-scan oracle", q)
			}
			results[q] = qres{rows: got}
		}
	}

	// (2) Forced compaction rebuilds arena + indexes; answers must not
	// move a byte.
	w.Compact()
	for q, want := range results {
		res, err := e.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if got := sortedRows(res.Rows); !reflect.DeepEqual(got, want.rows) {
			t.Fatalf("q=%s: post-compaction rows changed", q)
		}
	}

	// (3) Kill (no Close) + reopen replays the WAL to identical state.
	wantTuples := w.Tuples()
	cat2 := relation.NewCatalog()
	cat2.Add(relation.New("w"))
	st2, err := storage.Open(filepath.Join(dir, "wal.log"), cat2)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	w2, _ := cat2.Get("w")
	if got := w2.Tuples(); !reflect.DeepEqual(got, wantTuples) {
		t.Fatalf("replayed state diverges: %d vs %d rows", len(got), len(wantTuples))
	}
	e2 := NewEngine(cat2)
	if err := e2.RegisterRuleSet(rewrite.UnitEdits("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	for q, want := range results {
		res, err := e2.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if got := sortedRows(res.Rows); !reflect.DeepEqual(got, want.rows) {
			t.Fatalf("q=%s: replayed engine rows diverge", q)
		}
	}
}

// TestSnapshotIsolationDuringQueries is the readers-never-block-writers
// acceptance test at the engine level: concurrent UPDATE commits keep
// the live row count constant, so every query — each reading one MVCC
// snapshot — must observe exactly that count, never a torn state.
// Run with -race this also proves the read path takes no locks a
// writer could block on.
func TestSnapshotIsolationDuringQueries(t *testing.T) {
	dir := t.TempDir()
	e, _, w := storedEngine(t, dir)
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := e.Execute(fmt.Sprintf(`INSERT INTO w (seq, k) VALUES ("seed%04d", "%d")`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Build the indexes so index plans participate.
	w.BKTree()
	w.Trie()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 8)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.Execute(`SELECT * FROM w`)
				if err != nil {
					errc <- err
					return
				}
				if len(res.Rows) != n {
					errc <- fmt.Errorf("reader %d saw %d rows, want %d (torn snapshot)", r, len(res.Rows), n)
					return
				}
				res, err = e.Execute(fmt.Sprintf(`SELECT * FROM w WHERE seq SIMILAR TO "seed%04d" WITHIN 1 USING unit-edits`, (r*37+i)%n))
				if err != nil {
					errc <- err
					return
				}
			}
		}(r)
	}
	// Writer: every UPDATE is one commit that deletes one version and
	// inserts its replacement, so the live count never moves.
	for i := 0; i < 400; i++ {
		k := i % n
		stmt := fmt.Sprintf(`UPDATE w SET seq = "seed%04d" WHERE k = "%d"`, k, k)
		if _, err := e.Execute(stmt); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
