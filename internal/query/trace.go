package query

// Per-operator runtime tracing for EXPLAIN ANALYZE and the slow-query
// log. When execCtx.traced is set, the planner wraps every operator it
// constructs in a span wrapper (tr for row operators, trB for batch
// operators) that times Open/Next/Close inclusively and counts emitted
// rows. After the plan runs, extractTrace walks the wrapped tree and
// assembles an obs.Span tree mirroring the physical plan, with each
// operator's planner estimate next to its observed actuals.
//
// Tracing off is the common case, so tr/trB return the operator
// unchanged when the context is untraced: the pipeline layout, the
// per-row call chain and the allocation profile of an untraced query
// are byte-for-byte those of a build without this file.

import (
	"time"

	"repro/internal/obs"
	"repro/internal/relation"
)

// opStatser is implemented by operators that retain their work counters
// across Close for span attribution (the `last` field convention).
type opStatser interface{ opStats() ExecStats }

// instanced is implemented by fan-out operators (Parallel, GatherMerge)
// that can expose the per-shard pipelines which actually executed; the
// extractor merges their span trees in lockstep into one logical child.
type instanced interface{ executedInstances() []any }

// shardTimer is implemented by scatter-gather operators that record
// per-shard drain timings when traced.
type shardTimer interface{ shardTimings() []obs.ShardTiming }

// tr wraps a row operator in a span recorder when the context is
// traced; est is the planner's cardinality estimate (-1 = no estimate)
// and kernel names the distance kernel the operator dispatches to ("" =
// none).
func tr(c *execCtx, op Operator, est float64, kernel string) Operator {
	if !c.traced {
		return op
	}
	return &spanOp{inner: op, est: est, kernel: kernel}
}

// trB is tr for batch operators.
func trB(c *execCtx, op BatchOperator, est float64, kernel string) BatchOperator {
	if !c.traced {
		return op
	}
	return &batchSpanOp{inner: op, est: est, kernel: kernel}
}

// spanOp decorates a row operator with inclusive wall-time and row
// accounting. It is transparent to EXPLAIN rendering: Describe and
// Children delegate to the wrapped operator, whose children are
// themselves span-wrapped, so the rendered tree is unchanged.
type spanOp struct {
	inner  Operator
	est    float64
	kernel string

	rows   int64
	wallNS int64
}

func (o *spanOp) Open() error {
	start := time.Now()
	err := o.inner.Open()
	o.wallNS += time.Since(start).Nanoseconds()
	return err
}

func (o *spanOp) Next() (*binding, error) {
	start := time.Now()
	b, err := o.inner.Next()
	o.wallNS += time.Since(start).Nanoseconds()
	if b != nil {
		o.rows++
	}
	return b, err
}

func (o *spanOp) Close() error {
	start := time.Now()
	err := o.inner.Close()
	o.wallNS += time.Since(start).Nanoseconds()
	return err
}

func (o *spanOp) Describe() string     { return o.inner.Describe() }
func (o *spanOp) Children() []Operator { return o.inner.Children() }

// recycle forwards a consumer's rejected binding to the wrapped
// operator (a filter above a traced scan must still reach the scan's
// recycler, or tracing would silently change the allocation profile).
func (o *spanOp) recycle(b *binding) {
	if r, ok := o.inner.(recycler); ok {
		r.recycle(b)
	}
}

// batchSpanOp is spanOp for the batch pipeline; rows accumulate by
// block length and Batches counts the blocks.
type batchSpanOp struct {
	inner  BatchOperator
	est    float64
	kernel string

	rows    int64
	batches int64
	wallNS  int64
}

func (o *batchSpanOp) OpenBatch() error {
	start := time.Now()
	err := o.inner.OpenBatch()
	o.wallNS += time.Since(start).Nanoseconds()
	return err
}

func (o *batchSpanOp) NextBatch() (*Batch, error) {
	start := time.Now()
	b, err := o.inner.NextBatch()
	o.wallNS += time.Since(start).Nanoseconds()
	if b != nil {
		o.rows += int64(b.Len())
		o.batches++
	}
	return b, err
}

func (o *batchSpanOp) CloseBatch() error {
	start := time.Now()
	err := o.inner.CloseBatch()
	o.wallNS += time.Since(start).Nanoseconds()
	return err
}

func (o *batchSpanOp) Describe() string  { return o.inner.Describe() }
func (o *batchSpanOp) childNodes() []any { return o.inner.childNodes() }

// extractSpan converts one node of an executed, traced operator tree
// into its span. Unwrapped nodes (adapters, pseudo-roots, fan-out
// internals) get a label-only span so the trace never loses tree
// structure.
func extractSpan(node any) *obs.Span {
	switch n := node.(type) {
	case *spanOp:
		return spanFrom(n.inner, n.est, n.kernel, n.rows, 0, n.wallNS)
	case *batchSpanOp:
		return spanFrom(n.inner, n.est, n.kernel, n.rows, n.batches, n.wallNS)
	default:
		return spanFrom(node, -1, "", 0, 0, 0)
	}
}

// spanFrom assembles the span for an unwrapped operator: label, work
// counters, shard timings, and children — either the lockstep merge of
// the executed fan-out instances or the recursive extraction of the
// plan children.
func spanFrom(inner any, est float64, kernel string, rows, batches, wallNS int64) *obs.Span {
	sp := &obs.Span{
		Op:      describeNode(inner),
		Kernel:  kernel,
		EstRows: est,
		Rows:    rows,
		Batches: batches,
		WallNS:  wallNS,
	}
	if os, ok := inner.(opStatser); ok {
		st := os.opStats()
		sp.Candidates = int64(st.Candidates)
		sp.Verifications = int64(st.Verifications)
		sp.IndexNodes = int64(st.Nodes)
		sp.IndexPruned = int64(st.Pruned)
		sp.Abandoned = int64(st.Abandoned)
	}
	if st, ok := inner.(shardTimer); ok {
		sp.Shards = st.shardTimings()
	}
	if inst, ok := inner.(instanced); ok {
		if merged := mergeInstanceSpans(inst.executedInstances()); merged != nil {
			sp.Children = append(sp.Children, merged)
			return sp
		}
	}
	for _, k := range childNodesOf(inner) {
		sp.Children = append(sp.Children, extractSpan(k))
	}
	return sp
}

// mergeInstanceSpans folds the executed instances of a fan-out operator
// (all structurally identical pipelines) into one span tree: counters
// add, wall time takes the per-level maximum, children merge in
// lockstep. Returns nil when no instances were recorded (untraced).
func mergeInstanceSpans(instances []any) *obs.Span {
	var merged *obs.Span
	for _, in := range instances {
		s := extractSpan(in)
		if merged == nil {
			merged = s
			continue
		}
		mergeSpanTrees(merged, s)
	}
	return merged
}

// mergeSpanTrees merges o into s recursively, pairing children by
// position (fan-out instances share one pipeline shape, so the trees
// are congruent by construction).
func mergeSpanTrees(s, o *obs.Span) {
	s.Merge(o)
	for i := range s.Children {
		if i < len(o.Children) {
			mergeSpanTrees(s.Children[i], o.Children[i])
		}
	}
}

// ------------------------------------------------ cardinality estimates
//
// The numbers annotated on spans come from the same primitives the cost
// model ranks plans with (cost.go), so est-vs-actual gaps in EXPLAIN
// ANALYZE point directly at the selectivity formula a later PR can
// recalibrate from observed spans.

// estOf reads the planner estimate recorded on a wrapped operator (-1
// when the operator is unwrapped or carries no estimate), letting
// decorators inherit their child's estimate without extra plumbing.
func estOf(op Operator) float64 {
	if s, ok := op.(*spanOp); ok {
		return s.est
	}
	return -1
}

// estOfBatch is estOf for batch operators.
func estOfBatch(op BatchOperator) float64 {
	if s, ok := op.(*batchSpanOp); ok {
		return s.est
	}
	return -1
}

// estRangeRows estimates the output cardinality of a string range
// access: the cost model's range selectivity times the relation size.
func estRangeRows(st relation.Stats, radius float64) float64 {
	return selRange(st, radius) * float64(st.Count)
}

// estVecRangeRows estimates the output cardinality of a vector range
// access. There is no principled vector selectivity without a
// distance-distribution sketch, so the VP-tree cost model's visited
// fraction serves as the proxy (coarse, like every estimate here).
func estVecRangeRows(st relation.Stats, radius float64) float64 {
	frac := 0.25 * (radius + 1)
	if frac > 1 {
		frac = 1
	}
	return frac * float64(st.VecCount)
}

// estNearestRows: NEAREST k emits exactly min(k, population) rows.
func estNearestRows(population, k int) float64 {
	if population < k {
		return float64(population)
	}
	return float64(k)
}

// estFilterRows scales a child estimate by the filter predicate's
// selectivity: the first similarity conjunct's radius drives the same
// selRange formula the planner costs with; predicates without a
// similarity conjunct keep the child estimate (no attribute statistics
// yet).
func estFilterRows(st relation.Stats, pred Expr, childEst float64) float64 {
	if childEst < 0 {
		return -1
	}
	if r, ok := firstSimRadius(pred); ok {
		return selRange(st, r) * childEst
	}
	return childEst
}

// estLimitRows caps a child estimate at the limit.
func estLimitRows(n int, childEst float64) float64 {
	if childEst >= 0 && childEst < float64(n) {
		return childEst
	}
	return float64(n)
}

// firstSimRadius finds the radius of the first similarity conjunct in a
// predicate tree, in evaluation order.
func firstSimRadius(ex Expr) (float64, bool) {
	switch ex := ex.(type) {
	case SimExpr:
		return ex.Radius, true
	case AndExpr:
		if r, ok := firstSimRadius(ex.L); ok {
			return r, true
		}
		return firstSimRadius(ex.R)
	case OrExpr:
		if r, ok := firstSimRadius(ex.L); ok {
			return r, true
		}
		return firstSimRadius(ex.R)
	case NotExpr:
		return firstSimRadius(ex.E)
	}
	return 0, false
}

// shardStats scales relation statistics to one shard of n (matching
// decideSingle's per-shard costing).
func shardStats(st relation.Stats, n int) relation.Stats {
	if n > 1 {
		st.Count = (st.Count + n - 1) / n
		st.VecCount = (st.VecCount + n - 1) / n
	}
	return st
}

// extractTrace assembles the span tree of an executed traced plan; nil
// when the plan was not traced. Vectorized plans root the trace at the
// Vectorize pseudo-node with the top operator's totals lifted onto it,
// matching EXPLAIN's rendering of the same tree.
func (p *compiledPlan) extractTrace() *obs.Span {
	if p.ctx == nil || !p.ctx.traced {
		return nil
	}
	if p.broot != nil {
		child := extractSpan(p.broot)
		root := &obs.Span{
			Op:       (&vectorizeNode{child: p.broot, size: p.batchSize, kernel: p.kernel}).Describe(),
			EstRows:  -1,
			Rows:     child.Rows,
			Batches:  child.Batches,
			WallNS:   child.WallNS,
			Children: []*obs.Span{child},
		}
		return root
	}
	if p.root == nil {
		return nil
	}
	return extractSpan(p.root)
}
