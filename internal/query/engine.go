package query

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/editdp"
	"repro/internal/metric"
	"repro/internal/obs"
	"repro/internal/patdist"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/transform"
)

// Engine binds a catalog of relations to a registry of rule sets and
// executes queries. Safe for concurrent query execution.
type Engine struct {
	catalog *relation.Catalog

	mu        sync.RWMutex
	rulesets  map[string]*rewrite.RuleSet
	calcs     map[string]*editdp.Calculator // edit-like rule sets only
	generals  map[string]*transform.Engine  // everything decidable
	patterns  map[string]*pattern.Pattern   // compiled pattern cache
	rsVersion uint64                        // bumped per RegisterRuleSet; part of cache keys
	plans     *planCache                    // statement text -> (query, decision); nil disables
	store     *storage.Store                // durable write path; nil = direct catalog mutation

	parallelism     int // workers for Parallel plans (<=1 disables)
	parallelMinRows int // outer-relation size that justifies sharding
	batchSize       int // rows per block for vectorized plans (<=0 disables)

	// tracing forces span collection on every execution (the slow-query
	// log's hook); EXPLAIN ANALYZE traces its own statement regardless.
	tracing atomic.Bool
}

// parallelDefaultMinRows is the default outer-relation size below which
// sharding overhead outweighs the parallel speedup.
const parallelDefaultMinRows = 4096

// defaultBatchSize is the default vectorized block size: large enough
// to amortize per-block costs across the pipeline, small enough that a
// block of tuple references stays cache-resident (see EXPERIMENTS.md
// for the 1/64/256/1024 sweep).
const defaultBatchSize = 256

// Option configures an Engine at construction time. Options are the
// primary configuration surface — NewEngine(cat, WithBatchSize(256),
// WithTracing(true)) reads as one coherent call — while the Set*
// methods remain as thin runtime wrappers for knobs that change after
// construction (the serving layer flips tracing on live engines).
type Option func(*Engine)

// WithBatchSize sets the vectorized block size; n <= 0 disables
// vectorization. Equivalent to SetBatchSize.
func WithBatchSize(n int) Option { return func(e *Engine) { e.SetBatchSize(n) } }

// WithParallelism sets the worker count for parallel scan/join plans.
// Equivalent to SetParallelism.
func WithParallelism(n int) Option { return func(e *Engine) { e.SetParallelism(n) } }

// WithParallelMinRows sets the outer-relation size from which the
// planner shards work across workers. Equivalent to SetParallelMinRows.
func WithParallelMinRows(n int) Option { return func(e *Engine) { e.SetParallelMinRows(n) } }

// WithPlanCacheSize sets the plan-cache capacity; n <= 0 disables plan
// caching. Equivalent to SetPlanCacheSize.
func WithPlanCacheSize(n int) Option { return func(e *Engine) { e.SetPlanCacheSize(n) } }

// WithTracing toggles engine-wide span collection. Equivalent to
// SetTracing.
func WithTracing(on bool) Option { return func(e *Engine) { e.SetTracing(on) } }

// NewEngine returns an engine over the catalog with no rule sets
// registered, configured by the given options (defaults: vectorized
// blocks of 256, GOMAXPROCS workers, a 512-entry plan cache, tracing
// off).
func NewEngine(cat *relation.Catalog, opts ...Option) *Engine {
	e := &Engine{
		catalog:         cat,
		rulesets:        make(map[string]*rewrite.RuleSet),
		calcs:           make(map[string]*editdp.Calculator),
		generals:        make(map[string]*transform.Engine),
		patterns:        make(map[string]*pattern.Pattern),
		plans:           newPlanCache(defaultPlanCacheSize),
		parallelism:     runtime.GOMAXPROCS(0),
		parallelMinRows: parallelDefaultMinRows,
		batchSize:       defaultBatchSize,
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// SetBatchSize sets the block size for vectorized (batch-at-a-time)
// plans; n <= 0 disables vectorization entirely and every plan builds
// the row-at-a-time pipeline. The knob is part of every plan-cache and
// prepared-decision key, so changing it can never serve a plan built
// for the other execution mode.
func (e *Engine) SetBatchSize(n int) {
	if n < 0 {
		n = 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.batchSize = n
}

// BatchSize returns the configured vectorized block size (0 when the
// batch path is disabled).
func (e *Engine) BatchSize() int { return e.batchConfig() }

func (e *Engine) batchConfig() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.batchSize
}

// SetParallelism sets the worker count for parallel scan/join plans;
// n = 1 forces serial execution. Zero and negative values clamp to 1
// rather than being stored verbatim, so no plan ever computes with a
// nonsensical worker count.
func (e *Engine) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.parallelism = n
}

// SetParallelMinRows sets the outer-relation size from which the
// planner shards scans and joins across workers.
func (e *Engine) SetParallelMinRows(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.parallelMinRows = n
}

func (e *Engine) parallelConfig() (workers, minRows int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.parallelism, e.parallelMinRows
}

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *relation.Catalog { return e.catalog }

// RegisterRuleSet makes a rule set available to USING clauses under its
// own name. Edit-like sets get a DP calculator; all sets within the
// decidable regime get a general search engine.
func (e *Engine) RegisterRuleSet(rs *rewrite.RuleSet) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rsVersion++ // invalidates cached plans whose costing saw the old registry
	e.rulesets[rs.Name()] = rs
	if rs.EditLike() {
		c, err := editdp.New(rs)
		if err != nil {
			return err
		}
		e.calcs[rs.Name()] = c
	}
	g, err := transform.NewEngine(rs)
	if err != nil {
		// Zero-cost growth: still allow the DP path if edit-like.
		if e.calcs[rs.Name()] == nil {
			return fmt.Errorf("query: rule set %q unusable: %w", rs.Name(), err)
		}
		return nil
	}
	e.generals[rs.Name()] = g
	return nil
}

// RuleSets returns the registered rule set names, sorted.
func (e *Engine) RuleSets() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.rulesets))
	for n := range e.rulesets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (e *Engine) ruleset(name string) (*rewrite.RuleSet, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rs, ok := e.rulesets[name]
	if !ok {
		return nil, fmt.Errorf("query: unknown rule set %q", name)
	}
	return rs, nil
}

func (e *Engine) calc(name string) *editdp.Calculator {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.calcs[name]
}

func (e *Engine) general(name string) *transform.Engine {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.generals[name]
}

func (e *Engine) compilePattern(src string) (*pattern.Pattern, error) {
	e.mu.RLock()
	p, ok := e.patterns[src]
	e.mu.RUnlock()
	if ok {
		return p, nil
	}
	p, err := pattern.Compile(src)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.patterns[src] = p
	e.mu.Unlock()
	return p, nil
}

// unitCost reports whether the rule set induces the plain unit edit
// distance, which licenses the metric indexes.
func unitCost(rs *rewrite.RuleSet) bool {
	if !rs.EditLike() || !rs.Symmetric() {
		return false
	}
	for _, r := range rs.Rules() {
		if r.Cost != 1 {
			return false
		}
	}
	return true
}

// Result is the outcome of a query.
type Result struct {
	Columns []string
	Rows    [][]string
	Plan    string    // rendered operator tree; the whole payload for EXPLAIN
	Stats   ExecStats // work counters from the access paths
	// Trace is the per-operator runtime span tree; non-nil only when the
	// execution was traced (EXPLAIN ANALYZE, or SetTracing(true)).
	Trace *obs.Span
}

// SetTracing toggles span collection for every subsequent execution.
// Traced plans pay a per-operator timing wrapper (see trace.go); the
// serving layer enables this only when a slow-query log is configured.
func (e *Engine) SetTracing(on bool) { e.tracing.Store(on) }

// Tracing reports whether engine-wide span collection is on.
func (e *Engine) Tracing() bool { return e.tracing.Load() }

// rulesetVersion returns the rule-set registry mutation counter.
func (e *Engine) rulesetVersion() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.rsVersion
}

// planCacheRef returns the current plan cache (nil when disabled).
func (e *Engine) planCacheRef() *planCache {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.plans
}

// SetPlanCacheSize resizes the plan cache to hold n entries, dropping
// the current contents; n <= 0 disables plan caching entirely.
func (e *Engine) SetPlanCacheSize(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n <= 0 {
		e.plans = nil
		return
	}
	e.plans = newPlanCache(n)
}

// CacheStats snapshots the plan cache's hit/miss counters; all zero
// when caching is disabled.
func (e *Engine) CacheStats() CacheStats {
	if c := e.planCacheRef(); c != nil {
		return c.Stats()
	}
	return CacheStats{}
}

// cacheEpoch is the part of every plan-cache key that tracks engine
// state: catalog statistics, the shard topology, the rule-set registry,
// the parallel configuration and the vectorized block size. Any change
// to these may change a costing decision — or, for the shard signature
// and the batch size, the physical shape of every plan — so it must
// start a fresh key space. batchSize is passed in rather than read
// here so the caller keys and decides against one consistent read of
// the knob (see decideWith).
func (e *Engine) cacheEpoch(batchSize int) string {
	workers, minRows := e.parallelConfig()
	// The bit-parallel kernel toggle is part of the epoch: decisions
	// record which kernel serves the plan, so flipping the knob must
	// start a fresh key space rather than surface stale kernel labels.
	kernel := 0
	if editdp.BitParallelEnabled() {
		kernel = 1
	}
	// metric.Version() tracks the distance-metric registry the same way
	// rsVersion tracks rule sets: registering a metric may change which
	// USING names resolve, so it starts a fresh key space too.
	return fmt.Sprintf("%d|%d|%d|%d|%d|%d|%d|%s", e.catalog.StatsVersion(), e.rulesetVersion(), workers, minRows,
		batchSize, kernel, metric.Version(), e.catalog.ShardSignature())
}

// normalizeQueryText canonicalises statement text for cache keying:
// runs of whitespace outside string literals collapse to one space.
// Literal contents are preserved byte-for-byte (including escapes), so
// two statements that differ only inside a quoted string never share a
// key. Case is preserved — rule-set names and literals are
// case-sensitive.
func normalizeQueryText(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inStr {
			b.WriteByte(c)
			switch {
			case c == '\\' && i+1 < len(src):
				i++
				b.WriteByte(src[i])
			case c == '"':
				inStr = false
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			pendingSpace = b.Len() > 0
		default:
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			if c == '"' {
				inStr = true
			}
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Execute parses and runs one statement — SELECT or DML. SELECTs are
// looked up in the plan cache first: a hit skips the lexer, the parser
// and the cost-based planner and goes straight to operator-tree
// construction. DML bypasses the cache (its read phase is planned per
// execution) and, by committing, bumps Catalog.StatsVersion so every
// cached plan keyed on the old statistics is invalidated.
// Parameterized statements cannot run here — use Prepare.
func (e *Engine) Execute(src string) (*Result, error) {
	cache := e.planCacheRef()
	if cache == nil || isDMLText(src) {
		stmt, err := ParseStatement(src)
		if err != nil {
			return nil, err
		}
		switch s := stmt.(type) {
		case *Mutation:
			return e.ExecuteMutation(s)
		default:
			return e.ExecuteQuery(stmt.(*Query))
		}
	}
	batchSize := e.batchConfig()
	key := e.cacheEpoch(batchSize) + "|" + normalizeQueryText(src)
	if ent, ok := cache.get(key); ok {
		// Only a failure to *build* the tree (a stale or poisoned entry)
		// falls through to the uncached path; once a tree builds, its
		// execution outcome — including runtime errors — is final, so an
		// erroring statement is never executed twice.
		if plan, err := e.buildPlan(ent.q, ent.d); err == nil {
			res, err := e.finishPlan(ent.q, plan)
			if err == nil {
				res.Stats.PlanCacheHit = true
			}
			return res, err
		}
		mReplans.Inc()
	}
	stmt, err := ParseStatement(src)
	if err != nil {
		return nil, err
	}
	m, ok := stmt.(*Mutation)
	if ok {
		// Defensive: a DML statement that slipped past the text sniff
		// still executes correctly, just without the cache bypass.
		return e.ExecuteMutation(m)
	}
	q := stmt.(*Query)
	// Decide with the same batch-size read the key was built from: the
	// cached decision's vectorize flag must belong to the key's epoch
	// even if SetBatchSize lands concurrently.
	d, err := e.decideWith(q, batchSize)
	if err != nil {
		return nil, err
	}
	cache.put(key, q, d)
	return e.runDecided(q, d)
}

// ExecuteQuery runs a parsed (or hand-built) statement, planning from
// scratch.
func (e *Engine) ExecuteQuery(q *Query) (*Result, error) {
	d, err := e.decide(q)
	if err != nil {
		return nil, err
	}
	return e.runDecided(q, d)
}

// runDecided builds the operator tree for a decided query and drives
// it (or renders it, for EXPLAIN).
func (e *Engine) runDecided(q *Query, d *planDecision) (*Result, error) {
	plan, err := e.buildPlan(q, d)
	if err != nil {
		return nil, err
	}
	return e.finishPlan(q, plan)
}

// finishPlan drives a built plan to completion, or renders it for
// EXPLAIN. EXPLAIN ANALYZE takes the execution path: the statement runs
// to completion with tracing on, the result rows are exactly the plain
// statement's (the analyze oracle pins that), and Plan carries the span
// tree rendered with actuals instead of the static tree.
func (e *Engine) finishPlan(q *Query, plan *compiledPlan) (*Result, error) {
	if q.Explain && !q.Analyze {
		tree := plan.describe()
		return &Result{Columns: []string{"plan"}, Rows: [][]string{{tree}}, Plan: tree}, nil
	}
	mQueriesTotal.Inc()
	kernelDispatch(plan.kernel)
	start := time.Now()
	res, err := plan.run()
	mQueryLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	if plan.ctx.traced {
		res.Trace = plan.extractTrace()
		if q.Analyze && res.Trace != nil {
			res.Plan = res.Trace.Render()
		}
	}
	return res, nil
}

// binding maps table aliases to the tuples of one candidate row, plus
// the distance produced by the access path (if any) and the projected
// output row (filled in by the Project operator).
//
// Single-relation queries — the overwhelming majority of candidates a
// scan or index probe produces — use the inline alias/tuple pair and
// never allocate a map; access paths verify millions of candidates per
// second, and one map allocation per candidate was the engine's single
// largest source of GC pressure. Joins promote to the aliases map.
type binding struct {
	alias   string                    // inline fast path (aliases == nil)
	tuple   relation.Tuple            // tuple bound to alias
	aliases map[string]relation.Tuple // multi-alias bindings (joins)
	dist    float64
	hasDist bool
	row     []string
}

// newBinding returns a map-free single-alias binding.
func newBinding(alias string, t relation.Tuple) *binding {
	return &binding{alias: alias, tuple: t}
}

// tupleFor resolves an alias against either representation.
func (b *binding) tupleFor(alias string) (relation.Tuple, bool) {
	if b.aliases != nil {
		t, ok := b.aliases[alias]
		return t, ok
	}
	if alias == b.alias {
		return b.tuple, true
	}
	return relation.Tuple{}, false
}

// soleTuple returns the binding's tuple when exactly one alias is
// bound.
func (b *binding) soleTuple() (relation.Tuple, bool) {
	if b.aliases == nil {
		return b.tuple, true
	}
	if len(b.aliases) == 1 {
		for _, t := range b.aliases {
			return t, true
		}
	}
	return relation.Tuple{}, false
}

// evalExpr evaluates a predicate tree against one binding.
func (e *Engine) evalExpr(ex Expr, b *binding) (bool, error) {
	switch ex := ex.(type) {
	case litTrue:
		return true, nil
	case AndExpr:
		l, err := e.evalExpr(ex.L, b)
		if err != nil {
			return false, err
		}
		if !l {
			// Short-circuit: a false conjunct decides the AND; errors in
			// the unevaluated right side are intentionally not surfaced.
			return false, nil
		}
		return e.evalExpr(ex.R, b)
	case OrExpr:
		l, err := e.evalExpr(ex.L, b)
		if err != nil {
			return false, err
		}
		if l {
			// Short-circuit: a true disjunct decides the OR.
			return true, nil
		}
		return e.evalExpr(ex.R, b)
	case NotExpr:
		v, err := e.evalExpr(ex.E, b)
		if err != nil {
			return false, err
		}
		return !v, nil
	case CmpExpr:
		l, err := operandValue(ex.L, b)
		if err != nil {
			return false, err
		}
		r, err := operandValue(ex.R, b)
		if err != nil {
			return false, err
		}
		if ex.Neq {
			return l != r, nil
		}
		return l == r, nil
	case SimExpr:
		if ex.Pattern {
			x, err := fieldValue(ex.Field, b)
			if err != nil {
				return false, err
			}
			d, ok, err := e.patternWithin(x, ex.Target.Lit, ex.RuleSet, ex.Radius)
			if err != nil {
				return false, err
			}
			if ok && !b.hasDist {
				b.dist, b.hasDist = d, true
			}
			return ok, nil
		}
		d, ok, err := e.evalSim(&ex, b)
		if err != nil {
			return false, err
		}
		if ok && !b.hasDist {
			b.dist, b.hasDist = d, true
		}
		return ok, nil
	case NearestExpr:
		return false, fmt.Errorf("query: NEAREST must be the entire WHERE clause")
	default:
		return false, fmt.Errorf("query: unknown expression %T", ex)
	}
}

// isVecSim reports whether a similarity conjunct is a vector predicate:
// the field is the vec column, or the target is a vector literal. The
// USING clause of a vector predicate names a distance metric (l2,
// cosine) instead of a rule set.
func isVecSim(ex *SimExpr) bool {
	return ex.Field.Name == "vec" || ex.Target.IsVec
}

// evalSim computes one non-pattern similarity conjunct on a binding,
// returning the distance without mutating the binding (callers decide
// how distances merge — evalExpr keeps the first, joins keep the
// outer's). Vector predicates resolve through metric.Within with the
// target vector first, the operand order the VP-tree and batch kernels
// use, so every path agrees bitwise; rows without a vector never match
// (their distance is undefined, not zero). String predicates resolve
// through Engine.within. A field target (a distance join's inner side)
// is resolved against the same binding, for both domains.
func (e *Engine) evalSim(ex *SimExpr, b *binding) (float64, bool, error) {
	if isVecSim(ex) {
		t, err := vecTupleFor(ex.Field, b)
		if err != nil {
			return 0, false, err
		}
		m, ok := metric.Lookup(ex.RuleSet)
		if !ok {
			return 0, false, fmt.Errorf("query: unknown metric %q", ex.RuleSet)
		}
		target := ex.Target.Vec
		if !ex.Target.IsVec {
			if ex.Target.IsLit || ex.Target.Field.Name != "vec" {
				return 0, false, fmt.Errorf("query: vec similarity requires a vector literal or a vec field target")
			}
			tt, err := vecTupleFor(ex.Target.Field, b)
			if err != nil {
				return 0, false, err
			}
			target = tt.Vec
		}
		if t.Vec == nil || target == nil {
			return 0, false, nil
		}
		d, within := metric.Within(m, target, t.Vec, ex.Radius)
		return d, within, nil
	}
	x, err := fieldValue(ex.Field, b)
	if err != nil {
		return 0, false, err
	}
	target, err := operandValue(ex.Target, b)
	if err != nil {
		return 0, false, err
	}
	return e.within(x, target, ex.RuleSet, ex.Radius)
}

// vecTupleFor resolves the tuple a vector predicate's field binds to,
// with the same alias rules as fieldValue.
func vecTupleFor(f FieldRef, b *binding) (relation.Tuple, error) {
	if f.Table != "" {
		t, ok := b.tupleFor(f.Table)
		if !ok {
			return relation.Tuple{}, fmt.Errorf("query: unknown alias %q", f.Table)
		}
		return t, nil
	}
	if t, ok := b.soleTuple(); ok {
		return t, nil
	}
	return relation.Tuple{}, fmt.Errorf("query: ambiguous field %q; qualify with an alias", f.Name)
}

// within tests d(x -> target) <= radius under the named rule set,
// preferring the DP calculator and falling back to the general engine.
func (e *Engine) within(x, target, ruleset string, radius float64) (float64, bool, error) {
	if c := e.calc(ruleset); c != nil {
		d, ok := c.Within(x, target, radius)
		return d, ok, nil
	}
	if g := e.general(ruleset); g != nil {
		d, ok, err := g.Distance(x, target, radius)
		return d, ok, err
	}
	_, err := e.ruleset(ruleset)
	if err != nil {
		return 0, false, err
	}
	return 0, false, fmt.Errorf("query: rule set %q has no usable evaluator", ruleset)
}

// patternWithin tests d(x -> L(pattern)) <= radius; edit-like rule sets
// only (the product search requires per-position costs).
func (e *Engine) patternWithin(x, patSrc, ruleset string, radius float64) (float64, bool, error) {
	c := e.calc(ruleset)
	if c == nil {
		if _, err := e.ruleset(ruleset); err != nil {
			return 0, false, err
		}
		return 0, false, fmt.Errorf("query: pattern similarity requires an edit-like rule set (%q is not)", ruleset)
	}
	p, err := e.compilePattern(patSrc)
	if err != nil {
		return 0, false, err
	}
	d, ok := patdist.Within(c, x, p, radius)
	return d, ok, nil
}

func operandValue(o Operand, b *binding) (string, error) {
	if o.IsLit {
		return o.Lit, nil
	}
	return fieldValue(o.Field, b)
}

func fieldValue(f FieldRef, b *binding) (string, error) {
	if f.Name == "dist" {
		if !b.hasDist {
			return "", fmt.Errorf("query: dist is not available here")
		}
		return formatDist(b.dist), nil
	}
	if f.Table != "" {
		t, ok := b.tupleFor(f.Table)
		if !ok {
			return "", fmt.Errorf("query: unknown alias %q", f.Table)
		}
		return t.Attr(f.Name), nil
	}
	if t, ok := b.soleTuple(); ok {
		return t.Attr(f.Name), nil
	}
	return "", fmt.Errorf("query: ambiguous field %q; qualify with an alias", f.Name)
}

func formatDist(d float64) string {
	if d == math.Trunc(d) {
		return strconv.FormatFloat(d, 'f', 0, 64)
	}
	return strconv.FormatFloat(d, 'g', -1, 64)
}

// litTrue is the planner's placeholder for a conjunct consumed by the
// access path.
type litTrue struct{}

func (litTrue) isExpr()        {}
func (litTrue) String() string { return "TRUE" }
