// Package query implements the query language L of the PODS'95
// similarity-query framework: relational calculus over sequence
// relations extended with similarity predicates.
//
// The concrete syntax is SQL-flavoured:
//
//	SELECT * FROM words WHERE seq SIMILAR TO "colour" WITHIN 2 USING edits
//	SELECT * FROM words WHERE seq SIMILAR TO PATTERN "a(b|c)*d" WITHIN 1 USING edits
//	SELECT * FROM stocks a, stocks b WHERE a.seq SIMILAR TO b.seq WITHIN 3 USING edits
//	SELECT * FROM stocks a, stocks b ON dist(a.seq, b.seq) <= 3 USING edits
//	SELECT * FROM docs a, docs b ON dist(a.vec, b.vec) <= 0.5 USING l2
//	SELECT * FROM words WHERE seq NEAREST 5 TO "color" USING edits
//	SELECT * FROM s a, s b, s c WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING edits
//	       AND b.seq SIMILAR TO c.seq WITHIN 1 USING edits ORDER BY dist LIMIT 10
//	SELECT * FROM words WHERE seq SIMILAR TO ? WITHIN ? USING edits LIMIT ?
//	SELECT * FROM words WHERE seq SIMILAR TO :target WITHIN :radius USING edits
//	EXPLAIN SELECT ...
//
// The language also has DML, threaded through the same lexer, parser,
// planner and executor (see ast_dml.go, engine_dml.go):
//
//	INSERT INTO words VALUES ("colour")
//	INSERT INTO words (seq, lang) VALUES (?, ?), ("color", "en")
//	DELETE FROM words WHERE seq SIMILAR TO "tmp" WITHIN 1 USING edits
//	UPDATE words SET lang = "en" WHERE id = "3"
//	EXPLAIN DELETE FROM ...
//
// '?' and ':name' are bind parameters: such statements cannot be run
// directly but are compiled once with Engine.Prepare and executed many
// times with different bound values (see prepared.go).
//
// INSERT, INTO, VALUES, DELETE, UPDATE and SET are reserved words as
// of the DML grammar (alongside SELECT, FROM, WHERE, ...): attributes
// or aliases with those names can no longer be referenced bare in
// statements — the usual cost of growing a SQL grammar.
//
// The package contains the lexer, parser, cost-based planner and a
// Volcano-style executor: queries compile to trees of physical
// operators (Scan, IndexRange, NearestK, Filter, Project, Limit,
// OrderByDist, NestedLoopJoin, IndexJoin, Parallel) behind one pull
// iterator interface. The planner ranks access paths with relation
// statistics per the rule-set classification: metric indexes (BK-tree,
// trie) for the unit edit distance, filter+verify for weighted
// edit-like sets, and scan with the general search engine otherwise.
// EXPLAIN renders the chosen operator tree. See DESIGN.md.
package query

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokStar
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokEq
	tokNeq
	tokSemi
	tokLe         // '<=' distance-join comparison
	tokQMark      // '?'  positional parameter
	tokNamedParam // ':name' named parameter (text holds the name)
	tokLBracket   // '[' opens a vector literal
	tokRBracket   // ']' closes a vector literal
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokStar:
		return "'*'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokLe:
		return "'<='"
	case tokSemi:
		return "';'"
	case tokQMark:
		return "'?'"
	case tokNamedParam:
		return "named parameter"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenises the query source. Keywords remain tokIdent; the parser
// matches them case-insensitively.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", i})
			i++
		case c == ';':
			toks = append(toks, token{tokSemi, ";", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokNeq, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: stray '!' at %d", i)
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokLe, "<=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: stray '<' at %d (only '<=' is part of the grammar)", i)
			}
		case c == '?':
			toks = append(toks, token{tokQMark, "?", i})
			i++
		case c == ':':
			if i+1 >= len(src) || !isIdentStart(src[i+1]) {
				return nil, fmt.Errorf("query: ':' must introduce a named parameter at %d", i)
			}
			j := i + 1
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tokNamedParam, src[i+1 : j], i})
			i = j
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("query: unterminated string at %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(src) && (src[i+1] >= '0' && src[i+1] <= '9' || src[i+1] == '.'):
			// A leading '-' lexes as part of the number (vector literals
			// carry negative components; the grammar has no subtraction, so
			// the sign is unambiguous).
			j := scanNumber(src, i)
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

// scanNumber scans a number starting at i: an optional leading '-',
// digits and '.', then an optional exponent ('e' or 'E' with optional
// sign). The exponent is consumed only when digits follow, so an
// identifier after a number never merges into it. Exponents matter
// because the canonical vector-literal rendering (metric.Format) uses
// Go's shortest float form, which produces "1e-09"-style components —
// the lexer must round-trip what Operand.String emits.
func scanNumber(src string, i int) int {
	j := i
	if src[j] == '-' {
		j++
	}
	for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
		j++
	}
	if j < len(src) && (src[j] == 'e' || src[j] == 'E') {
		k := j + 1
		if k < len(src) && (src[k] == '+' || src[k] == '-') {
			k++
		}
		if k < len(src) && src[k] >= '0' && src[k] <= '9' {
			for k < len(src) && src[k] >= '0' && src[k] <= '9' {
				k++
			}
			j = k
		}
	}
	return j
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

// isIdentPart accepts '-' inside identifiers so rule-set names such as
// "unit-edits" work in USING clauses; the grammar has no arithmetic, so
// the dash is unambiguous.
func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '-'
}
