package query

// Process-wide metrics of the query engine, registered on obs.Default
// and exposed by the serving layer's /metrics endpoint. Counter
// increments are a few nanoseconds (striped atomics), so they sit
// directly on the execution hot path.

import (
	"sync"

	"repro/internal/obs"
)

var (
	// mQueriesTotal counts statements executed through the engine
	// (SELECT and DML alike).
	mQueriesTotal = obs.Default.Counter("simq_queries_total",
		"Statements executed by the query engine.")
	// mQueryLatency observes end-to-end statement execution time in
	// seconds (parse/plan/cache lookup through result assembly).
	mQueryLatency = obs.Default.Histogram("simq_query_seconds",
		"Statement execution latency in seconds.", obs.DefBuckets)

	mPlanCacheHit   = obs.Default.Counter(`simq_plan_cache_total{event="hit"}`, "Plan cache lookups that reused a cached decision.")
	mPlanCacheMiss  = obs.Default.Counter(`simq_plan_cache_total{event="miss"}`, "Plan cache lookups that fell through to the planner.")
	mPlanCacheEvict = obs.Default.Counter(`simq_plan_cache_total{event="evict"}`, "Plan cache entries evicted by the LRU.")

	// mReplans counts cached decisions whose operator tree failed to
	// rebuild (stale shard topology, dropped relation, ...), forcing a
	// fresh parse-and-plan.
	mReplans = obs.Default.Counter("simq_replans_total",
		"Cached plans invalidated at build time and re-planned.")

	mDecideVectorize = obs.Default.Counter(`simq_plan_decisions_total{decision="vectorize"}`, "Planner decisions that chose the vectorized pipeline.")
	mDecideRow       = obs.Default.Counter(`simq_plan_decisions_total{decision="row"}`, "Planner decisions that chose the row pipeline.")

	// Index traversal totals, accumulated from each operator's ExecStats
	// as it closes (see execCtx.addStats) — the process-wide view of the
	// per-query Nodes/Pruned counters.
	mIndexVisited = obs.Default.Counter(`simq_index_nodes_total{event="visited"}`, "Tree-index nodes visited by query traversals.")
	mIndexPruned  = obs.Default.Counter(`simq_index_nodes_total{event="pruned"}`, "Tree-index subtrees skipped by pruning bounds.")
)

// kernelCounters caches one dispatch counter per distance kernel; the
// kernel set is small and fixed per process, so the map stabilizes
// after the first few queries and lookups are lock-free.
var kernelCounters sync.Map // kernel string -> *obs.Counter

// kernelDispatch counts one plan execution dispatching to the named
// distance kernel.
func kernelDispatch(kernel string) {
	if kernel == "" {
		return
	}
	if c, ok := kernelCounters.Load(kernel); ok {
		c.(*obs.Counter).Inc()
		return
	}
	c := obs.Default.Counter(`simq_kernel_dispatch_total{kernel="`+kernel+`"}`,
		"Plan executions dispatched to a distance kernel.")
	kernelCounters.Store(kernel, c)
	c.Inc()
}
