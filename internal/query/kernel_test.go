package query

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/editdp"
)

// TestExplainShowsKernelDispatch pins the plan-decision kernel record:
// unit-cost conjuncts dispatch to the bit-parallel Myers kernel,
// weighted rule sets stay on TargetDP, targets outside the rule
// alphabet fall back to TargetDP, and disabling the kernel relabels
// (and re-keys) every plan.
func TestExplainShowsKernelDispatch(t *testing.T) {
	e := testEngine(t)

	// Non-integral radius forces a scan, so the compiled filter serves
	// the conjunct; unit-edits is unit-cost and covers the target.
	res, err := e.Execute(`EXPLAIN SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1.5 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "kernel=myers") || !strings.Contains(res.Plan, "Scan(") {
		t.Errorf("unit-cost scan filter should dispatch to myers:\n%s", res.Plan)
	}

	// Weighted rule set: the vectorized weighted kernel serves it.
	res, err = e.Execute(`EXPLAIN SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1.5 USING cheap_vowels`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "kernel=targetdp") {
		t.Errorf("weighted rule set should stay on targetdp:\n%s", res.Plan)
	}

	// Target byte outside the rule alphabet: +Inf costs under the
	// weighted semantics, so Myers must not serve it.
	res, err = e.Execute(`EXPLAIN SELECT * FROM words WHERE seq SIMILAR TO "c0lor" WITHIN 1.5 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "kernel=targetdp") {
		t.Errorf("uncovered target should fall back to targetdp:\n%s", res.Plan)
	}

	// Index-served range plan: the BK-tree traversal runs the
	// query-scoped Myers kernel.
	res, err = e.Execute(`EXPLAIN SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "kernel=myers") || !strings.Contains(res.Plan, "IndexRange") {
		t.Errorf("index range plan should record the myers kernel:\n%s", res.Plan)
	}

	// Kernel disabled: fresh cache epoch, honest labels.
	editdp.SetBitParallel(false)
	defer editdp.SetBitParallel(true)
	res, err = e.Execute(`EXPLAIN SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "kernel=scalar") {
		t.Errorf("disabled kernel should relabel the index plan scalar:\n%s", res.Plan)
	}
	res, err = e.Execute(`EXPLAIN SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1.5 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "kernel=targetdp") {
		t.Errorf("disabled kernel should send scan filters to targetdp:\n%s", res.Plan)
	}
}

// TestKernelToggleResultParity pins that flipping the bit-parallel
// kernel never changes a result row: the same statements run with the
// kernel on and off must agree byte for byte, across index-served,
// compiled-filter and fallback shapes.
func TestKernelToggleResultParity(t *testing.T) {
	defer editdp.SetBitParallel(true)
	stmts := []string{
		`SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits`,
		`SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1.5 USING unit-edits ORDER BY dist`,
		`SELECT * FROM words WHERE seq SIMILAR TO "c0lor" WITHIN 2.5 USING unit-edits`,
		`SELECT * FROM words WHERE seq SIMILAR TO "colour" WITHIN 0.4 USING cheap_vowels`,
		`SELECT * FROM words WHERE seq NEAREST 3 TO "colr" USING unit-edits`,
	}
	for _, stmt := range stmts {
		editdp.SetBitParallel(true)
		on, err := testEngine(t).Execute(stmt)
		if err != nil {
			t.Fatalf("%s (kernel on): %v", stmt, err)
		}
		editdp.SetBitParallel(false)
		off, err := testEngine(t).Execute(stmt)
		if err != nil {
			t.Fatalf("%s (kernel off): %v", stmt, err)
		}
		if !reflect.DeepEqual(on.Rows, off.Rows) {
			t.Errorf("%s: kernel on/off rows differ:\non:  %v\noff: %v", stmt, on.Rows, off.Rows)
		}
	}
}
