package query

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

// TestChooseRangeAccessCrossover is the table-driven satellite over the
// cost model: as the radius grows past the selectivity crossover, the
// ranked access path must move from the metric indexes to the scan.
func TestChooseRangeAccessCrossover(t *testing.T) {
	// Dictionary-like statistics: 26-letter alphabet, moderate size.
	dict := relation.Stats{Count: 500, AvgSeqLen: 8, MaxSeqLen: 12, Alphabet: 26}
	// DNA-like statistics: tiny alphabet, where the trie's branching
	// bound beats both competitors at small radii.
	dna := relation.Stats{Count: 240, AvgSeqLen: 8, MaxSeqLen: 8, Alphabet: 4}
	// Huge dictionary: the trie's size-independent band wins at radius
	// 1 even over a 26-letter alphabet... unless the alphabet keeps the
	// band above the scan cost; this pins the BK-tree's regime instead.
	small := relation.Stats{Count: 30, AvgSeqLen: 6, MaxSeqLen: 9, Alphabet: 26}

	cases := []struct {
		name   string
		st     relation.Stats
		radius float64
		want   string
	}{
		{"dict radius 0", dict, 0, "bktree"},
		{"dict radius 1", dict, 1, "bktree"},
		{"dict radius 2", dict, 2, "bktree"},
		{"dict radius 3 crosses to scan", dict, 3, "scan"},
		{"dict radius 5 stays scan", dict, 5, "scan"},
		{"dna radius 1 prefers trie", dna, 1, "trie"},
		{"dna radius 4 crosses to scan", dna, 4, "scan"},
		{"small relation radius 1", small, 1, "bktree"},
		{"small relation radius 4 crosses to scan", small, 4, "scan"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := chooseRangeAccess(tc.st, tc.radius); got != tc.want {
				t.Errorf("chooseRangeAccess(%+v, %g) = %q, want %q", tc.st, tc.radius, got, tc.want)
			}
		})
	}
}

// TestChooseRangeAccessMonotone: once the scan wins, widening the
// radius further must never flip the choice back to an index — pruning
// only degrades with radius.
func TestChooseRangeAccessMonotone(t *testing.T) {
	st := relation.Stats{Count: 1000, AvgSeqLen: 9, MaxSeqLen: 14, Alphabet: 26}
	scanSeen := false
	for k := 0.0; k <= 8; k++ {
		got := chooseRangeAccess(st, k)
		if scanSeen && got != "scan" {
			t.Fatalf("radius %g chose %q after scan had already won", k, got)
		}
		if got == "scan" {
			scanSeen = true
		}
	}
	if !scanSeen {
		t.Fatal("scan never won by radius 8; the crossover is gone")
	}
}

// TestPreparedThresholdCrossoverReplans is the end-to-end satellite:
// one PreparedQuery whose bound THRESHOLD moves across the selectivity
// crossover must switch between IndexRange and Scan plans — and that
// switch is exactly what triggers a re-plan (the same radius re-bound
// does not).
func TestPreparedThresholdCrossoverReplans(t *testing.T) {
	e := bigEngine(t) // dict: 500 tuples over a 26-letter alphabet
	pq, err := e.Prepare(`SELECT seq FROM dict WHERE seq SIMILAR TO ? WITHIN ? USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}

	plan1, err := pq.Explain("abcdefgh", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan1, "IndexRange") {
		t.Errorf("radius 1 plan = %q, want IndexRange", plan1)
	}

	plan4, err := pq.Explain("abcdefgh", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan4, "Scan(") || strings.Contains(plan4, "IndexRange") {
		t.Errorf("radius 4 plan = %q, want Scan without IndexRange", plan4)
	}

	// Same radius again: decision reuse, no extra plan.
	before := pq.Stats().Plans
	if _, err := pq.Execute("abcdefgh", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Execute("zzzzzzzz", 1); err != nil {
		t.Fatal(err)
	}
	if after := pq.Stats().Plans; after != before {
		t.Errorf("re-binding the same radius re-planned (%d -> %d)", before, after)
	}
}

// TestRangeCrossoverAnswersAgree: the Scan plan past the crossover must
// return exactly the same answer set as a forced index plan.
func TestRangeCrossoverAnswersAgree(t *testing.T) {
	e := bigEngine(t)
	e.SetParallelism(1)
	res, err := e.Execute(`SELECT seq FROM dict WHERE seq SIMILAR TO "abcdefgh" WITHIN 4 USING unit-edits ORDER BY dist`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "Scan(") {
		t.Fatalf("radius-4 plan should scan, got:\n%s", res.Plan)
	}
	// Cross-check against the BK-tree directly.
	rel, _ := e.Catalog().Get("dict")
	want := map[string]bool{}
	for _, m := range rel.BKTree().Range("abcdefgh", 4) {
		want[m.S] = true
	}
	got := map[string]bool{}
	for _, row := range res.Rows {
		got[row[0]] = true
	}
	if len(got) != len(want) {
		t.Errorf("scan answers = %d, bktree answers = %d", len(got), len(want))
	}
	for s := range want {
		if !got[s] {
			t.Errorf("scan missed %q", s)
		}
	}
}
