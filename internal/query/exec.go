package query

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/index"
)

// Operator is the Volcano-style physical operator interface: a pull
// iterator over tuple bindings. Every access path, filter, join and
// decorator in the engine implements it, so the planner can compose
// them freely and EXPLAIN can render any plan as a tree.
//
// The protocol is Open -> Next* -> Close. Next returns (nil, nil) at
// end of stream. Operators must be re-openable after Close (the inner
// side of a nested-loop join is re-opened per outer binding). Work
// counters accumulate locally and are flushed into the shared execCtx
// on Close, so parallel sub-plans never race on the counters.
type Operator interface {
	Open() error
	Next() (*binding, error)
	Close() error
	// Describe returns the one-line operator label for EXPLAIN.
	Describe() string
	// Children returns the operator's inputs, outer first.
	Children() []Operator
}

// ExecStats counts the work one query execution performed; exposed on
// Result so callers (and the LIMIT-pushdown regression tests) can see
// how many candidates an access path actually touched.
type ExecStats struct {
	Candidates    int  // tuples and index nodes examined by access paths
	Verifications int  // distance computations and predicate evaluations
	Nodes         int  // tree-index nodes visited during index traversals
	Pruned        int  // index subtrees skipped by a pruning bound
	Abandoned     int  // verifications cut short by the early-abandon bound
	PlanCacheHit  bool // this execution reused a cached plan (skipped parse+plan)
}

// add folds another operator's counters into s (PlanCacheHit is a
// per-execution flag, not a counter, and is left alone).
func (s *ExecStats) add(o ExecStats) {
	s.Candidates += o.Candidates
	s.Verifications += o.Verifications
	s.Nodes += o.Nodes
	s.Pruned += o.Pruned
	s.Abandoned += o.Abandoned
}

// fromIndexStats lifts an index iterator's work counters into the
// executor's schema.
func fromIndexStats(st index.Stats) ExecStats {
	return ExecStats{
		Candidates:    st.Candidates,
		Verifications: st.Verifications,
		Nodes:         st.Nodes,
		Pruned:        st.Pruned,
		Abandoned:     st.Abandoned,
	}
}

// execCtx is shared by every operator of one executing query.
type execCtx struct {
	eng    *Engine
	traced bool // collect per-operator spans (EXPLAIN ANALYZE / engine tracing)

	mu    sync.Mutex
	stats ExecStats
}

// addStats merges an operator's local counters; safe for concurrent use
// by parallel shard workers.
func (c *execCtx) addStats(s ExecStats) {
	if s.Nodes > 0 {
		mIndexVisited.Add(int64(s.Nodes))
	}
	if s.Pruned > 0 {
		mIndexPruned.Add(int64(s.Pruned))
	}
	c.mu.Lock()
	c.stats.add(s)
	c.mu.Unlock()
}

func (c *execCtx) snapshot() ExecStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// compiledPlan is the planner's output: an operator tree — row (root)
// or batch (broot), depending on the decision's vectorize flag — plus
// the result header it produces.
type compiledPlan struct {
	root      Operator
	broot     BatchOperator
	batchSize int    // leaf block size when broot is set (EXPLAIN)
	kernel    string // decided distance kernel (EXPLAIN label, dispatch metric)
	ctx       *execCtx
	columns   []string
}

// describe renders the operator tree for EXPLAIN and Result.Plan; a
// vectorized plan carries the Vectorize pseudo-root so the planner's
// decision is visible at the top of the tree.
func (p *compiledPlan) describe() string {
	if p.broot != nil {
		return renderTree(&vectorizeNode{child: p.broot, size: p.batchSize, kernel: p.kernel})
	}
	return renderTree(p.root)
}

// run drives the operator tree to completion and assembles the result.
func (p *compiledPlan) run() (*Result, error) {
	if p.broot != nil {
		return p.runBatch()
	}
	res := &Result{Columns: p.columns, Plan: p.describe()}
	if err := p.root.Open(); err != nil {
		p.root.Close()
		return nil, err
	}
	for {
		b, err := p.root.Next()
		if err != nil {
			p.root.Close()
			return nil, err
		}
		if b == nil {
			break
		}
		res.Rows = append(res.Rows, b.row)
	}
	if err := p.root.Close(); err != nil {
		return nil, err
	}
	res.Stats = p.ctx.snapshot()
	return res, nil
}

// runBatch drives a batch operator tree, appending each block's
// projected rows to the result.
func (p *compiledPlan) runBatch() (*Result, error) {
	res := &Result{Columns: p.columns, Plan: p.describe()}
	if err := p.broot.OpenBatch(); err != nil {
		p.broot.CloseBatch()
		return nil, err
	}
	for {
		b, err := p.broot.NextBatch()
		if err != nil {
			p.broot.CloseBatch()
			return nil, err
		}
		if b == nil {
			break
		}
		res.Rows = append(res.Rows, b.rows...)
	}
	if err := p.broot.CloseBatch(); err != nil {
		return nil, err
	}
	res.Stats = p.ctx.snapshot()
	return res, nil
}

// renderTree renders an operator tree with box-drawing indentation:
//
//	Limit(3)
//	└─ Project(seq, dist)
//	   └─ Filter(lang = "en")
//	      └─ IndexRange(words via bktree, target=color, radius=1, ruleset=edits)
//
// Nodes may be row operators, batch operators or the adapters bridging
// them; mixed trees render seamlessly.
func renderTree(node any) string {
	var b strings.Builder
	var walk func(node any, prefix string, last bool, root bool)
	walk = func(node any, prefix string, last, root bool) {
		if root {
			b.WriteString(describeNode(node))
		} else {
			b.WriteString("\n")
			b.WriteString(prefix)
			if last {
				b.WriteString("└─ ")
				prefix += "   "
			} else {
				b.WriteString("├─ ")
				prefix += "│  "
			}
			b.WriteString(describeNode(node))
		}
		kids := childNodesOf(node)
		for i, k := range kids {
			walk(k, prefix, i == len(kids)-1, false)
		}
	}
	walk(node, "", true, true)
	return b.String()
}

// describeNode returns a node's EXPLAIN label.
func describeNode(n any) string {
	if d, ok := n.(interface{ Describe() string }); ok {
		return d.Describe()
	}
	return fmt.Sprintf("%T", n)
}

// childNodesOf returns a node's inputs for the tree walk. Batch
// operators and adapters report mixed-kind children via childNodes;
// plain row operators lift their Children slice.
func childNodesOf(n any) []any {
	if cn, ok := n.(interface{ childNodes() []any }); ok {
		return cn.childNodes()
	}
	if op, ok := n.(Operator); ok {
		kids := op.Children()
		out := make([]any, len(kids))
		for i, k := range kids {
			out[i] = k
		}
		return out
	}
	return nil
}

// projectColumns computes the result header for a query's projection.
func projectColumns(q *Query) []string {
	var cols []string
	if len(q.Select) > 0 {
		for _, c := range q.Select {
			cols = append(cols, c.String())
		}
		return cols
	}
	// '*': id and seq per alias, then dist. Aliases are prefixed as soon
	// as more than one relation is in scope.
	for _, ref := range q.From {
		prefix := ""
		if len(q.From) > 1 {
			prefix = ref.Alias + "."
		}
		cols = append(cols, prefix+"id", prefix+"seq")
	}
	return append(cols, "dist")
}

// projectRow materialises one output row from a binding.
func projectRow(eng *Engine, q *Query, b *binding) ([]string, error) {
	var row []string
	if len(q.Select) > 0 {
		row = make([]string, 0, len(q.Select))
		for _, c := range q.Select {
			v, err := fieldValue(FieldRef{Table: c.Table, Name: c.Name}, b)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		return row, nil
	}
	row = make([]string, 0, 2*len(q.From)+1)
	for _, ref := range q.From {
		t, _ := b.tupleFor(ref.Alias)
		row = append(row, fmt.Sprintf("%d", t.ID), t.Seq)
	}
	if b.hasDist {
		row = append(row, formatDist(b.dist))
	} else {
		row = append(row, "")
	}
	return row, nil
}
