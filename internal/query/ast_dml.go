package query

import (
	"fmt"
	"strings"
)

// Statement is one parsed statement: a *Query (SELECT) or a *Mutation
// (INSERT/DELETE/UPDATE). ParseStatement returns it; Engine.Execute and
// Engine.Prepare accept both kinds.
type Statement interface {
	fmt.Stringer
	stmt()
}

func (*Query) stmt()    {}
func (*Mutation) stmt() {}

// MutKind enumerates the DML statement kinds.
type MutKind int

// Mutation kinds.
const (
	MutInsert MutKind = iota
	MutDelete
	MutUpdate
)

// String names the mutation kind in lower-case statement-verb form.
func (k MutKind) String() string {
	switch k {
	case MutInsert:
		return "insert"
	case MutDelete:
		return "delete"
	case MutUpdate:
		return "update"
	default:
		return fmt.Sprintf("mutkind(%d)", int(k))
	}
}

// Mutation is the root of a parsed DML statement.
//
//	INSERT INTO words VALUES ("colour")
//	INSERT INTO words (seq, lang) VALUES ("colour", "en"), (?, ?)
//	DELETE FROM words WHERE seq SIMILAR TO "tmp" WITHIN 1 USING edits
//	UPDATE words SET lang = "en" WHERE id = "3"
//	EXPLAIN DELETE FROM words WHERE ...
//
// The WHERE clause of DELETE and UPDATE is the full predicate language
// of SELECT — similarity predicates included — and is planned by the
// same cost-based planner, so an indexable conjunct drives the read
// phase through a metric index.
type Mutation struct {
	Explain bool
	Kind    MutKind
	Table   string
	Columns []string    // INSERT column list; defaults to ["seq"]
	Rows    [][]Operand // INSERT VALUES tuples (literals or parameters)
	Set     []SetClause // UPDATE assignments
	Where   Expr        // DELETE/UPDATE; nil means every visible tuple
	Params  []ParamRef  // every parameter, in order of appearance
}

// SetClause is one UPDATE assignment: a column ("seq" or an attribute
// name) and its replacement value (literal or parameter).
type SetClause struct {
	Name  string
	Value Operand
}

// String renders the statement in the concrete syntax.
func (m *Mutation) String() string {
	var b strings.Builder
	if m.Explain {
		b.WriteString("EXPLAIN ")
	}
	switch m.Kind {
	case MutInsert:
		b.WriteString("INSERT INTO ")
		b.WriteString(m.Table)
		if len(m.Columns) > 0 {
			b.WriteString(" (")
			b.WriteString(strings.Join(m.Columns, ", "))
			b.WriteString(")")
		}
		b.WriteString(" VALUES ")
		for i, row := range m.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("(")
			for j, v := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(v.String())
			}
			b.WriteString(")")
		}
	case MutDelete:
		b.WriteString("DELETE FROM ")
		b.WriteString(m.Table)
		if m.Where != nil {
			b.WriteString(" WHERE ")
			b.WriteString(m.Where.String())
		}
	case MutUpdate:
		b.WriteString("UPDATE ")
		b.WriteString(m.Table)
		b.WriteString(" SET ")
		for i, sc := range m.Set {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(sc.Name)
			b.WriteString(" = ")
			b.WriteString(sc.Value.String())
		}
		if m.Where != nil {
			b.WriteString(" WHERE ")
			b.WriteString(m.Where.String())
		}
	}
	return b.String()
}
