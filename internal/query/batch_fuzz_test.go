package query

// FuzzBatchParity: arbitrary statement text must never make the
// vectorized engine diverge from the row engine — same error or
// byte-identical rows in byte-identical order. This is the fuzz-shaped
// face of the batch/row parity oracle, seeded with every statement
// family; the CI fuzz job runs it next to the lexer/parser fuzzers.

import (
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/rewrite"
)

// fuzzParityEngines builds a fresh row/batch engine pair over a small
// fixed dataset. Fresh per call: DML inputs mutate state, and corpus
// entries must reproduce independently of execution order.
func fuzzParityEngines() (row, batch *Engine) {
	mk := func() *Engine {
		cat := relation.NewCatalog()
		rel := relation.New("words")
		for _, s := range []string{
			"abcd", "abce", "abde", "acbd", "bcda", "cadb",
			"jihg", "jihf", "aaaa", "aaab", "bbbb", "dcba",
			"abcdefgh", "abcdefgi", "hgfedcba",
		} {
			rel.Insert(s, map[string]string{"tag": s[:1]})
		}
		cat.Add(rel)
		e := NewEngine(cat)
		_ = e.RegisterRuleSet(rewrite.MustRuleSet("edits", rewrite.UnitEdits("abcdefghij").Rules()))
		return e
	}
	row, batch = mk(), mk()
	row.SetBatchSize(0)
	batch.SetBatchSize(13) // odd block size: exercises partial-block edges
	return row, batch
}

func FuzzBatchParity(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Add(`SELECT seq, dist FROM words WHERE seq SIMILAR TO "abcd" WITHIN 2 USING edits ORDER BY dist DESC LIMIT 5`)
	f.Add(`SELECT * FROM words WHERE seq NEAREST 4 TO "abcd" USING edits`)
	f.Add(`SELECT * FROM words WHERE NOT (tag = "a") AND seq SIMILAR TO "abcd" WITHIN 3 USING edits`)
	f.Add(`DELETE FROM words WHERE seq SIMILAR TO "abcd" WITHIN 1 USING edits`)
	f.Add(`UPDATE words SET tag = "z" WHERE seq SIMILAR TO "jihg" WITHIN 1 USING edits`)
	// Error-order parity: the field error (dist unavailable) must win
	// over a hoisted evaluator error in both engines.
	f.Add(`SELECT seq FROM words WHERE dist SIMILAR TO PATTERN "c*" WITHIN 1 USING nosuch`)
	f.Add(`SELECT seq FROM words WHERE dist SIMILAR TO "x" WITHIN 1 USING nosuch`)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 512 {
			return // long inputs only stress the lexer, which FuzzLex owns
		}
		stmt, err := ParseStatement(src)
		if err != nil {
			return
		}
		// EXPLAIN output differs by design (the batch plan carries the
		// Vectorize root), so only execution results are compared.
		explain := false
		switch s := stmt.(type) {
		case *Query:
			explain = s.Explain
		case *Mutation:
			explain = s.Explain
		}
		row, batch := fuzzParityEngines()
		r, rerr := row.Execute(src)
		b, berr := batch.Execute(src)
		if (rerr == nil) != (berr == nil) {
			t.Fatalf("error parity broken for %q: row=%v batch=%v", src, rerr, berr)
		}
		if rerr != nil {
			if rerr.Error() != berr.Error() {
				t.Fatalf("error text diverges for %q:\nrow:   %v\nbatch: %v", src, rerr, berr)
			}
			return
		}
		if explain {
			return
		}
		if strings.Join(r.Columns, "\x1f") != strings.Join(b.Columns, "\x1f") {
			t.Fatalf("columns diverge for %q: %v vs %v", src, r.Columns, b.Columns)
		}
		if positional(r) != positional(b) {
			t.Fatalf("rows diverge for %q:\nrow:\n%s\nbatch:\n%s", src, positional(r), positional(b))
		}
		// DML: both engines must leave identical table contents.
		if isDMLText(src) {
			dump := func(e *Engine) string {
				tab, _ := e.Catalog().Lookup("words")
				var sb strings.Builder
				for _, tup := range tab.Tuples() {
					sb.WriteString(tup.Seq)
					sb.WriteByte('\x1f')
					sb.WriteString(tup.Attr("tag"))
					sb.WriteByte('\n')
				}
				return sb.String()
			}
			if dump(row) != dump(batch) {
				t.Fatalf("table contents diverge after %q", src)
			}
		}
	})
}
