package query

// Sharded distance joins: broadcast-inner under GatherMerge. A join
// whose FROM references a sharded relation runs one join chain per
// OUTER shard — each chain scans one shard snapshot of the outer
// relation and joins it against the FULL inner side ("broadcast": every
// chain sees every inner shard's snapshot). Because tuple ids are
// global and each chain's output is ascending in outer id with inner
// matches ascending in global inner id, the id-ordered gather
// reproduces exactly the unsharded plan's emission order — the sharded
// join parity oracle pins byte-identity against the brute-force
// nested loop.
//
// Broadcast is the right first strategy here because the hash
// partitioner (relation.RouteOf) is not distance-preserving: rows
// within edit distance k of each other land on unrelated shards, so a
// co-partitioned join does not exist without a second, band-aware
// partitioning scheme. The batch partition join recovers exactly that
// banding — per chain, over the broadcast inner — without moving rows.

import (
	"fmt"

	"repro/internal/metric"
	"repro/internal/relation"
)

// buildShardedJoin constructs the scatter-gather operator tree for a
// decided join touching at least one sharded relation. Works for both
// pipelines: row chains directly, vectorized chains behind the
// BatchToRow adapter under the row gather (join batches carry
// multi-alias bindings, which the columnar batch gather cannot merge).
func (e *Engine) buildShardedJoin(q *Query, d *planDecision, tabs []relation.Table) (*compiledPlan, error) {
	relOf := map[string]relation.Table{}
	for i, ref := range q.From {
		relOf[ref.Alias] = tabs[i]
	}
	edges, residual := extractJoinSims(q.Where, relOf)
	used := make([]bool, len(edges))
	for _, step := range d.steps {
		if step.edge < 0 || step.edge >= len(edges) {
			return nil, fmt.Errorf("query: stale plan: join edge %d out of range", step.edge)
		}
		used[step.edge] = true
	}
	for i, edge := range edges {
		if !used[i] {
			residual = AndExpr{L: residual, R: *edge}
		}
	}
	pred := simplifyExpr(residual)
	steps := d.steps

	// Resolve metrics and ensure shared index structures BEFORE any view
	// or snapshot capture: Ensure* republishes the sharded view, and the
	// captured snapshots must carry the online-maintained indexes
	// instead of building private ones per chain.
	stepMetrics := make([]metric.Distance, len(steps))
	for i, step := range steps {
		if step.vec {
			m, ok := metric.Lookup(edges[step.edge].RuleSet)
			if !ok {
				return nil, fmt.Errorf("query: unknown metric %q", edges[step.edge].RuleSet)
			}
			stepMetrics[i] = m
		}
		if step.algo != "index" {
			continue
		}
		switch t := relOf[step.alias].(type) {
		case *relation.ShardedRelation:
			if step.vec {
				t.EnsureVPTrees(stepMetrics[i])
			} else {
				t.EnsureBKTrees()
			}
		case *relation.Relation:
			if step.vec {
				t.VPTree(stepMetrics[i])
			} else {
				t.BKTree()
			}
		}
	}

	// One snapshot list per table IDENTITY: a self-join must read the
	// same consistent cut on both sides, and a sharded table's view is
	// captured exactly once.
	snapCache := map[relation.Table][]*relation.Snapshot{}
	snapsOf := func(tab relation.Table) ([]*relation.Snapshot, error) {
		if s, ok := snapCache[tab]; ok {
			return s, nil
		}
		var snaps []*relation.Snapshot
		switch t := tab.(type) {
		case *relation.ShardedRelation:
			view := t.View()
			snaps = make([]*relation.Snapshot, view.NumShards())
			for i := range snaps {
				snaps[i] = view.Snap(i)
			}
		case *relation.Relation:
			snaps = []*relation.Snapshot{t.Snapshot()}
		default:
			return nil, fmt.Errorf("query: relation %q has an unknown layout", tab.Name())
		}
		snapCache[tab] = snaps
		return snaps, nil
	}

	startSnaps, err := snapsOf(relOf[d.start])
	if err != nil {
		return nil, err
	}
	if len(startSnaps) != d.shards {
		// The start relation was re-registered with a different layout;
		// Execute re-plans on this error.
		return nil, fmt.Errorf("query: stale plan: relation %q has %d shards, plan wants %d",
			relOf[d.start].Name(), len(startSnaps), d.shards)
	}
	startStats := relOf[d.start].Stats()
	stepSnaps := make([][]*relation.Snapshot, len(steps))
	stepStats := make([]relation.Stats, len(steps))
	for i, step := range steps {
		if stepSnaps[i], err = snapsOf(relOf[step.alias]); err != nil {
			return nil, err
		}
		stepStats[i] = relOf[step.alias].Stats()
	}

	ctx := &execCtx{eng: e, traced: q.Analyze || e.tracing.Load()}
	cp := &compiledPlan{ctx: ctx, columns: projectColumns(q), kernel: d.kernel}
	n := d.shards
	size := e.batchLeafSize(q)

	// innerScan streams the broadcast inner side of a nested-loop step in
	// global id order, whatever its layout.
	innerScan := func(i int, est float64) Operator {
		if len(stepSnaps[i]) == 1 {
			return tr(ctx, newScanOp(ctx, stepSnaps[i][0], steps[i].alias), est, "")
		}
		return tr(ctx, &multiScanOp{ctx: ctx, snaps: stepSnaps[i], alias: steps[i].alias}, est, "")
	}

	// rowChain builds the shard-s join chain of the row pipeline.
	// Estimates are per outer shard, mirroring buildShardedPlan.
	rowChain := func(s int) Operator {
		cur := float64(startStats.Count) / float64(n)
		var op Operator = tr(ctx, newScanOp(ctx, startSnaps[s], d.start), cur, "")
		for i, step := range steps {
			outerEst := cur
			cur = joinOutRowsFor(edges[step.edge], cur, stepStats[i])
			if step.algo == "index" {
				op = tr(ctx, &indexJoinOp{
					ctx: ctx, outer: op, snaps: stepSnaps[i], alias: step.alias,
					probeField: step.probeField, sim: edges[step.edge], vec: step.vec, m: stepMetrics[i],
				}, cur, d.kernel)
			} else {
				inner := innerScan(i, outerEst*float64(stepStats[i].Count))
				op = tr(ctx, &nestedLoopJoinOp{
					ctx: ctx, outer: op, inner: inner, sim: edges[step.edge],
				}, cur, d.kernel)
			}
		}
		if !isTrivial(pred) {
			op = tr(ctx, &filterOp{ctx: ctx, child: op, pred: pred},
				estFilterRows(startStats, pred, cur), e.filterKernel(pred))
		}
		return op
	}

	// batchChain is the vectorized twin: partition steps run natively
	// batched over the broadcast inner snapshots, nl/index steps bridge
	// through the row operators exactly as buildBatchJoin does.
	batchChain := func(s int) BatchOperator {
		cur := float64(startStats.Count) / float64(n)
		bs := newBatchScanOp(ctx, startSnaps[s], d.start, size)
		var op BatchOperator = trB(ctx, bs, cur, "")
		for i, step := range steps {
			edge := edges[step.edge]
			outerEst := cur
			cur = joinOutRowsFor(edge, cur, stepStats[i])
			switch step.algo {
			case "partition":
				outerIsTarget := step.probeField == edge.Target.Field
				innerField := edge.Field.Name
				if !outerIsTarget {
					innerField = edge.Target.Field.Name
				}
				op = trB(ctx, &batchPartitionJoinOp{
					ctx: ctx, child: op, snaps: stepSnaps[i], alias: step.alias,
					probeField: step.probeField, innerField: innerField, outerIsTarget: outerIsTarget,
					sim: edge, size: size, vec: step.vec, m: stepMetrics[i],
				}, cur, d.kernel)
			case "index":
				row := tr(ctx, &indexJoinOp{
					ctx: ctx, outer: &batchToRowOp{child: op}, snaps: stepSnaps[i], alias: step.alias,
					probeField: step.probeField, sim: edge, vec: step.vec, m: stepMetrics[i],
				}, cur, d.kernel)
				op = trB(ctx, &rowToBatchOp{child: row, size: size}, cur, "")
			default: // "nl"
				inner := innerScan(i, outerEst*float64(stepStats[i].Count))
				row := tr(ctx, &nestedLoopJoinOp{
					ctx: ctx, outer: &batchToRowOp{child: op}, inner: inner, sim: edge,
				}, cur, d.kernel)
				op = trB(ctx, &rowToBatchOp{child: row, size: size}, cur, "")
			}
		}
		if !isTrivial(pred) {
			op = trB(ctx, &batchFilterOp{ctx: ctx, child: op, pred: pred, alias: d.start},
				estFilterRows(startStats, pred, cur), e.filterKernel(pred))
		}
		return op
	}

	children := make([]Operator, n)
	for s := range children {
		if d.vectorize {
			children[s] = &batchToRowOp{child: batchChain(s)}
		} else {
			children[s] = rowChain(s)
		}
	}
	access := tr(ctx, &gatherMergeOp{ctx: ctx, children: children, workers: d.workers,
		alias: d.start, mode: gatherByID}, -1, "")

	if d.vectorize {
		// Re-enter the batch pipeline above the gather so the decorator
		// stack (OrderByDist, Project, Limit) and the EXPLAIN Vectorize
		// root match every other vectorized plan.
		cp.batchSize = size
		var top BatchOperator = trB(ctx, &rowToBatchOp{child: access, size: size}, estOf(access), "")
		cp.broot = e.wrapBatchTop(q, top, d.start, size, ctx)
		return cp, nil
	}

	top := access
	if q.Order == OrderDesc {
		top = tr(ctx, &orderByDistOp{child: top, desc: true}, estOf(top), "")
	} else if q.Order == OrderAsc {
		top = tr(ctx, &orderByDistOp{child: top}, estOf(top), "")
	}
	top = tr(ctx, &projectOp{ctx: ctx, q: q, child: top}, estOf(top), "")
	if q.Limit > 0 {
		top = tr(ctx, &limitOp{child: top, n: q.Limit}, estLimitRows(q.Limit, estOf(top)), "")
	}
	cp.root = top
	return cp, nil
}
