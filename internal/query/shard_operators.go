package query

// Scatter-gather execution over sharded relations. The planner turns a
// single-relation query over a ShardedRelation into one subplan per
// shard — each reading one shard snapshot of a consistent ShardView —
// plus a GatherMerge root that runs the subplans through a bounded
// worker pool and merges their outputs:
//
//   - merge=id (WITHIN / scans): shard streams are merged in ascending
//     global tuple id, which reconstructs exactly the serial scan order
//     of the unsharded relation (ids are global and each arena is
//     id-ascending).
//   - merge=bestk (NEAREST): each shard produces its own k-best list
//     sorted by (dist, id); the gather is a rank-aware bounded merge
//     that repeatedly takes the smallest (dist, id) frontier entry and
//     terminates after k results — once the global k-th best is fixed,
//     no shard's remaining (worse) entries are ever examined. The
//     (dist, id) order makes equal-distance ties deterministic by row
//     key no matter which shard finished first.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metric"
	"repro/internal/obs"
	"repro/internal/relation"
)

// buildShardedPlan constructs the scatter-gather operator tree for a
// decided single-relation query over a sharded relation.
func (e *Engine) buildShardedPlan(q *Query, d *planDecision, tab relation.Table) (*compiledPlan, error) {
	sh, ok := tab.(*relation.ShardedRelation)
	if !ok {
		return nil, fmt.Errorf("query: stale plan: relation %q is no longer sharded", q.From[0].Name)
	}
	if sh.NumShards() != d.shards {
		return nil, fmt.Errorf("query: stale plan: relation %q has %d shards, plan wants %d",
			q.From[0].Name, sh.NumShards(), d.shards)
	}
	// Ensure the shared per-shard index structures ahead of the view
	// capture, so every shard snapshot carries its online-maintained
	// index instead of building a private one per query.
	switch d.kind {
	case accessRange:
		switch d.via {
		case "trie":
			sh.EnsureTries()
		case "vptree":
			if m := vecRangeMetric(q.Where); m != nil {
				sh.EnsureVPTrees(m)
			}
		default:
			sh.EnsureBKTrees()
		}
	case accessNearest:
		switch d.via {
		case "bktree":
			sh.EnsureBKTrees()
		case "vptree":
			if ne, ok := q.Where.(NearestExpr); ok {
				if m, ok := metric.Lookup(ne.RuleSet); ok {
					sh.EnsureVPTrees(m)
				}
			}
		}
	}
	view := sh.View()
	n := view.NumShards()
	alias := q.From[0].Alias
	ctx := &execCtx{eng: e, traced: q.Analyze || e.tracing.Load()}
	cp := &compiledPlan{ctx: ctx, columns: projectColumns(q), kernel: d.kernel}
	// Planner estimates below are per shard: the leaf cardinalities of an
	// even hash partition, so EXPLAIN ANALYZE compares each shard subplan
	// against what the optimizer assumed for one shard, not the union.
	st := shardStats(sh.Stats(), n)
	if d.vectorize {
		return e.buildShardedBatchTree(q, d, view, st, ctx, cp)
	}

	children := make([]Operator, n)
	var access Operator
	switch d.kind {
	case accessNearest:
		ne := q.Where.(NearestExpr)
		gatherEst := estNearestRows(n*st.Count, ne.K)
		if isVecNearest(&ne) {
			gatherEst = estNearestRows(n*st.VecCount, ne.K)
			for i := range children {
				children[i] = tr(ctx, &shardVecNearestKOp{
					vecNearestKOp: vecNearestKOp{
						ctx: ctx, snap: view.Snap(i), alias: alias,
						via: d.via, target: ne.Target.Vec, k: ne.K, metricName: ne.RuleSet,
					},
					idx: i, of: n,
				}, estNearestRows(st.VecCount, ne.K), d.kernel)
			}
		} else {
			for i := range children {
				children[i] = tr(ctx, &shardNearestKOp{
					nearestKOp: nearestKOp{
						ctx: ctx, snap: view.Snap(i), alias: alias,
						via: d.via, target: ne.Target.Lit, k: ne.K, ruleSet: ne.RuleSet,
					},
					idx: i, of: n,
				}, estNearestRows(st.Count, ne.K), d.kernel)
			}
		}
		access = tr(ctx, &gatherMergeOp{ctx: ctx, children: children, workers: d.workers,
			alias: alias, mode: gatherBestK, k: ne.K}, gatherEst, "")
	case accessRange:
		if d.via == "vptree" {
			sim, residual := extractVecRangeSim(q.Where)
			if sim == nil {
				return nil, fmt.Errorf("query: stale plan: no vector range conjunct")
			}
			pred := simplifyExpr(residual)
			for i := range children {
				var op Operator = tr(ctx, &vecRangeOp{
					ctx: ctx, snap: view.Snap(i), alias: alias,
					target: sim.Target.Vec, radius: sim.Radius, metricName: sim.RuleSet,
				}, estVecRangeRows(st, sim.Radius), d.kernel)
				if !isTrivial(pred) {
					op = tr(ctx, &filterOp{ctx: ctx, child: op, pred: pred},
						estFilterRows(st, pred, estOf(op)), e.filterKernel(pred))
				}
				if q.Limit > 0 && q.Order == OrderNone {
					// Same per-shard pushdown as the string index range below.
					op = tr(ctx, &limitOp{child: op, n: q.Limit}, estLimitRows(q.Limit, estOf(op)), "")
				}
				children[i] = op
			}
			access = tr(ctx, &gatherMergeOp{ctx: ctx, children: children, workers: d.workers,
				alias: alias, mode: gatherByID}, -1, "")
			break
		}
		sim, residual := extractRangeSim(q.Where, e.rangeIndexable)
		if sim == nil {
			return nil, fmt.Errorf("query: stale plan: no indexable conjunct")
		}
		pred := simplifyExpr(residual)
		for i := range children {
			var op Operator = tr(ctx, &indexRangeOp{
				ctx: ctx, snap: view.Snap(i), alias: alias, via: d.via,
				target: sim.Target.Lit, radius: int(sim.Radius), ruleSet: sim.RuleSet,
			}, estRangeRows(st, sim.Radius), d.kernel)
			if !isTrivial(pred) {
				op = tr(ctx, &filterOp{ctx: ctx, child: op, pred: pred},
					estFilterRows(st, pred, estOf(op)), e.filterKernel(pred))
			}
			if q.Limit > 0 && q.Order == OrderNone {
				// LIMIT without ORDER BY returns an arbitrary valid subset
				// (already true of the unsharded lazy index scan), so each
				// shard needs at most LIMIT matches: the pushed limit stops
				// the per-shard index traversal early instead of draining
				// the whole radius ball on every shard.
				op = tr(ctx, &limitOp{child: op, n: q.Limit}, estLimitRows(q.Limit, estOf(op)), "")
			}
			children[i] = op
		}
		access = tr(ctx, &gatherMergeOp{ctx: ctx, children: children, workers: d.workers,
			alias: alias, mode: gatherByID}, -1, "")
	case accessScan:
		pred := simplifyExpr(q.Where)
		for i := range children {
			var op Operator = tr(ctx, &shardScanOp{scanOp: *newScanOp(ctx, view.Snap(i), alias), idx: i, of: n},
				float64(st.Count), "")
			if !isTrivial(pred) {
				op = tr(ctx, &filterOp{ctx: ctx, child: op, pred: pred},
					estFilterRows(st, pred, estOf(op)), e.filterKernel(pred))
			}
			if q.Limit > 0 && q.Order == OrderNone {
				// Shard scan streams are id-ascending, so the first LIMIT
				// rows of the id-merged union draw at most LIMIT rows from
				// any one shard — the limit pushes into every subplan.
				op = tr(ctx, &limitOp{child: op, n: q.Limit}, estLimitRows(q.Limit, estOf(op)), "")
			}
			children[i] = op
		}
		access = tr(ctx, &gatherMergeOp{ctx: ctx, children: children, workers: d.workers,
			alias: alias, mode: gatherByID}, -1, "")
	default:
		return nil, fmt.Errorf("query: access kind %d has no sharded build", d.kind)
	}

	top := access
	if q.Order == OrderDesc {
		top = tr(ctx, &orderByDistOp{child: top, desc: true}, estOf(top), "")
	} else if q.Order == OrderAsc {
		top = tr(ctx, &orderByDistOp{child: top}, estOf(top), "")
	}
	top = tr(ctx, &projectOp{ctx: ctx, q: q, child: top}, estOf(top), "")
	if q.Limit > 0 {
		top = tr(ctx, &limitOp{child: top, n: q.Limit}, estLimitRows(q.Limit, estOf(top)), "")
	}
	cp.root = top
	return cp, nil
}

// ----------------------------------------------------------- shard scan

// shardScanOp is a scanOp over one shard's snapshot (the per-shard
// leaf of a scatter-gather scan, streaming ascending global ids); it
// exists so EXPLAIN shows which shard each stream comes from.
type shardScanOp struct {
	scanOp
	idx, of int
}

func (o *shardScanOp) Describe() string {
	return fmt.Sprintf("ShardScan(%s, shard %d/%d)", o.alias, o.idx, o.of)
}

// ------------------------------------------------------ shard nearest-k

// shardNearestKOp is a nearestKOp over one shard snapshot; it exists so
// EXPLAIN shows which shard each k-best list comes from.
type shardNearestKOp struct {
	nearestKOp
	idx, of int
}

func (o *shardNearestKOp) Describe() string {
	return fmt.Sprintf("ShardNearestK(%s, shard %d/%d, via %s, k=%d, ruleset=%s)",
		o.alias, o.idx, o.of, o.via, o.k, o.ruleSet)
}

// --------------------------------------------------------- gather merge

// gatherMode selects the merge discipline of a gatherMergeOp.
type gatherMode int

const (
	gatherByID  gatherMode = iota // ascending global tuple id (scan order)
	gatherBestK                   // rank-aware (dist, id) bounded merge
)

// gatherMergeOp fans one subplan per shard out across a bounded worker
// pool, materialises their outputs, and merges. Like parallelOp it
// trades binding buffering for full parallelism — the per-tuple
// similarity work inside the subplans dominates by orders of magnitude.
type gatherMergeOp struct {
	ctx      *execCtx
	children []Operator // one subplan per shard
	workers  int
	alias    string
	mode     gatherMode
	k        int // gatherBestK: result bound

	out     []*binding
	pos     int
	timings []obs.ShardTiming // per-shard drain wall time (traced runs only)
}

// executedInstances reports every shard subplan for span extraction —
// unlike Children (which shows the shard-0 template for EXPLAIN), all
// instances always execute, so ANALYZE merges the counters of each.
func (o *gatherMergeOp) executedInstances() []any {
	out := make([]any, len(o.children))
	for i, c := range o.children {
		out[i] = c
	}
	return out
}

// shardTimings reports the per-shard fan-out timing recorded by the last
// traced Open.
func (o *gatherMergeOp) shardTimings() []obs.ShardTiming { return o.timings }

func (o *gatherMergeOp) Open() error {
	bufs := make([][]*binding, len(o.children))
	errs := make([]error, len(o.children))
	if o.ctx.traced {
		o.timings = make([]obs.ShardTiming, len(o.children))
	}
	workers := o.workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(o.children) {
		workers = len(o.children)
	}
	drain := func(i int) {
		var start time.Time
		if o.ctx.traced {
			start = time.Now()
		}
		op := o.children[i]
		if err := op.Open(); err != nil {
			errs[i] = err
			op.Close()
			return
		}
		for {
			b, err := op.Next()
			if err != nil {
				errs[i] = err
				break
			}
			if b == nil {
				break
			}
			bufs[i] = append(bufs[i], b)
		}
		if err := op.Close(); err != nil && errs[i] == nil {
			errs[i] = err
		}
		if o.ctx.traced {
			// Each worker owns a disjoint set of indices, so indexed writes
			// need no lock.
			o.timings[i] = obs.ShardTiming{
				Shard: i, WallNS: time.Since(start).Nanoseconds(), Rows: int64(len(bufs[i])),
			}
		}
	}
	if workers == 1 {
		// Single-worker gather (one core, or SetParallelism(1)): run the
		// shard subplans inline — goroutine and channel overhead buys
		// nothing without parallelism.
		for i := range o.children {
			drain(i)
		}
	} else {
		idxc := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxc {
					drain(i)
				}
			}()
		}
		for i := range o.children {
			idxc <- i
		}
		close(idxc)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	o.pos = 0
	switch o.mode {
	case gatherBestK:
		o.out = mergeBestK(bufs, o.alias, o.k)
	default:
		o.out = mergeByID(bufs, o.alias)
	}
	return nil
}

func (o *gatherMergeOp) Next() (*binding, error) {
	if o.pos >= len(o.out) {
		return nil, nil
	}
	b := o.out[o.pos]
	o.pos++
	return b, nil
}

func (o *gatherMergeOp) Close() error {
	o.out = nil
	return nil
}

func (o *gatherMergeOp) Describe() string {
	if o.mode == gatherBestK {
		return fmt.Sprintf("GatherMerge(shards=%d, workers=%d, merge=bestk k=%d)",
			len(o.children), o.workers, o.k)
	}
	return fmt.Sprintf("GatherMerge(shards=%d, workers=%d, merge=id)", len(o.children), o.workers)
}

// Children returns the shard-0 subplan as the representative subtree
// (all shards share the same shape, like Parallel's template).
func (o *gatherMergeOp) Children() []Operator {
	if len(o.children) == 0 {
		return nil
	}
	return []Operator{o.children[0]}
}

// bindingID is the merge key: the tuple id bound under the gather's
// alias.
func bindingID(b *binding, alias string) int {
	t, _ := b.tupleFor(alias)
	return t.ID
}

// mergeByID merges shard outputs into ascending global id order. Scan
// streams arrive already sorted; index-range streams arrive in index
// traversal order, so each buffer is sorted first. The sort must be
// stable: join subplans emit the same outer id once per inner match
// (already grouped in ascending-inner order), and a stable sort keeps
// each group's inner order intact. Across buffers ids never tie — the
// merge key is the OUTER id and outer rows partition across shards.
func mergeByID(bufs [][]*binding, alias string) []*binding {
	total := 0
	for _, buf := range bufs {
		total += len(buf)
		sort.SliceStable(buf, func(i, j int) bool { return bindingID(buf[i], alias) < bindingID(buf[j], alias) })
	}
	out := make([]*binding, 0, total)
	pos := make([]int, len(bufs))
	for {
		best := -1
		for i, buf := range bufs {
			if pos[i] >= len(buf) {
				continue
			}
			if best < 0 || bindingID(buf[pos[i]], alias) < bindingID(bufs[best][pos[best]], alias) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, bufs[best][pos[best]])
		pos[best]++
	}
}

// mergeBestK merges per-shard k-best lists (each ascending by
// (dist, id)) into the global k-best. The merge is rank-aware: it
// compares only the shards' frontier entries and stops the moment k
// results are fixed, so once the k-th best distance beats every shard
// frontier the remaining entries are never touched. Ties on distance
// resolve by ascending tuple id — a total order over rows — which makes
// the output independent of shard completion order.
func mergeBestK(bufs [][]*binding, alias string, k int) []*binding {
	out := make([]*binding, 0, k)
	pos := make([]int, len(bufs))
	for len(out) < k {
		best := -1
		for i, buf := range bufs {
			if pos[i] >= len(buf) {
				continue
			}
			if best < 0 || lessDistID(buf[pos[i]], bufs[best][pos[best]], alias) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, bufs[best][pos[best]])
		pos[best]++
	}
	return out
}

// lessDistID orders bindings by (dist, id) ascending.
func lessDistID(a, b *binding, alias string) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return bindingID(a, alias) < bindingID(b, alias)
}
