package query

import (
	"strings"
	"testing"
)

// fuzzSeeds covers every statement family, the DML grammar included, so
// the fuzzers start from the interesting corners of the language.
var fuzzSeeds = []string{
	`SELECT * FROM words WHERE seq SIMILAR TO "colour" WITHIN 2 USING edits`,
	`SELECT a.seq, dist FROM s a, s b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING e ORDER BY dist DESC LIMIT 3`,
	`SELECT * FROM words WHERE seq NEAREST 5 TO "color" USING edits`,
	`SELECT * FROM w WHERE seq SIMILAR TO PATTERN "a(b|c)*d" WITHIN 1 USING edits`,
	`SELECT * FROM w WHERE seq SIMILAR TO ? WITHIN ? USING e LIMIT ?`,
	`SELECT * FROM w WHERE seq SIMILAR TO :t WITHIN :r USING e`,
	`EXPLAIN SELECT * FROM w WHERE NOT (a = "x" OR b != "y")`,
	`INSERT INTO words VALUES ("abc")`,
	`INSERT INTO words (seq, lang) VALUES ("abc", "en"), (?, ?)`,
	`DELETE FROM words WHERE seq SIMILAR TO "tmp" WITHIN 1 USING edits`,
	`DELETE FROM words`,
	`UPDATE words SET seq = :s, lang = "en" WHERE id = :id`,
	`EXPLAIN UPDATE w SET seq = "x" WHERE seq NEAREST 3 TO "y" USING e`,
	`;`, `"unterminated`, `:`, `INSERT INTO`, `UPDATE SET`,
	"SELECT * FROM w WHERE a = \"\\\"esc\\\"\"",
	// The -shards DML paths: statements the sharded oracle and the
	// segmented-WAL ingest route through hash partitioning. Parsing is
	// topology-agnostic, but these shapes seed the corpus with the
	// id-addressed and batch forms sharded routing must handle.
	`INSERT INTO words (seq, tag) VALUES ("abcj", "1"), ("jihg", "2"), ("aaaa", "0")`,
	`DELETE FROM words WHERE id = "17"`,
	`UPDATE words SET seq = "bdfh" WHERE seq SIMILAR TO "bdfg" WITHIN 1 USING edits`,
	`UPDATE words SET seq = "moved" WHERE id = "3"`,
	`EXPLAIN SELECT id, seq, dist FROM words WHERE seq NEAREST 7 TO "cadgbeif" USING edits`,
}

// FuzzLex asserts the lexer never panics and that every token it emits
// stays inside the input's bounds.
func FuzzLex(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("lex(%q): missing EOF token", src)
		}
		for _, tok := range toks {
			if tok.pos < 0 || tok.pos > len(src) {
				t.Fatalf("lex(%q): token %v out of bounds", src, tok)
			}
		}
	})
}

// FuzzParse asserts the parser never panics, and that every statement
// it accepts round-trips: rendering it and parsing the rendering yields
// the same rendering (a fixpoint after at most one normalisation step).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := ParseStatement(src)
		if err != nil {
			return
		}
		first := stmt.String()
		re, err := ParseStatement(first)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", src, first, err)
		}
		if second := re.String(); second != first {
			t.Fatalf("rendering not a fixpoint: %q -> %q", first, second)
		}
		// The DML text sniffer must agree with the parser's verdict.
		_, isMut := stmt.(*Mutation)
		if isDMLText(src) != isMut && !strings.EqualFold(strings.TrimSpace(src), "") {
			t.Fatalf("isDMLText(%q) = %v, parser says %v", src, isDMLText(src), isMut)
		}
	})
}
