package query

// This file holds the physical operators of the Volcano-style execution
// pipeline. Each operator pulls bindings from its children, does one
// job, and counts its own work; the planner in plan.go composes them
// into trees.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/index"
	"repro/internal/metric"
	"repro/internal/relation"
)

// infCut bounds finite distances: +Inf means unreachable.
const infCut = 1e300

// ---------------------------------------------------------------- scan

// recycler is implemented by operators that can reuse a binding their
// consumer rejected. A scan allocates one binding per visible tuple and
// a selective filter discards nearly all of them; handing the rejects
// back turns millions of per-candidate allocations into one scratch
// binding per pipeline, which is a large share of a scan-bound query's
// GC bill. Only safe when the rejected binding has not escaped — the
// filter rejects before anything else sees it.
type recycler interface{ recycle(*binding) }

// scanOp streams the visible tuples of one snapshot shard. Shard (i, n)
// covers a contiguous arena range, so concatenating shards 0..n-1
// reproduces the serial scan order — the invariant parallel plans rely
// on. Reading through the snapshot gives every query a consistent view
// while concurrent commits land.
type scanOp struct {
	ctx           *execCtx
	snap          *relation.Snapshot
	alias         string
	shard, shards int

	cur   *relation.Cursor
	free  *binding // last recycled binding, reused by the next Next
	local ExecStats
	last  ExecStats // retained across Close for span attribution
}

func newScanOp(ctx *execCtx, snap *relation.Snapshot, alias string) *scanOp {
	return &scanOp{ctx: ctx, snap: snap, alias: alias, shards: 1}
}

func (o *scanOp) Open() error {
	o.cur = o.snap.Shard(o.shard, o.shards)
	o.free = nil
	return nil
}

func (o *scanOp) Next() (*binding, error) {
	t, ok := o.cur.Next()
	if !ok {
		return nil, nil
	}
	o.local.Candidates++
	if b := o.free; b != nil {
		o.free = nil
		*b = binding{alias: o.alias, tuple: t}
		return b, nil
	}
	return newBinding(o.alias, t), nil
}

func (o *scanOp) recycle(b *binding) { o.free = b }

func (o *scanOp) Close() error {
	o.last.add(o.local)
	o.ctx.addStats(o.local)
	o.local = ExecStats{}
	return nil
}

func (o *scanOp) opStats() ExecStats { return o.last }

func (o *scanOp) Describe() string {
	if o.shards > 1 {
		return fmt.Sprintf("Scan(%s, shard %d/%d)", o.alias, o.shard, o.shards)
	}
	return fmt.Sprintf("Scan(%s)", o.alias)
}

func (o *scanOp) Children() []Operator { return nil }

// multiScanOp streams the visible tuples of several snapshots (the
// shard snapshots of a broadcast join inner) merged by ascending
// global tuple id. Ids are global and each shard's arena is already
// ascending in id, so the merge reproduces exactly the order a
// single-snapshot scan of the unsharded twin yields — which is what
// keeps sharded join output byte-identical to the plain plan's.
type multiScanOp struct {
	ctx   *execCtx
	snaps []*relation.Snapshot
	alias string

	cursors []*relation.Cursor
	heads   []relation.Tuple
	ok      []bool
	free    *binding // last recycled binding, reused by the next Next
	local   ExecStats
	last    ExecStats // retained across Close for span attribution
}

func (o *multiScanOp) Open() error {
	o.cursors = make([]*relation.Cursor, len(o.snaps))
	o.heads = make([]relation.Tuple, len(o.snaps))
	o.ok = make([]bool, len(o.snaps))
	for i, s := range o.snaps {
		o.cursors[i] = s.Shard(0, 1)
		o.heads[i], o.ok[i] = o.cursors[i].Next()
	}
	o.free = nil
	return nil
}

func (o *multiScanOp) Next() (*binding, error) {
	best := -1
	for i := range o.heads {
		if o.ok[i] && (best < 0 || o.heads[i].ID < o.heads[best].ID) {
			best = i
		}
	}
	if best < 0 {
		return nil, nil
	}
	t := o.heads[best]
	o.heads[best], o.ok[best] = o.cursors[best].Next()
	o.local.Candidates++
	if b := o.free; b != nil {
		o.free = nil
		*b = binding{alias: o.alias, tuple: t}
		return b, nil
	}
	return newBinding(o.alias, t), nil
}

func (o *multiScanOp) recycle(b *binding) { o.free = b }

func (o *multiScanOp) Close() error {
	o.last.add(o.local)
	o.ctx.addStats(o.local)
	o.local = ExecStats{}
	return nil
}

func (o *multiScanOp) opStats() ExecStats { return o.last }

func (o *multiScanOp) Describe() string {
	return fmt.Sprintf("Scan(%s, %d shards merged)", o.alias, len(o.snaps))
}

func (o *multiScanOp) Children() []Operator { return nil }

// --------------------------------------------------------- index range

// indexRangeOp streams matches of "seq SIMILAR TO lit WITHIN k" from a
// metric index (BK-tree or trie, chosen by the cost model). The
// underlying iterator is lazy, so a LIMIT above this operator stops the
// index traversal early instead of post-filtering a full result. The
// online-maintained index is a superset of the snapshot, so every match
// passes through the snapshot's visibility filter: tombstoned rows and
// post-snapshot inserts are skipped.
type indexRangeOp struct {
	ctx     *execCtx
	snap    *relation.Snapshot
	alias   string
	via     string // "bktree" or "trie"
	target  string
	radius  int
	ruleSet string

	iter index.Iterator
	last ExecStats // retained across Close for span attribution
}

func (o *indexRangeOp) Open() error {
	var idx index.Index
	switch o.via {
	case "trie":
		idx = o.snap.Trie()
	default:
		idx = o.snap.BKTree()
	}
	o.iter = idx.RangeIter(o.target, o.radius)
	return nil
}

func (o *indexRangeOp) Next() (*binding, error) {
	for {
		m, ok := o.iter.Next()
		if !ok {
			return nil, nil
		}
		t, ok := o.snap.Tuple(m.ID)
		if !ok {
			continue // invisible at this snapshot (tombstone or later insert)
		}
		b := newBinding(o.alias, t)
		b.dist, b.hasDist = m.Dist, true
		return b, nil
	}
}

func (o *indexRangeOp) Close() error {
	if o.iter != nil {
		es := fromIndexStats(o.iter.Stats())
		o.last.add(es)
		o.ctx.addStats(es)
		o.iter = nil
	}
	return nil
}

func (o *indexRangeOp) opStats() ExecStats { return o.last }

func (o *indexRangeOp) Describe() string {
	return fmt.Sprintf("IndexRange(%s via %s, target=%s, radius=%d, ruleset=%s)",
		o.alias, o.via, o.target, o.radius, o.ruleSet)
}
func (o *indexRangeOp) Children() []Operator { return nil }

// ----------------------------------------------------------- nearest-k

// nearestKOp answers "seq NEAREST k TO lit". The bktree variant walks
// the metric tree best-first; the scan variant keeps a bounded
// best-list and verifies each tuple with the banded DP cut off at the
// current kth-best distance, so most tuples abort their DP early.
type nearestKOp struct {
	ctx     *execCtx
	snap    *relation.Snapshot
	alias   string
	via     string // "bktree" or "scan"
	target  string
	k       int
	ruleSet string

	matches []index.Match
	pos     int
	last    ExecStats // retained across Close for span attribution
}

func (o *nearestKOp) opStats() ExecStats { return o.last }

func (o *nearestKOp) Open() error {
	o.pos = 0
	if o.via == "bktree" {
		// The shared tree may hold tombstoned or post-snapshot entries;
		// the visibility filter keeps them out of the best list without
		// losing true answers.
		m, st := o.snap.BKTree().NearestKFilterStats(o.target, o.k, o.snap.Visible)
		o.matches = m
		es := fromIndexStats(st)
		o.last.add(es)
		o.ctx.addStats(es)
		return nil
	}
	calc := o.ctx.eng.calc(o.ruleSet)
	if calc == nil {
		return fmt.Errorf("query: NEAREST requires an edit-like rule set (%q is not)", o.ruleSet)
	}
	var local ExecStats
	// best holds up to k matches sorted ascending by (dist, id); bound
	// is the kth-best distance once the list is full, at which point the
	// banded DP abandons most candidates early.
	var best []index.Match
	bound := math.Inf(1)
	cur := o.snap.Shard(0, 1)
	for t, ok := cur.Next(); ok; t, ok = cur.Next() {
		local.Candidates++
		local.Verifications++
		var d float64
		var within bool
		if math.IsInf(bound, 1) {
			d = calc.Distance(t.Seq, o.target)
			within = d < infCut
		} else {
			d, within = calc.Within(t.Seq, o.target, bound)
		}
		if !within {
			local.Abandoned++
			continue
		}
		best = index.PushBestK(best, index.Match{ID: t.ID, S: t.Seq, Dist: d}, o.k)
		if len(best) == o.k {
			bound = best[o.k-1].Dist
		}
	}
	o.matches = best
	o.last.add(local)
	o.ctx.addStats(local)
	return nil
}

func (o *nearestKOp) Next() (*binding, error) {
	if o.pos >= len(o.matches) {
		return nil, nil
	}
	m := o.matches[o.pos]
	o.pos++
	t, _ := o.snap.Tuple(m.ID)
	b := newBinding(o.alias, t)
	b.dist, b.hasDist = m.Dist, true
	return b, nil
}

func (o *nearestKOp) Close() error {
	o.matches = nil
	return nil
}

func (o *nearestKOp) Describe() string {
	return fmt.Sprintf("NearestK(%s via %s, k=%d, ruleset=%s)", o.alias, o.via, o.k, o.ruleSet)
}

func (o *nearestKOp) Children() []Operator { return nil }

// -------------------------------------------------------------- filter

// filterOp keeps bindings satisfying a residual predicate. Rejected
// bindings are handed back to a recycling child (see recycler) — they
// have escaped nowhere, so the scan below can reuse the allocation.
type filterOp struct {
	ctx   *execCtx
	child Operator
	pred  Expr

	rec   recycler // non-nil when child recycles rejected bindings
	local ExecStats
	last  ExecStats // retained across Close for span attribution
}

func (o *filterOp) Open() error {
	o.rec, _ = o.child.(recycler)
	return o.child.Open()
}

func (o *filterOp) Next() (*binding, error) {
	for {
		b, err := o.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		o.local.Verifications++
		ok, err := o.ctx.eng.evalExpr(o.pred, b)
		if err != nil {
			return nil, err
		}
		if ok {
			return b, nil
		}
		if o.rec != nil {
			o.rec.recycle(b)
		}
	}
}

func (o *filterOp) Close() error {
	o.last.add(o.local)
	o.ctx.addStats(o.local)
	o.local = ExecStats{}
	return o.child.Close()
}

func (o *filterOp) opStats() ExecStats { return o.last }

func (o *filterOp) Describe() string     { return fmt.Sprintf("Filter(%s)", o.pred) }
func (o *filterOp) Children() []Operator { return []Operator{o.child} }

// ------------------------------------------------------------- project

// projectOp materialises the output row of each binding.
type projectOp struct {
	ctx   *execCtx
	q     *Query
	child Operator
}

func (o *projectOp) Open() error { return o.child.Open() }

func (o *projectOp) Next() (*binding, error) {
	b, err := o.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	row, err := projectRow(o.ctx.eng, o.q, b)
	if err != nil {
		return nil, err
	}
	b.row = row
	return b, nil
}

func (o *projectOp) Close() error { return o.child.Close() }

func (o *projectOp) Describe() string {
	if len(o.q.Select) == 0 {
		return "Project(*)"
	}
	parts := make([]string, len(o.q.Select))
	for i, c := range o.q.Select {
		parts[i] = c.String()
	}
	return fmt.Sprintf("Project(%s)", strings.Join(parts, ", "))
}

func (o *projectOp) Children() []Operator { return []Operator{o.child} }

// --------------------------------------------------------------- limit

// limitOp stops pulling after n bindings. Because the pipeline is
// pull-based, everything below it — index iterators included — stops
// working the moment the limit is reached.
type limitOp struct {
	child Operator
	n     int
	seen  int
}

func (o *limitOp) Open() error { o.seen = 0; return o.child.Open() }

func (o *limitOp) Next() (*binding, error) {
	if o.seen >= o.n {
		return nil, nil
	}
	b, err := o.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	o.seen++
	return b, nil
}

func (o *limitOp) Close() error         { return o.child.Close() }
func (o *limitOp) Describe() string     { return fmt.Sprintf("Limit(%d)", o.n) }
func (o *limitOp) Children() []Operator { return []Operator{o.child} }

// ------------------------------------------------------- order by dist

// orderByDistOp is a blocking sort on the binding distance. Bindings
// without a distance sort last; ties keep the child's deterministic
// order (stable sort).
type orderByDistOp struct {
	child Operator
	desc  bool

	buf []*binding
	pos int
}

func (o *orderByDistOp) Open() error {
	o.buf, o.pos = nil, 0
	if err := o.child.Open(); err != nil {
		return err
	}
	for {
		b, err := o.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		o.buf = append(o.buf, b)
	}
	key := func(b *binding) float64 {
		if !b.hasDist {
			// Dist-less bindings sort last in either direction.
			if o.desc {
				return math.Inf(-1)
			}
			return math.Inf(1)
		}
		return b.dist
	}
	sort.SliceStable(o.buf, func(i, j int) bool {
		if o.desc {
			return key(o.buf[i]) > key(o.buf[j])
		}
		return key(o.buf[i]) < key(o.buf[j])
	})
	return nil
}

func (o *orderByDistOp) Next() (*binding, error) {
	if o.pos >= len(o.buf) {
		return nil, nil
	}
	b := o.buf[o.pos]
	o.pos++
	return b, nil
}

func (o *orderByDistOp) Close() error {
	o.buf = nil
	return o.child.Close()
}

func (o *orderByDistOp) Describe() string {
	if o.desc {
		return "OrderByDist(desc)"
	}
	return "OrderByDist(asc)"
}

func (o *orderByDistOp) Children() []Operator { return []Operator{o.child} }

// --------------------------------------------------- nested-loop join

// nestedLoopJoinOp evaluates a similarity join by re-opening its inner
// child per outer binding and verifying the join predicate pairwise
// through evalSim. It works for any rule set or metric because the
// distance direction follows the predicate (field -> target), not the
// join order.
type nestedLoopJoinOp struct {
	ctx   *execCtx
	outer Operator
	inner Operator
	sim   *SimExpr

	cur   *binding
	local ExecStats
	last  ExecStats // retained across Close for span attribution
}

func (o *nestedLoopJoinOp) opStats() ExecStats { return o.last }

func (o *nestedLoopJoinOp) Open() error {
	o.cur = nil
	return o.outer.Open()
}

func (o *nestedLoopJoinOp) Next() (*binding, error) {
	for {
		if o.cur == nil {
			b, err := o.outer.Next()
			if err != nil || b == nil {
				return nil, err
			}
			o.cur = b
			if err := o.inner.Open(); err != nil {
				return nil, err
			}
		}
		ib, err := o.inner.Next()
		if err != nil {
			return nil, err
		}
		if ib == nil {
			if err := o.inner.Close(); err != nil {
				return nil, err
			}
			o.cur = nil
			continue
		}
		b := mergeBindings(o.cur, ib)
		o.local.Candidates++
		o.local.Verifications++
		d, ok, err := o.ctx.eng.evalSim(o.sim, b)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if !b.hasDist {
			b.dist, b.hasDist = d, true
		}
		return b, nil
	}
}

func (o *nestedLoopJoinOp) Close() error {
	o.last.add(o.local)
	o.ctx.addStats(o.local)
	o.local = ExecStats{}
	if o.cur != nil {
		o.cur = nil
		o.inner.Close()
	}
	return o.outer.Close()
}

func (o *nestedLoopJoinOp) Describe() string {
	return fmt.Sprintf("NestedLoopJoin(on %s)", o.sim)
}

func (o *nestedLoopJoinOp) Children() []Operator { return []Operator{o.outer, o.inner} }

// --------------------------------------------------------- index join

// indexJoinOp probes each outer binding's join value into the inner
// relation's metric index — the BK-tree for unit-cost edit edges with
// integral radius, the VP-tree for vector edges under a triangular
// metric. The inner side is a list of snapshots: one for a plain
// relation, one per shard when a sharded inner is broadcast; per probe
// the per-snapshot match lists concatenate and sort by global tuple
// id, so the emission order is identical to the unsharded plan's.
type indexJoinOp struct {
	ctx        *execCtx
	outer      Operator
	snaps      []*relation.Snapshot // inner, indexed side (broadcast when > 1)
	alias      string               // inner alias
	probeField FieldRef             // outer-side join field
	sim        *SimExpr
	vec        bool
	m          metric.Distance // vec edges: the resolved metric

	cur     *binding
	matches []joinIndexMatch
	pos     int
	local   ExecStats
	last    ExecStats // retained across Close for span attribution
}

// joinIndexMatch tags an index match with the snapshot that produced
// it, so visibility resolves against the right shard.
type joinIndexMatch struct {
	snap int
	m    index.Match
}

func (o *indexJoinOp) Open() error {
	o.cur, o.matches, o.pos = nil, nil, 0
	return o.outer.Open()
}

// probe runs the outer binding's join value through every inner
// snapshot's index and leaves the id-sorted matches in o.matches.
func (o *indexJoinOp) probe(b *binding) error {
	o.matches, o.pos = o.matches[:0], 0
	if o.vec {
		t, err := vecTupleFor(o.probeField, b)
		if err != nil {
			return err
		}
		if t.Vec == nil {
			return nil // rows without a vector never match
		}
		for si, snap := range o.snaps {
			m, st := snap.VPTree(o.m).RangeStats(t.Vec, o.sim.Radius)
			for _, mm := range m {
				o.matches = append(o.matches, joinIndexMatch{snap: si, m: mm})
			}
			o.local.add(fromIndexStats(st))
		}
	} else {
		probe, err := fieldValue(o.probeField, b)
		if err != nil {
			return err
		}
		for si, snap := range o.snaps {
			m, st := snap.BKTree().RangeStats(probe, int(o.sim.Radius))
			for _, mm := range m {
				o.matches = append(o.matches, joinIndexMatch{snap: si, m: mm})
			}
			o.local.add(fromIndexStats(st))
		}
	}
	sort.Slice(o.matches, func(i, j int) bool { return o.matches[i].m.ID < o.matches[j].m.ID })
	return nil
}

func (o *indexJoinOp) Next() (*binding, error) {
	for {
		if o.cur == nil {
			b, err := o.outer.Next()
			if err != nil || b == nil {
				return nil, err
			}
			o.cur = b
			if err := o.probe(b); err != nil {
				return nil, err
			}
		}
		if o.pos >= len(o.matches) {
			o.cur = nil
			continue
		}
		m := o.matches[o.pos]
		o.pos++
		t, ok := o.snaps[m.snap].Tuple(m.m.ID)
		if !ok {
			continue // invisible at this snapshot (tombstone or later insert)
		}
		b := mergeBindings(o.cur, newBinding(o.alias, t))
		if !b.hasDist {
			b.dist, b.hasDist = m.m.Dist, true
		}
		return b, nil
	}
}

func (o *indexJoinOp) Close() error {
	o.last.add(o.local)
	o.ctx.addStats(o.local)
	o.local = ExecStats{}
	return o.outer.Close()
}

func (o *indexJoinOp) opStats() ExecStats { return o.last }

func (o *indexJoinOp) Describe() string {
	idx := "bktree"
	if o.vec {
		idx = "vptree"
	}
	if len(o.snaps) > 1 {
		return fmt.Sprintf("IndexJoin(probe %s into %s(%s) x%d shards, on %s)",
			o.probeField, idx, o.alias, len(o.snaps), o.sim)
	}
	return fmt.Sprintf("IndexJoin(probe %s into %s(%s), on %s)", o.probeField, idx, o.alias, o.sim)
}

func (o *indexJoinOp) Children() []Operator { return []Operator{o.outer} }

// mergeBindings combines the alias maps of two bindings; the left
// binding's distance (if any) wins, preserving first-predicate-sets-
// dist semantics across join chains.
func mergeBindings(l, r *binding) *binding {
	aliases := make(map[string]relation.Tuple, 4)
	put := func(src *binding) {
		if src.aliases == nil {
			aliases[src.alias] = src.tuple
			return
		}
		for a, t := range src.aliases {
			aliases[a] = t
		}
	}
	put(l)
	put(r)
	b := &binding{aliases: aliases, dist: l.dist, hasDist: l.hasDist}
	if !b.hasDist && r.hasDist {
		b.dist, b.hasDist = r.dist, true
	}
	return b
}

// ------------------------------------------------------------ parallel

// parallelOp shards a pipeline across workers. build(i, n) must return
// the serial pipeline restricted to shard i of n; because shards are
// contiguous tuple ranges and each shard pipeline is deterministic, the
// shard-order merge is byte-identical to the serial plan's output.
//
// The operator materialises shard outputs in Open — similarity work
// (the DP verifications) dominates binding buffering by orders of
// magnitude, so this trades negligible memory for full parallelism.
type parallelOp struct {
	ctx      *execCtx
	workers  int
	build    func(shard, shards int) Operator
	template Operator // shard-0 pipeline, used only for EXPLAIN

	// prebuilt holds the per-shard pipelines when tracing: building them
	// eagerly lets the span extractor visit the instances that actually
	// executed instead of the throwaway template.
	prebuilt []Operator

	bufs  [][]*binding
	shard int
	pos   int
}

// executedInstances exposes the per-shard pipelines for span
// extraction; nil when the plan is not traced.
func (o *parallelOp) executedInstances() []any {
	out := make([]any, len(o.prebuilt))
	for i, p := range o.prebuilt {
		out[i] = p
	}
	return out
}

func (o *parallelOp) shardPipeline(i int) Operator {
	if o.prebuilt != nil {
		return o.prebuilt[i]
	}
	return o.build(i, o.workers)
}

func (o *parallelOp) Open() error {
	o.bufs = make([][]*binding, o.workers)
	o.shard, o.pos = 0, 0
	errs := make([]error, o.workers)
	var wg sync.WaitGroup
	for i := 0; i < o.workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op := o.shardPipeline(i)
			if err := op.Open(); err != nil {
				errs[i] = err
				op.Close()
				return
			}
			for {
				b, err := op.Next()
				if err != nil {
					errs[i] = err
					break
				}
				if b == nil {
					break
				}
				o.bufs[i] = append(o.bufs[i], b)
			}
			if err := op.Close(); err != nil && errs[i] == nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (o *parallelOp) Next() (*binding, error) {
	for o.shard < len(o.bufs) {
		if o.pos < len(o.bufs[o.shard]) {
			b := o.bufs[o.shard][o.pos]
			o.pos++
			return b, nil
		}
		o.shard++
		o.pos = 0
	}
	return nil, nil
}

func (o *parallelOp) Close() error {
	o.bufs = nil
	return nil
}

func (o *parallelOp) Describe() string {
	return fmt.Sprintf("Parallel(workers=%d)", o.workers)
}

func (o *parallelOp) Children() []Operator { return []Operator{o.template} }
