package query

// Vectorized scatter-gather over sharded relations: the batch twin of
// shard_operators.go. Shard subplans are batch pipelines drained by the
// same bounded worker pool into per-shard column buffers; the merges
// (id-ordered for scans and ranges, rank-aware (dist, id) bounded for
// NEAREST) are identical to the row gather's, so a vectorized sharded
// plan emits byte-identical rows in byte-identical order.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metric"
	"repro/internal/obs"
	"repro/internal/relation"
)

// buildShardedBatchTree constructs the vectorized scatter-gather
// operator tree for a decided single-relation query over a sharded
// relation; the structure (per-shard filters, per-shard pushed limits,
// gather mode) mirrors buildShardedPlan exactly.
func (e *Engine) buildShardedBatchTree(q *Query, d *planDecision, view *relation.ShardView, st relation.Stats, ctx *execCtx, cp *compiledPlan) (*compiledPlan, error) {
	n := view.NumShards()
	alias := q.From[0].Alias
	size := e.batchLeafSize(q)
	cp.batchSize = size
	cp.kernel = d.kernel

	children := make([]BatchOperator, n)
	var access BatchOperator
	switch d.kind {
	case accessNearest:
		ne := q.Where.(NearestExpr)
		gatherEst := estNearestRows(n*st.Count, ne.K)
		if isVecNearest(&ne) {
			gatherEst = estNearestRows(n*st.VecCount, ne.K)
			for i := range children {
				children[i] = trB(ctx, &batchShardVecNearestKOp{
					batchVecNearestKOp: batchVecNearestKOp{
						ctx: ctx, snap: view.Snap(i), alias: alias,
						via: d.via, target: ne.Target.Vec, k: ne.K, metricName: ne.RuleSet, size: size,
					},
					idx: i, of: n,
				}, estNearestRows(st.VecCount, ne.K), d.kernel)
			}
		} else {
			for i := range children {
				children[i] = trB(ctx, &batchShardNearestKOp{
					batchNearestKOp: batchNearestKOp{
						ctx: ctx, snap: view.Snap(i), alias: alias,
						via: d.via, target: ne.Target.Lit, k: ne.K, ruleSet: ne.RuleSet, size: size,
					},
					idx: i, of: n,
				}, estNearestRows(st.Count, ne.K), d.kernel)
			}
		}
		access = trB(ctx, &batchGatherMergeOp{ctx: ctx, children: children, workers: d.workers,
			mode: gatherBestK, k: ne.K, size: size}, gatherEst, "")
	case accessRange:
		if d.via == "vptree" {
			sim, residual := extractVecRangeSim(q.Where)
			if sim == nil {
				return nil, fmt.Errorf("query: stale plan: no vector range conjunct")
			}
			pred := simplifyExpr(residual)
			for i := range children {
				var op BatchOperator = trB(ctx, &batchVecRangeOp{
					ctx: ctx, snap: view.Snap(i), alias: alias,
					target: sim.Target.Vec, radius: sim.Radius, metricName: sim.RuleSet, size: size,
				}, estVecRangeRows(st, sim.Radius), d.kernel)
				if !isTrivial(pred) {
					op = trB(ctx, &batchFilterOp{ctx: ctx, child: op, pred: pred, alias: alias},
						estFilterRows(st, pred, estOfBatch(op)), e.filterKernel(pred))
				}
				if q.Limit > 0 && q.Order == OrderNone {
					op = trB(ctx, &batchLimitOp{child: op, n: q.Limit}, estLimitRows(q.Limit, estOfBatch(op)), "")
				}
				children[i] = op
			}
			access = trB(ctx, &batchGatherMergeOp{ctx: ctx, children: children, workers: d.workers,
				mode: gatherByID, size: size}, -1, "")
			break
		}
		sim, residual := extractRangeSim(q.Where, e.rangeIndexable)
		if sim == nil {
			return nil, fmt.Errorf("query: stale plan: no indexable conjunct")
		}
		pred := simplifyExpr(residual)
		for i := range children {
			var op BatchOperator = trB(ctx, &batchIndexRangeOp{
				ctx: ctx, snap: view.Snap(i), alias: alias, via: d.via,
				target: sim.Target.Lit, radius: int(sim.Radius), ruleSet: sim.RuleSet, size: size,
			}, estRangeRows(st, sim.Radius), d.kernel)
			if !isTrivial(pred) {
				op = trB(ctx, &batchFilterOp{ctx: ctx, child: op, pred: pred, alias: alias},
					estFilterRows(st, pred, estOfBatch(op)), e.filterKernel(pred))
			}
			if q.Limit > 0 && q.Order == OrderNone {
				// Same per-shard pushdown as the row gather: each shard needs
				// at most LIMIT matches, so the index traversal stops early.
				op = trB(ctx, &batchLimitOp{child: op, n: q.Limit}, estLimitRows(q.Limit, estOfBatch(op)), "")
			}
			children[i] = op
		}
		access = trB(ctx, &batchGatherMergeOp{ctx: ctx, children: children, workers: d.workers,
			mode: gatherByID, size: size}, -1, "")
	case accessScan:
		pred := simplifyExpr(q.Where)
		for i := range children {
			sc := newBatchScanOp(ctx, view.Snap(i), alias, size)
			var op BatchOperator = trB(ctx, &batchShardScanOp{batchScanOp: *sc, idx: i, of: n},
				float64(st.Count), "")
			if !isTrivial(pred) {
				op = trB(ctx, &batchFilterOp{ctx: ctx, child: op, pred: pred, alias: alias},
					estFilterRows(st, pred, estOfBatch(op)), e.filterKernel(pred))
			}
			if q.Limit > 0 && q.Order == OrderNone {
				op = trB(ctx, &batchLimitOp{child: op, n: q.Limit}, estLimitRows(q.Limit, estOfBatch(op)), "")
			}
			children[i] = op
		}
		access = trB(ctx, &batchGatherMergeOp{ctx: ctx, children: children, workers: d.workers,
			mode: gatherByID, size: size}, -1, "")
	default:
		return nil, fmt.Errorf("query: access kind %d has no sharded build", d.kind)
	}

	cp.broot = e.wrapBatchTop(q, access, alias, size, ctx)
	return cp, nil
}

// ----------------------------------------------------------- shard scan

// batchShardScanOp is a batchScanOp over one shard's snapshot; it
// exists so EXPLAIN shows which shard each stream comes from.
type batchShardScanOp struct {
	batchScanOp
	idx, of int
}

func (o *batchShardScanOp) Describe() string {
	return fmt.Sprintf("ShardScan(%s, shard %d/%d)", o.alias, o.idx, o.of)
}

// ------------------------------------------------------ shard nearest-k

// batchShardNearestKOp is a batchNearestKOp over one shard snapshot.
type batchShardNearestKOp struct {
	batchNearestKOp
	idx, of int
}

func (o *batchShardNearestKOp) Describe() string {
	return fmt.Sprintf("ShardNearestK(%s, shard %d/%d, via %s, k=%d, ruleset=%s)",
		o.alias, o.idx, o.of, o.via, o.k, o.ruleSet)
}

// --------------------------------------------------------- gather merge

// shardCols is one shard's drained output in column form.
type shardCols struct {
	ids   []int
	seqs  []string
	vecs  []metric.Vector
	attrs []map[string]string
	dist  []float64
	has   []bool
	perm  []int // merge order over the columns (id-sorted for gatherByID)
}

func (c *shardCols) appendBatch(b *Batch) {
	c.ids = append(c.ids, b.IDs...)
	c.seqs = append(c.seqs, b.Seqs...)
	c.vecs = append(c.vecs, b.Vecs...)
	c.attrs = append(c.attrs, b.Attrs...)
	c.dist = append(c.dist, b.dist...)
	c.has = append(c.has, b.has...)
}

// batchGatherMergeOp drains one batch subplan per shard through a
// bounded worker pool and merges the column buffers. Shard subplans of
// a sharded single-relation query are always columnar, so the merge
// never sees a bindings-layout batch — sharded JOIN chains carry
// multi-alias bindings and therefore gather through the row
// gatherMergeOp instead (see buildShardedJoin).
type batchGatherMergeOp struct {
	ctx      *execCtx
	children []BatchOperator
	workers  int
	mode     gatherMode
	k        int // gatherBestK: result bound
	size     int

	cols    []shardCols
	pos     []int // per-shard frontier position into perm
	done    int   // rows emitted (gatherBestK stops at k)
	out     *Batch
	timings []obs.ShardTiming // per-shard drain wall time (traced runs only)
}

// executedInstances reports every shard subplan for span extraction —
// unlike childNodes (which shows the shard-0 template for EXPLAIN), all
// instances always execute, so ANALYZE merges the counters of each.
func (o *batchGatherMergeOp) executedInstances() []any {
	out := make([]any, len(o.children))
	for i, c := range o.children {
		out[i] = c
	}
	return out
}

// shardTimings reports the per-shard fan-out timing recorded by the last
// traced OpenBatch.
func (o *batchGatherMergeOp) shardTimings() []obs.ShardTiming { return o.timings }

func (o *batchGatherMergeOp) OpenBatch() error {
	o.cols = make([]shardCols, len(o.children))
	o.pos = make([]int, len(o.children))
	o.done = 0
	o.out = getBatch()
	errs := make([]error, len(o.children))
	if o.ctx.traced {
		o.timings = make([]obs.ShardTiming, len(o.children))
	}
	workers := o.workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(o.children) {
		workers = len(o.children)
	}
	drain := func(i int) {
		var start time.Time
		if o.ctx.traced {
			start = time.Now()
		}
		op := o.children[i]
		if err := op.OpenBatch(); err != nil {
			errs[i] = err
			op.CloseBatch()
			return
		}
		for {
			b, err := op.NextBatch()
			if err != nil {
				errs[i] = err
				break
			}
			if b == nil {
				break
			}
			o.cols[i].appendBatch(b)
		}
		if err := op.CloseBatch(); err != nil && errs[i] == nil {
			errs[i] = err
		}
		if o.ctx.traced {
			// Each worker owns a disjoint set of indices, so indexed writes
			// need no lock.
			o.timings[i] = obs.ShardTiming{
				Shard: i, WallNS: time.Since(start).Nanoseconds(), Rows: int64(len(o.cols[i].ids)),
			}
		}
	}
	if workers == 1 {
		// Single-worker gather: run the shard subplans inline — goroutine
		// overhead buys nothing without parallelism.
		for i := range o.children {
			drain(i)
		}
	} else {
		idxc := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxc {
					drain(i)
				}
			}()
		}
		for i := range o.children {
			idxc <- i
		}
		close(idxc)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i := range o.cols {
		c := &o.cols[i]
		c.perm = c.perm[:0]
		for j := range c.ids {
			c.perm = append(c.perm, j)
		}
		if o.mode == gatherByID {
			// Scan streams arrive id-sorted already; index-range streams
			// arrive in traversal order, so sort the merge permutation (ids
			// are unique — no tie to break).
			sort.Slice(c.perm, func(a, b int) bool { return c.ids[c.perm[a]] < c.ids[c.perm[b]] })
		}
		// gatherBestK frontiers consume each shard's k-best list in its
		// native (dist, id)-ascending order.
	}
	return nil
}

func (o *batchGatherMergeOp) NextBatch() (*Batch, error) {
	if o.mode == gatherBestK && o.done >= o.k {
		return nil, nil
	}
	b := o.out
	b.reset()
	for b.Len() < o.size {
		if o.mode == gatherBestK && o.done >= o.k {
			break
		}
		best := -1
		for i := range o.cols {
			c := &o.cols[i]
			if o.pos[i] >= len(c.perm) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			bi, bb := &o.cols[best], c.perm[o.pos[i]]
			bj := bi.perm[o.pos[best]]
			if o.mode == gatherBestK {
				// Rank-aware frontier: smallest (dist, id) wins; ties on
				// distance resolve by ascending tuple id, a total order.
				if c.dist[bb] < bi.dist[bj] || c.dist[bb] == bi.dist[bj] && c.ids[bb] < bi.ids[bj] {
					best = i
				}
			} else if c.ids[bb] < bi.ids[bj] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		c := &o.cols[best]
		j := c.perm[o.pos[best]]
		o.pos[best]++
		b.Block.Append(c.ids[j], c.seqs[j], c.vecs[j], c.attrs[j])
		b.dist = append(b.dist, c.dist[j])
		b.has = append(b.has, c.has[j])
		o.done++
	}
	if b.Len() == 0 {
		return nil, nil
	}
	return b, nil
}

func (o *batchGatherMergeOp) CloseBatch() error {
	o.cols, o.pos = nil, nil
	putBatch(o.out)
	o.out = nil
	return nil
}

func (o *batchGatherMergeOp) Describe() string {
	if o.mode == gatherBestK {
		return fmt.Sprintf("GatherMerge(shards=%d, workers=%d, merge=bestk k=%d)",
			len(o.children), o.workers, o.k)
	}
	return fmt.Sprintf("GatherMerge(shards=%d, workers=%d, merge=id)", len(o.children), o.workers)
}

// childNodes returns the shard-0 subplan as the representative subtree
// (all shards share the same shape, like the row gather's template).
func (o *batchGatherMergeOp) childNodes() []any {
	if len(o.children) == 0 {
		return nil
	}
	return []any{o.children[0]}
}
