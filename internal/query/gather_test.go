package query

// GatherMerge determinism: equal-distance rows must order by row key
// (tuple id) no matter which shard finishes first. The stub children
// block in Open until released, so each table case is executed under
// every permutation of shard completion order and must produce the
// same bytes.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/relation"
)

// stubShardOp emits a fixed binding list after its gate releases and
// signals done on Close, letting the test serialize shard completion
// into an exact order.
type stubShardOp struct {
	rows []*binding
	gate chan struct{}
	done chan struct{}
	pos  int
}

func (o *stubShardOp) Open() error {
	if o.gate != nil {
		<-o.gate
	}
	o.pos = 0
	return nil
}

func (o *stubShardOp) Next() (*binding, error) {
	if o.pos >= len(o.rows) {
		return nil, nil
	}
	b := o.rows[o.pos]
	o.pos++
	return b, nil
}

func (o *stubShardOp) Close() error {
	select {
	case <-o.done:
	default:
		close(o.done)
	}
	return nil
}

func (o *stubShardOp) Describe() string     { return "StubShard" }
func (o *stubShardOp) Children() []Operator { return nil }

func mkBinding(id int, dist float64) *binding {
	b := newBinding("t", relation.Tuple{ID: id, Seq: fmt.Sprintf("s%d", id)})
	b.dist, b.hasDist = dist, true
	return b
}

func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for i := 0; i <= len(sub); i++ {
			p := make([]int, 0, n)
			p = append(p, sub[:i]...)
			p = append(p, n-1)
			p = append(p, sub[i:]...)
			out = append(out, p)
		}
	}
	return out
}

// drainGather runs a gatherMergeOp whose children complete in the given
// order and returns the merged (id, dist) pairs.
func drainGather(t *testing.T, shardRows [][]*binding, mode gatherMode, k int, completion []int) [][2]float64 {
	t.Helper()
	children := make([]Operator, len(shardRows))
	stubs := make([]*stubShardOp, len(shardRows))
	for i, rows := range shardRows {
		stubs[i] = &stubShardOp{rows: rows, gate: make(chan struct{}), done: make(chan struct{})}
		children[i] = stubs[i]
	}
	op := &gatherMergeOp{
		ctx: &execCtx{}, children: children, workers: len(children),
		alias: "t", mode: mode, k: k,
	}
	done := make(chan error, 1)
	var got [][2]float64
	go func() {
		if err := op.Open(); err != nil {
			done <- err
			return
		}
		for {
			b, err := op.Next()
			if err != nil {
				done <- err
				return
			}
			if b == nil {
				break
			}
			tup, _ := b.tupleFor("t")
			got = append(got, [2]float64{float64(tup.ID), b.dist})
		}
		done <- op.Close()
	}()
	// Release the shards strictly in the permuted completion order:
	// shard i+1 may not even start until shard i has fully finished.
	for _, i := range completion {
		close(stubs[i].gate)
		<-stubs[i].done
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return got
}

// TestGatherMergeTieBreaking: table-driven over merge modes and tie
// layouts; every completion-order permutation must yield the identical
// output.
func TestGatherMergeTieBreaking(t *testing.T) {
	cases := []struct {
		name   string
		shards [][]*binding // per shard, in the shard's own emit order
		mode   gatherMode
		k      int
		want   [][2]float64
	}{
		{
			name: "bestk equal distances across shards",
			shards: [][]*binding{
				{mkBinding(3, 1), mkBinding(7, 1)},
				{mkBinding(1, 1), mkBinding(9, 1)},
				{mkBinding(5, 1), mkBinding(6, 1)},
			},
			mode: gatherBestK, k: 4,
			// All dist 1: ids ascending, truncated to k.
			want: [][2]float64{{1, 1}, {3, 1}, {5, 1}, {6, 1}},
		},
		{
			name: "bestk mixed distances with boundary tie",
			shards: [][]*binding{
				{mkBinding(10, 0), mkBinding(11, 2)},
				{mkBinding(2, 2), mkBinding(4, 3)},
				{mkBinding(8, 1)},
			},
			mode: gatherBestK, k: 3,
			// The k-th slot is contested by dist-2 rows 2 and 11: lower id
			// wins regardless of which shard delivered first.
			want: [][2]float64{{10, 0}, {8, 1}, {2, 2}},
		},
		{
			name: "bestk k larger than matches",
			shards: [][]*binding{
				{mkBinding(2, 2)},
				{},
				{mkBinding(1, 2)},
			},
			mode: gatherBestK, k: 10,
			want: [][2]float64{{1, 2}, {2, 2}},
		},
		{
			name: "id merge restores global scan order",
			shards: [][]*binding{
				{mkBinding(0, 1), mkBinding(5, 1)},
				{mkBinding(2, 1)},
				{mkBinding(1, 1), mkBinding(3, 1), mkBinding(4, 1)},
			},
			mode: gatherByID,
			want: [][2]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}},
		},
		{
			name: "id merge sorts unsorted index-traversal buffers",
			shards: [][]*binding{
				{mkBinding(6, 1), mkBinding(0, 2)}, // traversal order, not id order
				{mkBinding(3, 1), mkBinding(1, 3)},
			},
			mode: gatherByID,
			want: [][2]float64{{0, 2}, {1, 3}, {3, 1}, {6, 1}},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, perm := range permutations(len(c.shards)) {
				got := drainGather(t, c.shards, c.mode, c.k, perm)
				if !reflect.DeepEqual(got, c.want) {
					t.Fatalf("completion order %v: merged %v, want %v", perm, got, c.want)
				}
			}
		})
	}
}
