package query

// Planner and plan-cache behaviour over sharded relations: EXPLAIN
// shapes, the shard-count/StatsVersion cache-invalidation regression
// pins, prepared-query re-decision, per-shard LIMIT pushdown and the
// sharded broadcast join.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/rewrite"
)

// shardTestEngine builds an engine over one sharded relation "words"
// holding enough distinct rows to exercise every access path.
func shardTestEngine(t *testing.T, shards, rows int) *Engine {
	t.Helper()
	cat := relation.NewCatalog()
	sh := relation.NewSharded("words", shards)
	ins := make([]relation.InsertRow, rows)
	for i := range ins {
		ins[i] = relation.InsertRow{
			Seq:   fmt.Sprintf("%c%c%c%c", 'a'+i%7, 'a'+(i/7)%7, 'a'+(i/49)%7, 'a'+i%5),
			Attrs: map[string]string{"tag": fmt.Sprint(i % 3)},
		}
	}
	sh.InsertBatch(ins)
	cat.Add(sh)
	e := NewEngine(cat)
	rs := rewrite.MustRuleSet("edits", rewrite.UnitEdits("abcdefghij").Rules())
	if err := e.RegisterRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestShardedExplainShapes: every sharded access path plans under a
// GatherMerge root with shard-labelled leaves.
func TestShardedExplainShapes(t *testing.T) {
	e := shardTestEngine(t, 4, 200)
	cases := []struct {
		stmt string
		want []string
	}{
		{
			`EXPLAIN SELECT * FROM words WHERE tag = "1"`,
			[]string{"GatherMerge(shards=4", "merge=id", "ShardScan(words, shard 0/4)", "Filter("},
		},
		{
			`EXPLAIN SELECT * FROM words WHERE seq NEAREST 3 TO "abc" USING edits`,
			[]string{"GatherMerge(shards=4", "merge=bestk k=3", "ShardNearestK(words, shard 0/4, via bktree, k=3"},
		},
		{
			`EXPLAIN SELECT * FROM words WHERE seq SIMILAR TO "abcd" WITHIN 1 USING edits`,
			[]string{"GatherMerge(shards=4", "merge=id", "IndexRange(words via"},
		},
	}
	for _, c := range cases {
		res, err := e.Execute(c.stmt)
		if err != nil {
			t.Fatalf("%s: %v", c.stmt, err)
		}
		for _, frag := range c.want {
			if !strings.Contains(res.Plan, frag) {
				t.Errorf("%s:\nplan lacks %q:\n%s", c.stmt, frag, res.Plan)
			}
		}
	}
}

// TestShardedJoinBroadcast: joins over sharded relations execute as
// one chain per outer shard against a broadcast inner side, merged
// under GatherMerge (the full parity oracle lives in
// join_oracle_test.go).
func TestShardedJoinBroadcast(t *testing.T) {
	e := shardTestEngine(t, 2, 50)
	other := relation.New("other")
	other.Insert("aaab", map[string]string{"tag": "0"})
	e.Catalog().Add(other)
	res, err := e.Execute(`EXPLAIN SELECT a.seq, b.seq FROM words a, other b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING edits`)
	if err != nil {
		t.Fatalf("sharded join: %v", err)
	}
	// The 1-row plain relation wins the start slot, so the sharded side
	// is the broadcast inner: all its shard snapshots probed per chain.
	plan := res.Rows[0][0]
	if !strings.Contains(plan, "GatherMerge(") || !strings.Contains(plan, "x2 shards") {
		t.Fatalf("sharded join plan lacks gather + broadcast inner:\n%s", plan)
	}
	// A self-join over the sharded relation fans out one chain per
	// outer shard.
	res, err = e.Execute(`EXPLAIN SELECT a.seq, b.seq FROM words a, words b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING edits`)
	if err != nil {
		t.Fatalf("sharded self-join: %v", err)
	}
	plan = res.Rows[0][0]
	if !strings.Contains(plan, "GatherMerge(shards=2") || !strings.Contains(plan, "x2 shards") {
		t.Fatalf("sharded self-join plan lacks per-shard fan-out + broadcast inner:\n%s", plan)
	}
	got, err := e.Execute(`SELECT a.seq, b.seq FROM words a, other b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING edits`)
	if err != nil {
		t.Fatalf("sharded join: %v", err)
	}
	if len(got.Rows) == 0 {
		t.Fatal(`sharded join found no matches, expected at least "aaaa" ~ "aaab"`)
	}
	for _, row := range got.Rows {
		if row[1] != "aaab" {
			t.Fatalf("inner side produced %q, want aaab", row[1])
		}
	}
}

// TestShardedLimitPushdown: with LIMIT and no ORDER BY, each shard
// subplan stops at the limit — the scatter never drains whole shards
// for a 2-row answer.
func TestShardedLimitPushdown(t *testing.T) {
	e := shardTestEngine(t, 4, 2000)
	res, err := e.Execute(`SELECT * FROM words WHERE tag != "9" LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("LIMIT 2 returned %d rows", len(res.Rows))
	}
	// Every tuple matches the filter, so each of the 4 shards buffers at
	// most 2 bindings: the scan should touch far fewer than all rows.
	if res.Stats.Candidates > 100 {
		t.Fatalf("LIMIT 2 scanned %d candidates; per-shard limit not pushed down", res.Stats.Candidates)
	}
}

// TestPlanCacheShardCountChange pins the regression: a cached plan must
// never be served across a shard-count change, even though the
// statement text is identical.
func TestPlanCacheShardCountChange(t *testing.T) {
	e := shardTestEngine(t, 2, 100)
	stmt := `SELECT * FROM words WHERE tag = "1"`

	if _, err := e.Execute(stmt); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.PlanCacheHit {
		t.Fatal("second execution should hit the plan cache")
	}
	if !strings.Contains(res.Plan, "GatherMerge(shards=2") {
		t.Fatalf("cached plan is not the 2-shard plan:\n%s", res.Plan)
	}

	// Re-register the same name with a different shard count. The old
	// 2-shard plan must not be served: the very next execution re-plans
	// against the new topology.
	old, _ := e.Catalog().Lookup("words")
	resharded := relation.NewSharded("words", 4)
	rows := make([]relation.InsertRow, 0, old.Len())
	for _, tup := range old.Tuples() {
		rows = append(rows, relation.InsertRow{Seq: tup.Seq, Attrs: tup.Attrs})
	}
	resharded.InsertBatch(rows)
	e.Catalog().Add(resharded)

	res, err = e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHit {
		t.Fatal("plan cache served a plan across a shard-count change")
	}
	if !strings.Contains(res.Plan, "GatherMerge(shards=4") {
		t.Fatalf("re-planned query did not adopt the new topology:\n%s", res.Plan)
	}

	// Going back to unsharded must also start a fresh key space.
	plain := relation.New("words")
	for _, tup := range resharded.Tuples() {
		plain.Insert(tup.Seq, tup.Attrs)
	}
	e.Catalog().Add(plain)
	res, err = e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHit {
		t.Fatal("plan cache served a sharded plan to an unsharded relation")
	}
	if strings.Contains(res.Plan, "GatherMerge") {
		t.Fatalf("unsharded relation still executes a gather plan:\n%s", res.Plan)
	}
}

// TestPlanCacheShardedStatsVersionChange pins that DML against a
// sharded relation bumps StatsVersion and invalidates cached sharded
// plans, exactly like the unsharded regression tests.
func TestPlanCacheShardedStatsVersionChange(t *testing.T) {
	e := shardTestEngine(t, 4, 100)
	stmt := `SELECT * FROM words WHERE tag = "1"`
	if _, err := e.Execute(stmt); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.PlanCacheHit {
		t.Fatal("warm execution should hit the plan cache")
	}
	if _, err := e.Execute(`INSERT INTO words (seq, tag) VALUES ("abcj", "1")`); err != nil {
		t.Fatal(err)
	}
	res, err = e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHit {
		t.Fatal("plan cache served a plan across a StatsVersion change on a sharded relation")
	}
}

// TestPreparedShardedRedecision: a prepared query's memoised decision
// is keyed on the shard signature — resharding forces a re-decide, and
// the new decision builds gather plans for the new topology.
func TestPreparedShardedRedecision(t *testing.T) {
	e := shardTestEngine(t, 2, 100)
	pq, err := e.Prepare(`SELECT seq, dist FROM words WHERE seq SIMILAR TO ? WITHIN ? USING edits`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Execute("abcd", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Execute("abce", 1); err != nil {
		t.Fatal(err)
	}
	st := pq.Stats()
	if st.Plans != 1 || st.PlanReuses != 1 {
		t.Fatalf("decision cache not reused before reshard: %+v", st)
	}

	resharded := relation.NewSharded("words", 4)
	old, _ := e.Catalog().Lookup("words")
	rows := make([]relation.InsertRow, 0, old.Len())
	for _, tup := range old.Tuples() {
		rows = append(rows, relation.InsertRow{Seq: tup.Seq, Attrs: tup.Attrs})
	}
	resharded.InsertBatch(rows)
	e.Catalog().Add(resharded)

	plan, err := pq.Explain("abcd", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "shards=4") && !strings.Contains(plan, "GatherMerge") {
		t.Fatalf("prepared plan did not adopt the new topology:\n%s", plan)
	}
	if _, err := pq.Execute("abcd", 1); err != nil {
		t.Fatal(err)
	}
	if st := pq.Stats(); st.Plans < 2 {
		t.Fatalf("reshard did not force a re-decision: %+v", st)
	}
}
