package query

// The batch/row parity oracle: for randomized datasets, statements,
// shard counts and block sizes, the vectorized engine must be
// indistinguishable from the row-at-a-time engine — byte-identical
// result rows in byte-identical order (both pipelines execute the same
// physical decision, so even plan-dependent WITHIN emission order must
// match positionally), and byte-identical table contents (including
// assigned tuple ids) after every interleaved DML batch.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/rewrite"
)

// batchPair is one row-engine/batch-engine pair over the same logical
// relation; the row engine is the oracle.
type batchPair struct {
	row   *Engine // SetBatchSize(0): every plan is row-at-a-time
	batch *Engine // vectorized with the configured block size
}

func newBatchPair(t testing.TB, shards, batchSize int) *batchPair {
	t.Helper()
	mk := func() *Engine {
		var tab relation.Table
		if shards > 1 {
			tab = relation.NewSharded("words", shards)
		} else {
			tab = relation.New("words")
		}
		cat := relation.NewCatalog()
		cat.Add(tab)
		e := NewEngine(cat)
		rs := rewrite.MustRuleSet("edits", rewrite.UnitEdits(oracleAlphabet).Rules())
		if err := e.RegisterRuleSet(rs); err != nil {
			t.Fatal(err)
		}
		return e
	}
	p := &batchPair{row: mk(), batch: mk()}
	p.row.SetBatchSize(0)
	p.batch.SetBatchSize(batchSize)
	return p
}

// exec runs one statement on both engines, asserts positional
// byte-identity of the results, and returns the row engine's result.
func (p *batchPair) exec(t *testing.T, stmt string) *Result {
	t.Helper()
	r, rerr := p.row.Execute(stmt)
	b, berr := p.batch.Execute(stmt)
	if (rerr == nil) != (berr == nil) {
		t.Fatalf("%q: error parity broken: row=%v batch=%v", stmt, rerr, berr)
	}
	if rerr != nil {
		if rerr.Error() != berr.Error() {
			t.Fatalf("%q: error text diverges:\nrow:   %v\nbatch: %v", stmt, rerr, berr)
		}
		return nil
	}
	if strings.Join(r.Columns, "\x1f") != strings.Join(b.Columns, "\x1f") {
		t.Fatalf("%q: columns diverge: %v vs %v", stmt, r.Columns, b.Columns)
	}
	if positional(r) != positional(b) {
		t.Fatalf("%q: rows diverge:\nrow:\n%s\nbatch:\n%s\nrow plan:\n%s\nbatch plan:\n%s",
			stmt, positional(r), positional(b), r.Plan, b.Plan)
	}
	return r
}

// checkDump asserts byte-identical table contents (ids included).
func (p *batchPair) checkDump(t *testing.T) {
	t.Helper()
	dump := func(e *Engine) string {
		tab, _ := e.Catalog().Lookup("words")
		var sb strings.Builder
		for _, tup := range tab.Tuples() {
			fmt.Fprintf(&sb, "%d\x1f%s\x1f%s\n", tup.ID, tup.Seq, tup.Attr("tag"))
		}
		return sb.String()
	}
	if r, b := dump(p.row), dump(p.batch); r != b {
		t.Fatalf("table contents diverge after DML:\nrow:\n%s\nbatch:\n%s", r, b)
	}
}

// seedRows inserts the same random rows into both engines in one batch.
func (p *batchPair) seedRows(t *testing.T, rng *rand.Rand, n int) {
	t.Helper()
	values := make([]string, 0, n)
	for i := 0; i < n; i++ {
		values = append(values, fmt.Sprintf("(%q, %q)", randOracleSeq(rng), string(oracleAlphabet[rng.Intn(3)])))
	}
	p.exec(t, "INSERT INTO words (seq, tag) VALUES "+strings.Join(values, ", "))
	p.checkDump(t)
}

// randBatchStmt draws one random read statement covering every access
// family and decorator the batch engine implements: WITHIN at the
// radii that cross the index/scan cost boundary, NEAREST, residual
// equality filters, OR/NOT shapes, pattern similarity, the dist
// pseudo-field, ORDER BY in both directions and LIMIT with and without
// it.
func randBatchStmt(rng *rand.Rand) string {
	target := randOracleSeq(rng)
	tag := string(oracleAlphabet[rng.Intn(3)])
	switch rng.Intn(10) {
	case 0:
		return "SELECT * FROM words"
	case 1:
		return fmt.Sprintf(`SELECT * FROM words WHERE seq SIMILAR TO %q WITHIN %d USING edits`, target, rng.Intn(4))
	case 2:
		return fmt.Sprintf(`SELECT seq, dist FROM words WHERE seq SIMILAR TO %q WITHIN %d USING edits AND tag = %q`,
			target, rng.Intn(4), tag)
	case 3:
		dir := "ASC"
		if rng.Intn(2) == 0 {
			dir = "DESC"
		}
		return fmt.Sprintf(`SELECT id, seq, dist FROM words WHERE seq SIMILAR TO %q WITHIN %d USING edits ORDER BY dist %s LIMIT %d`,
			target, 1+rng.Intn(3), dir, 1+rng.Intn(20))
	case 4:
		return fmt.Sprintf(`SELECT * FROM words WHERE seq SIMILAR TO %q WITHIN %d USING edits LIMIT %d`,
			target, rng.Intn(4), 1+rng.Intn(8))
	case 5:
		return fmt.Sprintf(`SELECT seq, dist FROM words WHERE seq NEAREST %d TO %q USING edits`, 1+rng.Intn(12), target)
	case 6:
		return fmt.Sprintf(`SELECT * FROM words WHERE tag != %q LIMIT %d`, tag, 1+rng.Intn(10))
	case 7:
		return fmt.Sprintf(`SELECT * FROM words WHERE NOT (tag = %q) OR seq SIMILAR TO %q WITHIN 1 USING edits`, tag, target)
	case 8:
		return fmt.Sprintf(`SELECT seq FROM words WHERE seq SIMILAR TO PATTERN "a(b|c)*d" WITHIN %d USING edits`, rng.Intn(3))
	default:
		return fmt.Sprintf(`SELECT seq, dist FROM words WHERE seq SIMILAR TO %q WITHIN 3 USING edits AND dist != "2"`, target)
	}
}

// applyRandomDML runs one random mutation through both engines.
func (p *batchPair) applyRandomDML(t *testing.T, rng *rand.Rand) {
	t.Helper()
	target := randOracleSeq(rng)
	switch rng.Intn(4) {
	case 0:
		p.exec(t, fmt.Sprintf("INSERT INTO words (seq, tag) VALUES (%q, %q)",
			randOracleSeq(rng), string(oracleAlphabet[rng.Intn(3)])))
	case 1:
		p.exec(t, fmt.Sprintf(`DELETE FROM words WHERE seq SIMILAR TO %q WITHIN 1 USING edits`, target))
	case 2:
		tab, _ := p.row.Catalog().Lookup("words")
		tups := tab.Tuples()
		if len(tups) == 0 {
			return
		}
		p.exec(t, fmt.Sprintf(`DELETE FROM words WHERE id = "%d"`, tups[rng.Intn(len(tups))].ID))
	case 3:
		p.exec(t, fmt.Sprintf(`UPDATE words SET seq = %q WHERE seq SIMILAR TO %q WITHIN 1 USING edits`,
			randOracleSeq(rng), target))
	}
}

// TestBatchRowParityOracle is the main property test: shard counts 1
// and 4 crossed with block sizes 1, 64 and 256, random reads against
// the row oracle with interleaved DML, table dumps compared after every
// mutation generation.
func TestBatchRowParityOracle(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, size := range []int{1, 64, 256} {
			shards, size := shards, size
			t.Run(fmt.Sprintf("shards=%d/batch=%d", shards, size), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(1000*shards + size)))
				p := newBatchPair(t, shards, size)
				p.seedRows(t, rng, 150)
				for gen := 0; gen < 5; gen++ {
					for i := 0; i < 8; i++ {
						p.applyRandomDML(t, rng)
					}
					p.checkDump(t)
					for i := 0; i < 10; i++ {
						p.exec(t, randBatchStmt(rng))
					}
					// Repeat one statement so the second run exercises the
					// plan-cache hit path's decision -> batch-tree rebuild.
					stmt := randBatchStmt(rng)
					p.exec(t, stmt)
					p.exec(t, stmt)
				}
			})
		}
	}
}

// TestBatchParityParallel crosses the vectorized path with the
// parallel-scan machinery: both engines shard their scan pipelines
// across 4 workers (Parallel for unsharded plans, the gather pool for
// sharded ones) and must still match positionally.
func TestBatchParityParallel(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(77 + shards)))
			p := newBatchPair(t, shards, 32)
			for _, e := range []*Engine{p.row, p.batch} {
				e.SetParallelism(4)
				e.SetParallelMinRows(1)
			}
			p.seedRows(t, rng, 200)
			for i := 0; i < 30; i++ {
				p.exec(t, randBatchStmt(rng))
			}
		})
	}
}

// TestBatchParityPrepared drives both engines through the prepared-
// statement path: one template, many bindings, with the memoised
// decision (vectorize recorded) reused across executions.
func TestBatchParityPrepared(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := newBatchPair(t, 1, 64)
	p.seedRows(t, rng, 120)

	const tmpl = `SELECT seq, dist FROM words WHERE seq SIMILAR TO ? WITHIN ? USING edits ORDER BY dist LIMIT ?`
	rq, err := p.row.Prepare(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	bq, err := p.batch.Prepare(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		target, radius, limit := randOracleSeq(rng), rng.Intn(4), 1+rng.Intn(10)
		rr, err := rq.Execute(target, radius, limit)
		if err != nil {
			t.Fatalf("row prepared: %v", err)
		}
		br, err := bq.Execute(target, radius, limit)
		if err != nil {
			t.Fatalf("batch prepared: %v", err)
		}
		if positional(rr) != positional(br) {
			t.Fatalf("prepared (%q, %d, %d) diverges:\nrow:\n%s\nbatch:\n%s",
				target, radius, limit, positional(rr), positional(br))
		}
	}
	if st := bq.Stats(); st.PlanReuses == 0 {
		t.Fatalf("batch prepared query never reused a decision: %+v", st)
	}
}

// TestBatchParityConcurrentDML runs vectorized reads against live
// concurrent writers — the serving pattern — primarily for the race
// detector (the targeted -race CI step runs 'Batch' tests); once the
// writers quiesce, both engines must agree byte for byte again.
func TestBatchParityConcurrentDML(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := newBatchPair(t, 4, 64)
	p.seedRows(t, rng, 150)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Mirror every write on both engines so they converge.
			stmt := fmt.Sprintf("INSERT INTO words (seq, tag) VALUES (%q, %q)",
				fmt.Sprintf("w%daceb", i), "1")
			if _, err := p.row.Execute(stmt); err != nil {
				t.Error(err)
				return
			}
			if _, err := p.batch.Execute(stmt); err != nil {
				t.Error(err)
				return
			}
			i++
		}
	}()
	queries := []string{
		`SELECT * FROM words WHERE seq SIMILAR TO "acebd" WITHIN 2 USING edits`,
		`SELECT seq, dist FROM words WHERE seq NEAREST 5 TO "acebd" USING edits`,
		`SELECT * FROM words WHERE tag != "1" LIMIT 4`,
	}
	for i := 0; i < 60; i++ {
		if _, err := p.batch.Execute(queries[i%len(queries)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	p.checkDump(t)
	for _, q := range queries {
		p.exec(t, q)
	}
}
