package query

// The sharding oracle: for randomized datasets, statements and shard
// counts, a sharded engine must be indistinguishable from (a) the
// unsharded engine and (b) a brute-force model of the query semantics.
//
// Identity is byte-level. NEAREST results and full-table dumps have an
// engine-defined total order ((dist, id) and ascending id), so they are
// compared positionally, byte for byte. WITHIN result order is
// plan-dependent (an index traversal emits matches in tree order, a
// scan in id order — true already for the unsharded engine), so WITHIN
// results are compared as canonically-encoded row sets: sorted rows
// joined into one byte string, equal iff the encodings are identical.
// DML must leave both engines with byte-identical table contents —
// including assigned tuple ids — after every statement batch.

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/editdp"
	"repro/internal/index"
	"repro/internal/relation"
	"repro/internal/rewrite"
)

// oracleAlphabet keeps distances small and collisions (interesting
// ties) frequent.
const oracleAlphabet = "abcdefghij"

// oracleRow is the brute-force model's tuple.
type oracleRow struct {
	id  int
	seq string
	tag string
}

// oracleDB models the engine's DML semantics exactly: ascending-id
// application order, updates tombstone + reinsert under fresh ids.
type oracleDB struct {
	rows   []oracleRow // ascending id
	nextID int
}

func (o *oracleDB) insert(seq, tag string) {
	o.rows = append(o.rows, oracleRow{id: o.nextID, seq: seq, tag: tag})
	o.nextID++
}

func (o *oracleDB) matchWithin(target string, r int) []int {
	var ids []int
	for _, row := range o.rows {
		if _, ok := editdp.LevenshteinWithin(row.seq, target, r); ok {
			ids = append(ids, row.id)
		}
	}
	return ids
}

func (o *oracleDB) deleteIDs(ids []int) {
	dead := map[int]bool{}
	for _, id := range ids {
		dead[id] = true
	}
	kept := o.rows[:0]
	for _, row := range o.rows {
		if !dead[row.id] {
			kept = append(kept, row)
		}
	}
	o.rows = kept
}

// updateIDs mirrors execDeleteOrUpdate: matched ids ascending, each
// update removes the old row and appends the new one under the next
// fresh id.
func (o *oracleDB) updateIDs(ids []int, newSeq string) {
	sort.Ints(ids)
	for _, id := range ids {
		var tag string
		found := false
		for _, row := range o.rows {
			if row.id == id {
				tag, found = row.tag, true
				break
			}
		}
		if !found {
			continue
		}
		o.deleteIDs([]int{id})
		o.insert(newSeq, tag)
	}
}

// oraclePair is one unsharded/sharded engine pair over the same logical
// relation plus the brute-force model.
type oraclePair struct {
	plain   *Engine
	sharded *Engine
	model   *oracleDB
}

func newOraclePair(t *testing.T, shards int) *oraclePair {
	t.Helper()
	mk := func(tab relation.Table) *Engine {
		cat := relation.NewCatalog()
		cat.Add(tab)
		e := NewEngine(cat)
		rs := rewrite.MustRuleSet("edits", rewrite.UnitEdits(oracleAlphabet).Rules())
		if err := e.RegisterRuleSet(rs); err != nil {
			t.Fatal(err)
		}
		return e
	}
	return &oraclePair{
		plain:   mk(relation.New("words")),
		sharded: mk(relation.NewSharded("words", shards)),
		model:   &oracleDB{},
	}
}

// exec runs one statement on both engines and keeps the model in sync
// via the apply callback.
func (p *oraclePair) exec(t *testing.T, stmt string, apply func(*oracleDB)) {
	t.Helper()
	a, err := p.plain.Execute(stmt)
	if err != nil {
		t.Fatalf("unsharded %q: %v", stmt, err)
	}
	b, err := p.sharded.Execute(stmt)
	if err != nil {
		t.Fatalf("sharded %q: %v", stmt, err)
	}
	if isDMLText(stmt) && a.Rows[0][0] != b.Rows[0][0] {
		t.Fatalf("%q: affected-count diverges: %s vs %s", stmt, a.Rows[0][0], b.Rows[0][0])
	}
	if apply != nil {
		apply(p.model)
	}
}

// checkTableParity asserts byte-identical table contents across both
// engines and the model.
func (p *oraclePair) checkTableParity(t *testing.T) {
	t.Helper()
	dump := func(e *Engine) string {
		tab, _ := e.Catalog().Lookup("words")
		var b strings.Builder
		for _, tup := range tab.Tuples() {
			fmt.Fprintf(&b, "%d\x1f%s\x1f%s\n", tup.ID, tup.Seq, tup.Attr("tag"))
		}
		return b.String()
	}
	var mb strings.Builder
	for _, row := range p.model.rows {
		fmt.Fprintf(&mb, "%d\x1f%s\x1f%s\n", row.id, row.seq, row.tag)
	}
	plain, sharded, model := dump(p.plain), dump(p.sharded), mb.String()
	if plain != sharded {
		t.Fatalf("table contents diverge:\nunsharded:\n%s\nsharded:\n%s", plain, sharded)
	}
	if plain != model {
		t.Fatalf("engines diverge from oracle:\nengine:\n%s\noracle:\n%s", plain, model)
	}
}

// canonical encodes a result's rows as a sorted byte string; two result
// sets are equal iff their canonical encodings are byte-identical.
func canonical(res *Result) string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = strings.Join(r, "\x1f")
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// positional encodes a result's rows in emitted order.
func positional(res *Result) string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = strings.Join(r, "\x1f")
	}
	return strings.Join(rows, "\n")
}

func randOracleSeq(rng *rand.Rand) string {
	b := make([]byte, 2+rng.Intn(7))
	for i := range b {
		b[i] = oracleAlphabet[rng.Intn(len(oracleAlphabet))]
	}
	return string(b)
}

// TestShardOracleParity is the main oracle property test: randomized
// datasets, queries and DML over shard counts 1, 2, 4 and 7, with the
// sharded engine checked byte-for-byte against the unsharded engine and
// the brute-force model after every batch.
func TestShardOracleParity(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(42 + shards)))
			p := newOraclePair(t, shards)

			// Seed rows.
			var values []string
			var applies []func(*oracleDB)
			for i := 0; i < 150; i++ {
				seq := randOracleSeq(rng)
				tag := string(oracleAlphabet[rng.Intn(3)])
				values = append(values, fmt.Sprintf("(%q, %q)", seq, tag))
				applies = append(applies, func(o *oracleDB) { o.insert(seq, tag) })
			}
			p.exec(t, "INSERT INTO words (seq, tag) VALUES "+strings.Join(values, ", "),
				func(o *oracleDB) {
					for _, f := range applies {
						f(o)
					}
				})
			p.checkTableParity(t)

			for gen := 0; gen < 6; gen++ {
				// A batch of random DML.
				for i := 0; i < 10; i++ {
					switch rng.Intn(4) {
					case 0: // insert
						seq := randOracleSeq(rng)
						tag := string(oracleAlphabet[rng.Intn(3)])
						p.exec(t, fmt.Sprintf("INSERT INTO words (seq, tag) VALUES (%q, %q)", seq, tag),
							func(o *oracleDB) { o.insert(seq, tag) })
					case 1: // predicate delete (exercises the read plan)
						target := randOracleSeq(rng)
						p.exec(t, fmt.Sprintf(`DELETE FROM words WHERE seq SIMILAR TO %q WITHIN 1 USING edits`, target),
							func(o *oracleDB) { o.deleteIDs(o.matchWithin(target, 1)) })
					case 2: // delete by id
						if len(p.model.rows) == 0 {
							continue
						}
						id := p.model.rows[rng.Intn(len(p.model.rows))].id
						p.exec(t, fmt.Sprintf(`DELETE FROM words WHERE id = "%d"`, id),
							func(o *oracleDB) { o.deleteIDs([]int{id}) })
					case 3: // predicate update (fresh-id assignment parity)
						target := randOracleSeq(rng)
						repl := randOracleSeq(rng)
						p.exec(t, fmt.Sprintf(`UPDATE words SET seq = %q WHERE seq SIMILAR TO %q WITHIN 1 USING edits`, repl, target),
							func(o *oracleDB) { o.updateIDs(o.matchWithin(target, 1), repl) })
					}
				}
				p.checkTableParity(t)

				// WITHIN queries: canonical set identity across both engines
				// and the brute-force oracle.
				for i := 0; i < 4; i++ {
					target := randOracleSeq(rng)
					radius := rng.Intn(3)
					stmt := fmt.Sprintf(`SELECT id, seq, dist FROM words WHERE seq SIMILAR TO %q WITHIN %d USING edits`, target, radius)
					a, err := p.plain.Execute(stmt)
					if err != nil {
						t.Fatal(err)
					}
					b, err := p.sharded.Execute(stmt)
					if err != nil {
						t.Fatal(err)
					}
					if canonical(a) != canonical(b) {
						t.Fatalf("WITHIN diverges for %q:\nunsharded:\n%s\nsharded:\n%s", stmt, canonical(a), canonical(b))
					}
					var want []string
					for _, row := range p.model.rows {
						if d, ok := editdp.LevenshteinWithin(row.seq, target, radius); ok {
							want = append(want, fmt.Sprintf("%d\x1f%s\x1f%d", row.id, row.seq, d))
						}
					}
					sort.Strings(want)
					if got := canonical(b); got != strings.Join(want, "\n") {
						t.Fatalf("WITHIN diverges from oracle for %q:\ngot:\n%s\nwant:\n%s", stmt, got, strings.Join(want, "\n"))
					}

					// ORDER BY dist: both engines must agree canonically and
					// emit non-decreasing distances.
					ores, err := p.sharded.Execute(stmt + " ORDER BY dist")
					if err != nil {
						t.Fatal(err)
					}
					if canonical(ores) != canonical(b) {
						t.Fatalf("ORDER BY changed the result set for %q", stmt)
					}
					last := -1.0
					for _, row := range ores.Rows {
						d, _ := strconv.ParseFloat(row[2], 64)
						if d < last {
							t.Fatalf("ORDER BY dist not sorted: %v", ores.Rows)
						}
						last = d
					}

					// LIMIT: a plan-dependent subset, but always a subset of
					// the oracle's match set at the right cardinality.
					lim := 1 + rng.Intn(4)
					lres, err := p.sharded.Execute(fmt.Sprintf("%s LIMIT %d", stmt, lim))
					if err != nil {
						t.Fatal(err)
					}
					wantN := lim
					if len(want) < lim {
						wantN = len(want)
					}
					if len(lres.Rows) != wantN {
						t.Fatalf("LIMIT %d returned %d rows, want %d", lim, len(lres.Rows), wantN)
					}
					valid := map[string]bool{}
					for _, w := range want {
						valid[w] = true
					}
					for _, row := range lres.Rows {
						if !valid[strings.Join(row, "\x1f")] {
							t.Fatalf("LIMIT row %v not in oracle match set", row)
						}
					}
				}

				// NEAREST: positional byte identity — the (dist, id) order is
				// engine-defined, so sharded, unsharded and oracle must agree
				// on every byte including order.
				for i := 0; i < 4; i++ {
					target := randOracleSeq(rng)
					k := 1 + rng.Intn(8)
					stmt := fmt.Sprintf(`SELECT id, seq, dist FROM words WHERE seq NEAREST %d TO %q USING edits`, k, target)
					a, err := p.plain.Execute(stmt)
					if err != nil {
						t.Fatal(err)
					}
					b, err := p.sharded.Execute(stmt)
					if err != nil {
						t.Fatal(err)
					}
					if positional(a) != positional(b) {
						t.Fatalf("NEAREST diverges for %q:\nunsharded:\n%s\nsharded:\n%s", stmt, positional(a), positional(b))
					}
					var best []index.Match
					for _, row := range p.model.rows {
						best = index.PushBestK(best, index.Match{ID: row.id, S: row.seq,
							Dist: float64(editdp.Levenshtein(row.seq, target))}, k)
					}
					want := make([]string, len(best))
					for i, m := range best {
						want[i] = fmt.Sprintf("%d\x1f%s\x1f%d", m.ID, m.S, int(m.Dist))
					}
					if positional(b) != strings.Join(want, "\n") {
						t.Fatalf("NEAREST diverges from oracle for %q:\ngot:\n%s\nwant:\n%s",
							stmt, positional(b), strings.Join(want, "\n"))
					}
				}
			}
		})
	}
}

// TestShardOracleInterleavedWrites runs the same deterministic write
// stream through each engine's single writer while concurrent readers
// hammer snapshot queries, then asserts the engines and the oracle
// converge to byte-identical state. Under -race this also proves the
// scatter-gather path is data-race free against live mutation.
func TestShardOracleInterleavedWrites(t *testing.T) {
	for _, shards := range []int{2, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7 * shards)))
			p := newOraclePair(t, shards)

			// Deterministic statement stream + oracle applications.
			type step struct {
				stmt  string
				apply func(*oracleDB)
			}
			var steps []step
			for i := 0; i < 120; i++ {
				switch rng.Intn(3) {
				case 0, 1:
					seq := randOracleSeq(rng)
					tag := string(oracleAlphabet[rng.Intn(3)])
					steps = append(steps, step{
						stmt:  fmt.Sprintf("INSERT INTO words (seq, tag) VALUES (%q, %q)", seq, tag),
						apply: func(o *oracleDB) { o.insert(seq, tag) },
					})
				case 2:
					target := randOracleSeq(rng)
					steps = append(steps, step{
						stmt:  fmt.Sprintf(`DELETE FROM words WHERE seq SIMILAR TO %q WITHIN 1 USING edits`, target),
						apply: func(o *oracleDB) { o.deleteIDs(o.matchWithin(target, 1)) },
					})
				}
			}

			var wg sync.WaitGroup
			writeErr := make(chan error, 2)
			for _, eng := range []*Engine{p.plain, p.sharded} {
				eng := eng
				wg.Add(1)
				go func() {
					defer wg.Done()
					for _, s := range steps {
						if _, err := eng.Execute(s.stmt); err != nil {
							writeErr <- fmt.Errorf("%q: %w", s.stmt, err)
							return
						}
					}
				}()
			}
			queries := []string{
				`SELECT id, seq, dist FROM words WHERE seq SIMILAR TO "abab" WITHIN 2 USING edits`,
				`SELECT id, seq, dist FROM words WHERE seq NEAREST 5 TO "cdcd" USING edits`,
				`SELECT id, seq FROM words`,
			}
			readErr := make(chan error, 4)
			for r := 0; r < 4; r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					eng := p.sharded
					if r%2 == 0 {
						eng = p.plain
					}
					for i := 0; i < 60; i++ {
						if _, err := eng.Execute(queries[i%len(queries)]); err != nil {
							readErr <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(writeErr)
			close(readErr)
			if err := <-writeErr; err != nil {
				t.Fatal(err)
			}
			if err := <-readErr; err != nil {
				t.Fatal(err)
			}
			for _, s := range steps {
				s.apply(p.model)
			}
			p.checkTableParity(t)
		})
	}
}
