package query

// The partitioned batch join. The row-pipeline joins (operators.go)
// verify one outer/inner pair per Next call; for a block-oriented plan
// the partition join instead blocks the OUTER side through the batch
// pipeline and pre-partitions the INNER side once at open:
//
//   - edit-distance edges partition inner rows by sequence length.
//     Under a unit-cost rule set every edit operation costs at least 1,
//     so d(x, y) >= | |x| - |y| | and an outer probe of length L only
//     needs the buckets [L-floor(k), L+floor(k)] — the classic
//     length-filter band.
//   - vector edges under a triangular metric partition by distance to
//     a fixed vantage (the zero vector): |d(q,0) - d(c,0)| <= d(q,c),
//     so a probe with norm n only needs buckets covering [n-r, n+r].
//     Non-triangular metrics (cosine) degrade to a single partition —
//     the blocked kernels still apply, the pruning does not.
//
// Inside a band the probe runs the same kernels the scan+filter path
// uses (bit-parallel Myers or the dense TargetDP for strings, the
// metric's DistBatch for vectors) with the operand order of the row
// join's evalSim preserved on every fallback, so results stay
// byte-identical to the nested-loop plan — the join oracle pins that.
//
// The inner side is a list of snapshots: one for a plain relation, one
// per shard when a sharded inner is broadcast (see join_shard.go).
// Per-probe matches sort by global tuple id before emission, so the
// output order is exactly the nested-loop plan's (outer order, inner
// ascending).

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/editdp"
	"repro/internal/metric"
	"repro/internal/relation"
)

// partInnerRow is one partitioned inner tuple; val holds the join
// attribute, resolved once at partition time.
type partInnerRow struct {
	t   relation.Tuple
	val string
}

// partVecRow is the vector analogue; the vector lives in the tuple.
type partVecRow struct {
	t relation.Tuple
}

// partMatch is one verified join match of the current probe.
type partMatch struct {
	t relation.Tuple
	d float64
}

// batchPartitionJoinOp is the BatchOperator that executes one decided
// "partition" join step.
type batchPartitionJoinOp struct {
	ctx           *execCtx
	child         BatchOperator // outer side, batched
	snaps         []*relation.Snapshot
	alias         string   // inner alias
	probeField    FieldRef // outer-side join field
	innerField    string   // inner-side join attribute
	outerIsTarget bool     // probe value is the predicate's target operand
	sim           *SimExpr
	size          int
	vec           bool
	m             metric.Distance // vec edges: the resolved metric

	// Partition state, built at OpenBatch.
	strBuckets map[int][]partInnerRow // key: len(val)
	vecBuckets map[int][]partVecRow   // key: floor(norm/w)
	vecCols    map[int][]metric.Vector
	bandW      float64 // vec bucket width (radius, min 1)
	banded     bool    // vec: triangular metric => norm pruning applies
	calc       *editdp.Calculator

	// Iteration state.
	cur     *Batch // current outer batch (owned by child)
	pos     int    // next outer row to probe
	curBind *binding
	scratch binding
	matches []partMatch
	mpos    int
	dists   []float64 // DistBatch scratch

	out   *Batch
	binds []*binding
	local ExecStats
	last  ExecStats // retained across Close for span attribution
}

func (o *batchPartitionJoinOp) OpenBatch() error {
	if err := o.buildPartitions(); err != nil {
		return err
	}
	o.out = getBatch()
	o.cur, o.pos, o.curBind = nil, 0, nil
	o.matches, o.mpos = o.matches[:0], 0
	return o.child.OpenBatch()
}

// buildPartitions reads every inner snapshot once and buckets the rows.
// Reading the inner side counts as candidate work, like a scan's.
func (o *batchPartitionJoinOp) buildPartitions() error {
	if o.vec {
		if o.m == nil {
			return fmt.Errorf("query: stale plan: partition join lost its metric")
		}
		o.banded = metric.IsTriangular(o.m)
		o.bandW = o.sim.Radius
		if o.bandW <= 0 {
			o.bandW = 1
		}
		o.vecBuckets = make(map[int][]partVecRow)
		o.vecCols = make(map[int][]metric.Vector)
		for _, snap := range o.snaps {
			for _, t := range snap.Tuples() {
				if t.Vec == nil {
					continue // rows without a vector never match
				}
				key := 0
				if o.banded {
					key = int(math.Floor(o.m.Dist(t.Vec, metric.Vector{}) / o.bandW))
				}
				o.vecBuckets[key] = append(o.vecBuckets[key], partVecRow{t: t})
				o.vecCols[key] = append(o.vecCols[key], t.Vec)
				o.local.Candidates++
			}
		}
		return nil
	}
	o.calc = o.ctx.eng.calc(o.sim.RuleSet)
	if o.calc == nil {
		// Partition is only decided for rule sets with a DP calculator;
		// the rule set changed under the plan — Execute re-plans on this.
		return fmt.Errorf("query: stale plan: rule set %q has no calculator", o.sim.RuleSet)
	}
	o.strBuckets = make(map[int][]partInnerRow)
	for _, snap := range o.snaps {
		for _, t := range snap.Tuples() {
			val := t.Attr(o.innerField)
			o.strBuckets[len(val)] = append(o.strBuckets[len(val)], partInnerRow{t: t, val: val})
			o.local.Candidates++
		}
	}
	return nil
}

// probe verifies the banded inner candidates against one outer row and
// leaves the id-sorted matches in o.matches.
func (o *batchPartitionJoinOp) probe(b *binding) error {
	o.matches, o.mpos = o.matches[:0], 0
	if o.vec {
		return o.probeVec(b)
	}
	return o.probeStr(b)
}

func (o *batchPartitionJoinOp) probeStr(b *binding) error {
	pv, err := fieldValue(o.probeField, b)
	if err != nil {
		return err
	}
	radius := o.sim.Radius
	k := int(radius) // exact for integer distances: d <= radius iff d <= floor(radius)
	if radius >= math.MaxInt32 {
		k = math.MaxInt32 // clamp: degrades to the walk-all-buckets path below
	}
	// Fallback kernel preserving the row join's operand order, built
	// lazily — most probes under a unit-cost rule set never need it.
	var fall *editdp.TargetDP
	fallback := func(x string) (float64, bool) {
		if o.outerIsTarget {
			if fall == nil {
				fall = o.calc.NewTargetDP(pv)
			}
			return fall.Within(x, radius)
		}
		return o.calc.Within(pv, x, radius)
	}
	// The unit distance is symmetric, so the Myers kernel can anchor on
	// the probe regardless of which operand it is: integer distances are
	// equal in both directions and bit-identical either way.
	var qdp *editdp.QueryDP
	if myersEligible(o.calc, pv, radius) {
		qdp = editdp.NewQueryDP(pv)
	}
	verify := func(rows []partInnerRow) {
		for _, row := range rows {
			o.local.Candidates++
			o.local.Verifications++
			var d float64
			var ok bool
			if qdp != nil && o.calc.Covers(row.val) {
				di, okd := qdp.Within(row.val, k)
				d, ok = float64(di), okd
			} else {
				d, ok = fallback(row.val)
			}
			if ok {
				o.matches = append(o.matches, partMatch{t: row.t, d: d})
			}
		}
	}
	if 2*k+1 <= len(o.strBuckets) {
		for key := len(pv) - k; key <= len(pv)+k; key++ {
			verify(o.strBuckets[key])
		}
	} else {
		// The band covers more keys than buckets exist (a huge radius):
		// walk the map instead of the key range. Matches are id-sorted
		// afterwards either way, so bucket visit order is irrelevant.
		for key, rows := range o.strBuckets {
			if math.Abs(float64(key-len(pv))) <= float64(k) {
				verify(rows)
			}
		}
	}
	sort.Slice(o.matches, func(i, j int) bool { return o.matches[i].t.ID < o.matches[j].t.ID })
	return nil
}

func (o *batchPartitionJoinOp) probeVec(b *binding) error {
	t, err := vecTupleFor(o.probeField, b)
	if err != nil {
		return err
	}
	pv := t.Vec
	if pv == nil {
		return nil // rows without a vector never match
	}
	r := o.sim.Radius
	lo, hi := 0, 0
	if o.banded {
		nq := o.m.Dist(pv, metric.Vector{})
		lo = int(math.Floor((nq - r) / o.bandW))
		hi = int(math.Floor((nq + r) / o.bandW))
		if lo < 0 {
			lo = 0
		}
	}
	for key := lo; key <= hi; key++ {
		rows := o.vecBuckets[key]
		if len(rows) == 0 {
			continue
		}
		if o.outerIsTarget {
			// evalSim computes Dist(target, field); the blocked kernel
			// with the probe as query matches that order exactly.
			if cap(o.dists) < len(rows) {
				o.dists = make([]float64, len(rows))
			}
			out := o.dists[:len(rows)]
			metric.DistBatch(o.m, pv, o.vecCols[key], out)
			for i, row := range rows {
				o.local.Candidates++
				o.local.Verifications++
				if d := out[i]; d <= r {
					o.matches = append(o.matches, partMatch{t: row.t, d: d})
				}
			}
		} else {
			// Probe is the field operand: keep the candidate (target)
			// first, the order the row join verifies with.
			for _, row := range rows {
				o.local.Candidates++
				o.local.Verifications++
				if d, ok := metric.Within(o.m, row.t.Vec, pv, r); ok {
					o.matches = append(o.matches, partMatch{t: row.t, d: d})
				}
			}
		}
	}
	sort.Slice(o.matches, func(i, j int) bool { return o.matches[i].t.ID < o.matches[j].t.ID })
	return nil
}

func (o *batchPartitionJoinOp) NextBatch() (*Batch, error) {
	b := o.out
	b.reset()
	binds := o.binds[:0]
	for len(binds) < o.size {
		if o.mpos < len(o.matches) {
			m := o.matches[o.mpos]
			o.mpos++
			nb := mergeBindings(o.curBind, newBinding(o.alias, m.t))
			if !nb.hasDist {
				nb.dist, nb.hasDist = m.d, true
			}
			binds = append(binds, nb)
			continue
		}
		if o.cur != nil && o.pos < o.cur.Len() {
			if o.cur.binds != nil {
				o.curBind = o.cur.binds[o.pos]
			} else {
				// Safe to reuse the scratch view: mergeBindings copies the
				// tuple into the emitted binding before the next probe.
				o.cur.scratch(o.pos, o.cur.alias, &o.scratch)
				o.curBind = &o.scratch
			}
			o.pos++
			if err := o.probe(o.curBind); err != nil {
				return nil, err
			}
			continue
		}
		nb, err := o.child.NextBatch()
		if err != nil {
			return nil, err
		}
		if nb == nil {
			break
		}
		o.cur, o.pos = nb, 0
	}
	o.binds = binds
	if len(binds) == 0 {
		return nil, nil
	}
	b.binds = binds
	return b, nil
}

func (o *batchPartitionJoinOp) CloseBatch() error {
	o.last.add(o.local)
	o.ctx.addStats(o.local)
	o.local = ExecStats{}
	o.strBuckets, o.vecBuckets, o.vecCols = nil, nil, nil
	o.cur, o.curBind = nil, nil
	putBatch(o.out)
	o.out = nil
	return o.child.CloseBatch()
}

func (o *batchPartitionJoinOp) opStats() ExecStats { return o.last }

func (o *batchPartitionJoinOp) Describe() string {
	band := "length-banded"
	if o.vec {
		band = "norm-banded"
		if !metric.IsTriangular(o.m) {
			band = "single partition"
		}
	}
	if len(o.snaps) > 1 {
		return fmt.Sprintf("PartitionJoin(probe %s into %s[%s] x%d shards, on %s)",
			o.probeField, o.alias, band, len(o.snaps), o.sim)
	}
	return fmt.Sprintf("PartitionJoin(probe %s into %s[%s], on %s)", o.probeField, o.alias, band, o.sim)
}

func (o *batchPartitionJoinOp) childNodes() []any { return []any{o.child} }

// buildBatchJoin reconstructs a decided join chain for the batch
// pipeline. Chains without a partition step keep the proven shape: the
// row join chain (with a batch cursor under its start scan) bridged by
// one RowToBatch adapter. Chains with a partition step build natively
// batched: the start scan feeds partition steps directly, and any
// nl/index steps in the same chain run as row operators between a
// BatchToRow/RowToBatch adapter pair.
func (e *Engine) buildBatchJoin(ctx *execCtx, q *Query, rels []*relation.Relation, snapOf func(*relation.Relation) *relation.Snapshot, d *planDecision, size int) (BatchOperator, error) {
	hasPartition := false
	for _, step := range d.steps {
		if step.algo == "partition" {
			hasPartition = true
		}
	}
	if !hasPartition {
		rowAccess, err := e.buildJoin(ctx, q, rels, snapOf, d)
		if err != nil {
			return nil, err
		}
		return trB(ctx, &rowToBatchOp{child: rowAccess, size: size}, estOf(rowAccess), ""), nil
	}

	relOf := map[string]relation.Table{}
	relPlain := map[string]*relation.Relation{}
	for i, ref := range q.From {
		relOf[ref.Alias] = rels[i]
		relPlain[ref.Alias] = rels[i]
	}
	edges, residual := extractJoinSims(q.Where, relOf)
	used := make([]bool, len(edges))
	for _, step := range d.steps {
		if step.edge < 0 || step.edge >= len(edges) {
			return nil, fmt.Errorf("query: stale plan: join edge %d out of range", step.edge)
		}
		used[step.edge] = true
	}
	for i, edge := range edges {
		if !used[i] {
			residual = AndExpr{L: residual, R: *edge}
		}
	}
	pred := simplifyExpr(residual)
	steps := d.steps

	startSnap := snapOf(relPlain[d.start])
	startStats := relPlain[d.start].Stats()
	stepSnaps := make([]*relation.Snapshot, len(steps))
	stepStats := make([]relation.Stats, len(steps))
	stepMetrics := make([]metric.Distance, len(steps))
	for i, step := range steps {
		stepSnaps[i] = snapOf(relPlain[step.alias])
		stepStats[i] = relPlain[step.alias].Stats()
		if step.vec {
			m, ok := metric.Lookup(edges[step.edge].RuleSet)
			if !ok {
				return nil, fmt.Errorf("query: unknown metric %q", edges[step.edge].RuleSet)
			}
			stepMetrics[i] = m
		}
	}

	build := func(shard, shards int) BatchOperator {
		bs := newBatchScanOp(ctx, startSnap, d.start, size)
		bs.shard, bs.shards = shard, shards
		cur := float64(startStats.Count) / float64(shards)
		var op BatchOperator = trB(ctx, bs, cur, "")
		for i, step := range steps {
			edge := edges[step.edge]
			outerEst := cur
			cur = joinOutRowsFor(edge, cur, stepStats[i])
			switch step.algo {
			case "partition":
				outerIsTarget := step.probeField == edge.Target.Field
				innerField := edge.Field.Name
				if !outerIsTarget {
					innerField = edge.Target.Field.Name
				}
				op = trB(ctx, &batchPartitionJoinOp{
					ctx: ctx, child: op, snaps: []*relation.Snapshot{stepSnaps[i]},
					alias: step.alias, probeField: step.probeField,
					innerField: innerField, outerIsTarget: outerIsTarget,
					sim: edge, size: size, vec: step.vec, m: stepMetrics[i],
				}, cur, d.kernel)
			case "index":
				row := tr(ctx, &indexJoinOp{
					ctx: ctx, outer: &batchToRowOp{child: op},
					snaps: []*relation.Snapshot{stepSnaps[i]}, alias: step.alias,
					probeField: step.probeField, sim: edge, vec: step.vec, m: stepMetrics[i],
				}, cur, d.kernel)
				op = trB(ctx, &rowToBatchOp{child: row, size: size}, cur, "")
			default: // "nl"
				inner := tr(ctx, newScanOp(ctx, stepSnaps[i], step.alias),
					outerEst*float64(stepStats[i].Count), "")
				row := tr(ctx, &nestedLoopJoinOp{
					ctx: ctx, outer: &batchToRowOp{child: op}, inner: inner, sim: edge,
				}, cur, d.kernel)
				op = trB(ctx, &rowToBatchOp{child: row, size: size}, cur, "")
			}
		}
		if !isTrivial(pred) {
			op = trB(ctx, &batchFilterOp{ctx: ctx, child: op, pred: pred, alias: d.start},
				estFilterRows(startStats, pred, cur), e.filterKernel(pred))
		}
		return op
	}
	return wrapBatchParallel(ctx, d, build), nil
}
