package query

import (
	"strings"
	"testing"
)

func TestParseRange(t *testing.T) {
	q, err := Parse(`SELECT * FROM words WHERE seq SIMILAR TO "colour" WITHIN 2 USING edits`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.From) != 1 || q.From[0].Name != "words" || q.From[0].Alias != "words" {
		t.Errorf("From = %+v", q.From)
	}
	sim, ok := q.Where.(SimExpr)
	if !ok {
		t.Fatalf("Where = %T", q.Where)
	}
	if sim.Field.Name != "seq" || !sim.Target.IsLit || sim.Target.Lit != "colour" ||
		sim.Radius != 2 || sim.RuleSet != "edits" || sim.Pattern {
		t.Errorf("sim = %+v", sim)
	}
}

func TestParsePattern(t *testing.T) {
	q, err := Parse(`SELECT * FROM words WHERE seq SIMILAR TO PATTERN "a(b|c)*d" WITHIN 1.5 USING w`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sim := q.Where.(SimExpr)
	if !sim.Pattern || sim.Target.Lit != "a(b|c)*d" || sim.Radius != 1.5 {
		t.Errorf("sim = %+v", sim)
	}
}

func TestParseJoin(t *testing.T) {
	q, err := Parse(`SELECT a.id, b.id FROM stocks a, stocks b WHERE a.seq SIMILAR TO b.seq WITHIN 3 USING edits AND a.id != b.id`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.From) != 2 || q.From[0].Alias != "a" || q.From[1].Alias != "b" {
		t.Errorf("From = %+v", q.From)
	}
	and, ok := q.Where.(AndExpr)
	if !ok {
		t.Fatalf("Where = %T", q.Where)
	}
	sim := and.L.(SimExpr)
	if sim.Field.Table != "a" || sim.Target.Field.Table != "b" {
		t.Errorf("sim = %+v", sim)
	}
	cmp := and.R.(CmpExpr)
	if !cmp.Neq {
		t.Errorf("cmp = %+v", cmp)
	}
	if len(q.Select) != 2 || q.Select[0].String() != "a.id" {
		t.Errorf("Select = %+v", q.Select)
	}
}

// TestParseOnDistJoin pins the v1 join grammar: `FROM a, b ON
// dist(a.x, b.y) <= k USING m` desugars to the same SimExpr as the
// SIMILAR TO spelling, ANDed in front of any WHERE clause.
func TestParseOnDistJoin(t *testing.T) {
	q, err := Parse(`SELECT a.seq, b.seq FROM words a, words b ON dist(a.seq, b.seq) <= 2 USING edits WHERE a.tag = "1"`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	and, ok := q.Where.(AndExpr)
	if !ok {
		t.Fatalf("Where = %T, want AndExpr(ON, WHERE)", q.Where)
	}
	sim, ok := and.L.(SimExpr)
	if !ok {
		t.Fatalf("ON condition = %T, want SimExpr", and.L)
	}
	if sim.Field.Table != "a" || sim.Field.Name != "seq" ||
		sim.Target.Field.Table != "b" || sim.Target.Field.Name != "seq" ||
		sim.Radius != 2 || sim.RuleSet != "edits" {
		t.Errorf("sim = %+v", sim)
	}
	if cmp, ok := and.R.(CmpExpr); !ok || cmp.L.Field.Name != "tag" {
		t.Errorf("WHERE residual = %+v", and.R)
	}

	// Without a WHERE clause the ON condition is the whole predicate,
	// and the two spellings parse to the same query.
	onQ, err := Parse(`SELECT a.seq FROM s a, s b ON dist(a.seq, b.seq) <= 1.5 USING edits`)
	if err != nil {
		t.Fatalf("Parse ON-only: %v", err)
	}
	simQ, err := Parse(`SELECT a.seq FROM s a, s b WHERE a.seq SIMILAR TO b.seq WITHIN 1.5 USING edits`)
	if err != nil {
		t.Fatalf("Parse SIMILAR TO: %v", err)
	}
	if onQ.String() != simQ.String() {
		t.Errorf("spellings diverge:\n  %s\n  %s", onQ, simQ)
	}

	// dist() also accepts literal targets and bind parameters.
	q, err = Parse(`SELECT * FROM words WHERE dist(seq, "colour") <= 2 USING edits`)
	if err != nil {
		t.Fatalf("Parse literal dist: %v", err)
	}
	sim = q.Where.(SimExpr)
	if !sim.Target.IsLit || sim.Target.Lit != "colour" || sim.Radius != 2 {
		t.Errorf("literal sim = %+v", sim)
	}
	q, err = Parse(`SELECT * FROM items a, items b ON dist(a.vec, b.vec) <= ? USING l2`)
	if err != nil {
		t.Fatalf("Parse param radius: %v", err)
	}
	sim = q.Where.(SimExpr)
	if sim.RadiusParam == nil || sim.RuleSet != "l2" {
		t.Errorf("param sim = %+v", sim)
	}
}

func TestParseOnDistErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT * FROM a, b ON dist(a.seq) <= 1 USING e`,
		`SELECT * FROM a, b ON dist("x", b.seq) <= 1 USING e`,
		`SELECT * FROM a, b ON dist(a.seq, b.seq) = 1 USING e`,
		`SELECT * FROM a, b ON dist(a.seq, b.seq) <= 1`,
		`SELECT * FROM a, b ON dist(a.seq, b.seq <= 1 USING e`,
		`SELECT * FROM a, b ON dist(a.seq, b.seq) <= "x" USING e`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseNearest(t *testing.T) {
	q, err := Parse(`SELECT * FROM words WHERE seq NEAREST 5 TO "color" USING edits LIMIT 3`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ne := q.Where.(NearestExpr)
	if ne.K != 5 || ne.Target.Lit != "color" || ne.RuleSet != "edits" {
		t.Errorf("nearest = %+v", ne)
	}
	if q.Limit != 3 {
		t.Errorf("Limit = %d", q.Limit)
	}
}

func TestParseNWayFrom(t *testing.T) {
	q, err := Parse(`SELECT * FROM a, b x, c WHERE a.seq SIMILAR TO x.seq WITHIN 1 USING e AND x.seq SIMILAR TO c.seq WITHIN 1 USING e`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.From) != 3 || q.From[1].Alias != "x" || q.From[2].Alias != "c" {
		t.Errorf("From = %+v", q.From)
	}
}

func TestParseOrderBy(t *testing.T) {
	q, err := Parse(`SELECT * FROM r WHERE seq SIMILAR TO "x" WITHIN 2 USING e ORDER BY dist LIMIT 5`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Order != OrderAsc || q.Limit != 5 {
		t.Errorf("Order = %v, Limit = %d", q.Order, q.Limit)
	}
	q, err = Parse(`SELECT * FROM r WHERE seq SIMILAR TO "x" WITHIN 2 USING e ORDER BY dist DESC`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Order != OrderDesc {
		t.Errorf("Order = %v, want desc", q.Order)
	}
	q, err = Parse(`SELECT * FROM r WHERE seq SIMILAR TO "x" WITHIN 2 USING e ORDER BY dist ASC`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Order != OrderAsc {
		t.Errorf("Order = %v, want asc", q.Order)
	}
}

func TestParseBooleans(t *testing.T) {
	q, err := Parse(`SELECT * FROM r WHERE NOT (a = "1" OR b != "2") AND c = "3"`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	and, ok := q.Where.(AndExpr)
	if !ok {
		t.Fatalf("Where = %T", q.Where)
	}
	if _, ok := and.L.(NotExpr); !ok {
		t.Errorf("L = %T", and.L)
	}
}

func TestParseExplain(t *testing.T) {
	q, err := Parse(`EXPLAIN SELECT * FROM r`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain {
		t.Error("Explain flag not set")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`select * from r where seq similar to "x" within 1 using e`); err != nil {
		t.Fatalf("lowercase keywords: %v", err)
	}
}

func TestParseSemicolon(t *testing.T) {
	if _, err := Parse(`SELECT * FROM r;`); err != nil {
		t.Fatalf("trailing semicolon: %v", err)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q, err := Parse(`SELECT * FROM r WHERE seq = "a\"b"`)
	if err != nil {
		t.Fatal(err)
	}
	cmp := q.Where.(CmpExpr)
	if cmp.R.Lit != `a"b` {
		t.Errorf("Lit = %q", cmp.R.Lit)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM r WHERE`,
		`SELECT * FROM r WHERE seq SIMILAR "x"`,
		`SELECT * FROM r WHERE seq SIMILAR TO "x" WITHIN`,
		`SELECT * FROM r WHERE seq SIMILAR TO "x" WITHIN 1`,
		`SELECT * FROM r WHERE seq SIMILAR TO "x" WITHIN abc USING e`,
		`SELECT * FROM r WHERE "lit" SIMILAR TO "x" WITHIN 1 USING e`,
		`SELECT * FROM r WHERE seq NEAREST 0 TO "x" USING e`,
		`SELECT * FROM r WHERE seq = `,
		`SELECT * FROM r WHERE (seq = "x"`,
		`SELECT * FROM r trailing garbage !`,
		`SELECT * FROM r WHERE seq SIMILAR TO PATTERN x WITHIN 1 USING e`,
		`SELECT * FROM r LIMIT x`,
		`SELECT * FROM r ORDER BY seq`,
		`SELECT * FROM r ORDER dist`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		`SELECT * FROM words WHERE seq SIMILAR TO "colour" WITHIN 2 USING edits`,
		`SELECT a.id, b.id FROM s a, s b WHERE a.seq SIMILAR TO b.seq WITHIN 3 USING edits AND a.id != b.id`,
		`SELECT * FROM words WHERE seq NEAREST 5 TO "color" USING edits`,
		`EXPLAIN SELECT * FROM r WHERE seq SIMILAR TO PATTERN "a(b|c)*" WITHIN 1 USING e`,
		`SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 2 USING edits ORDER BY dist DESC LIMIT 4`,
		`SELECT * FROM s a, s b, s c WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING e AND b.seq SIMILAR TO c.seq WITHIN 1 USING e`,
		`SELECT a.seq, b.seq FROM s a, s b ON dist(a.seq, b.seq) <= 2 USING edits WHERE a.tag = "1"`,
	} {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip:\n  %s\n  %s", q1, q2)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `a ! b`, "\x01"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexTokens(t *testing.T) {
	toks, err := lex(`a.b, (x) = != 12.5 "s" *;`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokDot, tokIdent, tokComma, tokLParen, tokIdent, tokRParen,
		tokEq, tokNeq, tokNumber, tokString, tokStar, tokSemi, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("%d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestKeywordAliasRejected(t *testing.T) {
	// "where" after a table name must be the keyword, not an alias.
	q, err := Parse(`SELECT * FROM r WHERE seq = "x"`)
	if err != nil {
		t.Fatal(err)
	}
	if q.From[0].Alias != "r" {
		t.Errorf("alias = %q", q.From[0].Alias)
	}
	if !strings.Contains(q.String(), "WHERE") {
		t.Errorf("String lost WHERE: %s", q)
	}
}
