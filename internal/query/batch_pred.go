package query

// Predicate compilation for the batch filter. The row pipeline walks
// the Expr tree per candidate (evalExpr), paying an interface
// type-switch per node, a rule-set registry lookup (an RWMutex
// acquisition) per similarity conjunct and an alias resolution per
// field — per row. The batch filter compiles a single-alias predicate
// once per pipeline into a closure chain with all of that hoisted:
// calculators, general engines and compiled patterns are resolved at
// compile time, field references become direct tuple accessors, and
// the per-row work collapses to the distance computation itself.
//
// Semantics are pinned to evalExpr: evaluation order, short-circuiting
// (including unsurfaced errors in unevaluated branches), the
// first-matching-similarity-sets-dist rule and every error message are
// identical, so the two evaluators are interchangeable row for row —
// the batch/row parity oracle runs both.

import (
	"fmt"
	"math"

	"repro/internal/editdp"
	"repro/internal/metric"
	"repro/internal/patdist"
	"repro/internal/relation"
)

// predFn evaluates a compiled predicate against one columnar row; dist
// and has mirror binding.dist/.hasDist.
type predFn func(t *relation.Tuple, dist *float64, has *bool) (bool, error)

// valFn produces one operand value for a columnar row.
type valFn func(t *relation.Tuple, dist *float64, has *bool) (string, error)

// compilePred compiles a single-alias predicate tree, or returns nil
// for shapes it does not cover (the batch filter then falls back to
// evalExpr on a scratch binding, so coverage gaps cost speed, never
// correctness).
func (e *Engine) compilePred(ex Expr, alias string) predFn {
	switch ex := ex.(type) {
	case litTrue:
		return func(*relation.Tuple, *float64, *bool) (bool, error) { return true, nil }
	case AndExpr:
		l, r := e.compilePred(ex.L, alias), e.compilePred(ex.R, alias)
		if l == nil || r == nil {
			return nil
		}
		return func(t *relation.Tuple, dist *float64, has *bool) (bool, error) {
			v, err := l(t, dist, has)
			if err != nil || !v {
				// Short-circuit: a false conjunct decides the AND; errors in
				// the unevaluated right side are not surfaced (see evalExpr).
				return false, err
			}
			return r(t, dist, has)
		}
	case OrExpr:
		l, r := e.compilePred(ex.L, alias), e.compilePred(ex.R, alias)
		if l == nil || r == nil {
			return nil
		}
		return func(t *relation.Tuple, dist *float64, has *bool) (bool, error) {
			v, err := l(t, dist, has)
			if err != nil || v {
				return v, err
			}
			return r(t, dist, has)
		}
	case NotExpr:
		inner := e.compilePred(ex.E, alias)
		if inner == nil {
			return nil
		}
		return func(t *relation.Tuple, dist *float64, has *bool) (bool, error) {
			v, err := inner(t, dist, has)
			if err != nil {
				return false, err
			}
			return !v, nil
		}
	case CmpExpr:
		l, r := compileOperand(ex.L, alias), compileOperand(ex.R, alias)
		neq := ex.Neq
		return func(t *relation.Tuple, dist *float64, has *bool) (bool, error) {
			lv, err := l(t, dist, has)
			if err != nil {
				return false, err
			}
			rv, err := r(t, dist, has)
			if err != nil {
				return false, err
			}
			if neq {
				return lv != rv, nil
			}
			return lv == rv, nil
		}
	case SimExpr:
		return e.compileSim(ex, alias)
	case NearestExpr:
		return func(*relation.Tuple, *float64, *bool) (bool, error) {
			return false, fmt.Errorf("query: NEAREST must be the entire WHERE clause")
		}
	default:
		return nil
	}
}

// compileSim compiles one similarity conjunct with its evaluator — DP
// calculator, general engine, or compiled pattern — resolved up front.
func (e *Engine) compileSim(ex SimExpr, alias string) predFn {
	if isVecSim(&ex) {
		return e.compileVecSim(ex, alias)
	}
	field := compileField(ex.Field, alias)
	radius := ex.Radius

	if ex.Pattern {
		calc := e.calc(ex.RuleSet)
		if calc == nil {
			// Resolve the exact evalExpr error once: unknown rule set wins
			// over the not-edit-like complaint, as in patternWithin.
			err := fmt.Errorf("query: pattern similarity requires an edit-like rule set (%q is not)", ex.RuleSet)
			if _, rerr := e.ruleset(ex.RuleSet); rerr != nil {
				err = rerr
			}
			return errSim(field, err)
		}
		p, err := e.compilePattern(ex.Target.Lit)
		if err != nil {
			return errSim(field, err)
		}
		return func(t *relation.Tuple, dist *float64, has *bool) (bool, error) {
			x, err := field(t, dist, has)
			if err != nil {
				return false, err
			}
			d, ok := patdist.Within(calc, x, p, radius)
			if ok && !*has {
				*dist, *has = d, true
			}
			return ok, nil
		}
	}

	if ex.Target.IsLit {
		if c := e.calc(ex.RuleSet); c != nil {
			if myersEligible(c, ex.Target.Lit, radius) {
				// Unit-cost conjunct: the bit-parallel Myers kernel, with the
				// target's PEQ table hoisted once per compiled pipeline. Rows
				// containing bytes the rule set never mentions carry +Inf
				// costs under the weighted semantics, so they take the
				// TargetDP fallback — results stay bit-identical to it.
				qdp := editdp.NewQueryDP(ex.Target.Lit)
				fall := c.NewTargetDP(ex.Target.Lit)
				k := int(radius) // exact for integer distances: d <= radius iff d <= floor(radius)
				return func(t *relation.Tuple, dist *float64, has *bool) (bool, error) {
					x, err := field(t, dist, has)
					if err != nil {
						return false, err
					}
					var d float64
					var ok bool
					if c.Covers(x) {
						di, okd := qdp.Within(x, k)
						d, ok = float64(di), okd
					} else {
						d, ok = fall.Within(x, radius)
					}
					if ok && !*has {
						*dist, *has = d, true
					}
					return ok, nil
				}
			}
			// The hot path of every scan+filter plan: a literal target under
			// an edit-like rule set runs the vectorized distance kernel —
			// dense per-target cost tables, reused DP rows, bit-identical
			// results (editdp.TargetDP).
			dp := c.NewTargetDP(ex.Target.Lit)
			return func(t *relation.Tuple, dist *float64, has *bool) (bool, error) {
				x, err := field(t, dist, has)
				if err != nil {
					return false, err
				}
				d, ok := dp.Within(x, radius)
				if ok && !*has {
					*dist, *has = d, true
				}
				return ok, nil
			}
		}
	}

	target := compileOperand(ex.Target, alias)
	within := e.compileWithin(ex.RuleSet)
	return func(t *relation.Tuple, dist *float64, has *bool) (bool, error) {
		x, err := field(t, dist, has)
		if err != nil {
			return false, err
		}
		y, err := target(t, dist, has)
		if err != nil {
			return false, err
		}
		d, ok, err := within(x, y, radius)
		if err != nil {
			return false, err
		}
		if ok && !*has {
			*dist, *has = d, true
		}
		return ok, nil
	}
}

// compileVecSim compiles a vector similarity conjunct with the metric
// resolved up front. Distance comes from metric.Within — the same
// shared kernel core as the row evaluator, the VP-tree and the oracle —
// with the target vector first, matching the tree's operand order, so
// all paths agree bitwise. Error precedence mirrors evalVecSim: the
// alias resolution fails per row before any hoisted shape error.
func (e *Engine) compileVecSim(ex SimExpr, alias string) predFn {
	var aliasErr error
	if ex.Field.Table != "" && ex.Field.Table != alias {
		aliasErr = fmt.Errorf("query: unknown alias %q", ex.Field.Table)
	}
	var hoisted error
	if !ex.Target.IsVec {
		hoisted = fmt.Errorf("query: vec similarity requires a vector literal target")
	}
	m, ok := metric.Lookup(ex.RuleSet)
	if hoisted == nil && !ok {
		hoisted = fmt.Errorf("query: unknown metric %q", ex.RuleSet)
	}
	target, radius := ex.Target.Vec, ex.Radius
	return func(t *relation.Tuple, dist *float64, has *bool) (bool, error) {
		if aliasErr != nil {
			return false, aliasErr
		}
		if hoisted != nil {
			return false, hoisted
		}
		if t.Vec == nil {
			return false, nil
		}
		d, within := metric.Within(m, target, t.Vec, radius)
		if within && !*has {
			*dist, *has = d, true
		}
		return within, nil
	}
}

// myersEligible reports whether a literal-target similarity conjunct
// may be served by the bit-parallel Myers kernel: the closed cost
// tables must realise the classical unit distance, the target must be
// covered by the rule alphabet, and the radius must be a usable
// integer budget. compileSim and the planner's kernel record share
// this predicate so EXPLAIN never claims a kernel the filter does not
// run.
func myersEligible(c *editdp.Calculator, target string, radius float64) bool {
	return editdp.BitParallelEnabled() && c.Unit() && c.Covers(target) &&
		radius >= 0 && radius <= math.MaxInt32
}

// filterKernel reports which distance kernel the compiled filter path
// will run for the predicate's first literal-target edit conjunct in
// evaluation order: "myers", "targetdp", or "" when no such conjunct
// exists. Recorded in the plan decision for EXPLAIN.
func (e *Engine) filterKernel(ex Expr) string {
	switch ex := ex.(type) {
	case SimExpr:
		if isVecSim(&ex) {
			if ex.Field.Name == "vec" && ex.Target.IsVec {
				if _, ok := metric.Lookup(ex.RuleSet); ok {
					return "vec-" + ex.RuleSet
				}
			}
			return ""
		}
		if ex.Pattern || !ex.Target.IsLit {
			return ""
		}
		c := e.calc(ex.RuleSet)
		if c == nil {
			return ""
		}
		if myersEligible(c, ex.Target.Lit, ex.Radius) {
			return "myers"
		}
		return "targetdp"
	case AndExpr:
		if k := e.filterKernel(ex.L); k != "" {
			return k
		}
		return e.filterKernel(ex.R)
	case OrExpr:
		if k := e.filterKernel(ex.L); k != "" {
			return k
		}
		return e.filterKernel(ex.R)
	case NotExpr:
		return e.filterKernel(ex.E)
	}
	return ""
}

// compileWithin hoists Engine.within's evaluator resolution (two
// registry lookups behind an RWMutex) out of the per-row path.
func (e *Engine) compileWithin(ruleset string) func(x, y string, radius float64) (float64, bool, error) {
	if c := e.calc(ruleset); c != nil {
		return func(x, y string, radius float64) (float64, bool, error) {
			d, ok := c.Within(x, y, radius)
			return d, ok, nil
		}
	}
	if g := e.general(ruleset); g != nil {
		return g.Distance
	}
	err := fmt.Errorf("query: rule set %q has no usable evaluator", ruleset)
	if _, rerr := e.ruleset(ruleset); rerr != nil {
		err = rerr
	}
	return func(string, string, float64) (float64, bool, error) { return 0, false, err }
}

// errSim is a similarity predicate whose evaluator resolution failed:
// per row it still evaluates the field first — the row evaluator does,
// so a field error (e.g. dist unavailable) must win over the hoisted
// evaluator error to keep error parity — then fails with the fixed
// error.
func errSim(field valFn, err error) predFn {
	return func(t *relation.Tuple, dist *float64, has *bool) (bool, error) {
		if _, ferr := field(t, dist, has); ferr != nil {
			return false, ferr
		}
		return false, err
	}
}

// compileOperand mirrors operandValue: a literal or a field reference.
func compileOperand(o Operand, alias string) valFn {
	if o.IsLit {
		lit := o.Lit
		return func(*relation.Tuple, *float64, *bool) (string, error) { return lit, nil }
	}
	return compileField(o.Field, alias)
}

// compileField mirrors fieldValue over a single-alias row: dist reads
// the running distance state, any other name resolves on the tuple, and
// a foreign alias fails exactly like the row pipeline's lookup.
func compileField(f FieldRef, alias string) valFn {
	if f.Name == "dist" {
		return func(_ *relation.Tuple, dist *float64, has *bool) (string, error) {
			if !*has {
				return "", fmt.Errorf("query: dist is not available here")
			}
			return formatDist(*dist), nil
		}
	}
	if f.Table != "" && f.Table != alias {
		err := fmt.Errorf("query: unknown alias %q", f.Table)
		return func(*relation.Tuple, *float64, *bool) (string, error) { return "", err }
	}
	name := f.Name
	return func(t *relation.Tuple, _ *float64, _ *bool) (string, error) { return t.Attr(name), nil }
}
