package query

import (
	"strings"
	"testing"
)

// TestVectorizeDecisionInExplain pins the EXPLAIN surface of the
// vectorize decision: batched plans carry the Vectorize pseudo-root
// with the leaf block size, row plans do not, unit-cost joins render
// the native partition join, and weighted joins render both adapters
// around their row chain.
func TestVectorizeDecisionInExplain(t *testing.T) {
	e := bigEngine(t)
	res, err := e.Execute(`EXPLAIN SELECT * FROM dict LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Plan, "Vectorize(batch=3)") {
		t.Fatalf("vectorized plan lacks the Vectorize root (limit-capped):\n%s", res.Plan)
	}

	res, err = e.Execute(`EXPLAIN SELECT seq FROM dict WHERE seq SIMILAR TO "abcdef" WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	// The index-served range plan also surfaces the decided distance
	// kernel (bit-parallel Myers inside the BK-tree traversal).
	if !strings.HasPrefix(res.Plan, "Vectorize(batch=256, kernel=myers)") {
		t.Fatalf("vectorized plan lacks the default-size Vectorize root with the kernel:\n%s", res.Plan)
	}

	// A unit-cost join vectorizes natively: the length-partitioned batch
	// join, no adapters.
	res, err = e.Execute(`EXPLAIN SELECT a.seq FROM dna a, dna b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Vectorize(", "PartitionJoin(probe a.seq into b[length-banded]"} {
		if !strings.Contains(res.Plan, frag) {
			t.Fatalf("vectorized join plan lacks %q:\n%s", frag, res.Plan)
		}
	}

	// A weighted join has no batch operator: the row chain runs behind
	// both adapters.
	res, err = e.Execute(`EXPLAIN SELECT a.seq FROM dna a, dna b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING half`)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Vectorize(", "RowToBatch(", "BatchToRow", "NestedLoopJoin("} {
		if !strings.Contains(res.Plan, frag) {
			t.Fatalf("vectorized weighted join plan lacks %q:\n%s", frag, res.Plan)
		}
	}

	e.SetBatchSize(0)
	res, err = e.Execute(`EXPLAIN SELECT * FROM dict LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Plan, "Vectorize(") || strings.Contains(res.Plan, "Batch") {
		t.Fatalf("row plan leaked batch operators:\n%s", res.Plan)
	}
}

// TestSetBatchSizeInvalidatesPlanCache pins that flipping the
// execution mode starts a fresh plan-cache key space: a plan built for
// one mode is never served to the other.
func TestSetBatchSizeInvalidatesPlanCache(t *testing.T) {
	e := bigEngine(t)
	const stmt = `SELECT seq FROM dict WHERE seq SIMILAR TO "abcdef" WITHIN 1 USING unit-edits`
	if _, err := e.Execute(stmt); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.PlanCacheHit {
		t.Fatal("second execution should hit the plan cache")
	}
	if !strings.Contains(res.Plan, "Vectorize(") {
		t.Fatalf("cached plan is not vectorized:\n%s", res.Plan)
	}

	e.SetBatchSize(0)
	res, err = e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHit {
		t.Fatal("plan cache served a vectorized plan after batching was disabled")
	}
	if strings.Contains(res.Plan, "Vectorize(") {
		t.Fatalf("row-mode execution ran a vectorized plan:\n%s", res.Plan)
	}

	e.SetBatchSize(64)
	res, err = e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHit {
		t.Fatal("plan cache served a row plan after batching was re-enabled")
	}
	if !strings.Contains(res.Plan, "Vectorize(batch=64,") {
		t.Fatalf("re-enabled batching did not adopt the new size:\n%s", res.Plan)
	}
}

// TestBatchPreparedRedecidesOnBatchSizeChange pins the prepared-
// statement analogue: the memoised decision keys on the batch size, so
// flipping the knob forces exactly one re-plan.
func TestBatchPreparedRedecidesOnBatchSizeChange(t *testing.T) {
	e := bigEngine(t)
	pq, err := e.Prepare(`SELECT seq FROM dict WHERE seq SIMILAR TO ? WITHIN ? USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Execute("abcdef", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Execute("abcdeg", 1); err != nil {
		t.Fatal(err)
	}
	if st := pq.Stats(); st.Plans != 1 || st.PlanReuses != 1 {
		t.Fatalf("warm prepared stats = %+v, want 1 plan + 1 reuse", st)
	}
	e.SetBatchSize(0)
	if _, err := pq.Execute("abcdef", 1); err != nil {
		t.Fatal(err)
	}
	if st := pq.Stats(); st.Plans != 2 {
		t.Fatalf("stats after SetBatchSize(0) = %+v, want a re-plan", st)
	}
}

// TestBatchLimitPushdownCandidates is the vectorized LIMIT-pushdown
// regression test: the leaf block size is capped by a LIMIT without
// ORDER BY, so a LIMIT 1 plan must touch far fewer candidates than the
// full query — the batch analogue of TestLimitPushdownIndexCandidates.
func TestBatchLimitPushdownCandidates(t *testing.T) {
	e := bigEngine(t)
	full, err := e.Execute(`SELECT seq FROM dict`)
	if err != nil {
		t.Fatal(err)
	}
	one, err := e.Execute(`SELECT seq FROM dict LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if one.Stats.Candidates >= full.Stats.Candidates {
		t.Errorf("batch scan LIMIT 1 touched %d candidates, full scan %d", one.Stats.Candidates, full.Stats.Candidates)
	}
	idxOne, err := e.Execute(`SELECT seq FROM clust WHERE seq SIMILAR TO "abcdefgh" WITHIN 1 USING unit-edits LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	idxFull, err := e.Execute(`SELECT seq FROM clust WHERE seq SIMILAR TO "abcdefgh" WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if idxOne.Stats.Candidates >= idxFull.Stats.Candidates {
		t.Errorf("batch index LIMIT 1 touched %d candidates, full range %d",
			idxOne.Stats.Candidates, idxFull.Stats.Candidates)
	}
}

// TestBatchSyncColsDivergedCapacities is the regression test for a
// pooled-batch crash: dist ([]float64) and has ([]bool) grow through
// independent appends and land in different allocator size classes, so
// a recycled batch can carry cap(has) < n <= cap(dist); syncCols must
// resize each column by its own capacity instead of assuming they
// moved in lockstep.
func TestBatchSyncColsDivergedCapacities(t *testing.T) {
	b := &Batch{}
	b.dist = make([]float64, 0, 64)
	b.has = make([]bool, 0, 8)
	for i := 0; i < 20; i++ {
		b.Block.Append(i, "s", nil, nil)
	}
	b.syncCols() // panicked before the fix: has[:20] with capacity 8
	if len(b.dist) != 20 || len(b.has) != 20 {
		t.Fatalf("syncCols lengths = %d/%d, want 20/20", len(b.dist), len(b.has))
	}
	for i := range b.has {
		if b.has[i] || b.dist[i] != 0 {
			t.Fatalf("syncCols left stale distance state at row %d", i)
		}
	}
}

// TestBatchDMLReadPlan pins that DELETE/UPDATE read phases run through
// the vectorized plan (the id column feeds collectIDsBatch) and affect
// the same rows as the row engine — covered broadly by the oracle, but
// this is the minimal deterministic repro.
func TestBatchDMLReadPlan(t *testing.T) {
	p := newBatchPair(t, 1, 16)
	p.exec(t, `INSERT INTO words (seq, tag) VALUES ("abc", "1"), ("abd", "1"), ("xyz", "2"), ("abe", "2")`)
	res := p.exec(t, `DELETE FROM words WHERE seq SIMILAR TO "abc" WITHIN 1 USING edits`)
	if res.Rows[0][0] != "3" {
		t.Fatalf("delete count = %s, want 3", res.Rows[0][0])
	}
	p.exec(t, `UPDATE words SET tag = "9" WHERE seq = "xyz"`)
	p.checkDump(t)
}
