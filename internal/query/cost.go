package query

// The cost model behind the planner. All estimates are deliberately
// coarse — the point is to rank alternatives, not to predict wall-clock
// time — but every formula is grounded in how the data structures
// actually behave:
//
//   - Verifying one candidate with the banded edit DP costs
//     O(len * (2k+1)) cell updates.
//   - A scan verifies every tuple.
//   - A BK-tree visit fraction grows with the radius; at unit radius
//     roughly half the tree is pruned, and by radius 3 pruning has
//     mostly collapsed (the classic BK-tree behaviour on word-length
//     strings).
//   - A trie walk touches the band of prefixes within distance k: its
//     node count is bounded by the alphabet branching to the k+1-th
//     power times the query length, *independent of relation size* —
//     which is why the trie wins on large dictionaries at small radii
//     while the BK-tree wins on small relations.
//
// Join ordering uses the same primitives: the output cardinality of a
// similarity join edge is |outer| * |inner| * selectivity(radius).

import (
	"math"

	"repro/internal/relation"
)

// selRange estimates the fraction of tuples within radius k of a
// typical target: radius relative to sequence length, squared to
// reflect the sharp distance concentration of edit distance.
func selRange(st relation.Stats, k float64) float64 {
	if st.AvgSeqLen <= 0 {
		return 1
	}
	f := (k + 1) / (st.AvgSeqLen + 1)
	if f > 1 {
		f = 1
	}
	return f * f
}

// verifyCost is the banded-DP cost of verifying one candidate. The
// band never grows past the full DP matrix, so the per-candidate cost
// saturates once 2k+1 exceeds the sequence length — beyond that point a
// wider radius buys no additional work.
func verifyCost(st relation.Stats, k float64) float64 {
	rows := math.Max(1, st.AvgSeqLen)
	band := 2*k + 1
	if band > rows+1 {
		band = rows + 1
	}
	return rows * band
}

// scanCost: verify every tuple.
func scanCost(st relation.Stats, k float64) float64 {
	return float64(st.Count) * verifyCost(st, k)
}

// bkTreeCost: visited-node fraction grows ~linearly with the radius,
// and every visited node pays a traversal surcharge on top of its DP
// verification — pointer-chasing through the tree has none of the
// locality of a linear scan. The surcharge is what makes the scan win
// once pruning collapses (frac = 1): visiting the whole tree is then
// strictly worse than scanning the same tuples in order, which is the
// selectivity crossover the THRESHOLD-parameter tests pin down.
func bkTreeCost(st relation.Stats, k float64) float64 {
	frac := 0.25 * (k + 1)
	if frac > 1 {
		frac = 1
	}
	return float64(st.Count) * frac * (verifyCost(st, k) + 1)
}

// trieCost: the band of prefixes within distance k, capped by the total
// node count; each visited node costs one DP row update (O(len)) plus
// the same unit traversal surcharge as a BK-tree node, so a saturated
// trie walk never undercuts the scan it degenerates into.
func trieCost(st relation.Stats, k float64) float64 {
	rows := math.Max(1, st.AvgSeqLen)
	totalNodes := float64(st.Count) * rows
	branch := math.Max(2, float64(st.Alphabet))
	band := math.Pow(branch, k+1) * (st.AvgSeqLen + k + 1)
	return math.Min(totalNodes, band) * (rows + 1)
}

// chooseRangeAccess ranks the physical access paths for an indexable
// range predicate and returns "bktree", "trie" or "scan".
func chooseRangeAccess(st relation.Stats, k float64) string {
	best, bestCost := "scan", scanCost(st, k)
	// Evaluate in fixed order with strict improvement so ties are
	// deterministic and index paths win exact draws against the scan.
	if c := bkTreeCost(st, k); c <= bestCost {
		best, bestCost = "bktree", c
	}
	if c := trieCost(st, k); c < bestCost {
		best, bestCost = "trie", c
	}
	return best
}

// vecVerifyCost is the cost of one metric distance evaluation: linear
// in the dimension (both L2 and cosine are single-pass kernels).
func vecVerifyCost(st relation.Stats) float64 {
	return math.Max(1, float64(st.VecDim))
}

// vecScanCost: evaluate the metric against every vector-bearing tuple.
func vecScanCost(st relation.Stats) float64 {
	return float64(st.VecCount) * vecVerifyCost(st)
}

// vpTreeCost mirrors bkTreeCost: the visited fraction of a VP-tree
// grows with the radius and collapses entirely once the radius
// approaches the spread of the data, and every visited node pays the
// same unit traversal surcharge as a BK-tree node. Radii are
// continuous here, so the fraction ramp is the same 0.25*(r+1) shape
// the BK-tree uses — coarse, but it ranks the tree against the scan
// with the crossover in the right place (small radius: tree; large
// radius: scan).
func vpTreeCost(st relation.Stats, r float64) float64 {
	frac := 0.25 * (r + 1)
	if frac > 1 {
		frac = 1
	}
	return float64(st.VecCount) * frac * (vecVerifyCost(st) + 1)
}

// chooseVecAccess ranks the access paths for a vector range predicate
// under a triangular metric: "vptree" or "scan". Ties go to the tree,
// matching chooseRangeAccess.
func chooseVecAccess(st relation.Stats, r float64) string {
	if vpTreeCost(st, r) <= vecScanCost(st) {
		return "vptree"
	}
	return "scan"
}

// indexJoinCost: probe the inner BK-tree once per outer row.
func indexJoinCost(outerRows float64, inner relation.Stats, k float64) float64 {
	return outerRows * bkTreeCost(inner, k)
}

// nestedLoopJoinCost: verify every pair.
func nestedLoopJoinCost(outerRows float64, inner relation.Stats, k float64) float64 {
	return outerRows * float64(inner.Count) * verifyCost(inner, k)
}

// joinOutRows estimates the cardinality of joining outerRows against a
// relation through a similarity edge at radius k.
func joinOutRows(outerRows float64, inner relation.Stats, k float64) float64 {
	return outerRows * float64(inner.Count) * selRange(inner, k)
}

// partitionJoinCost models the partition-based batch join over a
// unit-cost edit edge: one pass to length-partition the inner side,
// then per outer row only the length band |len(x)-len(y)| <= k is
// verified. The band fraction mirrors selRange's length intuition —
// (2k+1) of the ~AvgSeqLen+1 occupied length buckets survive — and the
// block kernels (QueryDP against a whole band) buy a constant over the
// per-pair DP, folded in as the 0.25 factor.
func partitionJoinCost(outerRows float64, inner relation.Stats, k float64) float64 {
	band := (2*k + 1) / (inner.AvgSeqLen + 1)
	if band > 1 {
		band = 1
	}
	return float64(inner.Count) + outerRows*band*float64(inner.Count)*verifyCost(inner, k)*0.25
}

// vecNestedLoopJoinCost: one metric evaluation per pair.
func vecNestedLoopJoinCost(outerRows float64, inner relation.Stats) float64 {
	return outerRows * float64(inner.VecCount) * vecVerifyCost(inner)
}

// vecIndexJoinCost: probe the inner VP-tree once per outer row
// (triangular metrics only — the tree's pruning invariant).
func vecIndexJoinCost(outerRows float64, inner relation.Stats, r float64) float64 {
	return outerRows * vpTreeCost(inner, r)
}

// vecPartitionJoinCost models the partition-based batch join over a
// vector edge: one pass to norm-band the inner side, then per outer
// row only the band |d(x,0)-d(y,0)| <= r is verified with the block
// distance kernel. The surviving fraction reuses the VP-tree's visited
// ramp for triangular metrics; a non-triangular metric (cosine) cannot
// band, so every pair survives and only the block kernel's constant
// (0.5 vs the per-pair evaluation) is won.
func vecPartitionJoinCost(outerRows float64, inner relation.Stats, r float64, triangular bool) float64 {
	frac := 1.0
	if triangular {
		frac = 0.25 * (r + 1)
		if frac > 1 {
			frac = 1
		}
	}
	return float64(inner.VecCount) + outerRows*frac*float64(inner.VecCount)*vecVerifyCost(inner)*0.5
}

// vecJoinOutRows is joinOutRows for a vector edge: without a distance
// distribution sketch the VP-tree's visited-fraction ramp doubles as
// the selectivity proxy (matching estVecRangeRows).
func vecJoinOutRows(outerRows float64, inner relation.Stats, r float64) float64 {
	frac := 0.25 * (r + 1)
	if frac > 1 {
		frac = 1
	}
	return outerRows * float64(inner.VecCount) * frac
}
