package query

// Vector query tests: basic NEAREST/WITHIN execution over the vec
// column, EXPLAIN surface (access path, metric, batch kernel labels),
// prepared-statement binding, vec DML, and the parity oracle pinning
// row/batch × shard-count results byte-identical to a brute-force
// model across dimensions, metrics and k/radius sweeps.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/metric"
	"repro/internal/relation"
)

// vecEngine builds an engine over an "items" relation preloaded with
// rows (ids are assigned 0..n-1 in order, identically for sharded and
// unsharded relations — the parity tests depend on that).
func vecEngine(t testing.TB, shards, batchSize int, rows []relation.InsertRow) *Engine {
	t.Helper()
	var tab relation.Table
	if shards > 1 {
		s := relation.NewSharded("items", shards)
		s.InsertBatch(rows)
		tab = s
	} else {
		r := relation.New("items")
		r.InsertBatch(rows)
		tab = r
	}
	cat := relation.NewCatalog()
	cat.Add(tab)
	e := NewEngine(cat)
	e.SetBatchSize(batchSize)
	return e
}

func vecRows(vecs ...metric.Vector) []relation.InsertRow {
	rows := make([]relation.InsertRow, len(vecs))
	for i, v := range vecs {
		rows[i] = relation.InsertRow{Vec: v}
	}
	return rows
}

func TestParseVecLiteral(t *testing.T) {
	q, err := Parse(`SELECT id FROM items WHERE vec SIMILAR TO [0.5, -1, 2e-3, 1e-09] WITHIN 1 USING l2`)
	if err != nil {
		t.Fatal(err)
	}
	sim, ok := q.Where.(SimExpr)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	if !sim.Target.IsVec {
		t.Fatal("target not parsed as vector")
	}
	want := metric.Vector{0.5, -1, 2e-3, 1e-09}
	if fmt.Sprint(sim.Target.Vec) != fmt.Sprint(want) {
		t.Fatalf("vec = %v, want %v", sim.Target.Vec, want)
	}
	// Format output parses back to the same vector (negatives and
	// exponent forms included), so rendered plans and WAL text survive a
	// round trip through the lexer.
	if _, err := Parse(`SELECT id FROM items WHERE vec SIMILAR TO ` + metric.Format(sim.Target.Vec) + ` WITHIN 1 USING l2`); err != nil {
		t.Fatalf("Format round-trip: %v", err)
	}

	for _, stmt := range []string{
		`SELECT id FROM items WHERE vec SIMILAR TO [] WITHIN 1 USING l2`,
		`SELECT id FROM items WHERE vec SIMILAR TO [1, ] WITHIN 1 USING l2`,
		`SELECT id FROM items WHERE vec SIMILAR TO [1 2] WITHIN 1 USING l2`,
		`SELECT id FROM items WHERE vec SIMILAR TO [1, 2 WITHIN 1 USING l2`,
		`SELECT id FROM items WHERE vec SIMILAR TO [a] WITHIN 1 USING l2`,
	} {
		if _, err := Parse(stmt); err == nil {
			t.Errorf("%s: parsed, want error", stmt)
		}
	}
}

func TestVecNearestBasic(t *testing.T) {
	e := vecEngine(t, 1, 0, vecRows(
		metric.Vector{0, 0},
		metric.Vector{1, 0},
		metric.Vector{0, 3},
		metric.Vector{5, 5},
	))
	res, err := e.Execute(`SELECT id, dist FROM items WHERE vec NEAREST 2 TO [0, 0] USING l2`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"0", "0"}, {"1", "1"}}
	if fmt.Sprint(res.Rows) != fmt.Sprint(want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}

	// L2 satisfies the triangle inequality, so NEAREST goes through the
	// VP-tree; the plan says so, names the metric, and prunes.
	plan, err := e.Execute(`EXPLAIN SELECT id FROM items WHERE vec NEAREST 2 TO [0, 0] USING l2`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Plan, "VecNearestK(items via vptree, k=2, metric=l2)") {
		t.Fatalf("l2 NEAREST plan:\n%s", plan.Plan)
	}

	// Cosine has no triangle inequality: NEAREST must fall back to scan.
	plan, err = e.Execute(`EXPLAIN SELECT id FROM items WHERE vec NEAREST 2 TO [1, 1] USING cosine`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Plan, "VecNearestK(items via scan, k=2, metric=cosine)") {
		t.Fatalf("cosine NEAREST plan:\n%s", plan.Plan)
	}
}

func TestVecWithinBasic(t *testing.T) {
	e := vecEngine(t, 1, 0, vecRows(
		metric.Vector{0, 0},
		metric.Vector{1, 0},
		metric.Vector{0, 3},
		metric.Vector{5, 5},
	))
	res, err := e.Execute(`SELECT id FROM items WHERE vec SIMILAR TO [0, 0] WITHIN 1.5 USING l2`)
	if err != nil {
		t.Fatal(err)
	}
	got := canonical(res)
	if got != "0\n1" {
		t.Fatalf("WITHIN ids = %q, want 0 and 1", got)
	}
	plan, err := e.Execute(`EXPLAIN SELECT id FROM items WHERE vec SIMILAR TO [0, 0] WITHIN 1.5 USING l2`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Plan, "VecRange(items via vptree, radius=1.5, metric=l2)") {
		t.Fatalf("l2 WITHIN plan:\n%s", plan.Plan)
	}

	// dist projects the metric's value for matched rows.
	res, err = e.Execute(`SELECT id, dist FROM items WHERE vec SIMILAR TO [0, 0] WITHIN 1.5 USING l2 ORDER BY dist`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"0", "0"}, {"1", "1"}}
	if fmt.Sprint(res.Rows) != fmt.Sprint(want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

func TestVecExplainKernelLabels(t *testing.T) {
	e := vecEngine(t, 1, 4, vecRows(
		metric.Vector{0, 0},
		metric.Vector{1, 0},
		metric.Vector{0, 3},
	))
	for _, tc := range []struct {
		stmt, want string
	}{
		{`EXPLAIN SELECT id FROM items WHERE vec NEAREST 2 TO [0, 0] USING l2`, "kernel=vec-l2"},
		{`EXPLAIN SELECT id FROM items WHERE vec NEAREST 2 TO [1, 1] USING cosine`, "kernel=vec-cosine"},
		{`EXPLAIN SELECT id FROM items WHERE vec SIMILAR TO [0, 0] WITHIN 1.5 USING l2`, "kernel=vec-l2"},
	} {
		res, err := e.Execute(tc.stmt)
		if err != nil {
			t.Fatalf("%s: %v", tc.stmt, err)
		}
		if !strings.Contains(res.Plan, "Vectorize(batch=4, ") || !strings.Contains(res.Plan, tc.want) {
			t.Errorf("%s:\nplan %q lacks %q", tc.stmt, res.Plan, tc.want)
		}
	}
}

func TestVecShardedExplain(t *testing.T) {
	e := vecEngine(t, 4, 0, vecRows(
		metric.Vector{0, 0},
		metric.Vector{1, 0},
		metric.Vector{0, 3},
		metric.Vector{5, 5},
		metric.Vector{2, 2},
		metric.Vector{3, 1},
	))
	plan, err := e.Execute(`EXPLAIN SELECT id FROM items WHERE vec NEAREST 2 TO [0, 0] USING l2`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Plan, "ShardVecNearestK(items, shard 0/4, via vptree, k=2, metric=l2)") {
		t.Fatalf("sharded NEAREST plan:\n%s", plan.Plan)
	}
}

func TestVecQueryErrors(t *testing.T) {
	e := vecEngine(t, 1, 0, vecRows(metric.Vector{0, 0}))
	for _, stmt := range []string{
		`SELECT id FROM items WHERE vec SIMILAR TO [1] WITHIN 1 USING nosuchmetric`,
		`SELECT id FROM items WHERE vec NEAREST 2 TO [1] USING nosuchmetric`,
		`SELECT id FROM items WHERE seq SIMILAR TO [1] WITHIN 1 USING l2`,
		`SELECT id FROM items WHERE vec SIMILAR TO PATTERN "a*" WITHIN 1 USING l2`,
		`SELECT id FROM items WHERE vec NEAREST 0 TO [1] USING l2`,
		`SELECT a.id FROM items a WHERE a.vec SIMILAR TO a.vec WITHIN 1 USING l2`,
	} {
		if _, err := e.Execute(stmt); err == nil {
			t.Errorf("%s: expected error, got none", stmt)
		}
	}
}

func TestVecPrepared(t *testing.T) {
	e := vecEngine(t, 1, 0, vecRows(
		metric.Vector{0, 0},
		metric.Vector{1, 0},
		metric.Vector{0, 3},
	))
	pq, err := e.Prepare(`SELECT id, dist FROM items WHERE vec SIMILAR TO ? WITHIN ? USING l2 ORDER BY dist`)
	if err != nil {
		t.Fatal(err)
	}
	// String parameters bound against the vec column parse as vector
	// literals.
	res, err := pq.Execute("[0,0]", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"0", "0"}, {"1", "1"}}
	if fmt.Sprint(res.Rows) != fmt.Sprint(want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
	if _, err := pq.Execute("not a vector", 1.5); err == nil {
		t.Error("malformed vector parameter accepted")
	}

	near, err := e.Prepare(`SELECT id FROM items WHERE vec NEAREST 2 TO ? USING l2`)
	if err != nil {
		t.Fatal(err)
	}
	res, err = near.Execute("[0,0]")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Rows) != fmt.Sprint([][]string{{"0"}, {"1"}}) {
		t.Fatalf("prepared NEAREST rows = %v", res.Rows)
	}
}

func TestVecDML(t *testing.T) {
	e := vecEngine(t, 1, 0, nil)
	if _, err := e.Execute(`INSERT INTO items (vec) VALUES ([1, 2]), ([3, 4])`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(`SELECT vec FROM items WHERE id = "0"`)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Rows) != fmt.Sprint([][]string{{"[1,2]"}}) {
		t.Fatalf("inserted vec = %v", res.Rows)
	}

	// UPDATE of an unrelated column carries the vector forward.
	if _, err := e.Execute(`UPDATE items SET tag = "x" WHERE id = "0"`); err != nil {
		t.Fatal(err)
	}
	res, err = e.Execute(`SELECT vec, tag FROM items WHERE tag = "x"`)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Rows) != fmt.Sprint([][]string{{"[1,2]", "x"}}) {
		t.Fatalf("vec after attr update = %v", res.Rows)
	}

	// SET vec replaces it.
	if _, err := e.Execute(`UPDATE items SET vec = [9, 9] WHERE tag = "x"`); err != nil {
		t.Fatal(err)
	}
	res, err = e.Execute(`SELECT vec FROM items WHERE tag = "x"`)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Rows) != fmt.Sprint([][]string{{"[9,9]"}}) {
		t.Fatalf("vec after SET vec = %v", res.Rows)
	}

	// A row needs a seq or a vec.
	if _, err := e.Execute(`INSERT INTO items (tag) VALUES ("y")`); err == nil {
		t.Error("INSERT without seq or vec accepted")
	}
}

// ----------------------------------------------------------- parity

// vecModelRow is the brute-force model's tuple.
type vecModelRow struct {
	id  int
	vec metric.Vector
}

// vecBruteNearest returns the engine's NEAREST result rows (id, dist)
// computed by exhaustive scan with the engine's (dist, id) total order.
func vecBruteNearest(rows []vecModelRow, m metric.Distance, q metric.Vector, k int) [][]string {
	type cand struct {
		id int
		d  float64
	}
	var cands []cand
	for _, r := range rows {
		if r.vec == nil {
			continue
		}
		cands = append(cands, cand{r.id, m.Dist(q, r.vec)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([][]string, len(cands))
	for i, c := range cands {
		out[i] = []string{fmt.Sprint(c.id), formatDist(c.d)}
	}
	return out
}

// vecBruteWithin returns the canonical (sorted) id set within radius.
func vecBruteWithin(rows []vecModelRow, m metric.Distance, q metric.Vector, radius float64) []string {
	var ids []string
	for _, r := range rows {
		if r.vec == nil {
			continue
		}
		if _, ok := metric.Within(m, q, r.vec, radius); ok {
			ids = append(ids, fmt.Sprint(r.id))
		}
	}
	sort.Strings(ids)
	return ids
}

func randVec(rng *rand.Rand, dim int) metric.Vector {
	v := make(metric.Vector, dim)
	for i := range v {
		v[i] = float32(rng.Float64()*2 - 1)
	}
	return v
}

// TestVecShardBatchOracleParity pins every execution strategy — row and
// batch pipelines, unsharded and sharded relations, VP-tree and scan
// access — byte-identical to the brute-force model, across dimensions,
// both metrics, k/radius sweeps and interleaved INSERT batches.
func TestVecShardBatchOracleParity(t *testing.T) {
	for _, dim := range []int{2, 8, 64} {
		dim := dim
		t.Run(fmt.Sprintf("dim=%d", dim), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + dim)))
			var rows []relation.InsertRow
			var model []vecModelRow
			for i := 0; i < 48; i++ {
				if i%8 == 7 {
					// Seq-only rows: every strategy must skip nil vectors.
					rows = append(rows, relation.InsertRow{Seq: fmt.Sprintf("s%d", i)})
					model = append(model, vecModelRow{id: i})
					continue
				}
				v := randVec(rng, dim)
				rows = append(rows, relation.InsertRow{Vec: v})
				model = append(model, vecModelRow{id: i, vec: v})
			}
			nextID := len(rows)

			type cfg struct {
				name   string
				shards int
				batch  int
			}
			cfgs := []cfg{
				{"row", 1, 0},
				{"batch", 1, 5},
				{"shard4-row", 4, 0},
				{"shard4-batch", 4, 5},
			}
			engines := make([]*Engine, len(cfgs))
			for i, c := range cfgs {
				engines[i] = vecEngine(t, c.shards, c.batch, rows)
			}

			check := func() {
				t.Helper()
				for _, mname := range []string{"l2", "cosine"} {
					m, ok := metric.Lookup(mname)
					if !ok {
						t.Fatalf("metric %q not registered", mname)
					}
					q := randVec(rng, dim)
					lit := metric.Format(q)
					for _, k := range []int{1, 3, 10} {
						stmt := fmt.Sprintf(`SELECT id, dist FROM items WHERE vec NEAREST %d TO %s USING %s`, k, lit, mname)
						want := fmt.Sprint(vecBruteNearest(model, m, q, k))
						for i, e := range engines {
							res, err := e.Execute(stmt)
							if err != nil {
								t.Fatalf("%s/%s: %v", cfgs[i].name, stmt, err)
							}
							if got := fmt.Sprint(res.Rows); got != want {
								t.Fatalf("%s: NEAREST diverges for %s\ngot:  %s\nwant: %s\nplan:\n%s",
									cfgs[i].name, stmt, got, want, res.Plan)
							}
						}
					}
					for _, radius := range []float64{0.1, 0.5, 1.5} {
						stmt := fmt.Sprintf(`SELECT id FROM items WHERE vec SIMILAR TO %s WITHIN %g USING %s`, lit, radius, mname)
						want := strings.Join(vecBruteWithin(model, m, q, radius), "\n")
						for i, e := range engines {
							res, err := e.Execute(stmt)
							if err != nil {
								t.Fatalf("%s/%s: %v", cfgs[i].name, stmt, err)
							}
							if got := canonical(res); got != want {
								t.Fatalf("%s: WITHIN diverges for %s\ngot:  %q\nwant: %q\nplan:\n%s",
									cfgs[i].name, stmt, got, want, res.Plan)
							}
						}
					}
				}
			}

			check()
			// Interleave an INSERT batch through the DML path and re-check:
			// the head VP-trees are invalidated and rebuilt, ids stay
			// aligned across shard counts.
			for round := 0; round < 2; round++ {
				var lits []string
				for i := 0; i < 6; i++ {
					v := randVec(rng, dim)
					lits = append(lits, fmt.Sprintf("(%s)", metric.Format(v)))
					model = append(model, vecModelRow{id: nextID, vec: v})
					nextID++
				}
				stmt := fmt.Sprintf(`INSERT INTO items (vec) VALUES %s`, strings.Join(lits, ", "))
				for i, e := range engines {
					if _, err := e.Execute(stmt); err != nil {
						t.Fatalf("%s: %v", cfgs[i].name, err)
					}
				}
				check()
			}
		})
	}
}

// TestVecConcurrentInsertQuery exercises snapshot isolation under the
// race detector: writers append vector rows through the DML path while
// readers run NEAREST and WITHIN against whatever snapshot they catch.
func TestVecConcurrentInsertQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var rows []relation.InsertRow
	for i := 0; i < 32; i++ {
		rows = append(rows, relation.InsertRow{Vec: randVec(rng, 8)})
	}
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e := vecEngine(t, shards, 5, rows)
			var wg sync.WaitGroup
			wg.Add(3)
			go func() {
				defer wg.Done()
				r := rand.New(rand.NewSource(11))
				for i := 0; i < 20; i++ {
					stmt := fmt.Sprintf(`INSERT INTO items (vec) VALUES (%s)`, metric.Format(randVec(r, 8)))
					if _, err := e.Execute(stmt); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			for g := 0; g < 2; g++ {
				g := g
				go func() {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(23 + g)))
					for i := 0; i < 20; i++ {
						lit := metric.Format(randVec(r, 8))
						if _, err := e.Execute(fmt.Sprintf(`SELECT id, dist FROM items WHERE vec NEAREST 3 TO %s USING l2`, lit)); err != nil {
							t.Error(err)
							return
						}
						if _, err := e.Execute(fmt.Sprintf(`SELECT id FROM items WHERE vec SIMILAR TO %s WITHIN 1.0 USING cosine`, lit)); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
