package query

// DML execution. INSERT/DELETE/UPDATE statements share the read stack
// with SELECT: the WHERE clause of DELETE and UPDATE is planned by the
// cost-based planner (index access paths included) over an MVCC
// snapshot, matched ids are collected, and the write batch is applied
// through the attached storage.Store — WAL first, then memory — or
// directly to the catalog's relations when no store is attached.
// Either way the relations bump their versions, Catalog.StatsVersion
// moves, and every cached plan and memoised prepared-query decision
// keyed on it is invalidated.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metric"
	"repro/internal/relation"
	"repro/internal/storage"
)

// SetStore attaches a durable store. Once attached, every mutation the
// engine executes flows through it (WAL then memory); pass nil to
// return to direct in-memory mutation. The store must wrap the same
// catalog the engine queries.
func (e *Engine) SetStore(st *storage.Store) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.store = st
}

func (e *Engine) storeRef() *storage.Store {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store
}

// ExecuteMutation runs a parsed (or hand-built) DML statement. The
// statement must be fully bound — parameterized DML goes through
// Engine.Prepare.
func (e *Engine) ExecuteMutation(m *Mutation) (*Result, error) {
	if mutationHasParams(m) {
		return nil, fmt.Errorf("query: statement has bind parameters; use Engine.Prepare")
	}
	if _, ok := e.catalog.Lookup(m.Table); !ok {
		return nil, fmt.Errorf("query: unknown relation %q", m.Table)
	}
	switch m.Kind {
	case MutInsert:
		return e.execInsert(m)
	case MutDelete, MutUpdate:
		return e.execDeleteOrUpdate(m)
	default:
		return nil, fmt.Errorf("query: unknown mutation kind %d", m.Kind)
	}
}

// execInsert builds one op per VALUES row and commits the batch. A row
// may carry a seq, a vec, or both — vector-only relations insert rows
// with an empty sequence.
func (e *Engine) execInsert(m *Mutation) (*Result, error) {
	seqCol, vecCol := -1, -1
	for i, c := range m.Columns {
		switch c {
		case "seq":
			seqCol = i
		case "vec":
			vecCol = i
		}
	}
	if seqCol < 0 && vecCol < 0 {
		return nil, fmt.Errorf("query: INSERT into %q lacks a seq or vec column", m.Table)
	}
	ops := make([]storage.Op, 0, len(m.Rows))
	for _, row := range m.Rows {
		if len(row) != len(m.Columns) {
			return nil, fmt.Errorf("query: INSERT row has %d values, want %d", len(row), len(m.Columns))
		}
		op := storage.Op{Kind: storage.OpInsert, Rel: m.Table}
		for i, v := range row {
			if i == vecCol {
				vec, err := vecValue(v)
				if err != nil {
					return nil, err
				}
				op.Vec = vec
				continue
			}
			if !v.IsLit {
				return nil, fmt.Errorf("query: INSERT values must be literals (got %s)", v)
			}
			if i == seqCol {
				op.Seq = v.Lit
				continue
			}
			if op.Attrs == nil {
				op.Attrs = make(map[string]string, len(row)-1)
			}
			op.Attrs[m.Columns[i]] = v.Lit
		}
		ops = append(ops, op)
	}
	root := fmt.Sprintf("Mutate(insert %d rows into %s)", len(ops), m.Table)
	if m.Explain {
		return mutationExplain(root, ""), nil
	}
	applied, err := e.applyOps(ops)
	if err != nil {
		return nil, err
	}
	return mutationResult(applied, ExecStats{}, root), nil
}

// execDeleteOrUpdate plans the WHERE clause as an internal SELECT id
// query, collects the matching ids from a snapshot, and commits the
// write batch.
func (e *Engine) execDeleteOrUpdate(m *Mutation) (*Result, error) {
	iq := &Query{
		Select: []Column{{Name: "id"}},
		From:   []TableRef{{Name: m.Table, Alias: m.Table}},
		Where:  m.Where,
	}
	d, err := e.decide(iq)
	if err != nil {
		return nil, err
	}
	plan, err := e.buildPlan(iq, d)
	if err != nil {
		return nil, err
	}
	verb := "delete from"
	if m.Kind == MutUpdate {
		verb = "update"
	}
	root := fmt.Sprintf("Mutate(%s %s)", verb, m.Table)
	if m.Explain {
		return mutationExplain(root, plan.describe()), nil
	}
	ids, stats, err := collectIDs(plan, m.Table)
	if err != nil {
		return nil, err
	}
	// Apply in ascending id order no matter which access path produced
	// the ids (index traversal order is plan-dependent): UPDATE assigns
	// replacement ids in application order, and that assignment must be
	// identical across physical plans — sharded and unsharded engines
	// running the same statement stream must converge to the same ids.
	sort.Ints(ids)

	tab, _ := e.catalog.Lookup(m.Table)
	// One read view for the whole merge loop — per-id Table.Tuple would
	// re-load the head (or shard view) for every matched row.
	var read func(int) (relation.Tuple, bool)
	switch t := tab.(type) {
	case *relation.Relation:
		read = t.Snapshot().Tuple
	case *relation.ShardedRelation:
		read = t.View().Tuple
	default:
		read = tab.Tuple
	}
	ops := make([]storage.Op, 0, len(ids))
	for _, id := range ids {
		if m.Kind == MutDelete {
			ops = append(ops, storage.Op{Kind: storage.OpDelete, Rel: m.Table, ID: id})
			continue
		}
		// UPDATE: merge the SET assignments over the current tuple. A
		// tuple deleted since the read phase is skipped here (and again,
		// defensively, at apply time).
		t, ok := read(id)
		if !ok {
			continue
		}
		seq, vec := t.Seq, t.Vec
		var attrs map[string]string
		if len(t.Attrs) > 0 {
			attrs = make(map[string]string, len(t.Attrs))
			for k, v := range t.Attrs {
				attrs[k] = v
			}
		}
		for _, sc := range m.Set {
			if sc.Name == "vec" {
				v, err := vecValue(sc.Value)
				if err != nil {
					return nil, err
				}
				vec = v
				continue
			}
			if !sc.Value.IsLit {
				return nil, fmt.Errorf("query: SET values must be literals (got %s)", sc.Value)
			}
			if sc.Name == "seq" {
				seq = sc.Value.Lit
				continue
			}
			if attrs == nil {
				attrs = make(map[string]string, len(m.Set))
			}
			attrs[sc.Name] = sc.Value.Lit
		}
		ops = append(ops, storage.Op{Kind: storage.OpUpdate, Rel: m.Table, ID: id, Seq: seq, Vec: vec, Attrs: attrs})
	}
	applied, err := e.applyOps(ops)
	if err != nil {
		return nil, err
	}
	return mutationResult(applied, stats, mutationExplain(root, plan.describe()).Plan), nil
}

// vecValue resolves a vec-column DML value: a vector literal directly,
// or a string literal (typically a bound parameter) parsed in the
// canonical vector-literal form.
func vecValue(v Operand) (metric.Vector, error) {
	if v.IsVec {
		return v.Vec, nil
	}
	if v.IsLit {
		vec, err := metric.Parse(v.Lit)
		if err != nil {
			return nil, fmt.Errorf("query: bad vec value: %w", err)
		}
		return vec, nil
	}
	return nil, fmt.Errorf("query: vec values must be vector literals (got %s)", v)
}

// collectIDs drives a read plan and pulls each matched tuple id
// straight from the binding (or the batch id column) — no result-row
// materialisation, no int -> string -> int round trip.
func collectIDs(plan *compiledPlan, alias string) ([]int, ExecStats, error) {
	if plan.broot != nil {
		return collectIDsBatch(plan, alias)
	}
	if err := plan.root.Open(); err != nil {
		plan.root.Close()
		return nil, ExecStats{}, err
	}
	var ids []int
	for {
		b, err := plan.root.Next()
		if err != nil {
			plan.root.Close()
			return nil, ExecStats{}, err
		}
		if b == nil {
			break
		}
		t, _ := b.tupleFor(alias)
		ids = append(ids, t.ID)
	}
	if err := plan.root.Close(); err != nil {
		return nil, ExecStats{}, err
	}
	return ids, plan.ctx.snapshot(), nil
}

// collectIDsBatch is collectIDs over a vectorized read plan: ids come
// straight out of each block's id column (bindings-layout blocks — a
// DML whose WHERE joins through adapters — resolve per binding).
func collectIDsBatch(plan *compiledPlan, alias string) ([]int, ExecStats, error) {
	root := plan.broot
	if err := root.OpenBatch(); err != nil {
		root.CloseBatch()
		return nil, ExecStats{}, err
	}
	var ids []int
	for {
		b, err := root.NextBatch()
		if err != nil {
			root.CloseBatch()
			return nil, ExecStats{}, err
		}
		if b == nil {
			break
		}
		if b.binds != nil {
			for _, rb := range b.binds {
				t, _ := rb.tupleFor(alias)
				ids = append(ids, t.ID)
			}
			continue
		}
		ids = append(ids, b.IDs...)
	}
	if err := root.CloseBatch(); err != nil {
		return nil, ExecStats{}, err
	}
	return ids, plan.ctx.snapshot(), nil
}

// applyOps commits a write batch through the attached store, or
// directly to the catalog (storage.Apply — same algorithm, no WAL)
// when none is attached.
func (e *Engine) applyOps(ops []storage.Op) (int, error) {
	if st := e.storeRef(); st != nil {
		res, err := st.Commit(ops)
		return res.Applied, err
	}
	res, err := storage.Apply(e.catalog, ops)
	return res.Applied, err
}

// mutationResult is the uniform DML result: a one-row count relation
// plus the read-phase work counters and the executed plan tree.
func mutationResult(count int, stats ExecStats, plan string) *Result {
	return &Result{
		Columns: []string{"count"},
		Rows:    [][]string{{strconv.Itoa(count)}},
		Stats:   stats,
		Plan:    plan,
	}
}

// mutationExplain renders a Mutate root over the (optional) read plan.
func mutationExplain(root, readPlan string) *Result {
	tree := root
	if readPlan != "" {
		lines := strings.Split(readPlan, "\n")
		tree += "\n└─ " + lines[0]
		for _, l := range lines[1:] {
			tree += "\n   " + l
		}
	}
	return &Result{Columns: []string{"plan"}, Rows: [][]string{{tree}}, Plan: tree}
}

// mutationHasParams reports whether any parameter slot is still open.
func mutationHasParams(m *Mutation) bool {
	if len(m.Params) > 0 {
		return true
	}
	for _, row := range m.Rows {
		for _, v := range row {
			if v.Param != nil {
				return true
			}
		}
	}
	for _, sc := range m.Set {
		if sc.Value.Param != nil {
			return true
		}
	}
	return exprHasParams(m.Where)
}

// IsDML cheaply reports whether statement text is a mutation
// (optionally prefixed with EXPLAIN) without parsing it. Servers use it
// to route writes onto a no-abandon execution path: a write must never
// be reported failed while its commit proceeds.
func IsDML(src string) bool { return isDMLText(src) }

// IsMutation reports whether the prepared statement is DML.
func (pq *PreparedQuery) IsMutation() bool { return pq.mut != nil }

// isDMLText cheaply detects DML statement text (optionally prefixed
// with EXPLAIN) so Engine.Execute can bypass the plan cache without
// parsing. Allocation-free: the serving read path calls it per query.
func isDMLText(src string) bool {
	w, rest := firstWord(src)
	if strings.EqualFold(w, "explain") {
		w, _ = firstWord(rest)
	}
	return strings.EqualFold(w, "insert") ||
		strings.EqualFold(w, "delete") ||
		strings.EqualFold(w, "update")
}

func firstWord(s string) (word, rest string) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
		i++
	}
	j := i
	for j < len(s) && isIdentPart(s[j]) {
		j++
	}
	return s[i:j], s[j:]
}
