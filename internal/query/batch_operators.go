package query

// The batch-at-a-time physical operators: block-granular twins of the
// row operators in operators.go. Each one carries the same EXPLAIN
// label and produces the same rows in the same order as its row twin —
// the batch/row parity oracle pins that equivalence — while paying its
// per-row costs once per block.

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/index"
	"repro/internal/metric"
	"repro/internal/relation"
)

// ---------------------------------------------------------------- scan

// batchScanOp streams the visible tuples of one snapshot shard a block
// at a time through relation.Cursor.NextBlock, which amortizes the
// visibility filtering across whole arena runs.
type batchScanOp struct {
	ctx           *execCtx
	snap          *relation.Snapshot
	alias         string
	shard, shards int
	size          int

	cur   *relation.Cursor
	buf   *Batch
	local ExecStats
	last  ExecStats // retained across Close for span attribution
}

func newBatchScanOp(ctx *execCtx, snap *relation.Snapshot, alias string, size int) *batchScanOp {
	return &batchScanOp{ctx: ctx, snap: snap, alias: alias, shards: 1, size: size}
}

func (o *batchScanOp) OpenBatch() error {
	o.cur = o.snap.Shard(o.shard, o.shards)
	o.buf = getBatch()
	return nil
}

func (o *batchScanOp) NextBatch() (*Batch, error) {
	b := o.buf
	b.alias = o.alias
	b.rows = b.rows[:0]
	b.binds = nil
	n := o.cur.NextBlock(&b.Block, o.size)
	if n == 0 {
		return nil, nil
	}
	b.syncCols()
	o.local.Candidates += n
	return b, nil
}

func (o *batchScanOp) CloseBatch() error {
	o.last.add(o.local)
	o.ctx.addStats(o.local)
	o.local = ExecStats{}
	putBatch(o.buf)
	o.buf = nil
	return nil
}

func (o *batchScanOp) opStats() ExecStats { return o.last }

func (o *batchScanOp) Describe() string {
	if o.shards > 1 {
		return fmt.Sprintf("Scan(%s, shard %d/%d)", o.alias, o.shard, o.shards)
	}
	return fmt.Sprintf("Scan(%s)", o.alias)
}

func (o *batchScanOp) childNodes() []any { return nil }

// --------------------------------------------------------- index range

// batchIndexRangeOp streams index matches in blocks through the metric
// indexes' BatchIterator, applying the snapshot visibility filter per
// block. Emission order is the iterator's deterministic traversal
// order — identical to the row operator's.
type batchIndexRangeOp struct {
	ctx     *execCtx
	snap    *relation.Snapshot
	alias   string
	via     string // "bktree" or "trie"
	target  string
	radius  int
	ruleSet string
	size    int

	iter index.BatchIterator
	mbuf []index.Match
	buf  *Batch
	last ExecStats // retained across Close for span attribution
}

func (o *batchIndexRangeOp) OpenBatch() error {
	var idx index.Index
	switch o.via {
	case "trie":
		idx = o.snap.Trie()
	default:
		idx = o.snap.BKTree()
	}
	it := idx.RangeIter(o.target, o.radius)
	bi, ok := it.(index.BatchIterator)
	if !ok {
		bi = &iterBatcher{Iterator: it}
	}
	o.iter = bi
	if cap(o.mbuf) < o.size {
		o.mbuf = make([]index.Match, o.size)
	}
	o.buf = getBatch()
	return nil
}

func (o *batchIndexRangeOp) NextBatch() (*Batch, error) {
	b := o.buf
	for {
		n := o.iter.NextBatch(o.mbuf[:o.size])
		if n == 0 {
			return nil, nil
		}
		b.reset()
		b.alias = o.alias
		for _, m := range o.mbuf[:n] {
			t, ok := o.snap.Tuple(m.ID)
			if !ok {
				continue // invisible at this snapshot (tombstone or later insert)
			}
			b.appendMatch(t, m.Dist, true)
		}
		if b.Len() > 0 {
			return b, nil
		}
	}
}

func (o *batchIndexRangeOp) CloseBatch() error {
	if o.iter != nil {
		es := fromIndexStats(o.iter.Stats())
		o.last.add(es)
		o.ctx.addStats(es)
		o.iter = nil
	}
	putBatch(o.buf)
	o.buf = nil
	return nil
}

func (o *batchIndexRangeOp) opStats() ExecStats { return o.last }

func (o *batchIndexRangeOp) Describe() string {
	return fmt.Sprintf("IndexRange(%s via %s, target=%s, radius=%d, ruleset=%s)",
		o.alias, o.via, o.target, o.radius, o.ruleSet)
}

func (o *batchIndexRangeOp) childNodes() []any { return nil }

// iterBatcher adapts a plain Iterator to the batch protocol (defensive:
// both metric indexes implement BatchIterator natively).
type iterBatcher struct{ index.Iterator }

func (it *iterBatcher) NextBatch(dst []index.Match) int {
	n := 0
	for n < len(dst) {
		m, ok := it.Next()
		if !ok {
			break
		}
		dst[n] = m
		n++
	}
	return n
}

// ----------------------------------------------------------- nearest-k

// batchNearestKOp answers NEAREST k with the best list maintained over
// whole blocks: the scan variant pulls tuple blocks and folds each one
// into the bounded best list, the bktree variant reuses the metric
// tree's best-first walk with the buffer-reusing Into form.
type batchNearestKOp struct {
	ctx     *execCtx
	snap    *relation.Snapshot
	alias   string
	via     string // "bktree" or "scan"
	target  string
	k       int
	ruleSet string
	size    int

	matches []index.Match
	pos     int
	blk     relation.Block
	buf     *Batch
	last    ExecStats // retained across Close for span attribution
}

func (o *batchNearestKOp) OpenBatch() error {
	o.pos = 0
	o.buf = getBatch()
	if o.via == "bktree" {
		m, st := o.snap.BKTree().NearestKFilterStatsInto(o.matches[:0], o.target, o.k, o.snap.Visible)
		o.matches = m
		es := fromIndexStats(st)
		o.last.add(es)
		o.ctx.addStats(es)
		return nil
	}
	calc := o.ctx.eng.calc(o.ruleSet)
	if calc == nil {
		return fmt.Errorf("query: NEAREST requires an edit-like rule set (%q is not)", o.ruleSet)
	}
	// The target is fixed for the whole scan: run the vectorized
	// distance kernel (dense cost tables, reused DP rows, bit-identical
	// results — see editdp.TargetDP).
	dp := calc.NewTargetDP(o.target)
	var local ExecStats
	best := o.matches[:0]
	bound := math.Inf(1)
	cur := o.snap.Shard(0, 1)
	for {
		n := cur.NextBlock(&o.blk, o.size)
		if n == 0 {
			break
		}
		local.Candidates += n
		local.Verifications += n
		for i := 0; i < n; i++ {
			s := o.blk.Seqs[i]
			var d float64
			var within bool
			if math.IsInf(bound, 1) {
				d = dp.Distance(s)
				within = d < infCut
			} else {
				d, within = dp.Within(s, bound)
			}
			if !within {
				local.Abandoned++
				continue
			}
			best = index.PushBestK(best, index.Match{ID: o.blk.IDs[i], S: s, Dist: d}, o.k)
			if len(best) == o.k {
				bound = best[o.k-1].Dist
			}
		}
	}
	o.matches = best
	o.last.add(local)
	o.ctx.addStats(local)
	return nil
}

func (o *batchNearestKOp) NextBatch() (*Batch, error) {
	if o.pos >= len(o.matches) {
		return nil, nil
	}
	b := o.buf
	b.reset()
	b.alias = o.alias
	for b.Len() < o.size && o.pos < len(o.matches) {
		m := o.matches[o.pos]
		o.pos++
		t, _ := o.snap.Tuple(m.ID)
		b.appendMatch(t, m.Dist, true)
	}
	return b, nil
}

func (o *batchNearestKOp) CloseBatch() error {
	o.matches = o.matches[:0]
	putBatch(o.buf)
	o.buf = nil
	return nil
}

func (o *batchNearestKOp) opStats() ExecStats { return o.last }

func (o *batchNearestKOp) Describe() string {
	return fmt.Sprintf("NearestK(%s via %s, k=%d, ruleset=%s)", o.alias, o.via, o.k, o.ruleSet)
}

func (o *batchNearestKOp) childNodes() []any { return nil }

// -------------------------------------------------------------- filter

// batchFilterOp keeps the rows satisfying a residual predicate,
// compacting each block in place. Single-alias predicates run through
// the compiled evaluator (batch_pred.go); binding-layout blocks and
// uncompilable shapes fall back to the row evaluator on a scratch
// binding — same semantics, fewer hoisted costs.
type batchFilterOp struct {
	ctx   *execCtx
	child BatchOperator
	pred  Expr
	alias string

	fn      predFn
	scratch binding
	local   ExecStats
	last    ExecStats // retained across Close for span attribution
}

func (o *batchFilterOp) OpenBatch() error {
	o.fn = o.ctx.eng.compilePred(o.pred, o.alias)
	return o.child.OpenBatch()
}

func (o *batchFilterOp) NextBatch() (*Batch, error) {
	for {
		b, err := o.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		if b.binds != nil {
			keep := b.binds[:0]
			for _, rb := range b.binds {
				o.local.Verifications++
				ok, err := o.ctx.eng.evalExpr(o.pred, rb)
				if err != nil {
					return nil, err
				}
				if ok {
					keep = append(keep, rb)
				}
			}
			b.binds = keep
			if len(keep) > 0 {
				return b, nil
			}
			continue
		}
		n := b.Block.Len()
		w := 0
		for i := 0; i < n; i++ {
			o.local.Verifications++
			var ok bool
			if o.fn != nil {
				t := relation.Tuple{ID: b.IDs[i], Seq: b.Seqs[i], Vec: b.Vecs[i], Attrs: b.Attrs[i]}
				ok, err = o.fn(&t, &b.dist[i], &b.has[i])
			} else {
				b.scratch(i, o.alias, &o.scratch)
				ok, err = o.ctx.eng.evalExpr(o.pred, &o.scratch)
				b.dist[i], b.has[i] = o.scratch.dist, o.scratch.hasDist
			}
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			if w != i {
				b.IDs[w], b.Seqs[w], b.Vecs[w], b.Attrs[w] = b.IDs[i], b.Seqs[i], b.Vecs[i], b.Attrs[i]
				b.dist[w], b.has[w] = b.dist[i], b.has[i]
			}
			w++
		}
		b.truncate(w)
		if w > 0 {
			return b, nil
		}
	}
}

func (o *batchFilterOp) CloseBatch() error {
	o.last.add(o.local)
	o.ctx.addStats(o.local)
	o.local = ExecStats{}
	return o.child.CloseBatch()
}

func (o *batchFilterOp) opStats() ExecStats { return o.last }

func (o *batchFilterOp) Describe() string  { return fmt.Sprintf("Filter(%s)", o.pred) }
func (o *batchFilterOp) childNodes() []any { return []any{o.child} }

// ------------------------------------------------------------- project

// batchProjectOp materialises the output rows of each block.
type batchProjectOp struct {
	ctx   *execCtx
	q     *Query
	child BatchOperator
	alias string

	scratch binding
}

func (o *batchProjectOp) OpenBatch() error { return o.child.OpenBatch() }

func (o *batchProjectOp) NextBatch() (*Batch, error) {
	b, err := o.child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	rows := b.rows[:0]
	n := b.Len()
	for i := 0; i < n; i++ {
		rb := b.binds
		var src *binding
		if rb != nil {
			src = rb[i]
		} else {
			b.scratch(i, o.alias, &o.scratch)
			src = &o.scratch
		}
		row, err := projectRow(o.ctx.eng, o.q, src)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	b.rows = rows
	return b, nil
}

func (o *batchProjectOp) CloseBatch() error { return o.child.CloseBatch() }

func (o *batchProjectOp) Describe() string {
	return (&projectOp{q: o.q}).Describe()
}

func (o *batchProjectOp) childNodes() []any { return []any{o.child} }

// --------------------------------------------------------------- limit

// batchLimitOp truncates the stream after n rows.
type batchLimitOp struct {
	child BatchOperator
	n     int
	seen  int
}

func (o *batchLimitOp) OpenBatch() error { o.seen = 0; return o.child.OpenBatch() }

func (o *batchLimitOp) NextBatch() (*Batch, error) {
	if o.seen >= o.n {
		return nil, nil
	}
	b, err := o.child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	if rest := o.n - o.seen; b.Len() > rest {
		b.truncate(rest)
	}
	o.seen += b.Len()
	return b, nil
}

func (o *batchLimitOp) CloseBatch() error { return o.child.CloseBatch() }
func (o *batchLimitOp) Describe() string  { return fmt.Sprintf("Limit(%d)", o.n) }
func (o *batchLimitOp) childNodes() []any { return []any{o.child} }

// ------------------------------------------------------- order by dist

// batchOrderByDistOp is the blocking sort: it drains the child into
// column buffers of its own, stably sorts a row permutation by the same
// key as the row operator, and re-emits blocks in sorted order.
type batchOrderByDistOp struct {
	child BatchOperator
	desc  bool
	size  int

	ids   []int
	seqs  []string
	vecs  []metric.Vector
	attrs []map[string]string
	dist  []float64
	has   []bool
	binds []*binding

	perm []int
	pos  int
	out  *Batch
}

func (o *batchOrderByDistOp) OpenBatch() error {
	o.ids, o.seqs, o.vecs, o.attrs = o.ids[:0], o.seqs[:0], o.vecs[:0], o.attrs[:0]
	o.dist, o.has, o.binds = o.dist[:0], o.has[:0], nil
	o.perm, o.pos = o.perm[:0], 0
	o.out = getBatch()
	if err := o.child.OpenBatch(); err != nil {
		return err
	}
	for {
		b, err := o.child.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if b.binds != nil {
			o.binds = append(o.binds, b.binds...)
			continue
		}
		o.ids = append(o.ids, b.IDs...)
		o.seqs = append(o.seqs, b.Seqs...)
		o.vecs = append(o.vecs, b.Vecs...)
		o.attrs = append(o.attrs, b.Attrs...)
		o.dist = append(o.dist, b.dist...)
		o.has = append(o.has, b.has...)
	}
	n := len(o.ids)
	if o.binds != nil {
		n = len(o.binds)
	}
	key := func(i int) float64 {
		var d float64
		var h bool
		if o.binds != nil {
			d, h = o.binds[i].dist, o.binds[i].hasDist
		} else {
			d, h = o.dist[i], o.has[i]
		}
		if !h {
			// Dist-less rows sort last in either direction.
			if o.desc {
				return math.Inf(-1)
			}
			return math.Inf(1)
		}
		return d
	}
	o.perm = o.perm[:0]
	for i := 0; i < n; i++ {
		o.perm = append(o.perm, i)
	}
	sort.SliceStable(o.perm, func(i, j int) bool {
		if o.desc {
			return key(o.perm[i]) > key(o.perm[j])
		}
		return key(o.perm[i]) < key(o.perm[j])
	})
	return nil
}

func (o *batchOrderByDistOp) NextBatch() (*Batch, error) {
	if o.pos >= len(o.perm) {
		return nil, nil
	}
	b := o.out
	b.reset()
	if o.binds != nil {
		binds := b.binds[:0]
		for b2 := 0; b2 < o.size && o.pos < len(o.perm); b2++ {
			binds = append(binds, o.binds[o.perm[o.pos]])
			o.pos++
		}
		b.binds = binds
		return b, nil
	}
	for b.Len() < o.size && o.pos < len(o.perm) {
		i := o.perm[o.pos]
		o.pos++
		b.Block.Append(o.ids[i], o.seqs[i], o.vecs[i], o.attrs[i])
		b.dist = append(b.dist, o.dist[i])
		b.has = append(b.has, o.has[i])
	}
	return b, nil
}

func (o *batchOrderByDistOp) CloseBatch() error {
	o.ids, o.seqs, o.vecs, o.attrs = nil, nil, nil, nil
	o.dist, o.has, o.binds, o.perm = nil, nil, nil, nil
	putBatch(o.out)
	o.out = nil
	return o.child.CloseBatch()
}

func (o *batchOrderByDistOp) Describe() string {
	if o.desc {
		return "OrderByDist(desc)"
	}
	return "OrderByDist(asc)"
}

func (o *batchOrderByDistOp) childNodes() []any { return []any{o.child} }

// ------------------------------------------------------------ parallel

// batchParallelOp shards a batch pipeline across workers, exactly like
// parallelOp: build(i, n) returns the pipeline restricted to shard i of
// n, shard outputs are materialised concurrently (copied — a leaf
// refills its batch every pull) and re-emitted in shard order, which
// reproduces the serial plan's output byte for byte.
type batchParallelOp struct {
	ctx      *execCtx
	workers  int
	build    func(shard, shards int) BatchOperator
	template BatchOperator // shard-0 pipeline, used only for EXPLAIN

	// prebuilt holds the per-shard pipelines when tracing: building them
	// eagerly lets the span extractor visit the instances that actually
	// executed instead of the throwaway template.
	prebuilt []BatchOperator

	bufs  [][]*Batch
	shard int
	pos   int
}

// executedInstances exposes the per-shard pipelines for span
// extraction; nil when the plan is not traced.
func (o *batchParallelOp) executedInstances() []any {
	out := make([]any, len(o.prebuilt))
	for i, p := range o.prebuilt {
		out[i] = p
	}
	return out
}

func (o *batchParallelOp) shardPipeline(i int) BatchOperator {
	if o.prebuilt != nil {
		return o.prebuilt[i]
	}
	return o.build(i, o.workers)
}

func (o *batchParallelOp) OpenBatch() error {
	o.bufs = make([][]*Batch, o.workers)
	o.shard, o.pos = 0, 0
	errs := make([]error, o.workers)
	var wg sync.WaitGroup
	for i := 0; i < o.workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op := o.shardPipeline(i)
			if err := op.OpenBatch(); err != nil {
				errs[i] = err
				op.CloseBatch()
				return
			}
			for {
				b, err := op.NextBatch()
				if err != nil {
					errs[i] = err
					break
				}
				if b == nil {
					break
				}
				own := getBatch()
				own.copyFrom(b)
				o.bufs[i] = append(o.bufs[i], own)
			}
			if err := op.CloseBatch(); err != nil && errs[i] == nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (o *batchParallelOp) NextBatch() (*Batch, error) {
	for o.shard < len(o.bufs) {
		if o.pos < len(o.bufs[o.shard]) {
			b := o.bufs[o.shard][o.pos]
			o.pos++
			return b, nil
		}
		o.shard++
		o.pos = 0
	}
	return nil, nil
}

func (o *batchParallelOp) CloseBatch() error {
	for _, shard := range o.bufs {
		for _, b := range shard {
			putBatch(b)
		}
	}
	o.bufs = nil
	return nil
}

func (o *batchParallelOp) Describe() string {
	return fmt.Sprintf("Parallel(workers=%d)", o.workers)
}

func (o *batchParallelOp) childNodes() []any { return []any{o.template} }
