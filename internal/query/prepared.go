package query

// Prepared queries: parse once, bind many times. A PreparedQuery keeps
// the parsed template plus a small cache of planner decisions keyed by
// the bind-dependent cost inputs (radii, catalog statistics version,
// parallel configuration), so repeated executions skip both the parser
// and the cost-based planner — binding a value that moves an access
// path across its selectivity crossover is the only thing that triggers
// a re-plan. A PreparedQuery is safe for concurrent use: every
// execution binds into a fresh Query value and builds its own operator
// tree.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metric"
)

// PreparedQuery is a reusable compiled statement with bind parameters —
// a SELECT template (decision-cached) or a DML template (its read phase
// is planned per execution against fresh statistics).
type PreparedQuery struct {
	eng    *Engine
	src    string
	tmpl   *Query     // SELECT template; nil for DML
	mut    *Mutation  // DML template; nil for SELECT
	params []ParamRef // every parameter, in order of appearance

	mu        sync.Mutex
	decisions map[string]*planDecision
	stats     PreparedStats
}

// PreparedStats counts how a prepared query has been used.
type PreparedStats struct {
	Executions int64 // completed bind+execute calls
	Plans      int64 // cost-based planning runs (decision-cache misses)
	PlanReuses int64 // executions that reused a cached decision
}

// maxDecisionCacheEntries bounds the per-statement decision cache; an
// adversarial stream of distinct radii would otherwise grow it without
// limit. The cache resets wholesale — decisions are cheap to recompute.
const maxDecisionCacheEntries = 64

// Prepare parses a statement — SELECT or DML — into a reusable
// PreparedQuery. Rule sets, relation names and pattern syntax are
// validated eagerly; bind values are supplied per execution via
// Execute/ExecuteNamed.
func (e *Engine) Prepare(src string) (*PreparedQuery, error) {
	stmt, err := ParseStatement(src)
	if err != nil {
		return nil, err
	}
	if m, ok := stmt.(*Mutation); ok {
		if _, ok := e.catalog.Lookup(m.Table); !ok {
			return nil, fmt.Errorf("query: unknown relation %q", m.Table)
		}
		if err := e.validateExpr(m.Where); err != nil {
			return nil, err
		}
		return &PreparedQuery{eng: e, src: src, mut: m, params: m.Params}, nil
	}
	q := stmt.(*Query)
	if _, err := e.resolveFrom(q); err != nil {
		return nil, err
	}
	// validateExpr never looks at radii, so it works on the template.
	if err := e.validateExpr(q.Where); err != nil {
		return nil, err
	}
	return &PreparedQuery{
		eng: e, src: src, tmpl: q, params: q.Params,
		decisions: make(map[string]*planDecision),
	}, nil
}

// Text returns the statement the query was prepared from.
func (pq *PreparedQuery) Text() string { return pq.src }

// NumParams returns the number of parameters the statement takes:
// the count of '?' markers, or the number of distinct names for named
// parameters.
func (pq *PreparedQuery) NumParams() int {
	if names := pq.ParamNames(); names != nil {
		return len(names)
	}
	n := 0
	for _, p := range pq.params {
		if p.Idx >= n {
			n = p.Idx + 1
		}
	}
	return n
}

// ParamNames returns the distinct named parameters in order of first
// appearance, or nil for a positional (or parameterless) statement.
func (pq *PreparedQuery) ParamNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, p := range pq.params {
		if p.Name != "" && !seen[p.Name] {
			seen[p.Name] = true
			names = append(names, p.Name)
		}
	}
	return names
}

// Stats returns usage counters; the Plans counter staying flat across
// executions is the observable proof that re-binding skipped the
// planner.
func (pq *PreparedQuery) Stats() PreparedStats {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	return pq.stats
}

// Execute binds positional arguments and runs the statement.
func (pq *PreparedQuery) Execute(args ...any) (*Result, error) {
	return pq.run(pq.positionalLookup(args), false)
}

// ExecuteNamed binds named arguments and runs the statement.
func (pq *PreparedQuery) ExecuteNamed(args map[string]any) (*Result, error) {
	return pq.run(pq.namedLookup(args), false)
}

// Explain binds positional arguments and returns the plan the engine
// would execute, without running it.
func (pq *PreparedQuery) Explain(args ...any) (string, error) {
	res, err := pq.run(pq.positionalLookup(args), true)
	if err != nil {
		return "", err
	}
	return res.Plan, nil
}

// ExplainNamed is Explain with named arguments.
func (pq *PreparedQuery) ExplainNamed(args map[string]any) (string, error) {
	res, err := pq.run(pq.namedLookup(args), true)
	if err != nil {
		return "", err
	}
	return res.Plan, nil
}

func (pq *PreparedQuery) positionalLookup(args []any) func(ParamRef) (any, error) {
	return func(p ParamRef) (any, error) {
		if p.Name != "" {
			return nil, fmt.Errorf("query: statement uses named parameters; call ExecuteNamed")
		}
		if p.Idx < 0 || p.Idx >= len(args) {
			return nil, fmt.Errorf("query: missing argument for parameter %d (got %d args)", p.Idx+1, len(args))
		}
		return args[p.Idx], nil
	}
}

func (pq *PreparedQuery) namedLookup(args map[string]any) func(ParamRef) (any, error) {
	return func(p ParamRef) (any, error) {
		if p.Name == "" {
			return nil, fmt.Errorf("query: statement uses positional parameters; call Execute")
		}
		v, ok := args[p.Name]
		if !ok {
			return nil, fmt.Errorf("query: missing argument for parameter :%s", p.Name)
		}
		return v, nil
	}
}

// run binds, plans (or reuses a cached decision) and executes.
func (pq *PreparedQuery) run(lookup func(ParamRef) (any, error), explain bool) (*Result, error) {
	if pq.mut != nil {
		return pq.runMutation(lookup, explain)
	}
	q, err := bindQuery(pq.tmpl, lookup)
	if err != nil {
		return nil, err
	}
	q.Explain = q.Explain || explain

	// One read of the batch-size knob covers both the decision key and
	// the decision itself (see decideWith).
	batchSize := pq.eng.batchConfig()
	key := pq.eng.decisionKey(q, batchSize)
	pq.mu.Lock()
	d, reused := pq.decisions[key]
	pq.mu.Unlock()
	if !reused {
		if d, err = pq.eng.decideWith(q, batchSize); err != nil {
			return nil, err
		}
		pq.mu.Lock()
		if len(pq.decisions) >= maxDecisionCacheEntries {
			pq.decisions = make(map[string]*planDecision)
		}
		pq.decisions[key] = d
		pq.mu.Unlock()
	}

	res, err := pq.eng.runDecided(q, d)
	if err != nil {
		return nil, err
	}
	res.Stats.PlanCacheHit = reused
	pq.mu.Lock()
	pq.stats.Executions++
	if reused {
		pq.stats.PlanReuses++
	} else {
		pq.stats.Plans++
	}
	pq.mu.Unlock()
	return res, nil
}

// runMutation binds a DML template and executes it. Unlike SELECT there
// is no decision cache: the read phase of DELETE/UPDATE re-plans
// against the statistics current at execution (the relation is mutating
// under this very statement, so memoised decisions would go stale
// immediately).
func (pq *PreparedQuery) runMutation(lookup func(ParamRef) (any, error), explain bool) (*Result, error) {
	m, err := bindMutation(pq.mut, lookup)
	if err != nil {
		return nil, err
	}
	m.Explain = m.Explain || explain
	res, err := pq.eng.ExecuteMutation(m)
	if err != nil {
		return nil, err
	}
	pq.mu.Lock()
	pq.stats.Executions++
	if m.Kind != MutInsert {
		// Only DELETE/UPDATE run the cost-based planner (for their read
		// phase); INSERT performs no planning, so it must not inflate
		// the Plans counter that signals decision-cache misses.
		pq.stats.Plans++
	}
	pq.mu.Unlock()
	return res, nil
}

// decisionKey summarises every bind-dependent input to decide():
// catalog statistics, shard topology, rule-set registry, parallel
// configuration, the vectorized block size, the LIMIT-without-ORDER
// early-exit flag, and each similarity radius in predicate order. Two
// bindings with equal keys provably take the same planner choices, so
// the decision is reusable.
func (e *Engine) decisionKey(q *Query, batchSize int) string {
	workers, minRows := e.parallelConfig()
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%d|%d|%d|%d|%t|%d|%s",
		e.catalog.StatsVersion(), e.rulesetVersion(), workers, minRows, batchSize,
		metric.Version(), q.Limit > 0 && q.Order == OrderNone, q.Order, e.catalog.ShardSignature())
	appendRadii(&b, q.Where)
	return b.String()
}

// appendRadii walks the predicate in deterministic order, recording the
// cost-relevant shape of each similarity conjunct.
func appendRadii(b *strings.Builder, ex Expr) {
	switch ex := ex.(type) {
	case AndExpr:
		appendRadii(b, ex.L)
		appendRadii(b, ex.R)
	case OrExpr:
		appendRadii(b, ex.L)
		appendRadii(b, ex.R)
	case NotExpr:
		appendRadii(b, ex.E)
	case SimExpr:
		fmt.Fprintf(b, "|s:%g:%s:%t:%t", ex.Radius, ex.RuleSet, ex.Target.IsLit, ex.Target.IsVec)
	case NearestExpr:
		fmt.Fprintf(b, "|n:%s:%t", ex.RuleSet, ex.Target.IsVec)
	}
}

// ------------------------------------------------------------- binding

// hasUnboundParams reports whether any parameter slot is still open.
func hasUnboundParams(q *Query) bool {
	if q.LimitParam != nil || len(q.Params) > 0 {
		return true
	}
	return exprHasParams(q.Where)
}

func exprHasParams(ex Expr) bool {
	switch ex := ex.(type) {
	case AndExpr:
		return exprHasParams(ex.L) || exprHasParams(ex.R)
	case OrExpr:
		return exprHasParams(ex.L) || exprHasParams(ex.R)
	case NotExpr:
		return exprHasParams(ex.E)
	case CmpExpr:
		return ex.L.Param != nil || ex.R.Param != nil
	case SimExpr:
		return ex.Target.Param != nil || ex.RadiusParam != nil
	case NearestExpr:
		return ex.Target.Param != nil
	}
	return false
}

// bindQuery substitutes every parameter of the template, returning a
// fresh, fully-bound Query. The template is never mutated.
func bindQuery(tmpl *Query, lookup func(ParamRef) (any, error)) (*Query, error) {
	q := *tmpl
	q.Params = nil
	if tmpl.Where != nil {
		w, err := bindExpr(tmpl.Where, lookup)
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if tmpl.LimitParam != nil {
		v, err := lookup(*tmpl.LimitParam)
		if err != nil {
			return nil, err
		}
		n, err := paramInt(v)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("query: bad LIMIT argument %v", v)
		}
		q.Limit, q.LimitParam = n, nil
	}
	return &q, nil
}

// bindExpr rebuilds the predicate tree with parameters substituted.
func bindExpr(ex Expr, lookup func(ParamRef) (any, error)) (Expr, error) {
	switch ex := ex.(type) {
	case AndExpr:
		l, err := bindExpr(ex.L, lookup)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(ex.R, lookup)
		if err != nil {
			return nil, err
		}
		return AndExpr{L: l, R: r}, nil
	case OrExpr:
		l, err := bindExpr(ex.L, lookup)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(ex.R, lookup)
		if err != nil {
			return nil, err
		}
		return OrExpr{L: l, R: r}, nil
	case NotExpr:
		e, err := bindExpr(ex.E, lookup)
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	case CmpExpr:
		l, err := bindOperand(ex.L, lookup)
		if err != nil {
			return nil, err
		}
		r, err := bindOperand(ex.R, lookup)
		if err != nil {
			return nil, err
		}
		return CmpExpr{L: l, R: r, Neq: ex.Neq}, nil
	case SimExpr:
		out := ex
		t, err := bindOperand(ex.Target, lookup)
		if err != nil {
			return nil, err
		}
		if t, err = coerceVecTarget(ex.Field, t); err != nil {
			return nil, err
		}
		out.Target = t
		if ex.RadiusParam != nil {
			v, err := lookup(*ex.RadiusParam)
			if err != nil {
				return nil, err
			}
			r, err := paramFloat(v)
			if err != nil || r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return nil, fmt.Errorf("query: bad WITHIN argument %v", v)
			}
			out.Radius, out.RadiusParam = r, nil
		}
		return out, nil
	case NearestExpr:
		out := ex
		t, err := bindOperand(ex.Target, lookup)
		if err != nil {
			return nil, err
		}
		if t, err = coerceVecTarget(ex.Field, t); err != nil {
			return nil, err
		}
		out.Target = t
		return out, nil
	}
	return ex, nil
}

// coerceVecTarget re-parses a string bound against the vec column as a
// vector literal — clients pass vectors through bind parameters in
// their canonical text form ("[0.1, -2]", see metric.Format), which
// round-trips each float32 component bit-exactly.
func coerceVecTarget(f FieldRef, o Operand) (Operand, error) {
	if f.Name != "vec" || !o.IsLit {
		return o, nil
	}
	v, err := metric.Parse(o.Lit)
	if err != nil {
		return Operand{}, fmt.Errorf("query: bad vector argument: %w", err)
	}
	return Operand{Vec: v, IsVec: true}, nil
}

// bindMutation substitutes every parameter of a DML template, returning
// a fresh, fully-bound Mutation. The template is never mutated.
func bindMutation(tmpl *Mutation, lookup func(ParamRef) (any, error)) (*Mutation, error) {
	m := *tmpl
	m.Params = nil
	if tmpl.Where != nil {
		w, err := bindExpr(tmpl.Where, lookup)
		if err != nil {
			return nil, err
		}
		m.Where = w
	}
	if len(tmpl.Rows) > 0 {
		m.Rows = make([][]Operand, len(tmpl.Rows))
		for i, row := range tmpl.Rows {
			m.Rows[i] = make([]Operand, len(row))
			for j, v := range row {
				b, err := bindOperand(v, lookup)
				if err != nil {
					return nil, err
				}
				m.Rows[i][j] = b
			}
		}
	}
	if len(tmpl.Set) > 0 {
		m.Set = make([]SetClause, len(tmpl.Set))
		for i, sc := range tmpl.Set {
			b, err := bindOperand(sc.Value, lookup)
			if err != nil {
				return nil, err
			}
			m.Set[i] = SetClause{Name: sc.Name, Value: b}
		}
	}
	return &m, nil
}

func bindOperand(o Operand, lookup func(ParamRef) (any, error)) (Operand, error) {
	if o.Param == nil {
		return o, nil
	}
	v, err := lookup(*o.Param)
	if err != nil {
		return Operand{}, err
	}
	s, err := paramString(v)
	if err != nil {
		return Operand{}, fmt.Errorf("query: parameter %s: %w", o.Param, err)
	}
	return Operand{Lit: s, IsLit: true}, nil
}

// ------------------------------------------------------- value coercion

// paramString coerces an argument to a sequence value. Numbers are
// accepted (JSON clients send them) and formatted the way dist values
// render.
func paramString(v any) (string, error) {
	switch v := v.(type) {
	case string:
		return v, nil
	case []byte:
		return string(v), nil
	case float64:
		return formatDist(v), nil
	case float32:
		return formatDist(float64(v)), nil
	case int:
		return strconv.Itoa(v), nil
	case int64:
		return strconv.FormatInt(v, 10), nil
	default:
		return "", fmt.Errorf("cannot bind %T as a string", v)
	}
}

// paramFloat coerces an argument to a radius.
func paramFloat(v any) (float64, error) {
	switch v := v.(type) {
	case float64:
		return v, nil
	case float32:
		return float64(v), nil
	case int:
		return float64(v), nil
	case int64:
		return float64(v), nil
	case string:
		return strconv.ParseFloat(v, 64)
	default:
		return 0, fmt.Errorf("cannot bind %T as a number", v)
	}
}

// paramInt coerces an argument to a count (LIMIT). Floats are accepted
// when integral — JSON has no integer type.
func paramInt(v any) (int, error) {
	switch v := v.(type) {
	case int:
		return v, nil
	case int64:
		return int(v), nil
	case float64:
		if v != math.Trunc(v) {
			return 0, fmt.Errorf("cannot bind non-integral %v as a count", v)
		}
		return int(v), nil
	case string:
		return strconv.Atoi(v)
	default:
		return 0, fmt.Errorf("cannot bind %T as a count", v)
	}
}
