package query

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/rewrite"
)

func TestParseParameters(t *testing.T) {
	q, err := Parse(`SELECT seq FROM words WHERE seq SIMILAR TO ? WITHIN ? USING unit-edits LIMIT ?`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Params) != 3 {
		t.Fatalf("params = %v, want 3 positional", q.Params)
	}
	for i, p := range q.Params {
		if p.Idx != i || p.Name != "" {
			t.Errorf("param %d = %+v, want positional index %d", i, p, i)
		}
	}
	if q.LimitParam == nil || q.Limit != 0 {
		t.Errorf("LIMIT parameter not captured: limit=%d param=%v", q.Limit, q.LimitParam)
	}
	sim, ok := q.Where.(SimExpr)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	if sim.Target.Param == nil || sim.RadiusParam == nil {
		t.Errorf("sim params not captured: %+v", sim)
	}

	named, err := Parse(`SELECT seq FROM words WHERE seq SIMILAR TO :target WITHIN :radius USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if len(named.Params) != 2 || named.Params[0].Name != "target" || named.Params[1].Name != "radius" {
		t.Fatalf("named params = %v", named.Params)
	}

	if _, err := Parse(`SELECT seq FROM words WHERE seq SIMILAR TO ? WITHIN :radius USING unit-edits`); err == nil {
		t.Error("mixing positional and named parameters parsed")
	}
	if _, err := Parse(`SELECT seq FROM words WHERE seq SIMILAR TO "x" WITHIN : USING unit-edits`); err == nil {
		t.Error("bare ':' lexed")
	}
}

func TestExecuteRejectsUnboundParameters(t *testing.T) {
	e := testEngine(t)
	_, err := e.Execute(`SELECT seq FROM words WHERE seq SIMILAR TO ? WITHIN 1 USING unit-edits`)
	if err == nil || !strings.Contains(err.Error(), "Prepare") {
		t.Errorf("Execute on parameterized statement: err = %v, want prepare hint", err)
	}
}

func TestPreparedPositional(t *testing.T) {
	e := testEngine(t)
	pq, err := e.Prepare(`SELECT seq, dist FROM words WHERE seq SIMILAR TO ? WITHIN ? USING unit-edits ORDER BY dist LIMIT ?`)
	if err != nil {
		t.Fatal(err)
	}
	if n := pq.NumParams(); n != 3 {
		t.Fatalf("NumParams = %d, want 3", n)
	}
	res, err := pq.Execute("color", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e.Execute(`SELECT seq, dist FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits ORDER BY dist LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, direct.Rows) {
		t.Errorf("prepared rows %v != direct rows %v", res.Rows, direct.Rows)
	}

	// JSON-style float arguments must bind too.
	res2, err := pq.Execute("color", 1.0, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Rows, res.Rows) {
		t.Errorf("float-bound rows differ: %v vs %v", res2.Rows, res.Rows)
	}

	if _, err := pq.Execute("color"); err == nil {
		t.Error("missing arguments accepted")
	}
	if _, err := pq.Execute("color", -1, 10); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := pq.Execute("color", 1, -2); err == nil {
		t.Error("negative limit accepted")
	}
	if _, err := pq.ExecuteNamed(map[string]any{"x": 1}); err == nil {
		t.Error("ExecuteNamed on positional statement accepted")
	}
}

func TestPreparedNamed(t *testing.T) {
	e := testEngine(t)
	pq, err := e.Prepare(`SELECT seq FROM words WHERE seq SIMILAR TO :target WITHIN :radius USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if names := pq.ParamNames(); !reflect.DeepEqual(names, []string{"target", "radius"}) {
		t.Fatalf("ParamNames = %v", names)
	}
	res, err := pq.ExecuteNamed(map[string]any{"target": "color", "radius": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("no rows")
	}
	if _, err := pq.ExecuteNamed(map[string]any{"target": "color"}); err == nil {
		t.Error("missing named argument accepted")
	}
	if _, err := pq.Execute("color", 1); err == nil {
		t.Error("positional Execute on named statement accepted")
	}
}

// TestPreparedSkipsReplanning pins the headline property: re-executing
// with bindings that do not move any access-path choice reuses the
// cached decision (Plans stays at 1), and a binding that does move it
// triggers exactly one re-plan.
func TestPreparedSkipsReplanning(t *testing.T) {
	e := bigEngine(t)
	pq, err := e.Prepare(`SELECT seq FROM dict WHERE seq SIMILAR TO ? WITHIN ? USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := pq.Execute(fmt.Sprintf("word%02d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	st := pq.Stats()
	if st.Executions != 5 || st.Plans != 1 || st.PlanReuses != 4 {
		t.Errorf("after 5 same-radius executions: %+v, want 1 plan / 4 reuses", st)
	}

	// A different radius is a different cost regime: one more plan.
	if _, err := pq.Execute("wordxx", 2); err != nil {
		t.Fatal(err)
	}
	if st := pq.Stats(); st.Plans != 2 {
		t.Errorf("after radius change: %+v, want 2 plans", st)
	}

	// Catalog mutation invalidates decisions (stats version changed).
	rel, _ := e.Catalog().Get("dict")
	rel.Insert("freshword", nil)
	if _, err := pq.Execute("wordyy", 1); err != nil {
		t.Fatal(err)
	}
	if st := pq.Stats(); st.Plans != 3 {
		t.Errorf("after catalog mutation: %+v, want 3 plans", st)
	}
}

// TestPreparedConcurrent exercises N goroutines sharing one
// PreparedQuery (run under -race in CI).
func TestPreparedConcurrent(t *testing.T) {
	e := bigEngine(t)
	pq, err := e.Prepare(`SELECT seq, dist FROM dict WHERE seq SIMILAR TO ? WITHIN ? USING unit-edits ORDER BY dist`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pq.Execute("abcdef", 2)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := pq.Execute("abcdef", 2)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Rows, want.Rows) {
					errs <- fmt.Errorf("rows diverged: %v vs %v", res.Rows, want.Rows)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := pq.Stats(); st.Executions != goroutines*iters+1 {
		t.Errorf("executions = %d, want %d", st.Executions, goroutines*iters+1)
	}
}

// TestPlanCacheHitSkipsParse: the second Execute of the same statement
// must be served from the plan cache, observable through Result.Stats
// and Engine.CacheStats, and must return identical rows.
func TestPlanCacheHitSkipsParse(t *testing.T) {
	e := testEngine(t)
	const stmt = `SELECT seq FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits`
	first, err := e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.PlanCacheHit {
		t.Error("first execution reported a cache hit")
	}
	// Whitespace differences normalize to the same key.
	second, err := e.Execute("SELECT seq  FROM words\n WHERE seq SIMILAR TO \"color\" WITHIN 1 USING unit-edits")
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.PlanCacheHit {
		t.Error("second execution missed the plan cache")
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Errorf("cached rows differ: %v vs %v", first.Rows, second.Rows)
	}
	cs := e.CacheStats()
	if cs.Hits != 1 || cs.Misses < 1 || cs.Entries < 1 {
		t.Errorf("CacheStats = %+v, want 1 hit and >=1 miss/entry", cs)
	}
}

// TestPlanCacheLiteralWhitespaceDistinct: normalization must never
// collapse whitespace inside string literals — two statements that
// differ only there are different queries and must not share a cache
// entry.
func TestPlanCacheLiteralWhitespaceDistinct(t *testing.T) {
	e := testEngine(t)
	rel, _ := e.Catalog().Get("words")
	rel.Insert("a b", nil)
	rel.Insert("a  b", nil)
	one, err := e.Execute(`SELECT seq FROM words WHERE seq = "a b"`)
	if err != nil {
		t.Fatal(err)
	}
	two, err := e.Execute(`SELECT seq FROM words WHERE seq = "a  b"`)
	if err != nil {
		t.Fatal(err)
	}
	if two.Stats.PlanCacheHit {
		t.Error("statements differing inside a literal shared a cache entry")
	}
	if len(one.Rows) != 1 || one.Rows[0][0] != "a b" {
		t.Errorf("single-space query rows = %v", one.Rows)
	}
	if len(two.Rows) != 1 || two.Rows[0][0] != "a  b" {
		t.Errorf("double-space query rows = %v", two.Rows)
	}
	// Escaped quotes inside literals must not derail the scanner.
	esc, err := e.Execute("SELECT seq FROM words WHERE seq = \"a\\\"  b\"")
	if err != nil {
		t.Fatal(err)
	}
	if len(esc.Rows) != 0 {
		t.Errorf("escaped-quote query rows = %v, want none", esc.Rows)
	}
}

// TestPlanCacheHitErrorNotRetried: once a cached plan builds, a runtime
// error is final — the engine must not fall back and execute the whole
// statement a second time.
func TestPlanCacheHitErrorNotRetried(t *testing.T) {
	e := testEngine(t)
	// dist is unavailable without a similarity predicate, so this errors
	// during execution (not planning) on the first matching row.
	const stmt = `SELECT dist FROM words WHERE lang = "en"`
	if _, err := e.Execute(stmt); err == nil {
		t.Fatal("statement unexpectedly succeeded")
	}
	before, err := e.Execute(`SELECT seq FROM words LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	_ = before
	base := e.CacheStats()
	if _, err := e.Execute(stmt); err == nil {
		t.Fatal("cached statement unexpectedly succeeded")
	}
	after := e.CacheStats()
	if hits := after.Hits - base.Hits; hits != 1 {
		t.Errorf("cache hits for erroring statement = %d, want exactly 1 (no fall-through retry)", hits)
	}
	if misses := after.Misses - base.Misses; misses != 0 {
		t.Errorf("cache misses after hit = %d, want 0 (error must not re-enter the uncached path)", misses)
	}
}

// TestPlanCacheInvalidation: mutating the catalog or registering a rule
// set must change the cache epoch so stale plans are never served.
func TestPlanCacheInvalidation(t *testing.T) {
	e := testEngine(t)
	const stmt = `SELECT seq FROM words WHERE seq SIMILAR TO "zzzap" WITHIN 0 USING unit-edits`
	if _, err := e.Execute(stmt); err != nil {
		t.Fatal(err)
	}
	rel, _ := e.Catalog().Get("words")
	rel.Insert("zzzap", nil)
	res, err := e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHit {
		t.Error("cache hit across a catalog mutation")
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v, want the freshly inserted tuple", res.Rows)
	}

	if _, err := e.Execute(stmt); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterRuleSet(rewrite.UnitEdits("xyz")); err != nil {
		t.Fatal(err)
	}
	res, err = e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHit {
		t.Error("cache hit across a rule-set registration")
	}
}

// TestPlanCacheDisabled: SetPlanCacheSize(0) must turn caching off.
func TestPlanCacheDisabled(t *testing.T) {
	e := testEngine(t)
	e.SetPlanCacheSize(0)
	const stmt = `SELECT seq FROM words`
	for i := 0; i < 3; i++ {
		res, err := e.Execute(stmt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.PlanCacheHit {
			t.Error("cache hit with caching disabled")
		}
	}
	if cs := e.CacheStats(); cs != (CacheStats{}) {
		t.Errorf("CacheStats with caching disabled = %+v, want zero", cs)
	}
}

// TestPlanCacheLRUEviction: a capacity-1 cache must evict.
func TestPlanCacheLRUEviction(t *testing.T) {
	c := newPlanCache(1)
	q := &Query{}
	d := &planDecision{}
	// Find two keys in the same shard so the per-shard capacity bites.
	keyA := "a"
	keyB := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("b%d", i)
		if c.shard(k) == c.shard(keyA) {
			keyB = k
			break
		}
	}
	c.put(keyA, q, d)
	c.put(keyB, q, d)
	if _, ok := c.get(keyA); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.get(keyB); !ok {
		t.Error("fresh entry evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

// TestSetParallelismClamps is the regression test for non-positive
// worker counts: they must clamp to 1, not be stored verbatim.
func TestSetParallelismClamps(t *testing.T) {
	e := testEngine(t)
	for _, n := range []int{0, -1, -100} {
		e.SetParallelism(n)
		if w, _ := e.parallelConfig(); w != 1 {
			t.Errorf("SetParallelism(%d) stored %d, want clamp to 1", n, w)
		}
	}
	e.SetParallelism(4)
	if w, _ := e.parallelConfig(); w != 4 {
		t.Errorf("SetParallelism(4) stored %d", w)
	}
}

// TestPreparedExplain: the prepared path supports EXPLAIN with bound
// values.
func TestPreparedExplain(t *testing.T) {
	e := testEngine(t)
	pq, err := e.Prepare(`SELECT seq FROM words WHERE seq SIMILAR TO ? WITHIN ? USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pq.Explain("color", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "IndexRange") {
		t.Errorf("plan = %q, want IndexRange", plan)
	}
}

// TestPrepareValidatesEagerly: unknown relations and rule sets fail at
// Prepare, not at first execution.
func TestPrepareValidatesEagerly(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Prepare(`SELECT seq FROM nosuch WHERE seq SIMILAR TO ? WITHIN 1 USING unit-edits`); err == nil {
		t.Error("unknown relation prepared")
	}
	if _, err := e.Prepare(`SELECT seq FROM words WHERE seq SIMILAR TO ? WITHIN 1 USING nosuch`); err == nil {
		t.Error("unknown rule set prepared")
	}
}

// TestPreparedJoinAndNearest: parameters work beyond the single-table
// range path.
func TestPreparedJoinAndNearest(t *testing.T) {
	e := testEngine(t)
	join, err := e.Prepare(`SELECT a.seq, b.seq FROM words a, words b WHERE a.seq SIMILAR TO b.seq WITHIN ? USING unit-edits AND a.id != b.id`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := join.Execute(1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e.Execute(`SELECT a.seq, b.seq FROM words a, words b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING unit-edits AND a.id != b.id`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, direct.Rows) {
		t.Errorf("prepared join rows differ: %v vs %v", res.Rows, direct.Rows)
	}

	near, err := e.Prepare(`SELECT seq FROM words WHERE seq NEAREST 3 TO ? USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	nres, err := near.Execute("color")
	if err != nil {
		t.Fatal(err)
	}
	if len(nres.Rows) != 3 {
		t.Errorf("nearest rows = %d, want 3", len(nres.Rows))
	}
}

// TestPreparedDecisionCacheBounded: an unbounded stream of distinct
// radii must not grow the decision cache past its cap.
func TestPreparedDecisionCacheBounded(t *testing.T) {
	e := testEngine(t)
	pq, err := e.Prepare(`SELECT seq FROM words WHERE seq SIMILAR TO ? WITHIN ? USING cheap_vowels`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*maxDecisionCacheEntries; i++ {
		if _, err := pq.Execute("color", float64(i)/10); err != nil {
			t.Fatal(err)
		}
	}
	pq.mu.Lock()
	n := len(pq.decisions)
	pq.mu.Unlock()
	if n > maxDecisionCacheEntries {
		t.Errorf("decision cache grew to %d entries, cap is %d", n, maxDecisionCacheEntries)
	}
}

// TestConcurrentExecuteSharedEngine: the Execute plan-cache path under
// concurrency (run with -race); results must match the serial answer.
func TestConcurrentExecuteSharedEngine(t *testing.T) {
	e := bigEngine(t)
	const stmt = `SELECT seq, dist FROM dict WHERE seq SIMILAR TO "abcdef" WITHIN 2 USING unit-edits ORDER BY dist`
	want, err := e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := e.Execute(stmt)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Rows, want.Rows) {
					errs <- fmt.Errorf("rows diverged under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cs := e.CacheStats(); cs.Hits == 0 {
		t.Error("no cache hits across 80 identical executions")
	}
}

// TestBindQueryDoesNotMutateTemplate: binding must leave the template
// reusable.
func TestBindQueryDoesNotMutateTemplate(t *testing.T) {
	e := testEngine(t)
	pq, err := e.Prepare(`SELECT seq FROM words WHERE seq SIMILAR TO ? WITHIN ? USING unit-edits LIMIT ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Execute("color", 1, 2); err != nil {
		t.Fatal(err)
	}
	sim := pq.tmpl.Where.(SimExpr)
	if sim.Target.Param == nil || sim.RadiusParam == nil || pq.tmpl.LimitParam == nil {
		t.Error("template parameters were overwritten by binding")
	}
	// And a second execution with different values sees them.
	res, err := pq.Execute("velour", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "velour" {
		t.Errorf("rebind rows = %v, want velour only", res.Rows)
	}
}
