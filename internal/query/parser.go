package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokSemi {
		p.next()
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input starting with %s", p.cur().kind)
	}
	if p.named && p.npos > 0 {
		return nil, fmt.Errorf("query: cannot mix positional '?' and named ':name' parameters (in %q)", src)
	}
	q.Params = p.params
	return q, nil
}

type qparser struct {
	toks []token
	pos  int
	src  string

	params []ParamRef // parameters in order of appearance
	npos   int        // count of positional '?' parameters
	named  bool       // a ':name' parameter was seen
}

// atParam reports whether the current token starts a bind parameter.
func (p *qparser) atParam() bool {
	k := p.cur().kind
	return k == tokQMark || k == tokNamedParam
}

// takeParam consumes a parameter token and registers the reference.
func (p *qparser) takeParam() *ParamRef {
	t := p.next()
	ref := ParamRef{Idx: -1}
	if t.kind == tokNamedParam {
		ref.Name = t.text
		p.named = true
	} else {
		ref.Idx = p.npos
		p.npos++
	}
	p.params = append(p.params, ref)
	return &ref
}

func (p *qparser) cur() token  { return p.toks[p.pos] }
func (p *qparser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *qparser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("query: %s (at offset %d in %q)", fmt.Sprintf(format, args...), p.cur().pos, p.src)
}

// keyword matches a case-insensitive keyword identifier.
func (p *qparser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *qparser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s, got %q", strings.ToUpper(kw), p.cur().text)
	}
	return nil
}

func (p *qparser) parseQuery() (*Query, error) {
	q := &Query{}
	if p.keyword("explain") {
		q.Explain = true
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	// Projection.
	if p.cur().kind == tokStar {
		p.next()
	} else {
		for {
			col, err := p.parseColumn()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, col)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected relation name, got %s", p.cur().kind)
		}
		name := p.next().text
		ref := TableRef{Name: name, Alias: name}
		if p.cur().kind == tokIdent && !isKeyword(p.cur().text) {
			ref.Alias = p.next().text
		}
		q.From = append(q.From, ref)
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	if p.keyword("where") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != tokIdent || !strings.EqualFold(t.text, "dist") {
			return nil, p.errf("ORDER BY supports only dist")
		}
		p.next()
		q.Order = OrderAsc
		if p.keyword("desc") {
			q.Order = OrderDesc
		} else {
			p.keyword("asc")
		}
	}
	if p.keyword("limit") {
		if p.atParam() {
			q.LimitParam = p.takeParam()
		} else {
			if p.cur().kind != tokNumber {
				return nil, p.errf("expected limit count")
			}
			n, err := strconv.Atoi(p.next().text)
			if err != nil || n < 0 {
				return nil, p.errf("bad limit")
			}
			q.Limit = n
		}
	}
	return q, nil
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"not": true, "similar": true, "to": true, "within": true, "using": true,
	"pattern": true, "nearest": true, "limit": true, "explain": true,
	"order": true, "by": true, "asc": true, "desc": true,
}

func isKeyword(s string) bool { return keywords[strings.ToLower(s)] }

func (p *qparser) parseColumn() (Column, error) {
	if p.cur().kind != tokIdent {
		return Column{}, p.errf("expected column name, got %s", p.cur().kind)
	}
	first := p.next().text
	if p.cur().kind == tokDot {
		p.next()
		if p.cur().kind != tokIdent {
			return Column{}, p.errf("expected column after '.'")
		}
		return Column{Table: first, Name: p.next().text}, nil
	}
	return Column{Name: first}, nil
}

func (p *qparser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *qparser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *qparser) parseUnary() (Expr, error) {
	if p.keyword("not") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	if p.cur().kind == tokLParen {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokRParen {
			return nil, p.errf("missing ')'")
		}
		p.next()
		return e, nil
	}
	return p.parsePredicate()
}

func (p *qparser) parsePredicate() (Expr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	switch {
	case p.keyword("similar"):
		if err := p.expectKeyword("to"); err != nil {
			return nil, err
		}
		if left.IsLit {
			return nil, p.errf("SIMILAR TO requires a field on the left")
		}
		sim := SimExpr{Field: left.Field}
		if p.keyword("pattern") {
			sim.Pattern = true
			if p.cur().kind != tokString {
				return nil, p.errf("PATTERN requires a string literal")
			}
			sim.Target = Operand{Lit: p.next().text, IsLit: true}
		} else {
			target, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			sim.Target = target
		}
		if err := p.expectKeyword("within"); err != nil {
			return nil, err
		}
		if p.atParam() {
			sim.RadiusParam = p.takeParam()
		} else {
			if p.cur().kind != tokNumber {
				return nil, p.errf("WITHIN requires a number")
			}
			radius, err := strconv.ParseFloat(p.next().text, 64)
			if err != nil || radius < 0 {
				return nil, p.errf("bad radius")
			}
			sim.Radius = radius
		}
		if err := p.expectKeyword("using"); err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("USING requires a rule-set name")
		}
		sim.RuleSet = p.next().text
		return sim, nil
	case p.keyword("nearest"):
		if left.IsLit {
			return nil, p.errf("NEAREST requires a field on the left")
		}
		if p.cur().kind != tokNumber {
			return nil, p.errf("NEAREST requires a count")
		}
		k, err := strconv.Atoi(p.next().text)
		if err != nil || k <= 0 {
			return nil, p.errf("bad NEAREST count")
		}
		if err := p.expectKeyword("to"); err != nil {
			return nil, err
		}
		target, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("using"); err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("USING requires a rule-set name")
		}
		return NearestExpr{Field: left.Field, Target: target, K: k, RuleSet: p.next().text}, nil
	case p.cur().kind == tokEq || p.cur().kind == tokNeq:
		neq := p.next().kind == tokNeq
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return CmpExpr{L: left, R: right, Neq: neq}, nil
	default:
		return nil, p.errf("expected predicate operator, got %q", p.cur().text)
	}
}

func (p *qparser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokQMark, tokNamedParam:
		return Operand{Param: p.takeParam()}, nil
	case tokString:
		p.next()
		return Operand{Lit: t.text, IsLit: true}, nil
	case tokIdent:
		if isKeyword(t.text) {
			return Operand{}, p.errf("unexpected keyword %q", t.text)
		}
		p.next()
		if p.cur().kind == tokDot {
			p.next()
			if p.cur().kind != tokIdent {
				return Operand{}, p.errf("expected field after '.'")
			}
			return Operand{Field: FieldRef{Table: t.text, Name: p.next().text}}, nil
		}
		return Operand{Field: FieldRef{Name: t.text}}, nil
	default:
		return Operand{}, p.errf("expected operand, got %s", t.kind)
	}
}
