package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/metric"
)

// Parse parses one SELECT statement. DML statements are rejected here;
// use ParseStatement (Engine.Execute and Engine.Prepare do).
func Parse(src string) (*Query, error) {
	stmt, err := ParseStatement(src)
	if err != nil {
		return nil, err
	}
	q, ok := stmt.(*Query)
	if !ok {
		return nil, fmt.Errorf("query: Parse handles SELECT only; use ParseStatement for %q", src)
	}
	return q, nil
}

// ParseStatement parses one statement of any kind: SELECT, INSERT,
// DELETE or UPDATE, each optionally prefixed with EXPLAIN.
func ParseStatement(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks, src: src}
	lead := p.leadKeyword()
	var stmt Statement
	switch lead {
	case "insert", "delete", "update":
		m, err := p.parseMutation()
		if err != nil {
			return nil, err
		}
		m.Params = p.params
		stmt = m
	default:
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		q.Params = p.params
		stmt = q
	}
	if p.cur().kind == tokSemi {
		p.next()
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input starting with %s", p.cur().kind)
	}
	if p.named && p.npos > 0 {
		return nil, fmt.Errorf("query: cannot mix positional '?' and named ':name' parameters (in %q)", src)
	}
	return stmt, nil
}

// leadKeyword peeks the statement-dispatching keyword, skipping an
// EXPLAIN or EXPLAIN ANALYZE prefix, without consuming anything.
func (p *qparser) leadKeyword() string {
	i := p.pos
	if i < len(p.toks) && p.toks[i].kind == tokIdent && strings.EqualFold(p.toks[i].text, "explain") {
		i++
		if i < len(p.toks) && p.toks[i].kind == tokIdent && strings.EqualFold(p.toks[i].text, "analyze") {
			i++
		}
	}
	if i < len(p.toks) && p.toks[i].kind == tokIdent {
		return strings.ToLower(p.toks[i].text)
	}
	return ""
}

type qparser struct {
	toks []token
	pos  int
	src  string

	params []ParamRef // parameters in order of appearance
	npos   int        // count of positional '?' parameters
	named  bool       // a ':name' parameter was seen
}

// atParam reports whether the current token starts a bind parameter.
func (p *qparser) atParam() bool {
	k := p.cur().kind
	return k == tokQMark || k == tokNamedParam
}

// takeParam consumes a parameter token and registers the reference.
func (p *qparser) takeParam() *ParamRef {
	t := p.next()
	ref := ParamRef{Idx: -1}
	if t.kind == tokNamedParam {
		ref.Name = t.text
		p.named = true
	} else {
		ref.Idx = p.npos
		p.npos++
	}
	p.params = append(p.params, ref)
	return &ref
}

func (p *qparser) cur() token  { return p.toks[p.pos] }
func (p *qparser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *qparser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("query: %s (at offset %d in %q)", fmt.Sprintf(format, args...), p.cur().pos, p.src)
}

// keyword matches a case-insensitive keyword identifier.
func (p *qparser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *qparser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s, got %q", strings.ToUpper(kw), p.cur().text)
	}
	return nil
}

func (p *qparser) parseQuery() (*Query, error) {
	q := &Query{}
	if p.keyword("explain") {
		q.Explain = true
		if p.keyword("analyze") {
			q.Analyze = true
		}
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	// Projection.
	if p.cur().kind == tokStar {
		p.next()
	} else {
		for {
			col, err := p.parseColumn()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, col)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected relation name, got %s", p.cur().kind)
		}
		name := p.next().text
		ref := TableRef{Name: name, Alias: name}
		if p.cur().kind == tokIdent && !isKeyword(p.cur().text) {
			ref.Alias = p.next().text
		}
		q.From = append(q.From, ref)
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	// ON introduces join conditions (typically dist(a.x, b.y) <= k
	// forms); it is sugar for ANDing the condition into WHERE, so the
	// planner sees one predicate space regardless of where the user
	// spelled the join.
	var onExpr Expr
	if p.keyword("on") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		onExpr = e
	}
	if p.keyword("where") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if onExpr != nil {
		if q.Where != nil {
			q.Where = AndExpr{L: onExpr, R: q.Where}
		} else {
			q.Where = onExpr
		}
	}
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != tokIdent || !strings.EqualFold(t.text, "dist") {
			return nil, p.errf("ORDER BY supports only dist")
		}
		p.next()
		q.Order = OrderAsc
		if p.keyword("desc") {
			q.Order = OrderDesc
		} else {
			p.keyword("asc")
		}
	}
	if p.keyword("limit") {
		if p.atParam() {
			q.LimitParam = p.takeParam()
		} else {
			if p.cur().kind != tokNumber {
				return nil, p.errf("expected limit count")
			}
			n, err := strconv.Atoi(p.next().text)
			if err != nil || n < 0 {
				return nil, p.errf("bad limit")
			}
			q.Limit = n
		}
	}
	return q, nil
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"not": true, "similar": true, "to": true, "within": true, "using": true,
	"pattern": true, "nearest": true, "limit": true, "explain": true, "analyze": true,
	"order": true, "by": true, "asc": true, "desc": true, "on": true,
	"insert": true, "into": true, "values": true,
	"delete": true, "update": true, "set": true,
}

func isKeyword(s string) bool { return keywords[strings.ToLower(s)] }

// parseMutation parses one INSERT, DELETE or UPDATE statement.
func (p *qparser) parseMutation() (*Mutation, error) {
	m := &Mutation{}
	if p.keyword("explain") {
		m.Explain = true
		if p.keyword("analyze") {
			// ANALYZE executes the statement; an analyzed DML would commit
			// its writes as a side effect of "explaining" it. Refuse.
			return nil, p.errf("EXPLAIN ANALYZE is not supported for DML statements")
		}
	}
	switch {
	case p.keyword("insert"):
		m.Kind = MutInsert
		if err := p.expectKeyword("into"); err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected relation name, got %s", p.cur().kind)
		}
		m.Table = p.next().text
		if p.cur().kind == tokLParen {
			p.next()
			for {
				if p.cur().kind != tokIdent {
					return nil, p.errf("expected column name, got %s", p.cur().kind)
				}
				m.Columns = append(m.Columns, p.next().text)
				if p.cur().kind != tokComma {
					break
				}
				p.next()
			}
			if p.cur().kind != tokRParen {
				return nil, p.errf("missing ')' after column list")
			}
			p.next()
			seen := map[string]bool{}
			hasSeq, hasVec := false, false
			for _, c := range m.Columns {
				if seen[c] {
					return nil, p.errf("duplicate column %q", c)
				}
				seen[c] = true
				if c == "seq" {
					hasSeq = true
				}
				if c == "vec" {
					hasVec = true
				}
				if c == "id" || c == "dist" {
					return nil, p.errf("column %q cannot be inserted", c)
				}
			}
			if !hasSeq && !hasVec {
				return nil, p.errf("INSERT column list must include seq or vec")
			}
		} else {
			m.Columns = []string{"seq"}
		}
		if err := p.expectKeyword("values"); err != nil {
			return nil, err
		}
		for {
			row, err := p.parseValueRow(len(m.Columns))
			if err != nil {
				return nil, err
			}
			m.Rows = append(m.Rows, row)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	case p.keyword("delete"):
		m.Kind = MutDelete
		if err := p.expectKeyword("from"); err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected relation name, got %s", p.cur().kind)
		}
		m.Table = p.next().text
		if p.keyword("where") {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			m.Where = e
		}
	case p.keyword("update"):
		m.Kind = MutUpdate
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected relation name, got %s", p.cur().kind)
		}
		m.Table = p.next().text
		if err := p.expectKeyword("set"); err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		for {
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected column name, got %s", p.cur().kind)
			}
			name := p.next().text
			if name == "id" || name == "dist" {
				return nil, p.errf("column %q cannot be assigned", name)
			}
			if seen[name] {
				return nil, p.errf("duplicate SET column %q", name)
			}
			seen[name] = true
			if p.cur().kind != tokEq {
				return nil, p.errf("expected '=' after SET column")
			}
			p.next()
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			m.Set = append(m.Set, SetClause{Name: name, Value: v})
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
		if p.keyword("where") {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			m.Where = e
		}
	default:
		return nil, p.errf("expected INSERT, DELETE or UPDATE, got %q", p.cur().text)
	}
	return m, nil
}

// parseValueRow parses one parenthesised VALUES tuple of exactly want
// values.
func (p *qparser) parseValueRow(want int) ([]Operand, error) {
	if p.cur().kind != tokLParen {
		return nil, p.errf("expected '(' to open a VALUES row")
	}
	p.next()
	var row []Operand
	for {
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		row = append(row, v)
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	if p.cur().kind != tokRParen {
		return nil, p.errf("missing ')' after VALUES row")
	}
	p.next()
	if len(row) != want {
		return nil, p.errf("VALUES row has %d values, want %d", len(row), want)
	}
	return row, nil
}

// parseValue parses one DML value: a string, number or vector literal,
// or a bind parameter. Field references are not values — DML assigns
// constants.
func (p *qparser) parseValue() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokString, tokNumber:
		p.next()
		return Operand{Lit: t.text, IsLit: true}, nil
	case tokLBracket:
		return p.parseVecLiteral()
	case tokQMark, tokNamedParam:
		return Operand{Param: p.takeParam()}, nil
	default:
		return Operand{}, p.errf("expected a literal or parameter, got %s", t.kind)
	}
}

// parseVecLiteral parses a bracketed vector literal: [n, n, ...]. Every
// component must be a finite number; an empty vector [] is rejected —
// it denotes nothing the metrics can measure.
func (p *qparser) parseVecLiteral() (Operand, error) {
	p.next() // consume '['
	var vec metric.Vector
	for {
		t := p.cur()
		if t.kind != tokNumber {
			return Operand{}, p.errf("expected a number in vector literal, got %s", t.kind)
		}
		f, err := strconv.ParseFloat(p.next().text, 32)
		if err != nil {
			return Operand{}, p.errf("bad vector component %q", t.text)
		}
		vec = append(vec, float32(f))
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.cur().kind != tokRBracket {
		return Operand{}, p.errf("missing ']' after vector literal")
	}
	p.next()
	if !metric.Valid(vec) {
		return Operand{}, p.errf("vector literal must be non-empty with finite components")
	}
	return Operand{Vec: vec, IsVec: true}, nil
}

func (p *qparser) parseColumn() (Column, error) {
	if p.cur().kind != tokIdent {
		return Column{}, p.errf("expected column name, got %s", p.cur().kind)
	}
	first := p.next().text
	if p.cur().kind == tokDot {
		p.next()
		if p.cur().kind != tokIdent {
			return Column{}, p.errf("expected column after '.'")
		}
		return Column{Table: first, Name: p.next().text}, nil
	}
	return Column{Name: first}, nil
}

func (p *qparser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *qparser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *qparser) parseUnary() (Expr, error) {
	if p.keyword("not") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	if p.cur().kind == tokLParen {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokRParen {
			return nil, p.errf("missing ')'")
		}
		p.next()
		return e, nil
	}
	return p.parsePredicate()
}

func (p *qparser) parsePredicate() (Expr, error) {
	// dist(x, y) <= k USING name — the distance-predicate form. It
	// desugars to the same SimExpr as `x SIMILAR TO y WITHIN k USING
	// name`, so the two spellings share planning, caching and execution.
	// "dist" is not reserved: only the immediate '(' selects this form,
	// so `ORDER BY dist` and a bare dist column keep working.
	if t := p.cur(); t.kind == tokIdent && strings.EqualFold(t.text, "dist") && p.toks[p.pos+1].kind == tokLParen {
		return p.parseDistPredicate()
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	switch {
	case p.keyword("similar"):
		if err := p.expectKeyword("to"); err != nil {
			return nil, err
		}
		if left.IsLit {
			return nil, p.errf("SIMILAR TO requires a field on the left")
		}
		sim := SimExpr{Field: left.Field}
		if p.keyword("pattern") {
			sim.Pattern = true
			if p.cur().kind != tokString {
				return nil, p.errf("PATTERN requires a string literal")
			}
			sim.Target = Operand{Lit: p.next().text, IsLit: true}
		} else {
			target, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			sim.Target = target
		}
		if err := p.expectKeyword("within"); err != nil {
			return nil, err
		}
		if p.atParam() {
			sim.RadiusParam = p.takeParam()
		} else {
			if p.cur().kind != tokNumber {
				return nil, p.errf("WITHIN requires a number")
			}
			radius, err := strconv.ParseFloat(p.next().text, 64)
			if err != nil || radius < 0 {
				return nil, p.errf("bad radius")
			}
			sim.Radius = radius
		}
		if err := p.expectKeyword("using"); err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("USING requires a rule-set name")
		}
		sim.RuleSet = p.next().text
		return sim, nil
	case p.keyword("nearest"):
		if left.IsLit {
			return nil, p.errf("NEAREST requires a field on the left")
		}
		if p.cur().kind != tokNumber {
			return nil, p.errf("NEAREST requires a count")
		}
		k, err := strconv.Atoi(p.next().text)
		if err != nil || k <= 0 {
			return nil, p.errf("bad NEAREST count")
		}
		if err := p.expectKeyword("to"); err != nil {
			return nil, err
		}
		target, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("using"); err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("USING requires a rule-set name")
		}
		return NearestExpr{Field: left.Field, Target: target, K: k, RuleSet: p.next().text}, nil
	case p.cur().kind == tokEq || p.cur().kind == tokNeq:
		neq := p.next().kind == tokNeq
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return CmpExpr{L: left, R: right, Neq: neq}, nil
	default:
		return nil, p.errf("expected predicate operator, got %q", p.cur().text)
	}
}

// parseDistPredicate parses `dist(x, y) <= k USING name` with the
// leading "dist" identifier still current. x must be a field reference;
// y may be a field (a distance join), a string or vector literal, or a
// bind parameter.
func (p *qparser) parseDistPredicate() (Expr, error) {
	p.next() // "dist"
	p.next() // '('
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if left.IsLit || left.IsVec || left.Param != nil {
		return nil, p.errf("dist() requires a field as its first argument")
	}
	sim := SimExpr{Field: left.Field}
	if p.cur().kind != tokComma {
		return nil, p.errf("expected ',' between dist() arguments")
	}
	p.next()
	target, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	sim.Target = target
	if p.cur().kind != tokRParen {
		return nil, p.errf("missing ')' after dist() arguments")
	}
	p.next()
	if p.cur().kind != tokLe {
		return nil, p.errf("dist() must be compared with '<='")
	}
	p.next()
	if p.atParam() {
		sim.RadiusParam = p.takeParam()
	} else {
		if p.cur().kind != tokNumber {
			return nil, p.errf("dist() <= requires a number")
		}
		radius, err := strconv.ParseFloat(p.next().text, 64)
		if err != nil || radius < 0 {
			return nil, p.errf("bad radius")
		}
		sim.Radius = radius
	}
	if err := p.expectKeyword("using"); err != nil {
		return nil, err
	}
	if p.cur().kind != tokIdent {
		return nil, p.errf("USING requires a rule-set or metric name")
	}
	sim.RuleSet = p.next().text
	return sim, nil
}

func (p *qparser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokQMark, tokNamedParam:
		return Operand{Param: p.takeParam()}, nil
	case tokString:
		p.next()
		return Operand{Lit: t.text, IsLit: true}, nil
	case tokLBracket:
		return p.parseVecLiteral()
	case tokIdent:
		if isKeyword(t.text) {
			return Operand{}, p.errf("unexpected keyword %q", t.text)
		}
		p.next()
		if p.cur().kind == tokDot {
			p.next()
			if p.cur().kind != tokIdent {
				return Operand{}, p.errf("expected field after '.'")
			}
			return Operand{Field: FieldRef{Table: t.text, Name: p.next().text}}, nil
		}
		return Operand{Field: FieldRef{Name: t.text}}, nil
	default:
		return Operand{}, p.errf("expected operand, got %s", t.kind)
	}
}
