package query

// A sharded LRU cache from normalized statement text to (parsed query,
// planner decision). Engine.Execute consults it before lexing, so a hot
// statement pays neither the parser nor the cost-based planner. Keys
// incorporate the catalog statistics version and the rule-set registry
// version (see Engine.cacheEpoch), so any mutation that could change a
// costing decision silently invalidates every stale entry. Sharding
// keeps the serving path scalable: concurrent queries hash to
// different shards and never contend on one mutex.

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// planCacheShards is the shard count; a power of two well above typical
// core counts so lock contention stays negligible.
const planCacheShards = 16

// defaultPlanCacheSize is the default total entry capacity.
const defaultPlanCacheSize = 512

// CacheStats is a snapshot of plan-cache effectiveness, exposed through
// Engine.CacheStats and the simqd /stats endpoint.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

type planCache struct {
	capacity int // total across shards
	hits     atomic.Int64
	misses   atomic.Int64
	evicted  atomic.Int64
	shards   [planCacheShards]planShard
}

type planShard struct {
	mu    sync.Mutex
	lru   *list.List // front = most recently used
	items map[string]*list.Element
}

type planEntry struct {
	key string
	q   *Query
	d   *planDecision
}

func newPlanCache(capacity int) *planCache {
	c := &planCache{capacity: capacity}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

func (c *planCache) shard(key string) *planShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%planCacheShards]
}

// shardCapacity spreads the total capacity across shards (at least one
// entry each so a tiny capacity still caches something).
func (c *planCache) shardCapacity() int {
	per := c.capacity / planCacheShards
	if per < 1 {
		per = 1
	}
	return per
}

// get returns the cached entry and promotes it to most recently used.
func (c *planCache) get(key string) (*planEntry, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		mPlanCacheMiss.Inc()
		return nil, false
	}
	c.hits.Add(1)
	mPlanCacheHit.Inc()
	return el.Value.(*planEntry), true
}

// put inserts (or refreshes) an entry, evicting the least recently used
// entry of the shard at capacity.
func (c *planCache) put(key string, q *Query, d *planDecision) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value = &planEntry{key: key, q: q, d: d}
		s.lru.MoveToFront(el)
		return
	}
	for s.lru.Len() >= c.shardCapacity() {
		last := s.lru.Back()
		if last == nil {
			break
		}
		s.lru.Remove(last)
		delete(s.items, last.Value.(*planEntry).key)
		c.evicted.Add(1)
		mPlanCacheEvict.Inc()
	}
	s.items[key] = s.lru.PushFront(&planEntry{key: key, q: q, d: d})
}

// Stats snapshots the counters.
func (c *planCache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicted.Load(),
		Capacity:  c.capacity,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.lru.Len()
		s.mu.Unlock()
	}
	return st
}
