package query

// The cost-based planner: translates a parsed Query into a tree of
// physical operators (operators.go) using the estimates in cost.go.
//
// Plan shape, bottom to top:
//
//	access path (Scan | IndexRange | NearestK | join chain)
//	-> Filter(residual)     when a residual predicate remains
//	-> OrderByDist          when the query has ORDER BY dist
//	-> Project
//	-> Limit                when the query has LIMIT
//
// Scans and scan-rooted join chains over large relations are wrapped in
// a Parallel operator that shards the outer relation across workers
// with a deterministic shard-order merge.

import (
	"fmt"

	"repro/internal/relation"
)

// plan compiles a parsed query into an executable operator tree.
func (e *Engine) plan(q *Query) (*compiledPlan, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("query: FROM clause required")
	}
	rels := make([]*relation.Relation, 0, len(q.From))
	seen := map[string]bool{}
	for _, ref := range q.From {
		r, ok := e.catalog.Get(ref.Name)
		if !ok {
			return nil, fmt.Errorf("query: unknown relation %q", ref.Name)
		}
		if seen[ref.Alias] {
			return nil, fmt.Errorf("query: duplicate alias %q", ref.Alias)
		}
		seen[ref.Alias] = true
		rels = append(rels, r)
	}

	// Validate rule sets and pattern syntax eagerly so bad queries fail
	// before execution.
	if err := e.validateExpr(q.Where); err != nil {
		return nil, err
	}
	if q.Order != OrderNone && !exprHasSim(q.Where) {
		return nil, fmt.Errorf("query: ORDER BY dist requires a similarity predicate")
	}

	ctx := &execCtx{eng: e}
	cp := &compiledPlan{ctx: ctx, columns: projectColumns(q)}

	var access Operator
	var err error
	if ne, ok := q.Where.(NearestExpr); ok {
		access, err = e.planNearest(ctx, q, rels, ne)
	} else if len(q.From) == 1 {
		access, err = e.planSingle(ctx, q, rels[0])
	} else {
		access, err = e.planJoin(ctx, q, rels)
	}
	if err != nil {
		return nil, err
	}

	top := access
	if q.Order == OrderDesc {
		top = &orderByDistOp{child: top, desc: true}
	} else if q.Order == OrderAsc {
		top = &orderByDistOp{child: top}
	}
	top = &projectOp{ctx: ctx, q: q, child: top}
	if q.Limit > 0 {
		top = &limitOp{child: top, n: q.Limit}
	}
	cp.root = top
	return cp, nil
}

// planNearest builds the access path for a NEAREST query.
func (e *Engine) planNearest(ctx *execCtx, q *Query, rels []*relation.Relation, ne NearestExpr) (Operator, error) {
	if len(q.From) != 1 {
		return nil, fmt.Errorf("query: NEAREST requires a single relation")
	}
	if !ne.Target.IsLit {
		return nil, fmt.Errorf("query: NEAREST requires a literal target")
	}
	// The parser rejects K <= 0, but hand-built Query values reach this
	// path through ExecuteQuery.
	if ne.K <= 0 {
		return nil, fmt.Errorf("query: NEAREST requires a positive count")
	}
	rs, err := e.ruleset(ne.RuleSet)
	if err != nil {
		return nil, err
	}
	if e.calc(ne.RuleSet) == nil {
		return nil, fmt.Errorf("query: NEAREST requires an edit-like rule set (%q is not)", ne.RuleSet)
	}
	via := "scan"
	if unitCost(rs) {
		via = "bktree"
	}
	return &nearestKOp{
		ctx: ctx, rel: rels[0], alias: q.From[0].Alias,
		via: via, target: ne.Target.Lit, k: ne.K, ruleSet: ne.RuleSet,
	}, nil
}

// planSingle builds the access path for a single-relation query:
// an indexable SIMILAR TO conjunct over seq becomes an IndexRange on
// whichever metric index the cost model prefers; everything else is a
// (possibly parallel) scan with the full predicate as a filter.
func (e *Engine) planSingle(ctx *execCtx, q *Query, rel *relation.Relation) (Operator, error) {
	alias := q.From[0].Alias
	st := rel.Stats()

	// indexable licenses a conjunct for the metric indexes: a literal,
	// non-pattern target over seq under a unit-cost rule set at an
	// integral radius (rule-set existence was validated above).
	indexable := func(sim *SimExpr) bool {
		if sim.Field.Name != "seq" || sim.Radius != float64(int(sim.Radius)) {
			return false
		}
		rs, err := e.ruleset(sim.RuleSet)
		return err == nil && unitCost(rs)
	}
	if sim, residual := extractRangeSim(q.Where, indexable); sim != nil {
		if via := chooseRangeAccess(st, sim.Radius); via != "scan" {
			var op Operator = &indexRangeOp{
				ctx: ctx, rel: rel, alias: alias, via: via,
				target: sim.Target.Lit, radius: int(sim.Radius), ruleSet: sim.RuleSet,
			}
			if res := simplifyExpr(residual); !isTrivial(res) {
				op = &filterOp{ctx: ctx, child: op, pred: res}
			}
			return op, nil
		}
	}

	pred := simplifyExpr(q.Where)
	build := func(shard, shards int) Operator {
		sc := newScanOp(ctx, rel, alias)
		sc.shard, sc.shards = shard, shards
		var op Operator = sc
		if !isTrivial(pred) {
			op = &filterOp{ctx: ctx, child: op, pred: pred}
		}
		return op
	}
	// A bare scan has no per-tuple verification work to parallelise.
	return e.maybeParallel(ctx, q, st.Count, !isTrivial(pred), build), nil
}

// joinStep is one edge of the greedy join order: the relation to add
// and how to reach it.
type joinStep struct {
	ref        TableRef
	rel        *relation.Relation
	sim        *SimExpr
	index      bool
	probeField FieldRef // outer-side join field (index joins)
}

// planJoin builds a left-deep join chain over N relations, greedily
// ordered by estimated cost; similarity edges come from top-level
// SIMILAR TO conjuncts between two aliases.
func (e *Engine) planJoin(ctx *execCtx, q *Query, rels []*relation.Relation) (Operator, error) {
	relOf := map[string]*relation.Relation{}
	refOf := map[string]TableRef{}
	pos := map[string]int{}
	for i, ref := range q.From {
		relOf[ref.Alias] = rels[i]
		refOf[ref.Alias] = ref
		pos[ref.Alias] = i
	}
	edges, residual := extractJoinSims(q.Where, relOf)
	if len(edges) == 0 {
		return nil, fmt.Errorf("query: joins require a SIMILAR TO predicate between the relations")
	}

	// Start from the smallest relation (ties: FROM order).
	start := q.From[0].Alias
	for _, ref := range q.From[1:] {
		if relOf[ref.Alias].Len() < relOf[start].Len() {
			start = ref.Alias
		}
	}

	bound := map[string]bool{start: true}
	curRows := float64(relOf[start].Stats().Count)
	used := make([]bool, len(edges))
	var steps []joinStep
	for len(bound) < len(q.From) {
		bestIdx, bestCost := -1, 0.0
		var best joinStep
		for i, edge := range edges {
			if used[i] {
				continue
			}
			fa, ta := edge.Field.Table, edge.Target.Field.Table
			var newAlias string
			var probe FieldRef
			var innerField string
			switch {
			case bound[fa] && !bound[ta]:
				newAlias, probe, innerField = ta, edge.Field, edge.Target.Field.Name
			case bound[ta] && !bound[fa]:
				newAlias, probe, innerField = fa, edge.Target.Field, edge.Field.Name
			default:
				continue // cycle edge or not yet reachable
			}
			rs, err := e.ruleset(edge.RuleSet)
			if err != nil {
				return nil, err
			}
			innerStats := relOf[newAlias].Stats()
			// The BK-tree indexes seq, so index joins additionally need
			// the inner join field to be seq.
			indexable := unitCost(rs) && edge.Radius == float64(int(edge.Radius)) && innerField == "seq"
			cost := nestedLoopJoinCost(curRows, innerStats, edge.Radius)
			if indexable {
				cost = indexJoinCost(curRows, innerStats, edge.Radius)
			}
			better := bestIdx < 0 || cost < bestCost ||
				cost == bestCost && pos[newAlias] < pos[best.ref.Alias]
			if better {
				bestIdx, bestCost = i, cost
				best = joinStep{
					ref: refOf[newAlias], rel: relOf[newAlias], sim: edge,
					index: indexable, probeField: probe,
				}
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("query: relations are not connected by SIMILAR TO predicates")
		}
		used[bestIdx] = true
		bound[best.ref.Alias] = true
		curRows = joinOutRows(curRows, best.rel.Stats(), best.sim.Radius)
		steps = append(steps, best)
	}
	// Edges between already-bound relations (cycles) become residual
	// predicates — they must still hold on each output binding.
	for i, edge := range edges {
		if !used[i] {
			residual = AndExpr{L: residual, R: *edge}
		}
	}

	pred := simplifyExpr(residual)
	build := func(shard, shards int) Operator {
		sc := newScanOp(ctx, relOf[start], start)
		sc.shard, sc.shards = shard, shards
		var op Operator = sc
		for _, step := range steps {
			if step.index {
				op = &indexJoinOp{
					ctx: ctx, outer: op, rel: step.rel, alias: step.ref.Alias,
					probeField: step.probeField, sim: step.sim,
				}
			} else {
				op = &nestedLoopJoinOp{
					ctx: ctx, outer: op,
					inner: newScanOp(ctx, step.rel, step.ref.Alias),
					sim:   step.sim,
				}
			}
		}
		if !isTrivial(pred) {
			op = &filterOp{ctx: ctx, child: op, pred: pred}
		}
		return op
	}
	return e.maybeParallel(ctx, q, relOf[start].Stats().Count, true, build), nil
}

// maybeParallel wraps a scan-rooted pipeline factory in a Parallel
// operator when the outer relation is large enough to shard and there
// is per-tuple work to spread. A LIMIT without ORDER BY stays serial:
// the serial pipeline can stop at the limit, while the parallel plan
// must drain every shard before merging.
func (e *Engine) maybeParallel(ctx *execCtx, q *Query, outerRows int, hasWork bool, build func(shard, shards int) Operator) Operator {
	workers, minRows := e.parallelConfig()
	limitStopsEarly := q.Limit > 0 && q.Order == OrderNone
	if workers > 1 && outerRows >= minRows && hasWork && !limitStopsEarly {
		return &parallelOp{ctx: ctx, workers: workers, build: build, template: build(0, workers)}
	}
	return build(0, 1)
}

// validateExpr checks rule-set names and pattern syntax eagerly so bad
// queries fail before execution.
func (e *Engine) validateExpr(ex Expr) error {
	switch ex := ex.(type) {
	case nil:
		return nil
	case AndExpr:
		if err := e.validateExpr(ex.L); err != nil {
			return err
		}
		return e.validateExpr(ex.R)
	case OrExpr:
		if err := e.validateExpr(ex.L); err != nil {
			return err
		}
		return e.validateExpr(ex.R)
	case NotExpr:
		return e.validateExpr(ex.E)
	case SimExpr:
		if _, err := e.ruleset(ex.RuleSet); err != nil {
			return err
		}
		if ex.Pattern {
			if _, err := e.compilePattern(ex.Target.Lit); err != nil {
				return err
			}
		}
		return nil
	case NearestExpr:
		_, err := e.ruleset(ex.RuleSet)
		return err
	default:
		return nil
	}
}

// exprHasSim reports whether the predicate tree contains a similarity
// predicate (and therefore produces a distance to order by).
func exprHasSim(ex Expr) bool {
	switch ex := ex.(type) {
	case SimExpr, NearestExpr:
		return true
	case AndExpr:
		return exprHasSim(ex.L) || exprHasSim(ex.R)
	case OrExpr:
		return exprHasSim(ex.L) || exprHasSim(ex.R)
	case NotExpr:
		return exprHasSim(ex.E)
	}
	return false
}

// isTrivial reports whether a residual predicate can be dropped.
func isTrivial(ex Expr) bool {
	if ex == nil {
		return true
	}
	_, ok := ex.(litTrue)
	return ok
}

// simplifyExpr removes the planner's TRUE placeholders from AND chains
// so EXPLAIN output stays readable.
func simplifyExpr(ex Expr) Expr {
	switch ex := ex.(type) {
	case AndExpr:
		l, r := simplifyExpr(ex.L), simplifyExpr(ex.R)
		if isTrivial(l) {
			return r
		}
		if isTrivial(r) {
			return l
		}
		return AndExpr{L: l, R: r}
	case OrExpr:
		return OrExpr{L: simplifyExpr(ex.L), R: simplifyExpr(ex.R)}
	case NotExpr:
		return NotExpr{E: simplifyExpr(ex.E)}
	}
	return ex
}

// extractRangeSim walks the top-level AND chain for a SimExpr with a
// literal, non-pattern target that the caller's predicate accepts;
// returns it and the residual expression with that conjunct replaced
// by TRUE. Non-qualifying sim conjuncts are skipped, not terminal, so
// an indexable conjunct is found wherever it sits in the chain.
func extractRangeSim(ex Expr, ok func(*SimExpr) bool) (*SimExpr, Expr) {
	switch ex := ex.(type) {
	case SimExpr:
		if ex.Target.IsLit && !ex.Pattern && ok(&ex) {
			return &ex, litTrue{}
		}
	case AndExpr:
		if s, rl := extractRangeSim(ex.L, ok); s != nil {
			return s, AndExpr{L: rl, R: ex.R}
		}
		if s, rr := extractRangeSim(ex.R, ok); s != nil {
			return s, AndExpr{L: ex.L, R: rr}
		}
	}
	return nil, ex
}

// extractJoinSims collects every top-level SimExpr conjunct whose field
// and target reference two different known aliases; the residual is the
// predicate with those conjuncts replaced by TRUE.
func extractJoinSims(ex Expr, known map[string]*relation.Relation) ([]*SimExpr, Expr) {
	switch ex := ex.(type) {
	case SimExpr:
		if !ex.Target.IsLit && !ex.Pattern {
			ft, tt := ex.Field.Table, ex.Target.Field.Table
			if ft != tt && known[ft] != nil && known[tt] != nil {
				return []*SimExpr{&ex}, litTrue{}
			}
		}
	case AndExpr:
		ls, rl := extractJoinSims(ex.L, known)
		rs, rr := extractJoinSims(ex.R, known)
		if len(ls)+len(rs) > 0 {
			return append(ls, rs...), AndExpr{L: rl, R: rr}
		}
	}
	return nil, ex
}
