package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/index"
	"repro/internal/relation"
)

// plan is an executable access path for one query.
type plan struct {
	eng  *Engine
	q    *Query
	rels []*relation.Relation // aligned with q.From

	// access path, one of:
	access   string   // "scan", "bktree-range", "nearest-bktree", "nearest-scan", "join-nested", "join-bktree"
	sim      *SimExpr // the access predicate (range/join paths)
	nearest  *NearestExpr
	residual Expr // remaining predicate evaluated per binding (may be nil)
}

// describe renders the plan for EXPLAIN and Result.Plan.
func (p *plan) describe() string {
	var b strings.Builder
	switch p.access {
	case "scan":
		fmt.Fprintf(&b, "Scan(%s)", p.q.From[0].Alias)
	case "bktree-range":
		fmt.Fprintf(&b, "IndexRange(%s via bktree, target=%s, radius=%g, ruleset=%s)",
			p.q.From[0].Alias, p.sim.Target, p.sim.Radius, p.sim.RuleSet)
	case "nearest-bktree":
		fmt.Fprintf(&b, "NearestK(%s via bktree, k=%d, ruleset=%s)", p.q.From[0].Alias, p.nearest.K, p.nearest.RuleSet)
	case "nearest-scan":
		fmt.Fprintf(&b, "NearestK(%s via scan, k=%d, ruleset=%s)", p.q.From[0].Alias, p.nearest.K, p.nearest.RuleSet)
	case "join-nested":
		fmt.Fprintf(&b, "NestedLoopJoin(%s x %s, on %s)", p.q.From[0].Alias, p.q.From[1].Alias, p.sim)
	case "join-bktree":
		fmt.Fprintf(&b, "IndexJoin(probe %s into bktree(%s), on %s)", p.q.From[0].Alias, p.q.From[1].Alias, p.sim)
	}
	if p.residual != nil {
		if _, isTrue := p.residual.(litTrue); !isTrue {
			fmt.Fprintf(&b, " Filter(%s)", p.residual)
		}
	}
	return b.String()
}

// plan selects the access path for a parsed query.
func (e *Engine) plan(q *Query) (*plan, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("query: FROM clause required")
	}
	p := &plan{eng: e, q: q}
	seen := map[string]bool{}
	for _, ref := range q.From {
		r, ok := e.catalog.Get(ref.Name)
		if !ok {
			return nil, fmt.Errorf("query: unknown relation %q", ref.Name)
		}
		if seen[ref.Alias] {
			return nil, fmt.Errorf("query: duplicate alias %q", ref.Alias)
		}
		seen[ref.Alias] = true
		p.rels = append(p.rels, r)
	}

	// Validate rule sets referenced anywhere in WHERE.
	if err := e.validateExpr(q.Where); err != nil {
		return nil, err
	}

	// NEAREST: must be the whole WHERE clause on a single table.
	if ne, ok := q.Where.(NearestExpr); ok {
		if len(q.From) != 1 {
			return nil, fmt.Errorf("query: NEAREST requires a single relation")
		}
		if !ne.Target.IsLit {
			return nil, fmt.Errorf("query: NEAREST requires a literal target")
		}
		rs, err := e.ruleset(ne.RuleSet)
		if err != nil {
			return nil, err
		}
		if e.calc(ne.RuleSet) == nil {
			return nil, fmt.Errorf("query: NEAREST requires an edit-like rule set (%q is not)", ne.RuleSet)
		}
		p.nearest = &ne
		if unitCost(rs) {
			p.access = "nearest-bktree"
		} else {
			p.access = "nearest-scan"
		}
		return p, nil
	}

	if len(q.From) == 2 {
		// Join: find a top-level SimExpr conjunct across the two aliases.
		sim, residual := extractJoinSim(q.Where, q.From[0].Alias, q.From[1].Alias)
		if sim == nil {
			return nil, fmt.Errorf("query: joins require a SIMILAR TO predicate between the two relations")
		}
		p.sim = sim
		p.residual = residual
		rs, err := e.ruleset(sim.RuleSet)
		if err != nil {
			return nil, err
		}
		if unitCost(rs) {
			p.access = "join-bktree"
		} else {
			p.access = "join-nested"
		}
		return p, nil
	}

	// Single table: look for an indexable SIMILAR TO conjunct.
	if sim, residual := extractRangeSim(q.Where); sim != nil {
		rs, err := e.ruleset(sim.RuleSet)
		if err != nil {
			return nil, err
		}
		if unitCost(rs) && sim.Radius == float64(int(sim.Radius)) {
			p.access = "bktree-range"
			p.sim = sim
			p.residual = residual
			return p, nil
		}
	}
	p.access = "scan"
	p.residual = q.Where
	return p, nil
}

// validateExpr checks rule-set names and pattern syntax eagerly so bad
// queries fail before execution.
func (e *Engine) validateExpr(ex Expr) error {
	switch ex := ex.(type) {
	case nil:
		return nil
	case AndExpr:
		if err := e.validateExpr(ex.L); err != nil {
			return err
		}
		return e.validateExpr(ex.R)
	case OrExpr:
		if err := e.validateExpr(ex.L); err != nil {
			return err
		}
		return e.validateExpr(ex.R)
	case NotExpr:
		return e.validateExpr(ex.E)
	case SimExpr:
		if _, err := e.ruleset(ex.RuleSet); err != nil {
			return err
		}
		if ex.Pattern {
			if _, err := e.compilePattern(ex.Target.Lit); err != nil {
				return err
			}
		}
		return nil
	case NearestExpr:
		_, err := e.ruleset(ex.RuleSet)
		return err
	default:
		return nil
	}
}

// extractRangeSim walks the top-level AND chain for a SimExpr with a
// literal, non-pattern target; returns it and the residual expression
// with that conjunct replaced by TRUE.
func extractRangeSim(ex Expr) (*SimExpr, Expr) {
	switch ex := ex.(type) {
	case SimExpr:
		if ex.Target.IsLit && !ex.Pattern {
			return &ex, litTrue{}
		}
	case AndExpr:
		if s, rl := extractRangeSim(ex.L); s != nil {
			return s, AndExpr{L: rl, R: ex.R}
		}
		if s, rr := extractRangeSim(ex.R); s != nil {
			return s, AndExpr{L: ex.L, R: rr}
		}
	}
	return nil, ex
}

// extractJoinSim finds a top-level SimExpr conjunct whose field and
// target reference the two different aliases.
func extractJoinSim(ex Expr, leftAlias, rightAlias string) (*SimExpr, Expr) {
	switch ex := ex.(type) {
	case SimExpr:
		if !ex.Target.IsLit && !ex.Pattern {
			ft, tt := ex.Field.Table, ex.Target.Field.Table
			if ft == leftAlias && tt == rightAlias || ft == rightAlias && tt == leftAlias {
				return &ex, litTrue{}
			}
		}
	case AndExpr:
		if s, rl := extractJoinSim(ex.L, leftAlias, rightAlias); s != nil {
			return s, AndExpr{L: rl, R: ex.R}
		}
		if s, rr := extractJoinSim(ex.R, leftAlias, rightAlias); s != nil {
			return s, AndExpr{L: ex.L, R: rr}
		}
	}
	return nil, ex
}

// run executes the plan and assembles the result.
func (p *plan) run() (*Result, error) {
	switch p.access {
	case "scan":
		return p.runScan()
	case "bktree-range":
		return p.runIndexRange()
	case "nearest-bktree", "nearest-scan":
		return p.runNearest()
	case "join-nested", "join-bktree":
		return p.runJoin()
	default:
		return nil, fmt.Errorf("query: unknown access path %q", p.access)
	}
}

func (p *plan) runScan() (*Result, error) {
	rel := p.rels[0]
	alias := p.q.From[0].Alias
	res := p.newResult(false)
	for _, t := range rel.Tuples() {
		b := &binding{aliases: map[string]relation.Tuple{alias: t}}
		if p.residual != nil {
			ok, err := p.eng.evalExpr(p.residual, b)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		if err := p.emit(res, b); err != nil {
			return nil, err
		}
		if p.q.Limit > 0 && len(res.Rows) >= p.q.Limit {
			break
		}
	}
	return res, nil
}

func (p *plan) runIndexRange() (*Result, error) {
	rel := p.rels[0]
	alias := p.q.From[0].Alias
	res := p.newResult(false)
	matches := rel.BKTree().Range(p.sim.Target.Lit, int(p.sim.Radius))
	sort.Slice(matches, func(i, j int) bool { return matches[i].ID < matches[j].ID })
	for _, m := range matches {
		t, ok := rel.Tuple(m.ID)
		if !ok {
			return nil, fmt.Errorf("query: index returned unknown id %d", m.ID)
		}
		b := &binding{aliases: map[string]relation.Tuple{alias: t}, dist: m.Dist, hasDist: true}
		if p.residual != nil {
			keep, err := p.eng.evalExpr(p.residual, b)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		if err := p.emit(res, b); err != nil {
			return nil, err
		}
		if p.q.Limit > 0 && len(res.Rows) >= p.q.Limit {
			break
		}
	}
	return res, nil
}

func (p *plan) runNearest() (*Result, error) {
	rel := p.rels[0]
	alias := p.q.From[0].Alias
	res := p.newResult(false)
	var matches []index.Match
	if p.access == "nearest-bktree" {
		matches = rel.BKTree().NearestK(p.nearest.Target.Lit, p.nearest.K)
	} else {
		c := p.eng.calc(p.nearest.RuleSet)
		for _, t := range rel.Tuples() {
			if d := c.Distance(t.Seq, p.nearest.Target.Lit); d < infCut {
				matches = append(matches, index.Match{ID: t.ID, S: t.Seq, Dist: d})
			}
		}
		sort.Slice(matches, func(i, j int) bool {
			if matches[i].Dist != matches[j].Dist {
				return matches[i].Dist < matches[j].Dist
			}
			return matches[i].ID < matches[j].ID
		})
		if len(matches) > p.nearest.K {
			matches = matches[:p.nearest.K]
		}
	}
	for _, m := range matches {
		t, _ := rel.Tuple(m.ID)
		b := &binding{aliases: map[string]relation.Tuple{alias: t}, dist: m.Dist, hasDist: true}
		if err := p.emit(res, b); err != nil {
			return nil, err
		}
	}
	return res, nil
}

const infCut = 1e300

func (p *plan) runJoin() (*Result, error) {
	leftAlias, rightAlias := p.q.From[0].Alias, p.q.From[1].Alias
	left, right := p.rels[0], p.rels[1]
	// Normalise: sim.Field on left alias, sim.Target on right alias.
	sim := *p.sim
	if sim.Field.Table == rightAlias {
		sim.Field, sim.Target.Field = sim.Target.Field, sim.Field
	}
	res := p.newResult(true)
	emitPair := func(lt, rt relation.Tuple, d float64, hasDist bool) (bool, error) {
		b := &binding{aliases: map[string]relation.Tuple{leftAlias: lt, rightAlias: rt}, dist: d, hasDist: hasDist}
		if p.residual != nil {
			keep, err := p.eng.evalExpr(p.residual, b)
			if err != nil || !keep {
				return false, err
			}
		}
		if err := p.emit(res, b); err != nil {
			return false, err
		}
		return p.q.Limit > 0 && len(res.Rows) >= p.q.Limit, nil
	}

	if p.access == "join-bktree" {
		bk := right.BKTree()
		for _, lt := range left.Tuples() {
			matches := bk.Range(lt.Attr(sim.Field.Name), int(sim.Radius))
			sort.Slice(matches, func(i, j int) bool { return matches[i].ID < matches[j].ID })
			for _, m := range matches {
				rt, _ := right.Tuple(m.ID)
				done, err := emitPair(lt, rt, m.Dist, true)
				if err != nil {
					return nil, err
				}
				if done {
					return res, nil
				}
			}
		}
		return res, nil
	}

	for _, lt := range left.Tuples() {
		x := lt.Attr(sim.Field.Name)
		for _, rt := range right.Tuples() {
			y := rt.Attr(sim.Target.Field.Name)
			d, ok, err := p.eng.within(x, y, sim.RuleSet, sim.Radius)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			done, err := emitPair(lt, rt, d, true)
			if err != nil {
				return nil, err
			}
			if done {
				return res, nil
			}
		}
	}
	return res, nil
}

// newResult prepares the result header for the query's projection.
func (p *plan) newResult(join bool) *Result {
	res := &Result{Plan: p.describe()}
	if len(p.q.Select) > 0 {
		for _, c := range p.q.Select {
			res.Columns = append(res.Columns, c.String())
		}
		return res
	}
	// '*': id and seq per alias, then dist.
	for _, ref := range p.q.From {
		prefix := ""
		if join {
			prefix = ref.Alias + "."
		}
		res.Columns = append(res.Columns, prefix+"id", prefix+"seq")
	}
	res.Columns = append(res.Columns, "dist")
	return res
}

// emit projects one binding into the result.
func (p *plan) emit(res *Result, b *binding) error {
	row := make([]string, 0, len(res.Columns))
	if len(p.q.Select) > 0 {
		for _, c := range p.q.Select {
			v, err := fieldValue(FieldRef{Table: c.Table, Name: c.Name}, b)
			if err != nil {
				return err
			}
			row = append(row, v)
		}
	} else {
		for _, ref := range p.q.From {
			t := b.aliases[ref.Alias]
			row = append(row, fmt.Sprintf("%d", t.ID), t.Seq)
		}
		if b.hasDist {
			row = append(row, formatDist(b.dist))
		} else {
			row = append(row, "")
		}
	}
	res.Rows = append(res.Rows, row)
	return nil
}
