package query

// The cost-based planner: translates a parsed Query into a tree of
// physical operators (operators.go) using the estimates in cost.go.
//
// Plan shape, bottom to top:
//
//	access path (Scan | IndexRange | NearestK | join chain)
//	-> Filter(residual)     when a residual predicate remains
//	-> OrderByDist          when the query has ORDER BY dist
//	-> Project
//	-> Limit                when the query has LIMIT
//
// Scans and scan-rooted join chains over large relations are wrapped in
// a Parallel operator that shards the outer relation across workers
// with a deterministic shard-order merge.

import (
	"fmt"
	"strings"

	"repro/internal/editdp"
	"repro/internal/metric"
	"repro/internal/relation"
)

// Planning is split into two phases so prepared queries and the plan
// cache can skip the expensive half:
//
//   - decide: validate the query and make every cost-based choice
//     (access path, index structure, join order, parallelism). The
//     result is a planDecision — plain bind-independent data.
//   - build: construct the operator tree from a query plus a decision.
//     Conjunct extraction is deterministic, so a decision recorded once
//     rebuilds the same tree shape for any binding that shares the
//     decision's cost inputs (radii, statistics version, parallelism).
//
// Engine.plan = decide + build; cached paths call build alone.

// accessKind is the decided access-path family.
type accessKind int

const (
	accessScan accessKind = iota
	accessRange
	accessNearest
	accessJoin
)

// planDecision captures the planner's choices for one query. It holds
// no operators and no bound values, only choices, so it is immutable
// and safely shared across concurrent executions.
type planDecision struct {
	kind      accessKind
	via       string       // accessNearest: bktree|scan; accessRange: bktree|trie
	start     string       // accessJoin: starting alias
	steps     []stepChoice // accessJoin: greedy join order
	parallel  bool         // shard the scan-rooted pipeline
	workers   int          // worker count when parallel (or gather fan-out)
	shards    int          // > 0: scatter-gather plan over a ShardedRelation
	shardJoin bool         // accessJoin over >= 1 sharded relation (broadcast inner)
	vectorize bool         // build the batch-at-a-time pipeline
	kernel    string       // distance kernel serving the primary edit conjunct
	// ("myers", "targetdp", "scalar", or "" when none)
}

// stepChoice is one edge of the decided join order. The edge is named
// by its position in extractJoinSims' deterministic output so build can
// recover the SimExpr from the (re-extracted) predicate. algo selects
// the physical join operator ("nl", "index", "partition"); vec marks a
// vector-metric edge (USING names a metric, the index is a VP-tree).
type stepChoice struct {
	alias      string
	edge       int
	algo       string
	vec        bool
	probeField FieldRef
}

// plan compiles a parsed query into an executable operator tree.
func (e *Engine) plan(q *Query) (*compiledPlan, error) {
	d, err := e.decide(q)
	if err != nil {
		return nil, err
	}
	return e.buildPlan(q, d)
}

// resolveFrom maps the FROM clause to catalog tables (plain or
// sharded), rejecting unknown names and duplicate aliases.
func (e *Engine) resolveFrom(q *Query) ([]relation.Table, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("query: FROM clause required")
	}
	tabs := make([]relation.Table, 0, len(q.From))
	seen := map[string]bool{}
	for _, ref := range q.From {
		t, ok := e.catalog.Lookup(ref.Name)
		if !ok {
			return nil, fmt.Errorf("query: unknown relation %q", ref.Name)
		}
		if seen[ref.Alias] {
			return nil, fmt.Errorf("query: duplicate alias %q", ref.Alias)
		}
		seen[ref.Alias] = true
		tabs = append(tabs, t)
	}
	return tabs, nil
}

// decide validates the query and makes every cost-based planning
// choice. The query must be fully bound (no parameters).
func (e *Engine) decide(q *Query) (*planDecision, error) {
	return e.decideWith(q, e.batchConfig())
}

// decideWith is decide with the vectorized block size pinned by the
// caller: paths that key a cache on the engine configuration
// (Engine.Execute, PreparedQuery.run) read the knob exactly once and
// pass the same value here, so a concurrent SetBatchSize can never
// produce a decision whose vectorize flag belongs to a different
// epoch than the key it is stored under.
func (e *Engine) decideWith(q *Query, batchSize int) (*planDecision, error) {
	if hasUnboundParams(q) {
		return nil, fmt.Errorf("query: statement has bind parameters; use Engine.Prepare")
	}
	rels, err := e.resolveFrom(q)
	if err != nil {
		return nil, err
	}

	// Validate rule sets and pattern syntax eagerly so bad queries fail
	// before execution.
	if err := e.validateExpr(q.Where); err != nil {
		return nil, err
	}
	if q.Order != OrderNone && !exprHasSim(q.Where) {
		return nil, fmt.Errorf("query: ORDER BY dist requires a similarity predicate")
	}

	var d *planDecision
	if ne, ok := q.Where.(NearestExpr); ok {
		d, err = e.decideNearest(q, ne, rels[0])
	} else if len(q.From) == 1 {
		d, err = e.decideSingle(q, rels[0])
	} else {
		// Join algorithm choice depends on the vectorize epoch: the
		// partitioned batch join only exists in the batch pipeline.
		d, err = e.decideJoin(q, rels, batchSize > 0)
	}
	if err != nil {
		return nil, err
	}
	// The vectorize choice is part of the decision so cached plans and
	// memoised prepared decisions key on it (SetBatchSize starts a fresh
	// key space). Every access family has a batch build; joins run their
	// row chain behind the adapters.
	d.vectorize = batchSize > 0
	if d.vectorize {
		mDecideVectorize.Inc()
	} else {
		mDecideRow.Inc()
	}
	d.kernel = e.kernelFor(q, d)
	return d, nil
}

// kernelFor records which distance kernel serves the plan's primary
// edit conjunct, for EXPLAIN. Index-served plans (BK-tree, trie) run
// the query-scoped bit-parallel kernel inside the index traversal;
// scan and join plans are classified by the compiled filter's own
// dispatch predicate. The record is advisory — the filter re-checks
// eligibility at compile time — and the bit-parallel toggle is part of
// the plan-cache epoch, so a cached label never goes stale.
func (e *Engine) kernelFor(q *Query, d *planDecision) string {
	indexKernel := "scalar"
	if editdp.BitParallelEnabled() {
		indexKernel = "myers"
	}
	switch d.kind {
	case accessNearest:
		if ne, ok := q.Where.(NearestExpr); ok && isVecNearest(&ne) {
			return "vec-" + ne.RuleSet
		}
		if d.via == "bktree" {
			return indexKernel
		}
		return "targetdp" // scan nearest: TargetDP with a shrinking bound
	case accessRange:
		if d.via == "vptree" {
			if sim, _ := extractVecRangeSim(q.Where); sim != nil {
				return "vec-" + sim.RuleSet
			}
			return ""
		}
		return indexKernel
	case accessJoin:
		// Classify by the primary join edge: vec edges run the metric's
		// block kernels, unit edit edges the query-scoped bit-parallel
		// probe (partition verify and BK-tree traversal alike), weighted
		// edges the budgeted DP (TargetDP in the partition fallback).
		if sim := firstJoinSim(q.Where); sim != nil {
			if isVecSim(sim) {
				return "vec-" + sim.RuleSet
			}
			if c := e.calc(sim.RuleSet); c != nil && c.Unit() {
				return indexKernel
			}
			return "targetdp"
		}
		return ""
	}
	return e.filterKernel(q.Where)
}

// isVecNearest reports whether a NEAREST predicate targets the vector
// column (its USING clause then names a distance metric).
func isVecNearest(ne *NearestExpr) bool {
	return ne.Field.Name == "vec" || ne.Target.IsVec
}

// decideNearest validates a NEAREST query and picks the access
// structure. Over a sharded relation the same via choice applies per
// shard and a rank-aware gather merges the shard top-k lists.
func (e *Engine) decideNearest(q *Query, ne NearestExpr, tab relation.Table) (*planDecision, error) {
	if len(q.From) != 1 {
		return nil, fmt.Errorf("query: NEAREST requires a single relation")
	}
	if isVecNearest(&ne) {
		return e.decideVecNearest(q, ne, tab)
	}
	if !ne.Target.IsLit {
		return nil, fmt.Errorf("query: NEAREST requires a literal target")
	}
	// The parser rejects K <= 0, but hand-built Query values reach this
	// path through ExecuteQuery.
	if ne.K <= 0 {
		return nil, fmt.Errorf("query: NEAREST requires a positive count")
	}
	rs, err := e.ruleset(ne.RuleSet)
	if err != nil {
		return nil, err
	}
	if e.calc(ne.RuleSet) == nil {
		return nil, fmt.Errorf("query: NEAREST requires an edit-like rule set (%q is not)", ne.RuleSet)
	}
	via := "scan"
	if unitCost(rs) {
		via = "bktree"
	}
	d := &planDecision{kind: accessNearest, via: via}
	if sh, ok := tab.(*relation.ShardedRelation); ok {
		d.shards = sh.NumShards()
		d.workers = e.gatherWorkers(d.shards)
	}
	return d, nil
}

// decideVecNearest picks the access structure for NEAREST over the
// vector column: a VP-tree when the metric satisfies the triangle
// inequality (the tree's pruning invariant), a bounded scan otherwise
// (cosine). Sharded relations get the same per-shard choice under a
// rank-aware gather, exactly like the string path.
func (e *Engine) decideVecNearest(q *Query, ne NearestExpr, tab relation.Table) (*planDecision, error) {
	// The parser rejects K <= 0, but hand-built Query values reach this
	// path through ExecuteQuery.
	if ne.K <= 0 {
		return nil, fmt.Errorf("query: NEAREST requires a positive count")
	}
	m, ok := metric.Lookup(ne.RuleSet)
	if !ok {
		return nil, fmt.Errorf("query: unknown metric %q", ne.RuleSet)
	}
	via := "scan"
	if metric.IsTriangular(m) {
		via = "vptree"
	}
	d := &planDecision{kind: accessNearest, via: via}
	if sh, ok := tab.(*relation.ShardedRelation); ok {
		d.shards = sh.NumShards()
		d.workers = e.gatherWorkers(d.shards)
	}
	return d, nil
}

// gatherWorkers caps the scatter-gather fan-out at the engine's
// parallelism (at least one worker).
func (e *Engine) gatherWorkers(shards int) int {
	workers, _ := e.parallelConfig()
	if workers > shards {
		workers = shards
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// rangeIndexable licenses a conjunct for the metric indexes: a literal,
// non-pattern target over seq under a unit-cost rule set at an integral
// radius.
func (e *Engine) rangeIndexable(sim *SimExpr) bool {
	if sim.Field.Name != "seq" || sim.Radius != float64(int(sim.Radius)) {
		return false
	}
	rs, err := e.ruleset(sim.RuleSet)
	return err == nil && unitCost(rs)
}

// decideSingle picks the access path for a single-relation query: an
// indexable SIMILAR TO conjunct over seq becomes an IndexRange on
// whichever metric index the cost model prefers; everything else is a
// (possibly parallel) scan with the full predicate as a filter. Over a
// sharded relation the same choice is made on per-shard statistics and
// the decision becomes a scatter-gather plan: every shard runs the
// chosen access path on its own snapshot and an id-ordered gather
// restores the serial scan order.
func (e *Engine) decideSingle(q *Query, tab relation.Table) (*planDecision, error) {
	st := tab.Stats()
	shards := 0
	if sh, ok := tab.(*relation.ShardedRelation); ok {
		shards = sh.NumShards()
	}
	costStats := st
	if shards > 1 {
		// Each shard holds ~1/N of the rows; the per-shard access choice
		// must be costed against what one shard actually scans or probes.
		costStats.Count = (st.Count + shards - 1) / shards
		costStats.VecCount = (st.VecCount + shards - 1) / shards
	}
	if sim, _ := extractRangeSim(q.Where, e.rangeIndexable); sim != nil {
		if via := chooseRangeAccess(costStats, sim.Radius); via != "scan" {
			d := &planDecision{kind: accessRange, via: via, shards: shards}
			if shards > 0 {
				d.workers = e.gatherWorkers(shards)
			}
			return d, nil
		}
	}
	if sim, _ := extractVecRangeSim(q.Where); sim != nil {
		m, ok := metric.Lookup(sim.RuleSet)
		if ok && metric.IsTriangular(m) && chooseVecAccess(costStats, sim.Radius) == "vptree" {
			d := &planDecision{kind: accessRange, via: "vptree", shards: shards}
			if shards > 0 {
				d.workers = e.gatherWorkers(shards)
			}
			return d, nil
		}
	}
	hasWork := !isTrivial(simplifyExpr(q.Where))
	d := &planDecision{kind: accessScan, shards: shards}
	if shards > 0 {
		d.workers = e.gatherWorkers(shards)
		return d, nil
	}
	// A bare scan has no per-tuple verification work to parallelise.
	d.parallel, d.workers = e.decideParallel(q, st.Count, hasWork)
	return d, nil
}

// decideJoin greedily orders a left-deep join chain over N relations by
// estimated cost; similarity edges come from top-level similarity
// conjuncts between two aliases (SIMILAR TO or ON dist(...) <= k). Per
// edge the cheapest physical join is chosen: index-nested-loop (probe
// the inner BK-tree or VP-tree), partitioned batch (length/norm-band
// the inner side; batch pipeline only), or plain nested loop. A join
// touching sharded relations becomes a scatter-gather plan: one chain
// per outer shard with the inner sides broadcast, merged by outer id
// under GatherMerge (see buildShardedJoin).
func (e *Engine) decideJoin(q *Query, rels []relation.Table, vectorize bool) (*planDecision, error) {
	relOf := map[string]relation.Table{}
	pos := map[string]int{}
	shardJoin := false
	for i, ref := range q.From {
		if _, ok := rels[i].(*relation.ShardedRelation); ok {
			shardJoin = true
		}
		relOf[ref.Alias] = rels[i]
		pos[ref.Alias] = i
	}
	edges, _ := extractJoinSims(q.Where, relOf)
	if len(edges) == 0 {
		return nil, fmt.Errorf("query: joins require a similarity predicate between the relations")
	}

	// Start from the smallest relation (ties: FROM order).
	start := q.From[0].Alias
	for _, ref := range q.From[1:] {
		if relOf[ref.Alias].Len() < relOf[start].Len() {
			start = ref.Alias
		}
	}

	bound := map[string]bool{start: true}
	curRows := float64(relOf[start].Stats().Count)
	used := make([]bool, len(edges))
	var steps []stepChoice
	for len(bound) < len(q.From) {
		bestIdx, bestCost := -1, 0.0
		var best stepChoice
		for i, edge := range edges {
			if used[i] {
				continue
			}
			fa, ta := edge.Field.Table, edge.Target.Field.Table
			var newAlias string
			var probe FieldRef
			var innerField string
			switch {
			case bound[fa] && !bound[ta]:
				newAlias, probe, innerField = ta, edge.Field, edge.Target.Field.Name
			case bound[ta] && !bound[fa]:
				newAlias, probe, innerField = fa, edge.Target.Field, edge.Field.Name
			default:
				continue // cycle edge or not yet reachable
			}
			algo, cost, err := e.chooseJoinAlgo(edge, innerField, curRows, relOf[newAlias].Stats(), vectorize)
			if err != nil {
				return nil, err
			}
			better := bestIdx < 0 || cost < bestCost ||
				cost == bestCost && pos[newAlias] < pos[best.alias]
			if better {
				bestIdx, bestCost = i, cost
				best = stepChoice{alias: newAlias, edge: i, algo: algo.algo, vec: algo.vec, probeField: probe}
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("query: relations are not connected by similarity predicates")
		}
		used[bestIdx] = true
		bound[best.alias] = true
		curRows = joinOutRowsFor(edges[best.edge], curRows, relOf[best.alias].Stats())
		steps = append(steps, best)
	}

	d := &planDecision{kind: accessJoin, start: start, steps: steps, shardJoin: shardJoin}
	if shardJoin {
		// One chain per outer shard (the whole chain runs under the
		// gather, so per-chain Parallel buys nothing on top).
		d.shards = 1
		if sh, ok := relOf[start].(*relation.ShardedRelation); ok {
			d.shards = sh.NumShards()
		}
		d.workers = e.gatherWorkers(d.shards)
		return d, nil
	}
	d.parallel, d.workers = e.decideParallel(q, relOf[start].Stats().Count, true)
	return d, nil
}

// joinAlgo is chooseJoinAlgo's verdict for one edge.
type joinAlgo struct {
	algo string // "nl" | "index" | "partition"
	vec  bool
}

// chooseJoinAlgo picks the physical join operator for one similarity
// edge. Index joins keep their historical precedence (an indexable edge
// always probes the index rather than scanning); the partitioned batch
// join — only available when the pipeline vectorizes — competes on
// cost. String partitioning requires a unit-cost rule set (the length
// band |len(x)-len(y)| <= d needs every edit to cost at least one);
// vector partitioning bands by distance-to-origin under a triangular
// metric and degrades to a single partition (block kernel only) for
// non-triangular metrics like cosine.
func (e *Engine) chooseJoinAlgo(edge *SimExpr, innerField string, outerRows float64, inner relation.Stats, vectorize bool) (joinAlgo, float64, error) {
	if isVecSim(edge) {
		m, ok := metric.Lookup(edge.RuleSet)
		if !ok {
			return joinAlgo{}, 0, fmt.Errorf("query: unknown metric %q", edge.RuleSet)
		}
		triangular := metric.IsTriangular(m)
		algo, cost := "nl", vecNestedLoopJoinCost(outerRows, inner)
		// The VP-tree indexes the vec column, so vector index joins need
		// the inner join field to be vec (it always is — validateVecSim
		// pins both sides to vec) and a triangular metric.
		if triangular && innerField == "vec" {
			algo, cost = "index", vecIndexJoinCost(outerRows, inner, edge.Radius)
		}
		if vectorize {
			if pc := vecPartitionJoinCost(outerRows, inner, edge.Radius, triangular); pc < cost {
				algo, cost = "partition", pc
			}
		}
		return joinAlgo{algo: algo, vec: true}, cost, nil
	}
	rs, err := e.ruleset(edge.RuleSet)
	if err != nil {
		return joinAlgo{}, 0, err
	}
	unit := unitCost(rs)
	algo, cost := "nl", nestedLoopJoinCost(outerRows, inner, edge.Radius)
	// The BK-tree indexes seq, so index joins additionally need the
	// inner join field to be seq (and an integral radius).
	if unit && edge.Radius == float64(int(edge.Radius)) && innerField == "seq" {
		algo, cost = "index", indexJoinCost(outerRows, inner, edge.Radius)
	}
	if vectorize && unit && e.calc(edge.RuleSet) != nil {
		if pc := partitionJoinCost(outerRows, inner, edge.Radius); pc < cost {
			algo, cost = "partition", pc
		}
	}
	return joinAlgo{algo: algo}, cost, nil
}

// joinOutRowsFor dispatches the join cardinality estimate on the edge's
// domain (string selectivity vs the vector visited-fraction proxy).
func joinOutRowsFor(edge *SimExpr, outerRows float64, inner relation.Stats) float64 {
	if isVecSim(edge) {
		return vecJoinOutRows(outerRows, inner, edge.Radius)
	}
	return joinOutRows(outerRows, inner, edge.Radius)
}

// decideParallel reports whether a scan-rooted pipeline should shard
// across workers: the outer relation must be large enough and there
// must be per-tuple work to spread. A LIMIT without ORDER BY stays
// serial: the serial pipeline can stop at the limit, while the parallel
// plan must drain every shard before merging.
func (e *Engine) decideParallel(q *Query, outerRows int, hasWork bool) (bool, int) {
	workers, minRows := e.parallelConfig()
	limitStopsEarly := q.Limit > 0 && q.Order == OrderNone
	if workers > 1 && outerRows >= minRows && hasWork && !limitStopsEarly {
		return true, workers
	}
	return false, 1
}

// buildPlan constructs the operator tree for a query under a decision.
// It performs no validation and no costing: the decision is trusted, so
// a cached decision turns text into an executable plan with nothing but
// map lookups and tree construction.
//
// Every execution reads through MVCC snapshots taken here, one per
// distinct relation (self-joins share a snapshot), so the query sees a
// consistent version of each relation while concurrent commits land.
// Consistency is per relation: snapshots of different relations are
// taken at slightly different instants, so a query joining two
// relations can observe a multi-relation Store.Commit half-applied
// (epochs are per relation; see DESIGN.md). When the decision uses an
// index the shared online-maintained structure is ensured *before*
// snapshotting, so the snapshot's head carries it and no per-query
// build happens.
func (e *Engine) buildPlan(q *Query, d *planDecision) (*compiledPlan, error) {
	tabs, err := e.resolveFrom(q)
	if err != nil {
		return nil, err
	}
	if d.kind == accessJoin && d.shardJoin {
		return e.buildShardedJoin(q, d, tabs)
	}
	if d.shards > 0 {
		return e.buildShardedPlan(q, d, tabs[0])
	}
	rels := make([]*relation.Relation, len(tabs))
	for i, t := range tabs {
		r, ok := t.(*relation.Relation)
		if !ok {
			// The table was re-registered with a sharded layout after this
			// decision was made; Execute re-plans on this error.
			return nil, fmt.Errorf("query: stale plan: relation %q is now sharded", q.From[i].Name)
		}
		rels[i] = r
	}
	// Ensure shared index structures ahead of the snapshots.
	switch d.kind {
	case accessRange:
		switch d.via {
		case "trie":
			rels[0].Trie()
		case "vptree":
			if m := vecRangeMetric(q.Where); m != nil {
				rels[0].VPTree(m)
			}
		default:
			rels[0].BKTree()
		}
	case accessNearest:
		switch d.via {
		case "bktree":
			rels[0].BKTree()
		case "vptree":
			if ne, ok := q.Where.(NearestExpr); ok {
				if m, ok := metric.Lookup(ne.RuleSet); ok {
					rels[0].VPTree(m)
				}
			}
		}
	case accessJoin:
		relOfJ := map[string]relation.Table{}
		for i, ref := range q.From {
			relOfJ[ref.Alias] = rels[i]
		}
		edges, _ := extractJoinSims(q.Where, relOfJ)
		for i, ref := range q.From {
			for _, step := range d.steps {
				if step.algo != "index" || step.alias != ref.Alias {
					continue
				}
				if step.vec {
					if step.edge >= 0 && step.edge < len(edges) {
						if m, ok := metric.Lookup(edges[step.edge].RuleSet); ok {
							rels[i].VPTree(m)
						}
					}
				} else {
					rels[i].BKTree()
				}
			}
		}
	}
	snaps := make(map[*relation.Relation]*relation.Snapshot, len(rels))
	snapOf := func(r *relation.Relation) *relation.Snapshot {
		if s, ok := snaps[r]; ok {
			return s
		}
		s := r.Snapshot()
		snaps[r] = s
		return s
	}
	ctx := &execCtx{eng: e, traced: q.Analyze || e.tracing.Load()}
	cp := &compiledPlan{ctx: ctx, columns: projectColumns(q), kernel: d.kernel}
	if d.vectorize {
		return e.buildBatchTree(q, d, rels, snapOf, ctx, cp)
	}

	var access Operator
	st := rels[0].Stats()
	switch d.kind {
	case accessNearest:
		ne := q.Where.(NearestExpr)
		if isVecNearest(&ne) {
			access = tr(ctx, &vecNearestKOp{
				ctx: ctx, snap: snapOf(rels[0]), alias: q.From[0].Alias,
				via: d.via, target: ne.Target.Vec, k: ne.K, metricName: ne.RuleSet,
			}, estNearestRows(st.VecCount, ne.K), d.kernel)
		} else {
			access = tr(ctx, &nearestKOp{
				ctx: ctx, snap: snapOf(rels[0]), alias: q.From[0].Alias,
				via: d.via, target: ne.Target.Lit, k: ne.K, ruleSet: ne.RuleSet,
			}, estNearestRows(st.Count, ne.K), d.kernel)
		}
	case accessRange:
		if d.via == "vptree" {
			access, err = e.buildVecRange(ctx, q, snapOf(rels[0]), st, d)
		} else {
			access, err = e.buildRange(ctx, q, snapOf(rels[0]), st, d)
		}
	case accessScan:
		access = e.buildScan(ctx, q, snapOf(rels[0]), st, d)
	case accessJoin:
		access, err = e.buildJoin(ctx, q, rels, snapOf, d)
	default:
		err = fmt.Errorf("query: unknown access kind %d", d.kind)
	}
	if err != nil {
		return nil, err
	}

	top := access
	if q.Order == OrderDesc {
		top = tr(ctx, &orderByDistOp{child: top, desc: true}, estOf(top), "")
	} else if q.Order == OrderAsc {
		top = tr(ctx, &orderByDistOp{child: top}, estOf(top), "")
	}
	top = tr(ctx, &projectOp{ctx: ctx, q: q, child: top}, estOf(top), "")
	if q.Limit > 0 {
		top = tr(ctx, &limitOp{child: top, n: q.Limit}, estLimitRows(q.Limit, estOf(top)), "")
	}
	cp.root = top
	return cp, nil
}

// buildRange reconstructs the IndexRange pipeline; extraction is
// deterministic, so the same conjunct the decision was made for is
// found again.
func (e *Engine) buildRange(ctx *execCtx, q *Query, snap *relation.Snapshot, st relation.Stats, d *planDecision) (Operator, error) {
	sim, residual := extractRangeSim(q.Where, e.rangeIndexable)
	if sim == nil {
		return nil, fmt.Errorf("query: stale plan: no indexable conjunct")
	}
	est := estRangeRows(st, sim.Radius)
	var op Operator = tr(ctx, &indexRangeOp{
		ctx: ctx, snap: snap, alias: q.From[0].Alias, via: d.via,
		target: sim.Target.Lit, radius: int(sim.Radius), ruleSet: sim.RuleSet,
	}, est, d.kernel)
	if res := simplifyExpr(residual); !isTrivial(res) {
		op = tr(ctx, &filterOp{ctx: ctx, child: op, pred: res},
			estFilterRows(st, res, est), e.filterKernel(res))
	}
	return op, nil
}

// buildScan constructs the (possibly parallel) scan+filter pipeline.
func (e *Engine) buildScan(ctx *execCtx, q *Query, snap *relation.Snapshot, st relation.Stats, d *planDecision) Operator {
	alias := q.From[0].Alias
	pred := simplifyExpr(q.Where)
	build := func(shard, shards int) Operator {
		sc := newScanOp(ctx, snap, alias)
		sc.shard, sc.shards = shard, shards
		scanEst := float64(st.Count) / float64(shards)
		var op Operator = tr(ctx, sc, scanEst, "")
		if !isTrivial(pred) {
			op = tr(ctx, &filterOp{ctx: ctx, child: op, pred: pred},
				estFilterRows(st, pred, scanEst), e.filterKernel(pred))
		}
		return op
	}
	return wrapParallel(ctx, d, build)
}

// buildJoin reconstructs the decided join chain. Edges are recovered by
// position from extractJoinSims' deterministic output; edges not used
// by any step (cycles) become residual predicates — they must still
// hold on each output binding.
func (e *Engine) buildJoin(ctx *execCtx, q *Query, rels []*relation.Relation, snapOf func(*relation.Relation) *relation.Snapshot, d *planDecision) (Operator, error) {
	relOf := map[string]relation.Table{}
	relPlain := map[string]*relation.Relation{}
	for i, ref := range q.From {
		relOf[ref.Alias] = rels[i]
		relPlain[ref.Alias] = rels[i]
	}
	edges, residual := extractJoinSims(q.Where, relOf)
	used := make([]bool, len(edges))
	for _, step := range d.steps {
		if step.edge < 0 || step.edge >= len(edges) {
			return nil, fmt.Errorf("query: stale plan: join edge %d out of range", step.edge)
		}
		used[step.edge] = true
	}
	for i, edge := range edges {
		if !used[i] {
			residual = AndExpr{L: residual, R: *edge}
		}
	}

	pred := simplifyExpr(residual)
	steps := d.steps
	// Resolve snapshots eagerly: the build closure runs concurrently in
	// parallel shard workers and must not touch the snapshot map.
	startSnap := snapOf(relPlain[d.start])
	startStats := relPlain[d.start].Stats()
	stepSnaps := make([]*relation.Snapshot, len(steps))
	stepStats := make([]relation.Stats, len(steps))
	stepMetrics := make([]metric.Distance, len(steps))
	for i, step := range steps {
		stepSnaps[i] = snapOf(relPlain[step.alias])
		stepStats[i] = relPlain[step.alias].Stats()
		if step.vec {
			m, ok := metric.Lookup(edges[step.edge].RuleSet)
			if !ok {
				return nil, fmt.Errorf("query: unknown metric %q", edges[step.edge].RuleSet)
			}
			stepMetrics[i] = m
		}
	}
	// In a vectorized plan the join chain itself stays row-at-a-time,
	// but the START scan — opened once per query — reads through a
	// batch cursor behind a BatchToRow adapter, the other direction of
	// the adapter pair. Nested-loop INNER scans stay plain row scans:
	// they are re-opened once per outer binding, so adapter and block
	// overhead there would multiply by the outer cardinality with
	// nothing to amortize it.
	size := e.batchLeafSize(q)
	startScan := func(shard, shards int) Operator {
		scanEst := float64(startStats.Count) / float64(shards)
		if d.vectorize {
			bs := newBatchScanOp(ctx, startSnap, d.start, size)
			bs.shard, bs.shards = shard, shards
			return &batchToRowOp{child: trB(ctx, bs, scanEst, "")}
		}
		sc := newScanOp(ctx, startSnap, d.start)
		sc.shard, sc.shards = shard, shards
		return tr(ctx, sc, scanEst, "")
	}
	build := func(shard, shards int) Operator {
		op := startScan(shard, shards)
		// The chain estimate follows the decided join order with the same
		// joinOutRowsFor formula decideJoin costed with, scaled to one
		// shard.
		cur := float64(startStats.Count) / float64(shards)
		for i, step := range steps {
			outerEst := cur
			cur = joinOutRowsFor(edges[step.edge], cur, stepStats[i])
			if step.algo == "index" {
				op = tr(ctx, &indexJoinOp{
					ctx: ctx, outer: op, snaps: []*relation.Snapshot{stepSnaps[i]}, alias: step.alias,
					probeField: step.probeField, sim: edges[step.edge], vec: step.vec, m: stepMetrics[i],
				}, cur, d.kernel)
			} else {
				// "nl" — and, defensively, a "partition" step reaching the
				// row build (partition is a batch-only operator). The inner
				// scan is span-wrapped so ANALYZE attributes its candidates
				// and re-open wall time; across re-opens the wrapper
				// accumulates, so the estimate is outer rows x inner rows.
				inner := tr(ctx, newScanOp(ctx, stepSnaps[i], step.alias),
					outerEst*float64(stepStats[i].Count), "")
				op = tr(ctx, &nestedLoopJoinOp{
					ctx: ctx, outer: op, inner: inner, sim: edges[step.edge],
				}, cur, d.kernel)
			}
		}
		if !isTrivial(pred) {
			op = tr(ctx, &filterOp{ctx: ctx, child: op, pred: pred},
				estFilterRows(startStats, pred, cur), e.filterKernel(pred))
		}
		return op
	}
	return wrapParallel(ctx, d, build), nil
}

// wrapParallel applies the decision's parallelism choice to a pipeline
// factory. On a traced plan the per-shard pipelines are built eagerly
// so the span extractor can visit the instances that actually executed
// rather than the throwaway template.
func wrapParallel(ctx *execCtx, d *planDecision, build func(shard, shards int) Operator) Operator {
	if d.parallel && d.workers > 1 {
		p := &parallelOp{ctx: ctx, workers: d.workers, build: build}
		if ctx.traced {
			p.prebuilt = make([]Operator, d.workers)
			for i := range p.prebuilt {
				p.prebuilt[i] = build(i, d.workers)
			}
			p.template = p.prebuilt[0]
		} else {
			p.template = build(0, d.workers)
		}
		return tr(ctx, p, -1, "")
	}
	return build(0, 1)
}

// validateExpr checks rule-set names and pattern syntax eagerly so bad
// queries fail before execution.
func (e *Engine) validateExpr(ex Expr) error {
	switch ex := ex.(type) {
	case nil:
		return nil
	case AndExpr:
		if err := e.validateExpr(ex.L); err != nil {
			return err
		}
		return e.validateExpr(ex.R)
	case OrExpr:
		if err := e.validateExpr(ex.L); err != nil {
			return err
		}
		return e.validateExpr(ex.R)
	case NotExpr:
		return e.validateExpr(ex.E)
	case SimExpr:
		if isVecSim(&ex) {
			return validateVecSim(&ex)
		}
		if _, err := e.ruleset(ex.RuleSet); err != nil {
			return err
		}
		if ex.Pattern {
			if _, err := e.compilePattern(ex.Target.Lit); err != nil {
				return err
			}
		}
		return nil
	case NearestExpr:
		if isVecNearest(&ex) {
			return validateVecNearest(&ex)
		}
		_, err := e.ruleset(ex.RuleSet)
		return err
	default:
		return nil
	}
}

// validateVecSim checks the shape of a vector similarity conjunct: the
// field must be the vec column, the target a vector literal or — for a
// distance join — another alias's vec column, PATTERN does not apply,
// and USING must name a registered metric.
func validateVecSim(ex *SimExpr) error {
	if ex.Pattern {
		return fmt.Errorf("query: PATTERN does not apply to the vec column")
	}
	if ex.Field.Name != "vec" {
		return fmt.Errorf("query: a vector literal target requires the vec column, not %q", ex.Field.Name)
	}
	// An unbound parameter target is validated again after binding, when
	// the string argument has been parsed into a vector literal.
	if !ex.Target.IsVec && ex.Target.Param == nil {
		if !ex.Target.IsLit && ex.Target.Field.Name == "vec" &&
			ex.Target.Field.Table != "" && ex.Target.Field.Table != ex.Field.Table {
			// A vec-vec join edge: dist(a.vec, b.vec) <= r USING metric.
			return validateMetricName(ex.RuleSet)
		}
		return fmt.Errorf("query: vec similarity requires a vector literal or a vec field target")
	}
	return validateMetricName(ex.RuleSet)
}

// validateVecNearest is validateVecSim for the NEAREST form.
func validateVecNearest(ex *NearestExpr) error {
	if ex.Field.Name != "vec" {
		return fmt.Errorf("query: a vector literal target requires the vec column, not %q", ex.Field.Name)
	}
	if !ex.Target.IsVec && ex.Target.Param == nil {
		return fmt.Errorf("query: vec NEAREST requires a vector literal target")
	}
	return validateMetricName(ex.RuleSet)
}

// validateMetricName resolves a USING name against the metric registry.
func validateMetricName(name string) error {
	if _, ok := metric.Lookup(name); !ok {
		return fmt.Errorf("query: unknown metric %q (registered: %s)", name, strings.Join(metric.Names(), ", "))
	}
	return nil
}

// exprHasSim reports whether the predicate tree contains a similarity
// predicate (and therefore produces a distance to order by).
func exprHasSim(ex Expr) bool {
	switch ex := ex.(type) {
	case SimExpr, NearestExpr:
		return true
	case AndExpr:
		return exprHasSim(ex.L) || exprHasSim(ex.R)
	case OrExpr:
		return exprHasSim(ex.L) || exprHasSim(ex.R)
	case NotExpr:
		return exprHasSim(ex.E)
	}
	return false
}

// isTrivial reports whether a residual predicate can be dropped.
func isTrivial(ex Expr) bool {
	if ex == nil {
		return true
	}
	_, ok := ex.(litTrue)
	return ok
}

// simplifyExpr removes the planner's TRUE placeholders from AND chains
// so EXPLAIN output stays readable.
func simplifyExpr(ex Expr) Expr {
	switch ex := ex.(type) {
	case AndExpr:
		l, r := simplifyExpr(ex.L), simplifyExpr(ex.R)
		if isTrivial(l) {
			return r
		}
		if isTrivial(r) {
			return l
		}
		return AndExpr{L: l, R: r}
	case OrExpr:
		return OrExpr{L: simplifyExpr(ex.L), R: simplifyExpr(ex.R)}
	case NotExpr:
		return NotExpr{E: simplifyExpr(ex.E)}
	}
	return ex
}

// extractRangeSim walks the top-level AND chain for a SimExpr with a
// literal, non-pattern target that the caller's predicate accepts;
// returns it and the residual expression with that conjunct replaced
// by TRUE. Non-qualifying sim conjuncts are skipped, not terminal, so
// an indexable conjunct is found wherever it sits in the chain.
func extractRangeSim(ex Expr, ok func(*SimExpr) bool) (*SimExpr, Expr) {
	switch ex := ex.(type) {
	case SimExpr:
		if ex.Target.IsLit && !ex.Pattern && ok(&ex) {
			return &ex, litTrue{}
		}
	case AndExpr:
		if s, rl := extractRangeSim(ex.L, ok); s != nil {
			return s, AndExpr{L: rl, R: ex.R}
		}
		if s, rr := extractRangeSim(ex.R, ok); s != nil {
			return s, AndExpr{L: ex.L, R: rr}
		}
	}
	return nil, ex
}

// extractVecRangeSim walks the top-level AND chain for a vector
// similarity conjunct (vec against a vector literal); returns it and
// the residual with that conjunct replaced by TRUE.
func extractVecRangeSim(ex Expr) (*SimExpr, Expr) {
	switch ex := ex.(type) {
	case SimExpr:
		if ex.Field.Name == "vec" && ex.Target.IsVec && !ex.Pattern {
			return &ex, litTrue{}
		}
	case AndExpr:
		if s, rl := extractVecRangeSim(ex.L); s != nil {
			return s, AndExpr{L: rl, R: ex.R}
		}
		if s, rr := extractVecRangeSim(ex.R); s != nil {
			return s, AndExpr{L: ex.L, R: rr}
		}
	}
	return nil, ex
}

// vecRangeMetric resolves the metric of the predicate's vector range
// conjunct, nil when there is none.
func vecRangeMetric(ex Expr) metric.Distance {
	sim, _ := extractVecRangeSim(ex)
	if sim == nil {
		return nil
	}
	m, ok := metric.Lookup(sim.RuleSet)
	if !ok {
		return nil
	}
	return m
}

// firstJoinSim returns the query's primary join conjunct — the first
// cross-alias SimExpr in conjunct order — for advisory classification
// (kernelFor). extractJoinSims is the authoritative edge extractor; it
// additionally checks both aliases resolve to known relations.
func firstJoinSim(ex Expr) *SimExpr {
	switch ex := ex.(type) {
	case SimExpr:
		if !ex.Target.IsLit && !ex.Target.IsVec && !ex.Pattern &&
			ex.Field.Table != "" && ex.Target.Field.Table != "" &&
			ex.Field.Table != ex.Target.Field.Table {
			return &ex
		}
	case AndExpr:
		if s := firstJoinSim(ex.L); s != nil {
			return s
		}
		return firstJoinSim(ex.R)
	}
	return nil
}

// extractJoinSims collects every top-level SimExpr conjunct whose field
// and target reference two different known aliases; the residual is the
// predicate with those conjuncts replaced by TRUE.
func extractJoinSims(ex Expr, known map[string]relation.Table) ([]*SimExpr, Expr) {
	switch ex := ex.(type) {
	case SimExpr:
		if !ex.Target.IsLit && !ex.Pattern {
			ft, tt := ex.Field.Table, ex.Target.Field.Table
			if ft != tt && known[ft] != nil && known[tt] != nil {
				return []*SimExpr{&ex}, litTrue{}
			}
		}
	case AndExpr:
		ls, rl := extractJoinSims(ex.L, known)
		rs, rr := extractJoinSims(ex.R, known)
		if len(ls)+len(rs) > 0 {
			return append(ls, rs...), AndExpr{L: rl, R: rr}
		}
	}
	return nil, ex
}
