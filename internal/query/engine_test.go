package query

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/rewrite"
)

// testEngine builds a small word database with unit edits and a weighted
// rule set registered.
func testEngine(t *testing.T) *Engine {
	t.Helper()
	cat := relation.NewCatalog()
	words := relation.New("words")
	for _, w := range []struct {
		s    string
		lang string
	}{
		{"color", "en"}, {"colour", "uk"}, {"colon", "en"}, {"cool", "en"},
		{"dolor", "la"}, {"velour", "fr"}, {"clamor", "en"},
	} {
		words.Insert(w.s, map[string]string{"lang": w.lang})
	}
	cat.Add(words)

	e := NewEngine(cat)
	if err := e.RegisterRuleSet(rewrite.UnitEdits("abcdefghijklmnopqrstuvwxyz")); err != nil {
		t.Fatal(err)
	}
	weighted := rewrite.MustRuleSet("cheap_vowels", []rewrite.Rule{
		rewrite.Subst('o', 'u', 0.1), rewrite.Subst('u', 'o', 0.1),
		rewrite.Insert('u', 0.2), rewrite.Delete('u', 0.2),
	})
	if err := e.RegisterRuleSet(weighted); err != nil {
		t.Fatal(err)
	}
	swap := rewrite.MustRuleSet("swaps", []rewrite.Rule{
		rewrite.Swap('o', 'l', 1), rewrite.Swap('l', 'o', 1),
	})
	if err := e.RegisterRuleSet(swap); err != nil {
		t.Fatal(err)
	}
	// all-one computes the same distances as unit edits on these words
	// but is asymmetric (extra ε->0 rule), forcing the scan-based
	// nearest path.
	allOne := append([]rewrite.Rule{rewrite.Insert('0', 1)},
		rewrite.UnitEdits("abcdefghijklmnopqrstuvwxyz").Rules()...)
	if err := e.RegisterRuleSet(rewrite.MustRuleSet("all-one", allOne)); err != nil {
		t.Fatal(err)
	}
	return e
}

func seqsOf(res *Result) []string {
	var out []string
	for _, row := range res.Rows {
		out = append(out, row[1])
	}
	sort.Strings(out)
	return out
}

func TestRangeQueryUsesIndex(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !strings.Contains(res.Plan, "IndexRange") {
		t.Errorf("plan = %q, want IndexRange", res.Plan)
	}
	got := seqsOf(res)
	want := []string{"color", "colon", "colour", "dolor"}
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("answers = %v, want %v", got, want)
	}
}

func TestRangeQueryMatchesScan(t *testing.T) {
	e := testEngine(t)
	idx, err := e.Execute(`SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 2 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	// Force a scan by OR-ing with a false predicate (not a top-level
	// conjunct anymore).
	scan, err := e.Execute(`SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 2 USING unit-edits OR seq = "zzz"`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scan.Plan, "Scan") {
		t.Errorf("plan = %q, want Scan", scan.Plan)
	}
	a, b := seqsOf(idx), seqsOf(scan)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("index answers %v != scan answers %v", a, b)
	}
}

func TestWeightedRangeQuery(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 0.3 USING cheap_vowels`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "Scan") {
		t.Errorf("plan = %q, want Scan for weighted rule set", res.Plan)
	}
	got := seqsOf(res)
	// colour -> color: delete u (0.2). color itself: 0.
	want := []string{"color", "colour"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("answers = %v, want %v", got, want)
	}
}

func TestGeneralRuleSetQuery(t *testing.T) {
	e := testEngine(t)
	// swaps can turn "cool" into "colo"? c-o-o-l: swap(o,l) at pos 2
	// gives "colo"... target "colo" not in the relation; use an
	// attainable pair: "dolor" with swaps of o,l: "dloor"? Instead
	// verify that identical strings match at radius 0.
	res, err := e.Execute(`SELECT * FROM words WHERE seq SIMILAR TO "cool" WITHIN 0 USING swaps`)
	if err != nil {
		t.Fatal(err)
	}
	got := seqsOf(res)
	if len(got) != 1 || got[0] != "cool" {
		t.Errorf("answers = %v, want [cool]", got)
	}
}

func TestAttributeFilter(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 2 USING unit-edits AND lang = "en"`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[1] == "colour" || row[1] == "velour" {
			t.Errorf("non-en word %q passed the filter", row[1])
		}
	}
	if len(res.Rows) == 0 {
		t.Error("no rows")
	}
	if !strings.Contains(res.Plan, "Filter") {
		t.Errorf("plan %q lacks Filter", res.Plan)
	}
}

func TestProjection(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`SELECT seq, lang, dist FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 || res.Columns[0] != "seq" || res.Columns[2] != "dist" {
		t.Errorf("Columns = %v", res.Columns)
	}
	for _, row := range res.Rows {
		if row[0] == "color" && row[2] != "0" {
			t.Errorf("dist(color) = %q", row[2])
		}
		if row[0] == "colour" && row[2] != "1" {
			t.Errorf("dist(colour) = %q", row[2])
		}
	}
}

func TestPatternQuery(t *testing.T) {
	e := testEngine(t)
	// Words within 1 edit of the language col(o|u)+r.
	res, err := e.Execute(`SELECT * FROM words WHERE seq SIMILAR TO PATTERN "col(o|u)+r" WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	got := seqsOf(res)
	// color(0), colour(0), colon(1: n->r), dolor(1: d->c), clamor? c-l-a-m-o-r vs colour... >1.
	want := []string{"colon", "color", "colour", "dolor"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("answers = %v, want %v", got, want)
	}
}

func TestPatternRequiresEditLike(t *testing.T) {
	e := testEngine(t)
	_, err := e.Execute(`SELECT * FROM words WHERE seq SIMILAR TO PATTERN "a*" WITHIN 1 USING swaps`)
	if err == nil {
		t.Fatal("pattern query with non-edit-like rule set succeeded")
	}
}

func TestNearestQuery(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`SELECT * FROM words WHERE seq NEAREST 3 TO "color" USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "NearestK") {
		t.Errorf("plan = %q", res.Plan)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if res.Rows[0][1] != "color" || res.Rows[0][2] != "0" {
		t.Errorf("nearest[0] = %v", res.Rows[0])
	}
	// Next nearest are colon/colour/dolor at distance 1.
	if res.Rows[1][2] != "1" || res.Rows[2][2] != "1" {
		t.Errorf("nearest dists = %v %v", res.Rows[1], res.Rows[2])
	}
}

func TestNearestScanWeighted(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`SELECT seq, dist FROM words WHERE seq NEAREST 2 TO "color" USING cheap_vowels`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "via scan") {
		t.Errorf("plan = %q", res.Plan)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "color" || res.Rows[1][0] != "colour" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[1][1] != "0.2" {
		t.Errorf("dist(colour) = %q, want 0.2", res.Rows[1][1])
	}
}

func TestJoinIndexVsNested(t *testing.T) {
	e := testEngine(t)
	idx, err := e.Execute(`SELECT a.seq, b.seq FROM words a, words b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING unit-edits AND a.id != b.id`)
	if err != nil {
		t.Fatal(err)
	}
	// Vectorized unit-cost joins run the length-partitioned batch join;
	// in row mode (no partition operator) the same join probes the
	// BK-tree. Both must agree with each other byte for byte.
	if !strings.Contains(idx.Plan, "PartitionJoin") {
		t.Errorf("plan = %q", idx.Plan)
	}
	e.SetBatchSize(0)
	rowIdx, err := e.Execute(`SELECT a.seq, b.seq FROM words a, words b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING unit-edits AND a.id != b.id`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rowIdx.Plan, "IndexJoin") {
		t.Errorf("row plan = %q", rowIdx.Plan)
	}
	if !reflect.DeepEqual(rowIdx.Rows, idx.Rows) {
		t.Errorf("row join rows = %v, batch join rows = %v", rowIdx.Rows, idx.Rows)
	}
	e.SetBatchSize(256)
	nested, err := e.Execute(`SELECT a.seq, b.seq FROM words a, words b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING cheap_vowels AND a.id != b.id`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nested.Plan, "NestedLoopJoin") {
		t.Errorf("plan = %q", nested.Plan)
	}
	// Index join at radius 1 with unit edits: color~colour? distance 1
	// yes; color~colon 1; color~dolor 1; colour~velour 2 no.
	found := false
	for _, row := range idx.Rows {
		if row[0] == "color" && row[1] == "colour" {
			found = true
		}
		if row[0] == row[1] {
			t.Errorf("self pair %v despite id != id", row)
		}
	}
	if !found {
		t.Error("color~colour missing from join")
	}
	// Join results are symmetric: each unordered pair appears twice.
	pairs := map[string]int{}
	for _, row := range idx.Rows {
		pairs[row[0]+"|"+row[1]]++
	}
	for key, n := range pairs {
		parts := strings.SplitN(key, "|", 2)
		if pairs[parts[1]+"|"+parts[0]] != n {
			t.Errorf("pair %s not mirrored", key)
		}
	}
}

func TestExplain(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`EXPLAIN SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0], "IndexRange") {
		t.Errorf("EXPLAIN = %v", res.Rows)
	}
}

func TestLimit(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`SELECT * FROM words LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestSelectAllNoWhere(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`SELECT * FROM words`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Errorf("rows = %d, want 7", len(res.Rows))
	}
}

func TestErrors(t *testing.T) {
	e := testEngine(t)
	for _, src := range []string{
		`SELECT * FROM nosuch`,
		`SELECT * FROM words WHERE seq SIMILAR TO "x" WITHIN 1 USING nosuchrules`,
		`SELECT * FROM words WHERE seq SIMILAR TO PATTERN "(((" WITHIN 1 USING unit-edits`,
		`SELECT * FROM words a, words a WHERE a.seq SIMILAR TO a.seq WITHIN 1 USING unit-edits`,
		`SELECT * FROM words a, words b WHERE a.lang = b.lang`,
		`SELECT * FROM words WHERE seq NEAREST 3 TO "x" USING swaps`,
		`SELECT a.seq FROM words WHERE a.seq = "x"`,
	} {
		if _, err := e.Execute(src); err == nil {
			t.Errorf("Execute(%q) succeeded, want error", src)
		}
	}
}

func TestRuleSetNames(t *testing.T) {
	e := testEngine(t)
	names := e.RuleSets()
	if len(names) != 4 {
		t.Fatalf("RuleSets = %v", names)
	}
	if names[0] != "all-one" || names[1] != "cheap_vowels" {
		t.Errorf("sorted names = %v", names)
	}
}

func TestDistColumnUnavailable(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Execute(`SELECT dist FROM words`); err == nil {
		t.Error("dist without similarity predicate succeeded")
	}
}

func TestUnknownAttributeIsEmpty(t *testing.T) {
	// Relations are schemaless beyond id/seq: unknown attributes project
	// as the empty string rather than failing.
	e := testEngine(t)
	res, err := e.Execute(`SELECT nosuchcol FROM words LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestNearestKMatchesScanOrder(t *testing.T) {
	// BK-tree kNN must return the same distance multiset as a scan.
	e := testEngine(t)
	bkRes, err := e.Execute(`SELECT dist FROM words WHERE seq NEAREST 5 TO "color" USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	// The weighted path is a verified scan; with unit costs they agree.
	scanRes, err := e.Execute(`SELECT dist FROM words WHERE seq NEAREST 5 TO "color" USING all-one`)
	if err != nil {
		t.Fatal(err)
	}
	if len(bkRes.Rows) != len(scanRes.Rows) {
		t.Fatalf("bk %d rows, scan %d rows", len(bkRes.Rows), len(scanRes.Rows))
	}
	for i := range bkRes.Rows {
		if bkRes.Rows[i][0] != scanRes.Rows[i][0] {
			t.Errorf("dist[%d]: bk %q scan %q", i, bkRes.Rows[i][0], scanRes.Rows[i][0])
		}
	}
}

func TestNotPredicate(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`SELECT * FROM words WHERE NOT lang = "en"`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[1] == "color" || row[1] == "colon" {
			t.Errorf("en word %q passed NOT filter", row[1])
		}
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(res.Rows))
	}
}

// TestRuleSetNameWithDash exercises registration of the default
// "unit-edits" name, which is not an identifier in the query grammar —
// engine must accept it when registered under an identifier-safe name.
func TestRuleSetNameLookup(t *testing.T) {
	cat := relation.NewCatalog()
	cat.Add(relation.New("r"))
	e := NewEngine(cat)
	rs := rewrite.MustRuleSet("edits", rewrite.UnitEdits("ab").Rules())
	if err := e.RegisterRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(`SELECT * FROM r WHERE seq SIMILAR TO "a" WITHIN 1 USING edits`); err != nil {
		t.Fatalf("identifier rule-set name: %v", err)
	}
}
