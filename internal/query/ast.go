package query

import (
	"fmt"
	"strings"

	"repro/internal/metric"
)

// Query is the root of a parsed statement.
type Query struct {
	Explain bool
	Analyze bool // EXPLAIN ANALYZE: execute, then render actuals

	Select     []Column   // empty means '*'
	From       []TableRef // one (range query) or several (N-way join)
	Where      Expr       // may be nil
	Order      OrderDir   // ORDER BY dist direction
	Limit      int        // 0 means unlimited
	LimitParam *ParamRef  // LIMIT ? — set instead of Limit until bound
	Params     []ParamRef // every parameter, in order of appearance
}

// ParamRef is one occurrence of a bind parameter: positional ('?',
// addressed by Idx) or named (':name', addressed by Name with Idx -1).
// A statement may use one style or the other, not both.
type ParamRef struct {
	Name string // named parameter; empty for positional
	Idx  int    // 0-based position for positional; -1 for named
}

// String renders the parameter in the concrete syntax.
func (p ParamRef) String() string {
	if p.Name != "" {
		return ":" + p.Name
	}
	return "?"
}

// OrderDir is the ORDER BY dist direction.
type OrderDir int

// ORDER BY directions.
const (
	OrderNone OrderDir = iota
	OrderAsc
	OrderDesc
)

// Column is a projected column, optionally qualified by a table alias.
type Column struct {
	Table string // alias, may be empty
	Name  string // "id", "seq", "dist" or an attribute
}

// String renders the column.
func (c Column) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// TableRef names a relation with an optional alias.
type TableRef struct {
	Name  string
	Alias string // defaults to Name
}

// Expr is a boolean predicate tree over one tuple binding (or a pair of
// bindings for joins).
type Expr interface {
	fmt.Stringer
	isExpr()
}

// AndExpr is conjunction.
type AndExpr struct{ L, R Expr }

// OrExpr is disjunction.
type OrExpr struct{ L, R Expr }

// NotExpr is negation.
type NotExpr struct{ E Expr }

// CmpExpr compares an operand against another with = or !=.
type CmpExpr struct {
	L, R Operand
	Neq  bool
}

// SimExpr is the framework's similarity predicate
// "field SIMILAR TO target WITHIN radius USING ruleset": the field's
// sequence can be transformed into the target (or into a member of the
// target pattern) at cost at most radius.
type SimExpr struct {
	Field       FieldRef
	Target      Operand // string literal, field reference, or pattern
	Pattern     bool    // target is a pattern expression (string literal)
	Radius      float64
	RadiusParam *ParamRef // WITHIN ? — set instead of Radius until bound
	RuleSet     string
}

// NearestExpr selects the K tuples whose sequences are cheapest to
// transform into the target.
type NearestExpr struct {
	Field   FieldRef
	Target  Operand
	K       int
	RuleSet string
}

func (AndExpr) isExpr()     {}
func (OrExpr) isExpr()      {}
func (NotExpr) isExpr()     {}
func (CmpExpr) isExpr()     {}
func (SimExpr) isExpr()     {}
func (NearestExpr) isExpr() {}

// String renders the expression in the concrete syntax.
func (e AndExpr) String() string { return fmt.Sprintf("(%s AND %s)", e.L, e.R) }

// String renders the expression in the concrete syntax.
func (e OrExpr) String() string { return fmt.Sprintf("(%s OR %s)", e.L, e.R) }

// String renders the expression in the concrete syntax.
func (e NotExpr) String() string { return fmt.Sprintf("NOT %s", e.E) }

// String renders the expression in the concrete syntax.
func (e CmpExpr) String() string {
	op := "="
	if e.Neq {
		op = "!="
	}
	return fmt.Sprintf("%s %s %s", e.L, op, e.R)
}

// String renders the expression in the concrete syntax.
func (e SimExpr) String() string {
	pat := ""
	if e.Pattern {
		pat = "PATTERN "
	}
	radius := fmt.Sprintf("%g", e.Radius)
	if e.RadiusParam != nil {
		radius = e.RadiusParam.String()
	}
	return fmt.Sprintf("%s SIMILAR TO %s%s WITHIN %s USING %s", e.Field, pat, e.Target, radius, e.RuleSet)
}

// String renders the expression in the concrete syntax.
func (e NearestExpr) String() string {
	return fmt.Sprintf("%s NEAREST %d TO %s USING %s", e.Field, e.K, e.Target, e.RuleSet)
}

// Operand is a string literal, a vector literal, a field reference, or
// an unbound parameter (which binds to a literal at execution time; a
// string bound against the vec column is parsed as a vector literal).
type Operand struct {
	Lit   string
	Vec   metric.Vector // vector literal ([0.1, -2, ...])
	Field FieldRef
	IsLit bool
	IsVec bool
	Param *ParamRef // set until bound; binding replaces it with a literal
}

// String renders the operand.
func (o Operand) String() string {
	if o.Param != nil {
		return o.Param.String()
	}
	if o.IsVec {
		return metric.Format(o.Vec)
	}
	if o.IsLit {
		return quoteLit(o.Lit)
	}
	return o.Field.String()
}

// quoteLit renders a string literal with exactly the lexer's escape
// rules: a backslash escapes the next byte, so only '"' and '\\' need
// escaping and every other byte is emitted raw. (fmt's %q would escape
// control bytes as \xNN, which the lexer does not interpret — the
// rendering would not round-trip.)
func quoteLit(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('"')
	return b.String()
}

// FieldRef names a column, optionally qualified.
type FieldRef struct {
	Table string
	Name  string
}

// String renders the reference.
func (f FieldRef) String() string {
	if f.Table == "" {
		return f.Name
	}
	return f.Table + "." + f.Name
}

// String renders the whole query.
func (q *Query) String() string {
	var b strings.Builder
	if q.Explain {
		if q.Analyze {
			b.WriteString("EXPLAIN ANALYZE ")
		} else {
			b.WriteString("EXPLAIN ")
		}
	}
	b.WriteString("SELECT ")
	if len(q.Select) == 0 {
		b.WriteString("*")
	} else {
		for i, c := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	b.WriteString(" FROM ")
	for i, t := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Name)
		if t.Alias != t.Name {
			b.WriteString(" " + t.Alias)
		}
	}
	if q.Where != nil {
		b.WriteString(" WHERE " + q.Where.String())
	}
	switch q.Order {
	case OrderAsc:
		b.WriteString(" ORDER BY dist")
	case OrderDesc:
		b.WriteString(" ORDER BY dist DESC")
	}
	if q.LimitParam != nil {
		b.WriteString(" LIMIT " + q.LimitParam.String())
	} else if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}
