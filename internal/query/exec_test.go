package query

import (
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/rewrite"
)

// bigEngine builds a catalog exercising the cost model's large-relation
// regime: "dict" (500 tuples over a 26-letter alphabet, BK-tree
// territory) and "dna" (240 tuples over a 4-letter alphabet, where the
// trie's branching bound wins).
func bigEngine(t testing.TB) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	randomWord := func(alpha string, n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	cat := relation.NewCatalog()
	dict := relation.New("dict")
	for i := 0; i < 500; i++ {
		dict.Insert(randomWord("abcdefghijklmnopqrstuvwxyz", 6+rng.Intn(5)), nil)
	}
	cat.Add(dict)
	dna := relation.New("dna")
	for i := 0; i < 240; i++ {
		dna.Insert(randomWord("acgt", 8), nil)
	}
	cat.Add(dna)
	// clust: 500 single-character perturbations of one base word, so a
	// radius-1 range query around the base matches (and must visit)
	// nearly the whole relation.
	clust := relation.New("clust")
	base := "abcdefgh"
	for i := 0; i < 500; i++ {
		w := []byte(base)
		w[i%len(base)] = byte('a' + (i/len(base))%26)
		clust.Insert(string(w), nil)
	}
	cat.Add(clust)

	e := NewEngine(cat)
	if err := e.RegisterRuleSet(rewrite.UnitEdits("abcdefghijklmnopqrstuvwxyz")); err != nil {
		t.Fatal(err)
	}
	// "half" is unit edits at cost 0.5: edit-like but not unit-cost, so
	// it exercises the weighted scan paths over the full alphabet.
	alpha := []byte("abcdefghijklmnopqrstuvwxyz")
	var rules []rewrite.Rule
	for _, c := range alpha {
		rules = append(rules, rewrite.Insert(c, 0.5), rewrite.Delete(c, 0.5))
		for _, d := range alpha {
			if c != d {
				rules = append(rules, rewrite.Subst(c, d, 0.5))
			}
		}
	}
	if err := e.RegisterRuleSet(rewrite.MustRuleSet("half", rules)); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestExplainOperatorTrees asserts the planner's operator choice for
// every access path, one EXPLAIN per row.
func TestExplainOperatorTrees(t *testing.T) {
	small := testEngine(t)
	rowSmall := testEngine(t)
	rowSmall.SetBatchSize(0)
	big := bigEngine(t)
	cases := []struct {
		name string
		eng  *Engine
		src  string
		want []string // substrings that must appear in the plan tree
		not  []string // substrings that must not
	}{
		{
			name: "plain scan",
			eng:  small,
			src:  `SELECT * FROM words`,
			want: []string{"Project(*)", "Scan(words)"},
			not:  []string{"Filter", "IndexRange"},
		},
		{
			name: "index range via bktree on small relation",
			eng:  small,
			src:  `SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits`,
			want: []string{"IndexRange(words via bktree, target=color, radius=1, ruleset=unit-edits)"},
			not:  []string{"Scan(", "Filter"},
		},
		{
			name: "index range via trie on low-branching relation",
			eng:  big,
			src:  `SELECT * FROM dna WHERE seq SIMILAR TO "acgtacgt" WITHIN 1 USING unit-edits`,
			want: []string{"IndexRange(dna via trie"},
			not:  []string{"via bktree"},
		},
		{
			name: "weighted range falls back to scan+filter",
			eng:  small,
			src:  `SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 0.3 USING cheap_vowels`,
			want: []string{"Scan(words)", "Filter("},
			not:  []string{"IndexRange"},
		},
		{
			name: "non-seq similarity cannot use the seq index",
			eng:  small,
			src:  `SELECT * FROM words WHERE lang SIMILAR TO "en" WITHIN 1 USING unit-edits`,
			want: []string{"Scan(words)", "Filter("},
			not:  []string{"IndexRange"},
		},
		{
			name: "indexable conjunct found behind a non-indexable sim",
			eng:  small,
			src: `SELECT * FROM words WHERE lang SIMILAR TO "en" WITHIN 1 USING unit-edits ` +
				`AND seq SIMILAR TO "color" WITHIN 1 USING unit-edits`,
			want: []string{"IndexRange(words via bktree, target=color", "Filter("},
			not:  []string{"Scan("},
		},
		{
			name: "residual filter above index range",
			eng:  small,
			src:  `SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits AND lang = "en"`,
			want: []string{"Filter(lang = \"en\")", "IndexRange(words via bktree"},
		},
		{
			name: "nearest-k via bktree",
			eng:  small,
			src:  `SELECT * FROM words WHERE seq NEAREST 3 TO "color" USING unit-edits`,
			want: []string{"NearestK(words via bktree, k=3, ruleset=unit-edits)"},
		},
		{
			name: "nearest-k via scan for weighted rule set",
			eng:  small,
			src:  `SELECT * FROM words WHERE seq NEAREST 2 TO "color" USING cheap_vowels`,
			want: []string{"NearestK(words via scan, k=2, ruleset=cheap_vowels)"},
		},
		{
			name: "vectorized unit join partitions by length",
			eng:  small,
			src:  `SELECT * FROM words a, words b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING unit-edits`,
			want: []string{"PartitionJoin(probe a.seq into b[length-banded]", "Scan(a)"},
			not:  []string{"NestedLoopJoin", "IndexJoin"},
		},
		{
			name: "row-mode unit join uses the index",
			eng:  rowSmall,
			src:  `SELECT * FROM words a, words b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING unit-edits`,
			want: []string{"IndexJoin(probe a.seq into bktree(b)", "Scan(a)"},
			not:  []string{"NestedLoopJoin", "PartitionJoin"},
		},
		{
			name: "weighted join needs nested loops",
			eng:  small,
			src:  `SELECT * FROM words a, words b WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING cheap_vowels`,
			want: []string{"NestedLoopJoin(on", "Scan(a)", "Scan(b)"},
			not:  []string{"IndexJoin"},
		},
		{
			name: "three-way join chains two partition joins",
			eng:  small,
			src: `SELECT * FROM words a, words b, words c WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING unit-edits ` +
				`AND b.seq SIMILAR TO c.seq WITHIN 1 USING unit-edits`,
			want: []string{"PartitionJoin(probe a.seq into b[length-banded]", "PartitionJoin(probe b.seq into c[length-banded]"},
		},
		{
			name: "three-way row join chains two index joins",
			eng:  rowSmall,
			src: `SELECT * FROM words a, words b, words c WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING unit-edits ` +
				`AND b.seq SIMILAR TO c.seq WITHIN 1 USING unit-edits`,
			want: []string{"IndexJoin(probe a.seq into bktree(b)", "IndexJoin(probe b.seq into bktree(c)"},
		},
		{
			name: "order by dist",
			eng:  small,
			src:  `SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 2 USING unit-edits ORDER BY dist DESC LIMIT 3`,
			want: []string{"Limit(3)", "OrderByDist(desc)", "IndexRange(words via bktree"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.eng.Execute("EXPLAIN " + tc.src)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if len(res.Rows) != 1 {
				t.Fatalf("EXPLAIN rows = %d, want 1", len(res.Rows))
			}
			plan := res.Rows[0][0]
			for _, w := range tc.want {
				if !strings.Contains(plan, w) {
					t.Errorf("plan missing %q:\n%s", w, plan)
				}
			}
			for _, n := range tc.not {
				if strings.Contains(plan, n) {
					t.Errorf("plan unexpectedly contains %q:\n%s", n, plan)
				}
			}
		})
	}
}

func TestOrderByDistExecution(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`SELECT seq, dist FROM words WHERE seq SIMILAR TO "color" WITHIN 2 USING unit-edits ORDER BY dist`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	var prev float64 = -1
	for _, row := range res.Rows {
		d, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad dist %q", row[1])
		}
		if d < prev {
			t.Fatalf("distances not ascending: %v", res.Rows)
		}
		prev = d
	}
	if res.Rows[0][0] != "color" {
		t.Errorf("first row = %v, want color at dist 0", res.Rows[0])
	}

	desc, err := e.Execute(`SELECT seq, dist FROM words WHERE seq SIMILAR TO "color" WITHIN 2 USING unit-edits ORDER BY dist DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(desc.Rows) != len(res.Rows) {
		t.Fatalf("desc rows = %d, asc rows = %d", len(desc.Rows), len(res.Rows))
	}
	if desc.Rows[len(desc.Rows)-1][0] != "color" {
		t.Errorf("desc last row = %v, want color", desc.Rows[len(desc.Rows)-1])
	}
}

// TestOrderByDistDistlessLast: rows admitted by a non-similarity OR
// branch carry no distance and must sort last in both directions.
func TestOrderByDistDistlessLast(t *testing.T) {
	e := testEngine(t)
	for _, dir := range []string{"", " DESC"} {
		res, err := e.Execute(`SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits OR lang = "fr" ORDER BY dist` + dir)
		if err != nil {
			t.Fatal(err)
		}
		// '*' projects id, seq, dist; velour matches only via
		// lang = "fr", so its dist is empty and it must come last.
		last := res.Rows[len(res.Rows)-1]
		if last[1] != "velour" || last[2] != "" {
			t.Errorf("ORDER BY dist%s: dist-less row not last: %v", dir, res.Rows)
		}
	}
}

func TestOrderByDistRequiresSimilarity(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Execute(`SELECT * FROM words ORDER BY dist`); err == nil {
		t.Error("ORDER BY dist without a similarity predicate succeeded")
	}
}

// TestNearestNonPositiveKRejected: the parser forbids K <= 0, but a
// hand-built Query through ExecuteQuery must fail cleanly too instead
// of panicking in the scan path's bound bookkeeping.
func TestNearestNonPositiveKRejected(t *testing.T) {
	e := testEngine(t)
	for _, k := range []int{0, -1} {
		q := &Query{
			From: []TableRef{{Name: "words", Alias: "words"}},
			Where: NearestExpr{
				Field:   FieldRef{Name: "seq"},
				Target:  Operand{Lit: "color", IsLit: true},
				K:       k,
				RuleSet: "cheap_vowels",
			},
		}
		if _, err := e.ExecuteQuery(q); err == nil {
			t.Errorf("NEAREST with k=%d succeeded, want error", k)
		}
	}
}

// TestThreeWayJoin verifies an N-way join against hand-computed pairs:
// chain a-b-c where consecutive relations hold words at distance 1.
func TestThreeWayJoin(t *testing.T) {
	cat := relation.NewCatalog()
	mk := func(name string, words ...string) {
		r := relation.New(name)
		for _, w := range words {
			r.Insert(w, nil)
		}
		cat.Add(r)
	}
	mk("a", "cat", "dog")
	mk("b", "cot", "dig", "zzzz")
	mk("c", "cut", "fig")
	e := NewEngine(cat)
	if err := e.RegisterRuleSet(rewrite.UnitEdits("abcdefghijklmnopqrstuvwxyz")); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(`SELECT a.seq, b.seq, c.seq FROM a, b, c ` +
		`WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING unit-edits AND b.seq SIMILAR TO c.seq WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, row := range res.Rows {
		got[strings.Join(row[:3], "|")] = true
	}
	// cat~cot~cut and dog~dig~fig are the only chains.
	want := map[string]bool{"cat|cot|cut": true, "dog|dig|fig": true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("three-way join = %v, want %v", got, want)
	}
}

// TestThreeWayJoinCycleEdge: a third SIMILAR TO edge between already-
// joined relations must still be enforced (as a residual predicate).
func TestThreeWayJoinCycleEdge(t *testing.T) {
	cat := relation.NewCatalog()
	mk := func(name string, words ...string) {
		r := relation.New(name)
		for _, w := range words {
			r.Insert(w, nil)
		}
		cat.Add(r)
	}
	mk("a", "cat")
	mk("b", "cot")
	mk("c", "cut", "frog")
	e := NewEngine(cat)
	if err := e.RegisterRuleSet(rewrite.UnitEdits("abcdefghijklmnopqrstuvwxyz")); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(`SELECT a.seq, b.seq, c.seq FROM a, b, c ` +
		`WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING unit-edits ` +
		`AND b.seq SIMILAR TO c.seq WITHIN 1 USING unit-edits ` +
		`AND a.seq SIMILAR TO c.seq WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][2] != "cut" {
		t.Errorf("cycle join rows = %v, want only cat|cot|cut", res.Rows)
	}
}

func TestJoinDisconnectedRelationsRejected(t *testing.T) {
	e := testEngine(t)
	_, err := e.Execute(`SELECT * FROM words a, words b, words c WHERE a.seq SIMILAR TO b.seq WITHIN 1 USING unit-edits`)
	if err == nil {
		t.Error("disconnected 3-way join succeeded")
	}
}

// TestLimitPushdownIndexCandidates is the LIMIT-pushdown regression
// test: with the pull-based pipeline, an indexed LIMIT 1 query must
// stop the index traversal early and touch strictly fewer candidates
// than the full range query.
func TestLimitPushdownIndexCandidates(t *testing.T) {
	e := bigEngine(t)
	full, err := e.Execute(`SELECT seq FROM clust WHERE seq SIMILAR TO "abcdefgh" WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full.Plan, "IndexRange(clust via bktree") {
		t.Fatalf("plan = %q, want BK-tree index range", full.Plan)
	}
	if len(full.Rows) < 100 || full.Stats.Candidates < 100 {
		t.Fatalf("weak test premise: %d rows, %d candidates", len(full.Rows), full.Stats.Candidates)
	}
	limited, err := e.Execute(`SELECT seq FROM clust WHERE seq SIMILAR TO "abcdefgh" WITHIN 1 USING unit-edits LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Rows) != 1 {
		t.Fatalf("limited rows = %d", len(limited.Rows))
	}
	if limited.Stats.Candidates >= full.Stats.Candidates {
		t.Errorf("LIMIT 1 touched %d candidates, full range %d — limit was not pushed into the index",
			limited.Stats.Candidates, full.Stats.Candidates)
	}
	// The scan access path also stops early under LIMIT.
	scanAll, err := e.Execute(`SELECT seq FROM dict`)
	if err != nil {
		t.Fatal(err)
	}
	scanOne, err := e.Execute(`SELECT seq FROM dict LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if scanOne.Stats.Candidates >= scanAll.Stats.Candidates {
		t.Errorf("scan LIMIT 1 touched %d candidates, full scan %d", scanOne.Stats.Candidates, scanAll.Stats.Candidates)
	}
}

// TestParallelScanDeterminism: parallel execution must yield
// byte-identical results to serial execution, for scans and joins.
func TestParallelScanDeterminism(t *testing.T) {
	queries := []string{
		`SELECT seq, dist FROM dict WHERE seq SIMILAR TO "aaaaaaa" WITHIN 4 USING half`,
		`SELECT seq FROM dict WHERE seq SIMILAR TO "qqqq" WITHIN 20 USING half ORDER BY dist LIMIT 17`,
		`SELECT a.seq, b.seq, dist FROM dna a, dna b WHERE a.seq SIMILAR TO b.seq WITHIN 2 USING unit-edits AND a.id != b.id`,
	}
	serialEng := bigEngine(t)
	serialEng.SetParallelism(1)
	parallelEng := bigEngine(t)
	parallelEng.SetParallelism(4)
	parallelEng.SetParallelMinRows(1)
	for _, src := range queries {
		serial, err := serialEng.Execute(src)
		if err != nil {
			t.Fatalf("serial %q: %v", src, err)
		}
		par, err := parallelEng.Execute(src)
		if err != nil {
			t.Fatalf("parallel %q: %v", src, err)
		}
		if !strings.Contains(par.Plan, "Parallel(workers=4)") {
			t.Fatalf("parallel plan for %q did not shard:\n%s", src, par.Plan)
		}
		if !reflect.DeepEqual(serial.Rows, par.Rows) {
			t.Errorf("parallel result differs from serial for %q:\nserial %v\nparallel %v", src, serial.Rows, par.Rows)
		}
	}
	// Plans that gain nothing from sharding stay serial even on a
	// parallel engine: a LIMIT without ORDER BY can stop early, and a
	// bare scan has no per-tuple work to spread.
	for _, src := range []string{
		`SELECT seq FROM dict WHERE seq SIMILAR TO "qqqq" WITHIN 20 USING half LIMIT 3`,
		`SELECT seq FROM dict`,
	} {
		res, err := parallelEng.Execute(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if strings.Contains(res.Plan, "Parallel") {
			t.Errorf("%q should plan serial, got:\n%s", src, res.Plan)
		}
	}
}

// TestEvalExprShortCircuit pins the documented error semantics: NOT
// propagates errors instead of negating error results, and AND/OR
// short-circuit without evaluating (or erroring on) the right side.
func TestEvalExprShortCircuit(t *testing.T) {
	e := testEngine(t)
	b := &binding{aliases: map[string]relation.Tuple{"words": {ID: 0, Seq: "color"}}}
	bad := CmpExpr{L: Operand{Field: FieldRef{Table: "nosuch", Name: "x"}}, R: Operand{Lit: "y", IsLit: true}}
	falsy := CmpExpr{L: Operand{Lit: "a", IsLit: true}, R: Operand{Lit: "b", IsLit: true}}
	truthy := CmpExpr{L: Operand{Lit: "a", IsLit: true}, R: Operand{Lit: "a", IsLit: true}}

	if v, err := e.evalExpr(NotExpr{E: bad}, b); err == nil || v {
		t.Errorf("NOT over erroring expr = (%v, %v), want (false, error)", v, err)
	}
	if v, err := e.evalExpr(AndExpr{L: falsy, R: bad}, b); err != nil || v {
		t.Errorf("false AND erroring = (%v, %v), want short-circuit (false, nil)", v, err)
	}
	if v, err := e.evalExpr(OrExpr{L: truthy, R: bad}, b); err != nil || !v {
		t.Errorf("true OR erroring = (%v, %v), want short-circuit (true, nil)", v, err)
	}
	if _, err := e.evalExpr(AndExpr{L: truthy, R: bad}, b); err == nil {
		t.Error("true AND erroring right side: error lost")
	}
}

// TestNonSeqSimilarityCorrect verifies scan fallback answers for a
// similarity predicate over an attribute column.
func TestNonSeqSimilarityCorrect(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`SELECT seq, lang FROM words WHERE lang SIMILAR TO "en" WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// uk, fr and la are all at distance 2 from en; only exact "en"
		// matches within 1.
		if row[1] != "en" {
			t.Errorf("lang %q should not be within 1 of en", row[1])
		}
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d (%v), want the 4 en words", len(res.Rows), res.Rows)
	}
}
