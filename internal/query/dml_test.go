package query

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func count(t *testing.T, res *Result) int {
	t.Helper()
	if len(res.Columns) != 1 || res.Columns[0] != "count" || len(res.Rows) != 1 {
		t.Fatalf("mutation result shape = %v %v", res.Columns, res.Rows)
	}
	n, err := strconv.Atoi(res.Rows[0][0])
	if err != nil {
		t.Fatalf("count row %q: %v", res.Rows[0][0], err)
	}
	return n
}

func TestParseStatementDML(t *testing.T) {
	cases := []string{
		`INSERT INTO words VALUES ("abc")`,
		`INSERT INTO words (seq, lang) VALUES ("abc", "en"), ("def", "de")`,
		`INSERT INTO words VALUES (?)`,
		`DELETE FROM words`,
		`DELETE FROM words WHERE seq SIMILAR TO "abc" WITHIN 1 USING unit-edits`,
		`UPDATE words SET lang = "en" WHERE id = "3"`,
		`UPDATE words SET seq = :s, lang = :l WHERE seq = :old`,
		`EXPLAIN DELETE FROM words WHERE seq SIMILAR TO "abc" WITHIN 1 USING unit-edits`,
	}
	for _, src := range cases {
		stmt, err := ParseStatement(src)
		if err != nil {
			t.Fatalf("ParseStatement(%q): %v", src, err)
		}
		m, ok := stmt.(*Mutation)
		if !ok {
			t.Fatalf("ParseStatement(%q) = %T, want *Mutation", src, stmt)
		}
		// Round trip: the rendering must parse back to the same text.
		re, err := ParseStatement(m.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", m.String(), err)
		}
		if re.String() != m.String() {
			t.Fatalf("round trip drifted: %q -> %q", m.String(), re.String())
		}
	}
}

func TestParseDMLErrors(t *testing.T) {
	for _, src := range []string{
		`INSERT INTO words (lang) VALUES ("en")`,         // no seq column
		`INSERT INTO words (seq, seq) VALUES ("a", "b")`, // dup column
		`INSERT INTO words (seq, id) VALUES ("a", "1")`,  // id not writable
		`INSERT INTO words (seq, lang) VALUES ("a")`,     // arity
		`INSERT INTO words VALUES ("a") trailing`,        // trailing
		`UPDATE words SET id = "9"`,                      // id not assignable
		`UPDATE words SET lang = "x", lang = "y"`,        // dup SET
		`DELETE words`,                   // missing FROM
		`INSERT INTO words VALUES (seq)`, // field ref as value
		`UPDATE words SET seq = ? WHERE seq SIMILAR TO :x WITHIN 1 USING e`, // mixed params
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error", src)
		}
	}
}

func TestParseRejectsDML(t *testing.T) {
	if _, err := Parse(`INSERT INTO words VALUES ("x")`); err == nil {
		t.Fatal("Parse accepted DML")
	}
}

func TestInsertExecute(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`INSERT INTO words (seq, lang) VALUES ("colores", "es"), ("couleur", "fr")`)
	if err != nil {
		t.Fatal(err)
	}
	if count(t, res) != 2 {
		t.Fatalf("count = %d, want 2", count(t, res))
	}
	check, err := e.Execute(`SELECT * FROM words WHERE lang = "es"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := seqsOf(check); len(got) != 1 || got[0] != "colores" {
		t.Fatalf("inserted rows = %v", got)
	}
}

func TestDeleteWithSimilarityUsesIndex(t *testing.T) {
	e := testEngine(t)
	// EXPLAIN first: the read phase must go through the metric index.
	res, err := e.Execute(`EXPLAIN DELETE FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "Mutate(delete from words)") || !strings.Contains(res.Plan, "IndexRange") {
		t.Fatalf("explain plan = %q, want Mutate over IndexRange", res.Plan)
	}

	res, err = e.Execute(`DELETE FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if count(t, res) != 4 { // color, colon, colour, dolor
		t.Fatalf("deleted %d rows, want 4", count(t, res))
	}
	left, err := e.Execute(`SELECT * FROM words`)
	if err != nil {
		t.Fatal(err)
	}
	if got := seqsOf(left); strings.Join(got, ",") != "clamor,cool,velour" {
		t.Fatalf("remaining rows = %v", got)
	}
}

func TestUpdateExecute(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`UPDATE words SET lang = "latin" WHERE seq = "dolor"`)
	if err != nil {
		t.Fatal(err)
	}
	if count(t, res) != 1 {
		t.Fatalf("updated %d rows, want 1", count(t, res))
	}
	check, err := e.Execute(`SELECT seq, lang FROM words WHERE lang = "latin"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(check.Rows) != 1 || check.Rows[0][0] != "dolor" {
		t.Fatalf("updated row = %v", check.Rows)
	}
	// Attributes not mentioned in SET survive; seq can be reassigned.
	if _, err := e.Execute(`UPDATE words SET seq = "dolores" WHERE lang = "latin"`); err != nil {
		t.Fatal(err)
	}
	check, err = e.Execute(`SELECT seq, lang FROM words WHERE lang = "latin"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(check.Rows) != 1 || check.Rows[0][0] != "dolores" {
		t.Fatalf("after seq update = %v", check.Rows)
	}
}

func TestDeleteAllWithoutWhere(t *testing.T) {
	e := testEngine(t)
	res, err := e.Execute(`DELETE FROM words`)
	if err != nil {
		t.Fatal(err)
	}
	if count(t, res) != 7 {
		t.Fatalf("deleted %d, want 7", count(t, res))
	}
	left, _ := e.Execute(`SELECT * FROM words`)
	if len(left.Rows) != 0 {
		t.Fatalf("rows left: %v", left.Rows)
	}
}

func TestMutationErrors(t *testing.T) {
	e := testEngine(t)
	for _, src := range []string{
		`INSERT INTO nosuch VALUES ("x")`,
		`DELETE FROM nosuch`,
		`INSERT INTO words VALUES (?)`, // unbound parameter
		`DELETE FROM words WHERE seq SIMILAR TO "x" WITHIN 1 USING nosuchrules`,
	} {
		if _, err := e.Execute(src); err == nil {
			t.Errorf("Execute(%q) succeeded, want error", src)
		}
	}
}

func TestPreparedDML(t *testing.T) {
	e := testEngine(t)
	ins, err := e.Prepare(`INSERT INTO words (seq, lang) VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 2 {
		t.Fatalf("NumParams = %d", ins.NumParams())
	}
	for i := 0; i < 3; i++ {
		res, err := ins.Execute(fmt.Sprintf("word%d", i), "xx")
		if err != nil {
			t.Fatal(err)
		}
		if count(t, res) != 1 {
			t.Fatalf("insert %d applied %d", i, count(t, res))
		}
	}
	// INSERT performs no cost-based planning, so Plans must stay flat.
	if st := ins.Stats(); st.Executions != 3 || st.Plans != 0 {
		t.Fatalf("prepared INSERT stats = %+v, want 3 executions / 0 plans", st)
	}
	del, err := e.Prepare(`DELETE FROM words WHERE seq SIMILAR TO :target WITHIN :r USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := del.ExecuteNamed(map[string]any{"target": "word0", "r": 1})
	if err != nil {
		t.Fatal(err)
	}
	if count(t, res) != 3 { // word0, word1, word2
		t.Fatalf("prepared delete removed %d, want 3", count(t, res))
	}
	if got := del.Stats(); got.Executions != 1 {
		t.Fatalf("prepared DML stats = %+v", got)
	}
}

// TestMutationInvalidatesPlanCache pins the StatsVersion contract from
// PR 2: a committed mutation must make every cached plan entry
// unreachable, so the next execution re-parses and re-plans.
func TestMutationInvalidatesPlanCache(t *testing.T) {
	e := testEngine(t)
	const q = `SELECT * FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING unit-edits`
	if _, err := e.Execute(q); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.PlanCacheHit {
		t.Fatal("second execution missed the plan cache")
	}

	if _, err := e.Execute(`INSERT INTO words (seq, lang) VALUES ("colord", "xx")`); err != nil {
		t.Fatal(err)
	}
	res, err = e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHit {
		t.Fatal("plan cache served a stale entry after a committed mutation")
	}
	// And the re-planned query sees the new row.
	found := false
	for _, s := range seqsOf(res) {
		if s == "colord" {
			found = true
		}
	}
	if !found {
		t.Fatal("re-planned query missed the inserted row")
	}
	// Steady state again afterwards.
	res, err = e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.PlanCacheHit {
		t.Fatal("cache did not repopulate after invalidation")
	}
}

// TestMutationForcesPreparedRedecision pins the other half of the
// StatsVersion contract: a PreparedQuery's memoised planner decision
// must be dropped once a mutation commits.
func TestMutationForcesPreparedRedecision(t *testing.T) {
	e := testEngine(t)
	pq, err := e.Prepare(`SELECT * FROM words WHERE seq SIMILAR TO ? WITHIN ? USING unit-edits`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Execute("color", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Execute("colour", 1); err != nil {
		t.Fatal(err)
	}
	st := pq.Stats()
	if st.Plans != 1 || st.PlanReuses != 1 {
		t.Fatalf("before mutation: %+v, want 1 plan / 1 reuse", st)
	}

	if _, err := e.Execute(`DELETE FROM words WHERE seq = "cool"`); err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Execute("color", 1); err != nil {
		t.Fatal(err)
	}
	st = pq.Stats()
	if st.Plans != 2 {
		t.Fatalf("after mutation: %+v, want a fresh planning run", st)
	}
}
