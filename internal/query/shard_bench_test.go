package query

// Sharded-vs-unsharded execution benchmarks over identical synthetic
// data: the scan regime (equal total DP work — gather overhead shows
// directly) and the NEAREST regime (per-shard BK-trees are shallower,
// so sharding can win even single-threaded).

import (
	"fmt"
	"testing"

	"repro/internal/relation"
	"repro/internal/rewrite"
)

func benchShardEngine(b *testing.B, shards int) *Engine {
	b.Helper()
	rows := make([]relation.InsertRow, 20000)
	for i := range rows {
		rows[i] = relation.InsertRow{Seq: fmt.Sprintf("%c%c%c%c%c%c%c%c",
			'a'+i%10, 'a'+(i/10)%10, 'a'+(i/100)%10, 'a'+(i/1000)%10,
			'a'+i%7, 'a'+i%3, 'a'+i%5, 'a'+i%2)}
	}
	var tab relation.Table
	if shards > 0 {
		sh := relation.NewSharded("words", shards)
		sh.InsertBatch(rows)
		tab = sh
	} else {
		r := relation.New("words")
		r.InsertBatch(rows)
		tab = r
	}
	cat := relation.NewCatalog()
	cat.Add(tab)
	e := NewEngine(cat)
	rs := rewrite.MustRuleSet("edits", rewrite.UnitEdits("abcdefghij").Rules())
	if err := e.RegisterRuleSet(rs); err != nil {
		b.Fatal(err)
	}
	return e
}

func benchShardStmt(b *testing.B, shards int, stmt string) {
	e := benchShardEngine(b, shards)
	if _, err := e.Execute(stmt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

const (
	// Non-integral radius: not eligible for the metric indexes, so both
	// layouts run the scan access path and the comparison isolates the
	// scatter-gather machinery at equal total DP work.
	benchShardScanStmt    = `SELECT seq, dist FROM words WHERE seq SIMILAR TO "abcdefgh" WITHIN 2.5 USING edits LIMIT 20`
	benchShardNearestStmt = `SELECT seq, dist FROM words WHERE seq NEAREST 10 TO "abcdefgh" USING edits`
)

func BenchmarkShardScanUnsharded(b *testing.B) { benchShardStmt(b, 0, benchShardScanStmt) }
func BenchmarkShardScanSharded4(b *testing.B)  { benchShardStmt(b, 4, benchShardScanStmt) }

func BenchmarkShardNearestUnsharded(b *testing.B) { benchShardStmt(b, 0, benchShardNearestStmt) }
func BenchmarkShardNearestSharded4(b *testing.B)  { benchShardStmt(b, 4, benchShardNearestStmt) }
