package query

// The distance-join oracle: every join execution strategy — the row
// nested-loop, the row index-nested-loop, the batched partition join
// and the sharded broadcast variant of each — must produce the same
// result as a brute-force double loop over the same data.
//
// Join result order is plan-dependent (which relation wins the start
// slot is a cost decision), so results are compared as canonically-
// encoded row sets against the brute-force model. The sharded pledge
// is stronger: at the same batch size the sharded engine runs the same
// join order as the unsharded one, so the two are compared positionally,
// byte for byte — including assigned dist strings, which the metric
// layer's determinism contract makes bitwise-stable across kernels.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/editdp"
	"repro/internal/metric"
	"repro/internal/relation"
	"repro/internal/rewrite"
)

// joinOraclePair is one unsharded/sharded engine pair over identical
// rows (ids 0..n-1 assigned in order on both layouts).
type joinOraclePair struct {
	plain   *Engine
	sharded *Engine
}

// halvesRules is a symmetric weighted rule set (every op costs 0.5, no
// unit-cost shortcut), forcing the nested-loop join path in every mode.
func halvesRules() *rewrite.RuleSet {
	return rewrite.MustRuleSet("halves", []rewrite.Rule{
		rewrite.Subst('a', 'b', 0.5), rewrite.Subst('b', 'a', 0.5),
		rewrite.Insert('c', 0.5), rewrite.Delete('c', 0.5),
	})
}

func newJoinOraclePair(t testing.TB, shards int, rows []relation.InsertRow) *joinOraclePair {
	t.Helper()
	mk := func(tab relation.Table) *Engine {
		cat := relation.NewCatalog()
		cat.Add(tab)
		e := NewEngine(cat)
		if err := e.RegisterRuleSet(rewrite.MustRuleSet("edits", rewrite.UnitEdits(oracleAlphabet).Rules())); err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterRuleSet(halvesRules()); err != nil {
			t.Fatal(err)
		}
		return e
	}
	plainTab := relation.New("words")
	plainTab.InsertBatch(rows)
	shardTab := relation.NewSharded("words", shards)
	shardTab.InsertBatch(rows)
	return &joinOraclePair{plain: mk(plainTab), sharded: mk(shardTab)}
}

// joinOracleRows builds n rows with short random seqs (dense edit-
// distance collisions), random 3-d vectors and a rotating tag; every
// seventh row has no vector, pinning the nil-vec no-match rule.
func joinOracleRows(rng *rand.Rand, n int) []relation.InsertRow {
	rows := make([]relation.InsertRow, n)
	for i := range rows {
		rows[i] = relation.InsertRow{
			Seq:   randOracleSeq(rng),
			Attrs: map[string]string{"tag": fmt.Sprint(i % 3)},
		}
		if i%7 != 0 {
			v := make(metric.Vector, 3)
			for j := range v {
				v[j] = float32(rng.Float64()*2 - 1)
			}
			rows[i].Vec = v
		}
	}
	return rows
}

// checkJoin runs stmt on both engines at batch sizes 0 and 256 and
// asserts (a) plain and sharded agree byte-for-byte at each size and
// (b) every execution matches the brute-force row set canonically.
func (p *joinOraclePair) checkJoin(t *testing.T, stmt string, want []string) {
	t.Helper()
	for _, batch := range []int{0, 256} {
		p.plain.SetBatchSize(batch)
		p.sharded.SetBatchSize(batch)
		a, err := p.plain.Execute(stmt)
		if err != nil {
			t.Fatalf("batch=%d unsharded %q: %v", batch, stmt, err)
		}
		b, err := p.sharded.Execute(stmt)
		if err != nil {
			t.Fatalf("batch=%d sharded %q: %v", batch, stmt, err)
		}
		if positional(a) != positional(b) {
			t.Fatalf("batch=%d sharded join diverges byte-wise for %q:\nunsharded:\n%s\nsharded:\n%s",
				batch, stmt, positional(a), positional(b))
		}
		wantRes := &Result{}
		for _, w := range want {
			wantRes.Rows = append(wantRes.Rows, strings.Split(w, "\x1f"))
		}
		if canonical(a) != canonical(wantRes) {
			t.Fatalf("batch=%d join diverges from oracle for %q:\ngot:\n%s\nwant:\n%s",
				batch, stmt, canonical(a), canonical(wantRes))
		}
	}
}

// TestJoinOracleEdits covers the edit-distance join strategies: unit
// radius (partition/index eligible), a residual-filtered radius-2 join,
// the weighted nested-loop fallback, and a three-way chain.
func TestJoinOracleEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rows := joinOracleRows(rng, 80)
	calc, err := editdp.New(halvesRules())
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		p := newJoinOraclePair(t, shards, rows)
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var want []string
			for ai, a := range rows {
				for bi, b := range rows {
					if d, ok := editdp.LevenshteinWithin(a.Seq, b.Seq, 1); ok {
						want = append(want, fmt.Sprintf("%d\x1f%d\x1f%s", ai, bi, formatDist(float64(d))))
					}
				}
			}
			p.checkJoin(t,
				`SELECT a.id, b.id, dist FROM words a, words b ON dist(a.seq, b.seq) <= 1 USING edits`,
				want)

			want = want[:0]
			for ai, a := range rows {
				if a.Attrs["tag"] != "0" {
					continue
				}
				for bi, b := range rows {
					if ai == bi {
						continue
					}
					if _, ok := editdp.LevenshteinWithin(a.Seq, b.Seq, 2); ok {
						want = append(want, fmt.Sprintf("%d\x1f%d", ai, bi))
					}
				}
			}
			p.checkJoin(t,
				`SELECT a.id, b.id FROM words a, words b ON dist(a.seq, b.seq) <= 2 USING edits WHERE a.tag = "0" AND a.id != b.id`,
				want)

			want = want[:0]
			for ai, a := range rows {
				for bi, b := range rows {
					if ai == bi {
						continue
					}
					if _, ok := calc.Within(a.Seq, b.Seq, 1); ok {
						want = append(want, fmt.Sprintf("%d\x1f%d", ai, bi))
					}
				}
			}
			p.checkJoin(t,
				`SELECT a.id, b.id FROM words a, words b ON dist(a.seq, b.seq) <= 1 USING halves WHERE a.id != b.id`,
				want)

			want = want[:0]
			for ai, a := range rows {
				for bi, b := range rows {
					if _, ok := editdp.LevenshteinWithin(a.Seq, b.Seq, 1); !ok {
						continue
					}
					for ci, c := range rows {
						if _, ok := editdp.LevenshteinWithin(b.Seq, c.Seq, 1); ok {
							want = append(want, fmt.Sprintf("%d\x1f%d\x1f%d", ai, bi, ci))
						}
					}
				}
			}
			p.checkJoin(t,
				`SELECT a.id, b.id, c.id FROM words a, words b, words c ON dist(a.seq, b.seq) <= 1 USING edits AND dist(b.seq, c.seq) <= 1 USING edits`,
				want)
		})
	}
}

// TestJoinOracleVec covers the vector-metric join strategies: l2
// (triangular — norm-banded partitions and VP-tree probes are legal)
// and cosine (not triangular — single partition, no index). Rows
// without a vector must never match.
func TestJoinOracleVec(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	rows := joinOracleRows(rng, 100)
	cases := []struct {
		name   string
		radius float64
	}{
		{"l2", 0.8},
		{"cosine", 0.25},
	}
	for _, shards := range []int{1, 4} {
		p := newJoinOraclePair(t, shards, rows)
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for _, c := range cases {
				m, ok := metric.Lookup(c.name)
				if !ok {
					t.Fatalf("metric %q not registered", c.name)
				}
				var want []string
				for ai, a := range rows {
					if a.Vec == nil {
						continue
					}
					for bi, b := range rows {
						if ai == bi || b.Vec == nil {
							continue
						}
						if d, within := metric.Within(m, a.Vec, b.Vec, c.radius); within {
							want = append(want, fmt.Sprintf("%d\x1f%d\x1f%s", ai, bi, formatDist(d)))
						}
					}
				}
				stmt := fmt.Sprintf(
					`SELECT a.id, b.id, dist FROM words a, words b ON dist(a.vec, b.vec) <= %g USING %s WHERE a.id != b.id`,
					c.radius, c.name)
				p.checkJoin(t, stmt, want)
			}
		})
	}
}

// TestJoinOracleInterleavedDML hammers join reads on both engines while
// a single writer per engine applies the same deterministic DML stream,
// then re-checks full join parity against the brute-force model over
// the converged table. Under -race this proves the broadcast-inner
// snapshot capture is data-race free against live mutation.
func TestJoinOracleInterleavedDML(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	rows := joinOracleRows(rng, 60)
	p := newJoinOraclePair(t, 4, rows)
	p.plain.SetBatchSize(256)
	p.sharded.SetBatchSize(256)

	var stmts []string
	for i := 0; i < 80; i++ {
		if rng.Intn(3) == 0 {
			stmts = append(stmts, fmt.Sprintf(
				`DELETE FROM words WHERE seq SIMILAR TO %q WITHIN 1 USING edits`, randOracleSeq(rng)))
		} else {
			stmts = append(stmts, fmt.Sprintf(
				`INSERT INTO words (seq, tag) VALUES (%q, %q)`, randOracleSeq(rng), fmt.Sprint(i%3)))
		}
	}

	joins := []string{
		`SELECT a.id, b.id, dist FROM words a, words b ON dist(a.seq, b.seq) <= 1 USING edits`,
		`SELECT a.id, b.id FROM words a, words b ON dist(a.vec, b.vec) <= 0.8 USING l2 WHERE a.id != b.id`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for _, eng := range []*Engine{p.plain, p.sharded} {
		eng := eng
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, s := range stmts {
				if _, err := eng.Execute(s); err != nil {
					errs <- fmt.Errorf("%q: %w", s, err)
					return
				}
			}
		}()
		for r := 0; r < 2; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					if _, err := eng.Execute(joins[(r+i)%len(joins)]); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	// Converged: table contents must agree, and a final join must match
	// the brute force over the surviving rows.
	plainTab, _ := p.plain.Catalog().Lookup("words")
	shardTab, _ := p.sharded.Catalog().Lookup("words")
	dump := func(tab relation.Table) string {
		var b strings.Builder
		for _, tup := range tab.Tuples() {
			fmt.Fprintf(&b, "%d\x1f%s\n", tup.ID, tup.Seq)
		}
		return b.String()
	}
	if dump(plainTab) != dump(shardTab) {
		t.Fatalf("tables diverge after interleaved DML:\nunsharded:\n%s\nsharded:\n%s",
			dump(plainTab), dump(shardTab))
	}
	final := plainTab.Tuples()
	var want []string
	for _, a := range final {
		for _, b := range final {
			if d, ok := editdp.LevenshteinWithin(a.Seq, b.Seq, 1); ok {
				want = append(want, fmt.Sprintf("%d\x1f%d\x1f%s", a.ID, b.ID, formatDist(float64(d))))
			}
		}
	}
	p.checkJoin(t, joins[0], want)
}
