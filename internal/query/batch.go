package query

// Batch-at-a-time execution. The row pipeline (operators.go) pulls one
// binding per Next call; for the scan/filter-heavy workloads the paper's
// similarity queries are dominated by, the per-row costs — interface
// dispatch, cursor stepping, predicate-tree walking, rule-set registry
// lookups — rival the distance computations themselves. The batch
// pipeline amortizes all of them across a block of tuples:
//
//	BatchOperator: OpenBatch -> NextBatch* -> CloseBatch
//
// with NextBatch returning a column-oriented Batch (parallel tuple-id /
// sequence / attribute / distance slices). Both engines share the
// planner: a decision's `vectorize` flag (recorded in plan-cache and
// prepared-decision keys, rendered as the Vectorize root in EXPLAIN)
// selects which build runs, and the two builds produce byte-identical
// results — the batch/row parity oracle pins that.
//
// Ownership and recycling rules (DESIGN.md has the full story):
//
//   - A batch returned by NextBatch is valid until the next NextBatch
//     or CloseBatch call on the same operator. Leaves allocate one
//     batch from the shared pool at OpenBatch, refill it per call, and
//     release it at CloseBatch.
//   - In-place decorators (Filter, Limit, Project) mutate and forward
//     the child's batch; they own nothing.
//   - Materializing operators (OrderByDist, Parallel, GatherMerge) copy
//     what they keep into buffers of their own before the next pull.
//   - Operators that cannot run columnar (joins) are bridged with the
//     row adapters below; their batches carry bindings instead of
//     columns and every batch operator accepts either layout.

import (
	"fmt"
	"sync"

	"repro/internal/relation"
)

// Batch is one block of tuples flowing through the batch pipeline, in
// one of two layouts:
//
//   - columnar (binds == nil): the embedded relation.Block plus the
//     parallel dist/has columns. The layout every converted operator
//     works on directly.
//   - bindings (binds != nil): a block of row-pipeline bindings, as
//     produced by the RowToBatch adapter above unconverted operators
//     (joins). The columnar slices are unused in this layout.
//
// rows holds the projected output rows once a Project has run; row i of
// rows corresponds to row i of the active layout.
type Batch struct {
	relation.Block
	alias string // alias the columnar tuples are bound under
	dist  []float64
	has   []bool
	rows  [][]string
	binds []*binding
}

// Len returns the number of rows in the batch under either layout.
func (b *Batch) Len() int {
	if b.binds != nil {
		return len(b.binds)
	}
	return b.Block.Len()
}

// reset empties the batch (keeping capacity) and selects the columnar
// layout.
func (b *Batch) reset() {
	b.Block.Reset()
	b.alias = ""
	b.dist = b.dist[:0]
	b.has = b.has[:0]
	b.rows = b.rows[:0]
	b.binds = nil
}

// syncCols resizes the dist/has columns to match the block after a leaf
// filled it, clearing the distance state of every row.
func (b *Batch) syncCols() {
	n := b.Block.Len()
	// Check both capacities: dist and has grow through independent
	// appends elsewhere (appendMatch, copyFrom) and float64 vs bool hit
	// different allocator size classes, so a pooled batch can come back
	// with diverged capacities.
	if cap(b.dist) < n {
		b.dist = make([]float64, n)
	} else {
		b.dist = b.dist[:n]
	}
	if cap(b.has) < n {
		b.has = make([]bool, n)
	} else {
		b.has = b.has[:n]
	}
	for i := range b.dist {
		b.dist[i] = 0
	}
	for i := range b.has {
		b.has[i] = false
	}
}

// appendMatch adds one (tuple, distance) row in the columnar layout.
func (b *Batch) appendMatch(t relation.Tuple, dist float64, has bool) {
	b.Block.Append(t.ID, t.Seq, t.Vec, t.Attrs)
	b.dist = append(b.dist, dist)
	b.has = append(b.has, has)
}

// truncate keeps the first n rows of the active layout.
func (b *Batch) truncate(n int) {
	if b.binds != nil {
		b.binds = b.binds[:n]
	} else {
		b.IDs, b.Seqs, b.Vecs, b.Attrs = b.IDs[:n], b.Seqs[:n], b.Vecs[:n], b.Attrs[:n]
		b.dist, b.has = b.dist[:n], b.has[:n]
	}
	if len(b.rows) > n {
		b.rows = b.rows[:n]
	}
}

// binding materialises row i as a fresh row-pipeline binding (the
// BatchToRow adapter's job); the bindings layout hands out its rows
// directly.
func (b *Batch) binding(i int) *binding {
	if b.binds != nil {
		return b.binds[i]
	}
	nb := newBinding(b.alias, relation.Tuple{ID: b.IDs[i], Seq: b.Seqs[i], Vec: b.Vecs[i], Attrs: b.Attrs[i]})
	nb.dist, nb.hasDist = b.dist[i], b.has[i]
	return nb
}

// scratch loads row i into a reusable binding without allocating —
// the in-place decorators' view of a columnar row.
func (b *Batch) scratch(i int, alias string, dst *binding) {
	*dst = binding{alias: alias, tuple: relation.Tuple{ID: b.IDs[i], Seq: b.Seqs[i], Vec: b.Vecs[i], Attrs: b.Attrs[i]},
		dist: b.dist[i], hasDist: b.has[i]}
}

// copyFrom deep-copies another batch's row references (slice contents,
// not the sequences themselves — those are immutable) so the copy
// survives the source being refilled. Used by materializing operators.
func (b *Batch) copyFrom(src *Batch) {
	b.reset()
	b.alias = src.alias
	if src.binds != nil {
		b.binds = append([]*binding(nil), src.binds...)
	} else {
		b.IDs = append(b.IDs[:0], src.IDs...)
		b.Seqs = append(b.Seqs[:0], src.Seqs...)
		b.Vecs = append(b.Vecs[:0], src.Vecs...)
		b.Attrs = append(b.Attrs[:0], src.Attrs...)
		b.dist = append(b.dist[:0], src.dist...)
		b.has = append(b.has[:0], src.has...)
	}
	b.rows = append(b.rows[:0], src.rows...)
}

// batchPool recycles Batch buffers across queries. Leaves take a batch
// at OpenBatch and return it at CloseBatch; materializing operators
// take batches for their output streams. The pool is the only
// cross-query allocation amortization — within one pipeline a leaf
// refills the same batch every NextBatch call.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

func getBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.reset()
	return b
}

func putBatch(b *Batch) {
	if b != nil {
		b.binds = nil
		batchPool.Put(b)
	}
}

// BatchOperator is the batch-at-a-time physical operator interface,
// the Volcano protocol lifted to blocks: OpenBatch -> NextBatch* ->
// CloseBatch, with NextBatch returning nil at end of stream. Work
// counters accumulate locally and flush into the shared execCtx on
// CloseBatch, exactly like the row pipeline.
type BatchOperator interface {
	OpenBatch() error
	NextBatch() (*Batch, error)
	CloseBatch() error
	// Describe returns the one-line operator label for EXPLAIN.
	Describe() string
	// childNodes returns the operator's inputs (batch or row) for the
	// EXPLAIN tree walk.
	childNodes() []any
}

// ------------------------------------------------------- row adapters

// rowToBatchOp lifts an unconverted row operator (a join chain) into a
// batched plan: it pulls bindings from the child and blocks them into
// bindings-layout batches, so the batch decorators above keep working
// unchanged.
type rowToBatchOp struct {
	child Operator
	size  int

	buf *Batch
	// binds is the operator-owned bindings buffer, reused across pulls
	// (reset() drops the batch's binds reference — it doubles as the
	// layout discriminator — so capacity has to live here).
	binds []*binding
}

func (o *rowToBatchOp) OpenBatch() error {
	o.buf = getBatch()
	return o.child.Open()
}

func (o *rowToBatchOp) NextBatch() (*Batch, error) {
	b := o.buf
	b.reset()
	binds := o.binds[:0]
	for len(binds) < o.size {
		rb, err := o.child.Next()
		if err != nil {
			return nil, err
		}
		if rb == nil {
			break
		}
		binds = append(binds, rb)
	}
	o.binds = binds
	if len(binds) == 0 {
		return nil, nil
	}
	b.binds = binds
	return b, nil
}

func (o *rowToBatchOp) CloseBatch() error {
	putBatch(o.buf)
	o.buf = nil
	return o.child.Close()
}

func (o *rowToBatchOp) Describe() string  { return fmt.Sprintf("RowToBatch(size=%d)", o.size) }
func (o *rowToBatchOp) childNodes() []any { return []any{o.child} }

// batchToRowOp drives a batch subtree from a row consumer: the other
// adapter direction, used where a row operator (a join input) reads
// from a converted access path. Bindings handed out must survive the
// consumer holding them, so columnar rows materialize fresh bindings.
type batchToRowOp struct {
	child BatchOperator

	cur *Batch
	pos int
}

func (o *batchToRowOp) Open() error {
	o.cur, o.pos = nil, 0
	return o.child.OpenBatch()
}

func (o *batchToRowOp) Next() (*binding, error) {
	for {
		if o.cur != nil && o.pos < o.cur.Len() {
			b := o.cur.binding(o.pos)
			o.pos++
			return b, nil
		}
		nb, err := o.child.NextBatch()
		if err != nil || nb == nil {
			return nil, err
		}
		o.cur, o.pos = nb, 0
	}
}

func (o *batchToRowOp) Close() error {
	o.cur = nil
	return o.child.CloseBatch()
}

func (o *batchToRowOp) Describe() string     { return "BatchToRow" }
func (o *batchToRowOp) Children() []Operator { return nil }
func (o *batchToRowOp) childNodes() []any    { return []any{o.child} }
