package query

// The vector access-path operators: continuous-metric twins of the
// string operators in operators.go and batch_operators.go. VecNearestK
// and VecRange serve NEAREST / SIMILAR TO ... WITHIN over the vec
// column, backed by the relation's VP-tree when the metric satisfies
// the triangle inequality and by a metric scan otherwise (cosine).
//
// Determinism: every path — row scan, batch scan, VP-tree walk — calls
// the metric with the query vector as the first operand and admits
// candidates through the same (dist, id)-ordered best list, so row,
// batch, tree and brute-force executions produce byte-identical
// results (the property the vector parity oracle pins).

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/metric"
	"repro/internal/relation"
)

// ----------------------------------------------------- row nearest-k

// vecNearestKOp answers "vec NEAREST k TO [..]". The vptree variant
// walks the metric tree depth-first with a shrinking pruning radius;
// the scan variant keeps the same bounded (dist, id) best list over a
// full pass. Rows without a vector never qualify.
type vecNearestKOp struct {
	ctx        *execCtx
	snap       *relation.Snapshot
	alias      string
	via        string // "vptree" or "scan"
	target     metric.Vector
	k          int
	metricName string

	matches []index.Match
	pos     int
	last    ExecStats // retained across Close for span attribution
}

func (o *vecNearestKOp) opStats() ExecStats { return o.last }

func (o *vecNearestKOp) Open() error {
	o.pos = 0
	m, ok := metric.Lookup(o.metricName)
	if !ok {
		return fmt.Errorf("query: unknown metric %q", o.metricName)
	}
	if o.via == "vptree" {
		// The shared tree may hold tombstoned or post-snapshot entries;
		// the visibility filter keeps them out of the best list without
		// losing true answers.
		ms, st := o.snap.VPTree(m).NearestKFilterStats(o.target, o.k, o.snap.Visible)
		o.matches = ms
		es := fromIndexStats(st)
		o.last.add(es)
		o.ctx.addStats(es)
		return nil
	}
	var local ExecStats
	var best []index.Match
	cur := o.snap.Shard(0, 1)
	for t, ok := cur.Next(); ok; t, ok = cur.Next() {
		local.Candidates++
		if t.Vec == nil {
			continue
		}
		local.Verifications++
		// Full distance always (no early-abandon): the admission test
		// below then sees the exact same float64 the VP-tree walk and the
		// batch kernel compute, keeping every path bitwise-aligned.
		d := m.Dist(o.target, t.Vec)
		if len(best) < o.k || d <= best[len(best)-1].Dist {
			best = index.PushBestK(best, index.Match{ID: t.ID, Dist: d}, o.k)
		}
	}
	o.matches = best
	o.last.add(local)
	o.ctx.addStats(local)
	return nil
}

func (o *vecNearestKOp) Next() (*binding, error) {
	if o.pos >= len(o.matches) {
		return nil, nil
	}
	m := o.matches[o.pos]
	o.pos++
	t, _ := o.snap.Tuple(m.ID)
	b := newBinding(o.alias, t)
	b.dist, b.hasDist = m.Dist, true
	return b, nil
}

func (o *vecNearestKOp) Close() error {
	o.matches = nil
	return nil
}

func (o *vecNearestKOp) Describe() string {
	return fmt.Sprintf("VecNearestK(%s via %s, k=%d, metric=%s)", o.alias, o.via, o.k, o.metricName)
}

func (o *vecNearestKOp) Children() []Operator { return nil }

// --------------------------------------------------------- row range

// vecRangeOp streams matches of "vec SIMILAR TO [..] WITHIN r" from
// the VP-tree. The iterator is lazy, so a LIMIT above this operator
// stops the tree traversal early. As with the string indexes, the
// shared tree is a superset of the snapshot, so every match passes
// through the visibility filter.
type vecRangeOp struct {
	ctx        *execCtx
	snap       *relation.Snapshot
	alias      string
	target     metric.Vector
	radius     float64
	metricName string

	iter index.Iterator
	last ExecStats // retained across Close for span attribution
}

func (o *vecRangeOp) opStats() ExecStats { return o.last }

func (o *vecRangeOp) Open() error {
	m, ok := metric.Lookup(o.metricName)
	if !ok {
		return fmt.Errorf("query: unknown metric %q", o.metricName)
	}
	o.iter = o.snap.VPTree(m).RangeIter(o.target, o.radius)
	return nil
}

func (o *vecRangeOp) Next() (*binding, error) {
	for {
		m, ok := o.iter.Next()
		if !ok {
			return nil, nil
		}
		t, ok := o.snap.Tuple(m.ID)
		if !ok {
			continue // invisible at this snapshot (tombstone or later insert)
		}
		b := newBinding(o.alias, t)
		b.dist, b.hasDist = m.Dist, true
		return b, nil
	}
}

func (o *vecRangeOp) Close() error {
	if o.iter != nil {
		es := fromIndexStats(o.iter.Stats())
		o.last.add(es)
		o.ctx.addStats(es)
		o.iter = nil
	}
	return nil
}

func (o *vecRangeOp) Describe() string {
	return fmt.Sprintf("VecRange(%s via vptree, radius=%g, metric=%s)", o.alias, o.radius, o.metricName)
}

func (o *vecRangeOp) Children() []Operator { return nil }

// buildVecRange reconstructs the VP-tree range pipeline; extraction is
// deterministic, so the conjunct the decision was made for is found
// again.
func (e *Engine) buildVecRange(ctx *execCtx, q *Query, snap *relation.Snapshot, st relation.Stats, d *planDecision) (Operator, error) {
	sim, residual := extractVecRangeSim(q.Where)
	if sim == nil {
		return nil, fmt.Errorf("query: stale plan: no vector range conjunct")
	}
	est := estVecRangeRows(st, sim.Radius)
	var op Operator = tr(ctx, &vecRangeOp{
		ctx: ctx, snap: snap, alias: q.From[0].Alias,
		target: sim.Target.Vec, radius: sim.Radius, metricName: sim.RuleSet,
	}, est, d.kernel)
	if res := simplifyExpr(residual); !isTrivial(res) {
		op = tr(ctx, &filterOp{ctx: ctx, child: op, pred: res},
			estFilterRows(st, res, est), e.filterKernel(res))
	}
	return op, nil
}

// --------------------------------------------------- batch nearest-k

// batchVecNearestKOp is vecNearestKOp at block granularity: the scan
// variant pulls tuple blocks and evaluates the metric's block kernel
// (metric.DistBatch) over each vector column before folding the
// distances into the same bounded best list, the vptree variant reuses
// the tree's walk with the buffer-reusing Into form.
type batchVecNearestKOp struct {
	ctx        *execCtx
	snap       *relation.Snapshot
	alias      string
	via        string // "vptree" or "scan"
	target     metric.Vector
	k          int
	metricName string
	size       int

	matches []index.Match
	pos     int
	blk     relation.Block
	dbuf    []float64
	buf     *Batch
	last    ExecStats // retained across Close for span attribution
}

func (o *batchVecNearestKOp) opStats() ExecStats { return o.last }

func (o *batchVecNearestKOp) OpenBatch() error {
	o.pos = 0
	o.buf = getBatch()
	m, ok := metric.Lookup(o.metricName)
	if !ok {
		return fmt.Errorf("query: unknown metric %q", o.metricName)
	}
	if o.via == "vptree" {
		ms, st := o.snap.VPTree(m).NearestKFilterStatsInto(o.matches[:0], o.target, o.k, o.snap.Visible)
		o.matches = ms
		es := fromIndexStats(st)
		o.last.add(es)
		o.ctx.addStats(es)
		return nil
	}
	var local ExecStats
	best := o.matches[:0]
	cur := o.snap.Shard(0, 1)
	for {
		n := cur.NextBlock(&o.blk, o.size)
		if n == 0 {
			break
		}
		if cap(o.dbuf) < n {
			o.dbuf = make([]float64, n)
		}
		out := o.dbuf[:n]
		metric.DistBatch(m, o.target, o.blk.Vecs[:n], out)
		local.Candidates += n
		for i := 0; i < n; i++ {
			if o.blk.Vecs[i] == nil {
				continue // DistBatch yields +Inf; never admissible
			}
			local.Verifications++
			d := out[i]
			if len(best) < o.k || d <= best[len(best)-1].Dist {
				best = index.PushBestK(best, index.Match{ID: o.blk.IDs[i], Dist: d}, o.k)
			}
		}
	}
	o.matches = best
	o.last.add(local)
	o.ctx.addStats(local)
	return nil
}

func (o *batchVecNearestKOp) NextBatch() (*Batch, error) {
	if o.pos >= len(o.matches) {
		return nil, nil
	}
	b := o.buf
	b.reset()
	b.alias = o.alias
	for b.Len() < o.size && o.pos < len(o.matches) {
		m := o.matches[o.pos]
		o.pos++
		t, _ := o.snap.Tuple(m.ID)
		b.appendMatch(t, m.Dist, true)
	}
	return b, nil
}

func (o *batchVecNearestKOp) CloseBatch() error {
	o.matches = o.matches[:0]
	putBatch(o.buf)
	o.buf = nil
	return nil
}

func (o *batchVecNearestKOp) Describe() string {
	return fmt.Sprintf("VecNearestK(%s via %s, k=%d, metric=%s)", o.alias, o.via, o.k, o.metricName)
}

func (o *batchVecNearestKOp) childNodes() []any { return nil }

// ------------------------------------------------------- batch range

// batchVecRangeOp streams VP-tree range matches in blocks, applying
// the snapshot visibility filter per block; emission order is the
// tree's deterministic traversal order — identical to the row twin's.
type batchVecRangeOp struct {
	ctx        *execCtx
	snap       *relation.Snapshot
	alias      string
	target     metric.Vector
	radius     float64
	metricName string
	size       int

	iter index.BatchIterator
	mbuf []index.Match
	buf  *Batch
	last ExecStats // retained across Close for span attribution
}

func (o *batchVecRangeOp) opStats() ExecStats { return o.last }

func (o *batchVecRangeOp) OpenBatch() error {
	m, ok := metric.Lookup(o.metricName)
	if !ok {
		return fmt.Errorf("query: unknown metric %q", o.metricName)
	}
	it := o.snap.VPTree(m).RangeIter(o.target, o.radius)
	bi, ok := it.(index.BatchIterator)
	if !ok {
		bi = &iterBatcher{Iterator: it}
	}
	o.iter = bi
	if cap(o.mbuf) < o.size {
		o.mbuf = make([]index.Match, o.size)
	}
	o.buf = getBatch()
	return nil
}

func (o *batchVecRangeOp) NextBatch() (*Batch, error) {
	b := o.buf
	for {
		n := o.iter.NextBatch(o.mbuf[:o.size])
		if n == 0 {
			return nil, nil
		}
		b.reset()
		b.alias = o.alias
		for _, m := range o.mbuf[:n] {
			t, ok := o.snap.Tuple(m.ID)
			if !ok {
				continue // invisible at this snapshot (tombstone or later insert)
			}
			b.appendMatch(t, m.Dist, true)
		}
		if b.Len() > 0 {
			return b, nil
		}
	}
}

func (o *batchVecRangeOp) CloseBatch() error {
	if o.iter != nil {
		es := fromIndexStats(o.iter.Stats())
		o.last.add(es)
		o.ctx.addStats(es)
		o.iter = nil
	}
	putBatch(o.buf)
	o.buf = nil
	return nil
}

func (o *batchVecRangeOp) Describe() string {
	return fmt.Sprintf("VecRange(%s via vptree, radius=%g, metric=%s)", o.alias, o.radius, o.metricName)
}

func (o *batchVecRangeOp) childNodes() []any { return nil }

// ------------------------------------------------------ shard leaves

// shardVecNearestKOp is a vecNearestKOp over one shard snapshot; it
// exists so EXPLAIN shows which shard each k-best list comes from.
type shardVecNearestKOp struct {
	vecNearestKOp
	idx, of int
}

func (o *shardVecNearestKOp) Describe() string {
	return fmt.Sprintf("ShardVecNearestK(%s, shard %d/%d, via %s, k=%d, metric=%s)",
		o.alias, o.idx, o.of, o.via, o.k, o.metricName)
}

// batchShardVecNearestKOp is a batchVecNearestKOp over one shard
// snapshot.
type batchShardVecNearestKOp struct {
	batchVecNearestKOp
	idx, of int
}

func (o *batchShardVecNearestKOp) Describe() string {
	return fmt.Sprintf("ShardVecNearestK(%s, shard %d/%d, via %s, k=%d, metric=%s)",
		o.alias, o.idx, o.of, o.via, o.k, o.metricName)
}
