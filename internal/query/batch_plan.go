package query

// Batch plan construction. The planner's decide phase owns the
// `vectorize` choice (recorded in planDecision and therefore in
// plan-cache and prepared-decision keys); this file is the build half:
// given a vectorized decision it assembles the BatchOperator tree that
// mirrors the row plan shape node for node. Join chains build through
// buildBatchJoin (join_batch.go): partition steps run natively batched,
// nl/index steps run as row operators bridged by the adapters in
// batch.go, with the once-per-query start scan always reading through a
// batch cursor.

import (
	"fmt"

	"repro/internal/relation"
)

// batchLeafSize resolves the block size for a plan's leaf operators:
// the engine's configured batch size, capped by a LIMIT-without-ORDER
// so the pull-based limit pushdown keeps working at block granularity —
// a LIMIT 3 plan must not drag a 256-row block through the pipeline per
// pull. The cap is what bounds a vectorized plan's overshoot to at most
// one block beyond the row plan's candidate count.
func (e *Engine) batchLeafSize(q *Query) int {
	size := e.batchConfig()
	if size <= 0 {
		// Defensive: a vectorized decision is only made while batching is
		// enabled, and changing the knob starts a fresh cache-key space.
		size = defaultBatchSize
	}
	if q.Limit > 0 && q.Order == OrderNone && q.Limit < size {
		size = q.Limit
	}
	return size
}

// buildBatchTree constructs the vectorized operator tree for a decided
// unsharded query; the structure mirrors buildPlan's row build exactly.
func (e *Engine) buildBatchTree(q *Query, d *planDecision, rels []*relation.Relation, snapOf func(*relation.Relation) *relation.Snapshot, ctx *execCtx, cp *compiledPlan) (*compiledPlan, error) {
	alias := q.From[0].Alias
	size := e.batchLeafSize(q)
	cp.batchSize = size
	cp.kernel = d.kernel
	st := rels[0].Stats()

	var access BatchOperator
	switch d.kind {
	case accessNearest:
		ne := q.Where.(NearestExpr)
		if isVecNearest(&ne) {
			access = trB(ctx, &batchVecNearestKOp{
				ctx: ctx, snap: snapOf(rels[0]), alias: alias,
				via: d.via, target: ne.Target.Vec, k: ne.K, metricName: ne.RuleSet, size: size,
			}, estNearestRows(st.VecCount, ne.K), d.kernel)
		} else {
			access = trB(ctx, &batchNearestKOp{
				ctx: ctx, snap: snapOf(rels[0]), alias: alias,
				via: d.via, target: ne.Target.Lit, k: ne.K, ruleSet: ne.RuleSet, size: size,
			}, estNearestRows(st.Count, ne.K), d.kernel)
		}
	case accessRange:
		if d.via == "vptree" {
			sim, residual := extractVecRangeSim(q.Where)
			if sim == nil {
				return nil, fmt.Errorf("query: stale plan: no vector range conjunct")
			}
			var op BatchOperator = trB(ctx, &batchVecRangeOp{
				ctx: ctx, snap: snapOf(rels[0]), alias: alias,
				target: sim.Target.Vec, radius: sim.Radius, metricName: sim.RuleSet, size: size,
			}, estVecRangeRows(st, sim.Radius), d.kernel)
			if res := simplifyExpr(residual); !isTrivial(res) {
				op = trB(ctx, &batchFilterOp{ctx: ctx, child: op, pred: res, alias: alias},
					estFilterRows(st, res, estOfBatch(op)), e.filterKernel(res))
			}
			access = op
			break
		}
		sim, residual := extractRangeSim(q.Where, e.rangeIndexable)
		if sim == nil {
			return nil, fmt.Errorf("query: stale plan: no indexable conjunct")
		}
		var op BatchOperator = trB(ctx, &batchIndexRangeOp{
			ctx: ctx, snap: snapOf(rels[0]), alias: alias, via: d.via,
			target: sim.Target.Lit, radius: int(sim.Radius), ruleSet: sim.RuleSet, size: size,
		}, estRangeRows(st, sim.Radius), d.kernel)
		if res := simplifyExpr(residual); !isTrivial(res) {
			op = trB(ctx, &batchFilterOp{ctx: ctx, child: op, pred: res, alias: alias},
				estFilterRows(st, res, estOfBatch(op)), e.filterKernel(res))
		}
		access = op
	case accessScan:
		snap := snapOf(rels[0])
		pred := simplifyExpr(q.Where)
		build := func(shard, shards int) BatchOperator {
			sc := newBatchScanOp(ctx, snap, alias, size)
			sc.shard, sc.shards = shard, shards
			var op BatchOperator = trB(ctx, sc, float64(st.Count)/float64(shards), "")
			if !isTrivial(pred) {
				op = trB(ctx, &batchFilterOp{ctx: ctx, child: op, pred: pred, alias: alias},
					estFilterRows(st, pred, estOfBatch(op)), e.filterKernel(pred))
			}
			return op
		}
		access = wrapBatchParallel(ctx, d, build)
	case accessJoin:
		var err error
		access, err = e.buildBatchJoin(ctx, q, rels, snapOf, d, size)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("query: unknown access kind %d", d.kind)
	}

	cp.broot = e.wrapBatchTop(q, access, alias, size, ctx)
	return cp, nil
}

// wrapBatchTop applies the shared decorator stack — OrderByDist,
// Project, Limit — above a batch access path, in the same order as the
// row build.
func (e *Engine) wrapBatchTop(q *Query, access BatchOperator, alias string, size int, ctx *execCtx) BatchOperator {
	top := access
	if q.Order == OrderDesc {
		top = trB(ctx, &batchOrderByDistOp{child: top, desc: true, size: size}, estOfBatch(top), "")
	} else if q.Order == OrderAsc {
		top = trB(ctx, &batchOrderByDistOp{child: top, size: size}, estOfBatch(top), "")
	}
	top = trB(ctx, &batchProjectOp{ctx: ctx, q: q, child: top, alias: alias}, estOfBatch(top), "")
	if q.Limit > 0 {
		top = trB(ctx, &batchLimitOp{child: top, n: q.Limit}, estLimitRows(q.Limit, estOfBatch(top)), "")
	}
	return top
}

// wrapBatchParallel applies the decision's parallelism choice to a
// batch pipeline factory.
func wrapBatchParallel(ctx *execCtx, d *planDecision, build func(shard, shards int) BatchOperator) BatchOperator {
	if d.parallel && d.workers > 1 {
		p := &batchParallelOp{ctx: ctx, workers: d.workers, build: build}
		if ctx.traced {
			// Prebuild every shard pipeline so each carries its own span
			// wrappers; OpenBatch runs the prebuilt instances and ANALYZE
			// merges their counters (untraced plans keep lazy per-Open
			// builds and pay nothing).
			p.prebuilt = make([]BatchOperator, d.workers)
			for i := range p.prebuilt {
				p.prebuilt[i] = build(i, d.workers)
			}
			p.template = p.prebuilt[0]
		} else {
			p.template = build(0, d.workers)
		}
		return trB(ctx, p, -1, "")
	}
	return build(0, 1)
}

// vectorizeNode is the EXPLAIN pseudo-root of a vectorized plan: it
// surfaces the planner's vectorize decision, the leaf block size and —
// when the plan has an edit-distance conjunct — which distance kernel
// serves it (bit-parallel Myers vs the weighted TargetDP).
type vectorizeNode struct {
	child  any
	size   int
	kernel string
}

func (v *vectorizeNode) Describe() string {
	if v.kernel != "" {
		return fmt.Sprintf("Vectorize(batch=%d, kernel=%s)", v.size, v.kernel)
	}
	return fmt.Sprintf("Vectorize(batch=%d)", v.size)
}
func (v *vectorizeNode) childNodes() []any { return []any{v.child} }
