package tsdb

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/rtree"
)

// DB is an in-memory time-series database with a k-index: an R*-tree
// over the 2+2k-dimensional polar feature space. All series must share
// one length. Build the index once after loading; queries are then
// read-only and safe to run concurrently.
type DB struct {
	k      int
	n      int // series length, fixed by the first Add
	raw    [][]float64
	coeffs [][]complex128 // unitary DFT of each normal form, full length
	feats  [][]float64
	means  []float64
	stds   []float64
	tree   *rtree.Tree
}

// New returns an empty database indexing the first k non-DC
// coefficients (the companion's experiments use k = 2: the second and
// third DFT terms).
func New(k int) (*DB, error) {
	if k < 1 {
		return nil, fmt.Errorf("tsdb: k must be >= 1, got %d", k)
	}
	return &DB{k: k}, nil
}

// K returns the number of indexed coefficients.
func (db *DB) K() int { return db.k }

// Len returns the number of series.
func (db *DB) Len() int { return len(db.raw) }

// SeriesLen returns the common series length (0 before the first Add).
func (db *DB) SeriesLen() int { return db.n }

// Series returns the raw series with the given id.
func (db *DB) Series(id int) ([]float64, error) {
	if id < 0 || id >= len(db.raw) {
		return nil, fmt.Errorf("tsdb: no series %d", id)
	}
	return db.raw[id], nil
}

// Coeffs returns the stored (normal-form) coefficient vector of a
// series. Callers must not modify it.
func (db *DB) Coeffs(id int) ([]complex128, error) {
	if id < 0 || id >= len(db.coeffs) {
		return nil, fmt.Errorf("tsdb: no series %d", id)
	}
	return db.coeffs[id], nil
}

// Add inserts a series and returns its id. Series must be non-constant
// and of equal length.
func (db *DB) Add(s []float64) (int, error) {
	if db.n == 0 {
		if 2*db.k >= len(s) {
			return 0, fmt.Errorf("tsdb: series length %d too short for k=%d", len(s), db.k)
		}
		db.n = len(s)
	}
	if len(s) != db.n {
		return 0, fmt.Errorf("tsdb: series length %d, want %d", len(s), db.n)
	}
	feat, X, mean, std, err := FeaturePoint(s, db.k)
	if err != nil {
		return 0, err
	}
	cp := make([]float64, len(s))
	copy(cp, s)
	id := len(db.raw)
	db.raw = append(db.raw, cp)
	db.coeffs = append(db.coeffs, X)
	db.feats = append(db.feats, feat)
	db.means = append(db.means, mean)
	db.stds = append(db.stds, std)
	db.tree = nil
	return id, nil
}

// MeanStd returns the stored mean and standard deviation of a series
// (the companion's first two index dimensions, kept here as tuple
// attributes; see FeaturePoint).
func (db *DB) MeanStd(id int) (mean, std float64, err error) {
	if id < 0 || id >= len(db.means) {
		return 0, 0, fmt.Errorf("tsdb: no series %d", id)
	}
	return db.means[id], db.stds[id], nil
}

// Build constructs the R*-tree over the feature points. Queries build
// it lazily if needed; bulk callers invoke it once to keep timings
// honest.
func (db *DB) Build() error {
	tree, err := rtree.New(2*db.k, 32)
	if err != nil {
		return err
	}
	for id, f := range db.feats {
		if err := tree.Insert(id, f); err != nil {
			return err
		}
	}
	db.tree = tree
	return nil
}

func (db *DB) ensureTree() error {
	if db.tree == nil {
		return db.Build()
	}
	return nil
}

// Match is one range-query answer.
type Match struct {
	ID   int
	Dist float64
}

// Stats reports the work a query did.
type Stats struct {
	NodeAccesses int
	Candidates   int // entries that reached exact verification
}

// queryFeatures prepares the query's coefficient vector and feature
// point from a raw series.
func (db *DB) queryFeatures(q []float64) ([]float64, []complex128, error) {
	if len(q) != db.n {
		return nil, nil, fmt.Errorf("tsdb: query length %d, want %d", len(q), db.n)
	}
	return db.newFeatures(q)
}

func (db *DB) newFeatures(q []float64) ([]float64, []complex128, error) {
	feat, X, _, _, err := FeaturePoint(q, db.k)
	if err != nil {
		return nil, nil, err
	}
	return feat, X, nil
}

// exactDist computes D(T(X_id), Q) over the full coefficient vectors,
// aborting early (ok=false) once the partial sum exceeds eps². With
// T == nil the identity is used. This is both the verification step of
// the index path and the inner loop of the sequential-scan baseline.
func (db *DB) exactDist(id int, t *Transform, q []complex128, eps float64) (float64, bool) {
	x := db.coeffs[id]
	limit := eps * eps
	var sum float64
	for f := range x {
		v := x[f]
		if t != nil {
			v *= t.A[f]
		}
		d := v - q[f]
		sum += real(d)*real(d) + imag(d)*imag(d)
		if sum > limit {
			return 0, false
		}
	}
	return math.Sqrt(sum), true
}

// fullDist is exactDist without the early abort (the companion's
// method-a baseline).
func (db *DB) fullDist(id int, t *Transform, q []complex128) float64 {
	x := db.coeffs[id]
	var sum float64
	for f := range x {
		v := x[f]
		if t != nil {
			v *= t.A[f]
		}
		d := v - q[f]
		sum += real(d)*real(d) + imag(d)*imag(d)
	}
	return math.Sqrt(sum)
}

// RangeIndex answers the framework's range query with the k-index:
// all series x with D(T(X), Q) <= eps, where X is the normal-form
// coefficient vector of x and Q that of the query series. T == nil
// means identity. The index is traversed with T applied to node
// rectangles on the fly (Algorithm 2); candidates are verified exactly,
// so the answer set equals the sequential scan's (Lemma 1: no false
// dismissals).
func (db *DB) RangeIndex(q []float64, t *Transform, eps float64) ([]Match, Stats, error) {
	var st Stats
	if err := db.ensureTree(); err != nil {
		return nil, st, err
	}
	qFeat, qX, err := db.queryFeatures(q)
	if err != nil {
		return nil, st, err
	}
	rect, err := SearchRect(qFeat, eps)
	if err != nil {
		return nil, st, err
	}
	var tf *rtree.Affine
	if t != nil {
		tf, err = t.PolarAffine(db.k)
		if err != nil {
			return nil, st, err
		}
	}
	ids, sst, err := db.tree.SearchTransformed(rect, tf)
	if err != nil {
		return nil, st, err
	}
	st.NodeAccesses = sst.NodeAccesses
	var out []Match
	for _, id := range ids {
		st.Candidates++
		if d, ok := db.exactDist(id, t, qX, eps); ok {
			out = append(out, Match{ID: id, Dist: d})
		}
	}
	return out, st, nil
}

// RangeScan is the sequential-scan baseline over the frequency-domain
// relation, with the companion's early-abort optimisation (stop the
// distance computation as soon as it exceeds eps).
func (db *DB) RangeScan(q []float64, t *Transform, eps float64) ([]Match, Stats, error) {
	var st Stats
	_, qX, err := db.queryFeatures(q)
	if err != nil {
		return nil, st, err
	}
	var out []Match
	for id := range db.coeffs {
		st.Candidates++
		if d, ok := db.exactDist(id, t, qX, eps); ok {
			out = append(out, Match{ID: id, Dist: d})
		}
	}
	return out, st, nil
}

// JoinMethod selects one of the four self-join strategies of the
// companion's Table 1.
type JoinMethod int

// Join methods, in the order of Table 1.
const (
	JoinScanFull  JoinMethod = iota // a: scan, full distance computation
	JoinScanAbort                   // b: scan, early-abort distance
	JoinIndex                       // c: index probes, no transformation
	JoinIndexT                      // d: index probes with transformation
)

// String names the method as in Table 1.
func (m JoinMethod) String() string {
	switch m {
	case JoinScanFull:
		return "a (scan, full distance)"
	case JoinScanAbort:
		return "b (scan, early abort)"
	case JoinIndex:
		return "c (index, no transform)"
	case JoinIndexT:
		return "d (index, transformed)"
	default:
		return fmt.Sprintf("JoinMethod(%d)", int(m))
	}
}

// Pair is one join answer. Scan methods report each unordered pair
// once (i < j); index methods report ordered pairs, i.e. every
// unordered pair twice — matching how Table 1 counts answers.
type Pair struct {
	I, J int
	Dist float64
}

// SelfJoin runs the spatial self-join "all pairs with
// D(T(X), T(Y)) <= eps" with the chosen method. For JoinIndex the
// transformation is skipped entirely, as in the companion's method c
// (which is why its answer set differs).
func (db *DB) SelfJoin(method JoinMethod, t *Transform, eps float64) ([]Pair, Stats, error) {
	var st Stats
	switch method {
	case JoinScanFull, JoinScanAbort:
		abort := method == JoinScanAbort
		var out []Pair
		for i := 0; i < len(db.coeffs); i++ {
			ti, err := db.transformed(t, i)
			if err != nil {
				return nil, st, err
			}
			for j := i + 1; j < len(db.coeffs); j++ {
				st.Candidates++
				if abort {
					if d, ok := db.exactDist(j, t, ti, eps); ok {
						out = append(out, Pair{I: i, J: j, Dist: d})
					}
				} else {
					if d := db.fullDist(j, t, ti); d <= eps {
						out = append(out, Pair{I: i, J: j, Dist: d})
					}
				}
			}
		}
		return out, st, nil
	case JoinIndex, JoinIndexT:
		if err := db.ensureTree(); err != nil {
			return nil, st, err
		}
		useT := method == JoinIndexT
		var tf *rtree.Affine
		var err error
		if useT && t != nil {
			tf, err = t.PolarAffine(db.k)
			if err != nil {
				return nil, st, err
			}
		}
		var out []Pair
		for i := 0; i < len(db.coeffs); i++ {
			var probe []complex128
			if useT {
				probe, err = db.transformed(t, i)
				if err != nil {
					return nil, st, err
				}
			} else {
				probe = db.coeffs[i]
			}
			rect, err := SearchRect(coeffFeatures(probe, db.k), eps)
			if err != nil {
				return nil, st, err
			}
			ids, sst, err := db.tree.SearchTransformed(rect, tf)
			if err != nil {
				return nil, st, err
			}
			st.NodeAccesses += sst.NodeAccesses
			for _, j := range ids {
				if j == i {
					continue
				}
				st.Candidates++
				var vt *Transform
				if useT {
					vt = t
				}
				if d, ok := db.exactDist(j, vt, probe, eps); ok {
					out = append(out, Pair{I: i, J: j, Dist: d})
				}
			}
		}
		return out, st, nil
	default:
		return nil, st, fmt.Errorf("tsdb: unknown join method %d", method)
	}
}

// transformed returns T applied to series i's coefficients (or the
// stored coefficients for the identity).
func (db *DB) transformed(t *Transform, i int) ([]complex128, error) {
	if t == nil {
		return db.coeffs[i], nil
	}
	return t.Apply(db.coeffs[i])
}

// coeffFeatures rebuilds a feature point from a (possibly transformed)
// coefficient vector.
func coeffFeatures(X []complex128, k int) []float64 {
	p := make([]float64, 2*k)
	for f := 1; f <= k; f++ {
		p[2*f-2] = cmplx.Abs(X[f])
		p[2*f-1] = cmplx.Phase(X[f])
	}
	return p
}
