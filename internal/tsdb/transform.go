package tsdb

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dft"
	"repro/internal/rtree"
)

// Transform is a safe linear transformation on the Fourier-series
// representation of a sequence: per-coefficient complex multipliers
// (the pair (a, 0) of the paper — Theorem 3 makes multiplier-only
// transformations safe in the polar feature space, so translations are
// deliberately not representable here).
type Transform struct {
	Name string
	A    []complex128 // one multiplier per DFT coefficient
}

// Identity returns the identity transformation for length-n series
// (the control in the C8/C9 experiments).
func Identity(n int) *Transform {
	a := make([]complex128, n)
	for i := range a {
		a[i] = 1
	}
	return &Transform{Name: "identity", A: a}
}

// MovingAvg returns the l-day moving-average transformation for
// length-n series: multiplication by √n·DFT(kernel), which by the
// convolution-multiplication property equals circular convolution with
// the kernel (1/l, ..., 1/l, 0, ..., 0) in the time domain. The √n
// factor compensates the unitary DFT normalisation.
func MovingAvg(n, l int) (*Transform, error) {
	if l <= 0 || l > n {
		return nil, fmt.Errorf("tsdb: window %d outside [1,%d]", l, n)
	}
	kernel := make([]float64, n)
	for i := 0; i < l; i++ {
		kernel[i] = 1 / float64(l)
	}
	K := dft.TransformReal(kernel)
	a := make([]complex128, n)
	scale := complex(math.Sqrt(float64(n)), 0)
	for i := range a {
		a[i] = K[i] * scale
	}
	return &Transform{Name: fmt.Sprintf("mavg%d", l), A: a}, nil
}

// ReverseT returns the reversing transformation (a_f = -1 for all f).
func ReverseT(n int) *Transform {
	a := make([]complex128, n)
	for i := range a {
		a[i] = -1
	}
	return &Transform{Name: "reverse", A: a}
}

// WarpCoefficients returns the first k multipliers a_f of Appendix A,
// Equation 19: a_f = Σ_{t=0}^{m-1} e^{-j2πtf/(mn)}. Applied to the
// first k coefficients of a length-n series they produce (up to the
// appendix's 1/√n vs unitary normalisation, a constant √m) the first k
// coefficients of the m-fold time-warped series.
func WarpCoefficients(n, m, k int) ([]complex128, error) {
	if m < 1 {
		return nil, fmt.Errorf("tsdb: warp factor %d < 1", m)
	}
	if k < 0 || k > n {
		return nil, fmt.Errorf("tsdb: k %d outside [0,%d]", k, n)
	}
	a := make([]complex128, k)
	for f := 0; f < k; f++ {
		var sum complex128
		for t := 0; t < m; t++ {
			ang := -2 * math.Pi * float64(t) * float64(f) / float64(m*n)
			sum += cmplx.Exp(complex(0, ang))
		}
		a[f] = sum
	}
	return a, nil
}

// Apply multiplies the coefficient vector element-wise.
func (t *Transform) Apply(X []complex128) ([]complex128, error) {
	if len(X) != len(t.A) {
		return nil, fmt.Errorf("tsdb: transform %s is for length %d, got %d", t.Name, len(t.A), len(X))
	}
	out := make([]complex128, len(X))
	for i := range X {
		out[i] = t.A[i] * X[i]
	}
	return out, nil
}

// ApplySeries applies the transformation to a time-domain series by a
// round trip through the frequency domain.
func (t *Transform) ApplySeries(s []float64) ([]float64, error) {
	X := dft.TransformReal(s)
	Y, err := t.Apply(X)
	if err != nil {
		return nil, err
	}
	back := dft.Inverse(Y)
	out := make([]float64, len(back))
	for i, v := range back {
		out[i] = real(v)
	}
	return out, nil
}

// PolarAffine renders the transformation as a per-dimension affine map
// of the 2k-dimensional polar feature space: each coefficient's
// magnitude dimension is scaled by |a_f| and its phase dimension is
// shifted by Angle(a_f) — exactly the reduction in the proof of
// Theorem 3. k is the number of indexed coefficients, using multipliers
// a_1..a_k (a_0 acts on the DC coefficient, which is zero for normal
// forms and not indexed).
func (t *Transform) PolarAffine(k int) (*rtree.Affine, error) {
	if k+1 > len(t.A) {
		return nil, fmt.Errorf("tsdb: transform %s has %d coefficients, need %d", t.Name, len(t.A), k+1)
	}
	dim := 2 * k
	a := make([]float64, dim)
	b := make([]float64, dim)
	circ := make([]bool, dim)
	for f := 1; f <= k; f++ {
		a[2*f-2] = cmplx.Abs(t.A[f]) // magnitude dimension
		a[2*f-1] = 1                 // phase dimension
		b[2*f-1] = cmplx.Phase(t.A[f])
		circ[2*f-1] = true
	}
	return &rtree.Affine{A: a, B: b, Circular: circ}, nil
}

// FeaturePoint maps a series to its 2k-dimensional index point
// [|X_1|, ∠X_1, ..., |X_k|, ∠X_k] where X is the unitary DFT of the
// series' normal form; the mean and standard deviation of the raw
// series are returned alongside.
//
// The companion paper stored mean and std as two additional index
// dimensions (to serve GK95-style shift/scale queries). Similarity
// queries on normal forms never constrain those dimensions, and in an
// in-memory R*-tree two unconstrained large-scale axes dominate the
// splits and destroy pruning, so this implementation keeps mean/std as
// tuple attributes instead — a documented substitution that preserves
// the answer semantics of every reproduced experiment.
func FeaturePoint(s []float64, k int) (point []float64, coeffs []complex128, mean, std float64, err error) {
	if 2*k >= len(s) {
		return nil, nil, 0, 0, fmt.Errorf("tsdb: k=%d too large for series of length %d", k, len(s))
	}
	norm, mean, std, err := NormalForm(s)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	X := dft.TransformReal(norm)
	p := make([]float64, 2*k)
	for f := 1; f <= k; f++ {
		p[2*f-2] = cmplx.Abs(X[f])
		p[2*f-1] = cmplx.Phase(X[f])
	}
	return p, X, mean, std, nil
}

// SearchRect builds the minimum bounding rectangle of the ε-ball around
// the query's feature point in the polar coordinate system (Figure 7 of
// the companion paper): magnitudes range over [m-ε, m+ε] (clamped at
// zero) and phases over α ± asin(ε/m), degrading to the full circle
// when ε >= m.
func SearchRect(queryFeatures []float64, eps float64) (rtree.Rect, error) {
	dim := len(queryFeatures)
	if dim < 2 || dim%2 != 0 {
		return rtree.Rect{}, fmt.Errorf("tsdb: bad feature dimension %d", dim)
	}
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for d := 0; d < dim; d += 2 {
		m := queryFeatures[d]
		lo[d] = math.Max(0, m-eps)
		hi[d] = m + eps
		alpha := queryFeatures[d+1]
		if eps >= m {
			lo[d+1], hi[d+1] = -math.Pi, math.Pi
			continue
		}
		theta := math.Asin(eps / m)
		a, b := alpha-theta, alpha+theta
		// Wrap-aware: widen to the full circle when crossing ±π.
		if a < -math.Pi || b > math.Pi {
			a, b = -math.Pi, math.Pi
		}
		lo[d+1], hi[d+1] = a, b
	}
	return rtree.NewRect(lo, hi)
}
