// Package tsdb is the time-series instantiation of the similarity-query
// framework — the special case the companion implementation paper
// (Rafiei & Mendelzon, SIGMOD'97) evaluates. It demonstrates the
// framework's domain-independence next to the string domain.
//
// Objects are real-valued series mapped to points in a feature space:
// the mean and standard deviation of the raw series plus the first k
// non-DC DFT coefficients of its normal form, the coefficients in polar
// coordinates (Theorem 3: multiplier transformations are safe in Spol).
// Transformations are per-coefficient complex multipliers, rich enough
// for moving averages, reversal and time warping; queries run against
// an R*-tree whose node rectangles are transformed on the fly.
package tsdb

import (
	"fmt"
	"math"

	"repro/internal/dft"
)

// NormalForm returns (s - mean)/std along with the mean and standard
// deviation (population form, as in [GK95]). Constant series have no
// normal form.
func NormalForm(s []float64) (norm []float64, mean, std float64, err error) {
	if len(s) == 0 {
		return nil, 0, 0, fmt.Errorf("tsdb: empty series")
	}
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	for _, v := range s {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(s)))
	if std == 0 {
		return nil, mean, 0, fmt.Errorf("tsdb: constant series has no normal form")
	}
	norm = make([]float64, len(s))
	for i, v := range s {
		norm[i] = (v - mean) / std
	}
	return norm, mean, std, nil
}

// MovingAverage returns the circular l-day moving average used by the
// paper: ma[i] is the mean of the window ending at i, with the window
// wrapping to the end of the series at the beginning. It equals the
// circular convolution of s with the kernel (1/l, ..., 1/l, 0, ..., 0).
func MovingAverage(s []float64, l int) ([]float64, error) {
	n := len(s)
	if l <= 0 || l > n {
		return nil, fmt.Errorf("tsdb: window %d outside [1,%d]", l, n)
	}
	out := make([]float64, n)
	// Running sum over the circular window [i-l+1, i].
	var sum float64
	for j := n - l + 1; j <= n; j++ {
		sum += s[j%n]
	}
	// sum now covers the window ending at index 0.
	for i := 0; i < n; i++ {
		out[i] = sum / float64(l)
		// Slide: add s[i+1], drop s[i+1-l].
		sum += s[(i+1)%n] - s[(i+1-l+2*n)%n]
	}
	return out, nil
}

// Reverse returns the series multiplied by -1 (the Trev transformation
// of Example 2.2).
func Reverse(s []float64) []float64 {
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = -v
	}
	return out
}

// WarpSeries stretches the time dimension by m: every value is repeated
// m times (Appendix A, Equation 16).
func WarpSeries(s []float64, m int) []float64 {
	out := make([]float64, 0, len(s)*m)
	for _, v := range s {
		for j := 0; j < m; j++ {
			out = append(out, v)
		}
	}
	return out
}

// Euclid is the Euclidean distance between equal-length series.
func Euclid(x, y []float64) (float64, error) {
	return dft.DistReal(x, y)
}
