package tsdb

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dft"
	"repro/internal/stock"
)

func TestNormalForm(t *testing.T) {
	norm, mean, std, err := NormalForm([]float64{2, 4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if mean != 5 {
		t.Errorf("mean = %g", mean)
	}
	if math.Abs(std-math.Sqrt(5)) > 1e-12 {
		t.Errorf("std = %g, want √5", std)
	}
	var sum, sumsq float64
	for _, v := range norm {
		sum += v
		sumsq += v * v
	}
	if math.Abs(sum) > 1e-12 {
		t.Errorf("normal form mean = %g", sum/4)
	}
	if math.Abs(sumsq/4-1) > 1e-12 {
		t.Errorf("normal form variance = %g", sumsq/4)
	}
}

func TestNormalFormErrors(t *testing.T) {
	if _, _, _, err := NormalForm(nil); err == nil {
		t.Error("empty series accepted")
	}
	if _, _, _, err := NormalForm([]float64{3, 3, 3}); err == nil {
		t.Error("constant series accepted")
	}
}

func TestNormalFormFirstCoefficientZero(t *testing.T) {
	// The paper drops the first DFT coefficient because the normal
	// form's mean is zero.
	s := stock.Walk(rand.New(rand.NewSource(1)), 64)
	norm, _, _, err := NormalForm(s)
	if err != nil {
		t.Fatal(err)
	}
	X := dft.TransformReal(norm)
	if cmplx.Abs(X[0]) > 1e-9 {
		t.Errorf("X[0] = %v, want 0", X[0])
	}
}

func TestMovingAverageExample(t *testing.T) {
	// Example 1.1: the 3-day moving averages of s1 and s2 are close
	// (paper reports D = 0.47 for the non-circular version; the
	// circular variant matches to within the wrap effect).
	s1, s2 := stock.ExampleS1(), stock.ExampleS2()
	m1, err := MovingAverage(s1, 3)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MovingAverage(s2, 3)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := Euclid(s1, s2)
	smooth, _ := Euclid(m1, m2)
	if smooth >= raw/3 {
		t.Errorf("3-day MA distance %g not much smaller than raw %g", smooth, raw)
	}
	if math.Abs(raw-11.92) > 0.05 {
		t.Errorf("raw distance %g, paper says 11.92", raw)
	}
}

func TestMovingAverageWindowMean(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6}
	ma, err := MovingAverage(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// ma[i] = mean(s[i-1], s[i]) circularly; ma[0] = (s[5]+s[0])/2.
	want := []float64{3.5, 1.5, 2.5, 3.5, 4.5, 5.5}
	for i := range want {
		if math.Abs(ma[i]-want[i]) > 1e-12 {
			t.Errorf("ma[%d] = %g, want %g", i, ma[i], want[i])
		}
	}
}

func TestMovingAverageErrors(t *testing.T) {
	if _, err := MovingAverage([]float64{1, 2}, 0); err == nil {
		t.Error("window 0 accepted")
	}
	if _, err := MovingAverage([]float64{1, 2}, 3); err == nil {
		t.Error("window > n accepted")
	}
}

// TestMovingAvgTransformMatchesTimeDomain is the core frequency-domain
// identity: applying the MovingAvg transform to the DFT coefficients
// equals computing the circular moving average in the time domain.
func TestMovingAvgTransformMatchesTimeDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{8, 16, 64, 128} {
		s := stock.Walk(rng, n)
		for _, l := range []int{1, 3, 5} {
			tr, err := MovingAvg(n, l)
			if err != nil {
				t.Fatal(err)
			}
			viaFreq, err := tr.ApplySeries(s)
			if err != nil {
				t.Fatal(err)
			}
			viaTime, err := MovingAverage(s, l)
			if err != nil {
				t.Fatal(err)
			}
			for i := range viaTime {
				if math.Abs(viaFreq[i]-viaTime[i]) > 1e-8 {
					t.Fatalf("n=%d l=%d: freq %g vs time %g at %d", n, l, viaFreq[i], viaTime[i], i)
				}
			}
		}
	}
}

func TestReverseTransform(t *testing.T) {
	s := stock.Walk(rand.New(rand.NewSource(3)), 32)
	tr := ReverseT(32)
	got, err := tr.ApplySeries(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if math.Abs(got[i]+s[i]) > 1e-9 {
			t.Fatalf("reverse[%d] = %g, want %g", i, got[i], -s[i])
		}
	}
}

// TestWarpCoefficients verifies Appendix A: a_f · S_f equals the f-th
// DFT coefficient of the m-fold warped series (with the normalisation
// bridge: unitary DFT of the warp = a_f/√m · unitary DFT of the
// original).
func TestWarpCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 16} {
		for _, m := range []int{2, 3} {
			s := stock.Walk(rng, n)
			k := n / 2
			a, err := WarpCoefficients(n, m, k)
			if err != nil {
				t.Fatal(err)
			}
			S := dft.TransformReal(s)
			W := dft.TransformReal(WarpSeries(s, m))
			scale := complex(math.Sqrt(float64(m)), 0)
			for f := 0; f < k; f++ {
				want := a[f] * S[f] / scale
				if cmplx.Abs(W[f]-want) > 1e-8 {
					t.Fatalf("n=%d m=%d f=%d: warped %v, predicted %v", n, m, f, W[f], want)
				}
			}
		}
	}
}

func TestWarpSeries(t *testing.T) {
	got := WarpSeries([]float64{1, 2}, 3)
	want := []float64{1, 1, 1, 2, 2, 2}
	if len(got) != len(want) {
		t.Fatalf("WarpSeries = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WarpSeries = %v, want %v", got, want)
		}
	}
}

func TestWarpErrors(t *testing.T) {
	if _, err := WarpCoefficients(8, 0, 2); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := WarpCoefficients(8, 2, 9); err == nil {
		t.Error("k>n accepted")
	}
}

func TestIdentityTransform(t *testing.T) {
	s := stock.Walk(rand.New(rand.NewSource(5)), 16)
	tr := Identity(16)
	got, err := tr.ApplySeries(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if math.Abs(got[i]-s[i]) > 1e-9 {
			t.Fatalf("identity changed the series at %d", i)
		}
	}
}

func TestTransformApplyLengthMismatch(t *testing.T) {
	tr := Identity(8)
	if _, err := tr.Apply(make([]complex128, 4)); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestSrectComplexCounterexample reproduces the paper's demonstration
// that complex stretches are NOT safe in the rectangular space: with
// p = -5-5j, q = 5+5j, r = -2+2j inside rect(p,q), multiplying by
// s = 2-3j maps r outside the rectangle spanned by the images of p, q.
func TestSrectComplexCounterexample(t *testing.T) {
	p := complex(-5, -5)
	q := complex(5, 5)
	r := complex(-2, 2)
	s := complex(2, -3)
	inside := func(x, lo, hi complex128) bool {
		return real(x) >= math.Min(real(lo), real(hi)) && real(x) <= math.Max(real(lo), real(hi)) &&
			imag(x) >= math.Min(imag(lo), imag(hi)) && imag(x) <= math.Max(imag(lo), imag(hi))
	}
	if !inside(r, p, q) {
		t.Fatal("precondition: r inside rect(p,q)")
	}
	if inside(r*s, p*s, q*s) {
		t.Fatal("complex stretch kept r inside — the counterexample should fail")
	}
}

// TestSpolSafety verifies Theorem 3 numerically: multiplier transforms
// acting on (magnitude, phase) are per-dimension affine, so rectangle
// containment is preserved in Spol.
func TestSpolSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		// A random polar rectangle and a point inside it.
		mLo := rng.Float64() * 5
		mHi := mLo + rng.Float64()*5
		pLo := (rng.Float64() - 0.5) * 2
		pHi := pLo + rng.Float64()*1.5
		m := mLo + rng.Float64()*(mHi-mLo)
		ph := pLo + rng.Float64()*(pHi-pLo)
		// Transformed bounds.
		abs, ang := cmplx.Abs(a), cmplx.Phase(a)
		if abs == 0 {
			continue
		}
		if m*abs < mLo*abs-1e-12 || m*abs > mHi*abs+1e-12 {
			t.Fatal("magnitude left its interval")
		}
		if ph+ang < pLo+ang-1e-12 || ph+ang > pHi+ang+1e-12 {
			t.Fatal("phase left its interval")
		}
	}
}

func buildDB(t testing.TB, seed int64, count, length, k int) *DB {
	t.Helper()
	db, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stock.Walks(seed, count, length) {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Build(); err != nil {
		t.Fatal(err)
	}
	return db
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
}

// TestIndexMatchesScan is Lemma 1 in executable form: the k-index path
// returns exactly the scan's answer set, for identity and non-trivial
// transformations alike.
func TestIndexMatchesScan(t *testing.T) {
	db := buildDB(t, 7, 300, 128, 2)
	mavg, err := MovingAvg(128, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	transforms := []*Transform{nil, Identity(128), mavg, ReverseT(128)}
	for trial := 0; trial < 12; trial++ {
		q := stock.Walk(rng, 128)
		for _, tr := range transforms {
			for _, eps := range []float64{0.5, 2, 8} {
				idx, _, err := db.RangeIndex(q, tr, eps)
				if err != nil {
					t.Fatal(err)
				}
				scan, _, err := db.RangeScan(q, tr, eps)
				if err != nil {
					t.Fatal(err)
				}
				sortMatches(idx)
				sortMatches(scan)
				if len(idx) != len(scan) {
					name := "nil"
					if tr != nil {
						name = tr.Name
					}
					t.Fatalf("T=%s eps=%g: index %d answers, scan %d", name, eps, len(idx), len(scan))
				}
				for i := range idx {
					if idx[i].ID != scan[i].ID || math.Abs(idx[i].Dist-scan[i].Dist) > 1e-9 {
						t.Fatalf("answer %d differs: %+v vs %+v", i, idx[i], scan[i])
					}
				}
			}
		}
	}
}

func TestIndexPrunes(t *testing.T) {
	db := buildDB(t, 9, 2000, 128, 2)
	q := stock.Walk(rand.New(rand.NewSource(10)), 128)
	_, st, err := db.RangeIndex(q, nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates >= db.Len()/2 {
		t.Errorf("index verified %d of %d — no pruning", st.Candidates, db.Len())
	}
}

func TestSelfJoinMethodsAgree(t *testing.T) {
	db := buildDB(t, 11, 120, 64, 2)
	mavg, err := MovingAvg(64, 10)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 4.0
	a, _, err := db.SelfJoin(JoinScanFull, mavg, eps)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := db.SelfJoin(JoinScanAbort, mavg, eps)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := db.SelfJoin(JoinIndexT, mavg, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("scan-full %d pairs, scan-abort %d", len(a), len(b))
	}
	// Index method reports ordered pairs: exactly twice the scan count.
	if len(d) != 2*len(a) {
		t.Fatalf("index join %d ordered pairs, want %d", len(d), 2*len(a))
	}
	// Every scan pair appears in the index result.
	seen := map[[2]int]bool{}
	for _, p := range d {
		seen[[2]int{p.I, p.J}] = true
	}
	for _, p := range a {
		if !seen[[2]int{p.I, p.J}] || !seen[[2]int{p.J, p.I}] {
			t.Fatalf("pair %v missing from index join", p)
		}
	}
}

func TestSelfJoinPlainIndexDiffers(t *testing.T) {
	// Method c joins without the transformation; with a smoothing
	// transform the transformed join (d) finds at least as many pairs.
	db := buildDB(t, 13, 150, 64, 2)
	mavg, err := MovingAvg(64, 10)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 4.0
	c, _, err := db.SelfJoin(JoinIndex, nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := db.SelfJoin(JoinIndexT, mavg, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) < len(c) {
		t.Errorf("smoothing join found %d pairs < plain %d", len(d), len(c))
	}
}

func TestDBErrors(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("k=0 accepted")
	}
	db, _ := New(2)
	if _, err := db.Add([]float64{1, 2, 3}); err == nil {
		t.Error("too-short series accepted")
	}
	if _, err := db.Add(stock.Walk(rand.New(rand.NewSource(1)), 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Add(stock.Walk(rand.New(rand.NewSource(2)), 64)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := db.Series(99); err == nil {
		t.Error("Series(99) on 1-series DB")
	}
	if _, err := db.Coeffs(-1); err == nil {
		t.Error("Coeffs(-1)")
	}
	if _, _, err := db.RangeScan([]float64{1, 2}, nil, 1); err == nil {
		t.Error("query length mismatch accepted")
	}
	if _, _, err := db.SelfJoin(JoinMethod(42), nil, 1); err == nil {
		t.Error("unknown join method accepted")
	}
}

func TestJoinMethodString(t *testing.T) {
	for m, want := range map[JoinMethod]string{
		JoinScanFull: "a", JoinScanAbort: "b", JoinIndex: "c", JoinIndexT: "d",
	} {
		if got := m.String(); got[0] != want[0] {
			t.Errorf("%d.String() = %q", m, got)
		}
	}
}

func TestExample21Pipeline(t *testing.T) {
	// Example 2.1's pipeline on synthetic series: each step (shift,
	// scale, smooth) reduces the Euclidean distance between two related
	// series.
	rng := rand.New(rand.NewSource(14))
	base := stock.Walk(rng, 128)
	// A scaled, shifted, noisier sibling.
	other := make([]float64, 128)
	for i, v := range base {
		other[i] = 3*v + 40 + rng.Float64()*2 - 1
	}
	raw, _ := Euclid(base, other)
	n1, _, _, err := NormalForm(base)
	if err != nil {
		t.Fatal(err)
	}
	n2, _, _, err := NormalForm(other)
	if err != nil {
		t.Fatal(err)
	}
	normD, _ := Euclid(n1, n2)
	if normD >= raw {
		t.Errorf("normal form did not reduce distance: %g -> %g", raw, normD)
	}
	m1, _ := MovingAverage(n1, 20)
	m2, _ := MovingAverage(n2, 20)
	smoothD, _ := Euclid(m1, m2)
	if smoothD >= normD {
		t.Errorf("20-day MA did not reduce distance: %g -> %g", normD, smoothD)
	}
}
