// Package patdist evaluates the framework's pattern-similarity
// predicate: the minimum transformation distance from a sequence x to
// *any* member of the set denoted by a regular pattern e,
//
//	d(x, e) = min { d(x, y) : y ∈ L(e) }.
//
// For edit-like rule sets this is computable in polynomial time by
// shortest-path search over the product of the edit dynamic program with
// the pattern's NFA: nodes are (position in x, NFA state), edges are
// substitutions/matches (consume one x symbol and one NFA edge),
// deletions (consume one x symbol), insertions (traverse one NFA edge)
// and free ε-moves. With the Calculator's closed cost tables the result
// equals the true transformation distance into the language, which the
// tests verify against enumerate-and-DP.
package patdist

import (
	"container/heap"
	"math"

	"repro/internal/editdp"
	"repro/internal/pattern"
)

// Distance returns the minimum closed edit cost from x into the
// language of p, or +Inf if the language is unreachable (e.g. empty or
// requiring insertions no rule provides).
func Distance(c *editdp.Calculator, x string, p *pattern.Pattern) float64 {
	d, _, ok := search(c, x, p, math.Inf(1), false)
	if !ok {
		return math.Inf(1)
	}
	return d
}

// Within returns the distance if it is at most budget, with ok
// reporting success. The search stops as soon as the best frontier cost
// exceeds the budget.
func Within(c *editdp.Calculator, x string, p *pattern.Pattern, budget float64) (float64, bool) {
	d, _, ok := search(c, x, p, budget, false)
	return d, ok
}

// NearestMember returns a member y of L(p) achieving the minimum
// distance from x within budget, together with that distance. ok is
// false when no member is reachable within budget.
func NearestMember(c *editdp.Calculator, x string, p *pattern.Pattern, budget float64) (string, float64, bool) {
	d, y, ok := search(c, x, p, budget, true)
	return y, d, ok
}

// EnumerateAndDP is the brute-force baseline for the F4 experiment: it
// enumerates language members up to maxLen/limit and runs the pairwise
// DP against each. It returns the best distance within budget. Unlike
// the product search it can miss members beyond the enumeration bound —
// the experiment shows exactly that failure mode alongside the slowdown.
func EnumerateAndDP(c *editdp.Calculator, x string, p *pattern.Pattern, maxLen, limit int, budget float64) (float64, bool) {
	best := math.Inf(1)
	for _, y := range p.Enumerate(maxLen, limit) {
		if d := c.Distance(x, y); d < best {
			best = d
		}
	}
	return best, best <= budget
}

type pnode struct {
	id int // i*numStates + q
	g  float64
	// choice tracking for NearestMember
	parent int // previous node id, -1 for roots
	emit   int // emitted symbol (0..255) or -1
}

type pheap []pnode

func (h pheap) Len() int            { return len(h) }
func (h pheap) Less(i, j int) bool  { return h[i].g < h[j].g }
func (h pheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pheap) Push(x interface{}) { *h = append(*h, x.(pnode)) }
func (h *pheap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// search runs Dijkstra over the (position, state) product graph.
func search(c *editdp.Calculator, x string, p *pattern.Pattern, budget float64, track bool) (float64, string, bool) {
	if budget < 0 {
		return 0, "", false
	}
	nfa := p.NFA()
	ns := nfa.Size()
	n := len(x)
	size := (n + 1) * ns
	dist := make([]float64, size)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	var parents []pnode
	if track {
		parents = make([]pnode, size)
		for i := range parents {
			parents[i] = pnode{parent: -1, emit: -1}
		}
	}
	syms := c.MentionedSymbols()

	// minSubInto returns the cheapest cost of turning symbol a into any
	// symbol of the edge set, and that symbol.
	minSubInto := func(a byte, set pattern.ByteSet) (float64, int) {
		best, bestSym := math.Inf(1), -1
		if set.Contains(a) {
			return 0, int(a) // match
		}
		for _, b := range syms {
			if set.Contains(b) {
				if v := c.SubCost(a, b); v < best {
					best, bestSym = v, int(b)
				}
			}
		}
		return best, bestSym
	}
	// minInsInto returns the cheapest insertion producing a symbol of
	// the edge set, and that symbol.
	minInsInto := func(set pattern.ByteSet) (float64, int) {
		best, bestSym := math.Inf(1), -1
		for _, b := range syms {
			if set.Contains(b) {
				if v := c.InsCost(b); v < best {
					best, bestSym = v, int(b)
				}
			}
		}
		return best, bestSym
	}

	goal := n*ns + nfa.Accept
	pq := &pheap{}
	start := 0*ns + nfa.Start
	dist[start] = 0
	heap.Push(pq, pnode{id: start, g: 0, parent: -1, emit: -1})

	relax := func(id int, g float64, parent, emit int) {
		if g > budget || g >= dist[id] {
			return
		}
		dist[id] = g
		if track {
			parents[id] = pnode{id: id, g: g, parent: parent, emit: emit}
		}
		heap.Push(pq, pnode{id: id, g: g, parent: parent, emit: emit})
	}

	for pq.Len() > 0 {
		nd := heap.Pop(pq).(pnode)
		if nd.g > dist[nd.id] {
			continue
		}
		if nd.id == goal {
			return nd.g, rebuild(parents, nd.id, track), true
		}
		i, q := nd.id/ns, nd.id%ns
		st := nfa.States[q]
		// ε-moves: free.
		for _, t := range st.Eps {
			relax(i*ns+t, nd.g, nd.id, -1)
		}
		// Deletion: consume x[i].
		if i < n {
			relax((i+1)*ns+q, nd.g+c.DelCost(x[i]), nd.id, -1)
		}
		for _, e := range st.Edges {
			// Insertion: emit a symbol without consuming input.
			if g, sym := minInsInto(e.Set); sym >= 0 {
				relax(i*ns+e.To, nd.g+g, nd.id, sym)
			}
			// Match/substitution: consume x[i] and emit.
			if i < n {
				if g, sym := minSubInto(x[i], e.Set); sym >= 0 {
					relax((i+1)*ns+e.To, nd.g+g, nd.id, sym)
				}
			}
		}
	}
	return 0, "", false
}

func rebuild(parents []pnode, id int, track bool) string {
	if !track {
		return ""
	}
	var rev []byte
	for cur := id; cur >= 0; {
		p := parents[cur]
		if p.emit >= 0 {
			rev = append(rev, byte(p.emit))
		}
		cur = p.parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return string(rev)
}
