package patdist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/editdp"
	"repro/internal/pattern"
	"repro/internal/rewrite"
)

func calc(t *testing.T, alphabet string) *editdp.Calculator {
	t.Helper()
	c, err := editdp.New(rewrite.UnitEdits(alphabet))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDistanceMemberIsZero(t *testing.T) {
	c := calc(t, "abcd")
	p := pattern.MustCompile("a(b|c)*d")
	for _, s := range []string{"ad", "abd", "acbd"} {
		if got := Distance(c, s, p); got != 0 {
			t.Errorf("Distance(%q, %s) = %g, want 0", s, p, got)
		}
	}
}

func TestDistanceSimple(t *testing.T) {
	c := calc(t, "abcd")
	for _, tc := range []struct {
		x, pat string
		want   float64
	}{
		{"b", "a", 1},          // one substitution
		{"", "a", 1},           // one insertion
		{"ab", "a", 1},         // one deletion
		{"aa", "a+", 0},        // already a member
		{"bb", "a+", 2},        // substitute both
		{"abc", "abd", 1},      // last symbol
		{"d", "(a|b)(c|d)", 1}, // insert a or b
	} {
		p := pattern.MustCompile(tc.pat)
		if got := Distance(c, tc.x, p); got != tc.want {
			t.Errorf("Distance(%q, %q) = %g, want %g", tc.x, tc.pat, got, tc.want)
		}
	}
}

// TestMatchesEnumerateAndDP cross-checks the product search against the
// brute-force baseline on random inputs.
func TestMatchesEnumerateAndDP(t *testing.T) {
	c := calc(t, "abcd")
	pats := []string{"a(b|c)*d", "[ab]+c?", "(ab|ba)*", "a?b?c?d?", "(a|b)(c|d)+"}
	rng := rand.New(rand.NewSource(55))
	alpha := []byte("abcd")
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(4)]
		}
		return string(b)
	}
	for _, ps := range pats {
		p := pattern.MustCompile(ps)
		for trial := 0; trial < 40; trial++ {
			x := randStr(rng.Intn(7))
			got := Distance(c, x, p)
			// Enumerate generously: strings within distance d of x have
			// length <= len(x)+d; d <= len(x)+shortest member length.
			want, _ := EnumerateAndDP(c, x, p, len(x)+8, 100000, math.Inf(1))
			if got != want {
				t.Fatalf("Distance(%q, %q) = %g, EnumerateAndDP = %g", x, ps, got, want)
			}
		}
	}
}

func TestWithin(t *testing.T) {
	c := calc(t, "ab")
	p := pattern.MustCompile("aaaa")
	// distance("bbbb", aaaa) = 4
	if _, ok := Within(c, "bbbb", p, 3); ok {
		t.Error("Within(3) accepted distance-4 input")
	}
	d, ok := Within(c, "bbbb", p, 4)
	if !ok || d != 4 {
		t.Errorf("Within(4) = %g,%v; want 4,true", d, ok)
	}
	if _, ok := Within(c, "bbbb", p, -1); ok {
		t.Error("negative budget accepted")
	}
}

func TestNearestMember(t *testing.T) {
	c := calc(t, "abcdx") // include x so the stray symbol is editable
	p := pattern.MustCompile("a(b|c)+d")
	y, d, ok := NearestMember(c, "axd", p, 10)
	if !ok {
		t.Fatal("NearestMember found nothing")
	}
	if !p.Match(y) {
		t.Errorf("NearestMember %q is not in L(p)", y)
	}
	if d != 1 {
		t.Errorf("NearestMember distance = %g, want 1", d)
	}
	if got := c.Distance("axd", y); got != d {
		t.Errorf("claimed distance %g, actual %g to %q", d, got, y)
	}
}

func TestNearestMemberRandom(t *testing.T) {
	c := calc(t, "abcd")
	rng := rand.New(rand.NewSource(66))
	alpha := []byte("abcd")
	p := pattern.MustCompile("(ab|cd)+")
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(4)]
		}
		x := string(b)
		y, d, ok := NearestMember(c, x, p, 100)
		if !ok {
			t.Fatalf("no member within 100 for %q", x)
		}
		if !p.Match(y) {
			t.Fatalf("witness %q not a member (x=%q)", y, x)
		}
		if got := c.Distance(x, y); got != d {
			t.Fatalf("witness distance %g != reported %g (x=%q y=%q)", got, d, x, y)
		}
		if want := Distance(c, x, p); want != d {
			t.Fatalf("NearestMember distance %g != Distance %g", d, want)
		}
	}
}

func TestUnreachableLanguage(t *testing.T) {
	// Rules only mention a,b; pattern requires z.
	c := calc(t, "ab")
	p := pattern.MustCompile("z")
	if got := Distance(c, "a", p); !math.IsInf(got, 1) {
		t.Errorf("Distance to z-language = %g, want +Inf", got)
	}
	if _, ok := Within(c, "a", p, 1e9); ok {
		t.Error("Within accepted unreachable language")
	}
}

func TestMatchingSymbolOutsideRules(t *testing.T) {
	// 'z' appears in no rule, but matching consumes it for free.
	c := calc(t, "ab")
	p := pattern.MustCompile("za")
	if got := Distance(c, "zb", p); got != 1 {
		t.Errorf("Distance(zb, za) = %g, want 1", got)
	}
}

func TestEmptyPatternEmptyString(t *testing.T) {
	c := calc(t, "ab")
	p := pattern.MustCompile("")
	if got := Distance(c, "", p); got != 0 {
		t.Errorf("Distance(\"\",ε) = %g, want 0", got)
	}
	if got := Distance(c, "ab", p); got != 2 {
		t.Errorf("Distance(ab,ε) = %g, want 2 deletions", got)
	}
}

func TestWeightedCosts(t *testing.T) {
	// Cheap insert of 'b' (0.2) vs expensive substitution a->b (5):
	// turning "a" into a member of "ab" should insert b at 0.2.
	rs := rewrite.MustRuleSet("w", []rewrite.Rule{
		rewrite.Insert('b', 0.2),
		rewrite.Subst('a', 'b', 5),
		rewrite.Delete('a', 0.7),
	})
	c, err := editdp.New(rs)
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.MustCompile("ab")
	if got := Distance(c, "a", p); got != 0.2 {
		t.Errorf("Distance = %g, want 0.2", got)
	}
	// "aa" -> "ab": delete one a (0.7) + insert b (0.2) = 0.9 beats sub 5.
	if got := Distance(c, "aa", p); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Distance(aa,ab) = %g, want 0.9", got)
	}
}

func TestEnumerateAndDPMissesBeyondBound(t *testing.T) {
	// The baseline's known failure mode: members longer than the
	// enumeration bound are invisible to it.
	c := calc(t, "ab")
	p := pattern.MustCompile("aaaaaaaa") // single member of length 8
	x := "aaaaaaaa"
	if got := Distance(c, x, p); got != 0 {
		t.Fatalf("product search = %g, want 0", got)
	}
	if _, ok := EnumerateAndDP(c, x, p, 4, 1000, 0); ok {
		t.Error("EnumerateAndDP with maxLen=4 found the length-8 member")
	}
}
