package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CheckExposition validates Prometheus text-format output line by
// line: every non-comment line must be `name[{labels}] value`, label
// blocks must balance their quotes and braces, and values must parse
// as floats. It is intentionally strict enough to catch malformed
// escaping or truncated histogram series; the registry's own tests and
// the /metrics handler test in cmd/simqd both run scrapes through it.
func CheckExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		sp := strings.LastIndexByte(text, ' ')
		if sp <= 0 {
			return fmt.Errorf("line %d: no value separator: %q", line, text)
		}
		name, val := text[:sp], text[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", line, val, err)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				return fmt.Errorf("line %d: unbalanced label block: %q", line, name)
			}
			if strings.Count(name, `"`)%2 != 0 {
				return fmt.Errorf("line %d: unbalanced quotes: %q", line, name)
			}
			name = name[:i]
		}
		for j := 0; j < len(name); j++ {
			c := name[j]
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (j > 0 && c >= '0' && c <= '9')
			if !ok {
				return fmt.Errorf("line %d: bad metric name %q", line, name)
			}
		}
	}
	return sc.Err()
}
