package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Span is one node of a runtime trace mirroring the physical plan: the
// operator's label plus the actuals its execution observed. EXPLAIN
// ANALYZE renders the tree next to the planner's estimates, the
// slow-query log emits it as one JSON object, and a later PR feeds the
// observed selectivities back into the cost model — the field set is
// shaped for exactly those three consumers.
//
// Wall time is inclusive: a parent's WallNS covers the time spent
// inside its children (the EXPLAIN ANALYZE convention), so the tree's
// root approximates the query's execution time.
type Span struct {
	// Op is the operator label as EXPLAIN renders it.
	Op string `json:"op"`
	// Kernel names the distance kernel the operator dispatched to
	// (myers, scalar, targetdp, vec-l2, vec-cosine); empty when the
	// operator computes no distances.
	Kernel string `json:"kernel,omitempty"`
	// EstRows is the planner's cardinality estimate (-1 = no estimate).
	EstRows float64 `json:"est_rows"`
	// Rows counts the rows the operator actually emitted.
	Rows int64 `json:"rows"`
	// Batches counts NextBatch calls that produced a batch (batch
	// pipeline only).
	Batches int64 `json:"batches,omitempty"`
	// WallNS is the inclusive wall time spent inside the operator.
	WallNS int64 `json:"wall_ns"`
	// Candidates / Verifications are the operator's own contribution to
	// the query's work counters (not cumulative over children).
	Candidates    int64 `json:"candidates,omitempty"`
	Verifications int64 `json:"verifications,omitempty"`
	// IndexNodes / IndexPruned count tree-index nodes visited and
	// subtrees skipped by pruning bounds during the operator's
	// traversals.
	IndexNodes  int64 `json:"index_nodes,omitempty"`
	IndexPruned int64 `json:"index_pruned,omitempty"`
	// Abandoned counts distance computations cut short by the
	// early-abandon bound (a Within verdict reached before the full
	// distance was computed).
	Abandoned int64 `json:"abandoned,omitempty"`
	// Instances is the number of executed operator instances folded
	// into this span (parallel workers / shard fan-out); 0 or 1 means a
	// single instance.
	Instances int `json:"instances,omitempty"`
	// Shards carries the per-shard (or per-worker) drain timings of a
	// scatter-gather operator.
	Shards []ShardTiming `json:"shards,omitempty"`
	// Children are the operator's inputs, in plan order.
	Children []*Span `json:"children,omitempty"`
}

// ShardTiming is one shard's contribution to a scatter-gather fan-out:
// how long its drain took and how many rows it produced.
type ShardTiming struct {
	Shard  int   `json:"shard"`
	WallNS int64 `json:"wall_ns"`
	Rows   int64 `json:"rows"`
}

// Merge folds another instance of the same logical operator into s:
// counters add, wall time takes the maximum (parallel instances
// overlap, so summing would overstate elapsed time), and shard timings
// concatenate. Children are left alone — callers merge child lists in
// lockstep.
func (s *Span) Merge(o *Span) {
	if o == nil {
		return
	}
	s.Rows += o.Rows
	s.Batches += o.Batches
	s.Candidates += o.Candidates
	s.Verifications += o.Verifications
	s.IndexNodes += o.IndexNodes
	s.IndexPruned += o.IndexPruned
	s.Abandoned += o.Abandoned
	if o.WallNS > s.WallNS {
		s.WallNS = o.WallNS
	}
	s.Shards = append(s.Shards, o.Shards...)
	if s.Instances == 0 {
		s.Instances = 1
	}
	if o.Instances > 1 {
		s.Instances += o.Instances
	} else {
		s.Instances++
	}
}

// Selectivity returns rows-out / rows-in against the span's first
// child (the actual selectivity of a filtering operator); ok is false
// when there is no child or the child emitted nothing.
func (s *Span) Selectivity() (float64, bool) {
	if len(s.Children) == 0 || s.Children[0].Rows == 0 {
		return 0, false
	}
	return float64(s.Rows) / float64(s.Children[0].Rows), true
}

// Render pretty-prints the span tree with box-drawing connectors, one
// operator per line annotated with its actuals — the EXPLAIN ANALYZE
// output body.
func (s *Span) Render() string {
	var b strings.Builder
	s.render(&b, "", "")
	return strings.TrimRight(b.String(), "\n")
}

func (s *Span) render(b *strings.Builder, prefix, childPrefix string) {
	b.WriteString(prefix)
	b.WriteString(s.Op)
	b.WriteString("  (")
	b.WriteString(s.annotations())
	b.WriteString(")\n")
	for i, c := range s.Children {
		last := i == len(s.Children)-1
		connector, cont := "├─ ", "│  "
		if last {
			connector, cont = "└─ ", "   "
		}
		c.render(b, childPrefix+connector, childPrefix+cont)
	}
}

// annotations renders the per-operator actuals block.
func (s *Span) annotations() string {
	parts := make([]string, 0, 8)
	if s.EstRows >= 0 {
		parts = append(parts, fmt.Sprintf("est=%s rows=%d", formatEst(s.EstRows), s.Rows))
	} else {
		parts = append(parts, fmt.Sprintf("rows=%d", s.Rows))
	}
	parts = append(parts, "time="+formatDurationNS(s.WallNS))
	if s.Kernel != "" {
		parts = append(parts, "kernel="+s.Kernel)
	}
	if sel, ok := s.Selectivity(); ok {
		parts = append(parts, fmt.Sprintf("sel=%.4f", sel))
	}
	if s.Batches > 0 {
		parts = append(parts, fmt.Sprintf("batches=%d", s.Batches))
	}
	if s.Candidates > 0 || s.Verifications > 0 {
		parts = append(parts, fmt.Sprintf("cand=%d verif=%d", s.Candidates, s.Verifications))
	}
	if s.IndexNodes > 0 {
		parts = append(parts, fmt.Sprintf("nodes=%d pruned=%d", s.IndexNodes, s.IndexPruned))
	}
	if s.Abandoned > 0 {
		parts = append(parts, fmt.Sprintf("abandoned=%d", s.Abandoned))
	}
	if s.Instances > 1 {
		parts = append(parts, fmt.Sprintf("instances=%d", s.Instances))
	}
	if len(s.Shards) > 0 {
		sh := make([]string, len(s.Shards))
		for i, t := range s.Shards {
			sh[i] = fmt.Sprintf("%d:%s/%drows", t.Shard, formatDurationNS(t.WallNS), t.Rows)
		}
		parts = append(parts, "shards=["+strings.Join(sh, " ")+"]")
	}
	return strings.Join(parts, " ")
}

// formatEst renders a planner cardinality estimate: integers bare,
// anything fractional at one decimal — estimates carry no more
// precision than that, and full round-trip floats drown the plan tree.
func formatEst(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

// formatDurationNS renders a nanosecond count at millisecond-ish
// precision without pulling in time.Duration formatting noise.
func formatDurationNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
