package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestMetricsCounterConcurrent hammers one counter from many
// goroutines and checks nothing is lost (the -race CI step runs this
// through the 'Metric' pattern).
func TestMetricsCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter lost updates: got %d want %d", got, workers*per)
	}
}

// TestMetricsHistogramConcurrent checks concurrent observations keep
// count, sum and bucket totals consistent.
func TestMetricsHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 1000) // 0..0.099s
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count: got %d want %d", got, workers*per)
	}
	cum := h.Snapshot()
	if last := cum[len(cum)-1]; last != workers*per {
		t.Fatalf("+Inf bucket: got %d want %d", last, workers*per)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts not cumulative at %d: %v", i, cum)
		}
	}
	wantSum := float64(workers) * per * meanOfMod100() // per-value mean * n
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Fatalf("histogram sum: got %g want %g", h.Sum(), wantSum)
	}
}

func meanOfMod100() float64 {
	var s float64
	for i := 0; i < 100; i++ {
		s += float64(i) / 1000
	}
	return s / 100
}

// TestMetricsHistogramBounds pins the bucket assignment at the
// boundaries: Prometheus buckets are upper-inclusive (le).
func TestMetricsHistogramBounds(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	cum := h.Snapshot()
	want := []int64{2, 4, 6, 7} // le=1: {0.5,1}; le=2: +{1.5,2}; le=4: +{3,4}; +Inf: +{100}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("bucket %d: got %d want %d (all %v)", i, cum[i], w, cum)
		}
	}
}

// TestMetricsRegistryExposition checks the Prometheus text rendering:
// families grouped under one TYPE line, labels preserved, histogram
// series complete, and the whole dump parseable line by line.
func TestMetricsRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`simq_queries_total{kind="select"}`, "Queries executed.").Add(3)
	r.Counter(`simq_queries_total{kind="dml"}`, "Queries executed.").Add(1)
	r.Gauge("simq_rows", "Visible rows.").Set(42)
	r.GaugeFunc("simq_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	r.Histogram("simq_latency_seconds", "Latency.", []float64{0.001, 0.01}).Observe(0.002)
	r.Histogram(`simq_depth{index="bk"}`, "Depth.", []float64{2}).Observe(1)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# TYPE simq_queries_total counter",
		`simq_queries_total{kind="select"} 3`,
		`simq_queries_total{kind="dml"} 1`,
		"# TYPE simq_rows gauge",
		"simq_rows 42",
		"simq_uptime_seconds 1.5",
		"# TYPE simq_latency_seconds histogram",
		`simq_latency_seconds_bucket{le="0.001"} 0`,
		`simq_latency_seconds_bucket{le="0.01"} 1`,
		`simq_latency_seconds_bucket{le="+Inf"} 1`,
		"simq_latency_seconds_sum 0.002",
		"simq_latency_seconds_count 1",
		// A labeled histogram keeps the suffix on the family name, ahead
		// of its label block.
		`simq_depth_bucket{index="bk",le="2"} 1`,
		`simq_depth_sum{index="bk"} 1`,
		`simq_depth_count{index="bk"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition not parseable: %v\n%s", err, out)
	}
	// One TYPE line per family, even with several labeled series.
	if n := strings.Count(out, "# TYPE simq_queries_total"); n != 1 {
		t.Fatalf("family emitted %d TYPE lines, want 1:\n%s", n, out)
	}
}

// TestMetricsRegistryGetOrCreate checks the same name always resolves
// to the same metric (concurrently, for the race step).
func TestMetricsRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	ptrs := make([]*Counter, 8)
	for i := range ptrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ptrs[i] = r.Counter("simq_x_total", "x")
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(ptrs); i++ {
		if ptrs[i] != ptrs[0] {
			t.Fatal("Counter returned distinct instances for one name")
		}
	}
}

// TestMetricsSpanRenderAndMerge pins the span renderer's shape and the
// instance-merge semantics the fan-out aggregation relies on.
func TestMetricsSpanRenderAndMerge(t *testing.T) {
	leaf := &Span{Op: "Scan(words)", EstRows: 100, Rows: 90, WallNS: 2e6, Candidates: 90}
	root := &Span{Op: "Filter(sim)", EstRows: 10, Rows: 9, WallNS: 3e6, Kernel: "myers",
		Verifications: 90, Children: []*Span{leaf}}
	out := root.Render()
	for _, want := range []string{"Filter(sim)", "est=10 rows=9", "kernel=myers", "└─ Scan(words)", "sel=0.1000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	a := &Span{Op: "Scan", Rows: 10, WallNS: 5, Candidates: 10}
	b := &Span{Op: "Scan", Rows: 20, WallNS: 9, Candidates: 20}
	a.Merge(b)
	if a.Rows != 30 || a.Candidates != 30 {
		t.Fatalf("merge counters: %+v", a)
	}
	if a.WallNS != 9 {
		t.Fatalf("merge wall should take max, got %d", a.WallNS)
	}
	if a.Instances != 2 {
		t.Fatalf("merge instances: got %d want 2", a.Instances)
	}
}

// CheckExposition-based sanity for the default registry helpers.
func TestMetricsDefaultRegistry(t *testing.T) {
	c := Default.Counter("simq_test_probe_total", "probe")
	before := c.Value()
	c.Inc()
	if c.Value() != before+1 {
		t.Fatal("default registry counter did not increment")
	}
}
