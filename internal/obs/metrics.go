// Package obs is the engine's observability layer: a process-wide
// metrics registry (counters, gauges, fixed-bucket histograms) plus the
// Span tree that EXPLAIN ANALYZE and the slow-query log report.
//
// The registry is dependency-free and built for hot paths: counters are
// striped across cache-line-padded atomic cells (an Add is one atomic
// add on one of several cells, a few nanoseconds even under heavy
// cross-core contention), gauges are either a settable atomic or a
// callback read at scrape time, and histograms keep a fixed bucket
// layout so an Observe is a short bounds scan plus three atomic adds.
// Everything renders in the Prometheus text exposition format through
// WritePrometheus, which is how cmd/simqd's GET /metrics serves it.
//
// Metric naming follows the Prometheus conventions: snake_case names
// under the simq_ prefix, counters end in _total, units are spelled out
// (_seconds, _bytes). A name may carry inline labels —
// "simq_kernel_dispatch_total{kernel=\"myers\"}" — and series sharing
// the name before the '{' are grouped under one # HELP/# TYPE family.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// counterStripes is the number of padded cells a Counter spreads its
// adds across; a power of two comfortably above typical core counts.
const counterStripes = 8

// cell is one cache-line-padded counter stripe. The padding keeps two
// stripes from sharing a 64-byte line, so concurrent adders on
// different stripes never bounce a line between cores.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing striped atomic counter.
type Counter struct {
	cells [counterStripes]cell
}

// stripeHint derives a cheap per-goroutine stripe index: goroutine
// stacks live in distinct allocations, so the address of a stack
// variable — folded down past the alignment bits — spreads concurrent
// goroutines across stripes without any runtime hooks. The
// unsafe.Pointer only ever converts to uintptr (an integer), so the
// variable itself never escapes.
func stripeHint() int {
	var x byte
	p := uintptr(unsafe.Pointer(&x))
	return int((p>>9)^(p>>17)) & (counterStripes - 1)
}

// Add increments the counter by n (n must be >= 0 for Prometheus
// counter semantics; the registry does not enforce it).
func (c *Counter) Add(n int64) {
	c.cells[stripeHint()].n.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value folds the stripes into the counter's current value.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value (an atomic int64).
type Gauge struct {
	n atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.n.Load() }

// DefBuckets is the default latency histogram layout: exponential
// bounds from 50µs to ~26s (doubling), in seconds. The layout is fixed
// at registration so Observe never allocates or locks.
var DefBuckets = []float64{
	0.00005, 0.0001, 0.0002, 0.0004, 0.0008, 0.0016, 0.0032, 0.0064,
	0.0128, 0.0256, 0.0512, 0.1024, 0.2048, 0.4096, 0.8192, 1.6384,
	3.2768, 6.5536, 13.1072, 26.2144,
}

// Histogram is a fixed-bucket histogram of float64 observations
// (latencies in seconds by convention). Buckets, count and sum are all
// atomics, so concurrent Observe calls never lock; a scrape reads a
// near-consistent snapshot (bucket counts may be one observation ahead
// of the sum — Prometheus tolerates that skew by design).
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implied
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram builds a histogram over the given upper bounds
// (ascending; nil = DefBuckets). Prefer Registry.Histogram, which also
// registers it for exposition.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns the cumulative bucket counts (one per bound, plus
// the +Inf bucket last).
func (h *Histogram) Snapshot() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Registry is a named collection of metrics. Get-or-create lookups are
// guarded by a mutex — callers cache the returned pointers, so the
// lock is off every hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() float64{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// Default is the process-wide registry every engine layer writes to and
// cmd/simqd's /metrics serves.
var Default = NewRegistry()

// family strips the inline label block: the part of the series name
// before '{' names the metric family # HELP / # TYPE describe.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// setHelp records the family help text on first registration.
func (r *Registry) setHelp(name, help string) {
	if help == "" {
		return
	}
	f := family(name)
	if _, ok := r.help[f]; !ok {
		r.help[f] = help
	}
}

// Counter returns the named counter, creating it on first use. The
// name may carry inline labels; help describes the family.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
		r.setHelp(name, help)
	}
	return c
}

// Gauge returns the named settable gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
		r.setHelp(name, help)
	}
	return g
}

// GaugeFunc registers (or replaces) a callback gauge: fn is invoked at
// scrape time, so the series always reports live state without the
// owner pushing updates.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
	r.setHelp(name, help)
}

// Histogram returns the named histogram, creating it with the given
// bounds (nil = DefBuckets) on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
		r.setHelp(name, help)
	}
	return h
}

// labeled splits a series name into its family and an existing label
// block body ("" when unlabeled): "f{a=\"b\"}" -> ("f", `a="b"`).
func labeled(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// suffixed inserts a family suffix before any inline label block the
// series name carries: ("f{a=\"b\"}", "_sum") -> "f_sum{a=\"b\"}". The
// histogram renderer needs this — a labeled histogram's _bucket/_sum/
// _count series must keep the suffix on the metric name, not after the
// labels.
func suffixed(name, suffix string) string {
	fam, labels := labeled(name)
	if labels == "" {
		return fam + suffix
	}
	return fam + suffix + "{" + labels + "}"
}

// series appends an extra label to a series name, preserving any
// inline labels it already carries.
func series(name, extraKey, extraVal string) string {
	fam, labels := labeled(name)
	extra := fmt.Sprintf("%s=%q", extraKey, extraVal)
	if labels == "" {
		return fam + "{" + extra + "}"
	}
	return fam + "{" + labels + "," + extra + "}"
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), families sorted by name and
// series sorted within a family, so scrapes are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	type kind struct {
		typ    string
		series []string
	}
	fams := map[string]*kind{}
	add := func(name, typ string) {
		f := family(name)
		k := fams[f]
		if k == nil {
			k = &kind{typ: typ}
			fams[f] = k
		}
		k.series = append(k.series, name)
	}
	for name := range r.counters {
		add(name, "counter")
	}
	for name := range r.gauges {
		add(name, "gauge")
	}
	for name := range r.gaugeFns {
		add(name, "gauge")
	}
	for name := range r.hists {
		add(name, "histogram")
	}
	names := make([]string, 0, len(fams))
	for f := range fams {
		names = append(names, f)
	}
	sort.Strings(names)

	for _, f := range names {
		k := fams[f]
		if help := r.help[f]; help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f, k.typ)
		sort.Strings(k.series)
		for _, name := range k.series {
			switch k.typ {
			case "counter":
				fmt.Fprintf(w, "%s %d\n", name, r.counters[name].Value())
			case "gauge":
				if g, ok := r.gauges[name]; ok {
					fmt.Fprintf(w, "%s %d\n", name, g.Value())
				} else {
					fmt.Fprintf(w, "%s %s\n", name, formatFloat(r.gaugeFns[name]()))
				}
			case "histogram":
				h := r.hists[name]
				cum := h.Snapshot()
				for i, bound := range h.bounds {
					fmt.Fprintf(w, "%s %d\n", series(suffixed(name, "_bucket"), "le", formatFloat(bound)), cum[i])
				}
				fmt.Fprintf(w, "%s %d\n", series(suffixed(name, "_bucket"), "le", "+Inf"), cum[len(cum)-1])
				fmt.Fprintf(w, "%s %s\n", suffixed(name, "_sum"), formatFloat(h.Sum()))
				fmt.Fprintf(w, "%s %d\n", suffixed(name, "_count"), h.Count())
			}
		}
	}
	r.mu.RUnlock()
}

// formatFloat renders a float the way Prometheus clients do: integers
// without an exponent, everything else as the shortest round-trip
// decimal.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
