package storage

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metric"
	"repro/internal/relation"
)

// OpKind enumerates the mutations a Store applies.
type OpKind int

// Mutation kinds. The *At kinds carry caller-assigned ids: the
// segmented commit path reserves global ids up front so each WAL
// segment can be replayed independently of the others.
const (
	OpInsert OpKind = iota
	OpDelete
	OpUpdate
	OpInsertAt // insert under the explicit ID
	OpUpdateAt // update ID, installing the new version under NewID
)

// Op is one mutation against a named relation. Insert uses
// Seq/Vec/Attrs; Delete uses ID; Update uses ID plus the replacement
// Seq/Vec/Attrs; InsertAt additionally pins ID and UpdateAt pins NewID.
// Vec is the optional embedding column (nil = none).
type Op struct {
	Kind  OpKind
	Rel   string
	ID    int
	NewID int
	Seq   string
	Vec   metric.Vector
	Attrs map[string]string
}

// encodeVec renders a vector for a WAL record ("" = none); decodeVec
// reverses it on replay. The canonical literal round-trips float32 bit
// for bit, so replayed rows hash and measure identically.
func encodeVec(v metric.Vector) string {
	if v == nil {
		return ""
	}
	return metric.Format(v)
}

func decodeVec(s string) metric.Vector {
	if s == "" {
		return nil
	}
	v, err := metric.Parse(s)
	if err != nil {
		// A record that passed the CRC but carries an unreadable vector
		// can only come from hand-edited logs; drop the column rather
		// than the row.
		return nil
	}
	return v
}

// CommitResult reports what a committed transaction did.
type CommitResult struct {
	Tx          uint64 // WAL transaction id (0 when the commit was a no-op)
	Applied     int    // operations that took effect
	InsertedIDs []int  // ids assigned to inserts/updates, in op order
	Inserts     int    // applied ops by kind
	Deletes     int
	Updates     int
}

// applyBatch is the one implementation of "apply a batch of ops to
// relations", shared by the WAL-backed commit path and the storeless
// Apply fallback so the two can never drift. Runs of consecutive
// inserts into one relation apply as a single InsertBatch commit: one
// head copy and publish for the whole run, and the run becomes visible
// atomically (the common shapes — DML INSERT and /ingest — are exactly
// one such run).
func applyBatch(resolve func(string) (relation.Table, error), ops []Op) (CommitResult, error) {
	var res CommitResult
	for i := 0; i < len(ops); {
		op := ops[i]
		r, err := resolve(op.Rel)
		if err != nil {
			return res, err
		}
		if op.Kind == OpInsert {
			j := i
			for j < len(ops) && ops[j].Kind == OpInsert && ops[j].Rel == op.Rel {
				j++
			}
			rows := make([]relation.InsertRow, j-i)
			for k := i; k < j; k++ {
				rows[k-i] = relation.InsertRow{Seq: ops[k].Seq, Vec: ops[k].Vec, Attrs: ops[k].Attrs}
			}
			ids := r.InsertBatch(rows)
			res.InsertedIDs = append(res.InsertedIDs, ids...)
			res.Applied += len(ids)
			res.Inserts += len(ids)
			i = j
			continue
		}
		switch op.Kind {
		case OpDelete:
			if r.Delete(op.ID) {
				res.Applied++
				res.Deletes++
			}
		case OpUpdate:
			if id, ok := r.UpdateRow(op.ID, relation.InsertRow{Seq: op.Seq, Vec: op.Vec, Attrs: op.Attrs}); ok {
				res.InsertedIDs = append(res.InsertedIDs, id)
				res.Applied++
				res.Updates++
			}
		case OpInsertAt:
			// Batch a run of explicit-id inserts into one commit, mirroring
			// the OpInsert run optimisation (and keeping /ingest batches
			// atomically visible on sharded relations).
			j := i
			for j < len(ops) && ops[j].Kind == OpInsertAt && ops[j].Rel == op.Rel {
				j++
			}
			if j-i > 1 {
				ids := make([]int, j-i)
				rows := make([]relation.InsertRow, j-i)
				for k := i; k < j; k++ {
					ids[k-i] = ops[k].ID
					rows[k-i] = relation.InsertRow{Seq: ops[k].Seq, Vec: ops[k].Vec, Attrs: ops[k].Attrs}
				}
				type batchInserter interface {
					InsertBatchAt(ids []int, rows []relation.InsertRow) []int
				}
				if bi, ok := r.(batchInserter); ok {
					installed := bi.InsertBatchAt(ids, rows)
					res.InsertedIDs = append(res.InsertedIDs, installed...)
					res.Applied += len(installed)
					res.Inserts += len(installed)
					i = j
					continue
				}
			}
			if r.InsertRowAt(op.ID, relation.InsertRow{Seq: op.Seq, Vec: op.Vec, Attrs: op.Attrs}) {
				res.InsertedIDs = append(res.InsertedIDs, op.ID)
				res.Applied++
				res.Inserts++
			}
		case OpUpdateAt:
			if r.UpdateRowAt(op.ID, op.NewID, relation.InsertRow{Seq: op.Seq, Vec: op.Vec, Attrs: op.Attrs}) {
				res.InsertedIDs = append(res.InsertedIDs, op.NewID)
				res.Applied++
				res.Updates++
			}
		default:
			return res, fmt.Errorf("storage: unknown op kind %d", op.Kind)
		}
		i++
	}
	return res, nil
}

// Apply applies a batch directly to a catalog with no WAL — the
// storeless fallback used by the query engine and servers running
// without durability. Unknown relations error (nothing will replay to
// recreate them, so silent autocreation would hide typos).
func Apply(cat *relation.Catalog, ops []Op) (CommitResult, error) {
	return applyBatch(func(name string) (relation.Table, error) {
		r, ok := cat.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("storage: unknown relation %q", name)
		}
		return r, nil
	}, ops)
}

// Metrics is a snapshot of a store's write-side counters.
type Metrics struct {
	Commits    int64 `json:"commits"`
	Inserts    int64 `json:"inserts"`
	Deletes    int64 `json:"deletes"`
	Updates    int64 `json:"updates"`
	WALBytes   int64 `json:"wal_bytes"`
	ReplayedTx int   `json:"replayed_tx"`
	ReplayedOp int   `json:"replayed_ops"`
}

// Store gives a catalog of MVCC relations a durable write path: every
// commit is framed into the WAL (flushed, optionally fsynced) before
// its acknowledgement, and applied in memory under the store mutex, so
// reopening the store replays the log to the identical committed
// state. Writers serialize on the store's mutex for the append+apply
// critical section; the fsync happens OUTSIDE the mutex through a
// per-segment group-commit syncer, so concurrent committers share one
// fsync instead of queueing N of them. Acknowledgements retire in
// commit order (a dense sequence watermark), so a commit is never
// acknowledged while an earlier commit it may depend on is still
// waiting for the disk. Readers never touch the mutex — they read
// relation snapshots.
//
// Replay determinism: insert records carry no tuple id — ids are
// re-assigned by replay order — so the store must be opened over the
// same base catalog (e.g. the same -load files) every time, and once a
// store is attached all mutations must flow through it, never through
// direct relation calls.
//
// A segmented store (OpenSegmented) keeps one WAL file per shard:
// records targeting a ShardedRelation route to the segment of the shard
// that owns the row, and carry explicit global ids (reserved before
// logging) so each segment replays independently of the others'
// interleaving. Records for plain relations always land in segment 0.
// A commit spanning several segments is made atomic by a global commit
// record: each segment's part carries the transaction's GID and part
// count, and a recGlobal record in segment 0 seals the transaction.
// Replay applies a GID transaction only when the global record survived
// AND every part is present — a crash between segment appends can
// therefore never surface a partially-replayed cross-shard batch.
//
// Checkpoint serializes the whole catalog to a snapshot file (temp
// file + fsync + atomic rename + dir fsync), truncates every WAL
// segment, and records the covering LSN: reopen loads the snapshot and
// replays only the WAL tail past it.
type Store struct {
	mu          sync.Mutex
	cat         *relation.Catalog
	wals        []*wal // len >= 1; segment 0 is the default route
	lsn         uint64 // store-wide LSN counter shared by every segment
	gid         uint64 // cross-segment (global) transaction id allocator
	seqNext     uint64 // dense commit sequence, assigned under mu
	ckptPath    string
	groupCommit bool
	stopped     bool // fail-stop: a post-apply durability error poisoned the store
	lastCkpt    CheckpointInfo

	ackMu   sync.Mutex
	ackCond *sync.Cond
	ackNext uint64 // next commit sequence allowed to acknowledge

	commits    atomic.Int64
	inserts    atomic.Int64
	deletes    atomic.Int64
	updates    atomic.Int64
	replayedTx int
	replayedOp int
}

// Open opens (creating if needed) the WAL at path and replays every
// committed transaction into the catalog — from the checkpoint snapshot
// at path+".ckpt" first, when one exists, then the WAL tail past its
// covering LSN. Relations named by the log that are missing from the
// catalog are created and registered.
func Open(path string, cat *relation.Catalog) (*Store, error) {
	return openSegments([]string{path}, cat, path+".ckpt")
}

// OpenSegmented opens a store with one WAL segment per shard:
// "path.0" … "path.N-1" (checkpoint snapshot at "path.ckpt"). The
// catalog's sharded relations must already be registered (replay routes
// rows by the same hash partitioner that logged them, so the shard
// count must match the one the log was written under).
func OpenSegmented(path string, cat *relation.Catalog, segments int) (*Store, error) {
	if segments < 1 {
		segments = 1
	}
	paths := make([]string, segments)
	for i := range paths {
		paths[i] = fmt.Sprintf("%s.%d", path, i)
	}
	return openSegments(paths, cat, path+".ckpt")
}

func openSegments(paths []string, cat *relation.Catalog, ckptPath string) (*Store, error) {
	// A crash mid-checkpoint leaves a temp file; it was never renamed,
	// so it covers nothing and is safe to drop.
	os.Remove(ckptPath + ".tmp")

	ckptLSN, ckptGID, fromCkpt, err := loadCheckpoint(ckptPath, cat)
	if err != nil {
		return nil, err
	}
	s := &Store{cat: cat, ckptPath: ckptPath, groupCommit: true, lsn: ckptLSN, gid: ckptGID}
	s.ackCond = sync.NewCond(&s.ackMu)

	var (
		all       []walTx
		globals   = map[uint64]bool{}
		partsSeen = map[uint64]int{}
	)
	for _, p := range paths {
		w, rec, err := openWAL(p)
		if err != nil {
			for _, open := range s.wals {
				open.close()
			}
			return nil, err
		}
		s.wals = append(s.wals, w)
		for _, tx := range rec.txs {
			if tx.gid != 0 {
				partsSeen[tx.gid]++
			}
			// A committed zero-op transaction (valid but vacuous) has no
			// first record to sort on; replaying it is a no-op either way.
			if len(tx.ops) > 0 {
				all = append(all, tx)
			}
		}
		for g := range rec.globals {
			globals[g] = true
		}
		if rec.maxGID > s.gid {
			s.gid = rec.maxGID
		}
		if w.maxLSN > s.lsn {
			s.lsn = w.maxLSN
		}
	}
	// Every segment appends under the shared store-wide LSN counter, so
	// sorting the recovered transactions by their first record's LSN
	// reconstructs the original commit order across segments — the order
	// replay must follow when one commit's effects span shards.
	for _, w := range s.wals {
		w.lsn = &s.lsn
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ops[0].LSN < all[j].ops[0].LSN })
	start := time.Now()
	for _, tx := range all {
		if fromCkpt && tx.commitLSN <= ckptLSN {
			// Folded into the snapshot already (the checkpoint's covering
			// LSN was captured at a commit boundary; a crash between the
			// snapshot rename and the WAL truncation leaves these behind).
			continue
		}
		if tx.gid != 0 && (!globals[tx.gid] || partsSeen[tx.gid] != tx.parts) {
			// A cross-segment transaction missing its global record or any
			// of its parts was not fully durable at the crash: drop every
			// part, never replay it partially.
			continue
		}
		for i := range tx.ops {
			s.applyRecord(&tx.ops[i])
			s.replayedOp++
		}
		s.replayedTx++
	}
	mReplayMillis.Set(time.Since(start).Milliseconds())
	mReplayTx.Add(int64(s.replayedTx))
	mReplayOps.Add(int64(s.replayedOp))
	mReplayTailTx.Set(int64(s.replayedTx))
	return s, nil
}

// SetSync toggles fsync-per-commit (default on). With it off a commit
// still survives process death — the buffer is flushed to the OS — but
// not machine death.
func (s *Store) SetSync(sync bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.wals {
		w.sync = sync
	}
}

// SetGroupCommit toggles the group-commit fsync path (default on).
// With it off, a sync-enabled commit fsyncs its segments inside the
// store mutex — one fsync per commit, fully serialized. Exists for the
// benchmark pair that gates the group-commit win; production callers
// have no reason to turn it off.
func (s *Store) SetGroupCommit(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.groupCommit = on
}

// Catalog returns the catalog the store writes into.
func (s *Store) Catalog() *relation.Catalog { return s.cat }

// relFor returns the named table, creating and registering a plain
// relation on first use (the WAL may define relations the base catalog
// does not; sharded relations must be registered before replay).
func (s *Store) relFor(name string) relation.Table {
	if r, ok := s.cat.Lookup(name); ok {
		return r
	}
	r := relation.New(name)
	s.cat.Add(r)
	return r
}

// applyRecord applies one replayed WAL record to the catalog. Replay
// is tracked by ReplayedTx/ReplayedOp alone — the live write counters
// describe this process's traffic, not recovered history.
func (s *Store) applyRecord(rec *walRecord) {
	r := s.relFor(rec.Rel)
	row := relation.InsertRow{Seq: rec.Seq, Vec: decodeVec(rec.Vec), Attrs: rec.Attrs}
	switch rec.Kind {
	case recInsert:
		r.InsertBatch([]relation.InsertRow{row})
	case recDelete:
		r.Delete(rec.ID)
	case recUpdate:
		r.UpdateRow(rec.ID, row)
	case recInsertAt:
		r.InsertRowAt(rec.ID, row)
	case recUpdateAt:
		r.UpdateRowAt(rec.ID, rec.NewID, row)
	}
}

// retire blocks until every earlier commit has acknowledged, then
// releases this one's slot. Commit sequences are dense and assigned
// under the store mutex, so the watermark advances exactly once per
// commit — error paths included, or the pipeline would stall forever.
func (s *Store) retire(seq uint64) {
	s.ackMu.Lock()
	for s.ackNext != seq {
		s.ackCond.Wait()
	}
	s.ackNext++
	s.ackCond.Broadcast()
	s.ackMu.Unlock()
}

// failStop poisons the store after a post-apply durability error:
// in-memory state is ahead of what the log can promise, so continuing
// to acknowledge commits would silently widen the divergence.
func (s *Store) failStop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// Commit durably applies a batch of operations: the surviving ops are
// framed into the WAL as one transaction (log first), applied to the
// relations, and — when fsync is on — acknowledged only after the
// group-commit syncer reports the bytes durable. Deletes and updates
// whose target id is not currently visible are dropped before logging,
// so the log never carries no-ops and replay can apply every record
// blindly.
//
// Ops in one batch must reference pre-batch state: validation runs
// before any op applies, so a delete/update of a row inserted earlier
// in the same batch is dropped as a no-op (its id cannot be known when
// the batch is built anyway), and a delete/update naming a relation
// only created by an earlier insert in the batch errors. The query
// layer never produces such batches — each DML statement is single-
// kind — but direct Store users should commit dependent ops
// separately.
func (s *Store) Commit(ops []Op) (CommitResult, error) {
	s.mu.Lock()

	var res CommitResult
	if s.stopped {
		s.mu.Unlock()
		return res, fmt.Errorf("storage: store is fail-stopped after a durability error")
	}
	nseg := len(s.wals)
	segRecs := make([][]walRecord, nseg)
	kept := make([]Op, 0, len(ops))
	for _, op := range ops {
		var sh *relation.ShardedRelation
		if t, ok := s.cat.Lookup(op.Rel); ok {
			sh, _ = t.(*relation.ShardedRelation)
		}
		seg := 0
		var rec walRecord
		switch op.Kind {
		case OpInsert:
			rec = walRecord{Kind: recInsert, Rel: op.Rel, Seq: op.Seq, Vec: encodeVec(op.Vec), Attrs: op.Attrs}
			if sh != nil && nseg > 1 {
				// Segmented: reserve the global id now so the record can
				// carry it and land in the owning shard's segment.
				id := sh.ReserveIDs(1)[0]
				op = Op{Kind: OpInsertAt, Rel: op.Rel, ID: id, Seq: op.Seq, Vec: op.Vec, Attrs: op.Attrs}
				rec = walRecord{Kind: recInsertAt, Rel: op.Rel, ID: id, Seq: op.Seq, Vec: encodeVec(op.Vec), Attrs: op.Attrs}
				seg = relation.RouteOf(op.Seq, op.Vec, sh.NumShards()) % nseg
			}
		case OpDelete, OpUpdate:
			t, ok := s.cat.Lookup(op.Rel)
			if !ok {
				s.mu.Unlock()
				return res, fmt.Errorf("storage: unknown relation %q", op.Rel)
			}
			if _, visible := t.Tuple(op.ID); !visible {
				continue
			}
			kind := recDelete
			if op.Kind == OpUpdate {
				kind = recUpdate
			}
			rec = walRecord{Kind: kind, Rel: op.Rel, ID: op.ID, Seq: op.Seq, Vec: encodeVec(op.Vec), Attrs: op.Attrs}
			if sh != nil && nseg > 1 {
				seg = sh.ShardOfID(op.ID) % nseg
				if op.Kind == OpUpdate {
					newID := sh.ReserveIDs(1)[0]
					op = Op{Kind: OpUpdateAt, Rel: op.Rel, ID: op.ID, NewID: newID, Seq: op.Seq, Vec: op.Vec, Attrs: op.Attrs}
					rec = walRecord{Kind: recUpdateAt, Rel: op.Rel, ID: op.ID, NewID: newID, Seq: op.Seq, Vec: encodeVec(op.Vec), Attrs: op.Attrs}
				}
			}
		default:
			s.mu.Unlock()
			return res, fmt.Errorf("storage: unknown op kind %d", op.Kind)
		}
		segRecs[seg] = append(segRecs[seg], rec)
		kept = append(kept, op)
	}
	if len(kept) == 0 {
		s.mu.Unlock()
		return res, nil
	}

	touched := make([]int, 0, nseg)
	for seg, recs := range segRecs {
		if len(recs) > 0 {
			touched = append(touched, seg)
		}
	}
	var gid uint64
	parts := 0
	if len(touched) > 1 {
		// Cross-segment transaction: every part carries the GID and part
		// count, and a global record in segment 0 seals it. Replay
		// requires the seal AND all parts, so a crash that tears any of
		// the appends drops the transaction atomically.
		s.gid++
		gid = s.gid
		parts = len(touched)
	}

	var tx uint64
	for _, seg := range touched {
		t, err := s.wals[seg].appendTx(segRecs[seg], gid, parts)
		if err != nil {
			// Earlier segments keep their parts, but without the global
			// record replay drops them — the commit fails atomically.
			s.mu.Unlock()
			return res, fmt.Errorf("storage: WAL append (segment %d): %w", seg, err)
		}
		tx = t
	}
	if gid != 0 {
		if err := s.wals[0].appendGlobal(gid, parts); err != nil {
			s.mu.Unlock()
			return res, fmt.Errorf("storage: WAL global-commit append: %w", err)
		}
	}

	res, err := applyBatch(func(name string) (relation.Table, error) {
		return s.relFor(name), nil
	}, kept)
	res.Tx = tx
	if err != nil {
		// Cannot happen with validated kept ops; surface it loudly if a
		// future op kind slips past validation after logging.
		s.stopped = true
		s.mu.Unlock()
		return res, fmt.Errorf("storage: apply after WAL commit: %w", err)
	}

	// Capture fsync targets under the mutex — offsets and truncation
	// generations must describe the bytes THIS commit wrote — then sync
	// outside it so concurrent commits share fsyncs (group commit).
	type syncTarget struct {
		w   *wal
		off int64
		gen uint64
	}
	var targets []syncTarget
	syncSegs := touched
	if gid != 0 && segRecs[0] == nil {
		syncSegs = append(append(make([]int, 0, len(touched)+1), touched...), 0)
	}
	for _, seg := range syncSegs {
		w := s.wals[seg]
		if !w.sync {
			continue
		}
		if s.groupCommit {
			targets = append(targets, syncTarget{w: w, off: w.bytes, gen: w.generation()})
			continue
		}
		// Legacy path (bench baseline): one fsync per commit, serialized
		// under the store mutex exactly like the pre-group-commit store.
		start := time.Now()
		if err := syncFile(w.f); err != nil {
			s.stopped = true
			s.mu.Unlock()
			return res, fmt.Errorf("storage: WAL fsync (segment %d): %w", seg, err)
		}
		mWALFsync.Observe(time.Since(start).Seconds())
	}
	seq := s.seqNext
	s.seqNext++
	s.mu.Unlock()
	defer s.retire(seq)

	for _, t := range targets {
		if err := t.w.syncTo(t.off, t.gen); err != nil {
			s.failStop()
			return res, fmt.Errorf("storage: WAL fsync: %w", err)
		}
	}

	s.inserts.Add(int64(res.Inserts))
	s.deletes.Add(int64(res.Deletes))
	s.updates.Add(int64(res.Updates))
	s.commits.Add(1)
	mCommits.Inc()
	return res, nil
}

// Checkpoint serializes the catalog to the store's snapshot file and
// truncates every WAL segment. Stop-the-world: the store mutex is held
// across the dump, so the snapshot is one commit boundary and its
// covering LSN is exact — writers queue for the duration (dump cost is
// one sequential pass over the visible rows; see EXPERIMENTS.md for
// measured times). Commits already waiting on a group fsync when the
// truncation lands are released: their bytes are durable in the
// snapshot, which is exactly the guarantee they were waiting for.
func (s *Store) Checkpoint() (CheckpointInfo, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return CheckpointInfo{}, fmt.Errorf("storage: store is fail-stopped after a durability error")
	}
	rels, rows, bytes, err := writeCheckpoint(s.ckptPath, s.cat, s.lsn, s.gid)
	if err != nil {
		return CheckpointInfo{}, fmt.Errorf("storage: checkpoint: %w", err)
	}
	for i, w := range s.wals {
		if err := w.truncateAll(); err != nil {
			// The snapshot is durable and covers every logged transaction;
			// a tail that would not truncate merely costs replay-and-filter
			// work at the next open. Warn, don't fail the checkpoint.
			warnf("storage: WAL truncate after checkpoint failed segment=%d err=%q", i, err)
		}
	}
	info := CheckpointInfo{
		LSN:      s.lsn,
		Rels:     rels,
		Rows:     rows,
		Bytes:    bytes,
		Duration: time.Since(start),
		At:       start,
	}
	s.lastCkpt = info
	mCheckpoints.Inc()
	mCheckpointSeconds.Observe(info.Duration.Seconds())
	mCheckpointBytes.Set(bytes)
	mCheckpointRows.Set(int64(rows))
	return info, nil
}

// LastCheckpoint reports the most recent checkpoint written by THIS
// process (zero value when none); feeds /stats.
func (s *Store) LastCheckpoint() CheckpointInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastCkpt
}

// CheckpointPath returns the snapshot file path the store reads at
// open and Checkpoint writes.
func (s *Store) CheckpointPath() string { return s.ckptPath }

// Insert is a single-op Commit convenience; returns the assigned id.
func (s *Store) Insert(rel, seq string, attrs map[string]string) (int, error) {
	res, err := s.Commit([]Op{{Kind: OpInsert, Rel: rel, Seq: seq, Attrs: attrs}})
	if err != nil {
		return 0, err
	}
	return res.InsertedIDs[0], nil
}

// Delete is a single-op Commit convenience; false when id was not
// visible.
func (s *Store) Delete(rel string, id int) (bool, error) {
	res, err := s.Commit([]Op{{Kind: OpDelete, Rel: rel, ID: id}})
	if err != nil {
		return false, err
	}
	return res.Applied == 1, nil
}

// Update is a single-op Commit convenience; returns the replacement id.
func (s *Store) Update(rel string, id int, seq string, attrs map[string]string) (int, bool, error) {
	res, err := s.Commit([]Op{{Kind: OpUpdate, Rel: rel, ID: id, Seq: seq, Attrs: attrs}})
	if err != nil || res.Applied == 0 {
		return 0, false, err
	}
	return res.InsertedIDs[0], true, nil
}

// Segments returns the number of WAL segments the store writes.
func (s *Store) Segments() int { return len(s.wals) }

// Metrics snapshots the write-side counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	var bytes int64
	for _, w := range s.wals {
		bytes += w.bytes
	}
	s.mu.Unlock()
	return Metrics{
		Commits:    s.commits.Load(),
		Inserts:    s.inserts.Load(),
		Deletes:    s.deletes.Load(),
		Updates:    s.updates.Load(),
		WALBytes:   bytes,
		ReplayedTx: s.replayedTx,
		ReplayedOp: s.replayedOp,
	}
}

// Close flushes and closes every WAL segment. The store must not be
// used after (in-flight commits must have returned).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, w := range s.wals {
		if err := w.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
