package storage

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/relation"
)

func openTemp(t *testing.T, dir string) (*Store, *relation.Catalog) {
	t.Helper()
	cat := relation.NewCatalog()
	st, err := Open(filepath.Join(dir, "wal.log"), cat)
	if err != nil {
		t.Fatal(err)
	}
	st.SetSync(false) // tests exercise process-crash durability (flush), not fsync
	return st, cat
}

func TestCommitAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, cat := openTemp(t, dir)

	id, err := st.Insert("words", "hello", map[string]string{"lang": "en"})
	if err != nil || id != 0 {
		t.Fatalf("Insert = %d, %v", id, err)
	}
	if _, err := st.Insert("words", "world", nil); err != nil {
		t.Fatal(err)
	}
	if ok, err := st.Delete("words", 0); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	nid, ok, err := st.Update("words", 1, "mundo", map[string]string{"lang": "es"})
	if err != nil || !ok {
		t.Fatalf("Update = %v, %v", ok, err)
	}
	words, _ := cat.Get("words")
	want := words.Tuples()
	if len(want) != 1 || want[0].ID != nid || want[0].Seq != "mundo" {
		t.Fatalf("state after ops = %v", want)
	}

	// Reopen without Close: simulates a killed process (appends are
	// flushed per commit).
	st2, cat2 := openTemp(t, dir)
	defer st2.Close()
	words2, ok2 := cat2.Get("words")
	if !ok2 {
		t.Fatal("replay did not create relation")
	}
	if got := words2.Tuples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed state = %v, want %v", got, want)
	}
	m := st2.Metrics()
	if m.ReplayedTx != 4 || m.ReplayedOp != 4 {
		t.Errorf("replay metrics = %+v, want 4 tx / 4 ops", m)
	}
}

func TestNoOpMutationsAreNotLogged(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTemp(t, dir)
	if _, err := st.Insert("r", "a", nil); err != nil {
		t.Fatal(err)
	}
	before := st.Metrics().WALBytes
	if ok, err := st.Delete("r", 99); err != nil || ok {
		t.Fatalf("Delete(99) = %v, %v", ok, err)
	}
	res, err := st.Commit([]Op{{Kind: OpUpdate, Rel: "r", ID: 42, Seq: "x"}})
	if err != nil || res.Applied != 0 || res.Tx != 0 {
		t.Fatalf("no-op commit = %+v, %v", res, err)
	}
	if st.Metrics().WALBytes != before {
		t.Error("no-op mutations grew the WAL")
	}
}

func TestBatchCommitAtomicReplay(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTemp(t, dir)
	ops := make([]Op, 10)
	for i := range ops {
		ops[i] = Op{Kind: OpInsert, Rel: "b", Seq: fmt.Sprintf("s%d", i)}
	}
	res, err := st.Commit(ops)
	if err != nil || res.Applied != 10 || len(res.InsertedIDs) != 10 {
		t.Fatalf("batch commit = %+v, %v", res, err)
	}

	// Corrupt the tail: chop into the last frame. The final transaction
	// loses its commit record, so replay must drop the whole batch.
	path := filepath.Join(dir, "wal.log")
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	st2, cat2 := openTemp(t, dir)
	defer st2.Close()
	if b, ok := cat2.Get("b"); ok && b.Len() != 0 {
		t.Fatalf("torn batch partially replayed: %d rows", b.Len())
	}
}

func TestCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTemp(t, dir)
	if _, err := st.Insert("r", "keep", nil); err != nil {
		t.Fatal(err)
	}
	goodSize := st.Metrics().WALBytes
	if _, err := st.Insert("r", "lost", nil); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the second transaction: CRC mismatch.
	path := filepath.Join(dir, "wal.log")
	data, _ := os.ReadFile(path)
	data[goodSize+frameHeader+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, cat2 := openTemp(t, dir)
	r, _ := cat2.Get("r")
	if r.Len() != 1 {
		t.Fatalf("replayed %d rows, want 1 (corrupt tx dropped)", r.Len())
	}
	// The torn tail must have been truncated so new appends are clean.
	if _, err := st2.Insert("r", "after", nil); err != nil {
		t.Fatal(err)
	}
	st3, cat3 := openTemp(t, dir)
	defer st3.Close()
	r3, _ := cat3.Get("r")
	if got := r3.Tuples(); len(got) != 2 || got[1].Seq != "after" {
		t.Fatalf("post-truncate append replayed as %v", got)
	}
}

func TestFrameHeaderSanity(t *testing.T) {
	// An absurd length field must stop replay, not allocate 4GB.
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
	if err := os.WriteFile(path, hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	st, cat := openTemp(t, dir)
	defer st.Close()
	if len(cat.Names()) != 0 {
		t.Fatal("replayed relations from a corrupt header")
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTemp(t, dir)
	big := make([]byte, maxRecordLen+1)
	for i := range big {
		big[i] = 'a'
	}
	if _, err := st.Insert("r", string(big), nil); err == nil {
		t.Fatal("oversized record accepted; replay would truncate it as a corrupt tail")
	}
	// The failed append must leave the log clean for later commits.
	if _, err := st.Insert("r", "small", nil); err != nil {
		t.Fatal(err)
	}
	st2, cat2 := openTemp(t, dir)
	defer st2.Close()
	r, _ := cat2.Get("r")
	if got := r.Tuples(); len(got) != 1 || got[0].Seq != "small" {
		t.Fatalf("replay after rejected append = %v", got)
	}
}

func TestReplayDoesNotInflateLiveCounters(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTemp(t, dir)
	for i := 0; i < 5; i++ {
		if _, err := st.Insert("r", fmt.Sprintf("s%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	st2, _ := openTemp(t, dir)
	defer st2.Close()
	m := st2.Metrics()
	if m.Inserts != 0 || m.Commits != 0 {
		t.Fatalf("live counters after replay = %+v, want zeros", m)
	}
	if m.ReplayedTx != 5 || m.ReplayedOp != 5 {
		t.Fatalf("replay counters = %+v", m)
	}
}

// TestReplayDeterminism10k drives 10k random interleaved ops and checks
// that a reopened store replays to the byte-identical committed state.
func TestReplayDeterminism10k(t *testing.T) {
	dir := t.TempDir()
	st, cat := openTemp(t, dir)
	rng := rand.New(rand.NewSource(42))
	var ids []int
	for op := 0; op < 10000; op++ {
		switch {
		case len(ids) == 0 || rng.Intn(10) < 5:
			b := make([]byte, 2+rng.Intn(10))
			for j := range b {
				b[j] = byte('a' + rng.Intn(10))
			}
			id, err := st.Insert("w", string(b), map[string]string{"n": fmt.Sprint(op)})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		case rng.Intn(2) == 0:
			i := rng.Intn(len(ids))
			if ok, err := st.Delete("w", ids[i]); err != nil {
				t.Fatal(err)
			} else if ok {
				ids = append(ids[:i], ids[i+1:]...)
			}
		default:
			i := rng.Intn(len(ids))
			nid, ok, err := st.Update("w", ids[i], "u", nil)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				ids[i] = nid
			}
		}
	}
	w, _ := cat.Get("w")
	want := w.Tuples()

	st2, cat2 := openTemp(t, dir)
	defer st2.Close()
	w2, _ := cat2.Get("w")
	if got := w2.Tuples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay diverged: %d vs %d rows", len(got), len(want))
	}
}
