package storage

import (
	"encoding/binary"
	"fmt"
)

// Binary WAL record codec. The frame layout (length + CRC) is shared
// with the legacy JSON format; only the payload changes. A binary
// payload opens with a version byte that can never begin a JSON
// object ('{' is 0x7b), so replay distinguishes the two formats per
// record: logs written by older builds replay transparently, and a log
// that starts life as JSON simply continues in binary after the first
// append by a current build.
//
// Layout (all integers are unsigned varints, strings are a varint
// length followed by the raw bytes):
//
//	byte    version  (binVersion)
//	byte    kind     (binInsert .. binGlobal)
//	uvarint lsn
//	uvarint tx
//	string  rel
//	uvarint id
//	uvarint nid
//	string  seq
//	string  vec      (canonical vector literal, "" = none)
//	uvarint len(attrs), then len pairs of (string key, string value)
//	uvarint n        (commit: operation count)
//	uvarint gid      (global transaction id, 0 = single-segment)
//	uvarint parts    (segments the global transaction touched)
//
// Every field is present for every kind — empty fields cost one byte —
// which keeps the codec a single straight-line encoder/decoder instead
// of a per-kind switch, and means new fields extend every record
// uniformly. Compared to the JSON marshal this removes all field-name
// bytes, quoting, and reflection from the hot commit path.
const binVersion = 0x01

// Binary kind bytes, mapped 1:1 onto the record-kind strings.
const (
	binInsert = iota
	binDelete
	binUpdate
	binInsertAt
	binUpdateAt
	binCommit
	binGlobal
)

var kindToByte = map[string]byte{
	recInsert:   binInsert,
	recDelete:   binDelete,
	recUpdate:   binUpdate,
	recInsertAt: binInsertAt,
	recUpdateAt: binUpdateAt,
	recCommit:   binCommit,
	recGlobal:   binGlobal,
}

var byteToKind = [...]string{
	binInsert:   recInsert,
	binDelete:   recDelete,
	binUpdate:   recUpdate,
	binInsertAt: recInsertAt,
	binUpdateAt: recUpdateAt,
	binCommit:   recCommit,
	binGlobal:   recGlobal,
}

// appendString appends a varint-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeRecord appends the binary encoding of rec to dst and returns
// the extended slice. Callers reuse dst across records, so the encoder
// allocates nothing once the scratch buffer has grown to a typical
// record size.
func encodeRecord(dst []byte, rec *walRecord) ([]byte, error) {
	kind, ok := kindToByte[rec.Kind]
	if !ok {
		return nil, fmt.Errorf("storage: unknown record kind %q", rec.Kind)
	}
	dst = append(dst, binVersion, kind)
	dst = binary.AppendUvarint(dst, rec.LSN)
	dst = binary.AppendUvarint(dst, rec.Tx)
	dst = appendString(dst, rec.Rel)
	dst = binary.AppendUvarint(dst, uint64(rec.ID))
	dst = binary.AppendUvarint(dst, uint64(rec.NewID))
	dst = appendString(dst, rec.Seq)
	dst = appendString(dst, rec.Vec)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Attrs)))
	if len(rec.Attrs) > 0 {
		// Attribute order does not matter for replay (the map is
		// rebuilt), so the natural map order is fine on the hot path.
		for k, v := range rec.Attrs {
			dst = appendString(dst, k)
			dst = appendString(dst, v)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(rec.N))
	dst = binary.AppendUvarint(dst, rec.GID)
	dst = binary.AppendUvarint(dst, uint64(rec.Parts))
	return dst, nil
}

// binReader walks a binary payload; any overrun sets err and makes
// every later read a no-op, so the decoder checks once at the end.
type binReader struct {
	buf []byte
	err error
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("storage: truncated varint in binary record")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)) < n {
		r.err = fmt.Errorf("storage: truncated string in binary record")
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// decodeBinaryRecord parses one binary payload (version byte already
// verified by the caller). A payload that does not parse exactly —
// short fields or trailing garbage — is an error, which replay treats
// like a CRC failure: the log ends at the previous frame.
func decodeBinaryRecord(payload []byte, rec *walRecord) error {
	if len(payload) < 2 || payload[0] != binVersion {
		return fmt.Errorf("storage: bad binary record header")
	}
	kindByte := payload[1]
	if int(kindByte) >= len(byteToKind) {
		return fmt.Errorf("storage: unknown binary record kind %d", kindByte)
	}
	r := &binReader{buf: payload[2:]}
	rec.Kind = byteToKind[kindByte]
	rec.LSN = r.uvarint()
	rec.Tx = r.uvarint()
	rec.Rel = r.str()
	rec.ID = int(r.uvarint())
	rec.NewID = int(r.uvarint())
	rec.Seq = r.str()
	rec.Vec = r.str()
	nattrs := r.uvarint()
	if r.err == nil && nattrs > 0 {
		if nattrs > uint64(len(r.buf)) { // each pair needs >= 2 bytes
			return fmt.Errorf("storage: absurd attribute count in binary record")
		}
		attrs := make(map[string]string, nattrs)
		for i := uint64(0); i < nattrs && r.err == nil; i++ {
			k := r.str()
			attrs[k] = r.str()
		}
		rec.Attrs = attrs
	}
	rec.N = int(r.uvarint())
	rec.GID = r.uvarint()
	rec.Parts = int(r.uvarint())
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("storage: %d trailing bytes after binary record", len(r.buf))
	}
	return nil
}

// decodeRecord dispatches on the payload's first byte: '{' is the
// legacy JSON encoding, binVersion the binary one.
func decodeRecord(payload []byte, rec *walRecord) error {
	if len(payload) > 0 && payload[0] == '{' {
		return decodeJSONRecord(payload, rec)
	}
	return decodeBinaryRecord(payload, rec)
}
