package storage

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/relation"
)

func benchStore(b *testing.B) *Store {
	b.Helper()
	cat := relation.NewCatalog()
	cat.Add(relation.New("w"))
	st, err := Open(filepath.Join(b.TempDir(), "wal.log"), cat)
	if err != nil {
		b.Fatal(err)
	}
	st.SetSync(false) // measure the engine, not the disk's fsync latency
	b.Cleanup(func() { st.Close() })
	return st
}

// BenchmarkCommitInsert — one WAL commit per row: frame + flush + MVCC
// head publish + online index upkeep (indexes unbuilt here, so this is
// the write-path floor).
func BenchmarkCommitInsert(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Insert("w", fmt.Sprintf("seq%08d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommitBatch100 — 100 rows per WAL transaction; the per-row
// cost shows what batching (POST /ingest) amortises.
func BenchmarkCommitBatch100(b *testing.B) {
	st := benchStore(b)
	ops := make([]Op, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			ops[j] = Op{Kind: OpInsert, Rel: "w", Seq: fmt.Sprintf("seq%08d", i*100+j)}
		}
		if _, err := st.Commit(ops); err != nil {
			b.Fatal(err)
		}
	}
}

// Replay-history shape shared by the reopen benchmark pair: inserts,
// then update and delete churn (history a checkpoint folds away — the
// snapshot holds only the live rows, so its load cost scales with the
// database size while full replay scales with history length), then a
// short post-checkpoint tail.
const (
	reopenInserts = 4750 // ids 0..4749
	reopenUpdates = 2000 // ids 0..1999 replaced (one tx each)
	reopenDeletes = 1000 // ids 2000..2999 removed (one tx each)
	reopenTail    = 250  // transactions past the checkpoint
	reopenLive    = reopenInserts - reopenDeletes + reopenTail
)

// buildReplayWAL writes the churn history above as single-row
// transactions (the worst case for replay: one commit frame per tx)
// and, when ckpt is set, checkpoints before the tail so reopen loads
// the snapshot and replays only reopenTail transactions. Returns the
// WAL path.
func buildReplayWAL(b *testing.B, ckpt bool) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), "wal.log")
	cat := relation.NewCatalog()
	cat.Add(relation.New("w"))
	st, err := Open(path, cat)
	if err != nil {
		b.Fatal(err)
	}
	st.SetSync(false)
	for i := 0; i < reopenInserts; i++ {
		if _, err := st.Insert("w", fmt.Sprintf("seq%08d", i), map[string]string{"n": fmt.Sprint(i)}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < reopenUpdates; i++ {
		if _, ok, err := st.Update("w", i, fmt.Sprintf("upd%08d", i), nil); err != nil || !ok {
			b.Fatalf("update %d: ok=%v err=%v", i, ok, err)
		}
	}
	for i := reopenUpdates; i < reopenUpdates+reopenDeletes; i++ {
		if ok, err := st.Delete("w", i); err != nil || !ok {
			b.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	if ckpt {
		if _, err := st.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < reopenTail; i++ {
		if _, err := st.Insert("w", fmt.Sprintf("tail%07d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

func benchReopen(b *testing.B, ckpt bool) {
	path := buildReplayWAL(b, ckpt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat := relation.NewCatalog()
		cat.Add(relation.New("w"))
		st, err := Open(path, cat)
		if err != nil {
			b.Fatal(err)
		}
		w, _ := cat.Get("w")
		if w.Len() != reopenLive {
			b.Fatalf("recovered %d rows, want %d", w.Len(), reopenLive)
		}
		st.SetSync(false)
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReopenFullReplay — cold open of an 8000-transaction churn
// history with no checkpoint: every insert, update and delete replays
// through the MVCC apply path. The recovery-time baseline the
// checkpoint gate is measured against.
func BenchmarkReopenFullReplay(b *testing.B) { benchReopen(b, false) }

// BenchmarkReopenFromCheckpoint — the same history with a snapshot
// covering everything but a 250-transaction tail: open loads the live
// rows (tombstones and overwritten versions folded away) and replays
// only the tail. Gated in BENCH_baseline.json to stay at most half the
// full-replay time.
func BenchmarkReopenFromCheckpoint(b *testing.B) { benchReopen(b, true) }

// benchIngest drives bursts of concurrent single-row commits with
// fsync ON against real files — the sustained-ingest shape. Each b.N
// iteration runs 8 bursts of 64 concurrent writers, so the benchmark
// produces stable numbers even at CI's -benchtime=3x: per burst the
// per-commit path pays 64 serialized fsyncs while group commit pays a
// handful, and averaging 8 bursts per iteration washes out the
// scheduling jitter of any single burst (on fast-fsync machines the
// leader/follower handoff, not the fsync, is the variable cost).
func benchIngest(b *testing.B, group bool) {
	const burst = 64
	const rounds = 8
	// The pair measures concurrent committers, which needs at least two
	// runnable Ps: with GOMAXPROCS=1 the leader's blocking fsync parks
	// the only P until sysmon retakes it, commits trickle in one at a
	// time, and neither side of the pair batches — the ratio degenerates
	// to ~1 by scheduling accident, not by storage behavior. Both sides
	// run under the identical setting, so the gated ratio stays honest.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	cat := relation.NewCatalog()
	cat.Add(relation.New("w"))
	st, err := Open(filepath.Join(b.TempDir(), "wal.log"), cat)
	if err != nil {
		b.Fatal(err)
	}
	st.SetGroupCommit(group)
	b.Cleanup(func() { st.Close() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rounds; r++ {
			var wg sync.WaitGroup
			for g := 0; g < burst; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					if _, err := st.Insert("w", fmt.Sprintf("seq%08d-%d-%02d", i, r, g), nil); err != nil {
						b.Error(err)
					}
				}(g)
			}
			wg.Wait()
		}
	}
}

// BenchmarkIngestFsyncPerCommit — 32 concurrent committers, one fsync
// per commit inside the store mutex (group commit off): the fully
// serialized durability floor.
func BenchmarkIngestFsyncPerCommit(b *testing.B) { benchIngest(b, false) }

// BenchmarkIngestGroupCommit — the same burst with group commit on:
// one leader fsync covers every concurrently flushed commit. Gated in
// BENCH_baseline.json to stay at least 1.5x faster than the
// fsync-per-commit floor (max_ratio 0.667).
func BenchmarkIngestGroupCommit(b *testing.B) { benchIngest(b, true) }

// BenchmarkCommitInsertIndexed — the same single-row commit while the
// relation's BK-tree and trie are live, so every commit pays online
// index maintenance.
func BenchmarkCommitInsertIndexed(b *testing.B) {
	st := benchStore(b)
	for i := 0; i < 1000; i++ {
		if _, err := st.Insert("w", fmt.Sprintf("seq%08d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
	w, _ := st.Catalog().Get("w")
	w.BKTree()
	w.Trie()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Insert("w", fmt.Sprintf("idx%08d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
}
