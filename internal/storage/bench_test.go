package storage

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/relation"
)

func benchStore(b *testing.B) *Store {
	b.Helper()
	cat := relation.NewCatalog()
	cat.Add(relation.New("w"))
	st, err := Open(filepath.Join(b.TempDir(), "wal.log"), cat)
	if err != nil {
		b.Fatal(err)
	}
	st.SetSync(false) // measure the engine, not the disk's fsync latency
	b.Cleanup(func() { st.Close() })
	return st
}

// BenchmarkCommitInsert — one WAL commit per row: frame + flush + MVCC
// head publish + online index upkeep (indexes unbuilt here, so this is
// the write-path floor).
func BenchmarkCommitInsert(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Insert("w", fmt.Sprintf("seq%08d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommitBatch100 — 100 rows per WAL transaction; the per-row
// cost shows what batching (POST /ingest) amortises.
func BenchmarkCommitBatch100(b *testing.B) {
	st := benchStore(b)
	ops := make([]Op, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			ops[j] = Op{Kind: OpInsert, Rel: "w", Seq: fmt.Sprintf("seq%08d", i*100+j)}
		}
		if _, err := st.Commit(ops); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommitInsertIndexed — the same single-row commit while the
// relation's BK-tree and trie are live, so every commit pays online
// index maintenance.
func BenchmarkCommitInsertIndexed(b *testing.B) {
	st := benchStore(b)
	for i := 0; i < 1000; i++ {
		if _, err := st.Insert("w", fmt.Sprintf("seq%08d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
	w, _ := st.Catalog().Get("w")
	w.BKTree()
	w.Trie()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Insert("w", fmt.Sprintf("idx%08d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
}
