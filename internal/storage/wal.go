// Package storage is the mutation subsystem of the engine: a write-
// ahead log plus a Store that applies committed operations to the MVCC
// relations of a catalog.
//
// WAL format (documented in DESIGN.md): the log is a sequence of
// frames, each
//
//	uint32 payload length (little-endian)
//	uint32 CRC32-IEEE of the payload
//	payload bytes
//
// where the payload is one JSON-encoded record. Records carry a
// monotonically increasing LSN and a transaction id; a transaction is a
// run of operation records closed by a commit record. Recovery reads
// frames until the first torn or corrupt one, truncates the file there,
// and applies only transactions whose commit record survived — an
// interrupted append can therefore never surface a half-applied batch.
package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// Record kinds. Operation records precede their transaction's commit.
// The *at kinds carry explicit tuple ids — segmented stores log them so
// every segment replays to the same state regardless of how commits
// interleaved across segments.
const (
	recInsert   = "insert"
	recDelete   = "delete"
	recUpdate   = "update"
	recInsertAt = "insertat"
	recUpdateAt = "updateat"
	recCommit   = "commit"
)

// walRecord is one WAL entry. Plain insert records intentionally carry
// no tuple id: ids are assigned deterministically by replay order,
// which keeps the log identical across the original run and every
// recovery. Segmented stores use the explicit-id kinds instead.
//
// Vec carries the row's embedding in the canonical vector-literal
// syntax (metric.Format). The text form is bit-exact for float32, so a
// replayed row hashes and measures identically to the original — and
// the JSON stays human-readable, matching the rest of the record.
type walRecord struct {
	LSN   uint64            `json:"lsn"`
	Tx    uint64            `json:"tx"`
	Kind  string            `json:"op"`
	Rel   string            `json:"rel,omitempty"`
	ID    int               `json:"id,omitempty"`
	NewID int               `json:"nid,omitempty"` // updateat: replacement tuple id
	Seq   string            `json:"seq,omitempty"`
	Vec   string            `json:"vec,omitempty"` // canonical vector literal, "" = none
	Attrs map[string]string `json:"attrs,omitempty"`
	N     int               `json:"n,omitempty"` // commit: operation count of the tx
}

// wal is the append side of one log segment. Writers are serialized by
// the owning Store. The LSN counter is shared across every segment of a
// store (the Store wires it after open), so sorting all segments'
// transactions by LSN reconstructs the store-wide commit order —
// that is what lets a segmented store replay cross-shard mutations in
// the order they happened.
type wal struct {
	f      *os.File
	w      *bufio.Writer
	path   string
	lsn    *uint64 // shared store-wide LSN counter
	maxLSN uint64  // highest LSN seen during open (feeds the shared counter)
	nextTx uint64
	bytes  int64
	sync   bool // fsync after every commit
	broken bool // a failed append could not be rolled back; fail-stop
}

// frame overhead per record: length + crc.
const frameHeader = 8

// maxRecordLen bounds one record's payload. Recovery treats any longer
// frame as a corrupt tail, so the append side must reject it up front —
// otherwise an acknowledged oversized commit would poison the log and
// truncate away every transaction after it at the next open.
const maxRecordLen = 1 << 24

// openWAL opens (creating if needed) the log at path, replays every
// complete frame and returns the committed transactions in order. A
// torn or corrupt tail is truncated away.
func openWAL(path string) (*wal, [][]walRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &wal{f: f, path: path, sync: true}

	var (
		txs     [][]walRecord
		pending = map[uint64][]walRecord{}
		good    int64
		rd      = bufio.NewReader(f)
		hdr     [frameHeader]byte
	)
	for {
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			break // clean EOF or torn header — stop either way
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordLen {
			break // absurd frame length: corrupt tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(rd, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		if rec.Kind == recCommit {
			ops := pending[rec.Tx]
			delete(pending, rec.Tx)
			if len(ops) != rec.N {
				// A commit that doesn't match its operations cannot happen
				// with sequential appends; treat the log as ending before
				// it (the frame is truncated away, not preserved).
				break
			}
			txs = append(txs, ops)
		} else {
			pending[rec.Tx] = append(pending[rec.Tx], rec)
		}
		good += frameHeader + int64(n)
		if rec.LSN > w.maxLSN {
			w.maxLSN = rec.LSN
		}
		if rec.Tx > w.nextTx {
			w.nextTx = rec.Tx
		}
	}
	// Truncate anything past the last fully-readable frame (drops torn
	// tails; uncommitted pending records stay in the file but are dead —
	// replay ignores them, and new appends go after them).
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: truncate torn WAL tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.bytes = good
	w.w = bufio.NewWriter(f)
	return w, txs, nil
}

// appendTx frames and writes one transaction: the operation records
// followed by a commit record. The buffer is always flushed to the OS
// (crash-of-process safe); fsync (crash-of-machine safe) is applied
// when sync is on. On any error the log rolls back to the pre-call
// state: the buffer is reset AND the file is truncated to its previous
// size — frames larger than the bufio buffer flush implicitly
// mid-write, so discarding the buffer alone could leave orphaned
// frames in the file whose tx id, once reused, would corrupt recovery.
// If even the truncate fails the wal turns fail-stop (broken): every
// later append errors rather than risk acknowledging writes a recovery
// could drop.
func (w *wal) appendTx(ops []walRecord) (tx uint64, err error) {
	if w.broken {
		return 0, fmt.Errorf("storage: WAL is fail-stopped after an unrecoverable append error")
	}
	lsn0, tx0, bytes0 := *w.lsn, w.nextTx, w.bytes
	defer func() {
		if err != nil {
			w.w.Reset(w.f)
			*w.lsn, w.nextTx, w.bytes = lsn0, tx0, bytes0
			if terr := w.f.Truncate(bytes0); terr != nil {
				w.broken = true
				return
			}
			if _, serr := w.f.Seek(bytes0, io.SeekStart); serr != nil {
				w.broken = true
			}
		}
	}()
	w.nextTx++
	tx = w.nextTx
	for i := range ops {
		*w.lsn++
		ops[i].LSN = *w.lsn
		ops[i].Tx = tx
		if err := w.writeRecord(&ops[i]); err != nil {
			return 0, err
		}
	}
	*w.lsn++
	commit := walRecord{LSN: *w.lsn, Tx: tx, Kind: recCommit, N: len(ops)}
	if err := w.writeRecord(&commit); err != nil {
		return 0, err
	}
	if err := w.w.Flush(); err != nil {
		return 0, err
	}
	if w.sync {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			return 0, err
		}
		mWALFsync.Observe(time.Since(start).Seconds())
	}
	mWALAppends.Inc()
	mWALBytes.Add(w.bytes - bytes0)
	return tx, nil
}

func (w *wal) writeRecord(rec *walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if len(payload) > maxRecordLen {
		return fmt.Errorf("storage: record of %d bytes exceeds the WAL frame limit (%d)", len(payload), maxRecordLen)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	w.bytes += frameHeader + int64(len(payload))
	return nil
}

func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}
