// Package storage is the mutation subsystem of the engine: a write-
// ahead log plus a Store that applies committed operations to the MVCC
// relations of a catalog, and a checkpoint tier that snapshots the
// catalog to disk so reopen replays only the WAL tail.
//
// WAL format (documented in DESIGN.md): the log is a sequence of
// frames, each
//
//	uint32 payload length (little-endian)
//	uint32 CRC32-IEEE of the payload
//	payload bytes
//
// where the payload is one record in the binary encoding of record.go
// (legacy logs carry JSON payloads; replay accepts both per record).
// Records carry a monotonically increasing LSN and a transaction id; a
// transaction is a run of operation records closed by a commit record.
// Recovery reads frames until the first torn or corrupt one, truncates
// the file there — durably: the truncation is fsynced so a later
// machine crash cannot resurrect the discarded bytes — and applies
// only transactions whose commit record survived, so an interrupted
// append can never surface a half-applied batch. Cross-segment
// transactions additionally carry a global-commit protocol; see
// store.go.
package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Record kinds. Operation records precede their transaction's commit.
// The *at kinds carry explicit tuple ids — segmented stores log them so
// every segment replays to the same state regardless of how commits
// interleaved across segments. A global record marks a cross-segment
// transaction (identified by GID) durable in ALL of its segments; it is
// always appended to segment 0, after the per-segment parts.
const (
	recInsert   = "insert"
	recDelete   = "delete"
	recUpdate   = "update"
	recInsertAt = "insertat"
	recUpdateAt = "updateat"
	recCommit   = "commit"
	recGlobal   = "global"
)

// walRecord is one WAL entry. Plain insert records intentionally carry
// no tuple id: ids are assigned deterministically by replay order,
// which keeps the log identical across the original run and every
// recovery. Segmented stores use the explicit-id kinds instead.
//
// Vec carries the row's embedding in the canonical vector-literal
// syntax (metric.Format). The text form is bit-exact for float32, so a
// replayed row hashes and measures identically to the original.
//
// GID/Parts implement cross-segment atomicity: a commit record that is
// one part of a multi-segment transaction carries the transaction's
// global id and the number of segments it touched; replay applies such
// a transaction only when its global record (kind recGlobal, same GID)
// survived AND all Parts commit records are present across segments.
//
// The JSON tags are the legacy on-disk encoding — still read
// transparently, no longer written.
type walRecord struct {
	LSN   uint64            `json:"lsn"`
	Tx    uint64            `json:"tx"`
	Kind  string            `json:"op"`
	Rel   string            `json:"rel,omitempty"`
	ID    int               `json:"id,omitempty"`
	NewID int               `json:"nid,omitempty"` // updateat: replacement tuple id
	Seq   string            `json:"seq,omitempty"`
	Vec   string            `json:"vec,omitempty"` // canonical vector literal, "" = none
	Attrs map[string]string `json:"attrs,omitempty"`
	N     int               `json:"n,omitempty"`     // commit: operation count of the tx
	GID   uint64            `json:"gid,omitempty"`   // cross-segment transaction id (0 = single-segment)
	Parts int               `json:"parts,omitempty"` // commit/global: segments the GID transaction touched
}

// decodeJSONRecord parses a legacy JSON payload (first byte '{').
func decodeJSONRecord(payload []byte, rec *walRecord) error {
	return json.Unmarshal(payload, rec)
}

// syncFile and syncDir are the fsync primitives, as hooks so the
// crash-injection tests can observe and fail them. syncDir makes a
// directory entry (a freshly created or renamed file) durable — on
// POSIX systems fsyncing the file alone does not persist its name.
var (
	syncFile = func(f *os.File) error { return f.Sync() }
	syncDir  = func(dir string) error {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		defer d.Close()
		return d.Sync()
	}
)

// warnf is the structured-warning sink (stderr by default; tests
// capture it). Storage warnings are operator-visible conditions that
// are handled — e.g. a truncated WAL tail — not errors.
var warnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// walTx is one committed transaction recovered from a segment.
type walTx struct {
	ops       []walRecord
	commitLSN uint64
	gid       uint64 // 0 = single-segment transaction
	parts     int    // segments the GID transaction touched (gid != 0)
}

// walRecovery is everything openWAL learned from one segment's replay.
type walRecovery struct {
	txs     []walTx
	globals map[uint64]bool // GIDs whose global record survived in this segment
	maxGID  uint64
}

// wal is the append side of one log segment. Writers are serialized by
// the owning Store; fsync is delegated to the embedded syncer so
// concurrent commits can share one fsync (group commit). The LSN
// counter is shared across every segment of a store (the Store wires it
// after open), so sorting all segments' transactions by LSN
// reconstructs the store-wide commit order — that is what lets a
// segmented store replay cross-shard mutations in the order they
// happened.
type wal struct {
	f      *os.File
	w      *bufio.Writer
	path   string
	lsn    *uint64 // shared store-wide LSN counter
	maxLSN uint64  // highest LSN seen during open (feeds the shared counter)
	nextTx uint64
	bytes  int64
	sync   bool   // fsync commits (via the syncer)
	broken bool   // a failed append could not be rolled back; fail-stop
	enc    []byte // scratch buffer for binary record encoding

	syn walSyncer
}

// frame overhead per record: length + crc.
const frameHeader = 8

// maxRecordLen bounds one record's payload. Recovery treats any longer
// frame as a corrupt tail, so the append side must reject it up front —
// otherwise an acknowledged oversized commit would poison the log and
// truncate away every transaction after it at the next open.
const maxRecordLen = 1 << 24

// openWAL opens (creating if needed) the log at path, replays every
// complete frame and returns the committed transactions in order plus
// the segment's global-commit records. A torn or corrupt tail is
// truncated away and the truncation fsynced; creating the file fsyncs
// the parent directory so the log survives a machine crash right after
// first open.
func openWAL(path string) (*wal, walRecovery, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, walRecovery{}, err
	}
	w := &wal{f: f, path: path, sync: true}
	w.syn.cond = sync.NewCond(&w.syn.mu)

	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, walRecovery{}, err
	}
	size := fi.Size()
	if size == 0 {
		// Freshly created (or still-empty) log: persist the directory
		// entry now, before any commit is acknowledged against it.
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, walRecovery{}, fmt.Errorf("storage: fsync WAL directory: %w", err)
		}
	}

	rec := walRecovery{globals: map[uint64]bool{}}
	var (
		pending   = map[uint64][]walRecord{}
		good      int64
		rd        = bufio.NewReader(f)
		hdr       [frameHeader]byte
		truncated string // reason the scan stopped short of EOF ("" = clean)
	)
scan:
	for {
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			if err != io.EOF {
				truncated = "torn frame header"
			}
			break // clean EOF or torn header — stop either way
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordLen {
			truncated = "absurd frame length"
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(rd, payload); err != nil {
			truncated = "torn payload"
			break
		}
		if crc32.ChecksumIEEE(payload) != crc {
			truncated = "CRC mismatch"
			break
		}
		var r walRecord
		if err := decodeRecord(payload, &r); err != nil {
			truncated = "undecodable record"
			break
		}
		switch r.Kind {
		case recCommit:
			ops := pending[r.Tx]
			delete(pending, r.Tx)
			if len(ops) != r.N {
				// A commit that doesn't match its operations cannot happen
				// with sequential appends; treat the log as ending before
				// it (the frame is truncated away, not preserved).
				truncated = fmt.Sprintf("commit frame op-count mismatch (tx=%d logged n=%d, found %d ops)", r.Tx, r.N, len(ops))
				break scan
			}
			rec.txs = append(rec.txs, walTx{ops: ops, commitLSN: r.LSN, gid: r.GID, parts: r.Parts})
		case recGlobal:
			rec.globals[r.GID] = true
		default:
			pending[r.Tx] = append(pending[r.Tx], r)
		}
		good += frameHeader + int64(n)
		if r.LSN > w.maxLSN {
			w.maxLSN = r.LSN
		}
		if r.Tx > w.nextTx {
			w.nextTx = r.Tx
		}
		if r.GID > rec.maxGID {
			rec.maxGID = r.GID
		}
	}
	// Truncate anything past the last fully-readable frame (drops torn
	// tails; uncommitted pending records stay in the file but are dead —
	// replay ignores them, and new appends go after them). The truncation
	// must itself be made durable: without the fsync a machine crash
	// after recovery could resurrect the discarded bytes, and the next
	// replay would read a tail this process already decided was corrupt.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, walRecovery{}, fmt.Errorf("storage: truncate torn WAL tail: %w", err)
	}
	if truncated != "" {
		mTruncatedFrames.Inc()
		warnf("storage: WAL truncated wal=%s reason=%q dropped_bytes=%d kept_bytes=%d",
			path, truncated, size-good, good)
		if err := syncFile(f); err != nil {
			f.Close()
			return nil, walRecovery{}, fmt.Errorf("storage: fsync truncated WAL: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, walRecovery{}, err
	}
	w.bytes = good
	w.syn.flushed.Store(good)
	w.syn.synced = good
	w.w = bufio.NewWriter(f)
	return w, rec, nil
}

// appendTx frames and writes one transaction: the operation records
// followed by a commit record carrying gid/parts (zero for the common
// single-segment transaction). The buffer is always flushed to the OS
// (crash-of-process safe); fsync (crash-of-machine safe) is the
// caller's job via syncTo, outside the store mutex, so concurrent
// commits batch into one fsync. On any error the log rolls back to the
// pre-call state: the buffer is reset AND the file is truncated to its
// previous size — frames larger than the bufio buffer flush implicitly
// mid-write, so discarding the buffer alone could leave orphaned
// frames in the file whose tx id, once reused, would corrupt recovery.
// If even the truncate fails the wal turns fail-stop (broken): every
// later append errors rather than risk acknowledging writes a recovery
// could drop.
func (w *wal) appendTx(ops []walRecord, gid uint64, parts int) (tx uint64, err error) {
	if w.broken {
		return 0, fmt.Errorf("storage: WAL is fail-stopped after an unrecoverable append error")
	}
	lsn0, tx0, bytes0 := *w.lsn, w.nextTx, w.bytes
	defer func() {
		if err != nil {
			w.w.Reset(w.f)
			*w.lsn, w.nextTx, w.bytes = lsn0, tx0, bytes0
			if terr := w.f.Truncate(bytes0); terr != nil {
				w.broken = true
				return
			}
			if _, serr := w.f.Seek(bytes0, io.SeekStart); serr != nil {
				w.broken = true
			}
		}
	}()
	w.nextTx++
	tx = w.nextTx
	for i := range ops {
		*w.lsn++
		ops[i].LSN = *w.lsn
		ops[i].Tx = tx
		if err := w.writeRecord(&ops[i]); err != nil {
			return 0, err
		}
	}
	*w.lsn++
	commit := walRecord{LSN: *w.lsn, Tx: tx, Kind: recCommit, N: len(ops), GID: gid, Parts: parts}
	if err := w.writeRecord(&commit); err != nil {
		return 0, err
	}
	if err := w.w.Flush(); err != nil {
		return 0, err
	}
	w.syn.flushed.Store(w.bytes)
	mWALAppends.Inc()
	mWALBytes.Add(w.bytes - bytes0)
	return tx, nil
}

// appendGlobal writes a transaction's global-commit record (always to
// THIS wal, which the store guarantees is segment 0). Same rollback
// contract as appendTx.
func (w *wal) appendGlobal(gid uint64, parts int) (err error) {
	if w.broken {
		return fmt.Errorf("storage: WAL is fail-stopped after an unrecoverable append error")
	}
	lsn0, bytes0 := *w.lsn, w.bytes
	defer func() {
		if err != nil {
			w.w.Reset(w.f)
			*w.lsn, w.bytes = lsn0, bytes0
			if terr := w.f.Truncate(bytes0); terr != nil {
				w.broken = true
				return
			}
			if _, serr := w.f.Seek(bytes0, io.SeekStart); serr != nil {
				w.broken = true
			}
		}
	}()
	*w.lsn++
	rec := walRecord{LSN: *w.lsn, Kind: recGlobal, GID: gid, Parts: parts}
	if err := w.writeRecord(&rec); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	w.syn.flushed.Store(w.bytes)
	mWALBytes.Add(w.bytes - bytes0)
	return nil
}

func (w *wal) writeRecord(rec *walRecord) error {
	payload, err := encodeRecord(w.enc[:0], rec)
	if err != nil {
		return err
	}
	w.enc = payload // keep the grown scratch buffer
	if len(payload) > maxRecordLen {
		return fmt.Errorf("storage: record of %d bytes exceeds the WAL frame limit (%d)", len(payload), maxRecordLen)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	w.bytes += frameHeader + int64(len(payload))
	return nil
}

// truncateAll discards the whole log — called by Checkpoint (under the
// store mutex, with the covering snapshot already durable) so replay
// starts from the snapshot instead. Bumping the generation releases
// any commit still waiting in syncTo: its bytes are covered by the
// snapshot, which is a durability guarantee at least as strong as the
// fsync it was waiting for. The truncation itself is fsynced so a
// machine crash cannot resurrect pre-checkpoint frames that a later
// reopen (which replays the tail against the snapshot) must not see
// twice — LSN filtering makes replay of such frames harmless, but the
// durable truncate keeps the log's byte length the source of truth.
func (w *wal) truncateAll() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.bytes = 0
	w.w.Reset(w.f)
	w.syn.mu.Lock()
	w.syn.gen++
	w.syn.flushed.Store(0)
	w.syn.synced = 0
	w.syn.cond.Broadcast()
	w.syn.mu.Unlock()
	return syncFile(w.f)
}

func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}

// ----------------------------------------------------------- group commit

// walSyncer batches the fsyncs of concurrent commits. A commit appends
// and flushes under the store mutex, records its target offset, then
// calls syncTo outside the mutex: the first waiter becomes the leader
// and issues one fsync covering every byte flushed so far; commits that
// arrive while it runs wait and are usually covered by the NEXT single
// fsync — N concurrent committers pay ~2 fsyncs instead of N. The
// generation counter ties waiters to the file contents they wrote:
// a checkpoint truncation bumps it, releasing waiters (their bytes are
// durable in the snapshot) and telling an in-flight leader to discard
// its covered-offset result.
type walSyncer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	flushed atomic.Int64 // bytes flushed to the OS (written under the store mutex)
	synced  int64        // bytes durably fsynced (guarded by mu)
	syncing bool         // a leader fsync is in flight
	joined  int          // waiters since the last completed fsync (batch-size metric)
	gen     uint64       // truncation generation (guarded by mu)
	err     error        // sticky: after a failed fsync the wal is not trustworthy
}

// generation returns the current truncation generation. Commits capture
// it under the store mutex together with their target offset.
func (w *wal) generation() uint64 {
	w.syn.mu.Lock()
	defer w.syn.mu.Unlock()
	return w.syn.gen
}

// syncTo blocks until target bytes of generation gen are durable —
// by this call's own fsync (leader), somebody else's (follower), or a
// checkpoint having superseded the generation entirely.
func (w *wal) syncTo(target int64, gen uint64) error {
	s := &w.syn
	s.mu.Lock()
	s.joined++
	for {
		if s.err != nil {
			s.mu.Unlock()
			return s.err
		}
		if s.gen != gen {
			// Truncated by a checkpoint: the bytes this commit wrote are
			// durable in the snapshot that covered them.
			s.mu.Unlock()
			return nil
		}
		if s.synced >= target {
			s.mu.Unlock()
			return nil
		}
		if !s.syncing {
			break // become the leader
		}
		s.cond.Wait()
	}
	s.syncing = true
	// Everything flushed before the fsync starts is covered by it; read
	// the watermark first so late flushes are not falsely credited.
	covered := s.flushed.Load()
	batch := s.joined
	s.joined = 0
	s.mu.Unlock()

	start := time.Now()
	err := syncFile(w.f)
	mWALFsync.Observe(time.Since(start).Seconds())
	mGroupCommitBatch.Observe(float64(batch))

	s.mu.Lock()
	s.syncing = false
	switch {
	case err != nil:
		s.err = err
	case s.gen == gen && covered > s.synced:
		s.synced = covered
	}
	s.cond.Broadcast()
	done := s.err == nil && (s.gen != gen || s.synced >= target)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if done {
		return nil
	}
	// Rare: our own bytes were flushed after the covered watermark was
	// read (cannot happen for the leader's own commit, but keeps the
	// contract airtight under future callers) — wait for the next round.
	return w.syncTo(target, gen)
}
