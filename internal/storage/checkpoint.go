package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/metric"
	"repro/internal/relation"
)

// Checkpoint file format: JSON lines, one object per line.
//
//	header    {"v":1,"lsn":N,"max_gid":N,"rels":N}
//	per rel   {"rel":"name","sharded":bool,"shards":N,"rows":N,"next_id":N}
//	          followed by exactly `rows` row lines
//	row       {"id":N,"seq":"...","vec":"...","attrs":{...}}
//	footer    {"footer":true,"rels":N}
//
// The file is written to a temp name, fsynced, atomically renamed over
// the previous checkpoint, and the directory fsynced — so the final
// name only ever holds a complete snapshot. The footer is a second
// line of defence: a loader refuses a file whose relation count does
// not match end to end (catches non-atomic filesystems and torn disk
// sectors that survived the rename protocol).
//
// The header's lsn is the covering LSN: every transaction with commit
// LSN <= lsn is folded into the snapshot, so reopen replays only WAL
// records past it. max_gid restores the cross-segment transaction id
// allocator — a reused GID could otherwise match a dangling pre-crash
// global record and resurrect a dropped transaction.

type ckptHeader struct {
	V      int    `json:"v"`
	LSN    uint64 `json:"lsn"`
	MaxGID uint64 `json:"max_gid"`
	Rels   int    `json:"rels"`
}

type ckptRel struct {
	Rel     string `json:"rel"`
	Sharded bool   `json:"sharded,omitempty"`
	Shards  int    `json:"shards,omitempty"`
	Rows    int    `json:"rows"`
	NextID  int    `json:"next_id"`
}

type ckptRow struct {
	ID    int               `json:"id"`
	Seq   string            `json:"seq"`
	Vec   string            `json:"vec,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

type ckptFooter struct {
	Footer bool `json:"footer"`
	Rels   int  `json:"rels"`
}

// ckptVersion is the current checkpoint format version.
const ckptVersion = 1

// CheckpointInfo describes a completed checkpoint (and feeds /stats).
type CheckpointInfo struct {
	LSN      uint64        `json:"lsn"`
	Rels     int           `json:"relations"`
	Rows     int           `json:"rows"`
	Bytes    int64         `json:"bytes"`
	Duration time.Duration `json:"duration_ns"`
	At       time.Time     `json:"at"`
}

// writeCheckpoint serializes the catalog to path using the temp-file +
// fsync + atomic-rename + dir-fsync protocol. Caller holds the store
// mutex (the snapshot must be a commit boundary and lsn its cover).
func writeCheckpoint(path string, cat *relation.Catalog, lsn, maxGID uint64) (rels, rows int, bytes int64, err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	names := cat.Names()
	sort.Strings(names)
	w := bufio.NewWriterSize(f, 1<<20)
	enc := json.NewEncoder(w)
	if err = enc.Encode(ckptHeader{V: ckptVersion, LSN: lsn, MaxGID: maxGID, Rels: len(names)}); err != nil {
		return 0, 0, 0, err
	}
	for _, name := range names {
		t, ok := cat.Lookup(name)
		if !ok {
			continue
		}
		var (
			tuples []relation.Tuple
			nextID int
			hdr    = ckptRel{Rel: name}
		)
		switch r := t.(type) {
		case *relation.ShardedRelation:
			tuples, nextID = r.DumpState()
			hdr.Sharded, hdr.Shards = true, r.NumShards()
		case *relation.Relation:
			tuples, nextID = r.DumpState()
		default:
			return 0, 0, 0, fmt.Errorf("storage: cannot checkpoint relation %q (%T)", name, t)
		}
		hdr.Rows, hdr.NextID = len(tuples), nextID
		if err = enc.Encode(hdr); err != nil {
			return 0, 0, 0, err
		}
		for _, tu := range tuples {
			row := ckptRow{ID: tu.ID, Seq: tu.Seq, Attrs: tu.Attrs}
			if tu.Vec != nil {
				row.Vec = metric.Format(tu.Vec)
			}
			if err = enc.Encode(row); err != nil {
				return 0, 0, 0, err
			}
		}
		rows += len(tuples)
	}
	if err = enc.Encode(ckptFooter{Footer: true, Rels: len(names)}); err != nil {
		return 0, 0, 0, err
	}
	if err = w.Flush(); err != nil {
		return 0, 0, 0, err
	}
	if err = syncFile(f); err != nil {
		return 0, 0, 0, err
	}
	fi, statErr := f.Stat()
	if statErr == nil {
		bytes = fi.Size()
	}
	if err = f.Close(); err != nil {
		return 0, 0, 0, err
	}
	if err = os.Rename(tmp, path); err != nil {
		return 0, 0, 0, err
	}
	if err = syncDir(filepath.Dir(path)); err != nil {
		return 0, 0, 0, err
	}
	return len(names), rows, bytes, nil
}

// loadCheckpoint reads the snapshot at path (if any) and rebuilds its
// relations into the catalog, replacing any same-named entries the
// caller pre-registered (the snapshot already contains their rows —
// it captured the whole catalog, -load files included). Returns the
// covering LSN and max GID; ok reports whether a snapshot was loaded.
// A malformed snapshot is an error, never silently skipped: the WAL
// alone would replay to a state missing everything the snapshot
// covered.
func loadCheckpoint(path string, cat *relation.Catalog) (lsn, maxGID uint64, ok bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()

	rd := bufio.NewReaderSize(f, 1<<20)
	dec := json.NewDecoder(rd)
	var hdr ckptHeader
	if err := dec.Decode(&hdr); err != nil {
		return 0, 0, false, fmt.Errorf("storage: checkpoint %s: bad header: %w", path, err)
	}
	if hdr.V != ckptVersion {
		return 0, 0, false, fmt.Errorf("storage: checkpoint %s: unsupported version %d", path, hdr.V)
	}
	for i := 0; i < hdr.Rels; i++ {
		var rh ckptRel
		if err := dec.Decode(&rh); err != nil {
			return 0, 0, false, fmt.Errorf("storage: checkpoint %s: relation header %d: %w", path, i, err)
		}
		rows := make([]relation.Tuple, rh.Rows)
		for j := range rows {
			var cr ckptRow
			if err := dec.Decode(&cr); err != nil {
				return 0, 0, false, fmt.Errorf("storage: checkpoint %s: relation %q row %d: %w", path, rh.Rel, j, err)
			}
			t := relation.Tuple{ID: cr.ID, Seq: cr.Seq, Attrs: cr.Attrs}
			if cr.Vec != "" {
				v, err := metric.Parse(cr.Vec)
				if err != nil {
					return 0, 0, false, fmt.Errorf("storage: checkpoint %s: relation %q row %d: %v", path, rh.Rel, j, err)
				}
				t.Vec = v
			}
			rows[j] = t
		}
		if rh.Sharded {
			cat.Add(relation.RebuildSharded(rh.Rel, rh.Shards, rows, rh.NextID))
		} else {
			cat.Add(relation.Rebuild(rh.Rel, rows, rh.NextID))
		}
	}
	var ft ckptFooter
	if err := dec.Decode(&ft); err != nil || !ft.Footer || ft.Rels != hdr.Rels {
		return 0, 0, false, fmt.Errorf("storage: checkpoint %s: missing or mismatched footer (%v)", path, err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return 0, 0, false, fmt.Errorf("storage: checkpoint %s: trailing data after footer", path)
	}
	return hdr.LSN, hdr.MaxGID, true, nil
}
